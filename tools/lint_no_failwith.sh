#!/bin/sh
# Fail if lib/core or lib/lp gain new bare `failwith` or `assert false`
# sites. The estimation pipeline's error policy is the typed Fault /
# Result API (see docs/robustness.md); untyped raises belong only in the
# allowlisted legacy sites below. When you remove one, shrink the
# allowlist; when you genuinely need a new one, say why in the PR that
# extends it.
#
# Usage: tools/lint_no_failwith.sh [repo-root]
# Runs from any cwd: without an argument the repo root is resolved from
# the script's own location. Exits non-zero on violations, listing each
# offending site as file:line:content.
set -eu

root=${1:-$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root"

# file:count pairs that are allowed to raise untyped errors today
allowlist="
lib/core/store.ml:1
lib/core/chain_n.ml:1
lib/core/star.ml:1
"

status=0
for file in lib/core/*.ml lib/lp/*.ml; do
  count=$(grep -c 'failwith\|assert false' "$file" || true)
  [ "$count" -eq 0 ] && continue
  allowed=0
  for entry in $allowlist; do
    case "$entry" in
    "$file":*) allowed=${entry##*:} ;;
    esac
  done
  if [ "$count" -gt "$allowed" ]; then
    echo "lint: $file has $count bare failwith/assert-false sites (allowed: $allowed)" >&2
    grep -n 'failwith\|assert false' "$file" | sed "s|^|$file:|" >&2
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "lint: use the typed Fault error API instead (docs/robustness.md)" >&2
fi
exit $status
