#!/bin/sh
# Fail if lib/core grows a `Hashtbl.hash` call. The polymorphic hash is
# not a stable function of a value's meaning — it reads representation,
# is documented to vary across OCaml versions, and silently truncates
# deep structures — so anything derived from it (shard routing, canonical
# value order, PRNG sub-stream keys) would break the byte-identity
# guarantees the shard-determinism gate pins. Deterministic hashing in
# lib/core goes through the keyed Prng.derive64 over Value.encode bytes
# (see Shard_key); generic hashtables use Value.Tbl, whose hash is
# defined on the encoding, not the representation.
#
# Usage: tools/lint_no_polymorphic_hash.sh [repo-root]
# Runs from any cwd: without an argument the repo root is resolved from
# the script's own location. Exits non-zero on violations, listing each
# offending site as file:line:content.
set -eu

root=${1:-$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root"

pattern='Hashtbl\.hash'

# documentation may say "never [Hashtbl.hash]" — the bracketed ocamldoc
# cross-reference form is prose about the policy, not a call site
doc_form='\[Hashtbl\.hash\]'

status=0
for file in lib/core/*.ml lib/core/*.mli; do
  [ -e "$file" ] || continue
  hits=$(grep -n "$pattern" "$file" | grep -v "$doc_form" || true)
  if [ -n "$hits" ]; then
    echo "lint: $file calls the polymorphic Hashtbl.hash" >&2
    printf '%s\n' "$hits" | sed "s|^|$file:|" >&2
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "lint: hash via Prng.derive64 over Value.encode instead (see Shard_key)" >&2
fi
exit $status
