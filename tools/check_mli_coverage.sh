#!/bin/sh
# Every library module must have an explicit interface: fail when a
# lib/**/*.ml lacks a matching .mli. Interfaces are where this repo keeps
# its documentation and its API discipline (see docs/architecture.md) —
# a bare .ml silently exports everything, and the next refactor starts
# depending on internals.
#
# Usage: tools/check_mli_coverage.sh [repo-root]
# Runs from any cwd; exits non-zero listing each uncovered module.
set -eu

root=${1:-$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root"

status=0
for file in lib/*/*.ml lib/*/*/*.ml; do
  [ -e "$file" ] || continue # unmatched glob
  if [ ! -f "${file}i" ]; then
    echo "lint: $file has no interface (${file}i missing)" >&2
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "lint: add a .mli for each module above (docs/architecture.md)" >&2
fi
exit $status
