#!/bin/sh
# Fail if the online estimator regrows per-query hashtable lookups. The
# per-query loops of lib/core/estimate.ml run over the columnar
# Synopsis_flat layout — the B side scans its offset ranges and reaches
# the A side through the precomputed b_to_a position map. A
# `Value.Tbl.find` / `find_opt` (or any Value.Tbl traffic) inside
# estimate.ml means someone reintroduced pointer chasing on the hot path;
# build whatever index you need once in Synopsis_flat.of_synopsis
# instead.
#
# Usage: tools/lint_no_tbl_lookup_in_estimate.sh [repo-root]
# Runs from any cwd: without an argument the repo root is resolved from
# the script's own location. Exits non-zero on violations, listing each
# offending site as file:line:content.
set -eu

root=${1:-$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root"

file=lib/core/estimate.ml
pattern='Value\.Tbl\.'

if grep -n "$pattern" "$file" >/dev/null 2>&1; then
  echo "lint: $file touches Value.Tbl on the per-query path" >&2
  grep -n "$pattern" "$file" | sed "s|^|$file:|" >&2
  echo "lint: precompute flat indices in Synopsis_flat.of_synopsis instead" >&2
  exit 1
fi
exit 0
