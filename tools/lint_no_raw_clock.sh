#!/bin/sh
# Fail if library code outside lib/util grows raw `Unix.gettimeofday` or
# `Unix.sleepf` calls. Time must flow through Repro_util.Clock (a
# `Clock.t` / `Clock.sleeper`), which is what makes deadlines, backoff
# delays and breaker cooldowns unit-testable against a fake clock instead
# of real sleeps (see docs/robustness.md). lib/util itself is exempt —
# Clock is where the wrapping happens, and Pool's span timing predates
# injection. When you remove an allowlisted site, shrink the allowlist;
# a genuinely new one needs a justification in the PR that extends it.
#
# Usage: tools/lint_no_raw_clock.sh [repo-root]
# Runs from any cwd: without an argument the repo root is resolved from
# the script's own location. Exits non-zero on violations, listing each
# offending site as file:line:content.
set -eu

root=${1:-$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root"

pattern='Unix\.gettimeofday\|Unix\.sleepf'

# file:count pairs allowed to touch the raw clock today
allowlist="
lib/obs/obs.ml:2
"

status=0
for file in lib/*/*.ml; do
  case "$file" in
  lib/util/*) continue ;;
  esac
  count=$(grep -c "$pattern" "$file" || true)
  [ "$count" -eq 0 ] && continue
  allowed=0
  for entry in $allowlist; do
    case "$entry" in
    "$file":*) allowed=${entry##*:} ;;
    esac
  done
  if [ "$count" -gt "$allowed" ]; then
    echo "lint: $file has $count raw Unix.gettimeofday/Unix.sleepf sites (allowed: $allowed)" >&2
    grep -n "$pattern" "$file" | sed "s|^|$file:|" >&2
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "lint: inject Repro_util.Clock instead (docs/robustness.md)" >&2
fi
exit $status
