#!/bin/sh
# Fail if any metric label carries a per-request identifier. Request IDs
# are unbounded-cardinality values: one time series per request would
# grow the registry (and every Prometheus scrape) without bound. IDs
# belong on span attributes, access-log records and histogram exemplars
# — never on `~labels:` of Obs.count / Obs.observe / Obs.gauge (see
# docs/observability.md, "Request telemetry & SLOs").
#
# The check scans each `~labels:` argument (the list may wrap across a
# few lines under ocamlformat) for forbidden label keys.
#
# Usage: tools/lint_label_cardinality.sh [repo-root]
# Runs from any cwd: without an argument the repo root is resolved from
# the script's own location. Exits non-zero on violations, listing each
# offending site as file:line:content.
set -eu

root=${1:-$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root"

status=0
for file in lib/*/*.ml bin/*.ml bench/*.ml; do
  [ -f "$file" ] || continue
  hits=$(awk -v forbidden_re='\\("(id|request_id|rid|trace_id|span_id)"' '
    /~labels/ { window = 4 }
    window > 0 {
      if ($0 ~ forbidden_re) print FILENAME ":" FNR ":" $0
      window--
    }
  ' "$file")
  if [ -n "$hits" ]; then
    printf '%s\n' "$hits" >&2
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "lint: request-scoped IDs must not be metric labels; use span" >&2
  echo "lint: attributes, the access log, or exemplars instead" >&2
fi
exit $status
