(** Per-query estimate provenance: the machine-readable record of {e how}
    every benchmark estimate was obtained — which CSDL variant answered,
    at what sample size, with what q-error, after which downgrades — and
    the versioned [BENCH_<name>.json] artifact that carries those records
    between runs so accuracy and latency regressions are diffable in CI
    (see docs/observability.md, "Trace reports & regression gating").

    Capture follows the [?obs] opt-in pattern: every runner records into
    a {!collector} that defaults to {!null}, on which {!add} is a no-op.
    Provenance capture never touches a PRNG stream and writes only to the
    JSON artifact, so bench stdout stays byte-identical with capture on
    or off (enforced by the [@bench-smoke] alias). *)

type record = {
  experiment : string;  (** runner id: ["two-table"], ["table8"], ... *)
  query : string;  (** query id within the experiment *)
  variant : string;  (** approach / CSDL variant label *)
  theta : float;
  jvd : float;  (** join value density; [nan] where undefined (chains) *)
  sample_tuples : float;  (** mean synopsis tuples per run; [nan] if unknown *)
  truth : float;  (** exact join size; [nan] if not computed *)
  estimate : float;  (** median estimate over [runs] *)
  qerror : float;  (** median q-error; [infinity] = failed estimates *)
  rung : string;  (** cascade rung that answered; [""] outside the cascade *)
  downgrades : int;  (** cascade downgrades; 0 outside the cascade *)
  runs : int;
  zero_runs : int;
  wall_seconds : float;  (** mean wall time per estimation run *)
  cpu_seconds : float;
  offline_wall_seconds : float;
      (** wall time of the offline phase behind this estimate: synopsis
          drawing (amortised per query when one synopsis serves many).
          [nan] = not measured; absent in pre-split artifacts. *)
  ci_lower : float;
      (** lower endpoint of the cell's confidence interval on the
          estimate; [nan] = no interval reported (version-1 records,
          runners without CI support) *)
  ci_upper : float;
  ci_covered : float;
      (** 1 if the interval covered the exact truth, 0 if it missed,
          [nan] when no interval or no truth is available *)
  variance : float;
      (** analytic (closed-form) single-synopsis variance of the
          estimator, where the method has one (correlated sampling);
          [nan] otherwise *)
}

val empty : record
(** All-default record — [""] strings, [nan] measurements, zero counts.
    Runners build records as [{ empty with experiment = ...; ... }] so
    adding an optional field never touches every construction site. *)

(** {1 Collection} *)

type collector

val null : collector
(** The no-op collector: {!add} does nothing, {!records} is []. *)

val create : unit -> collector
val is_live : collector -> bool

val add : collector -> record -> unit
(** Append one record (thread-safe; no-op on {!null}). Runners add from
    their sequential reassembly phase, so record order is deterministic. *)

val records : collector -> record list
(** Records in insertion order. *)

(** {1 Summaries} *)

type summary = {
  s_experiment : string;
  s_variant : string;
  s_records : int;
  median_qerror : float;
  p95_qerror : float;
  mean_wall_seconds : float;
  mean_cpu_seconds : float;
  inf_failures : int;
      (** records whose q-error is [infinity] — the zero/nonzero mismatch
          failure the paper reports *)
  nan_failures : int;
      (** records whose q-error is NaN {e with a known truth} — the
          estimator returned garbage. NaN q-error against a NaN truth is
          "not computed" (timing-only records) and does not count. *)
  ci_coverage : float;
      (** mean of the non-NaN [ci_covered] flags — the fraction of
          interval-reporting cells whose CI covered the truth; [nan] when
          the group reports no intervals *)
}

val summarise : record list -> summary list
(** Group records by (experiment, variant) and reduce — the per-table
    median/p95 q-error view of the paper's Tables IV-V, plus mean
    latency. Sorted by experiment then variant. Quantiles are NaN-honest:
    a garbage (NaN) q-error in the group makes the group's median/p95 NaN
    rather than silently shifting them; the [nan_failures] count says
    why. *)

(** {1 The BENCH artifact} *)

val version : int
(** Schema version written into every artifact; readers reject anything
    newer. Currently 2: version 1 plus the per-record
    [ci_lower]/[ci_upper]/[ci_covered]/[variance] interval fields (absent
    = [nan], so version-1 artifacts read back losslessly). *)

type artifact = {
  a_version : int;
  a_name : string;
  a_records : record list;
  a_summaries : summary list;
}

val artifact : name:string -> record list -> artifact
(** Package records with freshly computed summaries. *)

val to_json : artifact -> string
(** Multi-line JSON (diff-friendly). Non-finite floats are encoded as the
    strings ["inf"]/["-inf"]/["nan"] and read back exactly. *)

val write : path:string -> artifact -> unit

val read : string -> (artifact, string) result
(** Parse an artifact file. [Error] on unreadable JSON, a missing field,
    or an unsupported (newer) version — never an exception. Summaries are
    recomputed from the records, so a hand-edited artifact stays
    self-consistent. *)

(** {1 Regression gating} *)

type check = {
  subject : string;  (** "experiment/variant" *)
  metric : string;
  baseline : float;
  current : float;
  limit : float;  (** the max allowed current/baseline ratio *)
  ok : bool;
}

val online_experiment : string
(** ["batch-online"] — the experiment name of the one aggregate record
    {!Batch.run} adds per invocation, whose [wall_seconds] is the
    whole-batch online total. Unlike per-query walls (microseconds, under
    the clock-noise floor), the aggregate is big enough for {!diff} to
    bound the online hot path's wall clock for real. *)

val diff :
  ?max_online_wall_ratio:float ->
  ?min_ci_coverage:float ->
  max_wall_ratio:float ->
  max_qerr_ratio:float ->
  baseline:artifact ->
  current:artifact ->
  unit ->
  check list
(** Compare per-(experiment, variant) summaries. For every group in
    [baseline]: median and p95 q-error must not exceed the baseline by
    more than [max_qerr_ratio] (an infinite current against a finite
    baseline always fails; infinite against infinite passes), and mean
    wall time must not exceed [max_wall_ratio] times the baseline —
    except that wall times under 10ms are never flagged, so clock
    granularity on fast machines cannot produce spurious failures.
    Groups whose experiment is {!online_experiment} have their wall
    checked against [max_online_wall_ratio] instead (default:
    [max_wall_ratio]) — a separate, tighter bound for the batch online
    phase, whose aggregate wall sits above the noise floor. A group
    missing from [current] fails a ["coverage"] check. Groups only in
    [current] are new coverage and produce no check.

    [min_ci_coverage] is an {e absolute} floor, not a ratio: every group
    in both artifacts whose current summary reports a CI coverage
    (non-NaN [ci_coverage]) must cover the truth at least that fraction
    of the time. Groups without interval reporting are not gated. *)

val regressions : check list -> check list
(** The failing subset, i.e. what a CI gate should report and exit 1 on. *)

val pp_checks : Format.formatter -> check list -> unit
(** Render the comparison as an aligned table, failures marked. *)
