open Repro_relation
module Prng = Repro_util.Prng
module Pool = Repro_util.Pool
module Job = Repro_datagen.Job_workload

type comparison_row = {
  label : string;
  baseline : float;
  ablated : float;
}

let ablation_runs = 15

let median_qerror ?dl_config ?virtual_sample ~spec ~theta ~seed
    (q : Job.query) =
  let profile =
    Csdl.Profile.of_tables q.Job.a.Join.table q.Job.a.Join.column
      q.Job.b.Join.table q.Job.b.Join.column
  in
  let truth = float_of_int (Job.true_size q) in
  let estimator = Csdl.Estimator.prepare spec ~theta profile in
  let prng = Prng.create seed in
  let qerrors =
    Array.init ablation_runs (fun _ ->
        let estimate =
          Csdl.Estimator.estimate_once ?dl_config ?virtual_sample
            ~pred_a:q.Job.a.Join.predicate ~pred_b:q.Job.b.Join.predicate
            estimator prng
        in
        Repro_stats.Qerror.compute ~truth ~estimate)
  in
  Repro_util.Summary.median qerrors

let pick names queries =
  List.filter (fun (q : Job.query) -> List.mem q.Job.name names) queries

(* Eq. 6 on/off for CSDL(1,diff). The budget must be comfortably above
   the first-level sentry floor so the per-value q_v actually spread —
   hence theta = 0.05 and queries whose |V| is modest. *)
let virtual_sample (config : Config.t) data =
  let queries =
    pick [ "Q1a1"; "Q1b1"; "Q2a2"; "Q2d1" ] (Job.two_table_queries data)
  in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff in
  Pool.map ~obs:config.Config.obs ~jobs:config.Config.jobs
    (fun (q : Job.query) ->
      {
        label = q.Job.name;
        baseline =
          median_qerror ~spec ~theta:0.05 ~seed:config.Config.seed q;
        ablated =
          median_qerror ~virtual_sample:false ~spec ~theta:0.05
            ~seed:config.Config.seed q;
      })
    queries

(* Sentry on/off for CSDL(1,theta) on small-jvd queries: without sentries,
   rare-but-heavy join values vanish from the sample (the "all or nothing"
   pathology the sentry was introduced against). *)
let sentry (config : Config.t) data =
  let queries =
    pick [ "Q1a1"; "Q1b1"; "Q1b4" ] (Job.two_table_queries data)
  in
  let with_sentry = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta in
  let without_sentry =
    { with_sentry with Csdl.Spec.sentry = false; name = "CSDL(1,t)-nosentry" }
  in
  Pool.map ~obs:config.Config.obs ~jobs:config.Config.jobs
    (fun (q : Job.query) ->
      {
        label = q.Job.name;
        baseline =
          median_qerror ~spec:with_sentry ~theta:0.001 ~seed:config.Config.seed q;
        ablated =
          median_qerror ~spec:without_sentry ~theta:0.001
            ~seed:config.Config.seed q;
      })
    queries

(* Paper's jvd-threshold dispatch vs. the budget-aware rule on the skewed
   TPC-H nationkey join whose jvd straddles the threshold. *)
let dispatch (config : Config.t) =
  Pool.map ~obs:config.Config.obs ~jobs:config.Config.jobs
    (fun (scale, z) ->
      let data =
        Repro_datagen.Tpch.generate ~scale ~z ~seed:config.Config.seed
      in
      let profile =
        Csdl.Profile.of_tables data.Repro_datagen.Tpch.customer "c_nationkey"
          data.Repro_datagen.Tpch.supplier "s_nationkey"
      in
      let truth = float_of_int (Csdl.Profile.true_join_size profile) in
      let median estimator seed =
        let prng = Prng.create seed in
        let qerrors =
          Array.init ablation_runs (fun _ ->
              Repro_stats.Qerror.compute ~truth
                ~estimate:(Csdl.Estimator.estimate_once estimator prng))
        in
        Repro_util.Summary.median qerrors
      in
      let theta = 0.01 in
      {
        label = Repro_datagen.Tpch.dataset_name data;
        baseline =
          median
            (Csdl.Opt.prepare ~dispatch:`Budget_aware ~theta profile)
            config.Config.seed;
        ablated =
          median (Csdl.Opt.prepare ~dispatch:`Jvd_threshold ~theta profile)
            config.Config.seed;
      })
    Table8.datasets

(* Grid resolution of the DL probability mesh: the geometric-grid
   substitution claims quality is insensitive to coarsening. *)
let grid_resolution (config : Config.t) data =
  let query =
    List.find
      (fun (q : Job.query) -> q.Job.name = "Q1b1")
      (Job.two_table_queries data)
  in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff in
  let fine =
    { Csdl.Discrete_learning.default_config with linear_grid_points = 2000 }
  in
  Pool.map ~obs:config.Config.obs ~jobs:config.Config.jobs
    (fun points ->
      let coarse =
        { Csdl.Discrete_learning.default_config with linear_grid_points = points }
      in
      {
        label = Printf.sprintf "linear grid %d vs 2000" points;
        baseline =
          median_qerror ~dl_config:fine ~spec ~theta:0.01
            ~seed:config.Config.seed query;
        ablated =
          median_qerror ~dl_config:coarse ~spec ~theta:0.01
            ~seed:config.Config.seed query;
      })
    [ 400; 100; 25 ]

let print ~title ~with_label ~without_label rows =
  Render.print_table ~title
    ~header:[ "Case"; with_label; without_label ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.label;
             Render.qerror_cell r.baseline;
             Render.qerror_cell r.ablated;
           ])
         rows)
    ()

let run_all config data =
  print
    ~title:"Ablation: Eq. 6 virtual sample (CSDL(1,diff), theta = 0.05)"
    ~with_label:"with virtual" ~without_label:"raw counts"
    (virtual_sample config data);
  print ~title:"Ablation: sentry technique (CSDL(1,t), theta = 0.001)"
    ~with_label:"with sentry" ~without_label:"no sentry"
    (sentry config data);
  print
    ~title:"Ablation: CSDL-Opt dispatch rule (TPC-H nationkey, theta = 0.01)"
    ~with_label:"budget-aware" ~without_label:"jvd threshold"
    (dispatch config);
  print
    ~title:"Ablation: DL probability-grid resolution (Q1b1, theta = 0.01)"
    ~with_label:"fine (2000)" ~without_label:"coarser"
    (grid_resolution config data)
