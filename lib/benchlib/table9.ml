module Prng = Repro_util.Prng
module Pool = Repro_util.Pool
module Tpch = Repro_datagen.Tpch
open Repro_relation

type row = {
  dataset : string;
  truth : int;
  opt_qerror : float;
  cs2l_qerror : float;
}

let theta = 0.001

let run (config : Config.t) =
  let jobs = config.Config.jobs in
  let pred_a =
    Predicate.Compare (Predicate.Gt, "c_acctbal", Value.Float 8000.0)
  in
  (* Stage 1 — per dataset: generation and the exact chain size, shared by
     both approach cells. *)
  let contexts =
    Pool.map ~obs:config.Config.obs ~jobs
      (fun (scale, z) ->
        let data = Tpch.generate ~scale ~z ~seed:config.Config.seed in
        let tables =
          {
            Csdl.Chain.a = data.Tpch.customer;
            a_pk = "c_custkey";
            b = data.Tpch.orders;
            b_pk = "o_orderkey";
            b_fk = "o_custkey";
            c = data.Tpch.lineitem;
            c_fk = "l_orderkey";
          }
        in
        let truth = float_of_int (Csdl.Chain.true_size ~pred_a tables) in
        (scale, z, Tpch.dataset_name data, tables, truth))
      Table8.datasets
  in
  (* Stage 2 — one cell per (dataset, approach). *)
  let tasks =
    List.concat_map
      (fun context -> [ (context, "opt"); (context, "cs2l") ])
      contexts
  in
  let medians =
    Pool.map_array ~obs:config.Config.obs ~jobs
      (fun ((scale, z, _, tables, truth), tag) ->
        let prepared =
          match tag with
          | "opt" -> Csdl.Chain.prepare_opt ~theta tables
          | _ -> Csdl.Chain.prepare Csdl.Spec.cs2l ~theta tables
        in
        let prng =
          Prng.create_keyed ~seed:config.Config.seed
            (Printf.sprintf "table9/scale=%g/z=%g/%s" scale z tag)
        in
        let qerrors =
          Array.init config.Config.runs (fun _ ->
              let synopsis = Csdl.Chain.draw prepared prng in
              let estimate = Csdl.Chain.estimate ~pred_a prepared synopsis in
              Repro_stats.Qerror.compute ~truth ~estimate)
        in
        Repro_util.Summary.median qerrors)
      (Array.of_list tasks)
  in
  List.mapi
    (fun i (_, _, dataset, _, truth) ->
      {
        dataset;
        truth = int_of_float truth;
        opt_qerror = medians.(2 * i);
        cs2l_qerror = medians.((2 * i) + 1);
      })
    contexts

let print rows =
  Render.print_table
    ~title:
      "Table IX: chain join customer |><| orders |><| lineitem (c_acctbal > 8000, theta = 0.001)"
    ~header:[ "Dataset"; "J"; "CSDL-Opt"; "CS2L" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.dataset;
             string_of_int r.truth;
             Render.qerror_cell r.opt_qerror;
             Render.qerror_cell r.cs2l_qerror;
           ])
         rows)
    ()
