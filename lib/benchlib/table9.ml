module Prng = Repro_util.Prng
module Pool = Repro_util.Pool
module Clock = Repro_util.Clock
module Summary = Repro_util.Summary
module Tpch = Repro_datagen.Tpch
open Repro_relation

type row = {
  dataset : string;
  truth : int;
  opt_qerror : float;
  cs2l_qerror : float;
}

type cell = {
  c_qerror : float;
  c_estimate : float;
  c_sample_tuples : float;
  c_wall : float;
  c_cpu : float;
  c_zero_runs : int;
}

let theta = 0.001

let run (config : Config.t) =
  let jobs = config.Config.jobs in
  let pred_a =
    Predicate.Compare (Predicate.Gt, "c_acctbal", Value.Float 8000.0)
  in
  (* Stage 1 — per dataset: generation and the exact chain size, shared by
     both approach cells. *)
  let contexts =
    Pool.map ~obs:config.Config.obs ~jobs
      (fun (scale, z) ->
        let data = Tpch.generate ~scale ~z ~seed:config.Config.seed in
        let tables =
          {
            Csdl.Chain.a = data.Tpch.customer;
            a_pk = "c_custkey";
            b = data.Tpch.orders;
            b_pk = "o_orderkey";
            b_fk = "o_custkey";
            c = data.Tpch.lineitem;
            c_fk = "l_orderkey";
          }
        in
        let truth = float_of_int (Csdl.Chain.true_size ~pred_a tables) in
        (scale, z, Tpch.dataset_name data, tables, truth))
      Table8.datasets
  in
  (* Stage 2 — one cell per (dataset, approach). *)
  let tasks =
    List.concat_map
      (fun context -> [ (context, "opt"); (context, "cs2l") ])
      contexts
  in
  let cells =
    Pool.map_array ~obs:config.Config.obs ~jobs
      (fun ((scale, z, _, tables, truth), tag) ->
        let prepared =
          match tag with
          | "opt" -> Csdl.Chain.prepare_opt ~theta tables
          | _ -> Csdl.Chain.prepare Csdl.Spec.cs2l ~theta tables
        in
        let prng =
          Prng.create_keyed ~seed:config.Config.seed
            (Printf.sprintf "table9/scale=%g/z=%g/%s" scale z tag)
        in
        let runs = config.Config.runs in
        let wall_total = ref 0.0
        and cpu_total = ref 0.0
        and sample_tuples = ref 0
        and zero_runs = ref 0 in
        let estimates =
          Array.init runs (fun _ ->
              let synopsis = Csdl.Chain.draw prepared prng in
              sample_tuples :=
                !sample_tuples + Csdl.Chain.synopsis_tuples synopsis;
              let estimate, span =
                Clock.time (fun () ->
                    Csdl.Chain.estimate ~pred_a prepared synopsis)
              in
              wall_total := !wall_total +. span.Clock.wall_seconds;
              cpu_total := !cpu_total +. span.Clock.cpu_seconds;
              if estimate = 0.0 then incr zero_runs;
              estimate)
        in
        let qerrors =
          Array.map
            (fun estimate -> Repro_stats.Qerror.compute ~truth ~estimate)
            estimates
        in
        let per_run total = total /. float_of_int runs in
        {
          c_qerror = Summary.median qerrors;
          c_estimate = Summary.median estimates;
          c_sample_tuples = per_run (float_of_int !sample_tuples);
          c_wall = per_run !wall_total;
          c_cpu = per_run !cpu_total;
          c_zero_runs = !zero_runs;
        })
      (Array.of_list tasks)
  in
  List.mapi
    (fun i (_, _, dataset, _, truth) ->
      let record tag (c : cell) =
        Provenance.add config.Config.prov
          {
            Provenance.empty with
            Provenance.experiment = "table9";
            query = dataset;
            variant = tag;
            theta;
            jvd = Float.nan;
            sample_tuples = c.c_sample_tuples;
            truth;
            estimate = c.c_estimate;
            qerror = c.c_qerror;
            rung = "";
            downgrades = 0;
            runs = config.Config.runs;
            zero_runs = c.c_zero_runs;
            wall_seconds = c.c_wall;
            cpu_seconds = c.c_cpu;
            offline_wall_seconds = Float.nan;
          }
      in
      let opt = cells.(2 * i) and cs2l = cells.((2 * i) + 1) in
      record "opt" opt;
      record "cs2l" cs2l;
      {
        dataset;
        truth = int_of_float truth;
        opt_qerror = opt.c_qerror;
        cs2l_qerror = cs2l.c_qerror;
      })
    contexts

let print rows =
  Render.print_table
    ~title:
      "Table IX: chain join customer |><| orders |><| lineitem (c_acctbal > 8000, theta = 0.001)"
    ~header:[ "Dataset"; "J"; "CSDL-Opt"; "CS2L" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.dataset;
             string_of_int r.truth;
             Render.qerror_cell r.opt_qerror;
             Render.qerror_cell r.cs2l_qerror;
           ])
         rows)
    ()
