module Json = Repro_obs.Json

type record = {
  experiment : string;
  query : string;
  variant : string;
  theta : float;
  jvd : float;
  sample_tuples : float;
  truth : float;
  estimate : float;
  qerror : float;
  rung : string;
  downgrades : int;
  runs : int;
  zero_runs : int;
  wall_seconds : float;
  cpu_seconds : float;
  offline_wall_seconds : float;
  ci_lower : float;
  ci_upper : float;
  ci_covered : float;
  variance : float;
}

(* Version-2 fields are all optional-by-nan, so every pre-bakeoff runner
   (and every version-1 artifact on disk) keeps working unchanged; runners
   without interval reporting build records as [{ empty with ... }]. *)
let empty =
  {
    experiment = "";
    query = "";
    variant = "";
    theta = Float.nan;
    jvd = Float.nan;
    sample_tuples = Float.nan;
    truth = Float.nan;
    estimate = Float.nan;
    qerror = Float.nan;
    rung = "";
    downgrades = 0;
    runs = 0;
    zero_runs = 0;
    wall_seconds = Float.nan;
    cpu_seconds = Float.nan;
    offline_wall_seconds = Float.nan;
    ci_lower = Float.nan;
    ci_upper = Float.nan;
    ci_covered = Float.nan;
    variance = Float.nan;
  }

(* ---------------- collection ---------------- *)

type live = { mutex : Mutex.t; mutable rev : record list }
type collector = Null | Live of live

let null = Null
let create () = Live { mutex = Mutex.create (); rev = [] }
let is_live = function Null -> false | Live _ -> true

let add t record =
  match t with
  | Null -> ()
  | Live l ->
      Mutex.lock l.mutex;
      l.rev <- record :: l.rev;
      Mutex.unlock l.mutex

let records = function
  | Null -> []
  | Live l ->
      Mutex.lock l.mutex;
      let r = List.rev l.rev in
      Mutex.unlock l.mutex;
      r

(* ---------------- summaries ---------------- *)

type summary = {
  s_experiment : string;
  s_variant : string;
  s_records : int;
  median_qerror : float;
  p95_qerror : float;
  mean_wall_seconds : float;
  mean_cpu_seconds : float;
  inf_failures : int;
  nan_failures : int;
  ci_coverage : float;
}

let summarise records =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = (r.experiment, r.variant) in
      Hashtbl.replace groups key
        (r :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    records;
  Hashtbl.fold
    (fun (experiment, variant) group acc ->
      let group = List.rev group in
      let qerrors = Array.of_list (List.map (fun r -> r.qerror) group) in
      let count pred = List.length (List.filter pred group) in
      let covered =
        Array.of_list
          (List.filter_map
             (fun r ->
               if Float.is_nan r.ci_covered then None else Some r.ci_covered)
             group)
      in
      {
        s_experiment = experiment;
        s_variant = variant;
        s_records = List.length group;
        (* NaN-honest quantiles: one garbage (NaN) q-error in the group
           NaN-poisons the group's quantile view instead of silently
           shifting it; [nan_failures] below says how many and whether
           they were real failures (known truth) or just "not computed"
           (NaN truth, e.g. the timing-only batch records). *)
        median_qerror = Repro_util.Summary.median qerrors;
        p95_qerror = Repro_util.Summary.quantile 0.95 qerrors;
        mean_wall_seconds =
          Repro_util.Summary.mean
            (Array.of_list (List.map (fun r -> r.wall_seconds) group));
        mean_cpu_seconds =
          Repro_util.Summary.mean
            (Array.of_list (List.map (fun r -> r.cpu_seconds) group));
        inf_failures =
          count (fun r -> Repro_stats.Qerror.is_zero_mismatch r.qerror);
        nan_failures =
          count (fun r ->
              Repro_stats.Qerror.is_garbage r.qerror
              && not (Float.is_nan r.truth));
        ci_coverage = Repro_util.Summary.mean covered;
      }
      :: acc)
    groups []
  |> List.sort (fun a b ->
         compare (a.s_experiment, a.s_variant) (b.s_experiment, b.s_variant))

(* ---------------- the BENCH artifact ---------------- *)

let version = 2

type artifact = {
  a_version : int;
  a_name : string;
  a_records : record list;
  a_summaries : summary list;
}

let artifact ~name records =
  {
    a_version = version;
    a_name = name;
    a_records = records;
    a_summaries = summarise records;
  }

let record_to_json r =
  Json.Obj
    [
      ("experiment", Json.Str r.experiment);
      ("query", Json.Str r.query);
      ("variant", Json.Str r.variant);
      ("theta", Json.number r.theta);
      ("jvd", Json.number r.jvd);
      ("sample_tuples", Json.number r.sample_tuples);
      ("truth", Json.number r.truth);
      ("estimate", Json.number r.estimate);
      ("qerror", Json.number r.qerror);
      ("rung", Json.Str r.rung);
      ("downgrades", Json.number (float_of_int r.downgrades));
      ("runs", Json.number (float_of_int r.runs));
      ("zero_runs", Json.number (float_of_int r.zero_runs));
      ("wall_seconds", Json.number r.wall_seconds);
      ("cpu_seconds", Json.number r.cpu_seconds);
      ("offline_wall_seconds", Json.number r.offline_wall_seconds);
      ("ci_lower", Json.number r.ci_lower);
      ("ci_upper", Json.number r.ci_upper);
      ("ci_covered", Json.number r.ci_covered);
      ("variance", Json.number r.variance);
    ]

let summary_to_json s =
  Json.Obj
    [
      ("experiment", Json.Str s.s_experiment);
      ("variant", Json.Str s.s_variant);
      ("records", Json.number (float_of_int s.s_records));
      ("median_qerror", Json.number s.median_qerror);
      ("p95_qerror", Json.number s.p95_qerror);
      ("mean_wall_seconds", Json.number s.mean_wall_seconds);
      ("mean_cpu_seconds", Json.number s.mean_cpu_seconds);
      ("inf_failures", Json.number (float_of_int s.inf_failures));
      ("nan_failures", Json.number (float_of_int s.nan_failures));
      ("ci_coverage", Json.number s.ci_coverage);
    ]

let to_json a =
  Json.to_string_multiline
    (Json.Obj
       [
         ("version", Json.number (float_of_int a.a_version));
         ("name", Json.Str a.a_name);
         ("records", Json.Arr (List.map record_to_json a.a_records));
         ("summaries", Json.Arr (List.map summary_to_json a.a_summaries));
       ])

let write ~path a =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json a);
      output_char oc '\n')

let ( let* ) = Result.bind

let field name conv value =
  match Option.bind (Json.member name value) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let record_of_json value =
  let* experiment = field "experiment" Json.to_str value in
  let* query = field "query" Json.to_str value in
  let* variant = field "variant" Json.to_str value in
  let* theta = field "theta" Json.to_float value in
  let* jvd = field "jvd" Json.to_float value in
  let* sample_tuples = field "sample_tuples" Json.to_float value in
  let* truth = field "truth" Json.to_float value in
  let* estimate = field "estimate" Json.to_float value in
  let* qerror = field "qerror" Json.to_float value in
  let* rung = field "rung" Json.to_str value in
  let* downgrades = field "downgrades" Json.to_int value in
  let* runs = field "runs" Json.to_int value in
  let* zero_runs = field "zero_runs" Json.to_int value in
  let* wall_seconds = field "wall_seconds" Json.to_float value in
  let* cpu_seconds = field "cpu_seconds" Json.to_float value in
  (* absent in version-1 artifacts written before the offline/online split
     was tracked; nan means "not measured" *)
  let optional name =
    Option.value ~default:Float.nan
      (Option.bind (Json.member name value) Json.to_float)
  in
  let offline_wall_seconds = optional "offline_wall_seconds" in
  (* version-2 interval fields; absent (nan) in version-1 artifacts *)
  let ci_lower = optional "ci_lower" in
  let ci_upper = optional "ci_upper" in
  let ci_covered = optional "ci_covered" in
  let variance = optional "variance" in
  Ok
    {
      experiment;
      query;
      variant;
      theta;
      jvd;
      sample_tuples;
      truth;
      estimate;
      qerror;
      rung;
      downgrades;
      runs;
      zero_runs;
      wall_seconds;
      cpu_seconds;
      offline_wall_seconds;
      ci_lower;
      ci_upper;
      ci_covered;
      variance;
    }

let read path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> (
      match Json.parse contents with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok value ->
          let* v = field "version" Json.to_int value in
          if v > version then
            Error
              (Printf.sprintf "%s: version %d is newer than supported (%d)"
                 path v version)
          else
            let* name = field "name" Json.to_str value in
            let* raw_records = field "records" Json.to_list value in
            let* records =
              List.fold_left
                (fun acc (i, r) ->
                  let* acc = acc in
                  match record_of_json r with
                  | Ok record -> Ok (record :: acc)
                  | Error e -> Error (Printf.sprintf "record %d: %s" i e))
                (Ok [])
                (List.mapi (fun i r -> (i, r)) raw_records)
              |> Result.map List.rev
            in
            (* summaries are recomputed, not trusted: a hand-edited record
               list stays consistent with its summary view *)
            Ok (artifact ~name records))

(* ---------------- regression gating ---------------- *)

type check = {
  subject : string;
  metric : string;
  baseline : float;
  current : float;
  limit : float;
  ok : bool;
}

(* Wall times below this are clock-granularity noise on a fast machine;
   never flag them. Accuracy checks have no such floor. *)
let wall_floor_seconds = 0.01

let ratio_ok ~limit ~baseline ~current =
  if Float.is_nan current || Float.is_nan baseline then true
  else if current = Float.infinity then baseline = Float.infinity
  else if baseline = Float.infinity then true
  else if baseline <= 0.0 then true
  else current <= limit *. baseline

(* The aggregate online-phase experiment emitted by Batch.run: one record
   per batch invocation, wall_seconds = whole-batch online total. Large
   enough to sit above [wall_floor_seconds], so — unlike the floored
   per-query records — it gates the hot path's wall clock for real. *)
let online_experiment = "batch-online"

let diff ?max_online_wall_ratio ?min_ci_coverage ~max_wall_ratio
    ~max_qerr_ratio ~baseline ~current () =
  let find summaries key =
    List.find_opt (fun s -> (s.s_experiment, s.s_variant) = key) summaries
  in
  List.concat_map
    (fun b ->
      let key = (b.s_experiment, b.s_variant) in
      let subject = b.s_experiment ^ "/" ^ b.s_variant in
      match find current.a_summaries key with
      | None ->
          [
            {
              subject;
              metric = "coverage";
              baseline = float_of_int b.s_records;
              current = 0.0;
              limit = 1.0;
              ok = false;
            };
          ]
      | Some c ->
          let accuracy metric baseline current =
            {
              subject;
              metric;
              baseline;
              current;
              limit = max_qerr_ratio;
              ok = ratio_ok ~limit:max_qerr_ratio ~baseline ~current;
            }
          in
          let wall_limit, wall_metric =
            if b.s_experiment = online_experiment then
              ( Option.value max_online_wall_ratio ~default:max_wall_ratio,
                "online wall seconds" )
            else (max_wall_ratio, "mean wall seconds")
          in
          let coverage_checks =
            (* only groups that actually report intervals are gated: an
               absolute floor on the fraction of cells whose CI covered
               the truth, not a ratio against the baseline *)
            match min_ci_coverage with
            | Some floor when not (Float.is_nan c.ci_coverage) ->
                [
                  {
                    subject;
                    metric = "ci coverage (min)";
                    baseline = b.ci_coverage;
                    current = c.ci_coverage;
                    limit = floor;
                    ok = c.ci_coverage >= floor;
                  };
                ]
            | _ -> []
          in
          [
            accuracy "median q-error" b.median_qerror c.median_qerror;
            accuracy "p95 q-error" b.p95_qerror c.p95_qerror;
            {
              subject;
              metric = wall_metric;
              baseline = b.mean_wall_seconds;
              current = c.mean_wall_seconds;
              limit = wall_limit;
              ok =
                c.mean_wall_seconds < wall_floor_seconds
                || ratio_ok ~limit:wall_limit ~baseline:b.mean_wall_seconds
                     ~current:c.mean_wall_seconds;
            };
          ]
          @ coverage_checks)
    baseline.a_summaries

let regressions checks = List.filter (fun c -> not c.ok) checks

let metric_str v =
  if Float.is_nan v then "n/a"
  else if v = Float.infinity then "inf"
  else Printf.sprintf "%.4g" v

let pp_checks ppf checks =
  let header = [ "subject"; "metric"; "baseline"; "current"; "limit"; "" ] in
  let rows =
    List.map
      (fun c ->
        [
          c.subject;
          c.metric;
          metric_str c.baseline;
          metric_str c.current;
          Printf.sprintf "%.4gx" c.limit;
          (if c.ok then "ok" else "REGRESSION");
        ])
      checks
  in
  let all = header :: rows in
  let arity = List.length header in
  let widths = Array.make arity 0 in
  List.iter
    (List.iteri (fun j cell -> widths.(j) <- max widths.(j) (String.length cell)))
    all;
  let line row =
    row
    |> List.mapi (fun j cell -> Printf.sprintf "%-*s" widths.(j) cell)
    |> String.concat "  "
  in
  Format.fprintf ppf "%s@.%s@." (line header)
    (String.make (Array.fold_left ( + ) (2 * (arity - 1)) widths) '-');
  List.iter (fun row -> Format.fprintf ppf "%s@." (line row)) rows
