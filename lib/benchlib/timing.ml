type summary = {
  approach : string;
  mean_wall_seconds : float;
  mean_cpu_seconds : float;
  fraction_under : float;
  threshold_seconds : float;
  queries_measured : int;
  queries_total : int;
  zero_estimate_runs : int;
}

let run (config : Config.t) results =
  (* the paper times the smallest budget; use the smallest configured one *)
  let timing_theta = List.fold_left Float.min Float.infinity config.Config.thetas in
  let at_theta =
    List.filter (fun r -> r.Exp_two_table.theta = timing_theta) results
  in
  let cell_of label (r : Exp_two_table.query_result) =
    Exp_two_table.find_cell
      ~context:("Timing summary, query " ^ r.Exp_two_table.name)
      label r.Exp_two_table.cells
  in
  let opt_cell (r : Exp_two_table.query_result) =
    let label =
      if r.Exp_two_table.jvd < config.Config.jvd_threshold then "1,diff"
      else "t,diff"
    in
    cell_of label r
  in
  let obs = config.Config.obs in
  let summarise approach threshold_seconds cells =
    (* every run is timed now — zero-estimate runs included, so the mean
       is no longer biased toward successful runs. Cells whose timing is
       NaN (possible only with a broken injected clock) are excluded but
       still counted in [queries_total]. *)
    let measured =
      List.filter
        (fun c -> not (Float.is_nan c.Exp_two_table.avg_wall_seconds))
        cells
    in
    if Repro_obs.Obs.is_live obs then
      List.iter
        (fun c ->
          let labels = [ ("approach", approach) ] in
          Repro_obs.Obs.observe obs ~labels "bench.query.wall_seconds"
            c.Exp_two_table.avg_wall_seconds;
          Repro_obs.Obs.observe obs ~labels "bench.query.cpu_seconds"
            c.Exp_two_table.avg_cpu_seconds)
        measured;
    let n = List.length measured in
    let zero_estimate_runs =
      List.fold_left (fun acc c -> acc + c.Exp_two_table.zero_runs) 0 cells
    in
    if n = 0 then
      {
        approach;
        mean_wall_seconds = Float.nan;
        mean_cpu_seconds = Float.nan;
        fraction_under = Float.nan;
        threshold_seconds;
        queries_measured = 0;
        queries_total = List.length cells;
        zero_estimate_runs;
      }
    else
      let mean of_cell =
        List.fold_left (fun acc c -> acc +. of_cell c) 0.0 measured
        /. float_of_int n
      in
      let under =
        List.length
          (List.filter
             (fun c -> c.Exp_two_table.avg_wall_seconds < threshold_seconds)
             measured)
      in
      {
        approach;
        mean_wall_seconds = mean (fun c -> c.Exp_two_table.avg_wall_seconds);
        mean_cpu_seconds = mean (fun c -> c.Exp_two_table.avg_cpu_seconds);
        fraction_under = float_of_int under /. float_of_int n;
        threshold_seconds;
        queries_measured = n;
        queries_total = List.length cells;
        zero_estimate_runs;
      }
  in
  [
    summarise "CSDL-Opt" 0.5 (List.map opt_cell at_theta);
    summarise "CS2L" 0.15 (List.map (cell_of "CS2L") at_theta);
  ]

let print ?ppf summaries =
  let seconds v = if Float.is_nan v then "n/a" else Printf.sprintf "%.4f" v in
  Render.print_table ?ppf
    ~title:"Estimation time (smallest theta, wall clock, all runs timed)"
    ~header:
      [
        "Approach"; "wall mean (s)"; "cpu mean (s)"; "under"; "fraction";
        "queries"; "zero-est runs";
      ]
    ~rows:
      (List.map
         (fun s ->
           [
             s.approach;
             seconds s.mean_wall_seconds;
             seconds s.mean_cpu_seconds;
             Printf.sprintf "< %.2fs" s.threshold_seconds;
             (if Float.is_nan s.fraction_under then "n/a"
              else Printf.sprintf "%.0f%%" (100.0 *. s.fraction_under));
             Printf.sprintf "%d/%d" s.queries_measured s.queries_total;
             string_of_int s.zero_estimate_runs;
           ])
         summaries)
    ()
