(** Configuration shared by all experiment runners. Defaults reproduce the
    paper's protocol (20 estimation runs per cell, theta in {1e-3, 1e-4});
    environment variables let a user trade fidelity for speed without
    recompiling:

    - [REPRO_SCALE]   — mini-IMDB scale factor (default 1.0)
    - [REPRO_RUNS]    — estimation runs per reported median (default 20)
    - [REPRO_SEED]    — master seed (default 20200427, chosen so every
      skewed-TPC-H chain of Table IX is non-degenerate — see EXPERIMENTS.md)
    - [REPRO_PREFIXES] — size of the Table VII prefix sweep (default 100)
    - [REPRO_JOBS]    — worker domains for the parallel harness (default
      [Repro_util.Pool.default_jobs ()]; floored at 1). Results are
      bit-identical at any setting — every cell owns a keyed PRNG stream *)

type t = {
  imdb_scale : float;
  runs : int;
  seed : int;
  thetas : float list;
      (** budgets for Tables IV/V/VI. Defaults {0.01, 0.001}: the mini-IMDB
          is ~30x smaller than the real JOB data, so the paper's
          {1e-3, 1e-4} are rescaled to keep the *absolute* sample sizes --
          what sampling error actually depends on -- comparable. *)
  tpch_thetas : float list;
      (** budgets for Table VIII; the TPC-H customer/supplier tables are
          generated full-size, so the paper's {1e-3, 1e-4} apply as-is;
          0.01 is added because the paper's byte-denominated budgets buy
          more sample *tuples* than our tuple-denominated ones at equal
          theta (EXPERIMENTS.md). *)
  prefix_theta : float;
      (** budget for the Table VII sweep; default 0.02 for the same
          sample-size parity reason (paper: 0.001 on 2.9M rows). *)
  prefix_count : int;  (** Table VII sweep size *)
  jvd_threshold : float;  (** small/large split, 0.001 in the paper *)
  jobs : int;
      (** worker domains used by every experiment runner; purely an
          execution-speed knob, never a results knob *)
  obs : Repro_obs.Obs.ctx;
      (** observability context threaded through every runner, the worker
          pool and the estimators. Defaults to {!Repro_obs.Obs.null}
          (zero-overhead no-op); a live context never changes results —
          instrumentation reads clocks and bumps atomics but never touches
          a PRNG stream. *)
  prov : Provenance.collector;
      (** estimate-provenance collector the runners record per-cell
          accuracy records into (the [BENCH_*.json] artifact). Defaults to
          {!Provenance.null}; same opt-in contract as [obs] — capture
          never perturbs results or stdout. *)
}

val default : t
val from_env : unit -> t
(** [default] overridden by the environment variables above. *)

val pp : Format.formatter -> t -> unit
