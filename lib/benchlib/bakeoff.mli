(** The cross-estimator bake-off (ROADMAP open item 3): every estimator in
    the repository — the correlated-sampling family plus all related-work
    baselines, adapted through {!Repro_baselines.Estimator_intf} — driven
    over the shared two-table query grid at each θ, with {e confidence
    intervals} on every cell.

    Each (estimator × query × θ) cell runs R seeded repetitions on its
    own keyed PRNG streams and reports the median estimate, median
    q-error, a percentile-bootstrap CI on the median
    ({!Repro_stats.Bootstrap}), and — for correlated sampling — the
    paper's Sec. III analytic variance from a {e single} synopsis with
    its normal-approximation CI ({!Repro_stats.Variance}): the interval a
    production system could ship without repeated runs. Coverage ("did
    the interval contain the exact join size?") is recorded per cell and
    aggregated per estimator, in the stdout tables and in version-2
    provenance records (experiments ["bakeoff"] and ["bakeoff-analytic"])
    that [bench diff --min-ci-coverage] can gate.

    Determinism: cells are pure apart from their own keyed streams, so
    the grid parallelises over {!Repro_util.Pool} domains with
    byte-identical stdout at any [--jobs]; wall-clock measurements go
    only into the provenance artifact, never the tables. *)

type analytic = {
  an_estimate : float;  (** the single draw's estimate (= run 0's) *)
  an_variance : float;
  an_interval : Repro_stats.Bootstrap.interval;
  an_covered : bool;
}

type cell = {
  query : string;
  estimator : string;
  theta : float;
  jvd : float;
  truth : float;
  runs : int;
  zero_runs : int;
  median_estimate : float;
  median_qerror : float;
  mean_wall_seconds : float;
  mean_cpu_seconds : float;
  offline_wall_seconds : float;
  synopsis_tuples : float;
  boot : Repro_stats.Bootstrap.interval;
      (** percentile bootstrap on the median of the [runs] estimates *)
  boot_covered : bool;
  analytic : analytic option;  (** correlated-sampling cells only *)
}

type row = {
  r_query : string;
  r_theta : float;
  r_truth : float;
  r_cells : (string * cell option) list;
      (** in roster order; [None] = the method cannot answer this query *)
}

type t = { level : float; runs : int; rows : row list }

val roster :
  (string
  * (theta:float ->
    pred_a:Repro_relation.Predicate.t ->
    pred_b:Repro_relation.Predicate.t ->
    Csdl.Profile.t ->
    Repro_baselines.Estimator_intf.t option))
  list
(** The fixed estimator columns, in print order: CSDL-Opt, CSDL(1,diff),
    CSDL(t,diff), CS2L, independent, end-biased, join synopsis, wander join, AGMS
    sketch, indep-prior. *)

val run : ?level:float -> ?thetas:float list -> Config.t -> Repro_datagen.Imdb.t -> t
(** Drive the grid: [Config.runs] repetitions per cell at each θ (default
    [Config.thetas]) with [Config.seed]-keyed streams on [Config.jobs]
    domains; CIs at [level] (default 0.95). *)

val record_cells : Provenance.collector -> t -> unit
(** Emit one ["bakeoff"] record per answered cell (bootstrap CI in the
    [ci_*] fields, analytic variance in [variance]) plus one
    ["bakeoff-analytic"] record per correlated-sampling cell carrying the
    single-synopsis interval — separate groups, so the artifact reports
    both coverage kinds. Deterministic insertion order. *)

val print : t -> unit
(** The per-cell grid and the per-estimator coverage summary, to stdout.
    Only deterministic quantities are printed (no wall times), preserving
    byte-identity across [--jobs]. *)
