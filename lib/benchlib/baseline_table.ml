open Repro_relation
module Prng = Repro_util.Prng
module Pool = Repro_util.Pool
module Job = Repro_datagen.Job_workload
open Repro_baselines

type row = {
  query : string;
  truth : int;
  cells : (string * float option) list;
}

let theta = 0.01

let approach_names =
  [
    "CSDL-Opt"; "CS2L"; "independent"; "end-biased"; "AGMS"; "histogram";
    "join-syn"; "wander";
  ]

let median_of ~runs ~truth estimate_once ~seed ~key =
  let prng = Prng.create_keyed ~seed key in
  let qerrors =
    Array.init runs (fun _ ->
        Repro_stats.Qerror.compute ~truth ~estimate:(estimate_once prng))
  in
  Repro_util.Summary.median qerrors

(* The per-query closures, one per approach column; [None] marks an
   approach that cannot answer the query (sketches and histograms
   summarise unfiltered columns). Each closure only reads the shared
   profile and draws from its own keyed stream. *)
let approach_cells (config : Config.t) (q : Job.query) profile truth =
  let runs = config.Config.runs in
  let seed = config.Config.seed in
  let pred_a = q.Job.a.Join.predicate and pred_b = q.Job.b.Join.predicate in
  let has_predicates = pred_a <> Predicate.True || pred_b <> Predicate.True in
  let key tag = Printf.sprintf "baselines/%s/%s" q.Job.name tag in
  let csdl_opt () =
    let est = Csdl.Opt.prepare ~theta profile in
    Some
      (median_of ~runs ~truth
         (fun prng -> Csdl.Estimator.estimate_once ~pred_a ~pred_b est prng)
         ~seed ~key:(key "opt"))
  in
  let cs2l () =
    let est = Csdl.Estimator.prepare Csdl.Spec.cs2l ~theta profile in
    Some
      (median_of ~runs ~truth
         (fun prng -> Csdl.Estimator.estimate_once ~pred_a ~pred_b est prng)
         ~seed ~key:(key "cs2l"))
  in
  let independent () =
    let est = Independent.prepare ~theta profile in
    Some
      (median_of ~runs ~truth
         (fun prng -> Independent.estimate_once ~pred_a ~pred_b est prng)
         ~seed ~key:(key "ind"))
  in
  let end_biased () =
    let est = End_biased.prepare ~theta profile in
    Some
      (median_of ~runs ~truth
         (fun prng -> End_biased.estimate_once ~pred_a ~pred_b est prng)
         ~seed ~key:(key "eb"))
  in
  let agms () =
    (* sketches summarise unfiltered columns; only predicate-free
       queries are answerable *)
    if has_predicates then None
    else
      let qerrors =
        Array.init runs (fun i ->
            let plan_seed =
              Int64.to_int
                (Prng.derive ~seed (key (Printf.sprintf "agms/run=%d" i)))
            in
            let plan = Agms.plan ~theta profile ~seed:plan_seed in
            Repro_stats.Qerror.compute ~truth
              ~estimate:(Agms.estimate_profile plan profile))
      in
      Some (Repro_util.Summary.median qerrors)
  in
  let histogram () =
    (* histograms summarise unfiltered join columns; they answer
       predicate-free queries (and range predicates on the join
       column, which this workload does not use) *)
    if has_predicates then None
    else begin
      let buckets = Histogram.plan_buckets ~theta profile in
      let ha = Histogram.build ~buckets q.Job.a.Join.table q.Job.a.Join.column in
      let hb = Histogram.build ~buckets q.Job.b.Join.table q.Job.b.Join.column in
      Some
        (Repro_stats.Qerror.compute ~truth
           ~estimate:(Histogram.estimate_join ha hb))
    end
  in
  let join_syn () =
    match Join_synopsis.prepare ~theta profile with
    | Error _ -> None
    | Ok est ->
        let pred_fk, pred_pk =
          if Join_synopsis.fk_is_left est then (pred_a, pred_b)
          else (pred_b, pred_a)
        in
        Some
          (median_of ~runs ~truth
             (fun prng -> Join_synopsis.estimate_once ~pred_fk ~pred_pk est prng)
             ~seed ~key:(key "js"))
  in
  let wander () =
    let walks =
      max 1 (int_of_float (theta *. float_of_int profile.Csdl.Profile.total_rows))
    in
    let est = Wander.prepare ~walks profile in
    Some
      (median_of ~runs ~truth
         (fun prng -> Wander.estimate ~pred_a ~pred_b est prng)
         ~seed ~key:(key "wander"))
  in
  [ csdl_opt; cs2l; independent; end_biased; agms; histogram; join_syn; wander ]

let run (config : Config.t) data =
  let jobs = config.Config.jobs in
  (* Stage 1 — per query: the profile and exact size all eight approach
     cells share. *)
  let contexts =
    Pool.map ~obs:config.Config.obs ~jobs
      (fun (q : Job.query) ->
        let profile =
          Csdl.Profile.of_tables q.Job.a.Join.table q.Job.a.Join.column
            q.Job.b.Join.table q.Job.b.Join.column
        in
        (q, profile, float_of_int (Job.true_size q)))
      (Job.two_table_queries data)
  in
  (* Stage 2 — the flat (query x approach) grid. *)
  let tasks =
    List.concat_map
      (fun (q, profile, truth) -> approach_cells config q profile truth)
      contexts
  in
  let cell_results =
    Pool.map_array ~obs:config.Config.obs ~jobs (fun cell -> cell ()) (Array.of_list tasks)
  in
  let per_row = List.length approach_names in
  List.mapi
    (fun i (q, _, truth) ->
      {
        query = q.Job.name;
        truth = int_of_float truth;
        cells =
          List.combine approach_names
            (List.init per_row (fun j -> cell_results.((i * per_row) + j)));
      })
    contexts

let print rows =
  Render.print_table
    ~title:
      (Printf.sprintf
         "Related-work comparison (beyond the paper): median q-error at \
          theta = %g" theta)
    ~header:("Query" :: "J" :: approach_names)
    ~rows:
      (List.map
         (fun r ->
           r.query :: string_of_int r.truth
           :: List.map
                (fun (_, cell) ->
                  match cell with
                  | None -> "n/a"
                  | Some q -> Render.qerror_cell q)
                r.cells)
         rows)
    ()
