(** Experiment 1 (and the data feeding Experiments 3's variance view):
    the 14 JOB-derived two-table queries, every CSDL variant plus CS2L,
    both space budgets, [runs] estimations per cell — the raw material of
    Tables IV, V and VI.

    Execution is a two-stage fan-out on {!Repro_util.Pool}: first one task
    per query (profile construction and exact join size, the read-only
    state all of that query's cells share), then one task per
    (query, theta, approach) cell. Each cell draws from its own
    {!Repro_util.Prng.create_keyed} stream, so the results are
    bit-identical at any [Config.jobs] setting. *)

type approach = { label : string; spec : Csdl.Spec.t }

val approaches : approach list
(** The paper's column order: the 10 CSDL variants of Table III, then
    CS2L (exact variance optimisation) and CS2L-hh (the original
    implementation's heavy-hitter approximation). *)

type cell = {
  approach : string;
  estimates : float array;  (** one per run *)
  median_estimate : float;  (** provenance: the reported point estimate *)
  median_qerror : float;
  rel_variance : float;  (** empirical Var / J^2 (Table VI's metric) *)
  avg_sample_tuples : float;
      (** mean synopsis size (tuples) per run — what theta actually bought *)
  avg_wall_seconds : float;
      (** mean online-estimation wall-clock time over ALL runs — including
          runs that estimated 0, which the old protocol silently dropped
          and thereby biased the mean toward successful runs *)
  avg_cpu_seconds : float;
      (** mean CPU time over all runs, reported alongside wall time so
          EXPERIMENTS.md can cite the paper-comparable wall number while
          keeping the old CPU metric for continuity *)
  avg_offline_wall_seconds : float;
      (** mean wall time of the offline phase (synopsis drawing) per run —
          the other half of the paper's offline/online split *)
  zero_runs : int;  (** how many of the runs estimated exactly 0 *)
}

type query_result = {
  name : string;
  jvd : float;
  truth : int;
  theta : float;
  cells : cell list;
}

val run :
  ?clock:Repro_util.Clock.t ->
  Config.t ->
  Repro_datagen.Imdb.t ->
  query_result list
(** All (query, theta) combinations, in workload order. [clock] (default
    {!Repro_util.Clock.wall}) is injectable for tests; inject a fake
    clock only with [Config.jobs = 1], fakes are not domain-safe. *)

val find_cell : context:string -> string -> cell list -> cell
(** [find_cell ~context label cells] is the cell with approach [label];
    fails with a message naming [label], [context] and the labels present
    instead of raising a bare [Not_found]. *)

val is_small_jvd : Config.t -> query_result -> bool

val print_table4 : Config.t -> query_result list -> unit
(** Small-jvd queries: q-error per variant (paper Table IV). *)

val print_table5 : Config.t -> query_result list -> unit
(** Large-jvd queries (paper Table V). *)

val print_table6 : Config.t -> query_result list -> unit
(** Estimation variance of CSDL(1,t), CSDL(1,diff) and CS2L on the
    small-jvd queries (paper Table VI). *)
