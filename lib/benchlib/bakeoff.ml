open Repro_relation
module Prng = Repro_util.Prng
module Pool = Repro_util.Pool
module Clock = Repro_util.Clock
module Summary = Repro_util.Summary
module Job = Repro_datagen.Job_workload
module Qerror = Repro_stats.Qerror
module Bootstrap = Repro_stats.Bootstrap
module Variance = Repro_stats.Variance
module E = Repro_baselines.Estimator_intf

type analytic = {
  an_estimate : float;  (** the single draw's estimate (= run 0's) *)
  an_variance : float;
  an_interval : Bootstrap.interval;
  an_covered : bool;
}

type cell = {
  query : string;
  estimator : string;
  theta : float;
  jvd : float;
  truth : float;
  runs : int;
  zero_runs : int;
  median_estimate : float;
  median_qerror : float;
  mean_wall_seconds : float;
  mean_cpu_seconds : float;
  offline_wall_seconds : float;
  synopsis_tuples : float;
  boot : Bootstrap.interval;
  boot_covered : bool;
  analytic : analytic option;
}

type row = {
  r_query : string;
  r_theta : float;
  r_truth : float;
  r_cells : (string * cell option) list;  (** estimator label, n/a = None *)
}

type t = { level : float; runs : int; rows : row list }

(* The fixed estimator roster: every bake-off prints these columns in this
   order, [None] cells marking methods that cannot answer the query (AGMS
   under predicates, join synopses on many-to-many joins). Labels equal
   each adapter's [name] — asserted during reassembly. *)
let roster :
    (string
    * (theta:float ->
      pred_a:Predicate.t ->
      pred_b:Predicate.t ->
      Csdl.Profile.t ->
      E.t option))
    list =
  let some f ~theta ~pred_a ~pred_b profile =
    Some (f ~theta ~pred_a ~pred_b profile)
  in
  let spec s ~theta ~pred_a ~pred_b profile =
    Some (E.csdl ~spec:s ~theta ~pred_a ~pred_b profile)
  in
  [
    ("CSDL-Opt", some (E.csdl ?spec:None));
    ("CSDL(1,diff)", spec (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff));
    ("CSDL(t,diff)", spec (Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_diff));
    ("CS2L", spec Csdl.Spec.cs2l);
    ("independent", some E.independent);
    ("end-biased", some E.end_biased);
    ("join synopsis", E.join_synopsis);
    ("wander join", some E.wander);
    ("AGMS sketch", E.agms);
    ( "indep-prior",
      fun ~theta:_ ~pred_a:_ ~pred_b:_ profile ->
        Some (E.independence_prior profile) );
  ]

let covered (iv : Bootstrap.interval) truth =
  (not (Float.is_nan iv.Bootstrap.lower))
  && (not (Float.is_nan iv.Bootstrap.upper))
  && iv.Bootstrap.lower <= truth
  && truth <= iv.Bootstrap.upper

(* One (estimator x query x theta) cell: R seeded repetitions from the
   cell's own keyed streams, a percentile-bootstrap CI on the median
   estimate, and — for the correlated-sampling family — the analytic
   Sec. III interval from a single synopsis (run 0's stream, so its draw
   is run 0's draw). Pure apart from its own streams, so cells run on any
   domain in any order. *)
let cell_task ~seed ~runs ~level (q : Job.query) ~profile ~jvd ~truth ~theta
    (label, build) () =
  let pred_a = q.Job.a.Join.predicate and pred_b = q.Job.b.Join.predicate in
  match build ~theta ~pred_a ~pred_b profile with
  | None -> None
  | Some (est : E.t) ->
      let key tag =
        Printf.sprintf "bakeoff/%s/%s/theta=%g/%s" q.Job.name label theta tag
      in
      let run_key i = key (Printf.sprintf "run=%d" i) in
      let estimates = Array.make runs Float.nan in
      let walls = Array.make runs 0.0 in
      let cpus = Array.make runs 0.0 in
      for i = 0 to runs - 1 do
        let prng = Prng.create_keyed ~seed (run_key i) in
        let v, span = Clock.time (fun () -> est.E.estimate prng) in
        estimates.(i) <- v;
        walls.(i) <- span.Clock.wall_seconds;
        cpus.(i) <- span.Clock.cpu_seconds
      done;
      let qerrors =
        Array.map (fun e -> Qerror.compute ~truth ~estimate:e) estimates
      in
      let boot =
        Bootstrap.median_interval ~level
          (Prng.create_keyed ~seed (key "bootstrap"))
          estimates
      in
      let analytic =
        match est.E.estimate_with_variance with
        | None -> None
        | Some estimate_with_variance ->
            let point, variance =
              estimate_with_variance (Prng.create_keyed ~seed (run_key 0))
            in
            let iv = Variance.normal_interval ~level ~point ~variance () in
            Some
              {
                an_estimate = point;
                an_variance = variance;
                an_interval = iv;
                an_covered = covered iv truth;
              }
      in
      Some
        {
          query = q.Job.name;
          estimator = est.E.name;
          theta;
          jvd;
          truth;
          runs;
          zero_runs =
            Array.fold_left
              (fun n e -> if e = 0.0 then n + 1 else n)
              0 estimates;
          median_estimate = Summary.median estimates;
          median_qerror = Summary.median qerrors;
          mean_wall_seconds = Summary.mean walls;
          mean_cpu_seconds = Summary.mean cpus;
          offline_wall_seconds = est.E.offline_wall_seconds;
          synopsis_tuples = est.E.synopsis_tuples;
          boot;
          boot_covered = covered boot truth;
          analytic;
        }

let run ?(level = 0.95) ?thetas (config : Config.t) data =
  let thetas = Option.value thetas ~default:config.Config.thetas in
  let jobs = config.Config.jobs in
  let seed = config.Config.seed in
  let runs = config.Config.runs in
  (* Stage 1 — per query: the profile, jvd and exact size every roster
     cell shares. *)
  let contexts =
    Pool.map ~obs:config.Config.obs ~jobs
      (fun (q : Job.query) ->
        let profile =
          Csdl.Profile.of_tables q.Job.a.Join.table q.Job.a.Join.column
            q.Job.b.Join.table q.Job.b.Join.column
        in
        (q, profile, Job.query_jvd q, float_of_int (Job.true_size q)))
      (Job.two_table_queries data)
  in
  (* Stage 2 — the flat (query x theta x estimator) grid. *)
  let tasks =
    List.concat_map
      (fun (q, profile, jvd, truth) ->
        List.concat_map
          (fun theta ->
            List.map
              (fun entry ->
                cell_task ~seed ~runs ~level q ~profile ~jvd ~truth ~theta
                  entry)
              roster)
          thetas)
      contexts
  in
  let cells =
    Pool.map_array ~obs:config.Config.obs ~jobs
      (fun task -> task ())
      (Array.of_list tasks)
  in
  (* Sequential reassembly, in grid order. *)
  let per_query = List.length thetas * List.length roster in
  let per_theta = List.length roster in
  let rows =
    List.concat
      (List.mapi
         (fun qi ((q : Job.query), _, _, truth) ->
           List.mapi
             (fun ti theta ->
               {
                 r_query = q.Job.name;
                 r_theta = theta;
                 r_truth = truth;
                 r_cells =
                   List.mapi
                     (fun ei (label, _) ->
                       let cell =
                         cells.((qi * per_query) + (ti * per_theta) + ei)
                       in
                       (match cell with
                       | Some c when c.estimator <> label ->
                           invalid_arg
                             (Printf.sprintf
                                "Bakeoff.run: roster label %S produced \
                                 estimator %S"
                                label c.estimator)
                       | _ -> ());
                       (label, cell))
                     roster;
               })
             thetas)
         contexts)
  in
  { level; runs; rows }

(* ---------------- provenance ---------------- *)

let flag b = if b then 1.0 else 0.0

let record_cells prov t =
  List.iter
    (fun row ->
      List.iter
        (fun (_, cell) ->
          match cell with
          | None -> ()
          | Some c ->
              Provenance.add prov
                {
                  Provenance.empty with
                  Provenance.experiment = "bakeoff";
                  query = c.query;
                  variant = c.estimator;
                  theta = c.theta;
                  jvd = c.jvd;
                  sample_tuples = c.synopsis_tuples;
                  truth = c.truth;
                  estimate = c.median_estimate;
                  qerror = c.median_qerror;
                  runs = c.runs;
                  zero_runs = c.zero_runs;
                  wall_seconds = c.mean_wall_seconds;
                  cpu_seconds = c.mean_cpu_seconds;
                  offline_wall_seconds = c.offline_wall_seconds;
                  ci_lower = c.boot.Bootstrap.lower;
                  ci_upper = c.boot.Bootstrap.upper;
                  ci_covered = flag c.boot_covered;
                  variance =
                    (match c.analytic with
                    | Some a -> a.an_variance
                    | None -> Float.nan);
                };
              (* the analytic interval is its own record stream, so the
                 artifact reports bootstrap and analytic coverage as
                 separate (experiment, variant) groups and the
                 --min-ci-coverage gate sees both *)
              match c.analytic with
              | None -> ()
              | Some a ->
                  Provenance.add prov
                    {
                      Provenance.empty with
                      Provenance.experiment = "bakeoff-analytic";
                      query = c.query;
                      variant = c.estimator;
                      theta = c.theta;
                      jvd = c.jvd;
                      sample_tuples = c.synopsis_tuples;
                      truth = c.truth;
                      estimate = a.an_estimate;
                      qerror =
                        Qerror.compute ~truth:c.truth
                          ~estimate:a.an_estimate;
                      runs = 1;
                      zero_runs = (if a.an_estimate = 0.0 then 1 else 0);
                      offline_wall_seconds = c.offline_wall_seconds;
                      ci_lower = a.an_interval.Bootstrap.lower;
                      ci_upper = a.an_interval.Bootstrap.upper;
                      ci_covered = flag a.an_covered;
                      variance = a.an_variance;
                    })
        row.r_cells)
    t.rows

(* ---------------- rendering ---------------- *)

let interval_cell (iv : Bootstrap.interval) =
  if Float.is_nan iv.Bootstrap.lower || Float.is_nan iv.Bootstrap.upper then
    "n/a"
  else
    let endpoint v =
      if v = Float.infinity then "inf" else Printf.sprintf "%.4g" v
    in
    Printf.sprintf "[%s, %s]"
      (endpoint iv.Bootstrap.lower)
      (endpoint iv.Bootstrap.upper)

let covered_cell b = if b then "y" else "MISS"

let print t =
  let level_pct = 100.0 *. t.level in
  Render.print_table
    ~title:
      (Printf.sprintf
         "Bake-off: all estimators, %d runs/cell, %g%% CIs (bootstrap on \
          the median; analytic from one synopsis)"
         t.runs level_pct)
    ~header:
      [
        "Query"; "theta"; "J"; "Estimator"; "est~"; "q-err"; "boot CI";
        "cov"; "analytic CI"; "cov"; "tuples";
      ]
    ~rows:
      (List.concat_map
         (fun row ->
           List.map
             (fun (label, cell) ->
               match cell with
               | None ->
                   [
                     row.r_query;
                     Printf.sprintf "%g" row.r_theta;
                     Printf.sprintf "%.0f" row.r_truth;
                     label;
                     "n/a"; "n/a"; "n/a"; "-"; "n/a"; "-"; "n/a";
                   ]
               | Some c ->
                   let analytic_iv, analytic_cov =
                     match c.analytic with
                     | None -> ("n/a", "-")
                     | Some a ->
                         (interval_cell a.an_interval,
                          covered_cell a.an_covered)
                   in
                   [
                     row.r_query;
                     Printf.sprintf "%g" row.r_theta;
                     Printf.sprintf "%.0f" row.r_truth;
                     label;
                     Printf.sprintf "%.6g" c.median_estimate;
                     Render.qerror_cell c.median_qerror;
                     interval_cell c.boot;
                     covered_cell c.boot_covered;
                     analytic_iv;
                     analytic_cov;
                     Printf.sprintf "%.0f" c.synopsis_tuples;
                   ])
             row.r_cells)
         t.rows)
    ();
  (* Per-estimator aggregate view: the numbers the artifact summaries
     carry, deterministic, so the jobs-invariance harness can compare it
     byte for byte. *)
  let by_estimator = Hashtbl.create 16 in
  List.iter
    (fun row ->
      List.iter
        (fun (label, cell) ->
          match cell with
          | None -> ()
          | Some c ->
              Hashtbl.replace by_estimator label
                (c
                :: Option.value ~default:[]
                     (Hashtbl.find_opt by_estimator label)))
        row.r_cells)
    t.rows;
  let coverage flags =
    match flags with
    | [] -> "n/a"
    | _ ->
        Printf.sprintf "%.2f"
          (Summary.mean (Array.of_list (List.map flag flags)))
  in
  Render.print_table
    ~title:"Bake-off coverage: fraction of cells whose CI contains J"
    ~header:
      [
        "Estimator"; "cells"; "median q-err"; "boot cov"; "analytic cov";
        "inf-fail"; "nan-fail";
      ]
    ~rows:
      (List.filter_map
         (fun (label, _) ->
           match Hashtbl.find_opt by_estimator label with
           | None -> None
           | Some cells ->
               let cells = List.rev cells in
               let qerrors =
                 Array.of_list (List.map (fun c -> c.median_qerror) cells)
               in
               Some
                 [
                   label;
                   string_of_int (List.length cells);
                   Render.qerror_cell (Summary.median qerrors);
                   coverage (List.map (fun c -> c.boot_covered) cells);
                   coverage
                     (List.filter_map
                        (fun c ->
                          Option.map (fun a -> a.an_covered) c.analytic)
                        cells);
                   string_of_int
                     (List.length
                        (List.filter
                           (fun c -> Qerror.is_zero_mismatch c.median_qerror)
                           cells));
                   string_of_int
                     (List.length
                        (List.filter
                           (fun c -> Qerror.is_garbage c.median_qerror)
                           cells));
                 ])
         roster)
    ()
