(** Plain-text table rendering for the experiment output: aligned columns,
    a header rule, and the paper's "inf" convention for failed estimates. *)

val table :
  header:string list -> rows:string list list -> Format.formatter -> unit
(** Column widths are derived from the content; every row must have the
    header's arity. *)

val print_table :
  ?ppf:Format.formatter ->
  title:string ->
  header:string list ->
  rows:string list list ->
  unit ->
  unit
(** [table] to [ppf] (default stdout) under a [== title ==] banner;
    additionally written as CSV when {!set_csv_dir} is active. The smoke
    harness routes nondeterministic tables (measured timings) to stderr so
    stdout stays byte-comparable across [--jobs] settings. *)

val set_csv_dir : string option -> unit
(** When set, every {!print_table} call also writes
    [<dir>/<title-slug>.csv] — machine-readable experiment exports for
    downstream analysis. The directory must exist. *)

val qerror_cell : float -> string
(** Same as {!Repro_stats.Qerror.to_string}. *)

val variance_cell : float -> string
(** Relative variance rendering: "inf" / fixed point / scientific. *)
