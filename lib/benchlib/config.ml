type t = {
  imdb_scale : float;
  runs : int;
  seed : int;
  thetas : float list;
  tpch_thetas : float list;
  prefix_theta : float;
  prefix_count : int;
  jvd_threshold : float;
  jobs : int;
  obs : Repro_obs.Obs.ctx;
  prov : Provenance.collector;
}

let default =
  {
    imdb_scale = 1.0;
    runs = 20;
    seed = 20200427;
    thetas = [ 0.01; 0.001 ];
    tpch_thetas = [ 0.01; 0.001; 0.0001 ];
    prefix_theta = 0.02;
    prefix_count = 100;
    jvd_threshold = 0.001;
    jobs = Repro_util.Pool.default_jobs ();
    obs = Repro_obs.Obs.null;
    prov = Provenance.null;
  }

let env_float name fallback =
  match Sys.getenv_opt name with
  | Some raw -> (
      match float_of_string_opt raw with Some v -> v | None -> fallback)
  | None -> fallback

let env_int name fallback =
  match Sys.getenv_opt name with
  | Some raw -> (
      match int_of_string_opt raw with Some v -> v | None -> fallback)
  | None -> fallback

let from_env () =
  {
    default with
    imdb_scale = env_float "REPRO_SCALE" default.imdb_scale;
    runs = env_int "REPRO_RUNS" default.runs;
    seed = env_int "REPRO_SEED" default.seed;
    prefix_count = env_int "REPRO_PREFIXES" default.prefix_count;
    jobs = max 1 (env_int "REPRO_JOBS" default.jobs);
  }

let pp fmt t =
  Format.fprintf fmt
    "imdb_scale=%g runs=%d seed=%d jobs=%d thetas=[%s] tpch_thetas=[%s] \
     prefix_theta=%g prefixes=%d jvd_threshold=%g"
    t.imdb_scale t.runs t.seed t.jobs
    (String.concat "; " (List.map (Printf.sprintf "%g") t.thetas))
    (String.concat "; " (List.map (Printf.sprintf "%g") t.tpch_thetas))
    t.prefix_theta t.prefix_count t.jvd_threshold
