module Prng = Repro_util.Prng
module Pool = Repro_util.Pool
module Tpch = Repro_datagen.Tpch
open Repro_relation

type row = {
  dataset : string;
  truth : int;
  opt_qerror : float;
  cs2l_qerror : float;
}

let theta = 0.001

let run (config : Config.t) =
  let jobs = config.Config.jobs in
  let pred_dims =
    [
      Predicate.Compare (Predicate.Gt, "o_totalprice", Value.Float 250_000.0);
      Predicate.Compare (Predicate.Lt, "p_retailprice", Value.Float 1_000.0);
    ]
  in
  let contexts =
    Pool.map ~obs:config.Config.obs ~jobs
      (fun (scale, z) ->
        let data = Tpch.generate ~scale ~z ~seed:config.Config.seed in
        let tables =
          {
            Csdl.Star.fact = data.Tpch.lineitem;
            dimensions =
              [
                { Csdl.Star.table = data.Tpch.orders; pk = "o_orderkey"; fk = "l_orderkey" };
                { Csdl.Star.table = data.Tpch.part; pk = "p_partkey"; fk = "l_partkey" };
              ];
          }
        in
        let truth = float_of_int (Csdl.Star.true_size ~pred_dims tables) in
        (scale, z, Tpch.dataset_name data, tables, truth))
      Table8.datasets
  in
  let tasks =
    List.concat_map
      (fun context -> [ (context, "opt"); (context, "cs2l") ])
      contexts
  in
  let medians =
    Pool.map_array ~obs:config.Config.obs ~jobs
      (fun ((scale, z, _, tables, truth), tag) ->
        let prepared =
          match tag with
          | "opt" -> Csdl.Star.prepare_opt ~theta tables
          | _ -> Csdl.Star.prepare Csdl.Spec.cs2l ~theta tables
        in
        let prng =
          Prng.create_keyed ~seed:config.Config.seed
            (Printf.sprintf "star/scale=%g/z=%g/%s" scale z tag)
        in
        let qerrors =
          Array.init config.Config.runs (fun _ ->
              let synopsis = Csdl.Star.draw prepared prng in
              Repro_stats.Qerror.compute ~truth
                ~estimate:(Csdl.Star.estimate ~pred_dims prepared synopsis))
        in
        Repro_util.Summary.median qerrors)
      (Array.of_list tasks)
  in
  List.mapi
    (fun i (_, _, dataset, _, truth) ->
      {
        dataset;
        truth = int_of_float truth;
        opt_qerror = medians.(2 * i);
        cs2l_qerror = medians.((2 * i) + 1);
      })
    contexts

let print rows =
  Render.print_table
    ~title:
      "Star join (beyond the paper): lineitem |><| orders |><| part with \
       selections on both dimensions (theta = 0.001)"
    ~header:[ "Dataset"; "J"; "CSDL-Opt"; "CS2L" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.dataset;
             string_of_int r.truth;
             Render.qerror_cell r.opt_qerror;
             Render.qerror_cell r.cs2l_qerror;
           ])
         rows)
    ()
