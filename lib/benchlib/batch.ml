open Repro_relation
module Clock = Repro_util.Clock
module Obs = Repro_obs.Obs

type query = { q_id : string; q_left : Predicate.t; q_right : Predicate.t }

let query_id i = Printf.sprintf "q%04d" i

(* One query per line: "<left predicate> ;; <right predicate>". An empty
   side means no selection; '#' lines and blank lines are skipped. Query
   ids number the surviving queries in file order, starting at 0. *)
let parse_queries contents =
  let ( let* ) = Result.bind in
  let parse_side ~line what s =
    let s = String.trim s in
    if s = "" then Ok Predicate.True
    else
      Result.map_error
        (Printf.sprintf "line %d, %s predicate: %s" line what)
        (Predicate_parser.parse s)
  in
  let lines = String.split_on_char '\n' contents in
  let* rev, _ =
    List.fold_left
      (fun acc (line_number, raw) ->
        let* rev, i = acc in
        let s = String.trim raw in
        if s = "" || s.[0] = '#' then Ok (rev, i)
        else
          let left, right =
            match String.index_opt s ';' with
            | Some j
              when j + 1 < String.length s && s.[j + 1] = ';' ->
                ( String.sub s 0 j,
                  String.sub s (j + 2) (String.length s - j - 2) )
            | _ -> (s, "")
          in
          let* q_left = parse_side ~line:line_number "left" left in
          let* q_right = parse_side ~line:line_number "right" right in
          Ok ({ q_id = query_id i; q_left; q_right } :: rev, i + 1))
      (Ok ([], 0))
      (List.mapi (fun i raw -> (i + 1, raw)) lines)
  in
  Ok (List.rev rev)

type result_row = {
  b_id : string;
  b_estimate : float;
  b_wall_seconds : float;  (** online-only: the estimate call *)
  b_cpu_seconds : float;
}

let total_online_wall rows =
  List.fold_left (fun acc r -> acc +. r.b_wall_seconds) 0.0 rows

(* Answer every query against one already-loaded synopsis; only the online
   phase is timed, per query. [load_wall_seconds] (the one-off store load /
   synopsis draw) is amortised over the batch in the provenance records, so
   the artifact carries the full offline/online split without pretending
   the load happened once per query. *)
let run ?(obs = Obs.null) ?(prov = Provenance.null) ?(clock = Clock.wall)
    ~store ~key ~load_wall_seconds queries =
  let n = List.length queries in
  let amortised_offline =
    if n = 0 then Float.nan else load_wall_seconds /. float_of_int n
  in
  let info = Csdl.Store.info store key in
  let variant, theta =
    match info with
    | Some i -> (i.Csdl.Store.i_variant, i.Csdl.Store.i_theta)
    | None -> ("?", Float.nan)
  in
  let rows =
    List.map
      (fun q ->
        let estimate, span =
          Clock.time ~wall_clock:clock (fun () ->
              Csdl.Store.estimate ~obs ~pred_a:q.q_left ~pred_b:q.q_right
                store ~key)
        in
        Provenance.add prov
          {
            Provenance.empty with
            Provenance.experiment = "batch";
            query = q.q_id;
            variant;
            theta;
            jvd = Float.nan;
            sample_tuples = Float.nan;
            truth = Float.nan;
            qerror = Float.nan;
            estimate;
            rung = "";
            downgrades = 0;
            runs = 1;
            zero_runs = (if estimate = 0.0 then 1 else 0);
            wall_seconds = span.Clock.wall_seconds;
            cpu_seconds = span.Clock.cpu_seconds;
            offline_wall_seconds = amortised_offline;
          };
        {
          b_id = q.q_id;
          b_estimate = estimate;
          b_wall_seconds = span.Clock.wall_seconds;
          b_cpu_seconds = span.Clock.cpu_seconds;
        })
      queries
  in
  (* One aggregate record per batch invocation. Per-query walls are
     microseconds — below the diff's clock-noise floor — so the regression
     gate needs the whole-batch online total in a record of its own to
     bound the hot path's wall clock (see [Provenance.online_experiment]). *)
  if n > 0 then
    Provenance.add prov
      {
        Provenance.empty with
        Provenance.experiment = Provenance.online_experiment;
        query = "total";
        variant;
        theta;
        jvd = Float.nan;
        sample_tuples = Float.nan;
        truth = Float.nan;
        qerror = Float.nan;
        estimate = Float.nan;
        rung = "";
        downgrades = 0;
        runs = n;
        zero_runs =
          List.fold_left
            (fun acc r -> acc + if r.b_estimate = 0.0 then 1 else 0)
            0 rows;
        wall_seconds = total_online_wall rows;
        cpu_seconds =
          List.fold_left (fun acc r -> acc +. r.b_cpu_seconds) 0.0 rows;
        offline_wall_seconds = load_wall_seconds;
      };
  rows
