module Prng = Repro_util.Prng
module Pool = Repro_util.Pool
module Clock = Repro_util.Clock
module Summary = Repro_util.Summary
module Tpch = Repro_datagen.Tpch

type row = {
  dataset : string;
  theta : float;
  truth : int;
  jvd : float;
  opt_qerror : float;
  opt_variance : float;
  one_diff_qerror : float;
  one_diff_variance : float;
  cs2l_qerror : float;
  cs2l_variance : float;
}

let datasets = [ (1.0, 4.0); (0.1, 4.0); (1.0, 2.0); (0.1, 2.0) ]

let approaches = [ "opt"; "1diff"; "cs2l" ]

(* Everything one (dataset, theta, approach) cell produces: the printed
   pair plus the provenance-only fields. *)
type cell = {
  c_qerror : float;
  c_variance : float;
  c_estimate : float;
  c_sample_tuples : float;
  c_wall : float;
  c_cpu : float;
  c_zero_runs : int;
}

let run (config : Config.t) =
  let jobs = config.Config.jobs in
  (* Stage 1 — one task per dataset: generation, the profile and the
     exact join size are shared read-only by all of that dataset's
     cells. *)
  let contexts =
    Pool.map ~obs:config.Config.obs ~jobs
      (fun (scale, z) ->
        let data = Tpch.generate ~scale ~z ~seed:config.Config.seed in
        let profile =
          Csdl.Profile.of_tables data.Tpch.customer "c_nationkey"
            data.Tpch.supplier "s_nationkey"
        in
        let truth = float_of_int (Csdl.Profile.true_join_size profile) in
        (scale, z, Tpch.dataset_name data, profile, truth))
      datasets
  in
  (* Stage 2 — one cell per (dataset, theta, approach), each with its own
     keyed stream. *)
  let tasks =
    List.concat_map
      (fun context ->
        List.concat_map
          (fun theta -> List.map (fun tag -> (context, theta, tag)) approaches)
          config.Config.tpch_thetas)
      contexts
  in
  let cell_results =
    Pool.map_array ~obs:config.Config.obs ~jobs
      (fun ((scale, z, _, profile, truth), theta, tag) ->
        let estimator =
          match tag with
          | "opt" -> Csdl.Opt.prepare ~theta profile
          | "1diff" ->
              Csdl.Estimator.prepare
                (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff)
                ~theta profile
          | _ -> Csdl.Estimator.prepare Csdl.Spec.cs2l ~theta profile
        in
        let prng =
          Prng.create_keyed ~seed:config.Config.seed
            (Printf.sprintf "table8/scale=%g/z=%g/theta=%.17g/%s" scale z
               theta tag)
        in
        (* draw + estimate is exactly [estimate_once] unrolled, so the
           PRNG stream — and every printed number — is unchanged; the
           unrolling is what lets us see the synopsis size and time the
           online phase for provenance. *)
        let runs = config.Config.runs in
        let wall_total = ref 0.0
        and cpu_total = ref 0.0
        and sample_tuples = ref 0
        and zero_runs = ref 0 in
        let estimates =
          Array.init runs (fun _ ->
              let synopsis = Csdl.Estimator.draw estimator prng in
              sample_tuples :=
                !sample_tuples + Csdl.Synopsis.size_tuples synopsis;
              let estimate, span =
                Clock.time (fun () ->
                    Csdl.Estimator.estimate estimator synopsis)
              in
              wall_total := !wall_total +. span.Clock.wall_seconds;
              cpu_total := !cpu_total +. span.Clock.cpu_seconds;
              if estimate = 0.0 then incr zero_runs;
              estimate)
        in
        let qerrors =
          Array.map
            (fun estimate -> Repro_stats.Qerror.compute ~truth ~estimate)
            estimates
        in
        let per_run total = total /. float_of_int runs in
        {
          c_qerror = Summary.median qerrors;
          c_variance = Summary.relative_variance ~truth estimates;
          c_estimate = Summary.median estimates;
          c_sample_tuples = per_run (float_of_int !sample_tuples);
          c_wall = per_run !wall_total;
          c_cpu = per_run !cpu_total;
          c_zero_runs = !zero_runs;
        })
      (Array.of_list tasks)
  in
  (* Reassemble: each (dataset, theta) row owns |approaches| consecutive
     cells in enumeration order. *)
  let per_row = List.length approaches in
  let row = ref 0 in
  List.concat_map
    (fun (_, _, dataset, profile, truth) ->
      List.map
        (fun theta ->
          let base = !row * per_row in
          incr row;
          let jvd = profile.Csdl.Profile.jvd in
          List.iteri
            (fun i tag ->
              let c = cell_results.(base + i) in
              Provenance.add config.Config.prov
                {
                  Provenance.empty with
                  Provenance.experiment = "table8";
                  query = dataset;
                  variant = tag;
                  theta;
                  jvd;
                  sample_tuples = c.c_sample_tuples;
                  truth;
                  estimate = c.c_estimate;
                  qerror = c.c_qerror;
                  rung = "";
                  downgrades = 0;
                  runs = config.Config.runs;
                  zero_runs = c.c_zero_runs;
                  wall_seconds = c.c_wall;
                  cpu_seconds = c.c_cpu;
                  offline_wall_seconds = Float.nan;
                })
            approaches;
          let opt = cell_results.(base) in
          let one_diff = cell_results.(base + 1) in
          let cs2l = cell_results.(base + 2) in
          {
            dataset;
            theta;
            truth = int_of_float truth;
            jvd;
            opt_qerror = opt.c_qerror;
            opt_variance = opt.c_variance;
            one_diff_qerror = one_diff.c_qerror;
            one_diff_variance = one_diff.c_variance;
            cs2l_qerror = cs2l.c_qerror;
            cs2l_variance = cs2l.c_variance;
          })
        config.Config.tpch_thetas)
    contexts

let print rows =
  (* failed cells report infinite variance, matching the paper *)
  let variance qerror var =
    if Repro_stats.Qerror.is_failure qerror then Float.infinity else var
  in
  Render.print_table
    ~title:
      "Table VIII: skewed TPC-H, customer |><| supplier on nationkey \
       (CSDL(1,diff) column added: the variant the paper's dispatch \
       effectively uses on this small-jvd join)"
    ~header:
      [
        "Dataset"; "theta"; "J"; "jvd"; "Opt q-err"; "Opt var";
        "1,diff q-err"; "1,diff var"; "CS2L q-err"; "CS2L var";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.dataset;
             Printf.sprintf "%g" r.theta;
             string_of_int r.truth;
             Printf.sprintf "%.5f" r.jvd;
             Render.qerror_cell r.opt_qerror;
             Render.variance_cell (variance r.opt_qerror r.opt_variance);
             Render.qerror_cell r.one_diff_qerror;
             Render.variance_cell (variance r.one_diff_qerror r.one_diff_variance);
             Render.qerror_cell r.cs2l_qerror;
             Render.variance_cell (variance r.cs2l_qerror r.cs2l_variance);
           ])
         rows)
    ()
