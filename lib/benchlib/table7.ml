open Repro_relation
module Prng = Repro_util.Prng
module Pool = Repro_util.Pool
module Job = Repro_datagen.Job_workload

type sweep_point = {
  rank : int;
  prefix : string;
  truth : int;
  opt_qerror : float;
  cs2l_qerror : float;
  cs2l_hh_qerror : float;
}

type result = {
  kind : [ `Pkfk | `M2m ];
  points : sweep_point list;
  shown_ranks : int list;
}

let run_kind (config : Config.t) data prefixes kind =
  let jobs = config.Config.jobs in
  (* The offline phase does not depend on the predicate, so we draw the
     synopses once per approach and reuse them across the whole sweep. *)
  let query_of prefix =
    match kind with
    | `Pkfk -> Job.pkfk_prefix_query data ~prefix
    | `M2m -> Job.m2m_prefix_query data ~prefix
  in
  let kind_tag = match kind with `Pkfk -> "pkfk" | `M2m -> "m2m" in
  let theta = config.Config.prefix_theta in
  let template = query_of "X" in
  let profile =
    Csdl.Profile.of_tables template.Job.a.Join.table template.Job.a.Join.column
      template.Job.b.Join.table template.Job.b.Join.column
  in
  let opt = Csdl.Opt.prepare ~theta profile in
  let cs2l = Csdl.Estimator.prepare Csdl.Spec.cs2l ~theta profile in
  let cs2l_hh = Csdl.Estimator.prepare (Csdl.Spec.cs2l_approx ()) ~theta profile in
  (* Three independent keyed streams, one per approach — drawn as three
     pool tasks since each stream is internally sequential. *)
  let all_synopses =
    Pool.map_array ~obs:config.Config.obs ~jobs
      (fun (estimator, tag) ->
        let prng =
          Prng.create_keyed ~seed:config.Config.seed
            (Printf.sprintf "table7/%s/%s" kind_tag tag)
        in
        Array.init config.Config.runs (fun _ ->
            Csdl.Estimator.draw estimator prng))
      [| (opt, "opt"); (cs2l, "cs2l"); (cs2l_hh, "cs2l_hh") |]
  in
  let opt_synopses = all_synopses.(0)
  and cs2l_synopses = all_synopses.(1)
  and cs2l_hh_synopses = all_synopses.(2) in
  (* The sweep itself: one pure task per prefix. Estimation only reads the
     shared estimators and pre-drawn synopses, so points parallelise
     without perturbing each other. *)
  let points =
    Pool.map ~obs:config.Config.obs ~jobs
      (fun (i, prefix) ->
        let q = query_of prefix in
        let truth = float_of_int (Job.true_size q) in
        let median estimator synopses =
          let qerrors =
            Array.map
              (fun synopsis ->
                let estimate =
                  Csdl.Estimator.estimate ~pred_a:q.Job.a.Join.predicate
                    ~pred_b:q.Job.b.Join.predicate estimator synopsis
                in
                Repro_stats.Qerror.compute ~truth ~estimate)
              synopses
          in
          Repro_util.Summary.median qerrors
        in
        {
          rank = i + 1;
          prefix;
          truth = int_of_float truth;
          opt_qerror = median opt opt_synopses;
          cs2l_qerror = median cs2l cs2l_synopses;
          cs2l_hh_qerror = median cs2l_hh cs2l_hh_synopses;
        })
      (List.mapi (fun i prefix -> (i, prefix)) prefixes)
  in
  let shown_ranks =
    List.filteri (fun i _ -> i mod 5 = 0) (List.mapi (fun i _ -> i + 1) prefixes)
  in
  { kind; points; shown_ranks }

let run (config : Config.t) data =
  let prefixes = Job.top_prefixes data config.Config.prefix_count in
  [ run_kind config data prefixes `Pkfk; run_kind config data prefixes `M2m ]

let failures result ~on ~ranks =
  let selected =
    match ranks with
    | None -> result.points
    | Some ranks -> List.filter (fun p -> List.mem p.rank ranks) result.points
  in
  List.length
    (List.filter
       (fun p ->
         Repro_stats.Qerror.is_failure
           (match on with
          | `Opt -> p.opt_qerror
          | `Cs2l -> p.cs2l_qerror
          | `Cs2l_hh -> p.cs2l_hh_qerror))
       selected)

let print result =
  let title =
    match result.kind with
    | `Pkfk -> "Table VII(a): PK-FK join, LIKE-prefix selectivity sweep"
    | `M2m -> "Table VII(b): many-to-many join, LIKE-prefix selectivity sweep"
  in
  let rows =
    result.points
    |> List.filter (fun p -> List.mem p.rank result.shown_ranks)
    |> List.map (fun p ->
           [
             string_of_int p.rank;
             p.prefix;
             string_of_int p.truth;
             Render.qerror_cell p.opt_qerror;
             Render.qerror_cell p.cs2l_qerror;
             Render.qerror_cell p.cs2l_hh_qerror;
           ])
  in
  let summary =
    [
      [
        "#inf (shown)";
        "";
        "";
        string_of_int (failures result ~on:`Opt ~ranks:(Some result.shown_ranks));
        string_of_int (failures result ~on:`Cs2l ~ranks:(Some result.shown_ranks));
        string_of_int (failures result ~on:`Cs2l_hh ~ranks:(Some result.shown_ranks));
      ];
      [
        "#inf (all)";
        "";
        "";
        string_of_int (failures result ~on:`Opt ~ranks:None);
        string_of_int (failures result ~on:`Cs2l ~ranks:None);
        string_of_int (failures result ~on:`Cs2l_hh ~ranks:None);
      ];
    ]
  in
  Render.print_table ~title
    ~header:[ "Rank"; "Prefix"; "J"; "CSDL-Opt"; "CS2L"; "CS2L-hh" ]
    ~rows:(rows @ summary) ()
