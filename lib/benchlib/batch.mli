(** Batched online estimation: load a synopsis once, answer a whole file
    of predicate queries from it in one process — the deployment shape the
    paper's offline/online split argues for. Per query, only the online
    phase (the estimate call against the already-loaded synopsis) is
    timed; the one-off load cost is reported amortised across the batch in
    each provenance record's [offline_wall_seconds]. *)

open Repro_relation

type query = {
  q_id : string;  (** ["q%04d"], numbering surviving lines from 0 *)
  q_left : Predicate.t;
  q_right : Predicate.t;
}

val query_id : int -> string

val parse_queries : string -> (query list, string) result
(** Parse a queries file: one query per line as
    ["<left predicate> ;; <right predicate>"]; an empty side means no
    selection on that table, blank lines and [#] comments are skipped.
    Errors carry the 1-based line number. *)

type result_row = {
  b_id : string;
  b_estimate : float;
  b_wall_seconds : float;  (** online-only: the estimate call *)
  b_cpu_seconds : float;
}

val run :
  ?obs:Repro_obs.Obs.ctx ->
  ?prov:Provenance.collector ->
  ?clock:Repro_util.Clock.t ->
  store:Csdl.Store.t ->
  key:string ->
  load_wall_seconds:float ->
  query list ->
  result_row list
(** Answer each query against the synopsis stored under [key], in order.
    Records one provenance entry per query (experiment ["batch"]); truth
    and q-error are [nan] — a batch run has no ground truth. A non-empty
    batch also records one aggregate entry (experiment
    {!Provenance.online_experiment}, query ["total"]) whose
    [wall_seconds] is the summed online wall and whose
    [offline_wall_seconds] is the un-amortised [load_wall_seconds] — the
    record the regression gate's online-wall bound reads. Raises
    [Not_found] for an unknown key, like {!Csdl.Store.estimate}. *)

val total_online_wall : result_row list -> float
