let table ~header ~rows fmt =
  let all = header :: rows in
  let arity = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> arity then
        invalid_arg (Printf.sprintf "Render.table: row %d has wrong arity" i))
    rows;
  let widths = Array.make arity 0 in
  List.iter
    (List.iteri (fun j cell -> widths.(j) <- max widths.(j) (String.length cell)))
    all;
  let render_row row =
    row
    |> List.mapi (fun j cell -> Printf.sprintf "%-*s" widths.(j) cell)
    |> String.concat "  "
  in
  Format.fprintf fmt "%s@." (render_row header);
  let rule = String.make (Array.fold_left ( + ) (2 * (arity - 1)) widths) '-' in
  Format.fprintf fmt "%s@." rule;
  List.iter (fun row -> Format.fprintf fmt "%s@." (render_row row)) rows

let csv_directory = ref None

let set_csv_dir dir = csv_directory := dir

let slug_of_title title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    title
  |> fun s ->
  (* squeeze runs of dashes and trim *)
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c <> '-' then Buffer.add_char buffer c
      else if Buffer.length buffer > 0
              && Buffer.nth buffer (Buffer.length buffer - 1) <> '-' then
        Buffer.add_char buffer c)
    s;
  let s = Buffer.contents buffer in
  let n = String.length s in
  if n > 0 && s.[n - 1] = '-' then String.sub s 0 (n - 1) else s

let csv_escape cell =
  if String.exists (function ',' | '"' | '\n' -> true | _ -> false) cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~title ~header ~rows dir =
  let path = Filename.concat dir (slug_of_title title ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun row ->
          output_string oc (String.concat "," (List.map csv_escape row));
          output_char oc '\n')
        (header :: rows))

let print_table ?(ppf = Format.std_formatter) ~title ~header ~rows () =
  Format.fprintf ppf "@.== %s ==@." title;
  table ~header ~rows ppf;
  Format.pp_print_flush ppf ();
  Option.iter (write_csv ~title ~header ~rows) !csv_directory

let qerror_cell = Repro_stats.Qerror.to_string

let variance_cell v =
  if Float.is_nan v then "n/a"
  else if v = Float.infinity then "inf"
  else if v = 0.0 then "0"
  else if v >= 0.01 && v < 1e6 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.2e" v
