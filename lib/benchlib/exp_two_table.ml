open Repro_relation
module Prng = Repro_util.Prng
module Pool = Repro_util.Pool
module Clock = Repro_util.Clock
module Job = Repro_datagen.Job_workload
module Obs = Repro_obs.Obs

type approach = { label : string; spec : Csdl.Spec.t }

let approaches =
  let v p q = Csdl.Spec.csdl p q in
  let open Csdl.Spec in
  [
    { label = "1,t"; spec = v L_one L_theta };
    { label = "t,1"; spec = v L_theta L_one };
    { label = "rt,rt"; spec = v L_sqrt_theta L_sqrt_theta };
    { label = "diff,1"; spec = v L_diff L_one };
    { label = "diff,t"; spec = v L_diff L_theta };
    { label = "diff,rt"; spec = v L_diff L_sqrt_theta };
    { label = "1,diff"; spec = v L_one L_diff };
    { label = "t,diff"; spec = v L_theta L_diff };
    { label = "rt,diff"; spec = v L_sqrt_theta L_diff };
    { label = "diff,diff"; spec = v L_diff L_diff };
    { label = "CS2L"; spec = Csdl.Spec.cs2l };
    { label = "CS2L-hh"; spec = Csdl.Spec.cs2l_approx () };
  ]

type cell = {
  approach : string;
  estimates : float array;
  median_estimate : float;
  median_qerror : float;
  rel_variance : float;
  avg_sample_tuples : float;
  avg_wall_seconds : float;
  avg_cpu_seconds : float;
  avg_offline_wall_seconds : float;
  zero_runs : int;
}

type query_result = {
  name : string;
  jvd : float;
  truth : int;
  theta : float;
  cells : cell list;
}

(* The deterministic stream of one (seed, query, theta, approach) cell.
   The key is an explicit delimited string — see Prng.derive for why
   Hashtbl.hash on a tuple is not good enough here. *)
let cell_prng ~seed ~query ~theta ~label =
  Prng.create_keyed ~seed
    (Printf.sprintf "two-table/%s/theta=%.17g/%s" query theta label)

let run_cell ?(obs = Obs.null) ~approach ~runs ~clock ~prng ~truth ~pred_a
    ~pred_b estimator =
  let estimates = Array.make runs 0.0 in
  let wall_total = ref 0.0 and cpu_total = ref 0.0 and zero_runs = ref 0 in
  let offline_total = ref 0.0 in
  let sample_tuples = ref 0 in
  for r = 0 to runs - 1 do
    let synopsis, draw_span =
      Clock.time ~wall_clock:clock (fun () ->
          Csdl.Estimator.draw ~obs estimator prng)
    in
    offline_total := !offline_total +. draw_span.Clock.wall_seconds;
    sample_tuples := !sample_tuples + Csdl.Synopsis.size_tuples synopsis;
    let estimate, span =
      Clock.time ~wall_clock:clock (fun () ->
          Csdl.Estimator.estimate ~obs ~pred_a ~pred_b estimator synopsis)
    in
    estimates.(r) <- estimate;
    wall_total := !wall_total +. span.Clock.wall_seconds;
    cpu_total := !cpu_total +. span.Clock.cpu_seconds;
    if estimate = 0.0 then incr zero_runs
  done;
  let qerrors =
    Array.map
      (fun estimate -> Repro_stats.Qerror.compute ~truth ~estimate)
      estimates
  in
  let per_run total = total /. float_of_int runs in
  {
    approach;
    estimates;
    median_estimate = Repro_util.Summary.median estimates;
    median_qerror = Repro_util.Summary.median qerrors;
    rel_variance = Repro_util.Summary.relative_variance ~truth estimates;
    avg_sample_tuples = per_run (float_of_int !sample_tuples);
    avg_wall_seconds = per_run !wall_total;
    avg_cpu_seconds = per_run !cpu_total;
    avg_offline_wall_seconds = per_run !offline_total;
    zero_runs = !zero_runs;
  }

(* One unit of pool work: everything a cell needs, resolved up front so
   the closure only reads shared immutable state (the profile, the query's
   tables) plus its own PRNG stream. *)
type cell_task = {
  t_query : Job.query;
  t_profile : Csdl.Profile.t;
  t_truth : float;
  t_theta : float;
  t_approach : approach;
}

let run ?(clock = Clock.wall) (config : Config.t) data =
  let jobs = config.Config.jobs in
  let obs = config.Config.obs in
  let queries = Job.two_table_queries data in
  (* Stage 1 — one task per query: profile construction and the exact
     join size are the heavy read-only inputs every cell of that query
     shares. *)
  let contexts =
    Pool.map ~obs ~jobs
      (fun (q : Job.query) ->
        let profile =
          Csdl.Profile.of_tables q.Job.a.Join.table q.Job.a.Join.column
            q.Job.b.Join.table q.Job.b.Join.column
        in
        (q, profile, float_of_int (Job.true_size q)))
      queries
  in
  (* Stage 2 — the flat (query x theta x approach) grid, one pure closure
     per cell. Cells are keyed-PRNG independent, so any execution order
     (any [jobs]) yields bit-identical results. *)
  let tasks =
    List.concat_map
      (fun (q, profile, truth) ->
        List.concat_map
          (fun theta ->
            List.map
              (fun approach ->
                {
                  t_query = q;
                  t_profile = profile;
                  t_truth = truth;
                  t_theta = theta;
                  t_approach = approach;
                })
              approaches)
          config.Config.thetas)
      contexts
  in
  let cell_results =
    Pool.map_array ~obs ~jobs
      (fun task ->
        let { label; spec } = task.t_approach in
        let estimator =
          Csdl.Estimator.prepare spec ~theta:task.t_theta task.t_profile
        in
        let prng =
          cell_prng ~seed:config.Config.seed ~query:task.t_query.Job.name
            ~theta:task.t_theta ~label
        in
        run_cell ~obs ~approach:label ~runs:config.Config.runs ~clock ~prng
          ~truth:task.t_truth ~pred_a:task.t_query.Job.a.Join.predicate
          ~pred_b:task.t_query.Job.b.Join.predicate estimator)
      (Array.of_list tasks)
  in
  (* Reassemble in workload order: cells were enumerated row-major as
     (query, theta, approach), so each (query, theta) owns a consecutive
     block of |approaches| results. *)
  let per_row = List.length approaches in
  let row = ref 0 in
  let results =
    List.concat_map
      (fun (q, profile, truth) ->
        List.map
          (fun theta ->
            let base = !row * per_row in
            incr row;
            {
              name = q.Job.name;
              jvd = profile.Csdl.Profile.jvd;
              truth = int_of_float truth;
              theta;
              cells = List.init per_row (fun i -> cell_results.(base + i));
            })
          config.Config.thetas)
      contexts
  in
  (* Provenance capture (opt-in, sequential, after the parallel phase): one
     record per (query, theta, approach) cell — never touches stdout. *)
  if Provenance.is_live config.Config.prov then
    List.iter
      (fun r ->
        List.iter
          (fun c ->
            Provenance.add config.Config.prov
              {
                Provenance.empty with
                Provenance.experiment = "two-table";
                query = r.name;
                variant = c.approach;
                theta = r.theta;
                jvd = r.jvd;
                sample_tuples = c.avg_sample_tuples;
                truth = float_of_int r.truth;
                estimate = c.median_estimate;
                qerror = c.median_qerror;
                rung = "";
                downgrades = 0;
                runs = config.Config.runs;
                zero_runs = c.zero_runs;
                wall_seconds = c.avg_wall_seconds;
                cpu_seconds = c.avg_cpu_seconds;
                offline_wall_seconds = c.avg_offline_wall_seconds;
              })
          r.cells)
      results;
  results

let is_small_jvd (config : Config.t) result =
  result.jvd < config.Config.jvd_threshold

let find_cell ~context label cells =
  match List.find_opt (fun c -> c.approach = label) cells with
  | Some cell -> cell
  | None ->
      failwith
        (Printf.sprintf
           "%s: no cell for approach %S (have: %s) — approach labels and \
            result cells are out of sync"
           context label
           (String.concat ", " (List.map (fun c -> c.approach) cells)))

let qerror_rows results =
  List.map
    (fun r ->
      Printf.sprintf "%s (J=%d)" r.name r.truth
      :: Printf.sprintf "%g" r.theta
      :: List.map (fun c -> Render.qerror_cell c.median_qerror) r.cells)
    results

let qerror_header =
  "Query" :: "theta" :: List.map (fun a -> a.label) approaches

let print_table4 config results =
  let small = List.filter (is_small_jvd config) results in
  Render.print_table
    ~title:
      (Printf.sprintf
         "Table IV: q-error, queries with small join value density (jvd < %g)"
         config.Config.jvd_threshold)
    ~header:qerror_header ~rows:(qerror_rows small) ()

let print_table5 config results =
  let large = List.filter (fun r -> not (is_small_jvd config r)) results in
  Render.print_table
    ~title:
      (Printf.sprintf
         "Table V: q-error, queries with large join value density (jvd >= %g)"
         config.Config.jvd_threshold)
    ~header:qerror_header ~rows:(qerror_rows large) ()

let print_table6 config results =
  let small = List.filter (is_small_jvd config) results in
  let variance_of result label =
    let cell = find_cell ~context:("Table VI, query " ^ result.name) label result.cells in
    (* the paper reports inf variance for cells whose estimation failed *)
    if Repro_stats.Qerror.is_failure cell.median_qerror then Float.infinity
    else cell.rel_variance
  in
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          Printf.sprintf "%g" r.theta;
          Render.variance_cell (variance_of r "1,t");
          Render.variance_cell (variance_of r "1,diff");
          Render.variance_cell (variance_of r "CS2L");
        ])
      small
  in
  Render.print_table
    ~title:
      "Table VI: estimation variance (Var/J^2) on small-jvd queries"
    ~header:[ "Query"; "theta"; "CSDL(1,t)"; "CSDL(1,diff)"; "CS2L" ]
    ~rows ()
