(** Experiment 7 (paper Section VI-A, "Estimation time"): online
    estimation cost of CSDL-Opt (which solves an LP per estimate) vs. CS2L
    (plain scaling) at the smallest configured theta, over the two-table
    workload. Derived from the per-cell timings collected by
    {!Exp_two_table}.

    Two protocol fixes over the seed implementation: times are wall-clock
    (the paper-comparable latency; [Sys.time] CPU totals are reported
    alongside but are not the headline — under the parallel harness they
    sum over every domain), and ALL runs are timed — the old protocol
    dropped zero-estimate runs from the average, biasing the mean toward
    successful runs. The count of zero-estimate runs is reported instead
    of being silently folded away. *)

type summary = {
  approach : string;
  mean_wall_seconds : float;  (** mean over measured queries, all runs *)
  mean_cpu_seconds : float;
  fraction_under : float;  (** share of measured queries under threshold *)
  threshold_seconds : float;
  queries_measured : int;  (** queries with a finite wall-time average *)
  queries_total : int;  (** all queries at the timing theta *)
  zero_estimate_runs : int;
      (** total runs across those queries whose estimate was exactly 0 —
          previously these silently vanished from the timing average *)
}

val run : Config.t -> Exp_two_table.query_result list -> summary list
(** [CSDL-Opt; CS2L]. CSDL-Opt's time per query is that of the variant
    its jvd dispatch selects. Fails with a named-label message (never a
    bare [Not_found]) if an approach label is missing from the results. *)

val print : ?ppf:Format.formatter -> summary list -> unit
(** Render to [ppf] (default stdout). The smoke harness passes stderr so
    measured timings never pollute the deterministic stdout stream. *)
