module Prng = Repro_util.Prng
module Pool = Repro_util.Pool
module Tpch = Repro_datagen.Tpch
open Repro_relation

type row = {
  dataset : string;
  truth : int;
  opt_qerror : float;
  cs2l_qerror : float;
}

let theta = 0.001

let run (config : Config.t) =
  let jobs = config.Config.jobs in
  let predicates =
    [
      Predicate.Compare (Predicate.Lt, "n_regionkey", Value.Int 3);
      Predicate.Compare (Predicate.Gt, "c_acctbal", Value.Float 8000.0);
      Predicate.True;
      Predicate.True;
    ]
  in
  let contexts =
    Pool.map ~obs:config.Config.obs ~jobs
      (fun (scale, z) ->
        let data = Tpch.generate ~scale ~z ~seed:config.Config.seed in
        let tables =
          {
            Csdl.Chain_n.links =
              [
                { Csdl.Chain_n.table = data.Tpch.nation; pk = "n_nationkey"; fk = None };
                {
                  Csdl.Chain_n.table = data.Tpch.customer;
                  pk = "c_custkey";
                  fk = Some "c_nationkey";
                };
                {
                  Csdl.Chain_n.table = data.Tpch.orders;
                  pk = "o_orderkey";
                  fk = Some "o_custkey";
                };
              ];
            last = data.Tpch.lineitem;
            last_fk = "l_orderkey";
          }
        in
        let truth = float_of_int (Csdl.Chain_n.true_size ~predicates tables) in
        (scale, z, Tpch.dataset_name data, tables, truth))
      Table8.datasets
  in
  let tasks =
    List.concat_map
      (fun context -> [ (context, "opt"); (context, "cs2l") ])
      contexts
  in
  let medians =
    Pool.map_array ~obs:config.Config.obs ~jobs
      (fun ((scale, z, _, tables, truth), tag) ->
        let prepared =
          match tag with
          | "opt" -> Csdl.Chain_n.prepare_opt ~theta tables
          | _ -> Csdl.Chain_n.prepare Csdl.Spec.cs2l ~theta tables
        in
        let prng =
          Prng.create_keyed ~seed:config.Config.seed
            (Printf.sprintf "chain4/scale=%g/z=%g/%s" scale z tag)
        in
        let qerrors =
          Array.init config.Config.runs (fun _ ->
              let synopsis = Csdl.Chain_n.draw prepared prng in
              Repro_stats.Qerror.compute ~truth
                ~estimate:(Csdl.Chain_n.estimate ~predicates prepared synopsis))
        in
        Repro_util.Summary.median qerrors)
      (Array.of_list tasks)
  in
  List.mapi
    (fun i (_, _, dataset, _, truth) ->
      {
        dataset;
        truth = int_of_float truth;
        opt_qerror = medians.(2 * i);
        cs2l_qerror = medians.((2 * i) + 1);
      })
    contexts

let print rows =
  Render.print_table
    ~title:
      "4-table chain (beyond the paper): nation |><| customer |><| orders \
       |><| lineitem (region < 3, acctbal > 8000, theta = 0.001)"
    ~header:[ "Dataset"; "J"; "CSDL-Opt"; "CS2L" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.dataset;
             string_of_int r.truth;
             Render.qerror_cell r.opt_qerror;
             Render.qerror_cell r.cs2l_qerror;
           ])
         rows)
    ()
