open Repro_relation
module Prng = Repro_util.Prng

(* Simple tabulation hashing: split the 64-bit key into 8 bytes, xor one
   random 64-bit table entry per byte. *)
type tabulation = int64 array array (* 8 x 256 *)

let make_tabulation prng : tabulation =
  Array.init 8 (fun _ -> Array.init 256 (fun _ -> Prng.bits64 prng))

let tabulate (t : tabulation) key =
  let h = ref 0L in
  let k = ref key in
  for byte = 0 to 7 do
    let index = Int64.to_int (Int64.logand !k 0xFFL) in
    h := Int64.logxor !h t.(byte).(index);
    k := Int64.shift_right_logical !k 8
  done;
  !h

(* Mix a Value into a well-distributed 64-bit key. *)
let key_of_value v =
  let open Int64 in
  let z = of_int (Value.hash v) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

type plan = {
  id : int;
  depth : int;
  width : int;
  bucket_tables : tabulation array;  (* per row *)
  sign_tables : tabulation array;
}

type sketch = { plan_id : int; counters : float array array }

let name = "AGMS sketch"

(* Atomic: benchmark cells build plans concurrently from pool domains.
   Ids only need to be distinct (they pair sketches with their plan), not
   allocation-ordered. *)
let next_plan_id = Atomic.make 0

let plan ?(depth = 5) ~theta (profile : Csdl.Profile.t) ~seed =
  if depth < 1 then invalid_arg "Agms.plan: depth must be >= 1";
  let budget = theta *. float_of_int profile.Csdl.Profile.total_rows in
  let width = max 1 (int_of_float (budget /. float_of_int depth)) in
  let prng = Prng.create seed in
  {
    id = 1 + Atomic.fetch_and_add next_plan_id 1;
    depth;
    width;
    bucket_tables = Array.init depth (fun _ -> make_tabulation prng);
    sign_tables = Array.init depth (fun _ -> make_tabulation prng);
  }

let width p = p.width
let depth p = p.depth

let sketch_side plan table column =
  let counters = Array.make_matrix plan.depth plan.width 0.0 in
  let column_index = Table.column_index table column in
  Table.iter
    (fun row ->
      match row.(column_index) with
      | Value.Null -> ()
      | v ->
          let key = key_of_value v in
          for r = 0 to plan.depth - 1 do
            let h = tabulate plan.bucket_tables.(r) key in
            let bucket =
              Int64.to_int (Int64.rem (Int64.shift_right_logical h 1)
                              (Int64.of_int plan.width))
            in
            let sign =
              if Int64.equal (Int64.logand (tabulate plan.sign_tables.(r) key) 1L) 1L
              then 1.0
              else -1.0
            in
            counters.(r).(bucket) <- counters.(r).(bucket) +. sign
          done)
    table;
  { plan_id = plan.id; counters }

let estimate a b =
  if a.plan_id <> b.plan_id then
    invalid_arg "Agms.estimate: sketches from different plans";
  let rows =
    Array.map2
      (fun row_a row_b ->
        let dot = ref 0.0 in
        Array.iteri (fun i x -> dot := !dot +. (x *. row_b.(i))) row_a;
        !dot)
      a.counters b.counters
  in
  Repro_util.Summary.median rows

let estimate_profile plan (profile : Csdl.Profile.t) =
  let a = profile.Csdl.Profile.a and b = profile.Csdl.Profile.b in
  estimate
    (sketch_side plan a.Csdl.Profile.table a.Csdl.Profile.column)
    (sketch_side plan b.Csdl.Profile.table b.Csdl.Profile.column)
