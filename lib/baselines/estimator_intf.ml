open Repro_relation
module Prng = Repro_util.Prng
module Clock = Repro_util.Clock
module Variance = Repro_stats.Variance

type t = {
  name : string;
  offline_wall_seconds : float;
  synopsis_tuples : float;
  estimate : Prng.t -> float;
  estimate_with_variance : (Prng.t -> float * float) option;
}

(* The Sec. III plug-in variance: walk the drawn synopsis in the canonical
   value order, estimate each shared value's filtered frequencies exactly
   the way the scaling estimator does (rows scaled by the stored rate,
   sentry as one exact tuple), and feed the per-value closed-form terms to
   [Variance.of_terms]. Values whose second-level rate clamped to zero
   carry only sentry evidence, so their frequency is known exactly on the
   rows axis — rate 1 makes the corresponding (1-q)/q correction vanish. *)
let plug_in_scaling_variance (syn : Csdl.Synopsis.t) ~pred_a ~pred_b =
  let sa = syn.Csdl.Synopsis.sample_a and sb = syn.Csdl.Synopsis.sample_b in
  let fa = Predicate.compile pred_a (Table.schema sa.Csdl.Sample.table) in
  let fb = Predicate.compile pred_b (Table.schema sb.Csdl.Sample.table) in
  let freq sample f (e : Csdl.Sample.entry) =
    let rate = if e.Csdl.Sample.q_v > 0.0 then e.Csdl.Sample.q_v else 1.0 in
    let scaled =
      float_of_int (Csdl.Sample.filtered_count sample f e) /. rate
    in
    let sentry = if Csdl.Sample.sentry_passes sample f e then 1.0 else 0.0 in
    (scaled +. sentry, rate)
  in
  let terms =
    List.filter_map
      (fun (v, (ea : Csdl.Sample.entry)) ->
        match Value.Tbl.find_opt sb.Csdl.Sample.entries v with
        | None -> None
        | Some eb ->
            let a_hat, q = freq sa fa ea in
            let b_hat, u = freq sb fb eb in
            if ea.Csdl.Sample.p_v > 0.0 && a_hat > 0.0 && b_hat > 0.0 then
              Some
                (Variance.scaling_term ~p:ea.Csdl.Sample.p_v ~q ~u ~a:a_hat
                   ~b:b_hat)
            else None)
      (Csdl.Shard_key.sorted_bindings sa.Csdl.Sample.entries)
  in
  Variance.of_terms terms

let csdl ?spec ~theta ~pred_a ~pred_b profile =
  let spec, name =
    match spec with
    | Some s -> (s, s.Csdl.Spec.name)
    | None ->
        let s = Csdl.Opt.spec_for_profile ~theta profile in
        (s, Csdl.Opt.name)
  in
  let est, span =
    Clock.time (fun () -> Csdl.Estimator.prepare spec ~theta profile)
  in
  (* [Estimate.run_flat] wants the sampler's orientation; the estimator
     records whether it swapped the sides. *)
  let pred_a, pred_b =
    if Csdl.Estimator.swapped est then (pred_b, pred_a) else (pred_a, pred_b)
  in
  let draw prng = Csdl.Estimator.draw est prng in
  let estimate prng =
    let flat = Csdl.Synopsis_flat.of_synopsis (draw prng) in
    Csdl.Estimate.run_flat ~pred_a ~pred_b flat
  in
  let estimate_with_variance prng =
    let syn = draw prng in
    let flat = Csdl.Synopsis_flat.of_synopsis syn in
    let estimate = Csdl.Estimate.run_flat ~pred_a ~pred_b flat in
    (estimate, plug_in_scaling_variance syn ~pred_a ~pred_b)
  in
  {
    name;
    offline_wall_seconds = span.Clock.wall_seconds;
    synopsis_tuples = (Csdl.Estimator.resolved est).Csdl.Budget.expected_size;
    estimate;
    estimate_with_variance = Some estimate_with_variance;
  }

let expected_budget ~theta profile =
  theta *. float_of_int profile.Csdl.Profile.total_rows

let independent ~theta ~pred_a ~pred_b profile =
  let est, span = Clock.time (fun () -> Independent.prepare ~theta profile) in
  {
    name = Independent.name;
    offline_wall_seconds = span.Clock.wall_seconds;
    synopsis_tuples = expected_budget ~theta profile;
    estimate =
      (fun prng -> Independent.estimate_once ~pred_a ~pred_b est prng);
    estimate_with_variance = None;
  }

let end_biased ~theta ~pred_a ~pred_b profile =
  let est, span = Clock.time (fun () -> End_biased.prepare ~theta profile) in
  {
    name = End_biased.name;
    offline_wall_seconds = span.Clock.wall_seconds;
    synopsis_tuples = expected_budget ~theta profile;
    estimate = (fun prng -> End_biased.estimate_once ~pred_a ~pred_b est prng);
    estimate_with_variance = None;
  }

let join_synopsis ~theta ~pred_a ~pred_b profile =
  match Clock.time (fun () -> Join_synopsis.prepare ~theta profile) with
  | Error _, _ -> None
  | Ok est, span ->
      let pred_fk, pred_pk =
        if Join_synopsis.fk_is_left est then (pred_a, pred_b)
        else (pred_b, pred_a)
      in
      Some
        {
          name = Join_synopsis.name;
          offline_wall_seconds = span.Clock.wall_seconds;
          synopsis_tuples = expected_budget ~theta profile;
          estimate =
            (fun prng ->
              Join_synopsis.estimate_once ~pred_fk ~pred_pk est prng);
          estimate_with_variance = None;
        }

let wander ~theta ~pred_a ~pred_b profile =
  let walks =
    max 1
      (int_of_float
         (theta *. float_of_int profile.Csdl.Profile.total_rows))
  in
  let est, span = Clock.time (fun () -> Wander.prepare ~walks profile) in
  {
    name = Wander.name;
    offline_wall_seconds = span.Clock.wall_seconds;
    (* wander keeps no synopsis — the walk budget is online work *)
    synopsis_tuples = 0.0;
    estimate = (fun prng -> Wander.estimate ~pred_a ~pred_b est prng);
    estimate_with_variance = None;
  }

let agms ~theta ~pred_a ~pred_b profile =
  if pred_a <> Predicate.True || pred_b <> Predicate.True then None
  else
    Some
      {
        name = Agms.name;
        (* the sketch is rebuilt per run from the run's stream (the hash
           plan is the randomness), so there is no shared offline phase to
           time *)
        offline_wall_seconds = Float.nan;
        synopsis_tuples = expected_budget ~theta profile;
        estimate =
          (fun prng ->
            let plan_seed = Int64.to_int (Prng.bits64 prng) in
            let plan = Agms.plan ~theta profile ~seed:plan_seed in
            Agms.estimate_profile plan profile);
        estimate_with_variance = None;
      }

let independence_prior profile =
  let value, span =
    Clock.time (fun () -> Csdl.Estimator.independence_prior profile ())
  in
  {
    name = "indep-prior";
    offline_wall_seconds = span.Clock.wall_seconds;
    synopsis_tuples = 0.0;
    estimate = (fun _ -> value);
    estimate_with_variance = None;
  }
