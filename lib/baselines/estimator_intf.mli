(** One interface over every join-size estimator in the repository — the
    adapter layer under the bake-off harness ({!Repro_benchlib.Bakeoff}).

    A prepared estimator is a record of closures: [prepare] happened at
    construction (timed), [estimate] answers one seeded repetition from
    the caller's PRNG stream, and — for the correlated-sampling family —
    [estimate_with_variance] additionally reports the paper's Sec. III
    closed-form variance of that single draw, so a confidence interval
    needs no repeated runs. Constructors take the query's predicates in
    the user orientation ([pred_a] on the profile's A table) and handle
    each method's orientation quirks internally (CSDL side swapping,
    join-synopsis FK detection).

    Constructors returning [option] signal inapplicability: AGMS sketches
    summarise unfiltered columns ([None] when a predicate is present),
    join synopses exist only for PK-FK joins. *)

open Repro_relation

type t = {
  name : string;
  offline_wall_seconds : float;
      (** wall time of synopsis/sketch preparation at construction; [nan]
          when the method has no shared offline phase (AGMS rebuilds its
          sketch per run) *)
  synopsis_tuples : float;
      (** expected synopsis footprint in tuples ([0.] for synopsis-free
          methods — wander, the independence prior) *)
  estimate : Repro_util.Prng.t -> float;
      (** one seeded repetition: draw (where applicable) and answer *)
  estimate_with_variance : (Repro_util.Prng.t -> float * float) option;
      (** single-synopsis [(estimate, analytic variance)] — correlated
          sampling only *)
}

val csdl :
  ?spec:Csdl.Spec.t ->
  theta:float ->
  pred_a:Predicate.t ->
  pred_b:Predicate.t ->
  Csdl.Profile.t ->
  t
(** A correlated-sampling variant (default: the CSDL-Opt dispatch rule for
    this profile). Estimation runs on the {!Csdl.Synopsis_flat} hot path;
    [estimate_with_variance] plugs the sample's filtered frequency
    estimates into {!Repro_stats.Variance.scaling_term} per shared value. *)

val independent :
  theta:float ->
  pred_a:Predicate.t ->
  pred_b:Predicate.t ->
  Csdl.Profile.t ->
  t

val end_biased :
  theta:float ->
  pred_a:Predicate.t ->
  pred_b:Predicate.t ->
  Csdl.Profile.t ->
  t

val join_synopsis :
  theta:float ->
  pred_a:Predicate.t ->
  pred_b:Predicate.t ->
  Csdl.Profile.t ->
  t option
(** [None] for many-to-many joins (the method is PK-FK only). *)

val wander :
  theta:float ->
  pred_a:Predicate.t ->
  pred_b:Predicate.t ->
  Csdl.Profile.t ->
  t
(** Walk budget [theta * (|A| + |B|)], matching the synopsis methods'
    tuple budgets. *)

val agms :
  theta:float ->
  pred_a:Predicate.t ->
  pred_b:Predicate.t ->
  Csdl.Profile.t ->
  t option
(** [None] when either predicate is non-trivial — a sketch cannot apply
    runtime selections. Each repetition derives a fresh hash plan from the
    caller's stream. *)

val independence_prior : Csdl.Profile.t -> t
(** The deterministic System-R prior [|A| |B| / max(d_A, d_B)] — the
    sampling-free floor every estimator must beat. *)
