module Obs = Repro_obs.Obs

type relation = Le | Ge | Eq

type constraint_row = {
  coefficients : float array;
  relation : relation;
  rhs : float;
}

type problem = {
  objective : float array;
  constraints : constraint_row list;
}

type result =
  | Optimal of { objective_value : float; solution : float array }
  | Infeasible
  | Unbounded
  | Failed of string

(* Tableau layout: [tab] has [m] constraint rows and one objective row
   ([tab.(m)]), each of width [total_vars + 1]; the last column is the RHS.
   The objective row stores reduced costs negated so that "entering column"
   means a negative entry, and [tab.(m).(total_vars)] holds the negated
   objective value. [basis.(i)] is the variable basic in row [i]. *)

type tableau = {
  tab : float array array;
  basis : int array;
  m : int;
  total_vars : int;
}

let pivot t ~row ~col =
  let { tab; basis; m; total_vars } = t in
  let pivot_value = tab.(row).(col) in
  let prow = tab.(row) in
  for j = 0 to total_vars do
    prow.(j) <- prow.(j) /. pivot_value
  done;
  for i = 0 to m do
    if i <> row then begin
      let factor = tab.(i).(col) in
      if factor <> 0.0 then begin
        let irow = tab.(i) in
        for j = 0 to total_vars do
          irow.(j) <- irow.(j) -. (factor *. prow.(j))
        done
      end
    end
  done;
  basis.(row) <- col

(* One simplex phase on an already-feasible tableau. [allowed j] masks
   columns that may enter (used to keep artificials out in phase 2).
   [fuel] is the absolute iteration budget shared across phases: every
   pivot decrements it, and exhaustion aborts the solve rather than
   spinning on a cycling or numerically-poisoned tableau.
   Returns [`Optimal], [`Unbounded] or [`Failed]. *)
let run_phase ~epsilon ~allowed ~fuel t =
  let { tab; m; total_vars; _ } = t in
  let obj = tab.(m) in
  let stall_limit = 64 * (m + total_vars) in
  let iterations = ref 0 in
  let choose_entering_dantzig () =
    let best = ref (-1) and best_value = ref (-.epsilon) in
    for j = 0 to total_vars - 1 do
      if allowed j && obj.(j) < !best_value then begin
        best := j;
        best_value := obj.(j)
      end
    done;
    !best
  in
  let choose_entering_bland () =
    let rec find j =
      if j >= total_vars then -1
      else if allowed j && obj.(j) < -.epsilon then j
      else find (j + 1)
    in
    find 0
  in
  let choose_leaving col =
    (* Min-ratio test; ties broken by smallest basis variable (Bland). *)
    let best = ref (-1) and best_ratio = ref Float.infinity in
    for i = 0 to m - 1 do
      let a = tab.(i).(col) in
      if a > epsilon then begin
        let ratio = tab.(i).(total_vars) /. a in
        if
          ratio < !best_ratio -. epsilon
          || (ratio < !best_ratio +. epsilon
             && (!best = -1 || t.basis.(i) < t.basis.(!best)))
        then begin
          best := i;
          best_ratio := ratio
        end
      end
    done;
    !best
  in
  let rec loop () =
    incr iterations;
    if !fuel <= 0 then `Failed "iteration cap exhausted"
    else begin
      decr fuel;
      let entering =
        if !iterations > stall_limit then choose_entering_bland ()
        else choose_entering_dantzig ()
      in
      if entering = -1 then
        if Float.is_finite obj.(total_vars) then `Optimal
        else `Failed "non-finite objective value"
      else
        match choose_leaving entering with
        | -1 -> `Unbounded
        | row ->
            let pv = tab.(row).(entering) in
            if not (Float.is_finite pv) || pv = 0.0 then
              `Failed "non-finite or zero pivot"
            else begin
              pivot t ~row ~col:entering;
              if Float.is_finite obj.(total_vars) then loop ()
              else `Failed "tableau diverged to non-finite values"
            end
    end
  in
  loop ()

let finite_inputs problem =
  Array.for_all Float.is_finite problem.objective
  && List.for_all
       (fun row ->
         Float.is_finite row.rhs
         && Array.for_all Float.is_finite row.coefficients)
       problem.constraints

let outcome_label = function
  | Optimal _ -> "optimal"
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Failed _ -> "failed"

(* Metric side of a finished solve: pivot count (the fuel consumed across
   both phases), the outcome tally, and fuel exhaustion as its own
   counter so a cycling tableau is visible at a glance. *)
let record_solve obs ~initial_fuel ~fuel result =
  if Obs.is_live obs then begin
    Obs.observe obs "lp.simplex.iterations"
      (float_of_int (max 0 (initial_fuel - !fuel)));
    Obs.count obs
      ~labels:[ ("outcome", outcome_label result) ]
      "lp.simplex.solves" 1;
    match result with
    | Failed _ when !fuel <= 0 -> Obs.count obs "lp.simplex.fuel_exhausted" 1
    | _ -> ()
  end;
  result

let solve ?(obs = Obs.null) ?(epsilon = 1e-9) ?max_iterations problem =
  let n = Array.length problem.objective in
  let constraints = Array.of_list problem.constraints in
  let m = Array.length constraints in
  Array.iter
    (fun row ->
      if Array.length row.coefficients <> n then
        invalid_arg "Simplex.solve: coefficient width mismatch")
    constraints;
  if not (finite_inputs problem) then
    record_solve obs ~initial_fuel:0 ~fuel:(ref 0)
      (Failed "non-finite objective, coefficient or rhs")
  else begin
  (* Absolute pivot budget across both phases. The default leaves the
     Dantzig->Bland stall switch (64 * (m + total_vars) iterations per
     phase) ample room while still bounding a pathological tableau. *)
  let default_fuel m total_vars = 1000 + (256 * (m + total_vars)) in
  (* Normalise RHS signs so every row can host an artificial if needed. *)
  let rows =
    Array.map
      (fun row ->
        if row.rhs < 0.0 then
          {
            coefficients = Array.map (fun x -> -.x) row.coefficients;
            rhs = -.row.rhs;
            relation =
              (match row.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
          }
        else row)
      constraints
  in
  (* Column layout: structural | slack/surplus | artificial | RHS. *)
  let slack_count =
    Array.fold_left
      (fun acc row -> match row.relation with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let artificial_count =
    Array.fold_left
      (fun acc row -> match row.relation with Le -> acc | Ge | Eq -> acc + 1)
      0 rows
  in
  let total_vars = n + slack_count + artificial_count in
  let fuel =
    ref
      (match max_iterations with
      | Some cap -> max 1 cap
      | None -> default_fuel m total_vars)
  in
  let initial_fuel = !fuel in
  let tab = Array.make_matrix (m + 1) (total_vars + 1) 0.0 in
  let basis = Array.make m (-1) in
  let next_slack = ref n in
  let next_artificial = ref (n + slack_count) in
  Array.iteri
    (fun i row ->
      Array.blit row.coefficients 0 tab.(i) 0 n;
      tab.(i).(total_vars) <- row.rhs;
      (match row.relation with
      | Le ->
          tab.(i).(!next_slack) <- 1.0;
          basis.(i) <- !next_slack;
          incr next_slack
      | Ge ->
          tab.(i).(!next_slack) <- -1.0;
          incr next_slack;
          tab.(i).(!next_artificial) <- 1.0;
          basis.(i) <- !next_artificial;
          incr next_artificial
      | Eq ->
          tab.(i).(!next_artificial) <- 1.0;
          basis.(i) <- !next_artificial;
          incr next_artificial))
    rows;
  let t = { tab; basis; m; total_vars } in
  let is_artificial j = j >= n + slack_count in
  (* Phase 1: minimise the sum of artificials. Objective row = minus the sum
     of rows that contain a basic artificial (price-out). *)
  let phase1_needed = artificial_count > 0 in
  let phase1 =
    if not phase1_needed then `Feasible
    else begin
      let obj = tab.(m) in
      Array.fill obj 0 (total_vars + 1) 0.0;
      for j = n + slack_count to total_vars - 1 do
        obj.(j) <- 1.0 (* cost of each artificial *)
      done;
      for i = 0 to m - 1 do
        if is_artificial basis.(i) then
          for j = 0 to total_vars do
            obj.(j) <- obj.(j) -. tab.(i).(j)
          done
      done;
      match run_phase ~epsilon ~allowed:(fun _ -> true) ~fuel t with
      | `Unbounded ->
          (* The phase-1 objective is bounded below by 0; reaching this arm
             means the tableau is numerically poisoned, not unbounded. *)
          `Failed "phase 1 reported unbounded"
      | `Failed reason -> `Failed ("phase 1: " ^ reason)
      | `Optimal ->
          let infeasibility = -.tab.(m).(total_vars) in
          if infeasibility > 1e-6 then `Infeasible
          else begin
            (* Drive any artificial still basic (at value 0) out of the basis. *)
            for i = 0 to m - 1 do
              if is_artificial basis.(i) then begin
                let found = ref (-1) in
                for j = 0 to n + slack_count - 1 do
                  if !found = -1 && Float.abs tab.(i).(j) > epsilon then found := j
                done;
                match !found with
                | -1 -> () (* redundant row: all-zero, harmless to keep *)
                | j -> pivot t ~row:i ~col:j
              end
            done;
            `Feasible
          end
    end
  in
  record_solve obs ~initial_fuel ~fuel
    (match phase1 with
  | `Infeasible -> Infeasible
  | `Failed reason -> Failed reason
  | `Feasible -> begin
      (* Phase 2: install the real objective, priced out against the basis. *)
      let obj = tab.(m) in
      Array.fill obj 0 (total_vars + 1) 0.0;
      Array.blit problem.objective 0 obj 0 n;
      for i = 0 to m - 1 do
        let b = basis.(i) in
        if b < n && obj.(b) <> 0.0 then begin
          let factor = obj.(b) in
          for j = 0 to total_vars do
            obj.(j) <- obj.(j) -. (factor *. tab.(i).(j))
          done
        end
      done;
      match run_phase ~epsilon ~allowed:(fun j -> not (is_artificial j)) ~fuel t with
      | `Unbounded -> Unbounded
      | `Failed reason -> Failed ("phase 2: " ^ reason)
      | `Optimal ->
          let solution = Array.make n 0.0 in
          let corrupt = ref false in
          for i = 0 to m - 1 do
            if basis.(i) < n then begin
              let x = tab.(i).(total_vars) in
              if not (Float.is_finite x) then corrupt := true;
              solution.(basis.(i)) <- x
            end
          done;
          let objective_value = -.tab.(m).(total_vars) in
          if !corrupt || not (Float.is_finite objective_value) then
            Failed "non-finite solution"
          else Optimal { objective_value; solution }
    end)
  end
