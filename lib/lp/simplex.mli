(** Dense two-phase primal simplex.

    Solves [minimize c.x subject to A x (<=|=|>=) b, x >= 0]. Sized for the
    discrete-learning LP of this repository: a handful of rows and up to a
    few thousand columns, for which a dense tableau is both simple and fast.
    Pivoting uses Dantzig's rule with an automatic switch to Bland's rule
    when progress stalls, which guarantees termination on degenerate
    vertices; an absolute iteration cap and in-tableau NaN/Inf detection
    additionally bound the solver on numerically poisoned inputs, reporting
    {!Failed} instead of spinning or returning garbage. *)

type relation = Le | Ge | Eq

type constraint_row = {
  coefficients : float array;  (** one per structural variable *)
  relation : relation;
  rhs : float;
}

type problem = {
  objective : float array;  (** minimised; one per structural variable *)
  constraints : constraint_row list;
}

type result =
  | Optimal of { objective_value : float; solution : float array }
      (** [solution] holds the structural variables only. *)
  | Infeasible
  | Unbounded
  | Failed of string
      (** The solve was aborted defensively: non-finite inputs, a tableau
          entry diverging to NaN/Inf mid-pivot, or the absolute iteration
          cap running out. The payload names the trigger. Callers should
          treat this like a solver crash they can recover from. *)

val solve :
  ?obs:Repro_obs.Obs.ctx ->
  ?epsilon:float ->
  ?max_iterations:int ->
  problem ->
  result
(** [solve p] runs two-phase simplex. A live [obs] context records the
    pivot count ([lp.simplex.iterations] histogram), the outcome tally
    ([lp.simplex.solves{outcome}]) and fuel exhaustion
    ([lp.simplex.fuel_exhausted]); the result itself is unaffected.
    [epsilon] (default [1e-9]) is the
    feasibility/optimality tolerance. [max_iterations] is the absolute
    pivot budget shared by both phases (default [1000 + 256 * (rows +
    columns)], far above what a well-posed problem of this shape needs);
    exhausting it yields [Failed], never an infinite loop. Raises
    [Invalid_argument] when constraint rows disagree with the objective on
    the variable count — a caller bug, unlike the runtime conditions
    reported via [Failed]. *)
