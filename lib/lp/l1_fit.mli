(** L1 residual fitting, the optimisation at the core of the
    discrete-learning algorithm (Algorithm 1, line 4):

    minimise [sum_i |target_i - (design r)_i|] over [r >= 0] subject to the
    linear equality [mass_coefficients . r = mass].

    The absolute values are linearised with one auxiliary variable per
    residual and the whole thing handed to {!Simplex}. *)

type spec = {
  design : float array array;
      (** [m x n]: [design.(i).(j)] is the model's contribution of unit
          weight at grid point [j] to observation [i] (Poisson probabilities
          in the DL use). Rows must share a width. *)
  target : float array;  (** length [m]: the observed values. *)
  mass_coefficients : float array;
      (** length [n]: coefficients of the equality constraint. *)
  mass : float;  (** right-hand side of the equality constraint. *)
}

type outcome = {
  weights : float array;  (** length [n]: the fitted non-negative [r]. *)
  residual : float;  (** the attained L1 objective. *)
}

type error =
  | Infeasible
      (** The mass constraint cannot be met — for the DL grid this means
          the caller picked an empty grid. *)
  | Unbounded
  | Aborted of string
      (** The simplex aborted defensively (non-finite tableau entries or
          iteration cap); see {!Simplex.Failed}. *)

val error_to_string : error -> string

val fit : ?obs:Repro_obs.Obs.ctx -> spec -> (outcome, error) Stdlib.result
(** [fit spec] returns the optimum or the typed reason it could not be
    computed. Never raises on numerically bad inputs: NaN/Inf design or
    target entries surface as [Error (Aborted _)]. A live [obs] context
    records the attained residual ([lp.l1.residual] histogram) on top of
    the underlying {!Simplex.solve} metrics. *)
