module Obs = Repro_obs.Obs

type spec = {
  design : float array array;
  target : float array;
  mass_coefficients : float array;
  mass : float;
}

type outcome = {
  weights : float array;
  residual : float;
}

type error = Infeasible | Unbounded | Aborted of string

let error_to_string = function
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Aborted reason -> "aborted: " ^ reason

let fit ?(obs = Obs.null) spec =
  let m = Array.length spec.design in
  if Array.length spec.target <> m then
    invalid_arg "L1_fit.fit: target length differs from design rows";
  let n = Array.length spec.mass_coefficients in
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "L1_fit.fit: design row width differs from mass coefficients")
    spec.design;
  (* Variables: r_0..r_{n-1}, then t_0..t_{m-1}. *)
  let total = n + m in
  let objective = Array.make total 0.0 in
  for i = 0 to m - 1 do
    objective.(n + i) <- 1.0
  done;
  let upper i =
    (* design_i . r - t_i <= target_i *)
    let coefficients = Array.make total 0.0 in
    Array.blit spec.design.(i) 0 coefficients 0 n;
    coefficients.(n + i) <- -1.0;
    { Simplex.coefficients; relation = Simplex.Le; rhs = spec.target.(i) }
  in
  let lower i =
    (* design_i . r + t_i >= target_i *)
    let coefficients = Array.make total 0.0 in
    Array.blit spec.design.(i) 0 coefficients 0 n;
    coefficients.(n + i) <- 1.0;
    { Simplex.coefficients; relation = Simplex.Ge; rhs = spec.target.(i) }
  in
  let mass_row =
    let coefficients = Array.make total 0.0 in
    Array.blit spec.mass_coefficients 0 coefficients 0 n;
    { Simplex.coefficients; relation = Simplex.Eq; rhs = spec.mass }
  in
  let constraints =
    mass_row :: List.concat_map (fun i -> [ upper i; lower i ]) (List.init m Fun.id)
  in
  match Simplex.solve ~obs { objective; constraints } with
  | Simplex.Optimal { objective_value; solution } ->
      Obs.observe obs "lp.l1.residual" objective_value;
      Ok { weights = Array.sub solution 0 n; residual = objective_value }
  | Simplex.Infeasible -> Error Infeasible
  | Simplex.Unbounded -> Error Unbounded
  | Simplex.Failed reason -> Error (Aborted reason)
