(** Wall-clock and CPU timing for the benchmark harness.

    The paper's Section VI-A estimation-time comparison reports elapsed
    (wall) time per estimate. Measuring it with [Sys.time] — process CPU
    time — both misreports latency in a single-threaded run (any I/O or
    scheduler wait disappears) and becomes meaningless under the
    domain-parallel harness, where the process accumulates CPU seconds on
    every core at once. All harness timing therefore flows through this
    module: wall time from a monotonically-clamped [Unix.gettimeofday],
    CPU time from [Sys.time], and an injectable clock so tests can drive
    timing code deterministically. *)

type t = unit -> float
(** A clock: each call returns the current time in seconds. *)

val wall : t
(** Wall clock, backed by [Unix.gettimeofday]. *)

val cpu : t
(** Process CPU clock, backed by [Sys.time]. Under [Pool] parallelism this
    counts the CPU seconds of every domain, so it can exceed wall time. *)

val counter : ?start:float -> ?step:float -> unit -> t
(** [counter ()] is a deterministic fake clock for tests: the first call
    returns [start] (default 0.), each subsequent call advances by [step]
    (default 1.). Not domain-safe — inject it only into single-job runs. *)

type shared
(** A domain-safe fake time source: an atomic instant that tests advance
    explicitly. Unlike {!counter}, reading it does not advance it, so any
    number of domains can share one (the estimation server's deadline and
    breaker tests drive concurrent timing code with it). *)

val shared_counter : ?start:float -> unit -> shared
val shared_clock : shared -> t
(** A clock reading the shared instant (never advances it). *)

val advance : shared -> float -> unit
(** Atomically move the shared instant forward by [dt] seconds. *)

type sleeper = float -> unit
(** An injectable sleep: production code takes one instead of calling
    [Unix.sleepf] so backoff tests run in zero wall time. *)

val sleepf : sleeper
(** Real sleep ([Unix.sleepf]); non-positive durations return at once. *)

val no_sleep : sleeper
(** The test sleeper: returns immediately whatever the duration. *)

type span = { wall_seconds : float; cpu_seconds : float }

val time : ?wall_clock:t -> ?cpu_clock:t -> (unit -> 'a) -> 'a * span
(** [time f] runs [f ()] and reports both elapsed wall time (default
    clock: {!wall}) and CPU time (default: {!cpu}). Elapsed values are
    clamped to be non-negative, so a stepping system clock can never
    produce a negative duration. *)
