type t = unit -> float

let wall : t = Unix.gettimeofday
let cpu : t = Sys.time

let counter ?(start = 0.0) ?(step = 1.0) () : t =
  let now = ref start in
  fun () ->
    let v = !now in
    now := !now +. step;
    v

type shared = float Atomic.t

let shared_counter ?(start = 0.0) () : shared = Atomic.make start

let shared_clock (shared : shared) : t = fun () -> Atomic.get shared

let advance (shared : shared) dt =
  (* CAS retry loop: float Atomics have no fetch-and-add *)
  let rec go () =
    let old = Atomic.get shared in
    if not (Atomic.compare_and_set shared old (old +. dt)) then go ()
  in
  go ()

type sleeper = float -> unit

let sleepf seconds = if seconds > 0.0 then Unix.sleepf seconds

let no_sleep (_ : float) = ()

type span = { wall_seconds : float; cpu_seconds : float }

let time ?(wall_clock = wall) ?(cpu_clock = cpu) f =
  let w0 = wall_clock () and c0 = cpu_clock () in
  let result = f () in
  let wall_seconds = Float.max 0.0 (wall_clock () -. w0) in
  let cpu_seconds = Float.max 0.0 (cpu_clock () -. c0) in
  (result, { wall_seconds; cpu_seconds })
