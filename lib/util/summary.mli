(** Order statistics and moment summaries over float samples. The paper
    reports the median q-error over 20 estimation runs and empirical
    estimation variances; these helpers implement exactly those reductions,
    treating [infinity] (failed estimates) the way the paper does: an infinite
    median means more than half the runs failed. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on the empty array. *)

val variance : float array -> float
(** Unbiased (n-1) sample variance; [nan] for fewer than two points;
    [infinity] if any point is infinite. *)

val median : float array -> float
(** Median (average of the two middle elements for even lengths). Infinite
    values sort high, so a majority of failures yields [infinity]. [nan] on
    the empty array, and [nan] whenever the input contains a NaN — a NaN
    sample means an estimator returned garbage, and an order statistic over
    it would be garbage too (mirroring [variance]'s guard). Does not mutate
    the input. *)

val quantile : float -> float array -> float
(** [quantile p xs] with linear interpolation, [0 <= p <= 1]. [nan] on the
    empty array or when [xs] contains a NaN (see {!median}). *)

val min_max : float array -> float * float
(** Smallest and largest element; raises [Invalid_argument] on empty. *)

val relative_variance : truth:float -> float array -> float
(** Empirical variance of the estimates normalised by the squared ground
    truth — the scale-free dispersion measure used in Tables VI and VIII.
    [infinity] when any estimate is infinite or zero truth. *)
