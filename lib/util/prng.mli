(** Deterministic pseudo-random number generation.

    All randomness in this repository flows through this module so that every
    sampling run, data generation, and experiment is reproducible from a
    single integer seed. The generator is xoshiro256** seeded via splitmix64,
    which passes BigCrush and is far better distributed than [Stdlib.Random]
    across forked substreams. *)

type t
(** Mutable generator state. Not thread-safe; create one per domain. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. Equal seeds yield
    identical streams. *)

val of_state : int64 -> t
(** [of_state s] builds a generator whose four xoshiro words come from
    running splitmix64 on the raw 64-bit state [s]. This is the common
    substrate of {!create} and {!create_keyed}; use it with {!derive64}
    to open a sub-stream named by arbitrary bytes off an existing 64-bit
    base. *)

val derive64 : int64 -> string -> int64
(** [derive64 base key] folds the 64-bit [base] and every byte of [key]
    through the splitmix64 finalizer into a 64-bit sub-state —
    {!derive} generalized to a full-width base, so derivations can be
    chained ([derive64 (derive64 b "a") "b"]) without collapsing the
    intermediate state to an OCaml [int]. *)

val derive : seed:int -> string -> int64
(** [derive ~seed key] folds the master [seed] and every byte of [key]
    through the splitmix64 finalizer into a 64-bit sub-seed. Unlike
    [Hashtbl.hash], which truncates its traversal and whose value may
    change between OCaml releases, the result depends on the whole key and
    on nothing but Int64 arithmetic — the same [(seed, key)] names the
    same stream on every OCaml version and at any degree of parallelism.
    Callers are responsible for making keys injective (e.g. separate the
    components with a delimiter that cannot occur inside them). *)

val create_keyed : seed:int -> string -> t
(** [create_keyed ~seed key] is a generator seeded from
    [derive ~seed key]. This is how benchmark cells obtain their
    per-[(query, theta, approach)] streams: each cell's stream is
    independent of every other cell's, so cells can run in any order, on
    any domain, and still draw identical samples. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and original then evolve
    independently. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t]. Use to give each table / experiment its own stream so that
    adding draws in one place does not perturb another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound); requires [bound > 0]. Uses
    rejection sampling, so it is exactly uniform. *)

val float : t -> float
(** Uniform on [0, 1) with 53-bit resolution. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val binomial : t -> int -> float -> int
(** [binomial t n p] draws from Binomial(n, p). Uses inversion for small
    [n*p] and the BTPE-style waiting-time method otherwise; exact either
    way. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli(p) process, for [0 < p <= 1]. Used to skip-sample long runs. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct indices uniformly
    from [0, n); requires [0 <= k <= n]. Result is in increasing order. *)

val exponential : t -> float -> float
(** [exponential t lambda] draws from Exp(lambda), [lambda > 0]. *)
