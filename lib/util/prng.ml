(* xoshiro256** with splitmix64 seeding.
   Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
   generators" (2018). *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64's finalizer: a bijective avalanche over 64 bits. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let splitmix64_next state =
  state := Int64.add !state golden_gamma;
  mix64 !state

let of_state state =
  let state = ref state in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let create seed = of_state (Int64.of_int seed)

(* Seed derivation for keyed substreams: a splitmix-style fold that
   absorbs one key byte per mix. Unlike [Hashtbl.hash] on a tuple — which
   truncates its traversal, collides easily, and may change across OCaml
   releases — this walks the whole key and is pure Int64 arithmetic, so a
   (seed, key) pair names the same stream on every OCaml version, word
   size, and [--jobs] setting. *)
let derive64 state key =
  let state = ref (mix64 (Int64.add state golden_gamma)) in
  String.iter
    (fun c ->
      state :=
        mix64
          (Int64.add
             (Int64.logxor !state (Int64.of_int (Char.code c)))
             golden_gamma))
    key;
  (* absorb the length so keys differing only by trailing NULs separate *)
  mix64 (Int64.add !state (Int64.of_int (String.length key)))

let derive ~seed key = derive64 (Int64.of_int seed) key

let create_keyed ~seed key = of_state (derive ~seed key)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let u = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 u;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Seed a fresh generator from the parent's stream via splitmix64 so the
     child is decorrelated even for adjacent splits. *)
  let state = ref (bits64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits for exact uniformity. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let float t =
  (* 53 random bits scaled into [0,1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r *. 0x1p-53

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t p = if p >= 1.0 then true else if p <= 0.0 then false else float t < p

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    let u = 1.0 -. float t in
    (* u in (0,1]; floor(log u / log (1-p)) is the failure count. *)
    int_of_float (Float.floor (log u /. log1p (-.p)))

let binomial t n p =
  if n < 0 then invalid_arg "Prng.binomial: n must be non-negative";
  if p <= 0.0 || n = 0 then 0
  else if p >= 1.0 then n
  else if p > 0.5 then n - (let q = 1.0 -. p in
                            (* mirror to keep the skip-sampling loop short *)
                            let rec skip acc pos =
                              let pos = pos + geometric t q + 1 in
                              if pos > n then acc else skip (acc + 1) pos
                            in
                            skip 0 0)
  else
    (* Waiting-time ("skip") method: number of successes equals the number of
       inter-success gaps that fit in n trials. Exact and O(np) expected. *)
    let rec skip acc pos =
      let pos = pos + geometric t p + 1 in
      if pos > n then acc else skip (acc + 1) pos
    in
    skip 0 0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: k hash inserts, no O(n) scratch. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter (fun key () -> out.(!i) <- key; incr i) chosen;
  Array.sort compare out;
  out

let exponential t lambda =
  if lambda <= 0.0 then invalid_arg "Prng.exponential: lambda must be positive";
  -.log1p (-.float t) /. lambda
