module Obs = Repro_obs.Obs

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* One cell per task: either its value or the exception it raised. Slots
   are written at distinct indices by exactly one domain each, so plain
   array stores suffice (no per-slot atomics needed). *)
type 'b slot =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let run_task f items results i =
  results.(i) <-
    (match f items.(i) with
    | value -> Done value
    | exception exn -> Raised (exn, Printexc.get_raw_backtrace ()))

let run_queue ~obs ~jobs ~chunk f items results =
  let n = Array.length items in
  let next = Atomic.make 0 in
  let plain_worker () =
    let rec loop () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        let stop = min n (start + chunk) in
        for i = start to stop - 1 do
          run_task f items results i
        done;
        loop ()
      end
    in
    loop ()
  in
  (* Instrumented twin of [plain_worker]: identical claim/run protocol,
     plus per-task latency and per-worker busy/idle accounting. Kept
     separate so the uninstrumented path pays nothing per task. *)
  let timed_worker w () =
    let t0 = Unix.gettimeofday () in
    let busy = ref 0.0 and tasks = ref 0 in
    let rec loop () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        let stop = min n (start + chunk) in
        for i = start to stop - 1 do
          let s = Unix.gettimeofday () in
          run_task f items results i;
          let dt = Float.max 0.0 (Unix.gettimeofday () -. s) in
          busy := !busy +. dt;
          incr tasks;
          Obs.observe obs "pool.task.seconds" dt
        done;
        loop ()
      end
    in
    loop ();
    let wall = Float.max 0.0 (Unix.gettimeofday () -. t0) in
    Obs.count obs "pool.tasks" !tasks;
    Obs.observe obs "pool.queue.wait_seconds" (Float.max 0.0 (wall -. !busy));
    Obs.set_gauge obs
      ~labels:[ ("domain", string_of_int w) ]
      "pool.domain.utilisation"
      (if wall > 0.0 then !busy /. wall else 1.0)
  in
  let worker w = if Obs.is_live obs then timed_worker w else plain_worker in
  let helpers = Array.init (jobs - 1) (fun w -> Domain.spawn (worker (w + 1))) in
  worker 0 ();
  Array.iter Domain.join helpers

let map_array ?(obs = Obs.null) ?jobs ?(chunk = 1) f items =
  let n = Array.length items in
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let jobs = min jobs (max 1 n) in
  let chunk = max 1 chunk in
  if n = 0 then [||]
  else if jobs = 1 && not (Obs.is_live obs) then Array.map f items
  else begin
    let results = Array.make n Pending in
    Obs.Span.with_ obs ~name:"pool.map"
      ~attrs:[ ("jobs", string_of_int jobs); ("tasks", string_of_int n) ]
      (fun () -> run_queue ~obs ~jobs ~chunk f items results);
    Array.map
      (function
        | Done value -> value
        | Raised (exn, bt) -> Printexc.raise_with_backtrace exn bt
        | Pending ->
            (* unreachable: the queue is drained before the domains join *)
            invalid_arg "Pool.map_array: task never ran")
      results
  end

let map ?obs ?jobs ?chunk f items =
  Array.to_list (map_array ?obs ?jobs ?chunk f (Array.of_list items))
