let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* One cell per task: either its value or the exception it raised. Slots
   are written at distinct indices by exactly one domain each, so plain
   array stores suffice (no per-slot atomics needed). *)
type 'b slot =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let run_queue ~jobs ~chunk f items results =
  let n = Array.length items in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        let stop = min n (start + chunk) in
        for i = start to stop - 1 do
          results.(i) <-
            (match f items.(i) with
            | value -> Done value
            | exception exn ->
                Raised (exn, Printexc.get_raw_backtrace ()))
        done;
        loop ()
      end
    in
    loop ()
  in
  let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join helpers

let map_array ?jobs ?(chunk = 1) f items =
  let n = Array.length items in
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let jobs = min jobs (max 1 n) in
  let chunk = max 1 chunk in
  if n = 0 then [||]
  else if jobs = 1 then Array.map f items
  else begin
    let results = Array.make n Pending in
    run_queue ~jobs ~chunk f items results;
    Array.map
      (function
        | Done value -> value
        | Raised (exn, bt) -> Printexc.raise_with_backtrace exn bt
        | Pending ->
            (* unreachable: the queue is drained before the domains join *)
            invalid_arg "Pool.map_array: task never ran")
      results
  end

let map ?jobs ?chunk f items =
  Array.to_list (map_array ?jobs ?chunk f (Array.of_list items))
