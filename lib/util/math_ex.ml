(* Lanczos approximation with g = 7, n = 9 coefficients (Boost's choice for
   double precision). *)
let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Math_ex.log_gamma: requires x > 0";
  if x < 0.5 then
    (* Reflection formula keeps the Lanczos series in its accurate range. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else
    let x = x -. 1.0 in
    let a = ref lanczos_coefficients.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

let log_factorial_cache_size = 1024

(* Built eagerly: benchmark cells hit this from several domains at once,
   and concurrently forcing a [lazy] raises [RacyLazy] on OCaml 5. *)
let log_factorial_cache =
  let cache = Array.make log_factorial_cache_size 0.0 in
  for n = 2 to log_factorial_cache_size - 1 do
    cache.(n) <- cache.(n - 1) +. log (float_of_int n)
  done;
  cache

let log_factorial n =
  if n < 0 then invalid_arg "Math_ex.log_factorial: requires n >= 0";
  if n < log_factorial_cache_size then log_factorial_cache.(n)
  else log_gamma (float_of_int n +. 1.0)

let poisson_log_pmf lambda k =
  if k < 0 then neg_infinity
  else if lambda < 0.0 then invalid_arg "Math_ex.poisson_log_pmf: lambda >= 0"
  else if lambda = 0.0 then (if k = 0 then 0.0 else neg_infinity)
  else (float_of_int k *. log lambda) -. lambda -. log_factorial k

let poisson_pmf lambda k = exp (poisson_log_pmf lambda k)

let binomial_pmf n p k =
  if k < 0 || k > n then 0.0
  else if p <= 0.0 then (if k = 0 then 1.0 else 0.0)
  else if p >= 1.0 then (if k = n then 1.0 else 0.0)
  else
    let log_choose = log_factorial n -. log_factorial k -. log_factorial (n - k) in
    exp
      (log_choose
      +. (float_of_int k *. log p)
      +. (float_of_int (n - k) *. log1p (-.p)))

let generalized_harmonic n z =
  if n < 0 then invalid_arg "Math_ex.generalized_harmonic: requires n >= 0";
  (* Sum small terms first to limit rounding error. *)
  let acc = ref 0.0 in
  for k = n downto 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int k) z)
  done;
  !acc

let log_sum_exp xs =
  let m = Array.fold_left Float.max neg_infinity xs in
  if m = neg_infinity then neg_infinity
  else
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. exp (x -. m)) xs;
    m +. log !acc

let feq ?(eps = 1e-9) a b =
  let diff = Float.abs (a -. b) in
  diff <= eps || diff <= eps *. Float.max (Float.abs a) (Float.abs b)
