let mean xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then Float.nan
  else if Array.exists Float.is_nan xs then Float.nan
  else if Array.exists (fun x -> x = Float.infinity || x = Float.neg_infinity) xs then Float.infinity
  else
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    !acc /. float_of_int (n - 1)

(* [Float.compare] (not polymorphic [compare], which boxes and is slower,
   though both total-order NaN below every float). Order statistics over a
   NaN-contaminated sample are meaningless either way, so [median] and
   [quantile] refuse up front rather than silently interpolating around
   NaNs sorted below [-inf]. *)
let sorted_copy xs =
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  copy

let median xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else if Array.exists Float.is_nan xs then Float.nan
  else
    let sorted = sorted_copy xs in
    if n mod 2 = 1 then sorted.(n / 2)
    else
      let a = sorted.((n / 2) - 1) and b = sorted.(n / 2) in
      if a = Float.infinity && b = Float.infinity then Float.infinity
      else (a +. b) /. 2.0

let quantile p xs =
  if p < 0.0 || p > 1.0 then invalid_arg "Summary.quantile: p must be in [0,1]";
  let n = Array.length xs in
  if n = 0 then Float.nan
  else if Array.exists Float.is_nan xs then Float.nan
  else
    let sorted = sorted_copy xs in
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then sorted.(lo)
    else
      let w = pos -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Summary.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let relative_variance ~truth xs =
  if truth = 0.0 then Float.infinity
  else
    let v = variance xs in
    if Float.is_nan v then Float.nan else v /. (truth *. truth)
