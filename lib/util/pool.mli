(** Fixed-size domain pool for embarrassingly parallel benchmark grids.

    The experiment harness enumerates its work as arrays of independent
    cells — each cell owns a deterministic per-key PRNG stream (see
    {!Prng.create_keyed}) and only reads shared state (profiles, tables) —
    so cells may execute on any domain in any order without changing a
    single bit of the result. This module supplies the execution side of
    that contract: a pool of [jobs] OCaml 5 domains draining a shared
    work queue, with results returned in task-index order and the first
    (lowest-index) task exception re-raised after all domains join.

    Not reentrant: do not call [map]/[map_array] with [jobs > 1] from
    inside a task already running on a pool. The harness only fans out
    from the top-level experiment driver, one stage at a time. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (one domain is the caller's),
    floored at 1. This is the default for the harness' [--jobs] flag. *)

val map_array :
  ?obs:Repro_obs.Obs.ctx ->
  ?jobs:int ->
  ?chunk:int ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [map_array ~jobs f items] is [Array.map f items] computed by [jobs]
    domains (the calling domain plus [jobs - 1] spawned ones). Results are
    positioned by task index, so the output is identical to the sequential
    map whenever [f] is pure. [jobs] defaults to {!default_jobs}[ ()] and
    is clamped to [[1; Array.length items]]; [jobs = 1] runs sequentially
    in the calling domain without spawning.

    With a live [obs] context the fan-out is wrapped in a [pool.map] span
    and each worker records per-task latency ([pool.task.seconds]), its
    queue wait ([pool.queue.wait_seconds]) and its utilisation
    ([pool.domain.utilisation{domain}]). Results are unchanged; with the
    default {!Repro_obs.Obs.null} the per-task overhead is zero.

    [chunk] (default 1) is how many consecutive tasks a domain claims per
    queue round-trip; raise it only when tasks are so cheap that the
    claim — one [Atomic.fetch_and_add] — dominates.

    If tasks raise, every remaining task still runs, and then the
    exception of the lowest-index failing task is re-raised with its
    backtrace — the same exception a sequential [Array.map] would have
    surfaced first. *)

val map :
  ?obs:Repro_obs.Obs.ctx ->
  ?jobs:int ->
  ?chunk:int ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** List version of {!map_array}. *)
