(** The fully-wired fault-tolerant estimator: the
    {!Csdl.Estimator.estimate_guarded} degradation cascade with the
    sampling independence baseline ([lib/baselines/independent.ml]) as
    the final rung — the dependency csdl itself cannot take — and
    optional {!Fault_injection} faults plugged into both injection
    channels. *)

open Repro_relation

val estimate :
  ?obs:Repro_obs.Obs.ctx ->
  ?fault:Fault_injection.fault ->
  ?dl_config:Csdl.Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  ?sample_first:Csdl.Estimator.sample_first ->
  theta:float ->
  Csdl.Profile.t ->
  Repro_util.Prng.t ->
  (Csdl.Estimator.guarded, Csdl.Fault.error) result
(** Run the cascade CSDL(θ,diff) → CSDL(1,diff) → scaling → independent
    baseline. With [?fault], every drawn synopsis is corrupted through
    {!Fault_injection.draw} (and [Force_lp_failure] additionally breaks
    the learner config unless the caller supplied [?dl_config]). The only
    [Error _] is [Bad_input] for a theta outside (0, 1]. A live [obs]
    context records the cascade metrics of
    {!Csdl.Estimator.estimate_guarded}. *)
