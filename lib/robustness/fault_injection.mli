(** Deterministic fault injection for the estimation pipeline.

    Each fault is a named corruption applied between the offline sampling
    phase and the online estimation phase — exactly where a synopsis
    would rot in practice (bit flips in persisted counts, partial writes,
    a buggy serializer). Corruption is keyed by the caller's {!Prng.t},
    so every scenario replays from a seed.

    Faults reach the pipeline through two channels: {!corrupt} (or the
    prewired {!draw}) rewrites a drawn synopsis, and {!dl_config} feeds
    the discrete-learning stage a config it must refuse. {!Guarded.estimate}
    wires both for you. *)

open Csdl

type fault =
  | Corrupt_counts
      (** negate or NaN the synopsis total [N'], or force a negative
          per-sample tuple count *)
  | Drop_sentries
      (** remove every sentry tuple while the spec still expects them *)
  | Nan_rates
      (** poison [p_v]/[q_v] sampling rates of random entries with NaN *)
  | Truncate_samples
      (** wipe the first-side sample while keeping the semijoin side
          (violating [S_B ⊆ B ⋉ S_A]), or drop every sampled row *)
  | Force_lp_failure
      (** make the discrete-learning / LP stage fail on every CSDL rung
          via an invalid learner config *)

val all : fault list
val to_string : fault -> string

val pick : Repro_util.Prng.t -> fault
(** One uniformly random fault — how the server's [--chaos] mode chooses
    which corruption to apply to an injected load. *)

val corrupt : fault -> Repro_util.Prng.t -> Synopsis.t -> Synopsis.t
(** Apply one fault to a drawn synopsis. The input is not mutated; shared
    structure aside, a fresh synopsis is returned. [Force_lp_failure] is
    the identity here (it lives in {!dl_config}). *)

val dl_config : fault -> Discrete_learning.config option
(** The learner-config channel: [Some invalid_config] for
    [Force_lp_failure], [None] otherwise. *)

val draw : fault -> Estimator.t -> Repro_util.Prng.t -> Synopsis.t
(** [draw fault] is a drop-in for {!Estimator.draw} that corrupts each
    drawn synopsis — pass it as [~draw] to {!Estimator.estimate_guarded}. *)
