open Csdl
module Prng = Repro_util.Prng
module Value = Repro_relation.Value

type fault =
  | Corrupt_counts
  | Drop_sentries
  | Nan_rates
  | Truncate_samples
  | Force_lp_failure

let all =
  [ Corrupt_counts; Drop_sentries; Nan_rates; Truncate_samples; Force_lp_failure ]

let pick prng =
  let faults = Array.of_list all in
  faults.(Prng.int prng (Array.length faults))

let to_string = function
  | Corrupt_counts -> "corrupt-counts"
  | Drop_sentries -> "drop-sentries"
  | Nan_rates -> "nan-rates"
  | Truncate_samples -> "truncate-samples"
  | Force_lp_failure -> "force-lp-failure"

(* Rebuild a sample with every entry passed through [f], recomputing the
   tuple and sentry counts so the corrupted synopsis stays self-consistent
   (the point is to corrupt one thing at a time, not everything at
   once). *)
let map_entries f (sample : Sample.t) =
  let entries = Value.Tbl.create (Value.Tbl.length sample.Sample.entries) in
  Value.Tbl.iter
    (fun v e -> Value.Tbl.add entries v (f e))
    sample.Sample.entries;
  let tuple_count = ref 0 and sentries = ref 0 in
  Value.Tbl.iter
    (fun _ (e : Sample.entry) ->
      tuple_count := !tuple_count + Array.length e.Sample.rows;
      match e.Sample.sentry_row with
      | Some _ ->
          incr tuple_count;
          incr sentries
      | None -> ())
    entries;
  {
    sample with
    Sample.entries;
    tuple_count = !tuple_count;
    sentries = !sentries;
  }

let corrupt_counts prng (synopsis : Synopsis.t) =
  match Prng.int prng 3 with
  | 0 ->
      (* negative N': the scale factor of the DL estimator goes bad *)
      { synopsis with Synopsis.n_prime = -1.0 -. Float.abs synopsis.Synopsis.n_prime }
  | 1 -> { synopsis with Synopsis.n_prime = Float.nan }
  | _ ->
      (* a flatly impossible bookkeeping total on the first side *)
      {
        synopsis with
        Synopsis.sample_a =
          { synopsis.Synopsis.sample_a with Sample.tuple_count = -5 };
      }

let drop_sentries (synopsis : Synopsis.t) =
  let strip sample =
    map_entries (fun e -> { e with Sample.sentry_row = None }) sample
  in
  {
    synopsis with
    Synopsis.sample_a = strip synopsis.Synopsis.sample_a;
    Synopsis.sample_b = strip synopsis.Synopsis.sample_b;
  }

let nan_rates prng (sample : Sample.t) =
  let n = Value.Tbl.length sample.Sample.entries in
  if n = 0 then sample
  else begin
    (* poison at least one entry, and each further one with probability
       1/4; coin-flip between the two rates *)
    let victim = Prng.int prng n in
    let i = ref 0 in
    map_entries
      (fun e ->
        let hit = !i = victim || Prng.bernoulli prng 0.25 in
        incr i;
        if not hit then e
        else if Prng.bool prng then { e with Sample.p_v = Float.nan }
        else { e with Sample.q_v = Float.nan })
      sample
  end

let truncate_samples prng (synopsis : Synopsis.t) =
  if
    Prng.bool prng
    && Value.Tbl.length synopsis.Synopsis.sample_b.Sample.entries > 0
  then
    (* wipe the first side but keep the semijoin side: S_B ⊆ B ⋉ S_A is
       now violated *)
    {
      synopsis with
      Synopsis.sample_a =
        {
          synopsis.Synopsis.sample_a with
          Sample.entries = Value.Tbl.create 1;
          tuple_count = 0;
          sentries = 0;
        };
    }
  else begin
    let strip sample =
      map_entries (fun e -> { e with Sample.rows = [||] }) sample
    in
    {
      synopsis with
      Synopsis.sample_a = strip synopsis.Synopsis.sample_a;
      Synopsis.sample_b = strip synopsis.Synopsis.sample_b;
    }
  end

let corrupt fault prng (synopsis : Synopsis.t) =
  match fault with
  | Corrupt_counts -> corrupt_counts prng synopsis
  | Drop_sentries -> drop_sentries synopsis
  | Nan_rates ->
      if Prng.bool prng then
        { synopsis with Synopsis.sample_a = nan_rates prng synopsis.Synopsis.sample_a }
      else
        { synopsis with Synopsis.sample_b = nan_rates prng synopsis.Synopsis.sample_b }
  | Truncate_samples -> truncate_samples prng synopsis
  | Force_lp_failure -> synopsis

let dl_config = function
  | Force_lp_failure ->
      (* E < D/2 violates the algorithm's precondition, so the learner
         refuses on every CSDL rung and the cascade must step past the
         LP-based estimators. *)
      Some { Discrete_learning.default_config with Discrete_learning.e = 0.01 }
  | Corrupt_counts | Drop_sentries | Nan_rates | Truncate_samples -> None

let draw fault estimator prng =
  let synopsis = Estimator.draw estimator prng in
  corrupt fault prng synopsis
