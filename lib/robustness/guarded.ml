module Prng = Repro_util.Prng
module Independent = Repro_baselines.Independent

let estimate ?obs ?fault ?dl_config ?virtual_sample ?pred_a ?pred_b
    ?sample_first ~theta profile prng =
  (* Split off the fallback's randomness up front so the cascade's own
     draws do not shift depending on whether the fallback runs. *)
  let fallback_prng = Prng.split prng in
  let fallback =
    ( Independent.name,
      fun () ->
        let baseline = Independent.prepare ~theta profile in
        Independent.estimate_once ?pred_a ?pred_b baseline fallback_prng )
  in
  let draw = Option.map Fault_injection.draw fault in
  let dl_config =
    match (dl_config, fault) with
    | (Some _ as given), _ -> given
    | None, Some fault -> Fault_injection.dl_config fault
    | None, None -> None
  in
  Csdl.Estimator.estimate_guarded ?obs ?dl_config ?virtual_sample ?pred_a
    ?pred_b ?sample_first ?draw ~fallback ~theta profile prng
