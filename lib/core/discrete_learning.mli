(** The discrete-learning estimation method (Algorithm 1, after Valiant &
    Valiant's instance-optimal learning of discrete distributions).

    Step 1 learns the *shape* of the distribution: a statistical histogram
    [h(x) = r_x] ("[r_x] domain values have probability [x]") fitted by a
    linear program that matches expected to observed sample fingerprints,
    [E F_i = sum_x poi(n x, i) r_x] (Eq. 9). Step 2 assigns a probability
    to each count class: values appearing [j] times get the
    [poi(n x, j)]-weighted median of the histogram for [j < ln^2 n], and
    their empirical probability [j/n] otherwise.

    Counts are real-valued because CSDL feeds this algorithm *virtual*
    samples with fractional per-value counts (Eq. 6).

    Adaptations relative to the literal algorithm (see DESIGN.md): the
    probability grid is linear in steps of [1/n^2] only up to a fixed number
    of points and geometrically spaced (ratio 1.05) beyond, bounding the LP
    size for large samples. *)

type config = {
  d : float;  (** the paper's D; experiments use 0.08 *)
  e : float;  (** the paper's E; experiments use 0.05; needs D/2 < E < D *)
  linear_grid_points : int;  (** grid points at spacing 1/n^2 before the
                                 geometric regime (default 400) *)
  geometric_ratio : float;  (** spacing ratio of the geometric regime *)
}

val default_config : config
(** [{ d = 0.08; e = 0.05; linear_grid_points = 400; geometric_ratio = 1.05 }] *)

type t

val learn : ?obs:Repro_obs.Obs.ctx -> ?config:config -> float array -> t
(** [learn counts] runs Algorithm 1 on a sample described by its
    per-distinct-value multiplicities (zeros, negatives and non-finite
    entries ignored). The sample size is [sum counts]. An all-zero input
    yields a degenerate result whose probabilities are all 0, and an LP
    failure falls back to the empirical shape — use {!learn_checked} when
    those conditions should be reported instead of absorbed. A live [obs]
    context wraps the run in a [dl.learn] span, records the virtual sample
    size ([dl.virtual_sample.size]), counts absorbed LP failures
    ([dl.lp.failures]) and forwards to the LP-layer metrics. *)

val learn_checked :
  ?obs:Repro_obs.Obs.ctx -> ?config:config -> float array -> (t, Fault.error) result
(** Like {!learn} but every silent-degradation path becomes a typed error:
    an invalid config or an empty/all-zero input is [Error (Bad_input _)]
    instead of [Invalid_argument]/a degenerate result, a NaN or infinite
    count is [Error (Numeric _)] instead of being dropped, and an LP
    failure is [Error (Lp_infeasible | Lp_unbounded | Lp_iteration_cap |
    Numeric _)] instead of the empirical fallback. Never raises. *)

val sample_size : t -> float

val probability_of_count : t -> float -> float
(** [probability_of_count t j] — the estimated probability of a domain
    value that appeared [j] times ([j] is rounded to the nearest integer
    count class; [j <= 0] gives 0). Memoised per count class. *)

val histogram : t -> Repro_util.Weighted.t
(** The learned statistical histogram (LP bins plus empirical heavy
    entries) — exposed for tests and diagnostics. *)

val estimated_distinct : t -> float
(** Total histogram weight: the learned number of distinct domain values
    (including unseen ones — the LP can place mass below one occurrence). *)
