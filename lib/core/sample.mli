(** Correlated samples: the per-value output of two-level sampling.

    A sample stores, for each first-level-sampled join value, the sentry
    tuple (when the sentry technique is on), the second-level sampled
    tuples, and the rates the value was drawn with — everything the online
    estimation phase needs, without retaining the data profile. Tuples are
    stored as row indices into the base table. *)

open Repro_relation

type entry = {
  sentry_row : int option;  (** uniform random tuple, always present when
                                the spec uses sentries and the value has
                                at least one tuple *)
  rows : int array;  (** non-sentry sampled row indices *)
  p_v : float;  (** first-level rate the value was drawn with *)
  q_v : float;  (** second-level rate used for [rows] *)
}

type t = {
  table : Table.t;
  column : string;
  entries : entry Value.Tbl.t;
  tuple_count : int;  (** total sampled tuples including sentries *)
  sentries : int;  (** number of entries carrying a sentry tuple *)
}

val draw_entry :
  Repro_util.Prng.t ->
  sentry:bool ->
  rows:int array ->
  p_v:float ->
  q_v:float ->
  entry
(** Second-level draw for one value: with [sentry], one uniform tuple plus
    Binomial(n-1, q_v) of the rest; without, Binomial(n, q_v) of all.
    [rows] must be non-empty. *)

val first_side :
  ?obs:Repro_obs.Obs.ctx ->
  Repro_util.Prng.t ->
  profile:Profile.t ->
  resolved:Budget.t ->
  t
(** Draw [S_A]: first-level Bernoulli(p_v) over the eligible values of the
    profile's A side, then {!draw_entry} per kept value. A live [obs]
    context records values/tuples kept and dropped and sentry activations
    under [sample.*{side="a"}] counters; instrumentation never touches the
    PRNG, so draws are identical with or without it. *)

val second_side :
  ?obs:Repro_obs.Obs.ctx ->
  Repro_util.Prng.t ->
  profile:Profile.t ->
  resolved:Budget.t ->
  first:t ->
  t
(** Draw [S_B ⊆ B ⋉ S_A]: for every value present in [first] that also
    occurs in B, sample its joinable tuples with rate [u_v]. Metrics as in
    {!first_side}, labelled [side="b"]. *)

val filtered_count : t -> (Value.t array -> bool) -> entry -> int
(** Number of non-sentry tuples of one entry passing a compiled predicate. *)

val sentry_passes : t -> (Value.t array -> bool) -> entry -> bool
(** Whether the entry's sentry exists and passes the predicate. *)

val total_tuples : t -> int

val sentry_count : t -> int
(** Number of entries carrying a sentry tuple, precomputed at construction
    (and at decode) so the online path never folds over the table. With the
    sentry technique on this equals the number of first-level sampled
    values; the estimation side subtracts it from [N'] to get the
    virtual-sample population (Lemma 1 draws the virtual sample from the
    {e non-sentry} tuples only). *)
