(** Correlated samples: the per-value output of two-level sampling.

    A sample stores, for each first-level-sampled join value, the sentry
    tuple (when the sentry technique is on), the second-level sampled
    tuples, and the rates the value was drawn with — everything the online
    estimation phase needs, without retaining the data profile. Tuples are
    stored as row indices into the base table. *)

open Repro_relation

type entry = {
  sentry_row : int option;  (** uniform random tuple, always present when
                                the spec uses sentries and the value has
                                at least one tuple *)
  rows : int array;  (** non-sentry sampled row indices *)
  p_v : float;  (** first-level rate the value was drawn with *)
  q_v : float;  (** second-level rate used for [rows] *)
}

type t = {
  table : Table.t;
  column : string;
  entries : entry Value.Tbl.t;
  tuple_count : int;  (** total sampled tuples including sentries *)
  sentries : int;  (** number of entries carrying a sentry tuple *)
}

val draw_entry :
  Repro_util.Prng.t ->
  sentry:bool ->
  rows:int array ->
  p_v:float ->
  q_v:float ->
  entry
(** Second-level draw for one value: with [sentry], one uniform tuple plus
    Binomial(n-1, q_v) of the rest; without, Binomial(n, q_v) of all.
    [rows] must be non-empty. *)

val stream_a : base:int64 -> Value.t -> Repro_util.Prng.t
val stream_b : base:int64 -> Value.t -> Repro_util.Prng.t
(** The per-value keyed sub-streams: every value draws from its own PRNG
    stream derived from the draw's 64-bit [base] and the value's stable
    byte encoding. A value's sample is therefore a pure function of
    (base, value, group, rates) — independent of iteration order, of the
    other values present, and of partitioning, which is what makes shard
    merges and delta re-draws bit-identical to a monolithic draw. *)

val draw_first_value :
  base:int64 ->
  sentry:bool ->
  rows:int array ->
  p_v:float ->
  q_v:float ->
  Value.t ->
  entry option
(** The complete first-level fate of one value on its own sub-stream:
    Bernoulli(p_v) membership then {!draw_entry}. [None] when the value is
    not in [S_A] (zero rate, level-1 reject, or — without sentries — an
    empty second-level draw). {!first_side} runs exactly this per value;
    delta maintenance re-runs it for affected values only. *)

val draw_second_value :
  base:int64 ->
  sentry:bool ->
  rows:int array ->
  p_v:float ->
  u_v:float ->
  Value.t ->
  entry
(** The semijoin-side draw for one value of [S_A] that occurs in B. *)

val first_side :
  ?obs:Repro_obs.Obs.ctx ->
  ?select:(Value.t -> bool) ->
  base:int64 ->
  profile:Profile.t ->
  resolved:Budget.t ->
  unit ->
  t
(** Draw [S_A]: {!draw_first_value} over the eligible values of the
    profile's A side (restricted to those passing [select], default all —
    how a shard draws only its own slice). A live [obs] context records
    values/tuples kept and dropped and sentry activations under
    [sample.*{side="a"}] counters; instrumentation never touches the
    PRNG, so draws are identical with or without it. *)

val second_side :
  ?obs:Repro_obs.Obs.ctx ->
  base:int64 ->
  profile:Profile.t ->
  resolved:Budget.t ->
  first:t ->
  unit ->
  t
(** Draw [S_B ⊆ B ⋉ S_A]: for every value present in [first] that also
    occurs in B, sample its joinable tuples with rate [u_v]. Metrics as in
    {!first_side}, labelled [side="b"]. *)

val filtered_count : t -> (Value.t array -> bool) -> entry -> int
(** Number of non-sentry tuples of one entry passing a compiled predicate. *)

val sentry_passes : t -> (Value.t array -> bool) -> entry -> bool
(** Whether the entry's sentry exists and passes the predicate. *)

val total_tuples : t -> int

val sentry_count : t -> int
(** Number of entries carrying a sentry tuple, precomputed at construction
    (and at decode) so the online path never folds over the table. With the
    sentry technique on this equals the number of first-level sampled
    values; the estimation side subtracts it from [N'] to get the
    virtual-sample population (Lemma 1 draws the virtual sample from the
    {e non-sentry} tuples only). *)
