open Repro_relation

type side = {
  table : Table.t;
  column : string;
  groups : int array Value.Tbl.t;
  frequencies : int Value.Tbl.t;
  cardinality : int;
  distinct : int;
}

type t = {
  a : side;
  b : side;
  shared_values : Value.t array;
  jvd : float;
  total_rows : int;
}

let side_of table column =
  let groups = Table.group_by table column in
  let frequencies = Value.Tbl.create (Value.Tbl.length groups) in
  Value.Tbl.iter
    (fun v rows -> Value.Tbl.add frequencies v (Array.length rows))
    groups;
  {
    table;
    column;
    groups;
    frequencies;
    cardinality = Table.cardinality table;
    distinct = Value.Tbl.length groups;
  }

let of_tables table_a col_a table_b col_b =
  let a = side_of table_a col_a and b = side_of table_b col_b in
  let small, large =
    if a.distinct <= b.distinct then (a, b) else (b, a)
  in
  let shared = ref [] in
  Value.Tbl.iter
    (fun v _ -> if Value.Tbl.mem large.frequencies v then shared := v :: !shared)
    small.frequencies;
  (* Canonical order: downstream float folds (variance scans, budget
     solving) walk this array, and their results must not depend on
     hashtable insertion history — an incrementally rebuilt profile has to
     reproduce the from-scratch one bit for bit. *)
  let shared = Array.of_list !shared in
  Array.sort Shard_key.compare shared;
  let density side =
    if side.cardinality = 0 then 0.0
    else float_of_int side.distinct /. float_of_int side.cardinality
  in
  {
    a;
    b;
    shared_values = shared;
    jvd = Float.min (density a) (density b);
    total_rows = a.cardinality + b.cardinality;
  }

let frequency side v =
  match Value.Tbl.find_opt side.frequencies v with Some c -> c | None -> 0

let true_join_size t =
  Array.fold_left
    (fun acc v -> acc + (frequency t.a v * frequency t.b v))
    0 t.shared_values

let swap t = { t with a = t.b; b = t.a }

let is_key_side side = side.distinct = side.cardinality && side.cardinality > 0
