open Repro_relation
module Prng = Repro_util.Prng
module Obs = Repro_obs.Obs

type entry = {
  sentry_row : int option;
  rows : int array;
  p_v : float;
  q_v : float;
}

type t = {
  table : Table.t;
  column : string;
  entries : entry Value.Tbl.t;
  tuple_count : int;
  sentries : int;
}

(* Per-value keyed sub-streams. Every value draws from its own PRNG
   stream, derived from the draw's 64-bit base and the value's stable byte
   encoding — so a value's sample is a pure function of (base, value,
   group, rates): independent of hashtable iteration order, of which other
   values exist, and of how the table is partitioned into shards. This is
   what makes shard merges and per-value delta re-draws bit-identical to a
   monolithic from-scratch draw (see Synopsis_shard). The side tags keep
   the A and B streams of the same value apart; both are the same length,
   and [Value.encode] is injective, so stream names never collide. *)
let value_stream ~base ~tag v =
  Prng.of_state (Prng.derive64 base (tag ^ Value.encode v))

let stream_a ~base v = value_stream ~base ~tag:"a/" v
let stream_b ~base v = value_stream ~base ~tag:"b/" v

let draw_entry prng ~sentry ~rows ~p_v ~q_v =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Sample.draw_entry: empty row group";
  if sentry then begin
    let sentry_pos = Prng.int prng n in
    let k = if q_v >= 1.0 then n - 1 else Prng.binomial prng (n - 1) q_v in
    let picked =
      if k = 0 then [||]
      else if k = n - 1 then
        (* everything except the sentry *)
        Array.init (n - 1) (fun i -> if i < sentry_pos then i else i + 1)
      else
        (* sample k positions among the n-1 non-sentry slots, then shift
           past the sentry position *)
        Prng.sample_without_replacement prng k (n - 1)
        |> Array.map (fun i -> if i < sentry_pos then i else i + 1)
    in
    {
      sentry_row = Some rows.(sentry_pos);
      rows = Array.map (fun i -> rows.(i)) picked;
      p_v;
      q_v;
    }
  end
  else begin
    let k = if q_v >= 1.0 then n else Prng.binomial prng n q_v in
    let picked =
      if k = n then Array.init n Fun.id
      else Prng.sample_without_replacement prng k n
    in
    { sentry_row = None; rows = Array.map (fun i -> rows.(i)) picked; p_v; q_v }
  end

let entry_size e = Array.length e.rows + match e.sentry_row with Some _ -> 1 | None -> 0

(* Draw-level tallies, emitted once per side per draw (not per tuple) so a
   live context costs a handful of atomics per synopsis. The local integer
   accounting is cheap enough to run unconditionally. *)
type tally = {
  mutable values_kept : int;  (** survived level 1 and drew > 0 tuples *)
  mutable values_dropped : int;  (** rejected at level 1 or drew nothing *)
  mutable tuples_dropped : int;  (** level-2 rejects of level-1 survivors *)
  mutable sentries : int;
}

let tally () =
  { values_kept = 0; values_dropped = 0; tuples_dropped = 0; sentries = 0 }

let emit_tally obs ~side t ~tuples_kept =
  if Obs.is_live obs then begin
    let labels = [ ("side", side) ] in
    Obs.count obs ~labels "sample.values.kept" t.values_kept;
    Obs.count obs ~labels "sample.values.dropped" t.values_dropped;
    Obs.count obs ~labels "sample.tuples.kept" tuples_kept;
    Obs.count obs ~labels "sample.tuples.dropped" t.tuples_dropped;
    Obs.count obs ~labels "sample.sentries.active" t.sentries
  end

let record_entry t entry ~group_size =
  t.values_kept <- t.values_kept + 1;
  t.tuples_dropped <- t.tuples_dropped + (group_size - entry_size entry);
  if entry.sentry_row <> None then t.sentries <- t.sentries + 1

(* The complete first-level fate of one value, on its own sub-stream:
   Bernoulli(p_v) membership, then the second-level draw. [None] when the
   value is not in S_A (rate zero, level-1 reject, or — without sentries —
   an empty second-level draw: such a value must not trigger the semijoin
   side). Factored out so delta maintenance re-runs {e exactly} this
   code path per affected value. *)
let first_fate ~base ~sentry ~rows ~p_v ~q_v v =
  if p_v <= 0.0 then `Rejected
  else
    let prng = stream_a ~base v in
    if p_v >= 1.0 || Prng.bernoulli prng p_v then begin
      let entry = draw_entry prng ~sentry ~rows ~p_v ~q_v in
      if entry_size entry > 0 then `Kept entry else `Empty_draw
    end
    else `Rejected

let draw_first_value ~base ~sentry ~rows ~p_v ~q_v v =
  match first_fate ~base ~sentry ~rows ~p_v ~q_v v with
  | `Kept entry -> Some entry
  | `Rejected | `Empty_draw -> None

(* The semijoin-side draw for one value of S_A that occurs in B. *)
let draw_second_value ~base ~sentry ~rows ~p_v ~u_v v =
  draw_entry (stream_b ~base v) ~sentry ~rows ~p_v ~q_v:u_v

let first_side ?(obs = Obs.null) ?(select = fun (_ : Value.t) -> true) ~base
    ~(profile : Profile.t) ~(resolved : Budget.t) () =
  let side = profile.Profile.a in
  let sentry = resolved.Budget.spec.Spec.sentry in
  let entries = Value.Tbl.create 256 in
  let count = ref 0 in
  let t = tally () in
  Value.Tbl.iter
    (fun v rows ->
      if select v then begin
        let p_v = Budget.p_of resolved profile v in
        let q_v = if p_v > 0.0 then Budget.q_of resolved profile v else 0.0 in
        match first_fate ~base ~sentry ~rows ~p_v ~q_v v with
        | `Kept entry ->
            Value.Tbl.add entries v entry;
            count := !count + entry_size entry;
            record_entry t entry ~group_size:(Array.length rows)
        | `Rejected -> t.values_dropped <- t.values_dropped + 1
        | `Empty_draw ->
            t.values_dropped <- t.values_dropped + 1;
            t.tuples_dropped <- t.tuples_dropped + Array.length rows
      end)
    side.Profile.groups;
  emit_tally obs ~side:"a" t ~tuples_kept:!count;
  {
    table = side.Profile.table;
    column = side.Profile.column;
    entries;
    tuple_count = !count;
    sentries = t.sentries;
  }

let second_side ?(obs = Obs.null) ~base ~(profile : Profile.t)
    ~(resolved : Budget.t) ~first () =
  let side = profile.Profile.b in
  let sentry = resolved.Budget.spec.Spec.sentry in
  let entries = Value.Tbl.create 256 in
  let count = ref 0 in
  let t = tally () in
  Value.Tbl.iter
    (fun v (first_entry : entry) ->
      match Value.Tbl.find_opt side.Profile.groups v with
      | None ->
          (* the value never joins; no joinable tuples in B *)
          t.values_dropped <- t.values_dropped + 1
      | Some rows ->
          let u_v = Budget.u_of resolved profile v in
          let entry =
            draw_second_value ~base ~sentry ~rows ~p_v:first_entry.p_v ~u_v v
          in
          Value.Tbl.add entries v entry;
          count := !count + entry_size entry;
          record_entry t entry ~group_size:(Array.length rows))
    first.entries;
  emit_tally obs ~side:"b" t ~tuples_kept:!count;
  {
    table = side.Profile.table;
    column = side.Profile.column;
    entries;
    tuple_count = !count;
    sentries = t.sentries;
  }

let filtered_count t pass entry =
  Array.fold_left
    (fun acc row_index -> if pass (Table.row t.table row_index) then acc + 1 else acc)
    0 entry.rows

let sentry_passes t pass entry =
  match entry.sentry_row with
  | None -> false
  | Some row_index -> pass (Table.row t.table row_index)

let total_tuples t = t.tuple_count

(* Precomputed at construction/decode: the DL estimator reads this once
   per query (Lemma 1's virtual-sample population), so it must not cost a
   table fold on the online path. *)
let sentry_count (t : t) = t.sentries
