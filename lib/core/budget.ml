open Repro_relation

type rate =
  | Const of float
  | Scaled of float
  | Blended of { c : float; heavy : float Value.Tbl.t; light : float }

type t = {
  spec : Spec.t;
  theta : float;
  p_rate : rate;
  q_rate : rate;
  u_rate : rate;
  base_q : float;
  expected_size : float;
  budget : float;
}

(* Flat view of the eligible join values: frequencies on both sides and the
   sqrt(a_v b_v) weights, so the budget equations are tight array loops. *)
type prepared = {
  values : Value.t array;
  af : float array;
  bf : float array;  (* 0 when the value is absent from B *)
  sqrt_ab : float array;
}

let prepare ~eligible_shared_only (profile : Profile.t) =
  let collect v (acc : (Value.t * float * float) list) =
    let a = float_of_int (Profile.frequency profile.Profile.a v) in
    let b = float_of_int (Profile.frequency profile.Profile.b v) in
    (v, a, b) :: acc
  in
  let triples =
    if eligible_shared_only then
      Array.fold_left (fun acc v -> collect v acc) [] profile.Profile.shared_values
    else
      Value.Tbl.fold
        (fun v _ acc -> collect v acc)
        profile.Profile.a.Profile.frequencies []
  in
  (* Canonical order: the rate solvers below sum floats over this array
     (and bisect on those sums), so the array order must not leak any
     hashtable's insertion history — a budget re-resolved from an
     incrementally maintained profile has to reproduce the from-scratch
     constants bit for bit. *)
  let arr = Array.of_list triples in
  Array.sort (fun (a, _, _) (b, _, _) -> Shard_key.compare a b) arr;
  {
    values = Array.map (fun (v, _, _) -> v) arr;
    af = Array.map (fun (_, a, _) -> a) arr;
    bf = Array.map (fun (_, _, b) -> b) arr;
    sqrt_ab = Array.map (fun (_, a, b) -> sqrt (a *. b)) arr;
  }

(* The heavy-hitter approximation of the original CS2L implementation:
   exact sqrt(a_v b_v) weights only for the k heaviest values, the tail
   mean for everything else. Returns the coarsened view plus the heavy
   lookup table and the tail weight for rate construction. *)
let approximate_heavy_hitters prep ~k =
  let n = Array.length prep.values in
  if n <= k then (prep, None)
  else begin
    let order = Array.init n Fun.id in
    Array.sort (fun i j -> compare prep.sqrt_ab.(j) prep.sqrt_ab.(i)) order;
    let heavy = Value.Tbl.create k in
    for rank = 0 to k - 1 do
      let i = order.(rank) in
      Value.Tbl.add heavy prep.values.(i) prep.sqrt_ab.(i)
    done;
    let tail_total = ref 0.0 in
    for rank = k to n - 1 do
      tail_total := !tail_total +. prep.sqrt_ab.(order.(rank))
    done;
    let light = !tail_total /. float_of_int (n - k) in
    let sqrt_ab =
      Array.mapi
        (fun i s -> if Value.Tbl.mem heavy prep.values.(i) then s else light)
        prep.sqrt_ab
    in
    ({ prep with sqrt_ab }, Some (heavy, light))
  end

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

(* Expected synopsis size with sentries: for each eligible value v,
   p_v * (1 + (a_v - 1) q_v)  on the sampled side, plus
   p_v * (1 + (b_v - 1) u_v)  on the semijoined side when v joins. *)
let expected_size_sentry prep ~p ~q ~u =
  let total = ref 0.0 in
  for i = 0 to Array.length prep.af - 1 do
    let pv = p i in
    if pv > 0.0 then begin
      let a = prep.af.(i) and b = prep.bf.(i) in
      let cost_a = 1.0 +. ((a -. 1.0) *. q i) in
      let cost_b = if b > 0.0 then 1.0 +. ((b -. 1.0) *. u i) else 0.0 in
      total := !total +. (pv *. (cost_a +. cost_b))
    end
  done;
  !total

(* Without sentries (CS2/CSO): the A side is p_v * a_v * q_v; a B tuple is
   kept only if its value made it into S_A, probability 1 - (1-q_v)^a_v. *)
let expected_size_no_sentry prep ~p ~q ~u =
  let total = ref 0.0 in
  for i = 0 to Array.length prep.af - 1 do
    let pv = p i in
    if pv > 0.0 then begin
      let a = prep.af.(i) and b = prep.bf.(i) in
      let qv = q i in
      let present = 1.0 -. Float.pow (1.0 -. qv) a in
      let cost_b = if b > 0.0 then present *. b *. u i else 0.0 in
      total := !total +. (pv *. ((a *. qv) +. cost_b))
    end
  done;
  !total

(* The budget-relevant sample size: the first-level side's full expected
   cost (its sentries included) plus the semijoin side's non-sentry tuples.
   The semijoin-side sentries ride on top of the nominal budget. This is
   the only accounting consistent with the paper's reported numbers on
   both budget regimes: its small-jvd results at tiny budgets need q > 0
   when the *pair* of sentries would already exceed the budget (Table IV
   Q1b1 at theta = 1e-4), while its large-jvd results for the p = 1
   variants show the sentry-floor collapse that only occurs when the
   first-level sentries are charged (Table V). See EXPERIMENTS.md. *)
let expected_charged prep ~p ~q ~u =
  let total = ref 0.0 in
  for i = 0 to Array.length prep.af - 1 do
    let pv = p i in
    if pv > 0.0 then begin
      let a = prep.af.(i) and b = prep.bf.(i) in
      let cost_a = 1.0 +. ((a -. 1.0) *. q i) in
      let cost_b = if b > 0.0 then (b -. 1.0) *. u i else 0.0 in
      total := !total +. (pv *. (cost_a +. cost_b))
    end
  done;
  !total

(* Solve the constant q (same q for all values) given fixed p: the expected
   non-sentry size is linear in q, so the solution is closed-form, clamped
   to [0,1]. *)
let solve_same_q prep ~p ~budget =
  let fixed = ref 0.0 and slope = ref 0.0 in
  for i = 0 to Array.length prep.af - 1 do
    let pv = p i in
    if pv > 0.0 then begin
      let a = prep.af.(i) and b = prep.bf.(i) in
      fixed := !fixed +. pv; (* the first-level sentry *)
      slope :=
        !slope +. (pv *. ((a -. 1.0) +. if b > 0.0 then b -. 1.0 else 0.0))
    end
  done;
  if !slope <= 0.0 then 0.0 else clamp01 ((budget -. !fixed) /. !slope)

(* Generic monotone bisection: find c in [0, hi] with size(c) = budget. *)
let bisect ~size ~hi ~budget =
  if hi <= 0.0 then 0.0
  else if size 0.0 >= budget then 0.0
  else if size hi <= budget then hi
  else begin
    let lo = ref 0.0 and hi = ref hi in
    for _ = 1 to 64 do
      let mid = 0.5 *. (!lo +. !hi) in
      if size mid < budget then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

(* Upper bound for a proportionality constant: the point where every
   eligible value's capped rate reaches 1. *)
let cap_constant prep =
  let smallest = ref Float.infinity in
  Array.iter
    (fun s -> if s > 0.0 && s < !smallest then smallest := s)
    prep.sqrt_ab;
  if !smallest = Float.infinity then 0.0 else 1.0 /. !smallest

let scaled_rate c prep i = Float.min 1.0 (c *. prep.sqrt_ab.(i))

let solve_diff_q prep ~p ~budget =
  let hi = cap_constant prep in
  let size c =
    expected_charged prep ~p ~q:(scaled_rate c prep) ~u:(scaled_rate c prep)
  in
  bisect ~size ~hi ~budget

let solve_diff_p prep ~q ~u ~budget =
  let hi = cap_constant prep in
  let size d = expected_charged prep ~p:(scaled_rate d prep) ~q ~u in
  bisect ~size ~hi ~budget

let solve_diff_both prep ~budget =
  let hi = cap_constant prep in
  let size c =
    let r = scaled_rate c prep in
    expected_charged prep ~p:r ~q:r ~u:r
  in
  bisect ~size ~hi ~budget

let scaling_variance (profile : Profile.t) ~p ~q ~u =
  if q <= 0.0 || u <= 0.0 then Float.infinity
  else
    Array.fold_left
      (fun acc v ->
        let a = float_of_int (Profile.frequency profile.Profile.a v) in
        let b = float_of_int (Profile.frequency profile.Profile.b v) in
        let pv = p v in
        if pv <= 0.0 then Float.infinity
        else
          let ea2 = (a *. a) +. ((a -. 1.0) *. (1.0 -. q) /. q) in
          let eb2 = (b *. b) +. ((b -. 1.0) *. (1.0 -. u) /. u) in
          acc +. ((ea2 *. eb2 /. pv) -. (a *. a *. b *. b)))
      0.0 profile.Profile.shared_values

let nominal theta = function
  | Spec.L_one -> 1.0
  | Spec.L_theta -> theta
  | Spec.L_sqrt_theta -> sqrt theta
  | Spec.L_diff -> invalid_arg "Budget.nominal: L_diff has no constant value"

let rate_fn rate prep =
  match rate with
  | Const c -> fun (_ : int) -> c
  | Scaled c -> scaled_rate c prep
  | Blended { c; heavy; light } ->
      fun i ->
        let weight =
          match Value.Tbl.find_opt heavy prep.values.(i) with
          | Some s -> s
          | None -> light
        in
        Float.min 1.0 (c *. weight)

let resolve (spec : Spec.t) ~theta (profile : Profile.t) =
  if theta <= 0.0 || theta > 1.0 then
    invalid_arg "Budget.resolve: theta must be in (0, 1]";
  let budget = theta *. float_of_int profile.Profile.total_rows in
  let diff_involved =
    spec.Spec.p_choice = Spec.L_diff || spec.Spec.q_choice = Spec.L_diff
  in
  let prep = prepare ~eligible_shared_only:diff_involved profile in
  let p_rate, q_rate =
    if not spec.Spec.sentry then
      (* CS2 / CSO: rates are fixed by definition, no budget solving. *)
      (Const (nominal theta spec.Spec.p_choice), Const (nominal theta spec.Spec.q_choice))
    else
      match (spec.Spec.p_choice, spec.Spec.q_choice) with
      | Spec.L_diff, Spec.L_diff ->
          let c = solve_diff_both prep ~budget in
          (Scaled c, Scaled c)
      | Spec.L_diff, q_choice ->
          let q = nominal theta q_choice in
          if spec.Spec.optimize_variance then begin
            let prep, blend =
              match spec.Spec.heavy_hitter_k with
              | None -> (prep, None)
              | Some k -> approximate_heavy_hitters prep ~k
            in
            (* CS2L: scan candidate q rates, solve the first-level constant
               for each, keep the variance-minimising pair. *)
            let candidates =
              [ theta /. 4.0; theta /. 2.0; theta; 2.0 *. theta; 4.0 *. theta;
                16.0 *. theta; sqrt theta; 2.0 *. sqrt theta; 0.25; 0.5; 1.0 ]
              |> List.filter (fun q -> q > 0.0 && q <= 1.0)
              |> List.sort_uniq compare
            in
            let best = ref None in
            List.iter
              (fun q ->
                let d = solve_diff_p prep ~q:(fun _ -> q) ~u:(fun _ -> q) ~budget in
                if d > 0.0 then begin
                  let p v =
                    let weight =
                      match blend with
                      | Some (heavy, light) -> (
                          match Value.Tbl.find_opt heavy v with
                          | Some s -> s
                          | None -> light)
                      | None ->
                          let a =
                            float_of_int (Profile.frequency profile.Profile.a v)
                          in
                          let b =
                            float_of_int (Profile.frequency profile.Profile.b v)
                          in
                          sqrt (a *. b)
                    in
                    Float.min 1.0 (d *. weight)
                  in
                  let var = scaling_variance profile ~p ~q ~u:q in
                  match !best with
                  | Some (_, _, best_var) when best_var <= var -> ()
                  | _ -> best := Some (d, q, var)
                end)
              candidates;
            match (!best, blend) with
            | Some (d, q, _), None -> (Scaled d, Const q)
            | Some (d, q, _), Some (heavy, light) ->
                (Blended { c = d; heavy; light }, Const q)
            | None, Some (heavy, light) ->
                (Blended { c = 0.0; heavy; light }, Const q)
            | None, None -> (Scaled 0.0, Const q)
          end
          else
            let d = solve_diff_p prep ~q:(fun _ -> q) ~u:(fun _ -> q) ~budget in
            (Scaled d, Const q)
      | p_choice, Spec.L_diff ->
          let p = nominal theta p_choice in
          let c = solve_diff_q prep ~p:(fun _ -> p) ~budget in
          (Const p, Scaled c)
      | p_choice, Spec.L_one ->
          (* Table III pins q_v = 1 for these variants. *)
          (Const (nominal theta p_choice), Const 1.0)
      | p_choice, q_choice ->
          let p = nominal theta p_choice in
          let q = solve_same_q prep ~p:(fun _ -> p) ~budget in
          ignore (nominal theta q_choice : float);
          (Const p, Const q)
  in
  let u_rate =
    match spec.Spec.u_choice with
    | None -> q_rate
    | Some choice -> Const (nominal theta choice)
  in
  let base_q =
    match q_rate with
    | Const q -> q
    | Scaled _ | Blended _ -> solve_same_q prep ~p:(rate_fn p_rate prep) ~budget
  in
  let expected_size =
    let p = rate_fn p_rate prep
    and q = rate_fn q_rate prep
    and u = rate_fn u_rate prep in
    if spec.Spec.sentry then expected_size_sentry prep ~p ~q ~u
    else expected_size_no_sentry prep ~p ~q ~u
  in
  { spec; theta; p_rate; q_rate; u_rate; base_q; expected_size; budget }

let value_rate rate (profile : Profile.t) v =
  match rate with
  | Const c -> c
  | Scaled c ->
      let a = float_of_int (Profile.frequency profile.Profile.a v) in
      let b = float_of_int (Profile.frequency profile.Profile.b v) in
      Float.min 1.0 (c *. sqrt (a *. b))
  | Blended { c; heavy; light } ->
      let weight =
        match Value.Tbl.find_opt heavy v with Some s -> s | None -> light
      in
      Float.min 1.0 (c *. weight)

let p_of t profile v =
  (* Diff-involved variants skip values that cannot join (see mli). *)
  let skip =
    (match (t.p_rate, t.q_rate) with
    | (Scaled _ | Blended _), _ | _, (Scaled _ | Blended _) ->
        Profile.frequency profile.Profile.a v = 0
        || Profile.frequency profile.Profile.b v = 0
    | Const _, Const _ -> false)
  in
  if skip then 0.0 else value_rate t.p_rate profile v

let q_of t profile v = value_rate t.q_rate profile v
let u_of t profile v = value_rate t.u_rate profile v
