(** Online estimation: from a synopsis and the query's selection predicates
    to an estimated join size.

    Implements both estimation methods of the framework:

    - {b Simple scaling} (Eqs. 1–3, extended to filtered samples):
      [sum over v of (1/p_v)(S''_A(v)/q_v + I''_A(v))(S''_B(v)/u_v + I''_B(v))],
      without the sentry indicators for sentry-less specs.
    - {b Discrete learning} (Eqs. 4, 5, 7): learn the filtered join-value
      distribution of the first side from the (virtual) sample, then
      [sum over v of (1/p_v)(x_v N'' + I''_A(v))(S''_B(v)/u_v + I''_B(v))]
      with [N'' = N' |S''_A| / |S_A|].

    Predicates here are in the {e sampler's} orientation: [pred_a] applies
    to the first-sampled table. {!Estimator} handles user orientation.

    The hot path operates on a {!Synopsis_flat.t}: single linear passes
    over columnar arrays, the predicate evaluated exactly once per sampled
    row per query, the two sides joined by precomputed index position.
    The [*_flat] entry points take a prebuilt flat view (build it once per
    load, reuse per query); the [Synopsis.t]-taking functions are
    conveniences that freeze a flat view per call and are bit-identical to
    the flat path. *)

open Repro_relation

val run :
  ?obs:Repro_obs.Obs.ctx ->
  ?dl_config:Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  Synopsis.t ->
  float
(** Estimated join size of [sigma_a(A) |><| sigma_b(B)]; predicates default
    to [Predicate.True]. Returns 0 when the filtered samples are empty —
    the failure mode the paper reports as infinite q-error. A live [obs]
    context wraps the run in an [estimate.run] span (attribute [method]),
    counts runs ([estimate.runs{method}]) and degenerate outcomes
    ([estimate.degenerate]), and forwards to the DL/LP metrics. *)

type breakdown = {
  estimate : float;
  filtered_a_tuples : int;  (** |S''_A| including sentries *)
  filtered_b_tuples : int;
  selectivity_a : float;  (** f^{c_A} = |S''_A| / |S_A| *)
  virtual_sample_size : float;  (** n of the DL input; 0 for scaling *)
  contributing_values : int;  (** |V''_{A,B}| with a non-zero term *)
  degenerate : bool;
      (** [true] when a filtered sample (or the whole first-side sample)
          is empty, i.e. the estimate is "no evidence" rather than a
          measured zero — the regime the paper reports as infinite
          q-error. Callers that must act on it should prefer
          {!run_checked}, which turns it into a typed error. *)
}

val run_with_breakdown :
  ?obs:Repro_obs.Obs.ctx ->
  ?dl_config:Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  Synopsis.t ->
  breakdown
(** Same as {!run}, exposing intermediate quantities for tests and
    diagnostics. [virtual_sample] (default [true]) applies Eq. 6's
    virtual-sample correction before discrete learning; setting it to
    [false] feeds raw counts to the learner — the ablation showing why
    Lemma 1 matters for different-[q_v] variants. Ignored by scaling
    specs. *)

val run_checked :
  ?obs:Repro_obs.Obs.ctx ->
  ?dl_config:Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  Synopsis.t ->
  (breakdown, Fault.error) result
(** Guarded variant of {!run_with_breakdown}: validates the synopsis
    (finite [N'], finite positive stored rates, semijoin side referencing
    only first-side values), reports empty filtered samples as
    [Error (Empty_filtered_sample _)] instead of a silent [0.], surfaces
    discrete-learning failures via {!Discrete_learning.learn_checked}, and
    rejects a non-finite or negative final estimate as [Error (Numeric _)].
    Any stray exception out of a structurally corrupt synopsis is caught
    and returned as [Error (Corrupt_synopsis _)]. Never raises. *)

(** {2 Flat hot path} *)

val run_flat :
  ?obs:Repro_obs.Obs.ctx ->
  ?dl_config:Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  Synopsis_flat.t ->
  float
(** {!run} over a prebuilt flat view — the per-query cost is the linear
    scans only. Bit-identical to {!run}. *)

val run_with_breakdown_flat :
  ?obs:Repro_obs.Obs.ctx ->
  ?dl_config:Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  Synopsis_flat.t ->
  breakdown
(** {!run_with_breakdown} over a prebuilt flat view. *)

val run_checked_flat :
  ?obs:Repro_obs.Obs.ctx ->
  ?dl_config:Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  Synopsis_flat.t ->
  (breakdown, Fault.error) result
(** {!run_checked} over a prebuilt flat view. Structural validation is the
    memoized {!Synopsis_flat.t.verdict} computed when the view was built —
    once per load, not once per query. *)
