(** Accuracy drift sentinels: queries with recorded ground truth.

    Seeded at synopsis-build time from the join {!Profile} (which still
    sees the base tables), persisted alongside the synopsis (store format
    v3), and replayed by the serving engine on load/reload — the q-error
    between the recorded truth and the synopsis's current answer is the
    drift signal behind [Fault.Drift].

    Predicates are stored as SQL text ([Predicate_parser] grammar) in the
    {e user-facing} orientation: [left_pred] filters [table_a] of the
    store entry, [right_pred] filters [table_b], [""] means no filter. *)

type t = {
  left_pred : string;  (** predicate on the left table; [""] = none *)
  right_pred : string;  (** predicate on the right table; [""] = none *)
  truth : float;  (** exact join size under those predicates *)
  baseline : float;
      (** the synopsis's q-error on this sentinel at build time
          ([>= 1.0]); drift means the replayed q-error worsening
          relative to this, not a large absolute q-error *)
}

val seed : Profile.t -> t list
(** Deterministic sentinels for a profile in user-facing orientation:
    the unfiltered join size, plus (when the shared join values contain
    [Int]s and the column names survive a parse round-trip) one
    [column <= median] half-range sentinel per side. A pure function of
    the profile contents — rebuilding from identical tables re-seeds
    byte-identical sentinels, so delta-maintained and freshly built
    stores still compare equal. [baseline] is left at [1.0]; use
    {!with_baselines} against the freshly drawn synopsis to record it. *)

val replay : Synopsis_flat.t -> swapped:bool -> t -> float option
(** Estimate the sentinel's stored query against a flat synopsis
    ([swapped] flips the user-facing predicates into sampler
    orientation) and return the q-error versus the recorded truth.
    [None] if the predicate text no longer parses or the estimator
    faults hard — a sentinel is advisory and never an error. *)

val with_baselines : Synopsis_flat.t -> swapped:bool -> t list -> t list
(** Record each sentinel's current q-error (clamped to [>= 1.0]; [1.0]
    when unreplayable) as its [baseline]. Deterministic over the flat
    synopsis, so bit-identical synopses record bit-identical baselines —
    the shard smoke test's delta-vs-rebuild store byte comparison relies
    on this. *)

val predicates :
  t ->
  (Repro_relation.Predicate.t option * Repro_relation.Predicate.t option)
  option
(** Parse the stored predicate texts back into trees ([None] per side for
    [""]); [None] if either side fails to parse — such a sentinel is
    skipped, never an error. *)

val filtered_truth :
  Profile.t ->
  pred_a:Repro_relation.Predicate.t option ->
  pred_b:Repro_relation.Predicate.t option ->
  float
(** Exact filtered join size over the profiled base tables — the truth a
    sentinel records. *)
