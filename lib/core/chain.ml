open Repro_relation
module Prng = Repro_util.Prng

type tables = {
  a : Table.t;
  a_pk : string;
  b : Table.t;
  b_pk : string;
  b_fk : string;
  c : Table.t;
  c_fk : string;
}

type t = {
  spec : Spec.t;
  tables : tables;
  profile : Profile.t;  (* C as side a (sampled), B.pk as side b *)
  resolved : Budget.t;
  b_groups : int array Value.Tbl.t;  (* B.pk -> B rows *)
  a_groups : int array Value.Tbl.t;  (* A.pk -> A rows *)
  b_fk_index : int;
}

(* Per sampled C-value v: the joinable B rows (PK -> at most one) and, for
   each, the joinable A rows of its FK value. *)
type link = { b_row : int; a_rows : int array }

type synopsis = {
  sample_c : Sample.t;
  links : link array Value.Tbl.t;
  n0 : float;
  prepared : t;
}

let jvd tables = Join.jvd tables.b tables.b_pk tables.c tables.c_fk

let prepare spec ~theta tables =
  let profile =
    Profile.of_tables tables.c tables.c_fk tables.b tables.b_pk
  in
  (* The budget base is the whole chain's data size, not just C and B. *)
  let profile =
    {
      profile with
      Profile.total_rows =
        Table.cardinality tables.a + Table.cardinality tables.b
        + Table.cardinality tables.c;
    }
  in
  let resolved = Budget.resolve spec ~theta profile in
  {
    spec;
    tables;
    profile;
    resolved;
    b_groups = Table.group_by tables.b tables.b_pk;
    a_groups = Table.group_by tables.a tables.a_pk;
    b_fk_index = Table.column_index tables.b tables.b_fk;
  }

let prepare_opt ?threshold ~theta tables =
  let spec = Opt.spec_for ?threshold ~jvd:(jvd tables) () in
  prepare spec ~theta tables

let draw t prng =
  let sample_c = Sample.first_side ~base:(Synopsis.base_of_prng prng) ~profile:t.profile
      ~resolved:t.resolved () in
  let links = Value.Tbl.create 256 in
  let n0 = ref 0.0 in
  Value.Tbl.iter
    (fun v (_ : Sample.entry) ->
      n0 := !n0 +. float_of_int (Profile.frequency t.profile.Profile.a v);
      match Value.Tbl.find_opt t.b_groups v with
      | None -> ()
      | Some b_rows ->
          let link_of b_row =
            let u = (Table.row t.tables.b b_row).(t.b_fk_index) in
            let a_rows =
              match u with
              | Value.Null -> [||]
              | u -> (
                  match Value.Tbl.find_opt t.a_groups u with
                  | Some rows -> rows
                  | None -> [||])
            in
            { b_row; a_rows }
          in
          Value.Tbl.add links v (Array.map link_of b_rows))
    sample_c.Sample.entries;
  { sample_c; links; n0 = !n0; prepared = t }

let compile_opt table = function
  | Predicate.True -> fun (_ : Value.t array) -> true
  | p -> Predicate.compile p (Table.schema table)

let estimate ?dl_config ?(pred_a = Predicate.True) ?(pred_b = Predicate.True)
    ?(pred_c = Predicate.True) t synopsis =
  let pass_a = compile_opt t.tables.a pred_a in
  let pass_b = compile_opt t.tables.b pred_b in
  let pass_c = compile_opt t.tables.c pred_c in
  let sample_c = synopsis.sample_c in
  let total_tuples = Sample.total_tuples sample_c in
  if total_tuples = 0 then 0.0
  else begin
    let base_q = t.resolved.Budget.base_q in
    (* Filtered counts of the C sample, for both selectivity and DL. *)
    let filtered = Value.Tbl.create (Value.Tbl.length sample_c.Sample.entries) in
    let filtered_tuples = ref 0 in
    let virtual_counts = ref [] in
    Value.Tbl.iter
      (fun v (entry : Sample.entry) ->
        let count = Sample.filtered_count sample_c pass_c entry in
        let sentry = Sample.sentry_passes sample_c pass_c entry in
        Value.Tbl.add filtered v (count, sentry);
        filtered_tuples := !filtered_tuples + count + (if sentry then 1 else 0);
        if count > 0 && entry.Sample.q_v > 0.0 then begin
          let virtual_count = float_of_int count *. base_q /. entry.Sample.q_v in
          if virtual_count > 0.0 then
            virtual_counts := virtual_count :: !virtual_counts
        end)
      sample_c.Sample.entries;
    let selectivity =
      float_of_int !filtered_tuples /. float_of_int total_tuples
    in
    (* Virtual-sample population: the sentries sit outside the second-level
       draw (see Estimate.dl_estimate) and must not be scaled by x_v. *)
    let n0_virtual =
      if t.spec.Spec.sentry then
        Float.max 0.0
          (synopsis.n0 -. float_of_int (Sample.sentry_count sample_c))
      else synopsis.n0
    in
    let n0_filtered = n0_virtual *. selectivity in
    let learned =
      match t.spec.Spec.method_ with
      | Spec.Discrete_learning ->
          Some
            (Discrete_learning.learn ?config:dl_config
               (Array.of_list !virtual_counts))
      | Spec.Scaling -> None
    in
    let sentry_spec = t.spec.Spec.sentry in
    let total = ref 0.0 in
    Value.Tbl.iter
      (fun v links ->
        let entry = Value.Tbl.find sample_c.Sample.entries v in
        let count, sentry = Value.Tbl.find filtered v in
        let c_factor =
          match learned with
          | Some learned ->
              let x_v =
                if count = 0 || entry.Sample.q_v <= 0.0 then 0.0
                else
                  Discrete_learning.probability_of_count learned
                    (float_of_int count *. base_q /. entry.Sample.q_v)
              in
              (x_v *. n0_filtered)
              +. if sentry_spec && sentry then 1.0 else 0.0
          | None ->
              let scaled =
                if count = 0 then 0.0
                else float_of_int count /. entry.Sample.q_v
              in
              scaled +. if sentry_spec && sentry then 1.0 else 0.0
        in
        if c_factor > 0.0 then begin
          (* Eq. 8: one term per (u, v) pair whose B and A witnesses pass. *)
          let path_count =
            Array.fold_left
              (fun acc { b_row; a_rows } ->
                if pass_b (Table.row t.tables.b b_row) then
                  let a_ok =
                    Array.exists
                      (fun a_row -> pass_a (Table.row t.tables.a a_row))
                      a_rows
                  in
                  if a_ok then acc + 1 else acc
                else acc)
              0 links
          in
          if path_count > 0 then
            total :=
              !total
              +. (float_of_int path_count *. c_factor /. entry.Sample.p_v)
        end)
      synopsis.links;
    !total
  end

let true_size ?(pred_a = Predicate.True) ?(pred_b = Predicate.True)
    ?(pred_c = Predicate.True) tables =
  Join.chain3_count
    ~a:(Join.filtered tables.a tables.a_pk pred_a)
    ~b:(Join.filtered tables.b tables.b_pk pred_b)
    ~b_fk:tables.b_fk
    ~c:(Join.filtered tables.c tables.c_fk pred_c)

let synopsis_tuples synopsis =
  let links =
    Value.Tbl.fold
      (fun _ links acc ->
        Array.fold_left
          (fun acc { a_rows; _ } -> acc + 1 + min 1 (Array.length a_rows))
          acc links)
      synopsis.links 0
  in
  Sample.total_tuples synopsis.sample_c + links

let spec t = t.spec
