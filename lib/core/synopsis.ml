type t = {
  resolved : Budget.t;
  sample_a : Sample.t;
  sample_b : Sample.t;
  n_prime : float;
}

module Obs = Repro_obs.Obs
module Prng = Repro_util.Prng

(* N' = sum of integer frequencies: exact in float for any realistic
   cardinality, and addition of exact integers is order-independent — so
   shard-wise partial sums recombine bit-identically. *)
let n_prime_of ~(profile : Profile.t) (sample_a : Sample.t) =
  let n_prime = ref 0.0 in
  Repro_relation.Value.Tbl.iter
    (fun v (_ : Sample.entry) ->
      n_prime :=
        !n_prime +. float_of_int (Profile.frequency profile.Profile.a v))
    sample_a.Sample.entries;
  !n_prime

let draw_base ?(obs = Obs.null) ?select ~base ~profile ~resolved () =
  Obs.Span.with_ obs ~name:"sample.draw"
    ~attrs:[ ("spec", Spec.to_string resolved.Budget.spec) ]
  @@ fun () ->
  let sample_a =
    Obs.Span.with_ obs ~name:"sample.first" @@ fun () ->
    Sample.first_side ~obs ?select ~base ~profile ~resolved ()
  in
  let sample_b =
    Obs.Span.with_ obs ~name:"sample.second" @@ fun () ->
    Sample.second_side ~obs ~base ~profile ~resolved ~first:sample_a ()
  in
  { resolved; sample_a; sample_b; n_prime = n_prime_of ~profile sample_a }

(* The caller's stream is consumed exactly once: its next 64 bits become
   the base every per-value sub-stream derives from. Callers that pass a
   fresh keyed stream (every runner does) thereby give the whole draw a
   reproducible name — and a sharded build that derives the same base
   draws the same synopsis. *)
let base_of_prng prng = Prng.bits64 prng

let draw ?obs prng ~profile ~resolved =
  draw_base ?obs ~base:(base_of_prng prng) ~profile ~resolved ()

let size_tuples t =
  Sample.total_tuples t.sample_a + Sample.total_tuples t.sample_b
