type t = {
  resolved : Budget.t;
  sample_a : Sample.t;
  sample_b : Sample.t;
  n_prime : float;
}

module Obs = Repro_obs.Obs

let draw ?(obs = Obs.null) prng ~profile ~resolved =
  Obs.Span.with_ obs ~name:"sample.draw"
    ~attrs:[ ("spec", Spec.to_string resolved.Budget.spec) ]
  @@ fun () ->
  let sample_a =
    Obs.Span.with_ obs ~name:"sample.first" @@ fun () ->
    Sample.first_side ~obs prng ~profile ~resolved
  in
  let sample_b =
    Obs.Span.with_ obs ~name:"sample.second" @@ fun () ->
    Sample.second_side ~obs prng ~profile ~resolved ~first:sample_a
  in
  let n_prime = ref 0.0 in
  Repro_relation.Value.Tbl.iter
    (fun v (_ : Sample.entry) ->
      n_prime :=
        !n_prime +. float_of_int (Profile.frequency profile.Profile.a v))
    sample_a.Sample.entries;
  { resolved; sample_a; sample_b; n_prime = !n_prime }

let size_tuples t =
  Sample.total_tuples t.sample_a + Sample.total_tuples t.sample_b
