(** Deterministic value-to-shard routing and the canonical value order.

    Correlated sampling is hash-driven: with per-value PRNG sub-streams
    (see {!Sample}), whether and how a join value is sampled depends only
    on the keyed hash of the value — not on which partition it sits in or
    which other values exist. This module fixes the two remaining degrees
    of freedom: {e where} a value lives (its shard) and {e when} it is
    visited (the canonical scan order used by every float accumulation),
    so K-shard merges reproduce the monolithic draw bit for bit.

    Shards are contiguous ranges of the unsigned 64-bit hash space rather
    than residue classes: the canonical order sorts by hash, so the
    global layout is the concatenation of the per-shard layouts for
    {e every} shard count simultaneously — an estimate scan cannot tell
    1 shard from 8. *)

val hash : Repro_relation.Value.t -> int64
(** Keyed splitmix fold over {!Repro_relation.Value.encode}; stable
    across OCaml versions and word sizes (never [Hashtbl.hash]). *)

val shard_of : shards:int -> Repro_relation.Value.t -> int
(** [shard_of ~shards v] routes [v] to its shard in [0, shards).
    Range-partitioned on the top hash bits; raises [Invalid_argument]
    when [shards < 1]. A value's shard under [K] shards is the prefix of
    its position in the canonical order. *)

val compare : Repro_relation.Value.t -> Repro_relation.Value.t -> int
(** The canonical total order: unsigned {!hash}, ties broken by the
    injective byte encoding. Strictly total on distinct values (unlike
    [Value.compare], under which [Int 3] and [Float 3.] tie). *)

val sorted_bindings : 'a Repro_relation.Value.Tbl.t -> (Repro_relation.Value.t * 'a) list
(** The table's bindings sorted by {!compare} — the one sanctioned way
    hashtable contents reach a float accumulation or the wire. *)

val sorted_values : Repro_relation.Value.t array -> Repro_relation.Value.t array
(** Copy of the array sorted by {!compare}. *)
