(** Versioned, checksummed binary persistence for drawn synopses — the
    offline half of the paper's offline/online split, made durable.

    A store file is [magic | version | schema-hash | payload-length |
    payload-checksum | payload], all integers 64-bit little-endian. The
    schema hash fingerprints the wire {e layout} (a descriptor string baked
    into this module), so readers reject files whose field layout drifted
    even at an unchanged version number; the checksum (FNV-1a over the
    payload bytes) rejects bit rot and truncation. The payload stores, per
    synopsis: the join-graph key, both base-table names and content
    fingerprints ({!Repro_relation.Table.fingerprint}), the orientation
    flag, the PRNG key the samples were drawn with, the fully resolved
    budget (spec, theta, p/q/u rates, base q) and both per-value tuple
    samples with their sentry bookkeeping.

    Tables themselves are {e not} stored — only sampled row indices — so
    decoding takes a resolver from table name to table and refuses (typed
    {!Fault.Store_mismatch}, never a crash) to rehydrate against data
    whose fingerprint differs from the recorded one.

    Since v2, each sample is stored as [shards] independent segments —
    shard [k] holding the entries {!Shard_key.shard_of} routes to it,
    canonically sorted, length-prefixed and FNV-checksummed per segment —
    so single shards can be verified or swapped without touching their
    neighbours, and truncation inside one segment is rejected by shard
    index. All downstream float accumulation runs in the canonical
    {!Shard_key} order, so estimates against a decoded synopsis are
    bit-identical to estimates against the freshly drawn one (pinned by
    test_store.ml for every variant), regardless of the shard count it
    was stored with. *)

open Repro_relation

type stored = {
  key : string;  (** join-graph key in the store *)
  table_a : string;  (** original A-side table name *)
  table_b : string;  (** original B-side table name *)
  swapped : bool;  (** the sampler operated on the (B, A) orientation *)
  fingerprint_a : int64;  (** {!Table.fingerprint} of [table_a]'s data *)
  fingerprint_b : int64;  (** {!Table.fingerprint} of [table_b]'s data *)
  prng_key : string;
      (** the keyed-PRNG stream the samples were drawn from (informational;
          [""] when the caller did not record one) *)
  shards : int;
      (** number of per-sample shard segments in the file ([>= 1]); how
          the synopsis was built, and how delta maintenance re-shards it *)
  sentinels : Sentinel.t list;
      (** accuracy drift sentinels in user-facing orientation (new in
          v3) — seeded at build time, re-seeded by delta maintenance,
          replayed by the serving engine on load/reload *)
  synopsis : Synopsis.t;  (** in sampler orientation, as {!Synopsis.draw} *)
}

val version : int

val schema_hash : int64
(** FNV-1a hash of the wire-layout descriptor for [version]. *)

val encode : stored list -> string
(** Serialize to the full file image (header + payload). *)

val decode :
  resolve_table:(string -> Table.t) ->
  string ->
  (stored list, Fault.error) result
(** Parse a file image. Every failure — bad magic, version or layout
    drift, checksum mismatch, truncated or malformed payload, resolver
    failure, fingerprint mismatch — comes back as
    [Error (Store_mismatch _)]; this function never raises. *)

val write : path:string -> stored list -> unit
(** Crash-safe: the image is written to a temp file in [path]'s directory
    and atomically renamed over [path], so a killed writer never leaves a
    torn store file — readers observe the old contents or the new ones,
    nothing in between. *)

val read :
  resolve_table:(string -> Table.t) ->
  path:string ->
  (stored list, Fault.error) result
(** [encode]/[decode] through a file; unreadable files are
    [Error (Store_mismatch {what = "file"; _})]. *)
