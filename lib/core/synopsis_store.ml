open Repro_relation

type stored = {
  key : string;
  table_a : string;
  table_b : string;
  swapped : bool;
  fingerprint_a : int64;
  fingerprint_b : int64;
  prng_key : string;
  shards : int;
  sentinels : Sentinel.t list;
  synopsis : Synopsis.t;
}

let magic = "reprosyn"
let version = 3

(* ---------------- FNV-1a (checksum + layout hash) ---------------- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_string_from h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

(* The layout descriptor names every field of the payload in order. Any
   change to the wire layout must edit this string, which changes the
   schema hash and makes old readers reject new files (and vice versa)
   with a typed error instead of misparsing them. *)
let layout =
  "v3: entries[key table_a table_b swapped fp_a fp_b prng_key shards \
   sentinels[left_pred right_pred truth baseline] \
   budget[spec[name p q u sentry method opt_var hh_k] theta p_rate q_rate \
   u_rate base_q expected_size budget] sample_a sample_b n_prime]; \
   sample = column tuple_count segment{shards}; \
   segment = length fnv64 entries[value sentry_row rows p_v q_v] \
   (entries canonically sorted within their shard's hash range); \
   rate = const|scaled|blended[c light (value weight)*]; \
   ints i64le, floats f64 bits, strings length-prefixed"

let schema_hash = fnv_string_from fnv_offset layout

(* ---------------- encoder ---------------- *)

let add_u8 buf i = Buffer.add_char buf (Char.chr (i land 0xff))
let add_bool buf b = add_u8 buf (if b then 1 else 0)
let add_i64 buf (x : int64) = Buffer.add_int64_le buf x
let add_int buf i = add_i64 buf (Int64.of_int i)
let add_f64 buf x = add_i64 buf (Int64.bits_of_float x)

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_opt add buf = function
  | None -> add_u8 buf 0
  | Some x ->
      add_u8 buf 1;
      add buf x

let add_value buf = function
  | Value.Null -> add_u8 buf 0
  | Value.Int x ->
      add_u8 buf 1;
      add_int buf x
  | Value.Float x ->
      add_u8 buf 2;
      add_f64 buf x
  | Value.Str s ->
      add_u8 buf 3;
      add_str buf s

let level_tag = function
  | Spec.L_one -> 0
  | Spec.L_theta -> 1
  | Spec.L_sqrt_theta -> 2
  | Spec.L_diff -> 3

let method_tag = function Spec.Scaling -> 0 | Spec.Discrete_learning -> 1

let add_spec buf (s : Spec.t) =
  add_str buf s.Spec.name;
  add_u8 buf (level_tag s.Spec.p_choice);
  add_u8 buf (level_tag s.Spec.q_choice);
  add_opt (fun buf c -> add_u8 buf (level_tag c)) buf s.Spec.u_choice;
  add_bool buf s.Spec.sentry;
  add_u8 buf (method_tag s.Spec.method_);
  add_bool buf s.Spec.optimize_variance;
  add_opt add_int buf s.Spec.heavy_hitter_k

(* Hashtable contents are written in iteration order so the decoder can
   rebuild the exact same table (see [thaw_entries]). *)
let tbl_bindings tbl =
  let acc = ref [] in
  Value.Tbl.iter (fun k v -> acc := (k, v) :: !acc) tbl;
  List.rev !acc

let add_rate buf = function
  | Budget.Const c ->
      add_u8 buf 0;
      add_f64 buf c
  | Budget.Scaled c ->
      add_u8 buf 1;
      add_f64 buf c
  | Budget.Blended { c; heavy; light } ->
      add_u8 buf 2;
      add_f64 buf c;
      add_f64 buf light;
      let bindings = tbl_bindings heavy in
      add_int buf (List.length bindings);
      List.iter
        (fun (v, w) ->
          add_value buf v;
          add_f64 buf w)
        bindings

let add_budget buf (b : Budget.t) =
  add_spec buf b.Budget.spec;
  add_f64 buf b.Budget.theta;
  add_rate buf b.Budget.p_rate;
  add_rate buf b.Budget.q_rate;
  add_rate buf b.Budget.u_rate;
  add_f64 buf b.Budget.base_q;
  add_f64 buf b.Budget.expected_size;
  add_f64 buf b.Budget.budget

let add_entries buf bindings =
  add_int buf (List.length bindings);
  List.iter
    (fun (v, (e : Sample.entry)) ->
      add_value buf v;
      add_opt add_int buf e.Sample.sentry_row;
      add_int buf (Array.length e.Sample.rows);
      Array.iter (add_int buf) e.Sample.rows;
      add_f64 buf e.Sample.p_v;
      add_f64 buf e.Sample.q_v)
    bindings

(* Samples are stored as [shards] independent segments: shard [k] holds
   the entries routed to it by [Shard_key.shard_of], canonically sorted
   ([Shard_key.sorted_bindings] — the order every flat view uses anyway),
   each segment length-prefixed and FNV-checksummed on its own. A reader
   can thus verify and swap a single shard without touching the others,
   and a truncated or corrupted segment is rejected by name instead of
   misparsing into its neighbour. *)
let add_sample ~shards buf (s : Sample.t) =
  add_str buf s.Sample.column;
  add_int buf s.Sample.tuple_count;
  add_int buf shards;
  let segments = Array.make shards [] in
  List.iter
    (fun ((v, _) as binding) ->
      let k = Shard_key.shard_of ~shards v in
      segments.(k) <- binding :: segments.(k))
    (List.rev (Shard_key.sorted_bindings s.Sample.entries));
  Array.iter
    (fun bindings ->
      let seg = Buffer.create 256 in
      add_entries seg bindings;
      let bytes = Buffer.contents seg in
      add_int buf (String.length bytes);
      add_i64 buf (fnv_string_from fnv_offset bytes);
      Buffer.add_string buf bytes)
    segments

let add_stored buf s =
  add_str buf s.key;
  add_str buf s.table_a;
  add_str buf s.table_b;
  add_bool buf s.swapped;
  add_i64 buf s.fingerprint_a;
  add_i64 buf s.fingerprint_b;
  add_str buf s.prng_key;
  add_int buf s.shards;
  add_int buf (List.length s.sentinels);
  List.iter
    (fun (sen : Sentinel.t) ->
      add_str buf sen.Sentinel.left_pred;
      add_str buf sen.Sentinel.right_pred;
      add_f64 buf sen.Sentinel.truth;
      add_f64 buf sen.Sentinel.baseline)
    s.sentinels;
  let { Synopsis.resolved; sample_a; sample_b; n_prime } = s.synopsis in
  add_budget buf resolved;
  add_sample ~shards:s.shards buf sample_a;
  add_sample ~shards:s.shards buf sample_b;
  add_f64 buf n_prime

let encode_payload entries =
  let buf = Buffer.create 4096 in
  add_int buf (List.length entries);
  List.iter (add_stored buf) entries;
  Buffer.contents buf

let encode entries =
  let payload = encode_payload entries in
  let buf = Buffer.create (String.length payload + 40) in
  Buffer.add_string buf magic;
  add_int buf version;
  add_i64 buf schema_hash;
  add_int buf (String.length payload);
  add_i64 buf (fnv_string_from fnv_offset payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ---------------- decoder ---------------- *)

exception Fail of Fault.error

let fail what detail = raise (Fail (Fault.Store_mismatch { what; detail }))

type reader = { data : string; mutable pos : int }

let need r n =
  if n < 0 || r.pos + n > String.length r.data then
    fail "payload"
      (Printf.sprintf "truncated at byte %d (need %d of %d)" r.pos n
         (String.length r.data))

let get_u8 r =
  need r 1;
  let b = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  b

let get_bool r = get_u8 r <> 0

let get_i64 r =
  need r 8;
  let x = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  x

let get_int r =
  let x = get_i64 r in
  let i = Int64.to_int x in
  if Int64.of_int i <> x then fail "payload" "integer out of range";
  i

let get_count r what =
  let n = get_int r in
  if n < 0 then fail "payload" ("negative " ^ what ^ " count");
  n

let get_f64 r = Int64.float_of_bits (get_i64 r)

let get_str r =
  let n = get_count r "string" in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_opt get r = match get_u8 r with 0 -> None | _ -> Some (get r)

let get_value r =
  match get_u8 r with
  | 0 -> Value.Null
  | 1 -> Value.Int (get_int r)
  | 2 -> Value.Float (get_f64 r)
  | 3 -> Value.Str (get_str r)
  | tag -> fail "payload" (Printf.sprintf "unknown value tag %d" tag)

let get_level r =
  match get_u8 r with
  | 0 -> Spec.L_one
  | 1 -> Spec.L_theta
  | 2 -> Spec.L_sqrt_theta
  | 3 -> Spec.L_diff
  | tag -> fail "payload" (Printf.sprintf "unknown level tag %d" tag)

let get_method r =
  match get_u8 r with
  | 0 -> Spec.Scaling
  | 1 -> Spec.Discrete_learning
  | tag -> fail "payload" (Printf.sprintf "unknown method tag %d" tag)

let get_spec r =
  let name = get_str r in
  let p_choice = get_level r in
  let q_choice = get_level r in
  let u_choice = get_opt get_level r in
  let sentry = get_bool r in
  let method_ = get_method r in
  let optimize_variance = get_bool r in
  let heavy_hitter_k = get_opt get_int r in
  {
    Spec.name;
    p_choice;
    q_choice;
    u_choice;
    sentry;
    method_;
    optimize_variance;
    heavy_hitter_k;
  }

let get_rate r =
  match get_u8 r with
  | 0 -> Budget.Const (get_f64 r)
  | 1 -> Budget.Scaled (get_f64 r)
  | 2 ->
      let c = get_f64 r in
      let light = get_f64 r in
      let n = get_count r "heavy-hitter" in
      let heavy = Value.Tbl.create (max 16 n) in
      for _ = 1 to n do
        let v = get_value r in
        let w = get_f64 r in
        Value.Tbl.add heavy v w
      done;
      Budget.Blended { c; heavy; light }
  | tag -> fail "payload" (Printf.sprintf "unknown rate tag %d" tag)

let get_budget r =
  let spec = get_spec r in
  let theta = get_f64 r in
  let p_rate = get_rate r in
  let q_rate = get_rate r in
  let u_rate = get_rate r in
  let base_q = get_f64 r in
  let expected_size = get_f64 r in
  let budget = get_f64 r in
  {
    Budget.spec;
    theta;
    p_rate;
    q_rate;
    u_rate;
    base_q;
    expected_size;
    budget;
  }

(* Iteration order of the rebuilt hashtable is immaterial since PR 8:
   every float accumulation downstream (flat layout, budget solving,
   profile scans) runs in the canonical Shard_key order, and N' is an
   exact integer-valued sum — so the decoder just re-adds the recorded
   bindings. The round-trip test in test_store.ml pins the resulting
   bit-identity for every variant. *)
let get_entries r acc =
  let n = get_count r "sample entry" in
  let bindings = ref acc in
  for _ = 1 to n do
    let v = get_value r in
    let sentry_row = get_opt get_int r in
    let rows_n = get_count r "row" in
    need r (rows_n * 8);
    (* explicit loop: Array.init does not guarantee evaluation order, and
       the reader is stateful *)
    let rows = Array.make rows_n 0 in
    for i = 0 to rows_n - 1 do
      rows.(i) <- get_int r
    done;
    let p_v = get_f64 r in
    let q_v = get_f64 r in
    bindings := (v, { Sample.sentry_row; rows; p_v; q_v }) :: !bindings
  done;
  !bindings

let get_sample r ~shards ~table =
  let column = get_str r in
  let tuple_count = get_int r in
  if tuple_count < 0 then fail "payload" "negative tuple count";
  let stored_shards = get_count r "shard" in
  if stored_shards <> shards then
    fail "shard segment"
      (Printf.sprintf "sample declares %d shard segments, entry declares %d"
         stored_shards shards);
  let bindings = ref [] in
  for k = 0 to shards - 1 do
    let seg_len = get_count r "shard segment byte" in
    let recorded = get_i64 r in
    if r.pos + seg_len > String.length r.data then
      fail "shard segment"
        (Printf.sprintf "shard %d truncated at byte %d (need %d of %d)" k r.pos
           seg_len (String.length r.data));
    let bytes = String.sub r.data r.pos seg_len in
    r.pos <- r.pos + seg_len;
    let actual = fnv_string_from fnv_offset bytes in
    if actual <> recorded then
      fail "shard segment"
        (Printf.sprintf "shard %d: recorded checksum %Lx, segment hashes to %Lx"
           k recorded actual);
    let sr = { data = bytes; pos = 0 } in
    bindings := get_entries sr !bindings;
    if sr.pos <> seg_len then
      fail "shard segment"
        (Printf.sprintf "shard %d: %d trailing bytes after last entry" k
           (seg_len - sr.pos))
  done;
  let entries = Value.Tbl.create 256 in
  List.iter (fun (v, e) -> Value.Tbl.add entries v e) !bindings;
  let sentries =
    Value.Tbl.fold
      (fun _ (e : Sample.entry) acc ->
        match e.Sample.sentry_row with Some _ -> acc + 1 | None -> acc)
      entries 0
  in
  { Sample.table; column; entries; tuple_count; sentries }

let get_stored r ~resolve_table =
  let key = get_str r in
  let table_a = get_str r in
  let table_b = get_str r in
  let swapped = get_bool r in
  let fingerprint_a = get_i64 r in
  let fingerprint_b = get_i64 r in
  let prng_key = get_str r in
  let shards = get_count r "shard" in
  if shards < 1 then fail "shard segment" "entry declares zero shards";
  let sentinel_count = get_count r "sentinel" in
  let sentinels = ref [] in
  for _ = 1 to sentinel_count do
    let left_pred = get_str r in
    let right_pred = get_str r in
    let truth = get_f64 r in
    let baseline = get_f64 r in
    sentinels := { Sentinel.left_pred; right_pred; truth; baseline } :: !sentinels
  done;
  let sentinels = List.rev !sentinels in
  let resolve name =
    match resolve_table name with
    | table -> table
    | exception exn ->
        fail "table"
          (Printf.sprintf "cannot resolve %S: %s" name (Printexc.to_string exn))
  in
  let resolved_a = resolve table_a and resolved_b = resolve table_b in
  let check name table recorded =
    let actual = Table.fingerprint table in
    if actual <> recorded then
      fail "fingerprint"
        (Printf.sprintf "table %S: recorded %Lx, resolved data hashes to %Lx"
           name recorded actual)
  in
  check table_a resolved_a fingerprint_a;
  check table_b resolved_b fingerprint_b;
  (* the samples are stored in sampler orientation: the first-sampled side
     lives on table_b when the estimator swapped *)
  let first, second =
    if swapped then (resolved_b, resolved_a) else (resolved_a, resolved_b)
  in
  let resolved = get_budget r in
  let sample_a = get_sample r ~shards ~table:first in
  let sample_b = get_sample r ~shards ~table:second in
  let n_prime = get_f64 r in
  {
    key;
    table_a;
    table_b;
    swapped;
    fingerprint_a;
    fingerprint_b;
    prng_key;
    shards;
    sentinels;
    synopsis = { Synopsis.resolved; sample_a; sample_b; n_prime };
  }

let decode ~resolve_table data =
  match
    if String.length data < 40 then fail "header" "file shorter than header";
    if String.sub data 0 8 <> magic then fail "magic" "not a synopsis store";
    let r = { data; pos = 8 } in
    let v = get_int r in
    if v <> version then
      fail "version"
        (Printf.sprintf "file version %d, this library reads %d" v version);
    let h = get_i64 r in
    if h <> schema_hash then
      fail "schema-hash"
        (Printf.sprintf "file layout %Lx, this library reads %Lx" h schema_hash);
    let payload_length = get_count r "payload byte" in
    let recorded_checksum = get_i64 r in
    if r.pos + payload_length <> String.length data then
      fail "payload"
        (Printf.sprintf "payload length %d does not match file size"
           payload_length);
    let payload = String.sub data r.pos payload_length in
    let actual = fnv_string_from fnv_offset payload in
    if actual <> recorded_checksum then
      fail "checksum"
        (Printf.sprintf "recorded %Lx, payload hashes to %Lx" recorded_checksum
           actual);
    let pr = { data = payload; pos = 0 } in
    let n = get_count pr "entry" in
    let entries = ref [] in
    for _ = 1 to n do
      entries := get_stored pr ~resolve_table :: !entries
    done;
    let entries = List.rev !entries in
    if pr.pos <> String.length payload then
      fail "payload" "trailing bytes after last entry";
    entries
  with
  | entries -> Ok entries
  | exception Fail fault -> Error fault
  | exception exn ->
      Error
        (Fault.Store_mismatch
           { what = "payload"; detail = Printexc.to_string exn })

(* ---------------- file IO ---------------- *)

(* Crash-safe write: the image goes to a fresh temp file in the target's
   own directory (rename is only atomic within a filesystem) and is
   renamed over [path] only after a successful close. A process killed
   mid-write can therefore never leave a torn store at [path] — readers
   see either the old bytes or the new ones, and the orphaned temp file
   is removed on any failure. *)
let write ~path entries =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~mode:[ Open_binary ] ~temp_dir:dir
      (Filename.basename path ^ ".") ".tmp"
  in
  match
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (encode entries))
  with
  | () -> Sys.rename tmp path
  | exception exn ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise exn

let read ~resolve_table ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e ->
      Error (Fault.Store_mismatch { what = "file"; detail = e })
  | exception End_of_file ->
      Error (Fault.Store_mismatch { what = "file"; detail = path ^ ": truncated" })
  | data -> decode ~resolve_table data
