(* Accuracy drift sentinels.

   A sentinel is a query with its exact answer recorded against the base
   tables at synopsis-build time. Replaying it against the synopsis later
   measures how far estimation accuracy has drifted — e.g. after delta
   maintenance mutated the data under a live server. Sentinels are pure
   data (predicate text + truth) so they persist in the synopsis store
   and survive a reload on a process that never saw the base tables.

   Seeding is a pure function of the profile: the unfiltered join size,
   plus one half-range predicate per side at the median shared join
   value. Same tables => same profile => byte-identical sentinels, which
   the shard smoke test's delta-vs-rebuild store comparison relies on. *)

open Repro_relation

type t = {
  left_pred : string;
  right_pred : string;
  truth : float;
  baseline : float;
}

let predicates s =
  let parse = function
    | "" -> Ok None
    | txt -> (
        match Predicate_parser.parse txt with
        | Ok p -> Ok (Some p)
        | Error e -> Error e)
  in
  match (parse s.left_pred, parse s.right_pred) with
  | Ok a, Ok b -> Some (a, b)
  | _ -> None

(* Exact filtered join size over the base tables:
   sum over shared v of |{rows of A in group v matching pred_a}|
                      * |{rows of B in group v matching pred_b}|. *)
let filtered_truth (profile : Profile.t) ~pred_a ~pred_b =
  let side_counter (side : Profile.side) pred =
    match pred with
    | None ->
        fun v ->
          (match Value.Tbl.find_opt side.Profile.groups v with
          | Some rows -> Array.length rows
          | None -> 0)
    | Some p ->
        let keep = Predicate.compile p (Table.schema side.Profile.table) in
        fun v ->
          (match Value.Tbl.find_opt side.Profile.groups v with
          | None -> 0
          | Some rows ->
              Array.fold_left
                (fun acc r ->
                  if keep (Table.row side.Profile.table r) then acc + 1
                  else acc)
                0 rows)
  in
  let ca = side_counter profile.Profile.a pred_a in
  let cb = side_counter profile.Profile.b pred_b in
  Array.fold_left
    (fun acc v -> acc +. float_of_int (ca v * cb v))
    0.0 profile.Profile.shared_values

(* A candidate predicate is kept only if its SQL rendering parses back to
   the same tree — sentinels must survive the store round-trip as text.
   Hostile column names (dashes, all digits) fail here and the sentinel
   is simply not seeded. *)
let round_trips p =
  match Predicate_parser.parse (Predicate.to_string p) with
  | Ok q -> q = p
  | Error _ -> false

(* Replay a sentinel against a flat synopsis: estimate the stored query
   and return the q-error versus the recorded truth. Stored predicates
   are user-facing; [swapped] flips them into sampler orientation. An
   unparseable sentinel or a hard estimator fault yields [None] — a
   sentinel can never take a caller down. *)
let replay flat ~swapped s =
  match predicates s with
  | None -> None
  | Some (pa, pb) -> (
      let pred_a, pred_b = if swapped then (pb, pa) else (pa, pb) in
      match Estimate.run_checked_flat ?pred_a ?pred_b flat with
      | Ok b ->
          Some (Repro_stats.Qerror.compute ~truth:s.truth ~estimate:b.Estimate.estimate)
      | Error (Fault.Empty_filtered_sample _) ->
          Some (Repro_stats.Qerror.compute ~truth:s.truth ~estimate:0.0)
      | Error _ -> None)

(* The baseline is what makes the drift signal relative: a synopsis can
   legitimately estimate a selective sentinel with a large q-error at
   build time (small sample, skewed filter), and that is not drift.
   Recording the build-time q-error lets the server trip only when
   accuracy *worsens* relative to it. Replay is deterministic over the
   flat synopsis, so a delta-maintained store (whose synopsis is
   bit-identical to a fresh rebuild) records bit-identical baselines. *)
let with_baselines flat ~swapped sentinels =
  List.map
    (fun s ->
      let baseline =
        match replay flat ~swapped s with
        | Some q when Float.is_finite q -> Float.max 1.0 q
        | _ -> 1.0
      in
      { s with baseline })
    sentinels

let seed (profile : Profile.t) =
  let unfiltered =
    {
      left_pred = "";
      right_pred = "";
      truth = float_of_int (Profile.true_join_size profile);
      baseline = 1.0;
    }
  in
  (* median of the Int shared join values, in Value.compare order — a
     half-range predicate there filters roughly half the join mass *)
  let ints =
    Array.to_list profile.Profile.shared_values
    |> List.filter (function Value.Int _ -> true | _ -> false)
    |> List.sort Value.compare
  in
  match ints with
  | [] -> [ unfiltered ]
  | _ ->
      let median = List.nth ints (List.length ints / 2) in
      let filtered column ~on_left =
        let p = Predicate.Compare (Predicate.Le, column, median) in
        if not (round_trips p) then None
        else
          let pred_a = if on_left then Some p else None in
          let pred_b = if on_left then None else Some p in
          Some
            {
              left_pred = (if on_left then Predicate.to_string p else "");
              right_pred = (if on_left then "" else Predicate.to_string p);
              truth = filtered_truth profile ~pred_a ~pred_b;
              baseline = 1.0;
            }
      in
      unfiltered
      :: List.filter_map Fun.id
           [
             filtered profile.Profile.a.Profile.column ~on_left:true;
             filtered profile.Profile.b.Profile.column ~on_left:false;
           ]
