(** A synopsis store: the workload-level object a system would actually
    deploy. Correlated sampling builds one synopsis per frequently-queried
    join graph (Section III's storage discussion); this module keeps them
    under string keys, answers estimation queries against them, and
    persists them to disk so the offline phase survives restarts.

    Persistence is the versioned, checksummed binary format of
    {!Synopsis_store}: sampled row indices plus the originating table
    {e names} and content fingerprints — not the tables — so a saved store
    is only meaningful against the same (deterministically regenerable)
    base data. [load] takes a resolver from table name to
    {!Repro_relation.Table.t} and verifies each table's fingerprint against
    the recorded one before rehydrating. *)

open Repro_relation

type t

val create : unit -> t

val add :
  ?prng_key:string ->
  ?shards:int ->
  t ->
  key:string ->
  table_a:string ->
  table_b:string ->
  Estimator.t ->
  Synopsis.t ->
  unit
(** Register a drawn synopsis under [key]. [table_a]/[table_b] name the
    estimator's original A and B tables (used to rehydrate after [load]);
    their content fingerprints are computed here, at registration time.
    [prng_key] records which keyed PRNG stream drew the synopsis (purely
    informational provenance; defaults to [""]). [shards] (default 1,
    must be [>= 1]) is the partition count the synopsis is persisted
    with — see {!Synopsis_shard}; estimates do not depend on it. Also
    seeds the entry's drift {!Sentinel}s from the estimator's profile.
    Replaces any previous synopsis under the same key. *)

val keys : t -> string list
val mem : t -> string -> bool
val remove : t -> string -> unit

val sentinels : t -> string -> Sentinel.t list
(** Drift sentinels recorded for [key] ([[]] for an unknown key) —
    seeded by {!add} from the estimator's profile, in user-facing
    orientation; persisted with the entry since store format v3. *)

type info = {
  i_table_a : string;
  i_table_b : string;
  i_swapped : bool;
  i_theta : float;
  i_variant : string;  (** {!Spec.to_string} of the resolved spec *)
  i_prng_key : string;
  i_shards : int;  (** shard-segment count the synopsis persists with *)
  i_tuples : int;  (** stored sample tuples in this synopsis *)
  i_fingerprint_a : int64;  (** content fingerprint of [i_table_a]'s data *)
  i_fingerprint_b : int64;  (** content fingerprint of [i_table_b]'s data *)
}

val info : t -> string -> info option
(** Provenance view of one entry, e.g. for CLI reporting. *)

val estimate :
  ?obs:Repro_obs.Obs.ctx ->
  ?dl_config:Discrete_learning.config ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  t ->
  key:string ->
  float
(** Online estimation against a stored synopsis; predicates are in the
    original (A, B) orientation, as with {!Estimator.estimate}. Raises
    [Not_found] for an unknown key. *)

val total_tuples : t -> int
(** Stored sample tuples across all synopses — the store's footprint. *)

val save : t -> string -> unit
(** Write the store to a file ({!Synopsis_store} format, entries sorted by
    key so identical stores produce identical bytes). *)

val load : resolve_table:(string -> Table.t) -> string -> t
(** Read a store back; [resolve_table] maps each recorded table name to
    the (identical) base table. Raises [Failure] on a bad, corrupted or
    version-mismatched file — use {!load_result} for a typed error. *)

val load_result :
  resolve_table:(string -> Table.t) -> string -> (t, Fault.error) result
(** Like {!load} but returning {!Fault.Store_mismatch} faults instead of
    raising. *)
