open Repro_relation
module Obs = Repro_obs.Obs

type sample_first = [ `A | `B | `Fk_side ]

type t = {
  spec : Spec.t;
  profile : Profile.t;  (* in sampler orientation *)
  resolved : Budget.t;
  swapped : bool;
}

let prepare ?(sample_first = `Fk_side) spec ~theta (profile : Profile.t) =
  let swapped =
    match sample_first with
    | `A -> false
    | `B -> true
    | `Fk_side ->
        (* Sample the FK side (the non-key side) first. When neither or
           both sides are keys, keep the caller's orientation. *)
        Profile.is_key_side profile.Profile.a
        && not (Profile.is_key_side profile.Profile.b)
  in
  let profile = if swapped then Profile.swap profile else profile in
  let resolved = Budget.resolve spec ~theta profile in
  { spec; profile; resolved; swapped }

let draw ?obs t prng =
  Synopsis.draw ?obs prng ~profile:t.profile ~resolved:t.resolved

let estimate ?obs ?dl_config ?virtual_sample ?(pred_a = Predicate.True)
    ?(pred_b = Predicate.True) t synopsis =
  let pred_a, pred_b = if t.swapped then (pred_b, pred_a) else (pred_a, pred_b) in
  Estimate.run ?obs ?dl_config ?virtual_sample ~pred_a ~pred_b synopsis

let estimate_once ?obs ?dl_config ?virtual_sample ?pred_a ?pred_b t prng =
  let synopsis = draw ?obs t prng in
  estimate ?obs ?dl_config ?virtual_sample ?pred_a ?pred_b t synopsis

let estimate_checked ?obs ?dl_config ?virtual_sample ?(pred_a = Predicate.True)
    ?(pred_b = Predicate.True) t synopsis =
  let pred_a, pred_b = if t.swapped then (pred_b, pred_a) else (pred_a, pred_b) in
  Estimate.run_checked ?obs ?dl_config ?virtual_sample ~pred_a ~pred_b synopsis

let swapped t = t.swapped
let spec t = t.spec
let resolved t = t.resolved
let profile t = t.profile

(* ---------------- graceful-degradation cascade ---------------- *)

type guarded = {
  value : float;
  rung : string;
  trace : Fault.trace;
  clamped : bool;
}

(* The coarsest prior that needs no sampling at all: the System-R style
   independence assumption |A| * |B| / max(d_A, d_B). Used as the default
   final rung; callers with a budget for it can supply the sampling
   independence baseline (lib/baselines/independent.ml) instead. *)
let independence_prior (profile : Profile.t) () =
  let a = profile.Profile.a and b = profile.Profile.b in
  let d = max a.Profile.distinct b.Profile.distinct in
  if d = 0 then 0.0
  else
    float_of_int a.Profile.cardinality
    *. float_of_int b.Profile.cardinality
    /. float_of_int d

let join_upper_bound (profile : Profile.t) =
  float_of_int profile.Profile.a.Profile.cardinality
  *. float_of_int profile.Profile.b.Profile.cardinality

(* The scaling rung: sentry-backed simple scaling with constant rates —
   no LP, no discrete learning, nothing left to go numerically wrong
   beyond the synopsis itself. *)
let scaling_spec =
  {
    Spec.name = "CS(scaling)";
    p_choice = Spec.L_theta;
    q_choice = Spec.L_one;
    u_choice = None;
    sentry = true;
    method_ = Spec.Scaling;
    optimize_variance = false;
    heavy_hitter_k = None;
  }

(* Eager, not [lazy]: guarded estimates may run on pool domains, and
   concurrently forcing a [lazy] raises [RacyLazy] on OCaml 5. *)
let cascade_specs =
  [
    Spec.csdl Spec.L_theta Spec.L_diff;
    Spec.csdl Spec.L_one Spec.L_diff;
    scaling_spec;
  ]

let estimate_guarded ?(obs = Obs.null) ?dl_config ?virtual_sample ?pred_a
    ?pred_b ?sample_first ?draw:(draw_fn = fun t prng -> draw ~obs t prng)
    ?fallback ~theta profile prng =
  if not (Float.is_finite theta) || theta <= 0.0 || theta > 1.0 then
    Error (Fault.Bad_input "estimate_guarded: theta must be in (0, 1]")
  else begin
    Obs.Span.with_ obs ~name:"estimate.guarded" @@ fun () ->
    let upper = join_upper_bound profile in
    let clamp value =
      if value > upper then (upper, true)
      else if value < 0.0 then (0.0, true)
      else (value, false)
    in
    let trace = ref [] in
    let downgrade rung fault =
      Obs.count obs
        ~labels:[ ("fault", Fault.variant_label fault) ]
        "estimate.downgrade" 1;
      Obs.count obs "estimate.downgrades.total" 1;
      trace := { Fault.rung; fault } :: !trace
    in
    let attempt spec =
      let rung = Spec.to_string spec in
      match
        let t = prepare ?sample_first spec ~theta profile in
        let synopsis = draw_fn t prng in
        estimate_checked ~obs ?dl_config ?virtual_sample ?pred_a ?pred_b t
          synopsis
      with
      | Ok breakdown -> Some (rung, breakdown.Estimate.estimate)
      | Error fault ->
          downgrade rung fault;
          None
      | exception exn ->
          downgrade rung (Fault.Corrupt_synopsis (Printexc.to_string exn));
          None
    in
    let rec first_rung = function
      | [] -> None
      | spec :: rest -> (
          match attempt spec with
          | Some answer -> Some answer
          | None -> first_rung rest)
    in
    let answer =
      match first_rung cascade_specs with
      | Some answer -> Some answer
      | None -> (
          let rung, thunk =
            match fallback with
            | Some (name, thunk) -> (name, thunk)
            | None -> ("independence", independence_prior profile)
          in
          match thunk () with
          | value when Float.is_finite value -> Some (rung, value)
          | value ->
              downgrade rung (Fault.Numeric { what = "fallback estimate"; value });
              None
          | exception exn ->
              downgrade rung (Fault.Corrupt_synopsis (Printexc.to_string exn));
              None)
    in
    let rung, raw =
      match answer with
      | Some (rung, raw) -> (rung, raw)
      | None ->
          (* Every rung including the fallback failed: answer zero, with
             the trace saying exactly how we got here. *)
          ("zero", 0.0)
    in
    let value, clamped = clamp raw in
    Obs.count obs ~labels:[ ("rung", rung) ] "estimate.rung" 1;
    if clamped then Obs.count obs "estimate.clamped" 1;
    Ok { value; rung; trace = List.rev !trace; clamped }
  end
