open Repro_relation

type rows = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type column =
  | Ints of rows
  | Floats of (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  | Boxed of Value.t array

type side = {
  table : Table.t;
  column : string;
  values : Value.t array;
  row_off : int array;
  rows : rows;
  sentry : int array;
  sentry_pos : int array;
  cols : column array;
  p_v : float array;
  q_v : float array;
}

type t = {
  syn : Synopsis.t;
  a : side;
  b : side;
  b_to_a : int array;
  sorted_a : int array;
  verdict : Fault.error option;
}

(* Flatten one sample. Values are laid out in the canonical shard-hash
   order ([Shard_key.compare]): the estimate loops accumulate floats in
   scan order, and the canonical order is the same no matter which
   hashtable the entries came out of or how the table was partitioned —
   a K-shard merge therefore yields the same layout (and the same printed
   %.17g digits) as the monolithic draw. Shards own contiguous hash
   ranges, so the global layout is the concatenation of the per-shard
   layouts. *)
let side_of_sample (sample : Sample.t) =
  let n = Value.Tbl.length sample.Sample.entries in
  let bindings = Shard_key.sorted_bindings sample.Sample.entries in
  let values = Array.make n Value.Null in
  let row_off = Array.make (n + 1) 0 in
  let sentry = Array.make n (-1) in
  let p_v = Array.make n 0.0 in
  let q_v = Array.make n 0.0 in
  let total_rows =
    List.fold_left
      (fun acc (_, (e : Sample.entry)) -> acc + Array.length e.Sample.rows)
      0 bindings
  in
  let rows =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout total_rows
  in
  let i = ref 0 and off = ref 0 in
  List.iter
    (fun (v, (e : Sample.entry)) ->
      values.(!i) <- v;
      row_off.(!i) <- !off;
      (match e.Sample.sentry_row with
      | Some r -> sentry.(!i) <- r
      | None -> ());
      p_v.(!i) <- e.Sample.p_v;
      q_v.(!i) <- e.Sample.q_v;
      Array.iter
        (fun r ->
          Bigarray.Array1.unsafe_set rows !off r;
          incr off)
        e.Sample.rows;
      incr i)
    bindings;
  row_off.(n) <- !off;
  (* Sentry tuples are materialized after the non-sentry rows; record each
     value's sentry position so the predicate scan can reach it through
     the same columns. *)
  let sentry_pos = Array.make n (-1) in
  let n_sentries = ref 0 in
  for i = 0 to n - 1 do
    if sentry.(i) >= 0 then begin
      sentry_pos.(i) <- total_rows + !n_sentries;
      incr n_sentries
    end
  done;
  (* Gather the sampled tuples column-major. Boxed first; a column whose
     sampled values are all Int (resp. all Float) is then unboxed into a
     Bigarray so the scan reads immediates off contiguous memory. *)
  let table = sample.Sample.table in
  let arity = Schema.arity (Table.schema table) in
  let n_positions = total_rows + !n_sentries in
  let boxed = Array.init arity (fun _ -> Array.make n_positions Value.Null) in
  let fill pos row_index =
    let row = Table.row table row_index in
    for c = 0 to arity - 1 do
      (boxed.(c)).(pos) <- row.(c)
    done
  in
  for j = 0 to total_rows - 1 do
    fill j (Bigarray.Array1.unsafe_get rows j)
  done;
  for i = 0 to n - 1 do
    if sentry_pos.(i) >= 0 then fill sentry_pos.(i) sentry.(i)
  done;
  let unbox (col : Value.t array) =
    let all p = Array.for_all p col in
    if n_positions > 0 && all (function Value.Int _ -> true | _ -> false)
    then begin
      let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n_positions in
      Array.iteri
        (fun j v -> a.{j} <- Option.value (Value.as_int v) ~default:0)
        col;
      Ints a
    end
    else if
      n_positions > 0 && all (function Value.Float _ -> true | _ -> false)
    then begin
      let a =
        Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n_positions
      in
      Array.iteri
        (fun j v -> a.{j} <- Option.value (Value.as_float v) ~default:0.0)
        col;
      Floats a
    end
    else Boxed col
  in
  {
    table;
    column = sample.Sample.column;
    values;
    row_off;
    sentry;
    sentry_pos;
    cols = Array.map unbox boxed;
    p_v;
    q_v;
    rows;
  }

(* ---------------- structural validation ---------------- *)

(* Same checks, same wording as the historical per-query
   [Estimate.validate_synopsis]; "first faulty entry" is first in the
   canonical value order. *)

let validations = Atomic.make 0
let validation_runs () = Atomic.get validations

let validate_side label (s : side) =
  let n = Array.length s.values in
  let fault = ref None in
  let i = ref 0 in
  while !fault = None && !i < n do
    let p = s.p_v.(!i) and q = s.q_v.(!i) in
    if not (Float.is_finite p) || p <= 0.0 then
      fault :=
        Some (Fault.Numeric { what = label ^ " sampling rate p_v"; value = p })
    else if not (Float.is_finite q) || q <= 0.0 then
      fault :=
        Some (Fault.Numeric { what = label ^ " sampling rate q_v"; value = q });
    incr i
  done;
  !fault

let validate (syn : Synopsis.t) ~a ~b ~b_to_a =
  Atomic.incr validations;
  let n_prime = syn.Synopsis.n_prime in
  if not (Float.is_finite n_prime) || n_prime < 0.0 then
    Some (Fault.Numeric { what = "synopsis N'"; value = n_prime })
  else if syn.Synopsis.sample_a.Sample.tuple_count < 0 then
    Some (Fault.Corrupt_synopsis "negative tuple count on side A")
  else if syn.Synopsis.sample_b.Sample.tuple_count < 0 then
    Some (Fault.Corrupt_synopsis "negative tuple count on side B")
  else if Array.exists (fun j -> j < 0) b_to_a then
    Some
      (Fault.Corrupt_synopsis
         "semijoin side references a value absent from the first side")
  else
    match validate_side "side A" a with
    | Some f -> Some f
    | None -> validate_side "side B" b

(* ---------------- construction ---------------- *)

let assemble (syn : Synopsis.t) ~a ~b =
  (* Positions of the A values under the {e hashtable's} equality, so a
     dangling B value here is dangling in exactly the cases the
     hashtable-walking estimator considered it dangling. *)
  let a_index = Value.Tbl.create (2 * Array.length a.values) in
  Array.iteri (fun i v -> Value.Tbl.replace a_index v i) a.values;
  let b_to_a =
    Array.map
      (fun v ->
        match Value.Tbl.find_opt a_index v with Some i -> i | None -> -1)
      b.values
  in
  let sorted_a = Array.init (Array.length a.values) Fun.id in
  Array.sort
    (fun i j ->
      let c = Value.compare a.values.(i) a.values.(j) in
      if c <> 0 then c else Int.compare i j)
    sorted_a;
  let verdict = validate syn ~a ~b ~b_to_a in
  { syn; a; b; b_to_a; sorted_a; verdict }

let of_synopsis (syn : Synopsis.t) =
  assemble syn
    ~a:(side_of_sample syn.Synopsis.sample_a)
    ~b:(side_of_sample syn.Synopsis.sample_b)

(* ---------------- shard concatenation ---------------- *)

(* Because values are laid out in canonical hash order and shards own
   contiguous hash ranges, the global side is the concatenation of the
   per-shard sides: values / rates / offsets segment-wise, the row region
   shard-major, then the sentry region shard-major — exactly the layout
   [side_of_sample] produces for the union sample. Only the position
   bookkeeping is recomputed; the materialized column segments are reused
   (possibly re-boxed when shards disagree on a column's uniform kind). *)
let concat_sides (sides : side array) =
  if Array.length sides = 0 then
    invalid_arg "Synopsis_flat.concat_sides: no sides";
  if Array.length sides = 1 then sides.(0)
  else begin
    let n_rows s = Bigarray.Array1.dim s.rows in
    let n_sentries s =
      Array.fold_left (fun acc p -> if p >= 0 then acc + 1 else acc) 0
        s.sentry_pos
    in
    let n = Array.fold_left (fun acc s -> acc + Array.length s.values) 0 sides in
    let total_rows = Array.fold_left (fun acc s -> acc + n_rows s) 0 sides in
    let total_sentries =
      Array.fold_left (fun acc s -> acc + n_sentries s) 0 sides
    in
    let values = Array.make n Value.Null in
    let row_off = Array.make (n + 1) 0 in
    let sentry = Array.make n (-1) in
    let sentry_pos = Array.make n (-1) in
    let p_v = Array.make n 0.0 in
    let q_v = Array.make n 0.0 in
    let rows =
      Bigarray.Array1.create Bigarray.int Bigarray.c_layout total_rows
    in
    let voff = ref 0 and roff = ref 0 and soff = ref 0 in
    Array.iter
      (fun s ->
        let ns = Array.length s.values in
        Array.blit s.values 0 values !voff ns;
        Array.blit s.sentry 0 sentry !voff ns;
        Array.blit s.p_v 0 p_v !voff ns;
        Array.blit s.q_v 0 q_v !voff ns;
        for i = 0 to ns - 1 do
          row_off.(!voff + i) <- !roff + s.row_off.(i);
          if s.sentry_pos.(i) >= 0 then begin
            sentry_pos.(!voff + i) <- total_rows + !soff;
            incr soff
          end
        done;
        let nr = n_rows s in
        if nr > 0 then
          Bigarray.Array1.blit s.rows (Bigarray.Array1.sub rows !roff nr);
        voff := !voff + ns;
        roff := !roff + nr)
      sides;
    row_off.(n) <- total_rows;
    (* Columns: a shard's segment is positionally [rows; sentries], the
       global column interleaves them by region, so copy the two parts of
       every segment to their regional offsets. The global kind is uniform
       only when every non-empty segment agrees (matching what
       [side_of_sample] would have unboxed on the union). *)
    let n_positions = total_rows + total_sentries in
    let arity = Array.length sides.(0).cols in
    let concat_col c =
      let segment s = s.cols.(c) in
      let seg_positions s = n_rows s + n_sentries s in
      let live = Array.to_list sides |> List.filter (fun s -> seg_positions s > 0) in
      let kind_all p = List.for_all (fun s -> p (segment s)) live in
      let copy set =
        let roff = ref 0 and soff = ref total_rows in
        Array.iter
          (fun s ->
            let nr = n_rows s and np = seg_positions s in
            for j = 0 to nr - 1 do
              set (!roff + j) s j
            done;
            for j = nr to np - 1 do
              set (!soff + (j - nr)) s j
            done;
            roff := !roff + nr;
            soff := !soff + (np - nr))
          sides
      in
      if n_positions = 0 then Boxed [||]
      else if kind_all (function Ints _ -> true | _ -> false) then begin
        let a =
          Bigarray.Array1.create Bigarray.int Bigarray.c_layout n_positions
        in
        (* [copy] only applies [set] to positions of non-empty segments,
           and a non-empty segment of another kind would have failed
           [kind_all] — the fall-through writes nothing *)
        copy (fun pos s j ->
            match segment s with
            | Ints seg -> a.{pos} <- seg.{j}
            | Floats _ | Boxed _ -> ());
        Ints a
      end
      else if kind_all (function Floats _ -> true | _ -> false) then begin
        let a =
          Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n_positions
        in
        copy (fun pos s j ->
            match segment s with
            | Floats seg -> a.{pos} <- seg.{j}
            | Ints _ | Boxed _ -> ());
        Floats a
      end
      else begin
        let a = Array.make n_positions Value.Null in
        copy (fun pos s j ->
            a.(pos) <-
              (match segment s with
              | Boxed seg -> seg.(j)
              | Ints seg -> Value.Int seg.{j}
              | Floats seg -> Value.Float seg.{j}));
        Boxed a
      end
    in
    {
      table = sides.(0).table;
      column = sides.(0).column;
      values;
      row_off;
      rows;
      sentry;
      sentry_pos;
      cols = Array.init arity concat_col;
      p_v;
      q_v;
    }
  end

let find_a t v =
  let a = t.a and sorted = t.sorted_a in
  let lo = ref 0 and hi = ref (Array.length sorted) in
  let found = ref None in
  while !found = None && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let i = sorted.(mid) in
    let c = Value.compare v a.values.(i) in
    if c = 0 then found := Some i
    else if c < 0 then hi := mid
    else lo := mid + 1
  done;
  !found
