type side = A | B

type error =
  | Lp_infeasible
  | Lp_unbounded
  | Lp_iteration_cap
  | Numeric of { what : string; value : float }
  | Empty_filtered_sample of side
  | Corrupt_synopsis of string
  | Bad_input of string
  | Store_mismatch of { what : string; detail : string }
  | Timeout of { what : string; budget_s : float }
  | Drift of { key : string; worsened : float; limit : float }

type degradation = { rung : string; fault : error }

type trace = degradation list

let side_to_string = function A -> "A" | B -> "B"

let error_to_string = function
  | Lp_infeasible -> "LP infeasible"
  | Lp_unbounded -> "LP unbounded"
  | Lp_iteration_cap -> "LP iteration cap exhausted"
  | Numeric { what; value } -> Printf.sprintf "non-finite %s (%h)" what value
  | Empty_filtered_sample side ->
      Printf.sprintf "empty filtered sample on side %s" (side_to_string side)
  | Corrupt_synopsis reason -> "corrupt synopsis: " ^ reason
  | Bad_input reason -> "bad input: " ^ reason
  | Store_mismatch { what; detail } ->
      Printf.sprintf "synopsis store %s mismatch: %s" what detail
  | Timeout { what; budget_s } ->
      Printf.sprintf "%s exceeded its %.3fs deadline" what budget_s
  | Drift { key; worsened; limit } ->
      Printf.sprintf
        "accuracy drift on %s: sentinel q-error worsened %.3gx past the %.3gx \
         limit"
        key worsened limit

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let of_l1_error (e : Repro_lp.L1_fit.error) =
  match e with
  | Repro_lp.L1_fit.Infeasible -> Lp_infeasible
  | Repro_lp.L1_fit.Unbounded -> Lp_unbounded
  | Repro_lp.L1_fit.Aborted reason ->
      (* The simplex aborts defensively for two reasons: fuel exhaustion
         and non-finite tableau entries. *)
      if contains_substring reason "iteration cap" then Lp_iteration_cap
      else Numeric { what = "LP tableau (" ^ reason ^ ")"; value = Float.nan }

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

(* Stable machine-readable variant names, used as the [fault] label on the
   [estimate.downgrade] counter (docs/observability.md). *)
let variant_label = function
  | Lp_infeasible -> "lp_infeasible"
  | Lp_unbounded -> "lp_unbounded"
  | Lp_iteration_cap -> "lp_iteration_cap"
  | Numeric _ -> "numeric"
  | Empty_filtered_sample _ -> "empty_filtered_sample"
  | Corrupt_synopsis _ -> "corrupt_synopsis"
  | Bad_input _ -> "bad_input"
  | Store_mismatch _ -> "store_mismatch"
  | Timeout _ -> "timeout"
  | Drift _ -> "drift"

let degradation_to_string { rung; fault } =
  Printf.sprintf "%s failed: %s" rung (error_to_string fault)

let pp_trace fmt trace =
  match trace with
  | [] -> Format.pp_print_string fmt "no degradation"
  | steps ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.fprintf fmt "@ -> ")
        (fun fmt d -> Format.pp_print_string fmt (degradation_to_string d))
        fmt steps

let trace_to_string trace = Format.asprintf "@[<h>%a@]" pp_trace trace
