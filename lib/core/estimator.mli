(** Top-level API: prepare a correlated-sampling estimator for a join
    graph, draw offline synopses, and answer online estimation queries.

    Orientation: the caller describes the join as [(A, col_a)] joined with
    [(B, col_b)] and always passes predicates in that orientation. The
    estimator may internally sample the other table first — mandatory for
    PK-FK joins, where the FK table must be sampled first and the discrete
    learning applied to it (Section IV-F) — and maps predicates
    accordingly. *)

open Repro_relation

type sample_first =
  [ `A  (** always sample the A side first *)
  | `B  (** always sample the B side first *)
  | `Fk_side
    (** sample the foreign-key side first when the join is PK-FK (exactly
        one side's join column is unique); otherwise sample A first. This
        is the paper's rule and the default. *) ]

type t

val prepare :
  ?sample_first:sample_first -> Spec.t -> theta:float -> Profile.t -> t
(** Resolve the spec's sampling rates for this join under budget
    [theta * (|A| + |B|)]. This is deterministic; all randomness is in
    {!draw}. *)

val draw : ?obs:Repro_obs.Obs.ctx -> t -> Repro_util.Prng.t -> Synopsis.t
(** One offline sampling run. A live [obs] context records sampling spans
    and counters (see {!Synopsis.draw}) without touching the PRNG. *)

val estimate :
  ?obs:Repro_obs.Obs.ctx ->
  ?dl_config:Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  t ->
  Synopsis.t ->
  float
(** Online phase: estimated size of [sigma_a(A) |><| sigma_b(B)]. *)

val estimate_once :
  ?obs:Repro_obs.Obs.ctx ->
  ?dl_config:Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  t ->
  Repro_util.Prng.t ->
  float
(** Convenience: {!draw} then {!estimate} in one call. *)

val estimate_checked :
  ?obs:Repro_obs.Obs.ctx ->
  ?dl_config:Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  t ->
  Synopsis.t ->
  (Estimate.breakdown, Fault.error) result
(** {!estimate} through {!Estimate.run_checked}: predicates are mapped to
    the sampler's orientation, and every failure mode comes back as a
    typed error instead of a raise or a silent degenerate number. *)

type guarded = {
  value : float;  (** finite, clamped to [0, |A| * |B|] *)
  rung : string;  (** the cascade rung that produced [value] *)
  trace : Fault.trace;  (** downgrades on the way there; [] = no fault *)
  clamped : bool;  (** [value] was pulled back into range *)
}

val independence_prior : Profile.t -> unit -> float
(** The sampling-free System-R independence prior
    [|A| * |B| / max(d_A, d_B)] — the default final cascade rung. *)

val scaling_spec : Spec.t
(** The cascade's LP-free rung: sentry-backed simple scaling with constant
    rates (p = theta, q = 1). *)

val estimate_guarded :
  ?obs:Repro_obs.Obs.ctx ->
  ?dl_config:Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  ?sample_first:sample_first ->
  ?draw:(t -> Repro_util.Prng.t -> Synopsis.t) ->
  ?fallback:string * (unit -> float) ->
  theta:float ->
  Profile.t ->
  Repro_util.Prng.t ->
  (guarded, Fault.error) result
(** Fault-tolerant estimation: run the degradation cascade
    CSDL(theta,diff) -> CSDL(1,diff) -> simple scaling -> [fallback]
    (default {!independence_prior}), downgrading one rung whenever the
    current one returns a typed error, raises, or yields a non-finite or
    negative estimate. Each downgrade is recorded in the trace; the final
    answer is clamped to [0, |A| * |B|]. [draw] overrides synopsis drawing
    (the fault-injection harness corrupts synopses through it); [fallback]
    is [(rung_name, thunk)] — lib/robustness wires the sampling
    independence baseline here. The only [Error _] is
    [Bad_input] for a theta outside (0, 1]; anything downstream degrades
    instead of escaping, so callers always get a finite non-negative
    number plus an honest account of how it was obtained.

    A live [obs] context wraps the cascade in an [estimate.guarded] span
    and counts each downgrade ([estimate.downgrade{fault}] and
    [estimate.downgrades.total] — always equal to the trace length), the
    answering rung ([estimate.rung{rung}]) and clamping events
    ([estimate.clamped]). When [draw] is not overridden, the default draw
    inherits [obs]. *)

val swapped : t -> bool
(** Whether the sampler operates on the (B, A) orientation. *)

val spec : t -> Spec.t
val resolved : t -> Budget.t
val profile : t -> Profile.t
(** The profile in the {e sampler's} orientation. *)
