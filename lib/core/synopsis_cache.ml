module Obs = Repro_obs.Obs

type key = {
  fp_a : int64;
  fp_b : int64;
  variant : string;
  theta : float;
  prng_key : string;
}

type 'a slot = { value : 'a; mutable stamp : int }

type 'a t = {
  capacity : int;
  slots : (key, 'a slot) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  obs : Obs.ctx;
}

let create ?(obs = Obs.null) ~capacity () =
  if capacity <= 0 then
    invalid_arg "Synopsis_cache.create: capacity must be positive";
  (* pre-declare the counters so a snapshot shows them even before any
     lookup *)
  Obs.count obs "synopsis_cache.hits" 0;
  Obs.count obs "synopsis_cache.misses" 0;
  Obs.count obs "synopsis_cache.evictions" 0;
  {
    capacity;
    slots = Hashtbl.create (2 * capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    obs;
  }

let length t = Hashtbl.length t.slots
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

type stats = { s_hits : int; s_misses : int; s_evictions : int; s_size : int }

let stats t =
  {
    s_hits = t.hits;
    s_misses = t.misses;
    s_evictions = t.evictions;
    s_size = Hashtbl.length t.slots;
  }

let touch t slot =
  t.tick <- t.tick + 1;
  slot.stamp <- t.tick

let find t key =
  match Hashtbl.find_opt t.slots key with
  | Some slot ->
      t.hits <- t.hits + 1;
      Obs.count t.obs "synopsis_cache.hits" 1;
      touch t slot;
      Some slot.value
  | None ->
      t.misses <- t.misses + 1;
      Obs.count t.obs "synopsis_cache.misses" 1;
      None

(* Least-recently-used eviction by scanning for the smallest stamp. Linear
   in the cache size, which is bounded by [capacity] — fine for the
   handful-of-synopses caches this serves; revisit with an intrusive list
   if capacities ever reach the thousands. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key slot ->
      match !victim with
      | Some (_, best) when best.stamp <= slot.stamp -> ()
      | _ -> victim := Some (key, slot))
    t.slots;
  match !victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.slots key;
      t.evictions <- t.evictions + 1;
      Obs.count t.obs "synopsis_cache.evictions" 1

let insert t key value =
  (match Hashtbl.find_opt t.slots key with
  | Some _ -> Hashtbl.remove t.slots key
  | None -> if Hashtbl.length t.slots >= t.capacity then evict_lru t);
  t.tick <- t.tick + 1;
  Hashtbl.replace t.slots key { value; stamp = t.tick };
  Obs.set_gauge t.obs "synopsis_cache.size" (float_of_int (length t))

let find_or_build t key build =
  match find t key with
  | Some value -> value
  | None ->
      let value = build () in
      insert t key value;
      value
