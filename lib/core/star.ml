open Repro_relation

type dimension = { table : Table.t; pk : string; fk : string }
type tables = { fact : Table.t; dimensions : dimension list }

type t = {
  spec : Spec.t;
  tables : tables;
  profile : Profile.t;  (* fact on the anchor FK vs. anchor dimension PK *)
  resolved : Budget.t;
  dim_groups : (int * int array Value.Tbl.t) list;
      (* per dimension: (fk column index in fact, pk row groups) *)
}

type synopsis = {
  sample_f : Sample.t;
  n0 : float;
  prepared : t;
}

let anchor tables =
  match tables.dimensions with
  | [] -> invalid_arg "Star: at least one dimension required"
  | d :: _ -> d

let prepare spec ~theta tables =
  let a = anchor tables in
  let profile = Profile.of_tables tables.fact a.fk a.table a.pk in
  let profile =
    {
      profile with
      Profile.total_rows =
        List.fold_left
          (fun acc d -> acc + Table.cardinality d.table)
          (Table.cardinality tables.fact)
          tables.dimensions;
    }
  in
  let resolved = Budget.resolve spec ~theta profile in
  let dim_groups =
    List.map
      (fun d ->
        (Table.column_index tables.fact d.fk, Table.group_by d.table d.pk))
      tables.dimensions
  in
  { spec; tables; profile; resolved; dim_groups }

let prepare_opt ?threshold ~theta tables =
  let a = anchor tables in
  let jvd = Join.jvd tables.fact a.fk a.table a.pk in
  prepare (Opt.spec_for ?threshold ~jvd ()) ~theta tables

let draw t prng =
  let sample_f = Sample.first_side ~base:(Synopsis.base_of_prng prng) ~profile:t.profile
      ~resolved:t.resolved () in
  let n0 = ref 0.0 in
  Value.Tbl.iter
    (fun v (_ : Sample.entry) ->
      n0 := !n0 +. float_of_int (Profile.frequency t.profile.Profile.a v))
    sample_f.Sample.entries;
  { sample_f; n0 = !n0; prepared = t }

let compile_opt table = function
  | Predicate.True -> fun (_ : Value.t array) -> true
  | p -> Predicate.compile p (Table.schema table)

let pad_predicates dims preds =
  let rec pad dims preds =
    match (dims, preds) with
    | [], _ -> []
    | _ :: rest_d, [] -> Predicate.True :: pad rest_d []
    | _ :: rest_d, p :: rest_p -> p :: pad rest_d rest_p
  in
  pad dims preds

let estimate ?dl_config ?(pred_fact = Predicate.True) ?(pred_dims = []) t
    synopsis =
  let pass_fact = compile_opt t.tables.fact pred_fact in
  let dim_preds = pad_predicates t.tables.dimensions pred_dims in
  let dim_checks =
    List.map2
      (fun d p ->
        let pass = compile_opt d.table p in
        fun (groups : int array Value.Tbl.t) fk_value ->
          match fk_value with
          | Value.Null -> false
          | v -> (
              match Value.Tbl.find_opt groups v with
              | None -> false
              | Some rows ->
                  Array.exists (fun r -> pass (Table.row d.table r)) rows))
      t.tables.dimensions dim_preds
  in
  let checks = List.map2 (fun (i, g) check -> (i, g, check)) t.dim_groups dim_checks in
  let anchor_check, other_checks =
    match checks with
    | [] -> assert false
    | anchor :: rest -> (anchor, rest)
  in
  let sample_f = synopsis.sample_f in
  let total_tuples = Sample.total_tuples sample_f in
  if total_tuples = 0 then 0.0
  else begin
    let base_q = t.resolved.Budget.base_q in
    (* Per anchor value: filtered fact count/sentry, the survivor counts
       (non-anchor dimensions all match), and DL virtual counts. *)
    let stats = Value.Tbl.create (Value.Tbl.length sample_f.Sample.entries) in
    let filtered_tuples = ref 0 in
    let virtual_counts = ref [] in
    let row_survives row =
      List.for_all
        (fun (i, groups, check) -> check groups row.(i))
        other_checks
    in
    Value.Tbl.iter
      (fun v (entry : Sample.entry) ->
        let passing = ref 0 and surviving = ref 0 in
        let consider row_index =
          let row = Table.row sample_f.Sample.table row_index in
          if pass_fact row then begin
            incr passing;
            if row_survives row then incr surviving
          end
        in
        Array.iter consider entry.Sample.rows;
        let sentry_passing = ref false and sentry_surviving = ref false in
        (match entry.Sample.sentry_row with
        | None -> ()
        | Some row_index ->
            let row = Table.row sample_f.Sample.table row_index in
            if pass_fact row then begin
              sentry_passing := true;
              if row_survives row then sentry_surviving := true
            end);
        Value.Tbl.add stats v
          (!passing, !surviving, !sentry_passing, !sentry_surviving);
        filtered_tuples :=
          !filtered_tuples + !passing + (if !sentry_passing then 1 else 0);
        if !passing > 0 && entry.Sample.q_v > 0.0 then begin
          let virtual_count =
            float_of_int !passing *. base_q /. entry.Sample.q_v
          in
          if virtual_count > 0.0 then
            virtual_counts := virtual_count :: !virtual_counts
        end)
      sample_f.Sample.entries;
    let selectivity =
      float_of_int !filtered_tuples /. float_of_int total_tuples
    in
    (* Virtual-sample population: the sentries sit outside the second-level
       draw (see Estimate.dl_estimate) and must not be scaled by x_v. *)
    let n0_virtual =
      if t.spec.Spec.sentry then
        Float.max 0.0
          (synopsis.n0 -. float_of_int (Sample.sentry_count sample_f))
      else synopsis.n0
    in
    let n_filtered = n0_virtual *. selectivity in
    let learned =
      match t.spec.Spec.method_ with
      | Spec.Discrete_learning ->
          Some
            (Discrete_learning.learn ?config:dl_config
               (Array.of_list !virtual_counts))
      | Spec.Scaling -> None
    in
    let sentry_spec = t.spec.Spec.sentry in
    let anchor_i, anchor_groups, anchor_pass = anchor_check in
    ignore anchor_i;
    let total = ref 0.0 in
    Value.Tbl.iter
      (fun v (entry : Sample.entry) ->
        let passing, surviving, sentry_passing, sentry_surviving =
          Value.Tbl.find stats v
        in
        let evidence = passing + if sentry_passing then 1 else 0 in
        if evidence > 0 && anchor_pass anchor_groups v then begin
          let fact_factor =
            match learned with
            | Some learned ->
                let x_v =
                  if passing = 0 || entry.Sample.q_v <= 0.0 then 0.0
                  else
                    Discrete_learning.probability_of_count learned
                      (float_of_int passing *. base_q /. entry.Sample.q_v)
                in
                (x_v *. n_filtered)
                +. if sentry_spec && sentry_passing then 1.0 else 0.0
            | None ->
                let scaled =
                  if passing = 0 then 0.0
                  else float_of_int passing /. entry.Sample.q_v
                in
                scaled +. if sentry_spec && sentry_passing then 1.0 else 0.0
          in
          let survivors = surviving + if sentry_surviving then 1 else 0 in
          let rho = float_of_int survivors /. float_of_int evidence in
          let term = fact_factor *. rho /. entry.Sample.p_v in
          if term > 0.0 then total := !total +. term
        end)
      sample_f.Sample.entries;
    !total
  end

let true_size ?(pred_fact = Predicate.True) ?(pred_dims = []) tables =
  let dim_preds = pad_predicates tables.dimensions pred_dims in
  Join.star_count ~fact:tables.fact ~fact_predicate:pred_fact
    ~dimensions:
      (List.map2
         (fun d p -> (d.fk, Join.filtered d.table d.pk p))
         tables.dimensions dim_preds)

let spec t = t.spec

let synopsis_tuples synopsis =
  (* fact tuples plus at most one dimension tuple per (dimension, value)
     referenced by the sample; we count the fact tuples and the anchor
     sentries, which dominates *)
  Sample.total_tuples synopsis.sample_f
