open Repro_relation

type entry = {
  table_a : string;
  table_b : string;
  swapped : bool;
  fingerprint_a : int64;
  fingerprint_b : int64;
  prng_key : string;
  shards : int;
  sentinels : Sentinel.t list;
  synopsis : Synopsis.t;
  flat : Synopsis_flat.t;
      (* frozen once at registration/load; every estimate reuses it *)
}

type t = (string, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

let add ?(prng_key = "") ?(shards = 1) store ~key ~table_a ~table_b estimator
    synopsis =
  if shards < 1 then invalid_arg "Store.add: shards must be >= 1";
  let swapped = Estimator.swapped estimator in
  let profile = Estimator.profile estimator in
  (* the estimator's profile is in sampler orientation: its A side sits on
     [table_b]'s data when the estimator swapped *)
  let fp_first = Table.fingerprint profile.Profile.a.Profile.table in
  let fp_second = Table.fingerprint profile.Profile.b.Profile.table in
  let fingerprint_a, fingerprint_b =
    if swapped then (fp_second, fp_first) else (fp_first, fp_second)
  in
  let flat = Synopsis_flat.of_synopsis synopsis in
  (* sentinels are seeded in user-facing orientation so the store entry
     carries queries phrased the way clients phrase them; baselines are
     the fresh synopsis's own q-errors, the reference drift is measured
     against *)
  let sentinels =
    Sentinel.seed (if swapped then Profile.swap profile else profile)
    |> Sentinel.with_baselines flat ~swapped
  in
  Hashtbl.replace store key
    {
      table_a;
      table_b;
      swapped;
      fingerprint_a;
      fingerprint_b;
      prng_key;
      shards;
      sentinels;
      synopsis;
      flat;
    }

let keys store = Hashtbl.fold (fun k _ acc -> k :: acc) store [] |> List.sort compare
let mem store key = Hashtbl.mem store key
let remove store key = Hashtbl.remove store key

let sentinels store key =
  match Hashtbl.find_opt store key with
  | Some entry -> entry.sentinels
  | None -> []

type info = {
  i_table_a : string;
  i_table_b : string;
  i_swapped : bool;
  i_theta : float;
  i_variant : string;
  i_prng_key : string;
  i_shards : int;
  i_tuples : int;
  i_fingerprint_a : int64;
  i_fingerprint_b : int64;
}

let info store key =
  Option.map
    (fun entry ->
      {
        i_table_a = entry.table_a;
        i_table_b = entry.table_b;
        i_swapped = entry.swapped;
        i_theta = entry.synopsis.Synopsis.resolved.Budget.theta;
        i_variant =
          Spec.to_string entry.synopsis.Synopsis.resolved.Budget.spec;
        i_prng_key = entry.prng_key;
        i_shards = entry.shards;
        i_tuples = Synopsis.size_tuples entry.synopsis;
        i_fingerprint_a = entry.fingerprint_a;
        i_fingerprint_b = entry.fingerprint_b;
      })
    (Hashtbl.find_opt store key)

let estimate ?obs ?dl_config ?(pred_a = Predicate.True)
    ?(pred_b = Predicate.True) store ~key =
  let entry = Hashtbl.find store key in
  let pred_a, pred_b =
    if entry.swapped then (pred_b, pred_a) else (pred_a, pred_b)
  in
  Estimate.run_flat ?obs ?dl_config ~pred_a ~pred_b entry.flat

let total_tuples store =
  Hashtbl.fold
    (fun _ entry acc -> acc + Synopsis.size_tuples entry.synopsis)
    store 0

(* ---------------- persistence (via Synopsis_store) ---------------- *)

let save store path =
  let entries =
    Hashtbl.fold
      (fun key entry acc ->
        {
          Synopsis_store.key;
          table_a = entry.table_a;
          table_b = entry.table_b;
          swapped = entry.swapped;
          fingerprint_a = entry.fingerprint_a;
          fingerprint_b = entry.fingerprint_b;
          prng_key = entry.prng_key;
          shards = entry.shards;
          sentinels = entry.sentinels;
          synopsis = entry.synopsis;
        }
        :: acc)
      store []
    (* deterministic file bytes regardless of registration order *)
    |> List.sort (fun (a : Synopsis_store.stored) b -> compare a.key b.key)
  in
  Synopsis_store.write ~path entries

let load_result ~resolve_table path =
  Result.map
    (fun entries ->
      let store = create () in
      List.iter
        (fun (s : Synopsis_store.stored) ->
          Hashtbl.replace store s.Synopsis_store.key
            {
              table_a = s.Synopsis_store.table_a;
              table_b = s.Synopsis_store.table_b;
              swapped = s.Synopsis_store.swapped;
              fingerprint_a = s.Synopsis_store.fingerprint_a;
              fingerprint_b = s.Synopsis_store.fingerprint_b;
              prng_key = s.Synopsis_store.prng_key;
              shards = s.Synopsis_store.shards;
              sentinels = s.Synopsis_store.sentinels;
              synopsis = s.Synopsis_store.synopsis;
              flat = Synopsis_flat.of_synopsis s.Synopsis_store.synopsis;
            })
        entries;
      store)
    (Synopsis_store.read ~resolve_table ~path)

let load ~resolve_table path =
  match load_result ~resolve_table path with
  | Ok store -> store
  | Error fault -> failwith (path ^ ": " ^ Fault.error_to_string fault)
