open Repro_relation
module Obs = Repro_obs.Obs
module Pool = Repro_util.Pool

(* A synopsis held as K deterministic partitions of the join-value space.

   Shards are contiguous ranges of the canonical 64-bit value-hash space
   (Shard_key): the canonical global value order is then the concatenation
   of the per-shard orders for EVERY shard count simultaneously, and every
   per-value draw runs on its own keyed PRNG sub-stream (Sample.stream_a/b
   derived from the build's 64-bit base). Together these make the merged
   synopsis — and its flat columnar view — bit-identical to the
   monolithic single-shard draw, regardless of K, of which domain drew
   which shard, and of how many deltas have been applied since. *)

type shard = {
  entries_a : Sample.entry Value.Tbl.t;
  entries_b : Sample.entry Value.Tbl.t;
  mutable flat : (Synopsis_flat.side * Synopsis_flat.side) option;
      (* cached flat slice; [None] when the shard's sample changed since
         it was last frozen *)
}

type t = {
  base : int64;
  shards : shard array;
  mutable profile : Profile.t;
  mutable resolved : Budget.t;
}

type side_delta = { inserts : Value.t array array; deletes : int array }
type delta = { a : side_delta; b : side_delta }

let no_delta = { inserts = [||]; deletes = [||] }
let shard_count t = Array.length t.shards
let profile t = t.profile
let resolved t = t.resolved
let base t = t.base

let entry_size (e : Sample.entry) =
  Array.length e.Sample.rows
  + match e.Sample.sentry_row with Some _ -> 1 | None -> 0

let shard_tuple_counts t =
  Array.map
    (fun sh ->
      let count tbl =
        Value.Tbl.fold (fun _ e acc -> acc + entry_size e) tbl 0
      in
      count sh.entries_a + count sh.entries_b)
    t.shards

(* ---------------- construction ---------------- *)

let empty_shards k =
  Array.init k (fun _ ->
      {
        entries_a = Value.Tbl.create 64;
        entries_b = Value.Tbl.create 64;
        flat = None;
      })

let build ?obs ?jobs ~base ~profile ~resolved ~shards () =
  if shards < 1 then invalid_arg "Synopsis_shard.build: shards must be >= 1";
  (* Each shard draws only its own hash range, on the same global budget
     and the same sub-stream base — per-value streams make the restricted
     draws independent, so they may run on any pool domain in any order. *)
  let subs =
    Pool.map_array ?obs ?jobs
      (fun k ->
        Synopsis.draw_base ?obs
          ~select:(fun v -> Shard_key.shard_of ~shards v = k)
          ~base ~profile ~resolved ())
      (Array.init shards Fun.id)
  in
  {
    base;
    profile;
    resolved;
    shards =
      Array.map
        (fun (syn : Synopsis.t) ->
          {
            entries_a = syn.Synopsis.sample_a.Sample.entries;
            entries_b = syn.Synopsis.sample_b.Sample.entries;
            flat = None;
          })
        subs;
  }

let of_synopsis ~base ~profile ~shards (syn : Synopsis.t) =
  if shards < 1 then
    invalid_arg "Synopsis_shard.of_synopsis: shards must be >= 1";
  let t =
    { base; profile; resolved = syn.Synopsis.resolved; shards = empty_shards shards }
  in
  let route proj sample =
    Value.Tbl.iter
      (fun v e ->
        Value.Tbl.replace (proj t.shards.(Shard_key.shard_of ~shards v)) v e)
      sample.Sample.entries
  in
  route (fun sh -> sh.entries_a) syn.Synopsis.sample_a;
  route (fun sh -> sh.entries_b) syn.Synopsis.sample_b;
  t

(* ---------------- merge ---------------- *)

let sample_of_entries (side : Profile.side) entries =
  let tuple_count = ref 0 and sentries = ref 0 in
  Value.Tbl.iter
    (fun _ (e : Sample.entry) ->
      tuple_count := !tuple_count + entry_size e;
      if e.Sample.sentry_row <> None then incr sentries)
    entries;
  {
    Sample.table = side.Profile.table;
    column = side.Profile.column;
    entries;
    tuple_count = !tuple_count;
    sentries = !sentries;
  }

let union_entries t proj =
  let out = Value.Tbl.create 256 in
  Array.iter
    (fun sh -> Value.Tbl.iter (fun v e -> Value.Tbl.replace out v e) (proj sh))
    t.shards;
  out

let merge t =
  let sample_a =
    sample_of_entries t.profile.Profile.a (union_entries t (fun sh -> sh.entries_a))
  in
  let sample_b =
    sample_of_entries t.profile.Profile.b (union_entries t (fun sh -> sh.entries_b))
  in
  {
    Synopsis.resolved = t.resolved;
    sample_a;
    sample_b;
    (* integer-valued partial sums recombine exactly (see Synopsis) *)
    n_prime = Synopsis.n_prime_of ~profile:t.profile sample_a;
  }

(* ---------------- flat view ---------------- *)

let shard_sides t sh =
  match sh.flat with
  | Some sides -> sides
  | None ->
      let sides =
        ( Synopsis_flat.side_of_sample
            (sample_of_entries t.profile.Profile.a sh.entries_a),
          Synopsis_flat.side_of_sample
            (sample_of_entries t.profile.Profile.b sh.entries_b) )
      in
      sh.flat <- Some sides;
      sides

let flat t =
  let sides = Array.map (shard_sides t) t.shards in
  Synopsis_flat.assemble (merge t)
    ~a:(Synopsis_flat.concat_sides (Array.map fst sides))
    ~b:(Synopsis_flat.concat_sides (Array.map snd sides))

(* ---------------- incremental maintenance ---------------- *)

let compact ~side_name (table : Table.t) (d : side_delta) =
  let n = Table.cardinality table in
  let keep = Array.make n true in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then
        invalid_arg
          (Printf.sprintf
             "Synopsis_shard.apply_delta: side %s delete index %d out of \
              range [0, %d)"
             side_name i n);
      if not keep.(i) then
        invalid_arg
          (Printf.sprintf
             "Synopsis_shard.apply_delta: side %s duplicate delete index %d"
             side_name i);
      keep.(i) <- false)
    d.deletes;
  let survivors = n - Array.length d.deletes in
  let remap = Array.make n (-1) in
  let rows = Array.make (survivors + Array.length d.inserts) [||] in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      remap.(i) <- !j;
      rows.(!j) <- Table.row table i;
      incr j
    end
  done;
  Array.iteri (fun k r -> rows.(survivors + k) <- r) d.inserts;
  (Table.create ~validate:true (Table.schema table) rows, remap)

(* Values whose tuple group is touched by the batch (insert or delete);
   Nulls never join and never carry sample entries. *)
let touched_values (table : Table.t) column (d : side_delta) =
  let c = Table.column_index table column in
  let set = Value.Tbl.create 16 in
  let add = function Value.Null -> () | v -> Value.Tbl.replace set v () in
  Array.iter (fun i -> add (Table.row table i).(c)) d.deletes;
  Array.iter (fun row -> add row.(c)) d.inserts;
  set

let remap_entry remap (e : Sample.entry) =
  let move i =
    let j = remap.(i) in
    assert (j >= 0);
    j
  in
  {
    e with
    Sample.rows = Array.map move e.Sample.rows;
    sentry_row = Option.map move e.Sample.sentry_row;
  }

(* A clean shard's cached flat slice survives a delta untouched except for
   two details: raw row indices shift under compaction, and the [table]
   field must point at the post-delta table. Positions, rates, offsets and
   the materialized tuple columns are unchanged — no value in a clean
   shard was re-drawn, and survivors keep their relative order. *)
let remap_flat_side remap table (s : Synopsis_flat.side) =
  let rows = s.Synopsis_flat.rows in
  for j = 0 to Bigarray.Array1.dim rows - 1 do
    let i = remap.(Bigarray.Array1.unsafe_get rows j) in
    assert (i >= 0);
    Bigarray.Array1.unsafe_set rows j i
  done;
  let sentry = s.Synopsis_flat.sentry in
  Array.iteri
    (fun j i ->
      if i >= 0 then begin
        assert (remap.(i) >= 0);
        sentry.(j) <- remap.(i)
      end)
    sentry;
  { s with Synopsis_flat.table }

let apply_delta t (d : delta) =
  let old_profile = t.profile and old_resolved = t.resolved in
  let pa = old_profile.Profile.a and pb = old_profile.Profile.b in
  let table_a, remap_a = compact ~side_name:"A" pa.Profile.table d.a in
  let table_b, remap_b = compact ~side_name:"B" pb.Profile.table d.b in
  let touched_a = touched_values pa.Profile.table pa.Profile.column d.a in
  let touched_b = touched_values pb.Profile.table pb.Profile.column d.b in
  let profile =
    Profile.of_tables table_a pa.Profile.column table_b pb.Profile.column
  in
  let resolved =
    Budget.resolve old_resolved.Budget.spec ~theta:old_resolved.Budget.theta
      profile
  in
  let sentry = resolved.Budget.spec.Spec.sentry in
  let shards = Array.length t.shards in
  let dirty = Array.make shards false in
  let redrawn_a = Value.Tbl.create 64 and redrawn_b = Value.Tbl.create 64 in
  let rates res prof v =
    let p = Budget.p_of res prof v in
    let q = if p > 0.0 then Budget.q_of res prof v else 0.0 in
    (p, q)
  in
  (* Pass 1 — first side, over every value of the post-delta A side. A
     value re-draws iff the inputs of its (pure, per-value) draw changed:
     its tuple group was touched, or the budget re-resolution re-priced it.
     Re-running Sample.draw_first_value on the same keyed stream makes the
     result bit-identical to a from-scratch draw of the new table; values
     whose inputs are unchanged keep their entries (their row indices are
     remapped below) and never dirty their shard. Note that data-dependent
     rates (the Scaled/Blended variants) may legitimately re-price every
     value, in which case the "incremental" apply degrades to a full
     re-draw — still bit-identical, organized shard by shard. *)
  Value.Tbl.iter
    (fun v rows ->
      let old_p, old_q = rates old_resolved old_profile v in
      let p_v, q_v = rates resolved profile v in
      if
        Value.Tbl.mem touched_a v
        || (not (Float.equal old_p p_v))
        || not (Float.equal old_q q_v)
      then begin
        let k = Shard_key.shard_of ~shards v in
        let sh = t.shards.(k) in
        Value.Tbl.replace redrawn_a v ();
        dirty.(k) <- true;
        match Sample.draw_first_value ~base:t.base ~sentry ~rows ~p_v ~q_v v with
        | Some e -> Value.Tbl.replace sh.entries_a v e
        | None -> Value.Tbl.remove sh.entries_a v
      end)
    profile.Profile.a.Profile.groups;
  (* Pass 2 — drop values whose A group vanished entirely (all tuples
     deleted). They are marked re-drawn so pass 3 drops their B entry. *)
  Array.iteri
    (fun k sh ->
      let stale =
        Value.Tbl.fold
          (fun v _ acc ->
            if Value.Tbl.mem profile.Profile.a.Profile.groups v then acc
            else v :: acc)
          sh.entries_a []
      in
      List.iter
        (fun v ->
          Value.Tbl.remove sh.entries_a v;
          Value.Tbl.replace redrawn_a v ();
          dirty.(k) <- true)
        stale)
    t.shards;
  (* Pass 3 — semijoin side. A value needs a B re-draw when its A entry
     changed (membership or stored p_v), its B group was touched, or its
     u rate was re-priced. Candidates: current B entries, re-drawn A
     values, and touched B values — any value outside those three sets
     has an unchanged B fate. *)
  let decided = Value.Tbl.create 64 in
  let decide v =
    if not (Value.Tbl.mem decided v) then begin
      Value.Tbl.replace decided v ();
      let k = Shard_key.shard_of ~shards v in
      let sh = t.shards.(k) in
      let drop () =
        if Value.Tbl.mem sh.entries_b v then begin
          Value.Tbl.remove sh.entries_b v;
          Value.Tbl.replace redrawn_b v ();
          dirty.(k) <- true
        end
      in
      match Value.Tbl.find_opt sh.entries_a v with
      | None -> drop ()
      | Some (a_entry : Sample.entry) -> (
          match Value.Tbl.find_opt profile.Profile.b.Profile.groups v with
          | None -> drop ()
          | Some rows ->
              let u_v = Budget.u_of resolved profile v in
              let need =
                Value.Tbl.mem redrawn_a v
                || Value.Tbl.mem touched_b v
                || (not (Value.Tbl.mem sh.entries_b v))
                || not
                     (Float.equal (Budget.u_of old_resolved old_profile v) u_v)
              in
              if need then begin
                Value.Tbl.replace sh.entries_b v
                  (Sample.draw_second_value ~base:t.base ~sentry ~rows
                     ~p_v:a_entry.Sample.p_v ~u_v v);
                Value.Tbl.replace redrawn_b v ();
                dirty.(k) <- true
              end)
    end
  in
  Array.iter
    (fun sh ->
      Value.Tbl.fold (fun v _ acc -> v :: acc) sh.entries_b []
      |> List.iter decide)
    t.shards;
  Value.Tbl.iter (fun v () -> decide v) redrawn_a;
  Value.Tbl.iter (fun v () -> decide v) touched_b;
  (* Pass 4 — compaction bookkeeping: surviving entries that were not
     re-drawn still index the old tables; remap them (identity when the
     batch had no deletes on that side). Clean shards keep their cached
     flat slice, remapped in place; dirty shards drop theirs. *)
  let remap_side proj redrawn remap has_deletes =
    if has_deletes then
      Array.iter
        (fun sh ->
          let tbl = proj sh in
          let keys = Value.Tbl.fold (fun v _ acc -> v :: acc) tbl [] in
          List.iter
            (fun v ->
              if not (Value.Tbl.mem redrawn v) then
                Value.Tbl.replace tbl v (remap_entry remap (Value.Tbl.find tbl v)))
            keys)
        t.shards
  in
  remap_side (fun sh -> sh.entries_a) redrawn_a remap_a
    (Array.length d.a.deletes > 0);
  remap_side (fun sh -> sh.entries_b) redrawn_b remap_b
    (Array.length d.b.deletes > 0);
  Array.iteri
    (fun k sh ->
      if dirty.(k) then sh.flat <- None
      else
        match sh.flat with
        | None -> ()
        | Some (sa, sb) ->
            let sa =
              if Array.length d.a.deletes > 0 then
                remap_flat_side remap_a table_a sa
              else { sa with Synopsis_flat.table = table_a }
            in
            let sb =
              if Array.length d.b.deletes > 0 then
                remap_flat_side remap_b table_b sb
              else { sb with Synopsis_flat.table = table_b }
            in
            sh.flat <- Some (sa, sb))
    t.shards;
  t.profile <- profile;
  t.resolved <- resolved;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 dirty
