(** In-process LRU cache of drawn synopses (or any per-synopsis payload,
    e.g. the flattened {!Synopsis_flat.t} the server keeps hot).

    A synopsis is a pure function of (base data, variant, theta, PRNG
    stream), so the cache key is exactly that tuple: the two table
    {e content} fingerprints ({!Repro_relation.Table.fingerprint}), the
    spec name, theta, and the keyed-PRNG stream name. A hit returns the
    very object that was inserted, so cached estimates are trivially
    bit-identical to fresh ones for the same key.

    Not thread-safe; create one per domain (like the PRNG). A live [obs]
    context maintains [synopsis_cache.hits]/[.misses]/[.evictions]
    counters and a [synopsis_cache.size] gauge; the same tallies are
    always available through the accessors below. *)

type key = {
  fp_a : int64;  (** first-sampled table's content fingerprint *)
  fp_b : int64;  (** semijoined table's content fingerprint *)
  variant : string;  (** {!Spec.to_string} of the spec *)
  theta : float;
  prng_key : string;  (** name of the keyed PRNG stream used to draw *)
}

type 'a t

val create : ?obs:Repro_obs.Obs.ctx -> capacity:int -> unit -> 'a t
(** [capacity] must be positive; insertion beyond it evicts the least
    recently used entry. *)

val find : 'a t -> key -> 'a option
(** Tallies a hit or a miss and refreshes recency on hit. *)

val insert : 'a t -> key -> 'a -> unit
(** Inserts (or replaces) an entry, evicting the LRU entry when full. *)

val find_or_build : 'a t -> key -> (unit -> 'a) -> 'a
(** [find], or on a miss run [build], cache and return its result. *)

val length : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

type stats = { s_hits : int; s_misses : int; s_evictions : int; s_size : int }

val stats : 'a t -> stats
(** One consistent view of the tallies above plus the current size, so
    servers and tests read cache behaviour directly instead of scraping
    the metrics registry. *)
