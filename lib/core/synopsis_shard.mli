(** Sharded, mergeable synopses with incremental maintenance.

    A synopsis held as K deterministic partitions of the join-value space.
    Shards are contiguous ranges of the canonical 64-bit value-hash space
    ({!Shard_key}), and every per-value draw runs on its own keyed PRNG
    sub-stream derived from the build's 64-bit base ({!Sample.stream_a}).
    Consequences, which the shard-determinism CI gate pins byte-for-byte:

    - {!merge} of the K shard samples is bit-identical to the monolithic
      [Synopsis.draw] with the same base, for every shard count;
    - the global flat view is the {e concatenation} of the per-shard flat
      slices, so a delta that touches one shard re-freezes only that
      shard's slice;
    - {!apply_delta} re-runs the per-value hash test against the same
      keyed streams for exactly the values whose draw inputs changed,
      yielding estimates bit-identical to a from-scratch re-draw of the
      post-delta table. *)

open Repro_relation

type t

type side_delta = {
  inserts : Value.t array array;  (** rows appended to the table *)
  deletes : int array;  (** current row indices to remove *)
}

type delta = { a : side_delta; b : side_delta }
(** A batch of mutations, in the profile's A/B orientation. *)

val no_delta : side_delta

val build :
  ?obs:Repro_obs.Obs.ctx ->
  ?jobs:int ->
  base:int64 ->
  profile:Profile.t ->
  resolved:Budget.t ->
  shards:int ->
  unit ->
  t
(** Draw each shard's slice on its own stream, fanning the shards out over
    a {!Repro_util.Pool} of [jobs] domains (per-value streams make the
    restricted draws order- and domain-independent). [base] is
    {!Synopsis.base_of_prng} of the stream a monolithic draw would have
    used. Raises [Invalid_argument] when [shards < 1]. *)

val of_synopsis :
  base:int64 -> profile:Profile.t -> shards:int -> Synopsis.t -> t
(** Re-shard an existing (e.g. decoded) synopsis by routing its entries
    through {!Shard_key.shard_of} — how the delta CLI resumes maintenance
    on a stored synopsis. The [base] must be the one the synopsis was
    drawn with, or subsequent deltas will not reproduce it. *)

val merge : t -> Synopsis.t
(** Union the shard samples into the one synopsis the monolithic draw
    would have produced: per-value entries recombined, tuple and sentry
    counts re-tallied, [N'] recomputed as the exact integer-valued sum of
    shard partials. *)

val flat : t -> Synopsis_flat.t
(** The global flat view, assembled by concatenating per-shard flat
    slices ({!Synopsis_flat.concat_sides}). Slices of shards untouched
    since the last call are reused from cache; only dirty shards are
    re-frozen. Bit-identical to [Synopsis_flat.of_synopsis (merge t)]. *)

val apply_delta : t -> delta -> int
(** Apply an insert/delete batch in place and return the number of shards
    whose sample changed (whose flat slices were invalidated). Tables are
    compacted (deletes removed, inserts appended — row indices of
    survivors shift accordingly), the profile is rebuilt and the budget
    re-resolved on the post-delta data, and exactly the values whose draw
    inputs changed — touched groups, re-priced rates, changed [S_A]
    membership on the semijoin side — are re-drawn on their keyed
    streams. Estimates from {!merge}/{!flat} afterwards are bit-identical
    to a from-scratch re-draw of the post-delta table. Note the degenerate
    honest case: data-dependent rate variants may re-price {e every} value
    under a delta, in which case all shards re-draw (still
    bit-identically). Raises [Invalid_argument] on out-of-range or
    duplicate delete indices and on inserts that do not match the schema.
    Access the post-delta tables through {!profile}. *)

val shard_count : t -> int
val profile : t -> Profile.t
val resolved : t -> Budget.t
val base : t -> int64

val shard_tuple_counts : t -> int array
(** Sampled tuples (sentries included, both sides) per shard — provenance
    for sharded-build records and the load-balance eyeball check. *)
