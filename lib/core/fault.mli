(** Typed failure taxonomy and degradation traces for the fault-tolerant
    estimation pipeline.

    The checked entry points ({!Discrete_learning.learn_checked},
    {!Estimate.run_checked}) return [('a, Fault.error) result] instead of
    raising or silently returning degenerate numbers; the guarded estimator
    ({!Estimator.estimate_guarded}) turns those errors into downgrades along
    a fallback cascade, recording each step as a {!degradation}. See
    docs/robustness.md for when each error fires and how the cascade
    responds. *)

type side = A | B
(** Which sample of the synopsis an error refers to, in the sampler's
    orientation ([A] is the first-sampled side). *)

type error =
  | Lp_infeasible  (** the discrete learner's LP has no feasible point *)
  | Lp_unbounded  (** the LP objective is unbounded below *)
  | Lp_iteration_cap
      (** the simplex hit its absolute pivot budget (cycling or a
          numerically hostile tableau) *)
  | Numeric of { what : string; value : float }
      (** a quantity that must be finite and in range came out NaN,
          infinite or negative; [what] names it, [value] is the offender *)
  | Empty_filtered_sample of side
      (** the predicate filtered every sampled tuple out on [side] — the
          "no evidence" regime the paper reports as infinite q-error *)
  | Corrupt_synopsis of string
      (** the synopsis violates a structural invariant (e.g. the semijoin
          side references a value absent from the first side, or stored
          rates are non-finite) *)
  | Bad_input of string  (** caller-supplied parameters are invalid *)
  | Store_mismatch of { what : string; detail : string }
      (** a persisted synopsis store failed validation on load — bad
          magic, unsupported version, layout (schema-hash) drift, checksum
          failure, a truncated or malformed payload, or base-table
          fingerprints that do not match the resolved tables. [what] names
          the failing check (e.g. ["checksum"], ["fingerprint"]). *)
  | Timeout of { what : string; budget_s : float }
      (** an operation ran out of its deadline budget — the estimation
          server degrades or rejects instead of hanging; [what] names the
          stage (e.g. ["request"], ["synopsis load"]). *)
  | Drift of { key : string; worsened : float; limit : float }
      (** a sentinel replay found the synopsis answering its recorded
          ground-truth queries with a q-error [worsened] times its
          build-time baseline, past the configured limit — the estimates
          for [key] can no longer be trusted at the accuracy the
          synopsis was built to deliver (typically the base data
          drifted under delta maintenance) *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val variant_label : error -> string
(** Stable lowercase name of the variant (payload dropped), e.g.
    ["lp_iteration_cap"] — the [fault] label of the
    [estimate.downgrade] observability counter. *)

val side_to_string : side -> string

val of_l1_error : Repro_lp.L1_fit.error -> error
(** Map the LP layer's typed failures into this taxonomy. *)

type degradation = {
  rung : string;  (** name of the cascade rung that was attempted *)
  fault : error;  (** why it was abandoned *)
}
(** One downgrade event: the named rung failed with [fault] and the
    cascade moved on to the next rung. *)

type trace = degradation list
(** Downgrades in the order they happened (first attempt first). An empty
    trace means the primary estimator answered. *)

val degradation_to_string : degradation -> string
val pp_trace : Format.formatter -> trace -> unit
val trace_to_string : trace -> string

val contains_substring : string -> string -> bool
(** [contains_substring s sub] — exposed for the fault-mapping helpers and
    tests. *)
