type dispatch = [ `Jvd_threshold | `Budget_aware ]

let default_threshold = 0.001

(* Plain values, not [lazy]: the parallel harness prepares estimators from
   several domains, and concurrent forcing raises [RacyLazy] on OCaml 5. *)
let low_jvd_spec = Spec.csdl Spec.L_one Spec.L_diff
let high_jvd_spec = Spec.csdl Spec.L_theta Spec.L_diff

let spec_for ?(threshold = default_threshold) ~jvd () =
  if jvd < threshold then low_jvd_spec else high_jvd_spec

let spec_for_profile ?(dispatch = `Jvd_threshold) ?threshold ~theta
    (profile : Profile.t) =
  match dispatch with
  | `Jvd_threshold ->
      ignore theta;
      spec_for ?threshold ~jvd:profile.Profile.jvd ()
  | `Budget_aware ->
      (* p = 1 needs a sentry on each side of every shared join value;
         afford it only when that floor leaves at least half the budget
         for second-level tuples. *)
      let budget = theta *. float_of_int profile.Profile.total_rows in
      let sentry_floor =
        2.0 *. float_of_int (Array.length profile.Profile.shared_values)
      in
      if sentry_floor <= budget /. 2.0 then low_jvd_spec
      else high_jvd_spec

let prepare ?dispatch ?threshold ?sample_first ~theta (profile : Profile.t) =
  let spec = spec_for_profile ?dispatch ?threshold ~theta profile in
  Estimator.prepare ?sample_first spec ~theta profile

let name = "CSDL-Opt"
