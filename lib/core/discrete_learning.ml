module Weighted = Repro_util.Weighted
module Math_ex = Repro_util.Math_ex
module Fingerprint = Repro_stats.Fingerprint
module Obs = Repro_obs.Obs

type config = {
  d : float;
  e : float;
  linear_grid_points : int;
  geometric_ratio : float;
}

let default_config =
  { d = 0.08; e = 0.05; linear_grid_points = 400; geometric_ratio = 1.05 }

type t = {
  n : float;
  histogram : Weighted.t;
  empirical_cutoff : float;  (* ln^2 n: counts at or above use j/n *)
  cache : (int, float) Hashtbl.t;
}

let sample_size t = t.n
let histogram t = t.histogram
let estimated_distinct t = Weighted.total_weight t.histogram

(* The probability grid X = {1/n^2, 2/n^2, ...} up to (n^D + n^E)/n, with
   the tail geometrically coarsened to bound the LP size. *)
let build_grid config ~n ~x_max =
  let step = 1.0 /. (n *. n) in
  if x_max < step then [| x_max |]
  else begin
    let grid = ref [] in
    let count = ref 0 in
    let x = ref step in
    while !x <= x_max && !count < config.linear_grid_points do
      grid := !x :: !grid;
      incr count;
      x := !x +. step
    done;
    (* geometric regime *)
    while !x <= x_max do
      grid := !x :: !grid;
      x := !x *. config.geometric_ratio
    done;
    (* make sure the top of the range is represented *)
    (match !grid with
    | top :: _ when top < x_max *. 0.99 -> grid := x_max :: !grid
    | [] -> grid := [ x_max ]
    | _ -> ());
    Array.of_list (List.rev !grid)
  end

let degenerate n =
  {
    n;
    histogram = Weighted.of_pairs [];
    empirical_cutoff = 0.0;
    cache = Hashtbl.create 4;
  }

let config_valid config =
  0.0 < config.d /. 2.0 && config.d /. 2.0 < config.e && config.e < config.d
  && config.d < 0.1

(* Algorithm 1 on a validated, non-empty fingerprint. When the LP layer
   fails, returns the empirical-fallback shape (count classes use j/n)
   together with the typed LP error so checked callers can refuse it. *)
let learn_core ?(obs = Obs.null) config fingerprint n =
  Obs.Span.with_ obs ~name:"dl.learn" @@ fun () ->
  Obs.observe obs "dl.virtual_sample.size" n;
  let n_d = Float.pow n config.d and n_e = Float.pow n config.e in
  let lp_max_i = max 1 (int_of_float (Float.floor n_d)) in
  let heavy_threshold = n_d +. (2.0 *. n_e) in
  (* Heavy counts keep their empirical probability (lines 6, 12). *)
  let heavy_entries =
    Fingerprint.fold
      (fun i mass acc ->
        if float_of_int i > heavy_threshold then
          (float_of_int i /. n, mass) :: acc
        else acc)
      fingerprint []
  in
  let heavy_mass =
    List.fold_left (fun acc (x, mass) -> acc +. (x *. mass)) 0.0 heavy_entries
  in
  let mass = Float.max 0.0 (1.0 -. heavy_mass) in
  let x_max = (n_d +. n_e) /. n in
  let grid = build_grid config ~n ~x_max in
  let design =
    Array.init lp_max_i (fun row ->
        let i = row + 1 in
        Array.map (fun x -> Math_ex.poisson_pmf (n *. x) i) grid)
  in
  let target =
    Array.init lp_max_i (fun row -> Fingerprint.get fingerprint (row + 1))
  in
  let lp_entries, lp_error =
    match
      Repro_lp.L1_fit.fit ~obs
        { design; target; mass_coefficients = Array.copy grid; mass }
    with
    | Ok { weights; _ } ->
        let entries = ref [] in
        Array.iteri
          (fun j w -> if w > 0.0 then entries := (grid.(j), w) :: !entries)
          weights;
        (!entries, None)
    | Error e ->
        (* Cannot happen for a non-empty grid with mass >= 0 and finite
           counts, but fall back to an empty shape rather than crash:
           count classes then use their empirical probability. *)
        Obs.count obs "dl.lp.failures" 1;
        ([], Some e)
  in
  let histogram = Weighted.of_pairs (lp_entries @ heavy_entries) in
  let log_n = log n in
  let empirical_cutoff = if log_n <= 0.0 then 0.0 else log_n *. log_n in
  ({ n; histogram; empirical_cutoff; cache = Hashtbl.create 16 }, lp_error)

let learn ?(obs = Obs.null) ?(config = default_config) counts =
  if not (config_valid config) then
    invalid_arg "Discrete_learning.learn: need 0 < D/2 < E < D < 0.1";
  let fingerprint =
    Fingerprint.of_float_counts
      (Seq.filter Float.is_finite (Array.to_seq counts))
  in
  let n = Fingerprint.sample_size fingerprint in
  if n <= 0.0 then degenerate 0.0
  else fst (learn_core ~obs config fingerprint n)

let learn_checked ?(obs = Obs.null) ?(config = default_config) counts =
  if not (config_valid config) then
    Error (Fault.Bad_input "discrete learning config: need 0 < D/2 < E < D < 0.1")
  else
    match Array.find_opt (fun c -> not (Float.is_finite c)) counts with
    | Some bad ->
        Error (Fault.Numeric { what = "discrete-learning count"; value = bad })
    | None ->
        let fingerprint = Fingerprint.of_float_counts (Array.to_seq counts) in
        let n = Fingerprint.sample_size fingerprint in
        if n <= 0.0 then
          Error (Fault.Bad_input "discrete learning: empty or all-zero counts")
        else begin
          match learn_core ~obs config fingerprint n with
          | t, None -> Ok t
          | _, Some lp_error -> Error (Fault.of_l1_error lp_error)
        end

let probability_of_count t j =
  if j <= 0.0 || t.n <= 0.0 then 0.0
  else
    let count_class = max 1 (int_of_float (Float.round j)) in
    match Hashtbl.find_opt t.cache count_class with
    | Some p -> p
    | None ->
        let empirical = float_of_int count_class /. t.n in
        let p =
          if float_of_int count_class >= t.empirical_cutoff then empirical
          else begin
            let weighted =
              Weighted.reweight
                (fun x w -> w *. Math_ex.poisson_pmf (t.n *. x) count_class)
                t.histogram
            in
            if Weighted.is_empty weighted || Weighted.total_weight weighted <= 0.0
            then empirical
            else Weighted.median weighted
          end
        in
        Hashtbl.add t.cache count_class p;
        p
