open Repro_relation
module Prng = Repro_util.Prng

(* The routing hash is a fixed-base splitmix fold over the value's stable
   byte encoding — no [Hashtbl.hash] anywhere near it, so a value lands on
   the same shard on every OCaml version, word size and process. The base
   is an arbitrary constant; changing it re-homes every value, so it is
   part of the on-disk story (shard segment membership) and must never
   change. *)
let hash_base = 0x5348415244303153L (* "SHARD01S" *)
let hash v = Prng.derive64 hash_base (Value.encode v)

(* Unsigned 64-bit comparison via the sign-flip trick. *)
let compare_u64 a b =
  Int64.compare (Int64.logxor a Int64.min_int) (Int64.logxor b Int64.min_int)

(* Shards are contiguous ranges of the unsigned hash space, not residue
   classes: values sorted by hash fall into shard 0's slice, then shard
   1's, ... so the canonical global layout is the concatenation of the
   per-shard layouts for every shard count at once. Routing uses the top
   32 hash bits — exact integer arithmetic, no 128-bit products. *)
let shard_of ~shards v =
  if shards < 1 then invalid_arg "Shard_key.shard_of: shards must be >= 1";
  let top32 = Int64.to_int (Int64.shift_right_logical (hash v) 32) in
  let i = top32 * shards / 0x1_0000_0000 in
  if i >= shards then shards - 1 else i

(* Canonical total order on values: unsigned hash, ties broken by the
   injective encoding. Every float accumulation on the estimation path
   scans values in this order, which is what makes a K-shard merge
   bit-identical to the monolithic draw: the order does not depend on any
   hashtable's insertion history or on K. *)
let compare a b =
  let c = compare_u64 (hash a) (hash b) in
  if c <> 0 then c else String.compare (Value.encode a) (Value.encode b)

(* Bindings of a [Value.Tbl] in canonical order — the one way hashtable
   contents are allowed to reach a float accumulation or the wire. *)
let sorted_bindings tbl =
  let acc = ref [] in
  Value.Tbl.iter (fun k v -> acc := (k, v) :: !acc) tbl;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

let sorted_values values =
  let values = Array.copy values in
  Array.sort compare values;
  values
