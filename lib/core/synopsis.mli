(** The offline product of correlated sampling for one join graph: the two
    correlated samples plus the bookkeeping the online phase needs ([N'],
    the virtual-sample base rate). Self-contained — estimation does not
    touch the data profile again. *)

type t = {
  resolved : Budget.t;
  sample_a : Sample.t;  (** the first-sampled side *)
  sample_b : Sample.t;  (** the semijoined side, [S_B ⊆ B ⋉ S_A] *)
  n_prime : float;
      (** [N' = sum over first-level sampled v of a_v] (stored at sampling
          time, Section IV-B1). Equals [|A|]'s joinable mass when p = 1. *)
}

val draw :
  ?obs:Repro_obs.Obs.ctx ->
  Repro_util.Prng.t ->
  profile:Profile.t ->
  resolved:Budget.t ->
  t
(** One random offline sampling run. A live [obs] context wraps the run in
    a [sample.draw] span (with [sample.first]/[sample.second] children) and
    forwards to the {!Sample} counters; the PRNG stream is unaffected.
    Consumes exactly 64 bits of the caller's stream — the base all
    per-value sub-streams derive from (see {!base_of_prng}). *)

val base_of_prng : Repro_util.Prng.t -> int64
(** The 64-bit sub-stream base {!draw} would derive from this stream,
    consuming it identically. A sharded build that uses this base draws
    samples bit-identical to the monolithic {!draw}. *)

val draw_base :
  ?obs:Repro_obs.Obs.ctx ->
  ?select:(Repro_relation.Value.t -> bool) ->
  base:int64 ->
  profile:Profile.t ->
  resolved:Budget.t ->
  unit ->
  t
(** {!draw} from an explicit sub-stream base, optionally restricted to the
    join values passing [select] (how one shard draws only its slice; the
    profile and resolved budget stay global). With per-value sub-streams
    the union of draws over a partition of the values equals the
    unrestricted draw. *)

val n_prime_of : profile:Profile.t -> Sample.t -> float
(** [N'] recomputed from a first-level sample: the sum of the A-side
    frequencies of its values. Integer-valued, so shard partial sums
    recombine exactly. *)

val size_tuples : t -> int
(** Total tuples stored (both samples, sentries included) — compare against
    [resolved.budget]. *)
