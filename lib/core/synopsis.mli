(** The offline product of correlated sampling for one join graph: the two
    correlated samples plus the bookkeeping the online phase needs ([N'],
    the virtual-sample base rate). Self-contained — estimation does not
    touch the data profile again. *)

type t = {
  resolved : Budget.t;
  sample_a : Sample.t;  (** the first-sampled side *)
  sample_b : Sample.t;  (** the semijoined side, [S_B ⊆ B ⋉ S_A] *)
  n_prime : float;
      (** [N' = sum over first-level sampled v of a_v] (stored at sampling
          time, Section IV-B1). Equals [|A|]'s joinable mass when p = 1. *)
}

val draw :
  ?obs:Repro_obs.Obs.ctx ->
  Repro_util.Prng.t ->
  profile:Profile.t ->
  resolved:Budget.t ->
  t
(** One random offline sampling run. A live [obs] context wraps the run in
    a [sample.draw] span (with [sample.first]/[sample.second] children) and
    forwards to the {!Sample} counters; the PRNG stream is unaffected. *)

val size_tuples : t -> int
(** Total tuples stored (both samples, sentries included) — compare against
    [resolved.budget]. *)
