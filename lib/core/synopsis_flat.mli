(** Columnar flat-array view of a decoded synopsis — the online hot path.

    The hashtable-of-boxed-entries layout of {!Sample} is what the offline
    phase naturally produces, but walking it per query is pointer chasing.
    This module freezes a synopsis into immutable flat arrays once, at
    draw/decode/load time, so the per-query loops in {!Estimate} are
    single linear passes over contiguous memory:

    - per side, parallel arrays of values, rates and sentry rows indexed
      by {e position}, with per-value offset ranges into one contiguous
      row-id array (a [Bigarray], so the GC never scans it and worker
      domains share it read-only);
    - a precomputed B→A position map, so the estimate joins the two sides
      by index instead of a [Value.Tbl.find_opt] per value per query;
    - a sorted value index over the first side for point lookups;
    - the memoized validation verdict of the synopsis, so checked
      estimation validates once per load instead of once per query.

    {b Scan order is load-bearing.} The positional order of [values] is
    the canonical shard-hash order ({!Shard_key.compare}) — estimates
    accumulate floats in scan order, and the byte-compare harnesses pin
    `%.17g` outputs, so the layout must be identical no matter how the
    sample was produced: monolithic draw, K-shard merge, or delta
    maintenance. Shards own contiguous hash ranges, so the global layout
    is the concatenation of the per-shard layouts ({!concat_sides}). The
    sorted index is a separate lookup structure on top. *)

open Repro_relation

type rows = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** One materialized column of the {e sampled} tuples, positionally
    aligned with the side's row positions (non-sentry rows first, then the
    sentry tuples — see {!side.sentry_pos}). Columns whose sampled values
    are homogeneously [Int] (resp. [Float]) are unboxed into a [Bigarray]
    — no GC tracking, no pointer dereference per row; anything mixed,
    stringly or nullable stays a boxed value array. *)
type column =
  | Ints of rows
  | Floats of (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  | Boxed of Value.t array

type side = {
  table : Table.t;
  column : string;
  values : Value.t array;
      (** join values, positionally, in sample-hashtable iteration order *)
  row_off : int array;
      (** length [n+1]; value [i]'s sampled rows live at positions
          [row_off.(i) .. row_off.(i+1) - 1] (of [rows] and of every
          materialized column) *)
  rows : rows;  (** all non-sentry sampled row indices, concatenated *)
  sentry : int array;  (** sentry row index per value, [-1] when absent *)
  sentry_pos : int array;
      (** position of value [i]'s sentry tuple in the materialized
          columns, [-1] when absent; sentries occupy the positions after
          the non-sentry rows *)
  cols : column array;
      (** the sampled tuples themselves, column-major, one entry per
          schema column — the predicate scan reads these, never the base
          table *)
  p_v : float array;
  q_v : float array;
}

type t = {
  syn : Synopsis.t;  (** the source synopsis (rates, [N'], counts) *)
  a : side;
  b : side;
  b_to_a : int array;
      (** position of B value [i] in [a]'s arrays; [-1] when the value is
          dangling (corrupt: S_B ⊆ B ⋉ S_A is violated) *)
  sorted_a : int array;
      (** positions into [a]'s arrays, sorted by {!Value.compare} *)
  verdict : Fault.error option;
      (** memoized {e structural} validation: finite [N'], non-negative
          tuple counts, no dangling B values, finite positive stored
          rates — same checks, same fault order and wording as the
          historical per-query [validate_synopsis] *)
}

val of_synopsis : Synopsis.t -> t
(** Freeze a synopsis. O(size of the synopsis); meant to run once per
    draw/decode/load, never per query. *)

val side_of_sample : Sample.t -> side
(** Flatten one sample into its canonical positional layout. Exposed so a
    sharded synopsis ({!Synopsis_shard}) can freeze each shard's slice
    independently and cache the clean ones across deltas. *)

val concat_sides : side array -> side
(** Concatenate per-shard sides (in shard order) into the side the union
    sample would flatten to — bit-identical to [side_of_sample] of the
    merged sample, because shards own contiguous canonical-order ranges.
    All inputs must come from the same table/column; empty shards are
    fine, an empty array is not. Column segments are reused when every
    non-empty shard agrees on the unboxed kind, re-boxed otherwise. *)

val assemble : Synopsis.t -> a:side -> b:side -> t
(** Finish a flat view from prebuilt sides: compute the B→A map, the
    sorted index and the validation verdict. [of_synopsis] is
    [assemble syn ~a:(side_of_sample sample_a) ~b:(side_of_sample
    sample_b)]. *)

val find_a : t -> Value.t -> int option
(** Position of a value on the first side, by binary search over
    [sorted_a]. *)

val validation_runs : unit -> int
(** Process-wide count of structural validations performed by
    {!of_synopsis} — observability for "validate once per load, not per
    query" (see the regression test in test_store.ml). *)
