open Repro_relation
module Obs = Repro_obs.Obs
module Flat = Synopsis_flat

type breakdown = {
  estimate : float;
  filtered_a_tuples : int;
  filtered_b_tuples : int;
  selectivity_a : float;
  virtual_sample_size : float;
  contributing_values : int;
  degenerate : bool;
}

let indicator b = if b then 1.0 else 0.0

(* Filtered view of one side under the query's predicate, positionally
   aligned with the side's value arrays. Computed once per query — the
   predicate runs exactly once per sampled row, and every downstream pass
   (tuple totals, scaling, DL input distribution, per-value terms) reads
   these arrays instead of re-filtering. *)
type filtered_side = {
  counts : int array;  (** passing non-sentry tuples per value *)
  sentries : bool array;  (** sentry exists and passes, per value *)
  tuples : int;  (** total passing tuples including sentries *)
}

let test_of = function
  | Predicate.Eq -> fun c -> c = 0
  | Predicate.Ne -> fun c -> c <> 0
  | Predicate.Lt -> fun c -> c < 0
  | Predicate.Le -> fun c -> c <= 0
  | Predicate.Gt -> fun c -> c > 0
  | Predicate.Ge -> fun c -> c >= 0

(* same wording as [Predicate.compile], which run_checked relies on *)
let col_index schema name =
  match Schema.index_of schema name with
  | i -> i
  | exception Not_found ->
      invalid_arg (Printf.sprintf "Predicate: no column named %S" name)

(* Compile a predicate against a side's materialized columns: the result
   tests a {e position} in the flat layout, not a row of the base table.
   Semantics mirror [Predicate.compile] row by row (two-valued logic, Null
   comparisons false, LIKE only on strings); unboxed Int/Float columns get
   direct immediate comparisons — no pointer dereference per tuple. Int
   columns compare exactly against Int constants; every mixed-type case
   goes through the same [Value.compare] ladder as the row path. *)
let rec compile_positions (side : Flat.side) p =
  let schema = Table.schema side.Flat.table in
  match p with
  | Predicate.True -> fun (_ : int) -> true
  | Predicate.False -> fun _ -> false
  | Predicate.Compare (op, name, constant) -> (
      let test = test_of op in
      match side.Flat.cols.(col_index schema name) with
      | Flat.Ints a -> (
          let get = Bigarray.Array1.unsafe_get a in
          match constant with
          | Value.Int k -> (
              match op with
              | Predicate.Eq -> fun j -> get j = k
              | Predicate.Ne -> fun j -> get j <> k
              | Predicate.Lt -> fun j -> get j < k
              | Predicate.Le -> fun j -> get j <= k
              | Predicate.Gt -> fun j -> get j > k
              | Predicate.Ge -> fun j -> get j >= k)
          | Value.Float f -> fun j -> test (Float.compare (float_of_int (get j)) f)
          | Value.Null | Value.Str _ ->
              (* constructor-rank comparison: same outcome for every Int *)
              let r = test (Value.compare (Value.Int 0) constant) in
              fun _ -> r)
      | Flat.Floats a -> (
          let get = Bigarray.Array1.unsafe_get a in
          match constant with
          | Value.Float f -> fun j -> test (Float.compare (get j) f)
          | Value.Int k ->
              let f = float_of_int k in
              fun j -> test (Float.compare (get j) f)
          | Value.Null | Value.Str _ ->
              let r = test (Value.compare (Value.Float 0.0) constant) in
              fun _ -> r)
      | Flat.Boxed a -> (
          fun j ->
            match a.(j) with
            | Value.Null -> false
            | v -> test (Value.compare v constant)))
  | Predicate.Like_prefix (name, prefix) -> (
      match side.Flat.cols.(col_index schema name) with
      | Flat.Ints _ | Flat.Floats _ -> fun _ -> false
      | Flat.Boxed a -> (
          fun j ->
            match a.(j) with
            | Value.Str s -> Predicate.string_has_prefix ~prefix s
            | Value.Null | Value.Int _ | Value.Float _ -> false))
  | Predicate.Like_contains (name, needle) -> (
      match side.Flat.cols.(col_index schema name) with
      | Flat.Ints _ | Flat.Floats _ -> fun _ -> false
      | Flat.Boxed a -> (
          fun j ->
            match a.(j) with
            | Value.Str s -> Predicate.string_contains ~needle s
            | Value.Null | Value.Int _ | Value.Float _ -> false))
  | Predicate.And (a, b) ->
      let fa = compile_positions side a and fb = compile_positions side b in
      fun j -> fa j && fb j
  | Predicate.Or (a, b) ->
      let fa = compile_positions side a and fb = compile_positions side b in
      fun j -> fa j || fb j
  | Predicate.Not a ->
      let fa = compile_positions side a in
      fun j -> not (fa j)

let filter_side (side : Flat.side) pred =
  let n = Array.length side.Flat.values in
  let counts = Array.make n 0 in
  let sentries = Array.make n false in
  let total = ref 0 in
  let row_off = side.Flat.row_off in
  (match pred with
  | Predicate.True ->
      (* every tuple passes: counts come straight off the offset ranges,
         no tuple is ever touched *)
      let sentry = side.Flat.sentry in
      for i = 0 to n - 1 do
        let c = row_off.(i + 1) - row_off.(i) in
        counts.(i) <- c;
        let s = sentry.(i) >= 0 in
        sentries.(i) <- s;
        total := !total + c + Bool.to_int s
      done
  | p ->
      let pass = compile_positions side p in
      let sentry_pos = side.Flat.sentry_pos in
      for i = 0 to n - 1 do
        let c = ref 0 in
        for j = row_off.(i) to row_off.(i + 1) - 1 do
          if pass j then incr c
        done;
        counts.(i) <- !c;
        let sp = sentry_pos.(i) in
        let s = sp >= 0 && pass sp in
        sentries.(i) <- s;
        total := !total + !c + Bool.to_int s
      done);
  { counts; sentries; tuples = !total }

(* B-side factor shared by both methods: S''_B(v)/u_v + I''_B(v). The
   [u_v <= 0.0] guard keeps a corrupt zero rate from turning the unchecked
   path into a silent [inf] — checked estimation already rejects such an
   entry during validation, and for any valid synopsis (u_v > 0) the
   branch never fires, so guarded and historical results are
   bit-identical. *)
let b_factor ~count ~sentry ~u_v ~sentry_spec =
  let scaled =
    if count = 0 || u_v <= 0.0 then 0.0 else float_of_int count /. u_v
  in
  if sentry_spec then scaled +. indicator sentry else scaled

(* Both estimates below walk the B side positionally — flat-array order is
   the historical hashtable iteration order, so the float accumulation
   order (and thus every printed %.17g digit) is unchanged. The A side is
   joined through the precomputed [b_to_a] position map: no per-query
   hashtable lookups. *)

let scaling_estimate (flat : Flat.t) ~sentry_spec (fa : filtered_side)
    (fb : filtered_side) =
  let a = flat.Flat.a and b = flat.Flat.b and b_to_a = flat.Flat.b_to_a in
  let total = ref 0.0 in
  let contributing = ref 0 in
  for i = 0 to Array.length b.Flat.values - 1 do
    let j = b_to_a.(i) in
    (* j < 0 cannot happen on a valid synopsis: S_B ⊆ B ⋉ S_A *)
    if j >= 0 then begin
      let a_count = fa.counts.(j) in
      let a_scaled =
        if a_count = 0 || a.Flat.q_v.(j) <= 0.0 then 0.0
        else float_of_int a_count /. a.Flat.q_v.(j)
      in
      let a_term =
        if sentry_spec then a_scaled +. indicator fa.sentries.(j)
        else a_scaled
      in
      let b_term =
        b_factor ~count:fb.counts.(i) ~sentry:fb.sentries.(i)
          ~u_v:b.Flat.q_v.(i) ~sentry_spec
      in
      let term = a_term *. b_term /. a.Flat.p_v.(j) in
      if term > 0.0 then begin
        total := !total +. term;
        incr contributing
      end
    end
  done;
  (!total, !contributing)

let dl_estimate ~learn ~virtual_sample (flat : Flat.t) ~sentry_spec
    (fa : filtered_side) (fb : filtered_side) =
  let { Synopsis.resolved; sample_a; n_prime; _ } = flat.Flat.syn in
  let base_q = resolved.Budget.base_q in
  (* Ablation hook: without the Eq. 6 virtual sample, raw counts feed the
     learner directly (count ratio forced to 1). *)
  let virtual_ratio q_v = if virtual_sample then base_q /. q_v else 1.0 in
  let a = flat.Flat.a and b = flat.Flat.b and b_to_a = flat.Flat.b_to_a in
  (* DL input distribution from the already-filtered A side. The list is
     built by prepending in scan order — the resulting array is in reverse
     scan order, as it always was (the learner's output depends on element
     order through float summation). *)
  let virtual_counts = ref [] in
  for i = 0 to Array.length a.Flat.values - 1 do
    let c = fa.counts.(i) in
    if c > 0 && a.Flat.q_v.(i) > 0.0 then begin
      let virtual_count = float_of_int c *. virtual_ratio a.Flat.q_v.(i) in
      if virtual_count > 0.0 then
        virtual_counts := virtual_count :: !virtual_counts
    end
  done;
  let total_tuples = Sample.total_tuples sample_a in
  if total_tuples = 0 then (0.0, 0, 0.0, 0.0)
  else begin
    let selectivity =
      float_of_int fa.tuples /. float_of_int total_tuples
    in
    let learned = learn (Array.of_list !virtual_counts) in
    (* Lemma 1 / Eq. 6: the virtual sample is drawn from the non-sentry
       tuples of the first-level sampled values, a population of
       N' - #sentries — each sentry sits outside its value's second-level
       draw and re-enters only through the +1 indicator below. Scaling by
       the full N' would count every sentry twice (exactly +1 per
       contributing value at theta = 1). *)
    let virtual_population =
      if sentry_spec then
        Float.max 0.0 (n_prime -. float_of_int (Sample.sentry_count sample_a))
      else n_prime
    in
    let n_filtered = virtual_population *. selectivity in
    let total = ref 0.0 in
    let contributing = ref 0 in
    for i = 0 to Array.length b.Flat.values - 1 do
      let j = b_to_a.(i) in
      if j >= 0 then begin
        let a_count = fa.counts.(j) in
        let x_v =
          if a_count = 0 || a.Flat.q_v.(j) <= 0.0 then 0.0
          else
            Discrete_learning.probability_of_count learned
              (float_of_int a_count *. virtual_ratio a.Flat.q_v.(j))
        in
        let a_term =
          (x_v *. n_filtered)
          +. (if sentry_spec then indicator fa.sentries.(j) else 0.0)
        in
        let b_term =
          b_factor ~count:fb.counts.(i) ~sentry:fb.sentries.(i)
            ~u_v:b.Flat.q_v.(i) ~sentry_spec
        in
        let term = a_term *. b_term /. a.Flat.p_v.(j) in
        if term > 0.0 then begin
          total := !total +. term;
          incr contributing
        end
      end
    done;
    (!total, !contributing, selectivity, Discrete_learning.sample_size learned)
  end

let method_label = function
  | Spec.Scaling -> "scaling"
  | Spec.Discrete_learning -> "dl"

(* Shared core: [learn] abstracts over the raising/absorbing learner
   (legacy path) and the checked one (recording its fault in a ref). *)
let breakdown_with ?(obs = Obs.null) ~learn ~virtual_sample ~pred_a ~pred_b
    (flat : Flat.t) =
  let resolved = flat.Flat.syn.Synopsis.resolved in
  let meth = method_label resolved.Budget.spec.Spec.method_ in
  Obs.Span.with_ obs ~name:"estimate.run" ~attrs:[ ("method", meth) ]
  @@ fun () ->
  Obs.count obs ~labels:[ ("method", meth) ] "estimate.runs" 1;
  let sentry_spec = resolved.Budget.spec.Spec.sentry in
  let fa = filter_side flat.Flat.a pred_a in
  let fb = filter_side flat.Flat.b pred_b in
  let filtered_a_tuples = fa.tuples in
  let filtered_b_tuples = fb.tuples in
  (* An empty filtered sample means the estimate is "no evidence", not a
     measured zero — the failure mode behind the paper's infinite q-errors
     on selective predicates. Flag it so callers can tell the two apart. *)
  let degenerate =
    Sample.total_tuples flat.Flat.syn.Synopsis.sample_a = 0
    || filtered_a_tuples = 0 || filtered_b_tuples = 0
  in
  if degenerate then Obs.count obs "estimate.degenerate" 1;
  match resolved.Budget.spec.Spec.method_ with
  | Spec.Scaling ->
      let estimate, contributing =
        scaling_estimate flat ~sentry_spec fa fb
      in
      let selectivity_a =
        let total = Sample.total_tuples flat.Flat.syn.Synopsis.sample_a in
        if total = 0 then 0.0
        else float_of_int filtered_a_tuples /. float_of_int total
      in
      {
        estimate;
        filtered_a_tuples;
        filtered_b_tuples;
        selectivity_a;
        virtual_sample_size = 0.0;
        contributing_values = contributing;
        degenerate;
      }
  | Spec.Discrete_learning ->
      let estimate, contributing, selectivity_a, virtual_sample_size =
        dl_estimate ~learn ~virtual_sample flat ~sentry_spec fa fb
      in
      {
        estimate;
        filtered_a_tuples;
        filtered_b_tuples;
        selectivity_a;
        virtual_sample_size;
        contributing_values = contributing;
        degenerate;
      }

let run_with_breakdown_flat ?(obs = Obs.null) ?dl_config
    ?(virtual_sample = true) ?(pred_a = Predicate.True)
    ?(pred_b = Predicate.True) flat =
  breakdown_with ~obs
    ~learn:(Discrete_learning.learn ~obs ?config:dl_config)
    ~virtual_sample ~pred_a ~pred_b flat

let run_flat ?obs ?dl_config ?virtual_sample ?pred_a ?pred_b flat =
  (run_with_breakdown_flat ?obs ?dl_config ?virtual_sample ?pred_a ?pred_b
     flat)
    .estimate

let run_with_breakdown ?obs ?dl_config ?virtual_sample ?pred_a ?pred_b
    synopsis =
  run_with_breakdown_flat ?obs ?dl_config ?virtual_sample ?pred_a ?pred_b
    (Flat.of_synopsis synopsis)

let run ?obs ?dl_config ?virtual_sample ?pred_a ?pred_b synopsis =
  (run_with_breakdown ?obs ?dl_config ?virtual_sample ?pred_a ?pred_b synopsis)
    .estimate

(* ---------------- checked entry points ---------------- *)

let run_checked_flat ?(obs = Obs.null) ?dl_config ?(virtual_sample = true)
    ?(pred_a = Predicate.True) ?(pred_b = Predicate.True) (flat : Flat.t) =
  match flat.Flat.verdict with
  | Some fault -> Error fault
  | None -> (
      let learner_fault = ref None in
      let learn counts =
        match
          Discrete_learning.learn_checked ~obs ?config:dl_config counts
        with
        | Ok t -> t
        | Error fault ->
            if !learner_fault = None then learner_fault := Some fault;
            (* neutral placeholder; the recorded fault discards the result *)
            Discrete_learning.learn counts
      in
      match
        breakdown_with ~obs ~learn ~virtual_sample ~pred_a ~pred_b flat
      with
      | exception exn ->
          Error (Fault.Corrupt_synopsis (Printexc.to_string exn))
      | breakdown -> (
          if breakdown.filtered_a_tuples = 0 then
            Error (Fault.Empty_filtered_sample Fault.A)
          else if breakdown.filtered_b_tuples = 0 then
            Error (Fault.Empty_filtered_sample Fault.B)
          else
            match !learner_fault with
            | Some fault -> Error fault
            | None ->
                if
                  not (Float.is_finite breakdown.estimate)
                  || breakdown.estimate < 0.0
                then
                  Error
                    (Fault.Numeric
                       {
                         what = "join size estimate";
                         value = breakdown.estimate;
                       })
                else Ok breakdown))

let run_checked ?obs ?dl_config ?virtual_sample ?pred_a ?pred_b synopsis =
  match Flat.of_synopsis synopsis with
  | exception exn -> Error (Fault.Corrupt_synopsis (Printexc.to_string exn))
  | flat ->
      run_checked_flat ?obs ?dl_config ?virtual_sample ?pred_a ?pred_b flat
