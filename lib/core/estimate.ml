open Repro_relation
module Obs = Repro_obs.Obs

type breakdown = {
  estimate : float;
  filtered_a_tuples : int;
  filtered_b_tuples : int;
  selectivity_a : float;
  virtual_sample_size : float;
  contributing_values : int;
  degenerate : bool;
}

(* Filtered view of one sample entry under a compiled predicate. *)
type filtered = { count : int; sentry : bool }

let filter_entry sample pass entry =
  {
    count = Sample.filtered_count sample pass entry;
    sentry = Sample.sentry_passes sample pass entry;
  }

let indicator b = if b then 1.0 else 0.0

let compile_for sample = function
  | Predicate.True -> fun (_ : Value.t array) -> true
  | p -> Predicate.compile p (Table.schema sample.Sample.table)

(* B-side factor shared by both methods: S''_B(v)/u_v + I''_B(v). *)
let b_factor (fb : filtered) ~u_v ~sentry_spec =
  let scaled = if fb.count = 0 then 0.0 else float_of_int fb.count /. u_v in
  if sentry_spec then scaled +. indicator fb.sentry else scaled

let scaling_estimate synopsis pass_a pass_b =
  let { Synopsis.resolved; sample_a; sample_b; _ } = synopsis in
  let sentry_spec = resolved.Budget.spec.Spec.sentry in
  let total = ref 0.0 in
  let contributing = ref 0 in
  (* S_B's values are a subset of S_A's, so iterate the B side. *)
  Value.Tbl.iter
    (fun v (entry_b : Sample.entry) ->
      match Value.Tbl.find_opt sample_a.Sample.entries v with
      | None -> () (* cannot happen: S_B ⊆ B ⋉ S_A *)
      | Some entry_a ->
          let fa = filter_entry sample_a pass_a entry_a in
          let fb = filter_entry sample_b pass_b entry_b in
          let a_scaled =
            if fa.count = 0 then 0.0
            else float_of_int fa.count /. entry_a.Sample.q_v
          in
          let a_term =
            if sentry_spec then a_scaled +. indicator fa.sentry else a_scaled
          in
          let b_term = b_factor fb ~u_v:entry_b.Sample.q_v ~sentry_spec in
          let term = a_term *. b_term /. entry_a.Sample.p_v in
          if term > 0.0 then begin
            total := !total +. term;
            incr contributing
          end)
    sample_b.Sample.entries;
  (!total, !contributing)

let dl_estimate ~learn ~virtual_sample synopsis pass_a pass_b =
  let { Synopsis.resolved; sample_a; sample_b; n_prime } = synopsis in
  let base_q = resolved.Budget.base_q in
  (* Ablation hook: without the Eq. 6 virtual sample, raw counts feed the
     learner directly (count ratio forced to 1). *)
  let virtual_ratio q_v =
    if virtual_sample then base_q /. q_v else 1.0
  in
  (* Filtered counts for every first-side value: needed both for the DL
     input distribution and for the selectivity f^{c_A}. *)
  let filtered_a : filtered Value.Tbl.t =
    Value.Tbl.create (Value.Tbl.length sample_a.Sample.entries)
  in
  let filtered_tuples = ref 0 in
  let virtual_counts = ref [] in
  Value.Tbl.iter
    (fun v (entry : Sample.entry) ->
      let f = filter_entry sample_a pass_a entry in
      Value.Tbl.add filtered_a v f;
      filtered_tuples := !filtered_tuples + f.count + (if f.sentry then 1 else 0);
      if f.count > 0 && entry.Sample.q_v > 0.0 then begin
        let virtual_count =
          float_of_int f.count *. virtual_ratio entry.Sample.q_v
        in
        if virtual_count > 0.0 then
          virtual_counts := virtual_count :: !virtual_counts
      end)
    sample_a.Sample.entries;
  let total_tuples = Sample.total_tuples sample_a in
  if total_tuples = 0 then (0.0, 0, 0.0, 0.0)
  else begin
    let selectivity =
      float_of_int !filtered_tuples /. float_of_int total_tuples
    in
    let learned = learn (Array.of_list !virtual_counts) in
    let sentry_spec = resolved.Budget.spec.Spec.sentry in
    (* Lemma 1 / Eq. 6: the virtual sample is drawn from the non-sentry
       tuples of the first-level sampled values, a population of
       N' - #sentries — each sentry sits outside its value's second-level
       draw and re-enters only through the +1 indicator below. Scaling by
       the full N' would count every sentry twice (exactly +1 per
       contributing value at theta = 1). *)
    let virtual_population =
      if sentry_spec then
        Float.max 0.0 (n_prime -. float_of_int (Sample.sentry_count sample_a))
      else n_prime
    in
    let n_filtered = virtual_population *. selectivity in
    let total = ref 0.0 in
    let contributing = ref 0 in
    Value.Tbl.iter
      (fun v (entry_b : Sample.entry) ->
        match Value.Tbl.find_opt filtered_a v with
        | None -> ()
        | Some fa ->
            let entry_a = Value.Tbl.find sample_a.Sample.entries v in
            let x_v =
              if fa.count = 0 || entry_a.Sample.q_v <= 0.0 then 0.0
              else
                Discrete_learning.probability_of_count learned
                  (float_of_int fa.count *. virtual_ratio entry_a.Sample.q_v)
            in
            let a_term =
              (x_v *. n_filtered)
              +. (if sentry_spec then indicator fa.sentry else 0.0)
            in
            let fb = filter_entry sample_b pass_b entry_b in
            let b_term = b_factor fb ~u_v:entry_b.Sample.q_v ~sentry_spec in
            let term = a_term *. b_term /. entry_a.Sample.p_v in
            if term > 0.0 then begin
              total := !total +. term;
              incr contributing
            end)
      sample_b.Sample.entries;
    (!total, !contributing, selectivity, Discrete_learning.sample_size learned)
  end

let method_label = function
  | Spec.Scaling -> "scaling"
  | Spec.Discrete_learning -> "dl"

(* Shared core: [learn] abstracts over the raising/absorbing learner
   (legacy path) and the checked one (recording its fault in a ref). *)
let breakdown_with ?(obs = Obs.null) ~learn ~virtual_sample ~pred_a ~pred_b
    synopsis =
  let { Synopsis.resolved; sample_a; sample_b; _ } = synopsis in
  let meth = method_label resolved.Budget.spec.Spec.method_ in
  Obs.Span.with_ obs ~name:"estimate.run" ~attrs:[ ("method", meth) ]
  @@ fun () ->
  Obs.count obs ~labels:[ ("method", meth) ] "estimate.runs" 1;
  let pass_a = compile_for sample_a pred_a in
  let pass_b = compile_for sample_b pred_b in
  let count_filtered sample pass =
    Value.Tbl.fold
      (fun _ entry acc ->
        acc
        + Sample.filtered_count sample pass entry
        + (if Sample.sentry_passes sample pass entry then 1 else 0))
      sample.Sample.entries 0
  in
  let filtered_a_tuples = count_filtered sample_a pass_a in
  let filtered_b_tuples = count_filtered sample_b pass_b in
  (* An empty filtered sample means the estimate is "no evidence", not a
     measured zero — the failure mode behind the paper's infinite q-errors
     on selective predicates. Flag it so callers can tell the two apart. *)
  let degenerate =
    Sample.total_tuples sample_a = 0
    || filtered_a_tuples = 0 || filtered_b_tuples = 0
  in
  if degenerate then Obs.count obs "estimate.degenerate" 1;
  match resolved.Budget.spec.Spec.method_ with
  | Spec.Scaling ->
      let estimate, contributing = scaling_estimate synopsis pass_a pass_b in
      let selectivity_a =
        let total = Sample.total_tuples sample_a in
        if total = 0 then 0.0
        else float_of_int filtered_a_tuples /. float_of_int total
      in
      {
        estimate;
        filtered_a_tuples;
        filtered_b_tuples;
        selectivity_a;
        virtual_sample_size = 0.0;
        contributing_values = contributing;
        degenerate;
      }
  | Spec.Discrete_learning ->
      let estimate, contributing, selectivity_a, virtual_sample_size =
        dl_estimate ~learn ~virtual_sample synopsis pass_a pass_b
      in
      {
        estimate;
        filtered_a_tuples;
        filtered_b_tuples;
        selectivity_a;
        virtual_sample_size;
        contributing_values = contributing;
        degenerate;
      }

let run_with_breakdown ?(obs = Obs.null) ?dl_config ?(virtual_sample = true)
    ?(pred_a = Predicate.True) ?(pred_b = Predicate.True) synopsis =
  breakdown_with ~obs
    ~learn:(Discrete_learning.learn ~obs ?config:dl_config)
    ~virtual_sample ~pred_a ~pred_b synopsis

let run ?obs ?dl_config ?virtual_sample ?pred_a ?pred_b synopsis =
  (run_with_breakdown ?obs ?dl_config ?virtual_sample ?pred_a ?pred_b synopsis)
    .estimate

(* ---------------- checked entry point ---------------- *)

let validate_sample label (sample : Sample.t) =
  let fault = ref None in
  Value.Tbl.iter
    (fun _ (entry : Sample.entry) ->
      if !fault = None then begin
        if not (Float.is_finite entry.Sample.p_v) || entry.Sample.p_v <= 0.0
        then
          fault :=
            Some
              (Fault.Numeric
                 { what = label ^ " sampling rate p_v"; value = entry.Sample.p_v })
        else if
          not (Float.is_finite entry.Sample.q_v) || entry.Sample.q_v <= 0.0
        then
          fault :=
            Some
              (Fault.Numeric
                 { what = label ^ " sampling rate q_v"; value = entry.Sample.q_v })
      end)
    sample.Sample.entries;
  !fault

let validate_synopsis (synopsis : Synopsis.t) =
  let { Synopsis.sample_a; sample_b; n_prime; _ } = synopsis in
  if not (Float.is_finite n_prime) || n_prime < 0.0 then
    Some (Fault.Numeric { what = "synopsis N'"; value = n_prime })
  else if synopsis.Synopsis.sample_a.Sample.tuple_count < 0 then
    Some (Fault.Corrupt_synopsis "negative tuple count on side A")
  else if synopsis.Synopsis.sample_b.Sample.tuple_count < 0 then
    Some (Fault.Corrupt_synopsis "negative tuple count on side B")
  else begin
    let dangling = ref false in
    Value.Tbl.iter
      (fun v (_ : Sample.entry) ->
        if not (Value.Tbl.mem sample_a.Sample.entries v) then dangling := true)
      sample_b.Sample.entries;
    if !dangling then
      Some
        (Fault.Corrupt_synopsis
           "semijoin side references a value absent from the first side")
    else
      match validate_sample "side A" sample_a with
      | Some f -> Some f
      | None -> validate_sample "side B" sample_b
  end

let run_checked ?(obs = Obs.null) ?dl_config ?(virtual_sample = true)
    ?(pred_a = Predicate.True) ?(pred_b = Predicate.True) synopsis =
  match validate_synopsis synopsis with
  | Some fault -> Error fault
  | None -> (
      let learner_fault = ref None in
      let learn counts =
        match
          Discrete_learning.learn_checked ~obs ?config:dl_config counts
        with
        | Ok t -> t
        | Error fault ->
            if !learner_fault = None then learner_fault := Some fault;
            (* neutral placeholder; the recorded fault discards the result *)
            Discrete_learning.learn counts
      in
      match
        breakdown_with ~obs ~learn ~virtual_sample ~pred_a ~pred_b synopsis
      with
      | exception exn ->
          Error (Fault.Corrupt_synopsis (Printexc.to_string exn))
      | breakdown -> (
          if breakdown.filtered_a_tuples = 0 then
            Error (Fault.Empty_filtered_sample Fault.A)
          else if breakdown.filtered_b_tuples = 0 then
            Error (Fault.Empty_filtered_sample Fault.B)
          else
            match !learner_fault with
            | Some fault -> Error fault
            | None ->
                if
                  not (Float.is_finite breakdown.estimate)
                  || breakdown.estimate < 0.0
                then
                  Error
                    (Fault.Numeric
                       {
                         what = "join size estimate";
                         value = breakdown.estimate;
                       })
                else Ok breakdown))
