open Repro_relation

type link_table = {
  table : Table.t;
  pk : string;
  fk : string option;
}

type tables = {
  links : link_table list;
  last : Table.t;
  last_fk : string;
}

let validate tables =
  (match tables.links with
  | [] -> invalid_arg "Chain_n: at least one link table required"
  | head :: rest ->
      (match head.fk with
      | Some _ -> invalid_arg "Chain_n: the leftmost table must have no fk"
      | None -> ());
      List.iter
        (fun link ->
          match link.fk with
          | None -> invalid_arg "Chain_n: only the leftmost table may omit fk"
          | Some _ -> ())
        rest);
  let check table column =
    ignore (Table.column_index table column : int)
  in
  List.iter
    (fun link ->
      check link.table link.pk;
      Option.iter (check link.table) link.fk)
    tables.links;
  check tables.last tables.last_fk

let length tables = List.length tables.links + 1

let rightmost_link tables =
  match List.rev tables.links with
  | [] -> invalid_arg "Chain_n: at least one link table required"
  | last_link :: _ -> last_link

let jvd tables =
  let link = rightmost_link tables in
  Join.jvd link.table link.pk tables.last tables.last_fk

(* one prepared level: its row groups by pk and the fk column index *)
type level = {
  link : link_table;
  groups : int array Value.Tbl.t;
  fk_index : int option;
}

type t = {
  spec : Spec.t;
  tables : tables;
  profile : Profile.t;
  resolved : Budget.t;
  levels : level list;  (* rightmost link first *)
}

(* a complete witness path: row indices, rightmost link first *)
type synopsis = {
  sample : Sample.t;
  paths : int array list Value.Tbl.t;
  n0 : float;
  prepared : t;
}

let prepare spec ~theta tables =
  validate tables;
  let link = rightmost_link tables in
  let profile =
    Profile.of_tables tables.last tables.last_fk link.table link.pk
  in
  let profile =
    {
      profile with
      Profile.total_rows =
        List.fold_left
          (fun acc l -> acc + Table.cardinality l.table)
          (Table.cardinality tables.last)
          tables.links;
    }
  in
  let resolved = Budget.resolve spec ~theta profile in
  let levels =
    List.rev_map
      (fun link ->
        {
          link;
          groups = Table.group_by link.table link.pk;
          fk_index = Option.map (Table.column_index link.table) link.fk;
        })
      tables.links
  in
  { spec; tables; profile; resolved; levels }

let prepare_opt ?threshold ~theta tables =
  prepare (Opt.spec_for ?threshold ~jvd:(jvd tables) ()) ~theta tables

(* enumerate complete witness paths for a join value, rightmost first *)
let rec paths_for levels v =
  match levels with
  | [] -> [ [||] ]
  | level :: deeper -> (
      match Value.Tbl.find_opt level.groups v with
      | None -> []
      | Some rows ->
          Array.to_list rows
          |> List.concat_map (fun row_index ->
                 let continue_with =
                   match level.fk_index with
                   | None -> [ [||] ] (* leftmost table: path ends here *)
                   | Some fk_index -> (
                       match (Table.row level.link.table row_index).(fk_index) with
                       | Value.Null -> []
                       | u -> paths_for deeper u)
                 in
                 List.map
                   (fun rest -> Array.append [| row_index |] rest)
                   continue_with))

let draw t prng =
  let sample = Sample.first_side ~base:(Synopsis.base_of_prng prng) ~profile:t.profile
      ~resolved:t.resolved () in
  let paths = Value.Tbl.create 256 in
  let n0 = ref 0.0 in
  Value.Tbl.iter
    (fun v (_ : Sample.entry) ->
      n0 := !n0 +. float_of_int (Profile.frequency t.profile.Profile.a v);
      match paths_for t.levels v with
      | [] -> ()
      | complete -> Value.Tbl.add paths v complete)
    sample.Sample.entries;
  { sample; paths; n0 = !n0; prepared = t }

let compile_opt table = function
  | Predicate.True -> fun (_ : Value.t array) -> true
  | p -> Predicate.compile p (Table.schema table)

let estimate ?dl_config ?(predicates = []) t synopsis =
  let k = length t.tables in
  let padded =
    List.init k (fun i ->
        match List.nth_opt predicates i with
        | Some p -> p
        | None -> Predicate.True)
  in
  let link_predicates = List.filteri (fun i _ -> i < k - 1) padded in
  let last_predicate = List.nth padded (k - 1) in
  (* per level (rightmost link first), the compiled predicate *)
  let level_pass =
    List.map2
      (fun level predicate -> compile_opt level.link.table predicate)
      t.levels
      (List.rev link_predicates)
  in
  let pass_last = compile_opt t.tables.last last_predicate in
  let sample = synopsis.sample in
  let total_tuples = Sample.total_tuples sample in
  if total_tuples = 0 then 0.0
  else begin
    let base_q = t.resolved.Budget.base_q in
    let filtered = Value.Tbl.create (Value.Tbl.length sample.Sample.entries) in
    let filtered_tuples = ref 0 in
    let virtual_counts = ref [] in
    Value.Tbl.iter
      (fun v (entry : Sample.entry) ->
        let count = Sample.filtered_count sample pass_last entry in
        let sentry = Sample.sentry_passes sample pass_last entry in
        Value.Tbl.add filtered v (count, sentry);
        filtered_tuples := !filtered_tuples + count + (if sentry then 1 else 0);
        if count > 0 && entry.Sample.q_v > 0.0 then begin
          let virtual_count = float_of_int count *. base_q /. entry.Sample.q_v in
          if virtual_count > 0.0 then
            virtual_counts := virtual_count :: !virtual_counts
        end)
      sample.Sample.entries;
    let selectivity =
      float_of_int !filtered_tuples /. float_of_int total_tuples
    in
    (* Virtual-sample population: the sentries sit outside the second-level
       draw (see Estimate.dl_estimate) and must not be scaled by x_v. *)
    let n0_virtual =
      if t.spec.Spec.sentry then
        Float.max 0.0 (synopsis.n0 -. float_of_int (Sample.sentry_count sample))
      else synopsis.n0
    in
    let n0_filtered = n0_virtual *. selectivity in
    let learned =
      match t.spec.Spec.method_ with
      | Spec.Discrete_learning ->
          Some
            (Discrete_learning.learn ?config:dl_config
               (Array.of_list !virtual_counts))
      | Spec.Scaling -> None
    in
    let sentry_spec = t.spec.Spec.sentry in
    let path_passes path =
      let ok = ref true in
      List.iteri
        (fun i pass ->
          if !ok then begin
            let level = List.nth t.levels i in
            if not (pass (Table.row level.link.table path.(i))) then ok := false
          end)
        level_pass;
      !ok
    in
    let total = ref 0.0 in
    Value.Tbl.iter
      (fun v complete_paths ->
        let entry = Value.Tbl.find sample.Sample.entries v in
        let count, sentry = Value.Tbl.find filtered v in
        let last_factor =
          match learned with
          | Some learned ->
              let x_v =
                if count = 0 || entry.Sample.q_v <= 0.0 then 0.0
                else
                  Discrete_learning.probability_of_count learned
                    (float_of_int count *. base_q /. entry.Sample.q_v)
              in
              (x_v *. n0_filtered)
              +. if sentry_spec && sentry then 1.0 else 0.0
          | None ->
              let scaled =
                if count = 0 then 0.0
                else float_of_int count /. entry.Sample.q_v
              in
              scaled +. if sentry_spec && sentry then 1.0 else 0.0
        in
        if last_factor > 0.0 then begin
          let witnesses =
            List.fold_left
              (fun acc path -> if path_passes path then acc + 1 else acc)
              0 complete_paths
          in
          if witnesses > 0 then
            total :=
              !total
              +. (float_of_int witnesses *. last_factor /. entry.Sample.p_v)
        end)
      synopsis.paths;
    !total
  end

let true_size ?(predicates = []) tables =
  validate tables;
  let k = length tables in
  let padded =
    List.init k (fun i ->
        match List.nth_opt predicates i with
        | Some p -> p
        | None -> Predicate.True)
  in
  let link_predicates = List.filteri (fun i _ -> i < k - 1) padded in
  let last_predicate = List.nth padded (k - 1) in
  (* Fold left-to-right: per join value of each link's pk, the number of
     complete passing paths reaching it from the left end. *)
  let path_counts =
    List.fold_left2
      (fun incoming link predicate ->
        let filtered =
          match predicate with
          | Predicate.True -> link.table
          | p -> Predicate.apply p link.table
        in
        let pk_index = Table.column_index filtered link.pk in
        let counts = Value.Tbl.create 1024 in
        Table.iter
          (fun row ->
            let reach =
              match (link.fk, incoming) with
              | None, _ -> 1 (* leftmost table: every row starts a path *)
              | Some fk, Some incoming -> (
                  match row.(Table.column_index filtered fk) with
                  | Value.Null -> 0
                  | u -> (
                      match Value.Tbl.find_opt incoming u with
                      | Some c -> c
                      | None -> 0))
              | Some _, None -> assert false
            in
            if reach > 0 then
              match row.(pk_index) with
              | Value.Null -> ()
              | v ->
                  Value.Tbl.replace counts v
                    (reach
                    + Option.value ~default:0 (Value.Tbl.find_opt counts v)))
          filtered;
        Some counts)
      None tables.links link_predicates
  in
  let path_counts = Option.get path_counts in
  let filtered_last =
    match last_predicate with
    | Predicate.True -> tables.last
    | p -> Predicate.apply p tables.last
  in
  let fk_index = Table.column_index filtered_last tables.last_fk in
  Table.fold
    (fun acc row ->
      match row.(fk_index) with
      | Value.Null -> acc
      | v -> (
          match Value.Tbl.find_opt path_counts v with
          | Some c -> acc + c
          | None -> acc))
    0 filtered_last

let spec t = t.spec
