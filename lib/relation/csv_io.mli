(** Minimal CSV import/export so example programs can persist and reload
    generated datasets. Quoting follows RFC 4180 (double quotes, doubled
    quote escapes); values are parsed back using the schema's column
    types, with empty fields read as [Null].

    Three read modes share one scanner: {!read} raises on the first
    malformed row (historical behaviour), {!read_strict} returns it as a
    located [Error], and {!read_lenient} skips malformed rows and reports
    them as diagnostics — the mode a production ingest wants when one bad
    row must not sink a load. *)

type row_error = {
  line : int;  (** 1-based physical line number (the header is line 1) *)
  reason : string;
      (** human-readable, self-locating: includes the line number and,
          where it applies, the 1-based field index *)
}

type lenient = {
  table : Table.t;  (** the rows that parsed *)
  skipped : row_error list;  (** one per malformed row, in file order *)
  skipped_count : int;  (** [List.length skipped], for quick checks *)
}

val write : string -> Table.t -> unit
(** [write path table] writes a header row (column names) plus one line per
    row. Raises [Sys_error] on IO failure. *)

val read : Schema.t -> string -> Table.t
(** [read schema path] parses a file written by {!write} (or any simple
    CSV with a matching header). Raises [Failure] on malformed input or
    arity mismatch; the message carries the offending line number and
    field index. Prefer {!read_strict} or {!read_lenient} in code that
    must not raise. *)

val read_strict : Schema.t -> string -> (Table.t, row_error) result
(** Like {!read} but the first malformed row comes back as [Error] instead
    of an exception. Raises nothing but [Sys_error] on IO failure. *)

val read_lenient : Schema.t -> string -> lenient
(** Parse every well-formed row, skipping malformed ones (bad quoting,
    wrong arity, unparseable fields) and reporting each as a {!row_error}.
    An empty file yields an empty table with one diagnostic. Raises
    nothing but [Sys_error] on IO failure. *)

val read_auto : string -> Table.t
(** [read_auto path] reads a CSV without a known schema: column names come
    from the header and each column's type is inferred from the data
    (int if every non-empty field parses as an int, else float if every
    non-empty field parses as a number, else string). Raises [Failure] on
    malformed input or an empty file. *)
