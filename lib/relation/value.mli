(** SQL-ish atomic values. Join columns in this repository are typically
    [Int] keys or [Str] titles; [Null] never joins (SQL semantics). *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

val equal : t -> t -> bool
(** Structural equality, except [Null] is not equal to anything including
    itself — matching SQL equijoin semantics. *)

val compare : t -> t -> int
(** Total order for sorting and map keys: Null < Int < Float < Str, with the
    natural order within each constructor. (Unlike {!equal}, [Null] compares
    equal to itself so that containers behave.) *)

val hash : t -> int

val encode : t -> string
(** Stable injective byte rendering (tag byte + payload bits, ints and
    float bits little-endian). Identical across OCaml versions and word
    sizes; used to key per-value PRNG sub-streams and shard routing.
    Distinct values always encode to distinct byte strings. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val type_name : t -> string
(** ["null" | "int" | "float" | "string"] — used in error messages. *)

val as_int : t -> int option
val as_float : t -> float option
(** [as_float] widens [Int] values too. *)

val as_string : t -> string option

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by values. For container purposes [Null] equals
    itself here (unlike {!equal}); callers that implement join semantics
    must skip [Null] keys themselves. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
