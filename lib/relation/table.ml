type t = { schema : Schema.t; rows : Value.t array array }

let create ?(validate = false) schema rows =
  let arity = Schema.arity schema in
  Array.iteri
    (fun i row ->
      if Array.length row <> arity then
        invalid_arg
          (Printf.sprintf "Table.create: row %d has arity %d, schema wants %d" i
             (Array.length row) arity);
      if validate then
        Array.iteri
          (fun j v ->
            if not (Schema.accepts (Schema.type_of schema j) v) then
              invalid_arg
                (Printf.sprintf "Table.create: row %d column %s: %s value" i
                   (Schema.name_of schema j) (Value.type_name v)))
          row)
    rows;
  { schema; rows }

let of_rows schema rows = create schema (Array.of_list rows)

let schema t = t.schema
let cardinality t = Array.length t.rows
let row t i = t.rows.(i)
let iter f t = Array.iter f t.rows
let iteri f t = Array.iteri f t.rows
let fold f init t = Array.fold_left f init t.rows

let column_index t name =
  match Schema.index_of t.schema name with
  | i -> i
  | exception Not_found ->
      invalid_arg (Printf.sprintf "Table: no column named %S" name)

let column_values t name =
  let i = column_index t name in
  Array.map (fun row -> row.(i)) t.rows

let filter predicate t =
  { t with rows = Array.of_seq (Seq.filter predicate (Array.to_seq t.rows)) }

let select_rows t indices =
  { t with rows = Array.map (fun i -> t.rows.(i)) indices }

let frequency_map t name =
  let i = column_index t name in
  let freq = Value.Tbl.create 1024 in
  Array.iter
    (fun row ->
      match row.(i) with
      | Value.Null -> ()
      | v -> (
          match Value.Tbl.find_opt freq v with
          | Some c -> Value.Tbl.replace freq v (c + 1)
          | None -> Value.Tbl.add freq v 1))
    t.rows;
  freq

let group_by t name =
  let i = column_index t name in
  let groups = Value.Tbl.create 1024 in
  Array.iteri
    (fun row_index row ->
      match row.(i) with
      | Value.Null -> ()
      | v -> (
          match Value.Tbl.find_opt groups v with
          | Some acc -> acc := row_index :: !acc
          | None -> Value.Tbl.add groups v (ref [ row_index ])))
    t.rows;
  let out = Value.Tbl.create (Value.Tbl.length groups) in
  Value.Tbl.iter
    (fun v acc ->
      let arr = Array.of_list !acc in
      (* rows were prepended, so reverse into increasing order *)
      let n = Array.length arr in
      let sorted = Array.init n (fun k -> arr.(n - 1 - k)) in
      Value.Tbl.add out v sorted)
    groups;
  out

let distinct_count t name = Value.Tbl.length (frequency_map t name)

(* FNV-1a over a canonical byte rendering of the schema and every cell.
   64-bit, content-only: two tables with equal schemas and equal rows in
   equal order fingerprint identically on any platform. Used by the
   synopsis store to refuse rehydrating sampled row indices against data
   that is not the data they were drawn from. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_int64 h x =
  let h = ref h in
  for shift = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical x (shift * 8)))
  done;
  !h

let fnv_string h s =
  let h = ref (fnv_int64 h (Int64.of_int (String.length s))) in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let fnv_value h v =
  match v with
  | Value.Null -> fnv_byte h 0
  | Value.Int x -> fnv_int64 (fnv_byte h 1) (Int64.of_int x)
  | Value.Float x -> fnv_int64 (fnv_byte h 2) (Int64.bits_of_float x)
  | Value.Str s -> fnv_string (fnv_byte h 3) s

let fingerprint t =
  let h = ref (fnv_int64 fnv_offset (Int64.of_int (cardinality t))) in
  List.iter
    (fun (name, ty) ->
      h := fnv_string !h name;
      h :=
        fnv_byte !h
          (match ty with
          | Schema.T_int -> 0
          | Schema.T_float -> 1
          | Schema.T_string -> 2))
    (Schema.columns t.schema);
  Array.iter (fun row -> Array.iter (fun v -> h := fnv_value !h v) row) t.rows;
  !h

let pp_head ?(limit = 10) fmt t =
  Format.fprintf fmt "%a (%d rows)@." Schema.pp t.schema (cardinality t);
  let shown = min limit (cardinality t) in
  for i = 0 to shown - 1 do
    let cells = Array.to_list (Array.map Value.to_string t.rows.(i)) in
    Format.fprintf fmt "  %s@." (String.concat " | " cells)
  done;
  if cardinality t > shown then Format.fprintf fmt "  ...@."
