let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let encode_field v =
  match v with
  | Value.Null -> ""
  | _ ->
      let s = Value.to_string v in
      if needs_quoting s then
        let buffer = Buffer.create (String.length s + 2) in
        Buffer.add_char buffer '"';
        String.iter
          (fun c ->
            if c = '"' then Buffer.add_string buffer "\"\""
            else Buffer.add_char buffer c)
          s;
        Buffer.add_char buffer '"';
        Buffer.contents buffer
      else s

let write path table =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let schema = Table.schema table in
      let names = List.map fst (Schema.columns schema) in
      output_string oc (String.concat "," names);
      output_char oc '\n';
      Table.iter
        (fun row ->
          let fields = Array.to_list (Array.map encode_field row) in
          output_string oc (String.concat "," fields);
          output_char oc '\n')
        table)

type row_error = { line : int; reason : string }

type lenient = { table : Table.t; skipped : row_error list; skipped_count : int }

(* Split one CSV record into fields, handling quoted fields. Assumes the
   record contains no embedded newlines (we never write any: generated data
   has no newlines in strings). [line_number] is only used to locate
   errors. *)
let split_record_checked ~line_number line =
  let fields = ref [] in
  let count = ref 0 in
  let buffer = Buffer.create 32 in
  let n = String.length line in
  let rec field i =
    if i >= n then finish i
    else if line.[i] = '"' then quoted (i + 1)
    else plain i
  and plain i =
    if i >= n || line.[i] = ',' then finish i
    else begin
      Buffer.add_char buffer line.[i];
      plain (i + 1)
    end
  and quoted i =
    if i >= n then
      Error
        (Printf.sprintf "line %d: unterminated quote in field %d" line_number
           (!count + 1))
    else if line.[i] = '"' then
      if i + 1 < n && line.[i + 1] = '"' then begin
        Buffer.add_char buffer '"';
        quoted (i + 2)
      end
      else finish (i + 1)
    else begin
      Buffer.add_char buffer line.[i];
      quoted (i + 1)
    end
  and finish i =
    fields := Buffer.contents buffer :: !fields;
    incr count;
    Buffer.clear buffer;
    if i < n && line.[i] = ',' then field (i + 1) else Ok (List.rev !fields)
  in
  field 0

let split_record ?(line_number = 0) line =
  match split_record_checked ~line_number line with
  | Ok fields -> fields
  | Error reason -> failwith reason

let parse_field ty raw =
  if String.equal raw "" then Value.Null
  else
    match ty with
    | Schema.T_int -> Value.Int (int_of_string raw)
    | Schema.T_float -> Value.Float (float_of_string raw)
    | Schema.T_string -> Value.Str raw

let type_name = function
  | Schema.T_int -> "int"
  | Schema.T_float -> "float"
  | Schema.T_string -> "string"

(* Parse one record into a row under [types]; all failure modes become a
   located reason. *)
let parse_record ~line_number ~arity ~types line =
  match split_record_checked ~line_number line with
  | Error reason -> Error { line = line_number; reason }
  | Ok fields ->
      if List.length fields <> arity then
        Error
          {
            line = line_number;
            reason =
              Printf.sprintf "line %d: expected %d fields, got %d" line_number
                arity (List.length fields);
          }
      else begin
        let row = Array.make arity Value.Null in
        let bad = ref None in
        List.iteri
          (fun j raw ->
            if !bad = None then
              match parse_field types.(j) raw with
              | v -> row.(j) <- v
              | exception _ ->
                  bad :=
                    Some
                      {
                        line = line_number;
                        reason =
                          Printf.sprintf "line %d: bad %s field %d: %S"
                            line_number (type_name types.(j)) (j + 1) raw;
                      })
          fields;
        match !bad with None -> Ok row | Some e -> Error e
      end

(* Shared scan loop: [on_error] decides strict (stop) vs lenient (skip). *)
let fold_records schema path ~on_row ~on_error =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let arity = Schema.arity schema in
      let types = Array.init arity (Schema.type_of schema) in
      (match input_line ic with
      | (_ : string) -> () (* header discarded; schema is authoritative *)
      | exception End_of_file ->
          ignore (on_error { line = 1; reason = "empty CSV file" } : bool));
      let line_number = ref 1 in
      let stop = ref false in
      (try
         while not !stop do
           let line = input_line ic in
           incr line_number;
           if not (String.equal line "") then
             match parse_record ~line_number:!line_number ~arity ~types line with
             | Ok row -> on_row row
             | Error e -> if not (on_error e) then stop := true
         done
       with End_of_file -> ()))

let read_lenient schema path =
  let rows = ref [] and skipped = ref [] in
  fold_records schema path
    ~on_row:(fun row -> rows := row :: !rows)
    ~on_error:(fun e ->
      skipped := e :: !skipped;
      true);
  let skipped = List.rev !skipped in
  {
    table = Table.create schema (Array.of_list (List.rev !rows));
    skipped;
    skipped_count = List.length skipped;
  }

let read_strict schema path =
  let rows = ref [] and first_error = ref None in
  fold_records schema path
    ~on_row:(fun row -> rows := row :: !rows)
    ~on_error:(fun e ->
      first_error := Some e;
      false);
  match !first_error with
  | Some e -> Error e
  | None -> Ok (Table.create schema (Array.of_list (List.rev !rows)))

let read schema path =
  match read_strict schema path with
  | Ok table -> table
  | Error { reason; _ } -> failwith reason

let read_auto path =
  (* Two passes: sniff column types, then parse with the inferred schema. *)
  let ic = open_in path in
  let header, records =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let header =
          match input_line ic with
          | line -> split_record ~line_number:1 line
          | exception End_of_file -> failwith "empty CSV file"
        in
        (* keep each record's real file line: blank lines are skipped, so
           a record's position in the list is not its line number *)
        let records = ref [] in
        let line_number = ref 1 in
        (try
           while true do
             let line = input_line ic in
             incr line_number;
             if not (String.equal line "") then
               records :=
                 (!line_number, split_record ~line_number:!line_number line)
                 :: !records
           done
         with End_of_file -> ());
        (header, List.rev !records))
  in
  let arity = List.length header in
  let rank = function Schema.T_int -> 0 | Schema.T_float -> 1 | Schema.T_string -> 2 in
  let widen current field =
    if String.equal field "" then current
    else
      let fits ty =
        match ty with
        | Schema.T_int -> int_of_string_opt field <> None
        | Schema.T_float -> float_of_string_opt field <> None
        | Schema.T_string -> true
      in
      let candidates = [ Schema.T_int; Schema.T_float; Schema.T_string ] in
      List.find
        (fun ty -> rank ty >= rank current && fits ty)
        candidates
  in
  let types = Array.make arity Schema.T_int in
  List.iter
    (fun (line_number, fields) ->
      if List.length fields <> arity then
        failwith
          (Printf.sprintf "line %d: expected %d fields, got %d" line_number
             arity (List.length fields));
      List.iteri (fun j field -> types.(j) <- widen types.(j) field) fields)
    records;
  let schema = Schema.make (List.mapi (fun j name -> (name, types.(j))) header) in
  let rows =
    List.map
      (fun (_, fields) ->
        let row = Array.make arity Value.Null in
        List.iteri (fun j field -> row.(j) <- parse_field types.(j) field) fields;
        row)
      records
  in
  Table.create schema (Array.of_list rows)
