(** Selection predicates over rows.

    Supports the predicate classes the paper's experiments use: constant
    comparisons (e.g. [c_acctbal > 8000]) and SQL [LIKE] patterns of the
    form ['prefix%'] / ['%substring%'] (the Table VII workload). Logic is
    two-valued: any comparison against [Null] is false. *)

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Compare of comparison * string * Value.t  (** [column <op> constant] *)
  | Like_prefix of string * string  (** [column LIKE "prefix%"] *)
  | Like_contains of string * string  (** [column LIKE "%substring%"] *)
  | And of t * t
  | Or of t * t
  | Not of t

val compile : t -> Schema.t -> Value.t array -> bool
(** [compile p schema] resolves column names once and returns a fast row
    predicate. Raises [Invalid_argument] on unknown columns. *)

val string_has_prefix : prefix:string -> string -> bool
val string_contains : needle:string -> string -> bool
(** The exact string tests behind [Like_prefix] / [Like_contains], exposed
    so columnar scans (which evaluate predicates against materialized
    column arrays rather than rows) cannot drift from row semantics. *)

val apply : t -> Table.t -> Table.t
(** Rows of the table satisfying the predicate. *)

val selectivity : t -> Table.t -> float
(** Fraction of rows satisfying the predicate; 0 on an empty table. *)

val to_string : t -> string
(** SQL-flavoured rendering, for logs and examples. *)

val conj : t list -> t
(** Conjunction of a list, [True] when empty. *)
