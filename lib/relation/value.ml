type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

let equal a b =
  match (a, b) with
  | Null, _ | _, Null -> false
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | Str x, Str y -> String.equal x y
  | (Int _ | Float _ | Str _), _ -> false

let constructor_rank = function Null -> 0 | Int _ -> 1 | Float _ -> 2 | Str _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (constructor_rank a) (constructor_rank b)

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash x
  | Float x -> Hashtbl.hash x
  | Str s -> Hashtbl.hash s

(* Stable injective byte rendering: one tag byte, then the payload bits.
   Pure Int64/string arithmetic — the same value encodes to the same bytes
   on every OCaml version and word size, unlike [Marshal] or
   [Hashtbl.hash]. Used to name per-value PRNG sub-streams and to route
   values to shards, so it must never change silently. *)
let encode v =
  let buf = Buffer.create 16 in
  (match v with
  | Null -> Buffer.add_char buf '\x00'
  | Int x ->
      Buffer.add_char buf '\x01';
      Buffer.add_int64_le buf (Int64.of_int x)
  | Float x ->
      Buffer.add_char buf '\x02';
      Buffer.add_int64_le buf (Int64.bits_of_float x)
  | Str s ->
      Buffer.add_char buf '\x03';
      Buffer.add_string buf s);
  Buffer.contents buf

let to_string = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x -> Printf.sprintf "%g" x
  | Str s -> s

let pp fmt v = Format.pp_print_string fmt (to_string v)

let type_name = function
  | Null -> "null"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"

let as_int = function Int x -> Some x | Null | Float _ | Str _ -> None

let as_float = function
  | Float x -> Some x
  | Int x -> Some (float_of_int x)
  | Null | Str _ -> None

let as_string = function Str s -> Some s | Null | Int _ | Float _ -> None

module Key = struct
  type nonrec t = t

  let equal a b = match (a, b) with Null, Null -> true | _ -> equal a b
  let hash = hash
  let compare = compare
end

module Tbl = Hashtbl.Make (Key)
module Map = Map.Make (Key)
module Set = Set.Make (Key)
