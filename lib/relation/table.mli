(** In-memory row-major tables.

    A table is immutable once built; rows are exposed without copying, so
    callers must not mutate them. Sized for the experiments in this
    repository (up to a few million rows). *)

type t

val create : ?validate:bool -> Schema.t -> Value.t array array -> t
(** [create schema rows] wraps [rows] (taken by reference). With
    [~validate:true] (default [false]) every cell is checked against the
    schema's column types; arity is always checked. *)

val of_rows : Schema.t -> Value.t array list -> t

val schema : t -> Schema.t
val cardinality : t -> int
val row : t -> int -> Value.t array
val iter : (Value.t array -> unit) -> t -> unit
val iteri : (int -> Value.t array -> unit) -> t -> unit
val fold : ('a -> Value.t array -> 'a) -> 'a -> t -> 'a

val column_index : t -> string -> int
(** Raises [Invalid_argument] naming the column when absent. *)

val column_values : t -> string -> Value.t array
(** All values (including duplicates and nulls) of one column, in row
    order. *)

val filter : (Value.t array -> bool) -> t -> t
(** Rows satisfying the predicate, sharing row arrays with the original. *)

val select_rows : t -> int array -> t
(** Sub-table with exactly the given row indices (shared row arrays). *)

val frequency_map : t -> string -> int Value.Tbl.t
(** Per-value occurrence counts of a column, skipping [Null]s (which never
    participate in equijoins). *)

val group_by : t -> string -> int array Value.Tbl.t
(** Row indices grouped by the value of a column, skipping [Null]s. Index
    arrays are in increasing row order. *)

val distinct_count : t -> string -> int
(** Number of distinct non-null values in a column — the [|V_A|] of the
    paper's join value density. *)

val pp_head : ?limit:int -> Format.formatter -> t -> unit
(** Debug printer: schema plus the first [limit] (default 10) rows. *)

val fingerprint : t -> int64
(** Content fingerprint (64-bit FNV-1a over schema and rows, in row
    order). Equal tables fingerprint equally on every platform; the
    synopsis store records it so persisted row indices are never
    rehydrated against different base data. Not cryptographic. *)
