(** Percentile-bootstrap confidence intervals over repeated estimation
    runs. The paper reports point medians; a system shipping these
    estimators would also want to say how much a reported estimate can be
    trusted, and resampling the run results is the assumption-free way to
    get there (the estimators' sampling distributions are decidedly
    non-Gaussian — see the infinite-q-error failure masses). *)

type interval = {
  lower : float;
  point : float;  (** the statistic on the original runs *)
  upper : float;
}

val confidence_interval :
  ?replicates:int ->
  ?level:float ->
  statistic:(float array -> float) ->
  Repro_util.Prng.t ->
  float array ->
  interval
(** [confidence_interval ~statistic prng runs] resamples [runs] with
    replacement [replicates] times (default 1000) and returns the
    [level] (default 0.95) percentile interval of the statistic. Raises
    [Invalid_argument] on an empty input or a level outside (0, 1).

    No-retention contract: to avoid [replicates] array allocations, ONE
    resample buffer is reused across every replicate and handed to
    [statistic] each time. [statistic] must read it during the call and
    must not retain or mutate it — stashing the array (or a closure over
    it) yields whichever resample happened to be drawn last. [statistic]
    must also tolerate non-finite entries: runs with [inf] q-error mass
    produce [inf] resamples, and the interval then honestly reports
    [upper = infinity] rather than a NaN endpoint. *)

val median_interval :
  ?replicates:int -> ?level:float -> Repro_util.Prng.t -> float array -> interval
(** The common case: a CI on the median estimate. *)
