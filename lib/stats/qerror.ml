let compute ~truth ~estimate =
  if truth < 0.0 then invalid_arg "Qerror.compute: negative truth";
  if Float.is_nan estimate then Float.nan
  else
    let estimate = Float.max 0.0 estimate in
    if truth = 0.0 && estimate = 0.0 then 1.0
    else if truth = 0.0 || estimate = 0.0 then Float.infinity
    else Float.max truth estimate /. Float.min truth estimate

let is_failure q = q = Float.infinity || Float.is_nan q
let is_zero_mismatch q = q = Float.infinity
let is_garbage q = Float.is_nan q

let to_string q =
  if Float.is_nan q then "nan"
  else if q = Float.infinity then "inf"
  else if q >= 1e6 then Printf.sprintf "%.3e" q
  else Printf.sprintf "%.2f" q
