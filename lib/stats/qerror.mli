(** The q-error metric of Moerkotte et al. used throughout the paper's
    evaluation: [qerror = max(J, J_hat) / min(J, J_hat)].

    Conventions (matching how the paper reports results): a zero estimate
    for a non-zero truth — the "filtered sample is empty" failure mode — is
    infinity; estimating zero when the truth is zero is a perfect 1. A NaN
    estimate (the estimator returned garbage, not a too-small sample) maps
    to a NaN q-error so the two failure modes stay distinguishable
    downstream. *)

val compute : truth:float -> estimate:float -> float
(** Requires [truth >= 0] and treats a negative estimate as 0 (estimators
    never produce one, but clamping keeps the metric total). A NaN
    [estimate] yields [nan], never [infinity]. *)

val is_failure : float -> bool
(** [is_failure q] — whether a q-error value represents either failure case
    (infinite zero-mismatch or NaN garbage). *)

val is_zero_mismatch : float -> bool
(** The paper's "infinity" case: one side of max/min was zero while the
    other was not. *)

val is_garbage : float -> bool
(** The estimator produced NaN — a bug or numerically poisoned pipeline,
    not a sampling miss. *)

val to_string : float -> string
(** Renders like the paper's tables: two decimals, ["inf"] for the
    zero-mismatch failure, ["nan"] for a garbage estimate. *)
