(* Analytic estimation variance for the correlated-sampling estimators
   (paper Sec. III): with value-inclusion probability p_v and row-level
   Bernoulli rates q (side A) and u (side B), the scaling estimator's
   variance decomposes into one independent term per shared join value.
   The terms are exact for the true per-value frequencies a_v, b_v; at
   estimation time callers plug in the unbiased sample frequencies, which
   can push an individual term (or the total) below zero — hence the
   clamp in [of_terms]. *)

let scaling_term ~p ~q ~u ~a ~b =
  if p <= 0.0 || q <= 0.0 || u <= 0.0 then
    invalid_arg "Variance.scaling_term: probabilities must be positive";
  let second a rate = (a *. a) +. ((a -. 1.0) *. (1.0 -. rate) /. rate) in
  (second a q *. second b u /. p) -. (a *. b *. a *. b)

let of_terms terms = Float.max 0.0 (List.fold_left ( +. ) 0.0 terms)

(* Inverse standard-normal CDF, Acklam's rational approximation (relative
   error < 1.2e-9 over (0,1)); the stdlib has no erf, and nine significant
   digits is far beyond what a plug-in variance estimate deserves. *)
let normal_quantile p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Variance.normal_quantile: p must be in (0, 1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let horner coeffs x =
    Array.fold_left (fun acc coeff -> (acc *. x) +. coeff) 0.0 coeffs
  in
  let p_low = 0.02425 in
  let tail p =
    let q = sqrt (-2.0 *. log p) in
    horner c q /. ((horner d q *. q) +. 1.0)
  in
  if p < p_low then tail p
  else if p > 1.0 -. p_low then -.tail (1.0 -. p)
  else
    let q = p -. 0.5 in
    let r = q *. q in
    q *. horner a r /. ((horner b r *. r) +. 1.0)

let z_of_level level =
  if level <= 0.0 || level >= 1.0 then
    invalid_arg "Variance.z_of_level: level must be in (0, 1)";
  normal_quantile ((1.0 +. level) /. 2.0)

let normal_interval ?(level = 0.95) ~point ~variance () =
  if Float.is_nan variance || variance < 0.0 then
    { Bootstrap.lower = Float.nan; point; upper = Float.nan }
  else
    let half = z_of_level level *. sqrt variance in
    {
      Bootstrap.lower = Float.max 0.0 (point -. half);
      point;
      upper = point +. half;
    }

let mean_interval ?(level = 0.95) xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Variance.mean_interval: need at least two runs";
  let point = Repro_util.Summary.mean xs in
  let variance = Repro_util.Summary.variance xs /. float_of_int n in
  normal_interval ~level ~point ~variance ()
