(** Analytic (closed-form) estimation variance and normal-approximation
    confidence intervals for the correlated-sampling estimators — the
    paper's Sec. III variance decomposition, packaged so a SINGLE synopsis
    can report an interval without repeated estimation runs.

    The variance of the scaling estimator decomposes into one independent
    term per shared join value v (inclusion probability [p], row-survival
    rates [q] on side A and [u] on side B, per-value frequencies [a], [b]):

    {[ (1/p) (a^2 + (a-1)(1-q)/q) (b^2 + (b-1)(1-u)/u) - (ab)^2 ]}

    Callers walk their synopsis, emit one {!scaling_term} per value using
    plug-in frequency estimates, and sum with {!of_terms}. *)

val scaling_term : p:float -> q:float -> u:float -> a:float -> b:float -> float
(** One value's variance contribution. Raises [Invalid_argument] unless
    [p], [q], [u] are positive; a plug-in term may legitimately be
    negative (the estimate of a difference of moments), so no clamping
    happens here. *)

val of_terms : float list -> float
(** Sum of per-value terms, clamped at zero — a total plug-in variance
    below zero carries no information beyond "tiny". *)

val normal_quantile : float -> float
(** Inverse standard-normal CDF (Acklam's rational approximation,
    |relative error| < 1.2e-9). Raises [Invalid_argument] outside (0,1). *)

val z_of_level : float -> float
(** Two-sided critical value: [z_of_level 0.95] is [normal_quantile 0.975]
    (about 1.96). Raises [Invalid_argument] outside (0,1). *)

val normal_interval :
  ?level:float -> point:float -> variance:float -> unit -> Bootstrap.interval
(** Normal-approximation CI around [point] (default [level] 0.95). The
    lower endpoint is clamped at 0 — every estimate in this repo is a join
    cardinality. A NaN or negative [variance] yields NaN endpoints (the
    honest "no interval available"), never an exception. *)

val mean_interval : ?level:float -> float array -> Bootstrap.interval
(** CLT interval on the mean of repeated runs: sample variance over n.
    The cheap cross-check against {!Bootstrap.confidence_interval} used by
    the bake-off's agreement tests. Raises [Invalid_argument] on fewer
    than two runs. *)
