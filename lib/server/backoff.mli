(** Retry with jittered exponential backoff, bounded by a deadline.

    Transient store faults (a reader racing a writer, an injected chaos
    fault) deserve a few retries; correlated retry storms do not. Delays
    are therefore "full jitter": uniform in [0, cap) where the cap doubles
    per attempt — drawn from the caller's keyed {!Repro_util.Prng} stream,
    so every schedule replays from a seed. Sleeping goes through an
    injectable {!Repro_util.Clock.sleeper}, so tests run in zero wall
    time. *)

type policy = {
  attempts : int;  (** total tries, first included; min 1 *)
  base_s : float;  (** delay cap before the first retry *)
  multiplier : float;  (** cap growth per attempt *)
  max_delay_s : float;  (** hard cap on any single delay *)
}

val default : policy
(** 3 attempts, 2ms base, doubling, capped at 50ms. *)

val delay : policy -> Repro_util.Prng.t -> attempt:int -> float
(** The jittered delay after failed attempt [attempt] (0-based):
    uniform in [0, min (base_s * multiplier^attempt) max_delay_s). *)

val retry :
  ?sleep:Repro_util.Clock.sleeper ->
  ?deadline:Deadline.t ->
  policy ->
  Repro_util.Prng.t ->
  (unit -> ('a, 'e) result) ->
  ('a, 'e) result * int
(** [retry policy prng f] runs [f] up to [policy.attempts] times, sleeping
    the jittered delay between tries, and returns the first [Ok] (or the
    last [Error]) along with the number of attempts made. With [deadline],
    no further attempt starts once it has expired, and each sleep is
    truncated to the remaining budget — retrying never blows through a
    request deadline. *)
