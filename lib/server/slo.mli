(** Rolling-window SLO view of the serving daemon: live p50/p95/p99
    latency, error rate, and shed rate over the last [window_s] seconds,
    built on {!Repro_obs.Rolling} so memory stays fixed and reads are
    deterministic at any [--jobs].

    One instance per server; workers call {!record} once per request
    (reply class + wall seconds), readers take a {!snapshot} — the [slo]
    wire verb renders it as one line, the [metrics] verb exports it as
    [server.slo.*] gauges. *)

type t

val create : ?slots:int -> now:(unit -> float) -> window_s:float -> unit -> t
(** [now] is the injectable clock; [slots] as in {!Repro_obs.Rolling}. *)

val record : t -> cls:string -> wall_s:float -> unit
(** Account one request. [cls] is the reply class
    ({!Protocol.reply_class}): [deadline_exceeded]/[err] count as errors,
    [shed] as shed. Non-finite [wall_s] skips the latency histogram
    (shed connections have no serve time). *)

type snapshot = {
  s_window_s : float;
  s_requests : int;  (** requests inside the window *)
  s_p50 : float;  (** seconds; 0 when the window is empty *)
  s_p95 : float;
  s_p99 : float;
  s_error_rate : float;  (** errors / requests; 0 when empty *)
  s_shed_rate : float;
}

val snapshot : t -> snapshot

val line : snapshot -> string
(** The [slo] verb's reply body (after the [ok ] status word):
    [window=<g> requests=<d> p50=<.6f> p95=... p99=... error_rate=<.4f>
    shed_rate=<.4f>]. *)

val set_gauges : t -> Repro_obs.Obs.ctx -> unit
(** Export the current snapshot as [server.slo.*] gauges. *)
