module Clock = Repro_util.Clock

type t = { clock : Clock.t; expires : float; budget : float }

let check budget_s =
  if not (Float.is_finite budget_s) || budget_s < 0.0 then
    invalid_arg
      (Printf.sprintf "Deadline: budget must be finite and >= 0 (got %g)"
         budget_s)

let anchored ?(clock = Clock.wall) ~start ~budget_s () =
  check budget_s;
  { clock; expires = start +. budget_s; budget = budget_s }

let make ?(clock = Clock.wall) ~budget_s () =
  anchored ~clock ~start:(clock ()) ~budget_s ()

let budget_s t = t.budget
let remaining t = Float.max 0.0 (t.expires -. t.clock ())
let exceeded t = t.expires -. t.clock () <= 0.0
let fault ~what t = Csdl.Fault.Timeout { what; budget_s = t.budget }
