(** Per-key circuit breakers over the synopsis-load path.

    A synopsis key whose loads keep failing (torn store, fingerprint
    drift, injected chaos) should stop consuming retry budgets on every
    request: after [threshold] consecutive failures the breaker {e trips}
    and further loads of that key are refused outright for [cooldown_s]
    seconds — callers degrade immediately instead of waiting out doomed
    retries. After the cooldown one probe is allowed through (half-open);
    its success closes the breaker, its failure re-trips it.

    Domain-safe: every transition runs under one mutex. Time comes from an
    injectable {!Repro_util.Clock}, so tests drive cooldowns with
    {!Repro_util.Clock.shared_clock}. *)

type config = {
  threshold : int;  (** consecutive failures before tripping; min 1 *)
  cooldown_s : float;  (** open duration before a half-open probe *)
}

val default_config : config
(** threshold 5, cooldown 1s. *)

type t

val create :
  ?obs:Repro_obs.Obs.ctx -> ?clock:Repro_util.Clock.t -> config -> t
(** A live [obs] context counts trips ([server.breaker.trips{key}]) and
    refused acquisitions ([server.breaker.rejected]). *)

val acquire : t -> string -> [ `Proceed | `Open of float ]
(** Ask to attempt a load of [key]. [`Open remaining_s] means the breaker
    is open (or another probe is in flight) — do not try. [`Proceed]
    reserves the half-open probe slot when the cooldown has just elapsed;
    the caller must then report {!success} or {!failure}. *)

val success : t -> string -> unit
(** A load of [key] succeeded: close the breaker, reset the failure
    count. *)

val failure : t -> string -> unit
(** A load attempt of [key] failed: bump the consecutive-failure count,
    tripping the breaker at [threshold]; a half-open probe failure
    re-trips immediately. *)

val state : t -> string -> [ `Closed of int | `Open | `Half_open ]
(** Current state ([`Closed n] carries the consecutive-failure count).
    Keys never seen are [`Closed 0]. *)

val trips : t -> int
(** Total trips across all keys since creation. *)
