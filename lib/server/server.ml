module Clock = Repro_util.Clock
module Obs = Repro_obs.Obs

type config = {
  host : string;
  port : int;
  jobs : int;
  queue_capacity : int;
  queue_policy : Admission.policy;
  default_deadline_s : float;
  io_timeout_s : float;
  retry_after_s : float;
}

let default_config ~port =
  {
    host = "127.0.0.1";
    port;
    jobs = 4;
    queue_capacity = 64;
    queue_policy = Admission.Reject;
    default_deadline_s = 1.0;
    io_timeout_s = 10.0;
    retry_after_s = 0.05;
  }

type conn = { fd : Unix.file_descr; accepted_at : float }

type t = {
  config : config;
  obs : Obs.ctx;
  clock : Clock.t;
  engine : Engine.t;
  listener : Unix.file_descr;
  queue : conn Admission.t;
  stopping : bool Atomic.t;
}

let create ?(obs = Obs.null) ?(clock = Clock.wall) config engine =
  let config = { config with jobs = max 1 config.jobs } in
  let addr =
    Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port)
  in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener addr;
     Unix.listen listener 128
   with exn ->
     Unix.close listener;
     raise exn);
  Obs.count obs ~labels:[ ("class", "shed") ] "server.outcome" 0;
  Obs.count obs "server.connection.errors" 0;
  {
    config;
    obs;
    clock;
    engine;
    listener;
    queue = Admission.create ~obs ~policy:config.queue_policy
        ~capacity:config.queue_capacity ();
    stopping = Atomic.make false;
  }

let port t =
  match Unix.getsockname t.listener with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> assert false

let stop t = Atomic.set t.stopping true

(* Best-effort write + close for connections we are turning away; a dead
   peer must not take the accept loop down with it. *)
let shed_and_close t conn =
  Obs.count t.obs "server.requests.total" 1;
  Obs.count t.obs ~labels:[ ("class", "shed") ] "server.outcome" 1;
  (try
     let line = Protocol.shed_line ~retry_after_s:t.config.retry_after_s in
     let bytes = Bytes.of_string (line ^ "\n") in
     ignore (Unix.write conn.fd bytes 0 (Bytes.length bytes))
   with _ -> ());
  try Unix.close conn.fd with _ -> ()

let handle_request t ~conn ~first oc line =
  match Protocol.parse_request line with
  | Error e -> output_string oc (Protocol.err_line e ^ "\n")
  | Ok Protocol.Quit ->
      output_string oc "ok bye\n";
      raise Exit
  | Ok Protocol.Health -> output_string oc "ok serving\n"
  | Ok Protocol.Ready ->
      output_string oc
        (Printf.sprintf "ok ready keys=%d\n"
           (List.length (Engine.keys t.engine)))
  | Ok Protocol.Keys ->
      output_string oc
        ("ok " ^ String.concat " " (Engine.keys t.engine) ^ "\n")
  | Ok Protocol.Reload -> (
      match Engine.reload t.engine with
      | Ok n -> output_string oc (Printf.sprintf "ok reloaded keys=%d\n" n)
      | Error fault ->
          output_string oc
            (Protocol.err_line (Csdl.Fault.error_to_string fault) ^ "\n"))
  | Ok Protocol.Metrics ->
      let body = Option.value ~default:"" (Obs.prometheus t.obs) in
      output_string oc (Printf.sprintf "ok %d\n" (String.length body));
      output_string oc body
  | Ok (Protocol.Estimate { key; deadline_s; pred_a; pred_b }) ->
      if not (Engine.mem t.engine key) then
        output_string oc (Protocol.err_line ("unknown key " ^ key) ^ "\n")
      else begin
        let budget_s =
          Option.value ~default:t.config.default_deadline_s deadline_s
        in
        let deadline =
          if first then
            Deadline.anchored ~clock:t.clock ~start:conn.accepted_at
              ~budget_s ()
          else Deadline.make ~clock:t.clock ~budget_s ()
        in
        let outcome =
          Engine.handle t.engine ~deadline ~key ?pred_a ?pred_b ()
        in
        output_string oc (Protocol.render_outcome outcome ^ "\n")
      end

let handle_conn t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let oc = Unix.out_channel_of_descr conn.fd in
  let first = ref true in
  (try
     let rec loop () =
       let line = input_line ic in
       handle_request t ~conn ~first:!first oc line;
       first := false;
       flush oc;
       loop ()
     in
     loop ()
   with
  | End_of_file | Exit -> ()
  | Unix.Unix_error _ | Sys_error _ | Sys_blocked_io ->
      Obs.count t.obs "server.connection.errors" 1);
  (try flush oc with _ -> ());
  (* closing the out channel closes the underlying fd; _noerr because the
     peer may already be gone *)
  close_out_noerr oc

let worker_loop t () =
  let rec loop () =
    match Admission.take t.queue with
    | None -> ()
    | Some conn ->
        (try handle_conn t conn
         with _ -> Obs.count t.obs "server.connection.errors" 1);
        loop ()
  in
  loop ()

let serve t =
  let workers =
    List.init t.config.jobs (fun _ -> Domain.spawn (worker_loop t))
  in
  let rec accept_loop () =
    if Atomic.get t.stopping then ()
    else begin
      (match Unix.select [ t.listener ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listener with
          | exception Unix.Unix_error _ -> ()
          | fd, _peer -> (
              (try
                 Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.io_timeout_s;
                 Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.io_timeout_s
               with Unix.Unix_error _ -> ());
              let conn = { fd; accepted_at = t.clock () } in
              match Admission.offer t.queue conn with
              | Admission.Admitted -> ()
              | Admission.Rejected | Admission.Closed -> shed_and_close t conn
              | Admission.Displaced oldest -> shed_and_close t oldest))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  Admission.close t.queue;
  List.iter Domain.join workers
