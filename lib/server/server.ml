module Clock = Repro_util.Clock
module Obs = Repro_obs.Obs
module Access_log = Repro_obs.Access_log
module Request_ctx = Repro_obs.Request_ctx

type config = {
  host : string;
  port : int;
  jobs : int;
  queue_capacity : int;
  queue_policy : Admission.policy;
  default_deadline_s : float;
  io_timeout_s : float;
  retry_after_s : float;
}

let default_config ~port =
  {
    host = "127.0.0.1";
    port;
    jobs = 4;
    queue_capacity = 64;
    queue_policy = Admission.Reject;
    default_deadline_s = 1.0;
    io_timeout_s = 10.0;
    retry_after_s = 0.05;
  }

type conn = { fd : Unix.file_descr; accepted_at : float }

type t = {
  config : config;
  obs : Obs.ctx;
  clock : Clock.t;
  engine : Engine.t;
  listener : Unix.file_descr;
  queue : conn Admission.t;
  stopping : bool Atomic.t;
  access_log : Access_log.t option;
      (* owned by the caller: the server never closes it *)
  slo : Slo.t;
  req_gen : Request_ctx.gen;
}

let create ?(obs = Obs.null) ?(clock = Clock.wall) ?access_log
    ?(slo_window_s = 60.0) ?(request_seed = 0) config engine =
  let config = { config with jobs = max 1 config.jobs } in
  let addr =
    Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port)
  in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener addr;
     Unix.listen listener 128
   with exn ->
     Unix.close listener;
     raise exn);
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Obs.count obs ~labels:[ ("class", "shed") ] "server.outcome" 0;
  Obs.count obs "server.connection.errors" 0;
  Obs.set_build_info obs ~store_version:Csdl.Synopsis_store.version
    ~git:
      (Option.value ~default:"unknown" (Sys.getenv_opt "REPRO_GIT_DESCRIBE"));
  {
    config;
    obs;
    clock;
    engine;
    listener;
    queue = Admission.create ~obs ~policy:config.queue_policy
        ~capacity:config.queue_capacity ();
    stopping = Atomic.make false;
    access_log;
    slo = Slo.create ~now:clock ~window_s:slo_window_s ();
    req_gen =
      Request_ctx.generator ~seed:request_seed
        (Printf.sprintf "server/%s:%d" config.host bound_port);
  }

let port t =
  match Unix.getsockname t.listener with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> assert false

let stop t = Atomic.set t.stopping true

let slo_snapshot t = Slo.snapshot t.slo

let log_record t r =
  match t.access_log with Some l -> Access_log.write l r | None -> ()

let fresh_id t = (Request_ctx.fresh t.req_gen).Request_ctx.id

(* Best-effort write + close for connections we are turning away; a dead
   peer must not take the accept loop down with it. A shed connection's
   queries are never read, so the record has no verb-level detail — but
   it still gets a server-assigned ID, echoed in the shed line, so the
   access log accounts for every connection the outcome counters do. *)
let shed_and_close t conn =
  Obs.count t.obs "server.requests.total" 1;
  Obs.count t.obs ~labels:[ ("class", "shed") ] "server.outcome" 1;
  let rid = fresh_id t in
  Slo.record t.slo ~cls:"shed" ~wall_s:Float.nan;
  log_record t
    {
      Access_log.id = rid;
      verb = "shed";
      outcome = "shed";
      key = "";
      budget_s = Float.nan;
      wall_s = t.clock () -. conn.accepted_at;
      cache = "";
      shards = 0;
      rung = 0;
      estimate = Float.nan;
    };
  (try
     let line =
       Protocol.shed_line ~id:rid ~retry_after_s:t.config.retry_after_s ()
     in
     let bytes = Bytes.of_string (line ^ "\n") in
     ignore (Unix.write conn.fd bytes 0 (Bytes.length bytes))
   with _ -> ());
  try Unix.close conn.fd with _ -> ()

let verb_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [] -> ""
  | w :: _ -> w

let handle_request t ~conn ~first oc line =
  let start = t.clock () in
  (* one access-log record and one SLO sample per request, whatever the
     verb; only the estimate path fills the synopsis columns *)
  let finish ?(key = "") ?(budget_s = Float.nan) ?(cache = "") ?(shards = 0)
      ?(rung = 0) ?(estimate = Float.nan) ~id ~verb ~cls () =
    let wall_s = t.clock () -. start in
    Slo.record t.slo ~cls ~wall_s;
    log_record t
      {
        Access_log.id;
        verb;
        outcome = cls;
        key;
        budget_s;
        wall_s;
        cache;
        shards;
        rung;
        estimate;
      }
  in
  match Protocol.parse_request line with
  | Error e ->
      output_string oc (Protocol.err_line e ^ "\n");
      finish ~id:(fresh_id t) ~verb:(verb_of_line line) ~cls:"err" ()
  | Ok Protocol.Quit ->
      output_string oc "ok bye\n";
      finish ~id:(fresh_id t) ~verb:"quit" ~cls:"answered" ();
      raise Exit
  | Ok Protocol.Health ->
      output_string oc "ok serving\n";
      finish ~id:(fresh_id t) ~verb:"health" ~cls:"answered" ()
  | Ok Protocol.Ready ->
      output_string oc
        (Printf.sprintf "ok ready keys=%d\n"
           (List.length (Engine.keys t.engine)));
      finish ~id:(fresh_id t) ~verb:"ready" ~cls:"answered" ()
  | Ok Protocol.Keys ->
      output_string oc
        ("ok " ^ String.concat " " (Engine.keys t.engine) ^ "\n");
      finish ~id:(fresh_id t) ~verb:"keys" ~cls:"answered" ()
  | Ok Protocol.Reload -> (
      match Engine.reload t.engine with
      | Ok n ->
          output_string oc (Printf.sprintf "ok reloaded keys=%d\n" n);
          finish ~id:(fresh_id t) ~verb:"reload" ~cls:"answered" ()
      | Error fault ->
          output_string oc
            (Protocol.err_line (Csdl.Fault.error_to_string fault) ^ "\n");
          finish ~id:(fresh_id t) ~verb:"reload" ~cls:"err" ())
  | Ok Protocol.Slo ->
      let snap = Slo.snapshot t.slo in
      (* worst sentinel worsening factor vs build-time baseline across
         keys; 1.0 = accuracy as built, 0 = no sentinels *)
      let drift =
        List.fold_left
          (fun acc d -> Float.max acc d.Engine.d_worsened)
          0.0
          (Engine.drift_status t.engine)
      in
      output_string oc
        (Printf.sprintf "ok %s drift=%.3g\n" (Slo.line snap) drift);
      finish ~id:(fresh_id t) ~verb:"slo" ~cls:"answered" ()
  | Ok Protocol.Metrics ->
      Obs.record_runtime ~domains:(t.config.jobs + 1) t.obs;
      Slo.set_gauges t.slo t.obs;
      let body = Option.value ~default:"" (Obs.prometheus t.obs) in
      output_string oc (Printf.sprintf "ok %d\n" (String.length body));
      output_string oc body;
      finish ~id:(fresh_id t) ~verb:"metrics" ~cls:"answered" ()
  | Ok (Protocol.Estimate { key; id; deadline_s; pred_a; pred_b }) ->
      let rid = match id with Some v -> v | None -> fresh_id t in
      if not (Engine.mem t.engine key) then begin
        output_string oc
          (Protocol.err_line ~id:rid ("unknown key " ^ key) ^ "\n");
        finish ~id:rid ~verb:"estimate" ~cls:"err" ~key ()
      end
      else begin
        let budget_s =
          Option.value ~default:t.config.default_deadline_s deadline_s
        in
        let deadline =
          if first then
            Deadline.anchored ~clock:t.clock ~start:conn.accepted_at
              ~budget_s ()
          else Deadline.make ~clock:t.clock ~budget_s ()
        in
        let outcome, detail =
          Engine.handle_traced t.engine ~deadline ~key ~rid ?pred_a ?pred_b
            ()
        in
        output_string oc (Protocol.render_outcome ~id:rid outcome ^ "\n");
        let estimate =
          match outcome with
          | Engine.Answered v -> v
          | Engine.Degraded { value; _ } -> value
          | Engine.Deadline_exceeded _ -> Float.nan
        in
        let rung =
          match outcome with
          | Engine.Degraded { trace; _ } -> List.length trace
          | _ -> 0
        in
        finish ~id:rid ~verb:"estimate" ~cls:(Engine.outcome_class outcome)
          ~key ~budget_s
          ~cache:(if detail.Engine.cache_hit then "hit" else "miss")
          ~shards:detail.Engine.shards ~rung ~estimate ()
      end

let handle_conn t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let oc = Unix.out_channel_of_descr conn.fd in
  let first = ref true in
  (try
     let rec loop () =
       let line = input_line ic in
       handle_request t ~conn ~first:!first oc line;
       first := false;
       flush oc;
       loop ()
     in
     loop ()
   with
  | End_of_file | Exit -> ()
  | Unix.Unix_error _ | Sys_error _ | Sys_blocked_io ->
      Obs.count t.obs "server.connection.errors" 1);
  (try flush oc with _ -> ());
  (* closing the out channel closes the underlying fd; _noerr because the
     peer may already be gone *)
  close_out_noerr oc

let worker_loop t () =
  let rec loop () =
    match Admission.take t.queue with
    | None -> ()
    | Some conn ->
        (try handle_conn t conn
         with _ -> Obs.count t.obs "server.connection.errors" 1);
        loop ()
  in
  loop ()

let serve t =
  let workers =
    List.init t.config.jobs (fun _ -> Domain.spawn (worker_loop t))
  in
  let rec accept_loop () =
    if Atomic.get t.stopping then ()
    else begin
      (match Unix.select [ t.listener ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listener with
          | exception Unix.Unix_error _ -> ()
          | fd, _peer -> (
              (try
                 Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.io_timeout_s;
                 Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.io_timeout_s
               with Unix.Unix_error _ -> ());
              let conn = { fd; accepted_at = t.clock () } in
              match Admission.offer t.queue conn with
              | Admission.Admitted -> ()
              | Admission.Rejected | Admission.Closed -> shed_and_close t conn
              | Admission.Displaced oldest -> shed_and_close t oldest))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  Admission.close t.queue;
  List.iter Domain.join workers
