(** The serving core: synopsis loading with retry, breaker and cache, plus
    the per-request degradation ladder. Protocol-agnostic — {!Server}
    wraps it in the TCP framing, tests drive it directly.

    An engine owns the persisted synopsis store at one path. At startup it
    decodes the store once to learn the key set and per-key metadata
    (orientation, cache key, independence prior) and warms the synopsis
    cache. At serving time a request for a key resolves its synopsis
    through, in order: the mutex-wrapped LRU cache; a single-flight decode
    shared by every domain missing on the same key; a per-key circuit
    breaker; and retry with jittered backoff. Every failure mode ends in a
    typed outcome — never an exception and never a hang:

    - [Answered v]: the full CSDL estimation path ran; [v] is
      byte-identical to what [repro_cli batch] prints for the same query.
    - [Degraded _]: the synopsis could not be loaded (torn store, tripped
      breaker, injected chaos) or failed checked estimation; the reply is
      the sampling-free independence prior [|A|·|B| / max(d_A, d_B)],
      with the downgrade trace reporting exactly what happened.
    - [Deadline_exceeded _]: the request ran out of its time budget.
      Deadlines are enforced at stage boundaries (admission, post-load,
      post-estimate) and inside the retry loop, so a request overshoots
      its budget by at most one stage, never unboundedly.

    Chaos mode ([config.chaos] > 0) corrupts that fraction of store
    {e loads} (not requests — a cached synopsis is not re-corrupted),
    choosing per load between a hard failure (exercises retry + breaker)
    and a silent {!Repro_robustness.Fault_injection} corruption that the
    checked estimator must catch (exercises the ladder). Injection is
    keyed PRNG-driven: same seed, same store, same corruption sequence. *)

open Repro_relation

type config = {
  cache_capacity : int;  (** LRU slots for decoded synopses; min 1 *)
  breaker : Breaker.config;
  backoff : Backoff.policy;
  chaos : float;  (** fraction of loads corrupted, 0 disables; clamped to [0,1] *)
  seed : int;  (** keyed-PRNG seed for chaos and backoff jitter *)
  drift_limit : float;
      (** how many times worse than its build-time baseline a sentinel's
          replayed q-error may get before the key is flagged as drifted
          ({!Csdl.Fault.Drift}); clamped to [>= 1] *)
}

val default_config : config
(** 32 cache slots, {!Breaker.default_config}, {!Backoff.default}, no
    chaos, seed 1, drift limit 8. *)

type t

val create :
  ?obs:Repro_obs.Obs.ctx ->
  ?clock:Repro_util.Clock.t ->
  ?sleep:Repro_util.Clock.sleeper ->
  config ->
  resolve_table:(string -> Table.t) ->
  store_path:string ->
  (t, Csdl.Fault.error) result
(** Decode the store at [store_path], build per-key metadata and warm the
    cache (up to [cache_capacity] entries). [Error _] means the store
    itself is unreadable — the server refuses to start rather than serve
    nothing. [clock]/[sleep] are injectable for tests; a live [obs]
    context feeds the [server.*] and [synopsis_cache.*] metrics. *)

val keys : t -> string list
(** Served keys, sorted. *)

val mem : t -> string -> bool

val reload : t -> (int, Csdl.Fault.error) result
(** Re-decode the store file and atomically swap in its current contents
    — keys, metadata, warmed cache entries — without dropping in-flight
    requests: a request that already resolved its metadata completes
    against the immutable flat view it started with, every later request
    sees the new snapshot. How the delta CLI's store rewrites reach a
    running server. [Ok n] is the number of keys now served; on [Error _]
    (unreadable or torn store) the previous snapshot keeps serving.
    Concurrent calls collapse into one decode. *)

val cache_stats : t -> Csdl.Synopsis_cache.stats
val breaker_state : t -> string -> [ `Closed of int | `Open | `Half_open ]

type drift = {
  d_key : string;
  d_qerror : float;  (** worst sentinel q-error for this key *)
  d_worsened : float;
      (** worst sentinel q-error as a multiple of its build-time
          baseline — [1.0] on a store identical to its build *)
  d_limit : float;
  d_fault : Csdl.Fault.error option;
      (** [Some (Fault.Drift _)] iff [d_worsened > d_limit] *)
}

val drift_status : t -> drift list
(** Per-key accuracy drift, from the most recent sentinel replay (at
    {!create} and every successful {!reload}): each stored {!Csdl.Sentinel}
    query is re-estimated against the freshly decoded synopsis and its
    q-error against the recorded truth compared to the build-time
    baseline times [config.drift_limit]. Sorted by key. Empty when the
    store carries no sentinels. *)

val sentinel_window : t -> Repro_obs.Rolling.Histogram.t
(** Rolling (1 h) histogram of every sentinel q-error replayed — the
    feed behind the [server.sentinel.qerror] gauge. *)

type outcome =
  | Answered of float
  | Degraded of { value : float; trace : Csdl.Fault.trace }
  | Deadline_exceeded of Csdl.Fault.error

val outcome_class : outcome -> string
(** ["answered"] / ["degraded"] / ["deadline_exceeded"] — the [class]
    label of the [server.outcome] counter. *)

type detail = {
  cache_hit : bool;  (** synopsis came straight from the LRU cache *)
  shards : int;  (** shard-segment count recorded for the key *)
}

val handle_traced :
  t ->
  deadline:Deadline.t ->
  key:string ->
  ?rid:string ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  unit ->
  outcome * detail
(** Serve one estimation request. Predicates are in the original (A, B)
    orientation, as with [Store.estimate]. Raises [Not_found] for a key
    the store does not contain (callers check {!mem} first; protocol
    errors are not estimation outcomes). [rid] tags the request's span
    and latency exemplar with the request ID; it never becomes a metric
    label. The extra {!detail} feeds the access log. Domain-safe: any
    number of workers may call this concurrently. *)

val handle :
  t ->
  deadline:Deadline.t ->
  key:string ->
  ?rid:string ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  unit ->
  outcome
(** {!handle_traced} without the access-log detail. *)
