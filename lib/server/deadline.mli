(** Per-request deadlines, on the injectable {!Repro_util.Clock}.

    A deadline is an absolute expiry instant plus the budget it was
    created with. Every stage of the serving path checks one before
    spending work, so a request always terminates in a typed outcome —
    never a hung connection. Tests drive deadline code deterministically
    with {!Repro_util.Clock.shared_clock}. *)

type t

val make : ?clock:Repro_util.Clock.t -> budget_s:float -> unit -> t
(** Expires [budget_s] seconds from now. [budget_s] must be finite and
    non-negative ([Invalid_argument] otherwise); a zero budget is already
    expired. Default clock: {!Repro_util.Clock.wall}. *)

val anchored :
  ?clock:Repro_util.Clock.t -> start:float -> budget_s:float -> unit -> t
(** Like {!make} but anchored at instant [start] instead of now — the
    server charges queue wait by anchoring at connection-accept time. *)

val budget_s : t -> float
(** The budget the deadline was created with. *)

val remaining : t -> float
(** Seconds left; negative once expired. *)

val exceeded : t -> bool

val fault : what:string -> t -> Csdl.Fault.error
(** [Timeout { what; budget_s }] for degradation traces. *)
