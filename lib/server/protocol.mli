(** The line-oriented wire protocol of the estimation server.

    One request per line, one reply per line (the [metrics] body is
    length-prefixed). The request grammar:

    {v
      estimate <key> [id=<token>] [deadline=<seconds>] [;; <left> [;; <right>]]
      health
      ready
      keys
      metrics
      slo
      reload
      quit
    v}

    [<left>]/[<right>] are selection predicates in
    {!Repro_relation.Predicate_parser} syntax, in the same [;;]-separated
    shape as a [repro_cli batch] query line; an empty or omitted side
    means no selection. [deadline=] overrides the server's default
    per-request budget. [id=] is a client-chosen request ID
    ({!Repro_obs.Request_ctx.is_valid_id}); option tokens may appear in
    either order, and the pre-ID grammar parses unchanged (the server
    assigns an ID).

    Replies all start with a status word, so clients and the load driver
    classify outcomes by the first token. Estimate-path replies echo the
    request ID as an [id=<token>] token right after the status word;
    replies without one keep the exact pre-ID bytes:

    {v
      ok [id=<t>] <%.17g>                              (full CSDL answer)
      degraded [id=<t>] <%.17g> ;; <downgrade trace>   (prior + honest trace)
      deadline_exceeded [id=<t>] ;; <fault>
      shed [id=<t>] retry_after=<seconds>              (load was shed)
      err [id=<t>] <message>                  (protocol error / unknown key)
      ok <n>\n<n bytes>                                (metrics body)
      ok window=... p50=...                            (slo snapshot line)
    v}

    This module is pure parsing and rendering — shared by {!Server},
    {!Client} and the load driver so the two ends cannot drift. *)

type request =
  | Estimate of {
      key : string;
      id : string option;  (** client-supplied request ID, if any *)
      deadline_s : float option;
      pred_a : Repro_relation.Predicate.t option;
      pred_b : Repro_relation.Predicate.t option;
    }
  | Health
  | Ready
  | Keys
  | Metrics
  | Slo  (** one-line rolling-window SLO snapshot *)
  | Reload  (** atomically swap in the store file's current contents *)
  | Quit

val parse_request : string -> (request, string) result

val render_estimate :
  key:string ->
  ?id:string ->
  ?deadline_s:float ->
  ?pred_a:string ->
  ?pred_b:string ->
  unit ->
  string
(** Client-side: the request line for an estimation query; predicates are
    raw predicate-syntax strings. *)

val render_outcome : ?id:string -> Engine.outcome -> string
(** The reply line for an engine outcome ([%.17g] values, so the [ok]
    line's number is byte-identical to [repro_cli batch] output). With
    [?id], the ID is echoed as the token after the status word. *)

val shed_line : ?id:string -> retry_after_s:float -> unit -> string
val err_line : ?id:string -> string -> string
(** [err_line msg] flattens newlines in [msg] so the reply stays one
    line. *)

type reply =
  | R_ok of float
  | R_degraded of float * string  (** value, rendered downgrade trace *)
  | R_deadline_exceeded of string
  | R_shed of float  (** suggested retry-after seconds *)
  | R_err of string

val parse_reply : string -> (reply, string) result
(** Classify a single reply line (not the [metrics] body). Accepts and
    discards an [id=] token; use {!parse_reply_id} to keep it. *)

val parse_reply_id : string -> (string option * reply, string) result
(** Like {!parse_reply}, also returning the echoed request ID (if the
    reply carries one) — what reconciliation against the access log joins
    on. *)

val reply_class : reply -> string
(** ["answered"] / ["degraded"] / ["deadline_exceeded"] / ["shed"] /
    ["err"] — matching {!Engine.outcome_class} plus the server-level
    classes, so the load driver's accounting keys line up with the
    [server.outcome] counter labels. *)
