(** The line-oriented wire protocol of the estimation server.

    One request per line, one reply per line (the [metrics] body is
    length-prefixed). The request grammar:

    {v
      estimate <key> [deadline=<seconds>] [;; <left> [;; <right>]]
      health
      ready
      keys
      metrics
      reload
      quit
    v}

    [<left>]/[<right>] are selection predicates in
    {!Repro_relation.Predicate_parser} syntax, in the same [;;]-separated
    shape as a [repro_cli batch] query line; an empty or omitted side
    means no selection. [deadline=] overrides the server's default
    per-request budget.

    Replies all start with a status word, so clients and the load driver
    classify outcomes by the first token:

    {v
      ok <%.17g>                                 (full CSDL answer)
      degraded <%.17g> ;; <downgrade trace>      (prior + honest trace)
      deadline_exceeded ;; <fault>
      shed retry_after=<seconds>                 (load was shed)
      err <message>                              (protocol error / unknown key)
      ok <n>\n<n bytes>                          (metrics body)
    v}

    This module is pure parsing and rendering — shared by {!Server},
    {!Client} and the load driver so the two ends cannot drift. *)

type request =
  | Estimate of {
      key : string;
      deadline_s : float option;
      pred_a : Repro_relation.Predicate.t option;
      pred_b : Repro_relation.Predicate.t option;
    }
  | Health
  | Ready
  | Keys
  | Metrics
  | Reload  (** atomically swap in the store file's current contents *)
  | Quit

val parse_request : string -> (request, string) result

val render_estimate :
  key:string ->
  ?deadline_s:float ->
  ?pred_a:string ->
  ?pred_b:string ->
  unit ->
  string
(** Client-side: the request line for an estimation query; predicates are
    raw predicate-syntax strings. *)

val render_outcome : Engine.outcome -> string
(** The reply line for an engine outcome ([%.17g] values, so the [ok]
    line's number is byte-identical to [repro_cli batch] output). *)

val shed_line : retry_after_s:float -> string
val err_line : string -> string
(** [err_line msg] flattens newlines in [msg] so the reply stays one
    line. *)

type reply =
  | R_ok of float
  | R_degraded of float * string  (** value, rendered downgrade trace *)
  | R_deadline_exceeded of string
  | R_shed of float  (** suggested retry-after seconds *)
  | R_err of string

val parse_reply : string -> (reply, string) result
(** Classify a single reply line (not the [metrics] body). *)

val reply_class : reply -> string
(** ["answered"] / ["degraded"] / ["deadline_exceeded"] / ["shed"] /
    ["err"] — matching {!Engine.outcome_class} plus the server-level
    classes, so the load driver's accounting keys line up with the
    [server.outcome] counter labels. *)
