module Obs = Repro_obs.Obs

type policy = Reject | Drop_oldest

type 'a t = {
  obs : Obs.ctx;
  policy : policy;
  capacity : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  mutable closed : bool;
}

let policy_label = function Reject -> "reject" | Drop_oldest -> "drop_oldest"

let create ?(obs = Obs.null) ~policy ~capacity () =
  Obs.set_gauge obs "server.queue.depth" 0.0;
  Obs.count obs ~labels:[ ("policy", policy_label policy) ] "server.queue.shed" 0;
  {
    obs;
    policy;
    capacity = max 1 capacity;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    closed = false;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

type 'a offer_result = Admitted | Rejected | Displaced of 'a | Closed

let offer t item =
  let result =
    locked t (fun () ->
        if t.closed then Closed
        else if Queue.length t.items < t.capacity then begin
          Queue.push item t.items;
          Condition.signal t.nonempty;
          Admitted
        end
        else
          match t.policy with
          | Reject -> Rejected
          | Drop_oldest ->
              let oldest = Queue.pop t.items in
              Queue.push item t.items;
              Condition.signal t.nonempty;
              Displaced oldest)
  in
  (match result with
  | Admitted | Displaced _ ->
      Obs.set_gauge t.obs "server.queue.depth"
        (float_of_int (locked t (fun () -> Queue.length t.items)))
  | Rejected | Closed -> ());
  (match result with
  | Rejected | Displaced _ ->
      Obs.count t.obs
        ~labels:[ ("policy", policy_label t.policy) ]
        "server.queue.shed" 1
  | Admitted | Closed -> ());
  result

let take t =
  let item =
    locked t (fun () ->
        let rec wait () =
          if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
          else if t.closed then None
          else begin
            Condition.wait t.nonempty t.mutex;
            wait ()
          end
        in
        wait ())
  in
  if item <> None then
    Obs.set_gauge t.obs "server.queue.depth"
      (float_of_int (locked t (fun () -> Queue.length t.items)));
  item

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t = locked t (fun () -> Queue.length t.items)
