module Obs = Repro_obs.Obs

(* One in-flight call. Waiters keep their own reference to the cell, so
   the leader can drop it from the table (ending the flight window)
   before the last waiter has read the outcome. *)
type 'a cell = { mutable outcome : ('a, exn) result option }

type 'a t = {
  obs : Obs.ctx;
  mutex : Mutex.t;
  done_ : Condition.t;
  flights : (string, 'a cell) Hashtbl.t;
  mutable shared_count : int;
}

let create ?(obs = Obs.null) () =
  Obs.count obs "server.singleflight.shared" 0;
  {
    obs;
    mutex = Mutex.create ();
    done_ = Condition.create ();
    flights = Hashtbl.create 16;
    shared_count = 0;
  }

let run t key f =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.flights key with
  | Some cell ->
      t.shared_count <- t.shared_count + 1;
      while cell.outcome = None do
        Condition.wait t.done_ t.mutex
      done;
      Mutex.unlock t.mutex;
      Obs.count t.obs "server.singleflight.shared" 1;
      (match cell.outcome with
      | Some (Ok v) -> v
      | Some (Error exn) -> raise exn
      | None -> assert false)
  | None ->
      let cell = { outcome = None } in
      Hashtbl.replace t.flights key cell;
      Mutex.unlock t.mutex;
      let outcome = match f () with v -> Ok v | exception exn -> Error exn in
      Mutex.lock t.mutex;
      cell.outcome <- Some outcome;
      Hashtbl.remove t.flights key;
      Condition.broadcast t.done_;
      Mutex.unlock t.mutex;
      (match outcome with Ok v -> v | Error exn -> raise exn)

let shared t =
  Mutex.lock t.mutex;
  let n = t.shared_count in
  Mutex.unlock t.mutex;
  n
