(** Single-flight deduplication of concurrent cache misses.

    When several worker domains miss the synopsis cache on the same key at
    once, exactly one of them (the {e leader}) performs the expensive
    decode; the rest block and receive the leader's result — a cold
    synopsis is decoded once, not once per waiter. Results are shared only
    within the in-flight window: the next miss after completion starts a
    fresh flight, so a transient failure is not cached.

    Values must be immutable or safely shareable across domains (the
    serving path shares [(Synopsis.t, Fault.error) result]). *)

type 'a t

val create : ?obs:Repro_obs.Obs.ctx -> unit -> 'a t
(** A live [obs] context counts deduplicated calls
    ([server.singleflight.shared]). *)

val run : 'a t -> string -> (unit -> 'a) -> 'a
(** [run t key f]: if no flight for [key] is active, run [f] as the leader
    and publish its result to every waiter that arrived meanwhile;
    otherwise block until the active leader publishes and return its
    result. If the leader's [f] raises, the exception is re-raised in the
    leader {e and} every waiter. *)

val shared : 'a t -> int
(** How many calls were answered by another caller's flight. *)
