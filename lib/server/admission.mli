(** Bounded admission queue between the accept loop and the worker pool.

    Accepted connections wait here until a worker domain picks them up.
    The queue has a hard capacity; when it is full the server {e sheds
    load} explicitly instead of letting latency grow without bound. Two
    shedding policies:

    - [Reject]: the new arrival is turned away (the server tells the
      client to retry later);
    - [Drop_oldest]: the new arrival is admitted and the {e oldest}
      queued item is displaced (the item that has already waited longest
      is the one most likely to be past its deadline anyway).

    Domain-safe: one mutex plus a condition for blocking consumers. *)

type policy = Reject | Drop_oldest

type 'a t

val create :
  ?obs:Repro_obs.Obs.ctx -> policy:policy -> capacity:int -> unit -> 'a t
(** [capacity] is clamped to at least 1. A live [obs] context tracks the
    queue depth ([server.queue.depth] gauge) and sheds
    ([server.queue.shed{policy}]). *)

type 'a offer_result =
  | Admitted
  | Rejected  (** full under [Reject]: caller sheds the new arrival *)
  | Displaced of 'a
      (** admitted under [Drop_oldest]: caller sheds the returned item *)
  | Closed  (** the queue no longer accepts work (shutdown) *)

val offer : 'a t -> 'a -> 'a offer_result

val take : 'a t -> 'a option
(** Block until an item is available or the queue is closed {e and}
    drained; [None] means no more work will ever arrive. *)

val close : 'a t -> unit
(** Stop accepting offers; queued items are still handed out. Wakes every
    blocked {!take}. *)

val depth : 'a t -> int
