(** Minimal blocking client for the estimation daemon — used by
    [repro_cli client], the server smoke test and the load driver.

    One [t] is one TCP connection; requests on it are serialized. All
    calls can raise [Unix.Unix_error] / [End_of_file] on a dead or
    unreachable server — callers that must survive that (the load driver)
    catch and account. *)

type t

val connect : ?timeout_s:float -> host:string -> port:int -> unit -> t
(** [timeout_s] (default 10) bounds reads and writes on the connection. *)

val close : t -> unit
(** Idempotent. *)

val estimate :
  t ->
  ?id:string ->
  ?deadline_s:float ->
  ?pred_a:string ->
  ?pred_b:string ->
  key:string ->
  unit ->
  (Protocol.reply, string) result
(** One estimation round trip; predicates are raw predicate-syntax
    strings. [id] is a client-chosen request ID sent on the wire
    ({!Repro_obs.Request_ctx.is_valid_id}). [Error _] is a malformed
    reply line (a server bug). *)

val estimate_full :
  t ->
  ?id:string ->
  ?deadline_s:float ->
  ?pred_a:string ->
  ?pred_b:string ->
  key:string ->
  unit ->
  (string option * Protocol.reply, string) result
(** Like {!estimate}, also returning the request ID echoed by the server
    — what the load driver reconciles against the access log. *)

val raw : t -> string -> string
(** Send one request line verbatim, return the single reply line —
    for [health], [ready], [keys] and protocol tests. *)

val reload : t -> (string, string) result
(** Ask the server to swap in the store file's current contents.
    [Ok line] is the server's acknowledgement ([ok reloaded keys=<n>]);
    [Error line] the server's error reply. *)

val metrics : t -> (string, string) result
(** The [metrics] verb: returns the full Prometheus text body. *)
