module Predicate_parser = Repro_relation.Predicate_parser
module Fault = Csdl.Fault

type request =
  | Estimate of {
      key : string;
      deadline_s : float option;
      pred_a : Repro_relation.Predicate.t option;
      pred_b : Repro_relation.Predicate.t option;
    }
  | Health
  | Ready
  | Keys
  | Metrics
  | Reload
  | Quit

(* Split on the first top-level ";;", as batch query files do. *)
let split_once_on_sep s =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = ';' && s.[i + 1] = ';' then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> (s, None)
  | Some i -> (String.sub s 0 i, Some (String.sub s (i + 2) (n - i - 2)))

let parse_pred what s =
  let s = String.trim s in
  if s = "" then Ok None
  else
    match Predicate_parser.parse s with
    | Ok p -> Ok (Some p)
    | Error e -> Error (Printf.sprintf "%s predicate: %s" what e)

let parse_estimate rest =
  let ( let* ) = Result.bind in
  let head, tail = split_once_on_sep rest in
  let left, right =
    match tail with
    | None -> ("", "")
    | Some tail ->
        let l, r = split_once_on_sep tail in
        (l, Option.value ~default:"" r)
  in
  let words =
    String.split_on_char ' ' (String.trim head)
    |> List.filter (fun w -> w <> "")
  in
  let* key, deadline_s =
    match words with
    | [ key ] -> Ok (key, None)
    | [ key; opt ] when String.length opt > 9 && String.sub opt 0 9 = "deadline="
      -> (
        let v = String.sub opt 9 (String.length opt - 9) in
        match float_of_string_opt v with
        | Some d when Float.is_finite d && d > 0.0 -> Ok (key, Some d)
        | _ -> Error (Printf.sprintf "bad deadline %S" v))
    | [] -> Error "estimate needs a key"
    | _ -> Error "estimate takes a key and an optional deadline=<seconds>"
  in
  let* pred_a = parse_pred "left" left in
  let* pred_b = parse_pred "right" right in
  Ok (Estimate { key; deadline_s; pred_a; pred_b })

let parse_request line =
  let line = String.trim line in
  match line with
  | "health" -> Ok Health
  | "ready" -> Ok Ready
  | "keys" -> Ok Keys
  | "metrics" -> Ok Metrics
  | "reload" -> Ok Reload
  | "quit" -> Ok Quit
  | _ ->
      if String.length line >= 8 && String.sub line 0 8 = "estimate" then
        parse_estimate (String.sub line 8 (String.length line - 8))
      else
        Error
          "unknown verb (try: estimate, health, ready, keys, metrics, \
           reload, quit)"

let render_estimate ~key ?deadline_s ?pred_a ?pred_b () =
  let b = Buffer.create 64 in
  Buffer.add_string b "estimate ";
  Buffer.add_string b key;
  Option.iter (fun d -> Buffer.add_string b (Printf.sprintf " deadline=%g" d)) deadline_s;
  (match (pred_a, pred_b) with
  | None, None -> ()
  | _ ->
      Buffer.add_string b " ;; ";
      Buffer.add_string b (Option.value ~default:"" pred_a);
      Buffer.add_string b " ;; ";
      Buffer.add_string b (Option.value ~default:"" pred_b));
  Buffer.contents b

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let render_outcome = function
  | Engine.Answered v -> Printf.sprintf "ok %.17g" v
  | Engine.Degraded { value; trace } ->
      Printf.sprintf "degraded %.17g ;; %s" value
        (one_line (Fault.trace_to_string trace))
  | Engine.Deadline_exceeded fault ->
      Printf.sprintf "deadline_exceeded ;; %s"
        (one_line (Fault.error_to_string fault))

let shed_line ~retry_after_s =
  Printf.sprintf "shed retry_after=%.3f" retry_after_s

let err_line msg = "err " ^ one_line msg

type reply =
  | R_ok of float
  | R_degraded of float * string
  | R_deadline_exceeded of string
  | R_shed of float
  | R_err of string

let parse_reply line =
  let line = String.trim line in
  let word, rest =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i ->
        (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
  in
  match word with
  | "ok" -> (
      match float_of_string_opt (String.trim rest) with
      | Some v -> Ok (R_ok v)
      | None -> Error (Printf.sprintf "bad ok value %S" rest))
  | "degraded" -> (
      let value, trace = split_once_on_sep rest in
      match float_of_string_opt (String.trim value) with
      | Some v -> Ok (R_degraded (v, String.trim (Option.value ~default:"" trace)))
      | None -> Error (Printf.sprintf "bad degraded value %S" value))
  | "deadline_exceeded" ->
      let _, fault = split_once_on_sep rest in
      Ok (R_deadline_exceeded (String.trim (Option.value ~default:"" fault)))
  | "shed" -> (
      let rest = String.trim rest in
      let prefix = "retry_after=" in
      let plen = String.length prefix in
      if String.length rest > plen && String.sub rest 0 plen = prefix then
        match float_of_string_opt (String.sub rest plen (String.length rest - plen)) with
        | Some v -> Ok (R_shed v)
        | None -> Error (Printf.sprintf "bad shed line %S" rest)
      else Ok (R_shed 0.0))
  | "err" -> Ok (R_err rest)
  | _ -> Error (Printf.sprintf "unknown reply %S" line)

let reply_class = function
  | R_ok _ -> "answered"
  | R_degraded _ -> "degraded"
  | R_deadline_exceeded _ -> "deadline_exceeded"
  | R_shed _ -> "shed"
  | R_err _ -> "err"
