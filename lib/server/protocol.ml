module Predicate_parser = Repro_relation.Predicate_parser
module Fault = Csdl.Fault

type request =
  | Estimate of {
      key : string;
      id : string option;
      deadline_s : float option;
      pred_a : Repro_relation.Predicate.t option;
      pred_b : Repro_relation.Predicate.t option;
    }
  | Health
  | Ready
  | Keys
  | Metrics
  | Slo
  | Reload
  | Quit

(* Split on the first top-level ";;", as batch query files do. *)
let split_once_on_sep s =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = ';' && s.[i + 1] = ';' then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> (s, None)
  | Some i -> (String.sub s 0 i, Some (String.sub s (i + 2) (n - i - 2)))

let parse_pred what s =
  let s = String.trim s in
  if s = "" then Ok None
  else
    match Predicate_parser.parse s with
    | Ok p -> Ok (Some p)
    | Error e -> Error (Printf.sprintf "%s predicate: %s" what e)

let parse_estimate rest =
  let ( let* ) = Result.bind in
  let head, tail = split_once_on_sep rest in
  let left, right =
    match tail with
    | None -> ("", "")
    | Some tail ->
        let l, r = split_once_on_sep tail in
        (l, Option.value ~default:"" r)
  in
  let words =
    String.split_on_char ' ' (String.trim head)
    |> List.filter (fun w -> w <> "")
  in
  let* key, opts =
    match words with
    | [] -> Error "estimate needs a key"
    | key :: opts -> Ok (key, opts)
  in
  let has_prefix p w =
    String.length w > String.length p && String.sub w 0 (String.length p) = p
  in
  let after p w = String.sub w (String.length p) (String.length w - String.length p) in
  (* option tokens accepted in any order after the key *)
  let* id, deadline_s =
    List.fold_left
      (fun acc opt ->
        let* id, deadline_s = acc in
        if has_prefix "id=" opt then
          let v = after "id=" opt in
          if Repro_obs.Request_ctx.is_valid_id v then Ok (Some v, deadline_s)
          else Error (Printf.sprintf "bad id %S" v)
        else if has_prefix "deadline=" opt then
          let v = after "deadline=" opt in
          match float_of_string_opt v with
          | Some d when Float.is_finite d && d > 0.0 -> Ok (id, Some d)
          | _ -> Error (Printf.sprintf "bad deadline %S" v)
        else
          Error
            "estimate takes a key and optional id=<token> deadline=<seconds>")
      (Ok (None, None))
      opts
  in
  let* pred_a = parse_pred "left" left in
  let* pred_b = parse_pred "right" right in
  Ok (Estimate { key; id; deadline_s; pred_a; pred_b })

let parse_request line =
  let line = String.trim line in
  match line with
  | "health" -> Ok Health
  | "ready" -> Ok Ready
  | "keys" -> Ok Keys
  | "metrics" -> Ok Metrics
  | "slo" -> Ok Slo
  | "reload" -> Ok Reload
  | "quit" -> Ok Quit
  | _ ->
      if String.length line >= 8 && String.sub line 0 8 = "estimate" then
        parse_estimate (String.sub line 8 (String.length line - 8))
      else
        Error
          "unknown verb (try: estimate, health, ready, keys, metrics, slo, \
           reload, quit)"

let render_estimate ~key ?id ?deadline_s ?pred_a ?pred_b () =
  let b = Buffer.create 64 in
  Buffer.add_string b "estimate ";
  Buffer.add_string b key;
  Option.iter (fun rid -> Buffer.add_string b (" id=" ^ rid)) id;
  Option.iter (fun d -> Buffer.add_string b (Printf.sprintf " deadline=%g" d)) deadline_s;
  (match (pred_a, pred_b) with
  | None, None -> ()
  | _ ->
      Buffer.add_string b " ;; ";
      Buffer.add_string b (Option.value ~default:"" pred_a);
      Buffer.add_string b " ;; ";
      Buffer.add_string b (Option.value ~default:"" pred_b));
  Buffer.contents b

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* The id token sits right after the status word so replies without one
   keep their historical bytes — the server-smoke cmp against batch
   output compares parsed values, but err/health/ready lines are grepped
   raw. *)
let id_tag = function None -> "" | Some rid -> "id=" ^ rid ^ " "

let render_outcome ?id outcome =
  let tag = id_tag id in
  match outcome with
  | Engine.Answered v -> Printf.sprintf "ok %s%.17g" tag v
  | Engine.Degraded { value; trace } ->
      Printf.sprintf "degraded %s%.17g ;; %s" tag value
        (one_line (Fault.trace_to_string trace))
  | Engine.Deadline_exceeded fault ->
      Printf.sprintf "deadline_exceeded %s;; %s" tag
        (one_line (Fault.error_to_string fault))

let shed_line ?id ~retry_after_s () =
  Printf.sprintf "shed %sretry_after=%.3f" (id_tag id) retry_after_s

let err_line ?id msg = "err " ^ id_tag id ^ one_line msg

type reply =
  | R_ok of float
  | R_degraded of float * string
  | R_deadline_exceeded of string
  | R_shed of float
  | R_err of string

let split_word s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_reply_id line =
  let line = String.trim line in
  let word, rest = split_word line in
  (* the optional id token sits immediately after the status word *)
  let id, rest =
    let r = String.trim rest in
    if String.length r > 3 && String.sub r 0 3 = "id=" then
      let tok, rest' = split_word r in
      (Some (String.sub tok 3 (String.length tok - 3)), rest')
    else (None, rest)
  in
  Result.map
    (fun reply -> (id, reply))
    (match word with
  | "ok" -> (
      match float_of_string_opt (String.trim rest) with
      | Some v -> Ok (R_ok v)
      | None -> Error (Printf.sprintf "bad ok value %S" rest))
  | "degraded" -> (
      let value, trace = split_once_on_sep rest in
      match float_of_string_opt (String.trim value) with
      | Some v -> Ok (R_degraded (v, String.trim (Option.value ~default:"" trace)))
      | None -> Error (Printf.sprintf "bad degraded value %S" value))
  | "deadline_exceeded" ->
      let _, fault = split_once_on_sep rest in
      Ok (R_deadline_exceeded (String.trim (Option.value ~default:"" fault)))
  | "shed" -> (
      let rest = String.trim rest in
      let prefix = "retry_after=" in
      let plen = String.length prefix in
      if String.length rest > plen && String.sub rest 0 plen = prefix then
        match float_of_string_opt (String.sub rest plen (String.length rest - plen)) with
        | Some v -> Ok (R_shed v)
        | None -> Error (Printf.sprintf "bad shed line %S" rest)
      else Ok (R_shed 0.0))
    | "err" -> Ok (R_err rest)
    | _ -> Error (Printf.sprintf "unknown reply %S" line))

let parse_reply line = Result.map snd (parse_reply_id line)

let reply_class = function
  | R_ok _ -> "answered"
  | R_degraded _ -> "degraded"
  | R_deadline_exceeded _ -> "deadline_exceeded"
  | R_shed _ -> "shed"
  | R_err _ -> "err"
