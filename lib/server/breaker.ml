module Clock = Repro_util.Clock
module Obs = Repro_obs.Obs

type config = { threshold : int; cooldown_s : float }

let default_config = { threshold = 5; cooldown_s = 1.0 }

type key_state =
  | Closed of int  (** consecutive failures so far *)
  | Open of float  (** refuse until this instant *)
  | Half_open  (** one probe in flight *)

type t = {
  config : config;
  clock : Clock.t;
  obs : Obs.ctx;
  mutex : Mutex.t;
  states : (string, key_state) Hashtbl.t;
  mutable trips : int;
}

let create ?(obs = Obs.null) ?(clock = Clock.wall) config =
  Obs.count obs "server.breaker.trips" 0;
  Obs.count obs "server.breaker.rejected" 0;
  {
    config = { config with threshold = max 1 config.threshold };
    clock;
    obs;
    mutex = Mutex.create ();
    states = Hashtbl.create 16;
    trips = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let get t key =
  match Hashtbl.find_opt t.states key with
  | Some s -> s
  | None -> Closed 0

let acquire t key =
  locked t (fun () ->
      match get t key with
      | Closed _ -> `Proceed
      | Half_open ->
          Obs.count t.obs "server.breaker.rejected" 1;
          `Open 0.0
      | Open until ->
          let now = t.clock () in
          if now >= until then begin
            (* cooldown over: this caller becomes the half-open probe *)
            Hashtbl.replace t.states key Half_open;
            `Proceed
          end
          else begin
            Obs.count t.obs "server.breaker.rejected" 1;
            `Open (until -. now)
          end)

let success t key = locked t (fun () -> Hashtbl.replace t.states key (Closed 0))

let trip t key =
  Hashtbl.replace t.states key (Open (t.clock () +. t.config.cooldown_s));
  t.trips <- t.trips + 1;
  Obs.count t.obs ~labels:[ ("key", key) ] "server.breaker.trips" 1

let failure t key =
  locked t (fun () ->
      match get t key with
      | Half_open -> trip t key
      | Open _ -> ()
      | Closed n ->
          if n + 1 >= t.config.threshold then trip t key
          else Hashtbl.replace t.states key (Closed (n + 1)))

(* An elapsed cooldown still reports [`Open]: the transition to half-open
   happens only when a caller acquires the probe slot. *)
let state t key =
  locked t (fun () ->
      match get t key with
      | Closed n -> `Closed n
      | Half_open -> `Half_open
      | Open _ -> `Open)

let trips t = locked t (fun () -> t.trips)
