module Clock = Repro_util.Clock
module Prng = Repro_util.Prng

type policy = {
  attempts : int;
  base_s : float;
  multiplier : float;
  max_delay_s : float;
}

let default = { attempts = 3; base_s = 0.002; multiplier = 2.0; max_delay_s = 0.05 }

let delay policy prng ~attempt =
  let cap =
    Float.min
      (policy.base_s *. (policy.multiplier ** float_of_int attempt))
      policy.max_delay_s
  in
  Prng.float prng *. Float.max 0.0 cap

let expired = function
  | None -> false
  | Some deadline -> Deadline.exceeded deadline

let retry ?(sleep = Clock.sleepf) ?deadline policy prng f =
  let attempts = max 1 policy.attempts in
  let rec go attempt =
    match f () with
    | Ok _ as ok -> (ok, attempt + 1)
    | Error _ as err ->
        if attempt + 1 >= attempts || expired deadline then (err, attempt + 1)
        else begin
          let d = delay policy prng ~attempt in
          let d =
            match deadline with
            | None -> d
            | Some deadline -> Float.min d (Deadline.remaining deadline)
          in
          sleep (Float.max 0.0 d);
          if expired deadline then (err, attempt + 1) else go (attempt + 1)
        end
  in
  go 0
