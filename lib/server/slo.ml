module Rolling = Repro_obs.Rolling
module Obs = Repro_obs.Obs

type t = {
  window_s : float;
  latency : Rolling.Histogram.t;
  total : Rolling.Counter.t;
  errors : Rolling.Counter.t;
  shed : Rolling.Counter.t;
}

let create ?slots ~now ~window_s () =
  {
    window_s;
    latency = Rolling.Histogram.create ?slots ~now ~window_s ();
    total = Rolling.Counter.create ?slots ~now ~window_s ();
    errors = Rolling.Counter.create ?slots ~now ~window_s ();
    shed = Rolling.Counter.create ?slots ~now ~window_s ();
  }

let record t ~cls ~wall_s =
  Rolling.Counter.incr t.total;
  (match cls with
  | "deadline_exceeded" | "err" -> Rolling.Counter.incr t.errors
  | "shed" -> Rolling.Counter.incr t.shed
  | _ -> ());
  if Float.is_finite wall_s then Rolling.Histogram.observe t.latency wall_s

type snapshot = {
  s_window_s : float;
  s_requests : int;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_error_rate : float;
  s_shed_rate : float;
}

let snapshot t =
  let requests = Rolling.Counter.value t.total in
  let rate c =
    if requests = 0 then 0.0
    else float_of_int (Rolling.Counter.value c) /. float_of_int requests
  in
  let q p =
    let v = Rolling.Histogram.quantile t.latency p in
    if Float.is_nan v then 0.0 else v
  in
  {
    s_window_s = t.window_s;
    s_requests = requests;
    s_p50 = q 0.50;
    s_p95 = q 0.95;
    s_p99 = q 0.99;
    s_error_rate = rate t.errors;
    s_shed_rate = rate t.shed;
  }

let line s =
  Printf.sprintf
    "window=%g requests=%d p50=%.6f p95=%.6f p99=%.6f error_rate=%.4f \
     shed_rate=%.4f"
    s.s_window_s s.s_requests s.s_p50 s.s_p95 s.s_p99 s.s_error_rate
    s.s_shed_rate

let set_gauges t obs =
  let s = snapshot t in
  Obs.set_gauge obs "server.slo.window_seconds" s.s_window_s;
  Obs.set_gauge obs "server.slo.requests" (float_of_int s.s_requests);
  Obs.set_gauge obs "server.slo.p50_seconds" s.s_p50;
  Obs.set_gauge obs "server.slo.p95_seconds" s.s_p95;
  Obs.set_gauge obs "server.slo.p99_seconds" s.s_p99;
  Obs.set_gauge obs "server.slo.error_rate" s.s_error_rate;
  Obs.set_gauge obs "server.slo.shed_rate" s.s_shed_rate
