(** The estimation daemon: a TCP accept loop feeding worker domains
    through the bounded admission queue.

    One {!Protocol} request per line, replies written back on the same
    connection. Admission is connection-granular: a connection the queue
    cannot hold is {e shed} — told [shed retry_after=<s>] and closed —
    either the new arrival ([Reject]) or the longest-waiting queued one
    ([Drop_oldest]). A shed connection's queries are never read, so the
    server accounts it as one request (the load driver sends one query
    per connection, making the [server.outcome] counters sum exactly to
    the number of connections attempted; see docs/robustness.md).

    Deadlines: the first estimate on a connection is anchored at {e
    accept} time, so queue wait burns request budget — a request that sat
    out its deadline in the queue is answered [deadline_exceeded], not
    served late. Subsequent requests on a kept-alive connection start
    their budget when read.

    Shutdown: {!stop} (async-signal-safe — wire it to SIGTERM) makes
    {!serve} close the listener, stop admitting, drain every queued
    connection, join the workers and return. Receive/send timeouts on
    every connection socket bound how long a dead client can hold a
    worker. *)

type config = {
  host : string;
  port : int;  (** 0 binds an ephemeral port; see {!port} *)
  jobs : int;  (** worker domains; min 1 *)
  queue_capacity : int;
  queue_policy : Admission.policy;
  default_deadline_s : float;  (** per-request budget unless overridden *)
  io_timeout_s : float;  (** socket receive/send timeout per connection *)
  retry_after_s : float;  (** suggested wait in shed replies *)
}

val default_config : port:int -> config
(** host 127.0.0.1, 4 jobs, capacity 64, [Reject], 1s deadline, 10s IO
    timeout, 0.05s retry-after. *)

type t

val create :
  ?obs:Repro_obs.Obs.ctx ->
  ?clock:Repro_util.Clock.t ->
  ?access_log:Repro_obs.Access_log.t ->
  ?slo_window_s:float ->
  ?request_seed:int ->
  config ->
  Engine.t ->
  t
(** Bind and listen (raises [Unix.Unix_error] if the address is taken).
    The socket is bound here so [port t] is valid before {!serve} runs —
    tests bind port 0 and read the real port back.

    With [access_log], every request (any verb, plus shed connections)
    appends one record; the log stays owned by the caller — close it
    after {!serve} returns, when the workers have stopped producing.
    [slo_window_s] (default 60) is the rolling window behind the [slo]
    verb and the [server.slo.*] gauges. [request_seed] seeds the
    deterministic server-assigned request-ID stream
    ({!Repro_obs.Request_ctx.generator}, scoped by host:bound-port). *)

val port : t -> int
(** The bound port (useful when [config.port] was 0). *)

val slo_snapshot : t -> Slo.snapshot
(** The live rolling-window view — what the [slo] verb renders. *)

val serve : t -> unit
(** Run the accept loop in the calling domain until {!stop}; spawns the
    worker domains and joins them (after draining the queue) before
    returning. Never raises out of a connection: per-connection failures
    are counted ([server.connection.errors]) and the connection closed. *)

val stop : t -> unit
(** Request shutdown; safe to call from a signal handler or another
    domain. Idempotent. *)
