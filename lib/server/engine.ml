open Repro_relation
module Clock = Repro_util.Clock
module Prng = Repro_util.Prng
module Obs = Repro_obs.Obs
module Cache = Csdl.Synopsis_cache
module Fault = Csdl.Fault
module Fault_injection = Repro_robustness.Fault_injection

type config = {
  cache_capacity : int;
  breaker : Breaker.config;
  backoff : Backoff.policy;
  chaos : float;
  seed : int;
  drift_limit : float;
}

let default_config =
  {
    cache_capacity = 32;
    breaker = Breaker.default_config;
    backoff = Backoff.default;
    chaos = 0.0;
    seed = 1;
    drift_limit = 8.0;
  }

type meta = {
  m_cache_key : Cache.key;
  m_swapped : bool;
  m_prior : float;  (** independence prior, computed once at startup *)
  m_shards : int;
}

type drift = {
  d_key : string;
  d_qerror : float;
  d_worsened : float;
  d_limit : float;
  d_fault : Fault.error option;
}

type t = {
  config : config;
  obs : Obs.ctx;
  clock : Clock.t;
  sleep : Clock.sleeper;
  store_path : string;
  resolve_table : string -> Table.t;
  metas : (string, meta) Hashtbl.t Atomic.t;
      (* immutable snapshot, swapped wholesale by [reload]; requests read
         it once at entry, so a swap never disturbs one in flight *)
  cache : Csdl.Synopsis_flat.t Cache.t;
      (* the cache holds flattened synopses: freezing (and structurally
         validating) happens once per load, so the per-request hot path is
         the linear flat-array scans only *)
  cache_mutex : Mutex.t;
  breaker : Breaker.t;
  flights : (Csdl.Synopsis_flat.t, Fault.error) result Single_flight.t;
  reloads : (int, Fault.error) result Single_flight.t;
  load_seq : int Atomic.t;
  drift : drift list Atomic.t;
      (* per-key sentinel verdicts of the latest replay (create or
         reload); swapped wholesale like [metas] *)
  sentinel_window : Repro_obs.Rolling.Histogram.t;
      (* rolling window of every sentinel q-error replayed *)
}

(* |A| * |B| / max(d_A, d_B): the System-R independence prior of
   [Estimator.independence_prior], computed from the stored synopsis'
   table handles instead of a full profile (the formula is symmetric, so
   sampler orientation does not matter). *)
let prior_of_synopsis (syn : Csdl.Synopsis.t) =
  let side (s : Csdl.Sample.t) =
    (Table.cardinality s.table, Table.distinct_count s.table s.column)
  in
  let card_a, d_a = side syn.sample_a in
  let card_b, d_b = side syn.sample_b in
  let d = max d_a d_b in
  if d = 0 then 0.0
  else float_of_int card_a *. float_of_int card_b /. float_of_int d

let meta_of_stored (s : Csdl.Synopsis_store.stored) =
  let resolved = s.synopsis.Csdl.Synopsis.resolved in
  {
    m_cache_key =
      {
        Cache.fp_a = s.fingerprint_a;
        fp_b = s.fingerprint_b;
        variant = Csdl.Spec.to_string resolved.Csdl.Budget.spec;
        theta = resolved.Csdl.Budget.theta;
        prng_key = s.prng_key;
      };
    m_swapped = s.swapped;
    m_prior = prior_of_synopsis s.synopsis;
    m_shards = s.shards;
  }

(* ---------------- drift sentinels ---------------- *)

(* Replay every stored sentinel against the freshly flattened synopsis
   and compare with its recorded truth. Runs at create and reload — the
   two moments the served synopsis can change under a live server — so
   accuracy drift (typically from delta maintenance) is caught before
   the drifted synopsis answers a single client query. The drift signal
   is relative: each sentinel carries the q-error the synopsis scored at
   build time, and only a q-error [drift_limit] times worse trips — a
   legitimately hard sentinel (tiny sample, selective filter) never
   warns on a fresh store. Unparseable sentinels are skipped (a sentinel
   can never take the server down); an estimator fault on a sentinel
   likewise. *)
let replay_sentinels t entries =
  let limit = t.config.drift_limit in
  let drifts =
    List.filter_map
      (fun ((s : Csdl.Synopsis_store.stored), flat) ->
        let worst = ref 0.0 and worsened = ref 0.0 and replayed = ref 0 in
        List.iter
          (fun (sen : Csdl.Sentinel.t) ->
            match Csdl.Sentinel.replay flat ~swapped:s.swapped sen with
            | None -> ()
            | Some q ->
                incr replayed;
                if q > !worst then worst := q;
                let w = q /. Float.max 1.0 sen.Csdl.Sentinel.baseline in
                if w > !worsened then worsened := w;
                Repro_obs.Rolling.Histogram.observe t.sentinel_window q)
          s.sentinels;
        if !replayed = 0 then None
        else begin
          Obs.set_gauge t.obs
            ~labels:[ ("key", s.key) ]
            "server.sentinel.qerror" !worst;
          let tripped = !worsened > limit in
          if tripped then Obs.count t.obs "server.drift.tripped" 1;
          Some
            {
              d_key = s.key;
              d_qerror = !worst;
              d_worsened = !worsened;
              d_limit = limit;
              d_fault =
                (if tripped then
                   Some
                     (Fault.Drift { key = s.key; worsened = !worsened; limit })
                 else None);
            }
        end)
      entries
  in
  Atomic.set t.drift drifts

let drift_status t = Atomic.get t.drift
let sentinel_window t = t.sentinel_window

let create ?(obs = Obs.null) ?(clock = Clock.wall) ?(sleep = Clock.sleepf)
    config ~resolve_table ~store_path =
  let config =
    {
      config with
      cache_capacity = max 1 config.cache_capacity;
      chaos = Float.max 0.0 (Float.min 1.0 config.chaos);
      (* q-error is >= 1 by construction, so a smaller limit would trip
         on every replay *)
      drift_limit = Float.max 1.0 config.drift_limit;
    }
  in
  match Csdl.Synopsis_store.read ~resolve_table ~path:store_path with
  | Error _ as e -> e
  | Ok entries ->
      let metas = Hashtbl.create 16 in
      let cache = Cache.create ~obs ~capacity:config.cache_capacity () in
      let flats =
        List.map
          (fun (s : Csdl.Synopsis_store.stored) ->
            let meta = meta_of_stored s in
            let flat = Csdl.Synopsis_flat.of_synopsis s.synopsis in
            Hashtbl.replace metas s.key meta;
            Cache.insert cache meta.m_cache_key flat;
            (s, flat))
          entries
      in
      Obs.count obs "server.requests.total" 0;
      List.iter
        (fun cls -> Obs.count obs ~labels:[ ("class", cls) ] "server.outcome" 0)
        [ "answered"; "degraded"; "deadline_exceeded" ];
      List.iter
        (fun mode ->
          Obs.count obs ~labels:[ ("mode", mode) ] "server.chaos.injected" 0)
        [ "fail"; "corrupt" ];
      Obs.count obs "server.loads.total" 0;
      Obs.count obs "server.reloads.total" 0;
      Obs.count obs "server.drift.tripped" 0;
      let t =
        {
          config;
          obs;
          clock;
          sleep;
          store_path;
          resolve_table;
          metas = Atomic.make metas;
          cache;
          cache_mutex = Mutex.create ();
          breaker = Breaker.create ~obs ~clock config.breaker;
          flights = Single_flight.create ~obs ();
          reloads = Single_flight.create ~obs ();
          load_seq = Atomic.make 0;
          drift = Atomic.make [];
          sentinel_window =
            Repro_obs.Rolling.Histogram.create ~now:clock ~window_s:3600.0 ();
        }
      in
      replay_sentinels t flats;
      Ok t

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) (Atomic.get t.metas) []
  |> List.sort compare

let mem t key = Hashtbl.mem (Atomic.get t.metas) key

let cache_stats t =
  Mutex.lock t.cache_mutex;
  let stats = Cache.stats t.cache in
  Mutex.unlock t.cache_mutex;
  stats

let breaker_state t key = Breaker.state t.breaker key

let cache_find t meta =
  Mutex.lock t.cache_mutex;
  let found = Cache.find t.cache meta.m_cache_key in
  Mutex.unlock t.cache_mutex;
  found

let cache_insert t meta syn =
  Mutex.lock t.cache_mutex;
  Cache.insert t.cache meta.m_cache_key syn;
  Mutex.unlock t.cache_mutex

(* One decode of the store file, with chaos injection. Chaos draws from a
   per-load keyed stream, so a run replays exactly from (seed, load
   sequence); a silent corruption is returned as [Ok] on purpose — the
   checked estimator, not the loader, must catch it. *)
let load_once t key seq =
  Obs.count t.obs "server.loads.total" 1;
  match
    Csdl.Synopsis_store.read ~resolve_table:t.resolve_table
      ~path:t.store_path
  with
  | Error _ as e -> e
  | Ok entries -> (
      match
        List.find_opt
          (fun (s : Csdl.Synopsis_store.stored) -> s.key = key)
          entries
      with
      | None ->
          Error
            (Fault.Store_mismatch
               { what = "key"; detail = key ^ " missing from store" })
      | Some s ->
          (* flatten {e after} any chaos corruption: the memoized
             validation verdict must describe the synopsis actually
             served, so the checked estimator still catches injected
             corruption *)
          let flat syn = Csdl.Synopsis_flat.of_synopsis syn in
          if t.config.chaos <= 0.0 then Ok (flat s.synopsis)
          else
            let prng =
              Prng.create_keyed ~seed:t.config.seed
                (Printf.sprintf "chaos/%s/load=%d" key seq)
            in
            if Prng.float prng >= t.config.chaos then Ok (flat s.synopsis)
            else if Prng.bool prng then begin
              Obs.count t.obs
                ~labels:[ ("mode", "fail") ]
                "server.chaos.injected" 1;
              Error
                (Fault.Store_mismatch
                   {
                     what = "chaos";
                     detail = "injected load failure for " ^ key;
                   })
            end
            else begin
              Obs.count t.obs
                ~labels:[ ("mode", "corrupt") ]
                "server.chaos.injected" 1;
              let fault = Fault_injection.pick prng in
              Ok (flat (Fault_injection.corrupt fault prng s.synopsis))
            end)

(* Resolve a synopsis: cache, then a single-flight breaker-gated retrying
   decode. The breaker counts one failure per exhausted retry sequence
   (not per attempt), so [threshold] consecutive doomed loads trip it.
   The second component reports whether the first lookup hit the cache —
   the access log's cache column. *)
let load t ~deadline key meta =
  match cache_find t meta with
  | Some syn -> (Ok syn, true)
  | None ->
      ( Single_flight.run t.flights key (fun () ->
          match cache_find t meta with
          | Some syn -> Ok syn
          | None -> (
              match Breaker.acquire t.breaker key with
              | `Open remaining ->
                  Error
                    (Fault.Store_mismatch
                       {
                         what = "circuit breaker";
                         detail =
                           Printf.sprintf "open for %s; retry in %.3fs" key
                             remaining;
                       })
              | `Proceed ->
                  let seq = Atomic.fetch_and_add t.load_seq 1 in
                  let jitter =
                    Prng.create_keyed ~seed:t.config.seed
                      (Printf.sprintf "backoff/%s/seq=%d" key seq)
                  in
                  let result, _attempts =
                    Backoff.retry ~sleep:t.sleep ~deadline t.config.backoff
                      jitter (fun () -> load_once t key seq)
                  in
                  (match result with
                  | Ok syn ->
                      Breaker.success t.breaker key;
                      cache_insert t meta syn
                  | Error _ -> Breaker.failure t.breaker key);
                  result)),
        false )

(* Swap in the store file's current contents without dropping in-flight
   requests. The fresh snapshot (metadata + warmed cache entries) is built
   off to the side and installed with one atomic store: requests already
   past their metas read keep the old meta, and the flats it leads to are
   immutable, so they complete against the synopsis they started with;
   every later request sees the new snapshot. A mutated table changes its
   fingerprint and therefore its cache key, so reloaded synopses never
   collide with cached pre-reload flats (which age out of the LRU).
   Concurrent reloads collapse into one decode via single-flight; a
   failed reload leaves the old snapshot serving. *)
let reload t =
  Single_flight.run t.reloads "reload" (fun () ->
      Obs.count t.obs "server.reloads.total" 1;
      match
        Csdl.Synopsis_store.read ~resolve_table:t.resolve_table
          ~path:t.store_path
      with
      | Error fault -> Error fault
      | Ok entries ->
          let metas = Hashtbl.create 16 in
          let flats =
            List.map
              (fun (s : Csdl.Synopsis_store.stored) ->
                let meta = meta_of_stored s in
                let flat = Csdl.Synopsis_flat.of_synopsis s.synopsis in
                Hashtbl.replace metas s.key meta;
                cache_insert t meta flat;
                (s, flat))
              entries
          in
          Atomic.set t.metas metas;
          replay_sentinels t flats;
          Ok (Hashtbl.length metas))

type outcome =
  | Answered of float
  | Degraded of { value : float; trace : Fault.trace }
  | Deadline_exceeded of Fault.error

let outcome_class = function
  | Answered _ -> "answered"
  | Degraded _ -> "degraded"
  | Deadline_exceeded _ -> "deadline_exceeded"

let degrade meta ~rung fault =
  Degraded { value = meta.m_prior; trace = [ { Fault.rung; fault } ] }

type detail = { cache_hit : bool; shards : int }

let handle_traced t ~deadline ~key ?rid ?pred_a ?pred_b () =
  let meta =
    match Hashtbl.find_opt (Atomic.get t.metas) key with
    | Some meta -> meta
    | None -> raise Not_found
  in
  let attrs =
    ("key", key)
    :: (match rid with Some r -> [ ("request_id", r) ] | None -> [])
  in
  Obs.Span.with_ t.obs ~name:"server.request" ~attrs (fun () ->
      let start = t.clock () in
      Obs.count t.obs "server.requests.total" 1;
      let timed_out () =
        Deadline_exceeded (Deadline.fault ~what:"request" deadline)
      in
      let cache_hit = ref false in
      let outcome =
        if Deadline.exceeded deadline then timed_out ()
        else
          match load t ~deadline key meta with
          | Error fault, _ ->
              if Deadline.exceeded deadline then timed_out ()
              else degrade meta ~rung:"synopsis load" fault
          | Ok syn, hit ->
              cache_hit := hit;
              if Deadline.exceeded deadline then timed_out ()
              else
                let pa, pb =
                  if meta.m_swapped then (pred_b, pred_a) else (pred_a, pred_b)
                in
                (* [run_checked_flat]'s Ok value is bit-identical to
                   [run]'s, and an empty filtered sample is [run]'s plain
                   0.0 — mapping it back keeps server replies
                   byte-identical to batch mode. *)
                (match
                   Csdl.Estimate.run_checked_flat ?pred_a:pa ?pred_b:pb syn
                 with
                | Ok b ->
                    if Deadline.exceeded deadline then timed_out ()
                    else Answered b.Csdl.Estimate.estimate
                | Error (Fault.Empty_filtered_sample _) ->
                    if Deadline.exceeded deadline then timed_out ()
                    else Answered 0.0
                | Error fault ->
                    if Deadline.exceeded deadline then timed_out ()
                    else degrade meta ~rung:"csdl" fault)
      in
      Obs.count t.obs
        ~labels:[ ("class", outcome_class outcome) ]
        "server.outcome" 1;
      let elapsed = t.clock () -. start in
      (match rid with
      | Some r -> Obs.observe_exemplar t.obs "server.request.seconds" ~id:r elapsed
      | None -> Obs.observe t.obs "server.request.seconds" elapsed);
      (outcome, { cache_hit = !cache_hit; shards = meta.m_shards }))

let handle t ~deadline ~key ?rid ?pred_a ?pred_b () =
  fst (handle_traced t ~deadline ~key ?rid ?pred_a ?pred_b ())
