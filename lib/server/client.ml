type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let connect ?(timeout_s = 10.0) ~host ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
   with exn ->
     (try Unix.close fd with _ -> ());
     raise exn);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc
  end

let raw t line =
  output_string t.oc (line ^ "\n");
  flush t.oc;
  input_line t.ic

let estimate_full t ?id ?deadline_s ?pred_a ?pred_b ~key () =
  let line =
    Protocol.render_estimate ~key ?id ?deadline_s ?pred_a ?pred_b ()
  in
  Protocol.parse_reply_id (raw t line)

let estimate t ?id ?deadline_s ?pred_a ?pred_b ~key () =
  Result.map snd (estimate_full t ?id ?deadline_s ?pred_a ?pred_b ~key ())

let reload t =
  let line = raw t "reload" in
  match String.split_on_char ' ' (String.trim line) with
  | "ok" :: _ -> Ok line
  | _ -> Error line

let metrics t =
  let header = raw t "metrics" in
  match String.split_on_char ' ' (String.trim header) with
  | [ "ok"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> Ok (really_input_string t.ic n)
      | _ -> Error ("bad metrics header " ^ header))
  | _ -> Error ("bad metrics header " ^ header)
