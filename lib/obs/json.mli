(** The tiny JSON dialect shared by the observability exporters and
    readers: the {!Trace} JSONL span/metric lines, the {!Report} trace
    analytics, and the benchlib [BENCH_*.json] provenance artifacts.

    This is deliberately not a general-purpose JSON library — it covers
    exactly what those producers emit (objects, arrays, strings, finite
    and non-finite numbers, booleans, null) so the repo needs no external
    dependency. Non-finite floats, which JSON cannot represent as number
    literals, are printed as the strings ["inf"], ["-inf"] and ["nan"];
    {!to_float} reads them back, so q-error infinities survive a
    round-trip. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape_string : string -> string
(** JSON string-content escaping (surrounding quotes not included). *)

val number : float -> t
(** [Num v] for finite [v]; the sentinel strings above otherwise. *)

val to_string : t -> string
(** Compact single-line rendering. Finite floats print with 17 significant
    digits and round-trip exactly. *)

val to_string_multiline : t -> string
(** Two-space-indented rendering for artifacts meant to be diffed and read
    by humans ([BENCH_*.json]). Parses back identically. *)

val parse : string -> (t, string) result
(** Parse one complete JSON value (trailing whitespace allowed, anything
    else is an error). [Error] carries a self-locating message with the
    byte offset of the first problem. Only ASCII [\u] escapes are
    supported — nothing in this repo emits others. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_float : t -> float option
(** [Num v], or the sentinel strings ["inf"], ["-inf"], ["nan"]. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
