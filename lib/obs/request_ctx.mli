(** Per-request context for the serving daemon.

    Every served request carries a request ID that tags its spans, its
    access-log record, its metric exemplar, and the reply echoed to the
    client. Clients may supply their own ID on the wire ([id=<token>]);
    otherwise the server assigns one from a deterministic PRNG-key-derived
    stream, so a fixed [(seed, scope)] pair replays the same IDs run after
    run — the same property the sampling pipeline gets from
    [Repro_util.Prng.derive]. *)

type gen
(** A deterministic ID generator. Thread-safe: [next] is a single atomic
    fetch-and-add, so any worker domain may draw from a shared generator. *)

val generator : ?seed:int -> string -> gen
(** [generator ~seed scope] derives the stream base from [(seed, scope)]
    with the splitmix64 finalizer chain ([seed] defaults to 0). Distinct
    scopes (e.g. ["server/127.0.0.1:7457"]) yield disjoint ID streams. *)

val next : gen -> string
(** Draw the next ID: 16 lowercase hex characters, always
    {!is_valid_id}. *)

type t = {
  id : string;  (** the request ID, always satisfying {!is_valid_id} *)
  client_supplied : bool;
      (** whether the client sent the ID (vs server-assigned) *)
}

val max_id_length : int
(** 64 — the longest ID accepted on the wire. *)

val is_valid_id : string -> bool
(** Wire-safe IDs: 1–64 characters drawn from
    [A-Za-z0-9._:-]. Rejects anything that could break the line-oriented
    protocol or explode label cardinality if misused. *)

val of_client : string -> t option
(** Wrap a client-supplied ID, or [None] if it fails {!is_valid_id}. *)

val fresh : gen -> t
(** A server-assigned context drawn from the generator. *)
