(* Per-request identity for the serving daemon.

   IDs are derived with the same splitmix64 finalizer chain as
   [Repro_util.Prng.derive64] so a (seed, scope) pair names the same ID
   stream on every platform and --jobs setting. The algorithm is
   duplicated rather than imported because [repro_obs] sits below
   [repro_util] in the library graph ([Repro_util.Pool] instruments
   itself through this library), so depending on it would be a cycle. *)

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64's finalizer: a bijective avalanche over 64 bits. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* keyed derivation: absorb one scope byte per mix, then the length *)
let derive64 state key =
  let state = ref (mix64 (Int64.add state golden_gamma)) in
  String.iter
    (fun c ->
      state :=
        mix64
          (Int64.add
             (Int64.logxor !state (Int64.of_int (Char.code c)))
             golden_gamma))
    key;
  mix64 (Int64.add !state (Int64.of_int (String.length key)))

type gen = { base : int64; counter : int Atomic.t }

let generator ?(seed = 0) scope =
  { base = derive64 (Int64.of_int seed) scope; counter = Atomic.make 0 }

let next gen =
  let n = Atomic.fetch_and_add gen.counter 1 in
  Printf.sprintf "%016Lx"
    (mix64 (Int64.add gen.base (Int64.mul (Int64.of_int (n + 1)) golden_gamma)))

type t = { id : string; client_supplied : bool }

let max_id_length = 64

let is_id_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | ':' | '-' -> true
  | _ -> false

let is_valid_id s =
  let n = String.length s in
  n >= 1 && n <= max_id_length && String.for_all is_id_char s

let of_client id =
  if is_valid_id id then Some { id; client_supplied = true } else None

let fresh gen = { id = next gen; client_supplied = false }
