(* Lock-free metric cells. Floats live in a [float Atomic.t]; accumulation
   is a CAS retry loop on the boxed value, which is correct because
   [Atomic.compare_and_set] compares the box physically and [Atomic.get]
   returns the exact box that was stored. *)

let rec atomic_add_float cell delta =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. delta)) then
    atomic_add_float cell delta

module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let add t n = ignore (Atomic.fetch_and_add t n : int)
  let incr t = add t 1
  let value = Atomic.get
end

module Gauge = struct
  type t = float Atomic.t

  let create () = Atomic.make 0.0
  let set = Atomic.set
  let add = atomic_add_float
  let value = Atomic.get
end

module Histogram = struct
  (* Power-of-two buckets: bucket [i] has exclusive upper bound
     [2^(i + low_exp)] with [low_exp = -30], so the range 2^-30 (~1ns as
     seconds) .. 2^35 (~3.4e10: iteration counts, tuple counts) is covered
     and both tails clamp into the end buckets. *)
  let low_exp = -30
  let bucket_count = 66

  type t = {
    buckets : int Atomic.t array;
    sum : float Atomic.t;
    count : int Atomic.t;
    exemplar : (string * float) option Atomic.t;
  }

  let create () =
    {
      buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
      sum = Atomic.make 0.0;
      count = Atomic.make 0;
      exemplar = Atomic.make None;
    }

  let bucket_upper i = Float.ldexp 1.0 (low_exp + i + 1)

  let bucket_index v =
    if not (v > 0.0) then 0 (* zero, negatives; NaN never reaches here *)
    else if v = Float.infinity then bucket_count - 1
    else begin
      (* frexp: v = m * 2^e with m in [0.5, 1), i.e. v in [2^(e-1), 2^e);
         the bucket with upper bound 2^e is index e - 1 - low_exp. *)
      let _, e = Float.frexp v in
      let i = e - 1 - low_exp in
      if i < 0 then 0 else if i >= bucket_count then bucket_count - 1 else i
    end

  let observe t v =
    if not (Float.is_nan v) then begin
      ignore (Atomic.fetch_and_add t.buckets.(bucket_index v) 1 : int);
      atomic_add_float t.sum v;
      ignore (Atomic.fetch_and_add t.count 1 : int)
    end

  let count t = Atomic.get t.count
  let sum t = Atomic.get t.sum
  let bucket_value t i = Atomic.get t.buckets.(i)

  (* Exemplars ride alongside the buckets: the last (id, value) pair
     observed, for joining a scraped latency spike back to the request
     that caused it. Never rendered into the Prometheus text format, so
     registries with exemplars snapshot byte-identically to ones
     without. *)
  let observe_exemplar t ~id v =
    observe t v;
    if not (Float.is_nan v) then Atomic.set t.exemplar (Some (id, v))

  let exemplar t = Atomic.get t.exemplar

  let nonzero_buckets t =
    let acc = ref [] in
    for i = bucket_count - 1 downto 0 do
      let c = Atomic.get t.buckets.(i) in
      if c > 0 then acc := (bucket_upper i, c) :: !acc
    done;
    !acc

  let bucket_lower i = if i = 0 then 0.0 else bucket_upper (i - 1)

  (* The bucket walk, abstracted over how bucket counts are read so
     [Rolling] can reuse the exact same estimate over its merged
     window slots. *)
  let quantile_of ~bucket ~total q =
    if total = 0 then Float.nan
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      (* Prometheus-style rank: the q-th observation in cumulative bucket
         order, linearly interpolated inside the bucket it lands in. *)
      let rank = q *. float_of_int total in
      let rec find i cumulative =
        (* total > 0 guarantees some bucket is non-empty, so [find]
           always terminates before running off the end *)
        let c = bucket i in
        let cumulative' = cumulative +. float_of_int c in
        if c > 0 && cumulative' >= rank then
          if i = bucket_count - 1 then
            (* the clamp bucket holds everything >= its lower bound,
               including infinities — its nominal upper bound says nothing
               about the observations, so don't interpolate toward it *)
            bucket_lower i
          else begin
            let lower = bucket_lower i and upper = bucket_upper i in
            let within = (rank -. cumulative) /. float_of_int c in
            lower +. (Float.max 0.0 (Float.min 1.0 within) *. (upper -. lower))
          end
        else find (i + 1) cumulative'
      in
      find 0 0.0
    end

  let quantile t q =
    quantile_of ~bucket:(fun i -> Atomic.get t.buckets.(i)) ~total:(count t) q
end

type point =
  | P_counter of int
  | P_gauge of float
  | P_histogram of { count : int; sum : float; buckets : (float * int) list }

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

module Registry = struct
  (* Creation and lookup take the mutex; the returned cells are then
     mutated lock-free. Keys canonicalise the label order so the same
     logical metric is one cell regardless of call-site label order. *)
  type key = string * (string * string) list

  type t = { mutex : Mutex.t; table : (key, metric) Hashtbl.t }

  let create () = { mutex = Mutex.create (); table = Hashtbl.create 64 }

  let canonical labels =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels

  let kind_name = function
    | M_counter _ -> "counter"
    | M_gauge _ -> "gauge"
    | M_histogram _ -> "histogram"

  let get_or_create t ?(labels = []) name ~kind ~make ~cast =
    let key = (name, canonical labels) in
    Mutex.lock t.mutex;
    let metric =
      match Hashtbl.find_opt t.table key with
      | Some m -> m
      | None ->
          let m = make () in
          Hashtbl.add t.table key m;
          m
    in
    Mutex.unlock t.mutex;
    match cast metric with
    | Some cell -> cell
    | None ->
        invalid_arg
          (Printf.sprintf "Metrics.Registry: %s is a %s, not a %s" name
             (kind_name metric) kind)

  let counter t ?labels name =
    get_or_create t ?labels name ~kind:"counter"
      ~make:(fun () -> M_counter (Counter.create ()))
      ~cast:(function M_counter c -> Some c | _ -> None)

  let gauge t ?labels name =
    get_or_create t ?labels name ~kind:"gauge"
      ~make:(fun () -> M_gauge (Gauge.create ()))
      ~cast:(function M_gauge g -> Some g | _ -> None)

  let histogram t ?labels name =
    get_or_create t ?labels name ~kind:"histogram"
      ~make:(fun () -> M_histogram (Histogram.create ()))
      ~cast:(function M_histogram h -> Some h | _ -> None)

  let snapshot t =
    Mutex.lock t.mutex;
    let entries =
      Hashtbl.fold (fun (name, labels) m acc -> (name, labels, m) :: acc)
        t.table []
    in
    Mutex.unlock t.mutex;
    entries
    |> List.map (fun (name, labels, m) ->
           let p =
             match m with
             | M_counter c -> P_counter (Counter.value c)
             | M_gauge g -> P_gauge (Gauge.value g)
             | M_histogram h ->
                 P_histogram
                   {
                     count = Histogram.count h;
                     sum = Histogram.sum h;
                     buckets = Histogram.nonzero_buckets h;
                   }
           in
           (name, labels, p))
    |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))
end

(* ---------------- Prometheus text rendering ---------------- *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
             labels)
      ^ "}"

let render_prometheus registry =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (raw_name, labels, point) ->
      let name = sanitize raw_name in
      match point with
      | P_counter v ->
          type_line name "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (render_labels labels) v)
      | P_gauge v ->
          type_line name "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (render_labels labels)
               (float_str v))
      | P_histogram { count; sum; buckets } ->
          type_line name "histogram";
          let cumulative = ref 0 in
          List.iter
            (fun (upper, c) ->
              cumulative := !cumulative + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (render_labels (labels @ [ ("le", float_str upper) ]))
                   !cumulative))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name
               (render_labels (labels @ [ ("le", "+Inf") ]))
               count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
               (float_str sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (render_labels labels)
               count))
    (Registry.snapshot registry);
  Buffer.contents buf
