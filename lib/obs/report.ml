type diagnostic = { line : int; reason : string }

type reading = {
  spans : Trace.span list;
  metric_lines : int;
  other_lines : int;
  skipped : diagnostic list;
}

let is_blank s = String.for_all (function ' ' | '\t' | '\r' -> true | _ -> false) s

let of_lines lines =
  let rev_spans = ref [] and rev_skipped = ref [] in
  let metric_lines = ref 0 and other_lines = ref 0 in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      if not (is_blank raw) then
        match Json.parse raw with
        | Error reason ->
            rev_skipped :=
              { line; reason = Printf.sprintf "line %d: %s" line reason }
              :: !rev_skipped
        | Ok value -> (
            match Option.bind (Json.member "type" value) Json.to_str with
            | Some "span" -> (
                match Trace.span_of_value value with
                | Ok span -> rev_spans := span :: !rev_spans
                | Error reason ->
                    rev_skipped :=
                      { line; reason = Printf.sprintf "line %d: %s" line reason }
                      :: !rev_skipped)
            | Some ("counter" | "gauge" | "histogram") -> incr metric_lines
            | Some _ | None -> incr other_lines))
    lines;
  {
    spans = List.rev !rev_spans;
    metric_lines = !metric_lines;
    other_lines = !other_lines;
    skipped = List.rev !rev_skipped;
  }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rev = ref [] in
      (try
         while true do
           rev := input_line ic :: !rev
         done
       with End_of_file -> ());
      of_lines (List.rev !rev))

(* ---------------- span trees ---------------- *)

type node = { span : Trace.span; children : node list }

let by_start a b =
  match Float.compare a.Trace.start_s b.Trace.start_s with
  | 0 -> compare a.Trace.id b.Trace.id
  | c -> c

let forest spans =
  let ids = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace ids s.Trace.id ()) spans;
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun s ->
      match s.Trace.parent with
      | Some p when Hashtbl.mem ids p ->
          Hashtbl.replace children p
            (s :: (Option.value ~default:[] (Hashtbl.find_opt children p)))
      | Some _ | None -> roots := s :: !roots)
    spans;
  let rec build s =
    {
      span = s;
      children =
        Option.value ~default:[] (Hashtbl.find_opt children s.Trace.id)
        |> List.sort by_start
        |> List.map build;
    }
  in
  !roots |> List.sort by_start |> List.map build

(* ---------------- aggregation ---------------- *)

type agg = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  p50_s : float;
  p95_s : float;
  max_s : float;
}

(* Linear-interpolation quantile over a sorted array — Summary.quantile's
   semantics, reimplemented here because repro_obs sits below repro_util. *)
let quantile_sorted p xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let lo = if lo < 0 then 0 else if lo > n - 1 then n - 1 else lo in
    let hi = if lo + 1 > n - 1 then n - 1 else lo + 1 in
    xs.(lo) +. ((h -. float_of_int lo) *. (xs.(hi) -. xs.(lo)))
  end

let aggregate spans =
  (* time spent in direct children, per parent id *)
  let child_time = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match s.Trace.parent with
      | None -> ()
      | Some p ->
          Hashtbl.replace child_time p
            (s.Trace.duration_s
            +. Option.value ~default:0.0 (Hashtbl.find_opt child_time p)))
    spans;
  let groups = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.replace groups s.Trace.name
        (s :: Option.value ~default:[] (Hashtbl.find_opt groups s.Trace.name)))
    spans;
  Hashtbl.fold
    (fun name group acc ->
      let durations =
        Array.of_list (List.map (fun s -> s.Trace.duration_s) group)
      in
      Array.sort Float.compare durations;
      let total_s = Array.fold_left ( +. ) 0.0 durations in
      let self_s =
        List.fold_left
          (fun acc s ->
            let children =
              Option.value ~default:0.0
                (Hashtbl.find_opt child_time s.Trace.id)
            in
            acc +. Float.max 0.0 (s.Trace.duration_s -. children))
          0.0 group
      in
      {
        name;
        count = Array.length durations;
        total_s;
        self_s;
        p50_s = quantile_sorted 0.5 durations;
        p95_s = quantile_sorted 0.95 durations;
        max_s = durations.(Array.length durations - 1);
      }
      :: acc)
    groups []
  |> List.sort (fun a b ->
         match Float.compare b.total_s a.total_s with
         | 0 -> String.compare a.name b.name
         | c -> c)

let longest nodes =
  List.fold_left
    (fun best node ->
      match best with
      | Some b when b.span.Trace.duration_s >= node.span.Trace.duration_s ->
          Some b
      | _ -> Some node)
    None nodes

let critical_path nodes =
  let rec descend node acc =
    match longest node.children with
    | None -> List.rev (node.span :: acc)
    | Some child -> descend child (node.span :: acc)
  in
  match longest nodes with None -> [] | Some root -> descend root []

let folded nodes =
  let weights = Hashtbl.create 64 in
  let rec walk prefix node =
    let stack =
      if prefix = "" then node.span.Trace.name
      else prefix ^ ";" ^ node.span.Trace.name
    in
    let child_time =
      List.fold_left
        (fun acc c -> acc +. c.span.Trace.duration_s)
        0.0 node.children
    in
    let self_us =
      int_of_float
        (Float.round
           (Float.max 0.0 (node.span.Trace.duration_s -. child_time) *. 1e6))
    in
    if self_us > 0 then
      Hashtbl.replace weights stack
        (self_us + Option.value ~default:0 (Hashtbl.find_opt weights stack));
    List.iter (walk stack) node.children
  in
  List.iter (walk "") nodes;
  Hashtbl.fold (fun stack w acc -> (stack, w) :: acc) weights []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---------------- rendering ---------------- *)

let pp_seconds ppf v =
  if Float.is_nan v then Format.pp_print_string ppf "n/a"
  else if v >= 1.0 then Format.fprintf ppf "%.3fs" v
  else if v >= 1e-3 then Format.fprintf ppf "%.3fms" (v *. 1e3)
  else Format.fprintf ppf "%.1fus" (v *. 1e6)

let seconds v = Format.asprintf "%a" pp_seconds v

let pp_table ppf ~header rows =
  let all = header :: rows in
  let arity = List.length header in
  let widths = Array.make arity 0 in
  List.iter
    (List.iteri (fun j cell -> widths.(j) <- max widths.(j) (String.length cell)))
    all;
  let row_line row =
    row
    |> List.mapi (fun j cell -> Printf.sprintf "%-*s" widths.(j) cell)
    |> String.concat "  "
  in
  let rule = String.make (Array.fold_left ( + ) (2 * (arity - 1)) widths) '-' in
  Format.fprintf ppf "%s@.%s@." (row_line header) rule;
  List.iter (fun row -> Format.fprintf ppf "%s@." (row_line row)) rows

let pp ppf reading =
  let spans = reading.spans in
  let domains =
    List.sort_uniq compare (List.map (fun s -> s.Trace.domain) spans)
  in
  Format.fprintf ppf "%d spans on %d domain%s, %d metric line%s"
    (List.length spans) (List.length domains)
    (if List.length domains = 1 then "" else "s")
    reading.metric_lines
    (if reading.metric_lines = 1 then "" else "s");
  if reading.other_lines > 0 then
    Format.fprintf ppf ", %d unknown line%s" reading.other_lines
      (if reading.other_lines = 1 then "" else "s");
  if reading.skipped <> [] then
    Format.fprintf ppf ", %d malformed line%s skipped"
      (List.length reading.skipped)
      (if List.length reading.skipped = 1 then "" else "s");
  Format.fprintf ppf "@.";
  List.iteri
    (fun i d -> if i < 5 then Format.fprintf ppf "  skipped %s@." d.reason)
    reading.skipped;
  if List.length reading.skipped > 5 then
    Format.fprintf ppf "  ... and %d more@." (List.length reading.skipped - 5);
  let aggs = aggregate spans in
  if aggs <> [] then begin
    Format.fprintf ppf "@.== span aggregates (by total time) ==@.";
    pp_table ppf
      ~header:[ "span"; "count"; "total"; "self"; "p50"; "p95"; "max" ]
      (List.map
         (fun a ->
           [
             a.name;
             string_of_int a.count;
             seconds a.total_s;
             seconds a.self_s;
             seconds a.p50_s;
             seconds a.p95_s;
             seconds a.max_s;
           ])
         aggs)
  end;
  let path = critical_path (forest spans) in
  if path <> [] then begin
    let root_duration =
      match path with s :: _ -> s.Trace.duration_s | [] -> 0.0
    in
    Format.fprintf ppf "@.== critical path ==@.";
    List.iteri
      (fun depth s ->
        let share =
          if root_duration > 0.0 then
            Printf.sprintf " (%.0f%%)" (100.0 *. s.Trace.duration_s /. root_duration)
          else ""
        in
        Format.fprintf ppf "%s%s  %s%s@."
          (String.make (2 * depth) ' ')
          s.Trace.name
          (seconds s.Trace.duration_s)
          share)
      path
  end
