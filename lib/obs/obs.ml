type live = {
  registry : Metrics.Registry.t;
  sink : Trace.sink option;
  next_span : int Atomic.t;
  closed : bool Atomic.t;
}

type ctx = Null | Live of live

let null = Null

let create ?sink () =
  Live
    {
      registry = Metrics.Registry.create ();
      sink;
      next_span = Atomic.make 1;
      closed = Atomic.make false;
    }

let is_live = function Null -> false | Live _ -> true
let registry = function Null -> None | Live l -> Some l.registry

let count ctx ?labels name n =
  match ctx with
  | Null -> ()
  | Live l -> Metrics.Counter.add (Metrics.Registry.counter l.registry ?labels name) n

let set_gauge ctx ?labels name v =
  match ctx with
  | Null -> ()
  | Live l -> Metrics.Gauge.set (Metrics.Registry.gauge l.registry ?labels name) v

let observe ctx ?labels name v =
  match ctx with
  | Null -> ()
  | Live l ->
      Metrics.Histogram.observe
        (Metrics.Registry.histogram l.registry ?labels name)
        v

let observe_exemplar ctx ?labels name ~id v =
  match ctx with
  | Null -> ()
  | Live l ->
      Metrics.Histogram.observe_exemplar
        (Metrics.Registry.histogram l.registry ?labels name)
        ~id v

(* Runtime health gauges, refreshed on demand (the server calls this on
   every [metrics] verb): [Gc.quick_stat] reads counters without forcing
   a collection, so a scrape stays cheap. *)
let record_runtime ?domains ctx =
  match ctx with
  | Null -> ()
  | Live _ ->
      let s = Gc.quick_stat () in
      set_gauge ctx "runtime.gc.heap_words" (float_of_int s.Gc.heap_words);
      set_gauge ctx "runtime.gc.minor_collections"
        (float_of_int s.Gc.minor_collections);
      set_gauge ctx "runtime.gc.major_collections"
        (float_of_int s.Gc.major_collections);
      (match domains with
      | None -> ()
      | Some n -> set_gauge ctx "runtime.domains" (float_of_int n))

let set_build_info ctx ~store_version ~git =
  set_gauge ctx
    ~labels:
      [
        ("ocaml", Sys.ocaml_version);
        ("store_version", string_of_int store_version);
        ("git", git);
      ]
    "repro.build.info" 1.0

module Span = struct
  (* The innermost open span of the current domain. Spans never cross a
     domain boundary (Pool tasks start fresh on their worker), so a
     per-domain cell is exactly the right parent scope. *)
  let current : int option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let with_ ctx ~name ?(attrs = []) f =
    match ctx with
    | Null -> f ()
    | Live l -> (
        let start_s = Unix.gettimeofday () in
        let finish () =
          let duration_s = Float.max 0.0 (Unix.gettimeofday () -. start_s) in
          observe ctx ~labels:[ ("name", name) ] "span_seconds" duration_s;
          duration_s
        in
        match l.sink with
        | None -> (
            match f () with
            | v ->
                ignore (finish () : float);
                v
            | exception exn ->
                ignore (finish () : float);
                raise exn)
        | Some sink -> (
            let id = Atomic.fetch_and_add l.next_span 1 in
            let slot = Domain.DLS.get current in
            let parent = !slot in
            slot := Some id;
            let close extra_attrs =
              slot := parent;
              let duration_s = finish () in
              Trace.emit_span sink
                {
                  Trace.id;
                  parent;
                  name;
                  attrs = attrs @ extra_attrs;
                  domain = (Domain.self () :> int);
                  start_s;
                  duration_s;
                }
            in
            match f () with
            | v ->
                close [];
                v
            | exception exn ->
                close [ ("error", Printexc.to_string exn) ];
                raise exn))
end

let prometheus = function
  | Null -> None
  | Live l -> Some (Metrics.render_prometheus l.registry)

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (Trace.escape_string k)
             (Trace.escape_string v))
         labels)
  ^ "}"

let dump_metrics ctx =
  match ctx with
  | Null | Live { sink = None; _ } -> ()
  | Live { registry; sink = Some sink; _ } ->
      List.iter
        (fun (name, labels, point) ->
          let common =
            Printf.sprintf "\"name\":\"%s\",\"labels\":%s"
              (Trace.escape_string name) (json_labels labels)
          in
          let line =
            match point with
            | Metrics.P_counter v ->
                Printf.sprintf "{\"type\":\"counter\",%s,\"value\":%d}" common v
            | Metrics.P_gauge v ->
                Printf.sprintf "{\"type\":\"gauge\",%s,\"value\":%.17g}" common v
            | Metrics.P_histogram { count; sum; buckets } ->
                Printf.sprintf
                  "{\"type\":\"histogram\",%s,\"count\":%d,\"sum\":%.17g,\"buckets\":[%s]}"
                  common count sum
                  (String.concat ","
                     (List.map
                        (fun (upper, c) -> Printf.sprintf "[%.17g,%d]" upper c)
                        buckets))
          in
          Trace.emit_line sink line)
        (Metrics.Registry.snapshot registry)

let close ctx =
  match ctx with
  | Null | Live { sink = None; _ } -> ()
  | Live ({ sink = Some sink; _ } as l) ->
      (* The exchange makes close idempotent even on sinks that cannot
         track closure themselves (memory sinks): without it a second
         close would append the metrics dump again. *)
      if not (Atomic.exchange l.closed true) then begin
        dump_metrics ctx;
        Trace.close sink
      end
