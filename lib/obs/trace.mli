(** Tracing spans and the JSONL exporter.

    A span is one timed region of the pipeline (a synopsis draw, an online
    estimate, a pool fan-out) with a name, string attributes, the domain
    it ran on, and a parent link for nesting. Finished spans are pushed to
    a {!sink} — a thread-safe append-only writer, either a JSONL file /
    channel or an in-memory buffer for tests.

    JSONL format: one object per line. Spans are
    [{"type":"span","id":N,"parent":N|null,"name":S,"domain":N,
      "start":F,"duration":F,"attrs":{K:V,...}}]; the metrics dump
    appended at {!Obs.close} uses [{"type":"counter"|"gauge"|"histogram",
    "name":S,"labels":{...},...}] lines. *)

type span = {
  id : int;  (** unique within one {!Obs.ctx} *)
  parent : int option;  (** enclosing span on the same domain, if any *)
  name : string;
  attrs : (string * string) list;
  domain : int;  (** [Domain.self] the span ran on *)
  start_s : float;  (** wall-clock start, seconds since the epoch *)
  duration_s : float;
}

type sink

val file : string -> sink
(** JSONL sink writing (and truncating) [path]; closed by {!close}. *)

val channel : out_channel -> sink
(** JSONL sink on a caller-owned channel; {!close} flushes but does not
    close it. *)

val memory : unit -> sink
(** In-memory sink for tests; read back with {!spans} and {!lines}. *)

val emit_span : sink -> span -> unit
(** Thread-safe: serialises the span and appends one line. *)

val emit_line : sink -> string -> unit
(** Thread-safe raw append (used for the metrics dump). The line must be
    a complete JSON object without the trailing newline. *)

val spans : sink -> span list
(** Spans emitted so far, in emission order (memory sinks only; [[]] for
    file/channel sinks). *)

val lines : sink -> string list
(** All lines emitted so far (memory sinks only). *)

val close : sink -> unit
(** Flush, and close the underlying file if the sink owns it. Idempotent. *)

val escape_string : string -> string
(** JSON string-content escaping (quotes not included) — shared with the
    metrics dump in {!Obs}. *)

val span_to_json : span -> string
val span_of_json : string -> (span, string) result
(** Inverse of {!span_to_json}; [Error] describes the first parse problem.
    Round-trips exactly: floats are printed with 17 significant digits.
    Unknown fields are ignored, so readers stay compatible with producers
    that extend the line format. *)

val span_of_value : Json.t -> (span, string) result
(** {!span_of_json} on an already-parsed line — what {!Report} uses to
    classify lines without parsing twice. *)
