type span = {
  id : int;
  parent : int option;
  name : string;
  attrs : (string * string) list;
  domain : int;
  start_s : float;
  duration_s : float;
}

(* ---------------- JSON (the subset this module emits) ---------------- *)

let escape_string = Json.escape_string

let json_string s = "\"" ^ escape_string s ^ "\""

(* %.17g round-trips every float exactly. *)
let json_float v = Printf.sprintf "%.17g" v

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let span_to_json s =
  json_obj
    [
      ("type", json_string "span");
      ("id", string_of_int s.id);
      ("parent",
       match s.parent with None -> "null" | Some p -> string_of_int p);
      ("name", json_string s.name);
      ("domain", string_of_int s.domain);
      ("start", json_float s.start_s);
      ("duration", json_float s.duration_s);
      ("attrs", json_obj (List.map (fun (k, v) -> (k, json_string v)) s.attrs));
    ]

(* Parsing goes through the shared {!Json} reader; unknown fields are
   ignored so future producers can extend the line format without breaking
   old readers. *)

let span_of_value value =
  let find key = Json.member key value in
  let str key =
    match Option.bind (find key) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string field %S" key)
  in
  let num key =
    match Option.bind (find key) Json.to_float with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing numeric field %S" key)
  in
  let ( let* ) = Result.bind in
  let* ty = str "type" in
  if ty <> "span" then Error (Printf.sprintf "not a span line (type=%S)" ty)
  else
    let* name = str "name" in
    let* id = num "id" in
    let* domain = num "domain" in
    let* start_s = num "start" in
    let* duration_s = num "duration" in
    let* parent =
      match find "parent" with
      | Some Json.Null | None -> Ok None
      | Some (Json.Num p) -> Ok (Some (int_of_float p))
      | Some _ -> Error "bad parent field"
    in
    let* attrs =
      match find "attrs" with
      | None -> Ok []
      | Some (Json.Obj kvs) ->
          List.fold_left
            (fun acc (k, v) ->
              let* acc = acc in
              match v with
              | Json.Str s -> Ok ((k, s) :: acc)
              | _ -> Error "non-string attr")
            (Ok []) kvs
          |> Result.map List.rev
      | Some _ -> Error "bad attrs field"
    in
    Ok
      {
        id = int_of_float id;
        parent;
        name;
        attrs;
        domain = int_of_float domain;
        start_s;
        duration_s;
      }

let span_of_json line =
  match Json.parse line with
  | Error _ as e -> e
  | Ok (Json.Obj _ as value) -> span_of_value value
  | Ok _ -> Error "not a JSON object"

(* ---------------- sinks ---------------- *)

type output =
  | To_channel of { oc : out_channel; owns : bool; mutable closed : bool }
  | To_memory of { mutable rev_lines : string list; mutable rev_spans : span list }

type sink = { mutex : Mutex.t; output : output }

let file path =
  {
    mutex = Mutex.create ();
    output = To_channel { oc = open_out path; owns = true; closed = false };
  }

let channel oc =
  {
    mutex = Mutex.create ();
    output = To_channel { oc; owns = false; closed = false };
  }

let memory () =
  { mutex = Mutex.create (); output = To_memory { rev_lines = []; rev_spans = [] } }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let emit_line t line =
  with_lock t (fun () ->
      match t.output with
      | To_channel c ->
          if not c.closed then begin
            output_string c.oc line;
            output_char c.oc '\n'
          end
      | To_memory m -> m.rev_lines <- line :: m.rev_lines)

let emit_span t span =
  let line = span_to_json span in
  with_lock t (fun () ->
      match t.output with
      | To_channel c ->
          if not c.closed then begin
            output_string c.oc line;
            output_char c.oc '\n'
          end
      | To_memory m ->
          m.rev_lines <- line :: m.rev_lines;
          m.rev_spans <- span :: m.rev_spans)

let spans t =
  with_lock t (fun () ->
      match t.output with
      | To_channel _ -> []
      | To_memory m -> List.rev m.rev_spans)

let lines t =
  with_lock t (fun () ->
      match t.output with
      | To_channel _ -> []
      | To_memory m -> List.rev m.rev_lines)

let close t =
  with_lock t (fun () ->
      match t.output with
      | To_channel c ->
          if not c.closed then begin
            flush c.oc;
            if c.owns then close_out c.oc;
            c.closed <- true
          end
      | To_memory _ -> ())
