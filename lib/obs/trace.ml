type span = {
  id : int;
  parent : int option;
  name : string;
  attrs : (string * string) list;
  domain : int;
  start_s : float;
  duration_s : float;
}

(* ---------------- JSON (the subset this module emits) ---------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ escape_string s ^ "\""

(* %.17g round-trips every float exactly. *)
let json_float v = Printf.sprintf "%.17g" v

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let span_to_json s =
  json_obj
    [
      ("type", json_string "span");
      ("id", string_of_int s.id);
      ("parent",
       match s.parent with None -> "null" | Some p -> string_of_int p);
      ("name", json_string s.name);
      ("domain", string_of_int s.domain);
      ("start", json_float s.start_s);
      ("duration", json_float s.duration_s);
      ("attrs", json_obj (List.map (fun (k, v) -> (k, json_string v)) s.attrs));
    ]

(* Minimal recursive-descent parser for the objects emitted above:
   objects, strings, numbers, null. Enough for the round-trip tests and
   for external tooling sanity checks; not a general JSON parser. *)

type json = J_null | J_num of float | J_str of string | J_obj of (string * json) list

exception Parse of string

let span_of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub line !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> fail "non-ASCII \\u escape unsupported"
              | None -> fail "bad \\u escape");
              go ()
          | _ -> fail "bad escape")
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_object ()
    | Some '"' -> J_str (parse_string ())
    | Some 'n' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
          pos := !pos + 4;
          J_null
        end
        else fail "expected null"
    | Some ('-' | '0' .. '9') -> J_num (parse_number ())
    | _ -> fail "expected value"
  and parse_object () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      J_obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let value = parse_value () in
        fields := (key, value) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ();
      J_obj (List.rev !fields)
    end
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Parse "trailing garbage");
    v
  with
  | exception Parse msg -> Error msg
  | J_obj fields -> (
      let find key = List.assoc_opt key fields in
      let str key =
        match find key with
        | Some (J_str s) -> Ok s
        | _ -> Error (Printf.sprintf "missing string field %S" key)
      in
      let num key =
        match find key with
        | Some (J_num v) -> Ok v
        | _ -> Error (Printf.sprintf "missing numeric field %S" key)
      in
      let ( let* ) = Result.bind in
      let* ty = str "type" in
      if ty <> "span" then Error (Printf.sprintf "not a span line (type=%S)" ty)
      else
        let* name = str "name" in
        let* id = num "id" in
        let* domain = num "domain" in
        let* start_s = num "start" in
        let* duration_s = num "duration" in
        let* parent =
          match find "parent" with
          | Some J_null | None -> Ok None
          | Some (J_num p) -> Ok (Some (int_of_float p))
          | Some _ -> Error "bad parent field"
        in
        let* attrs =
          match find "attrs" with
          | None -> Ok []
          | Some (J_obj kvs) ->
              List.fold_left
                (fun acc (k, v) ->
                  let* acc = acc in
                  match v with
                  | J_str s -> Ok ((k, s) :: acc)
                  | _ -> Error "non-string attr")
                (Ok []) kvs
              |> Result.map List.rev
          | Some _ -> Error "bad attrs field"
        in
        Ok
          {
            id = int_of_float id;
            parent;
            name;
            attrs;
            domain = int_of_float domain;
            start_s;
            duration_s;
          })
  | _ -> Error "not a JSON object"

(* ---------------- sinks ---------------- *)

type output =
  | To_channel of { oc : out_channel; owns : bool; mutable closed : bool }
  | To_memory of { mutable rev_lines : string list; mutable rev_spans : span list }

type sink = { mutex : Mutex.t; output : output }

let file path =
  {
    mutex = Mutex.create ();
    output = To_channel { oc = open_out path; owns = true; closed = false };
  }

let channel oc =
  {
    mutex = Mutex.create ();
    output = To_channel { oc; owns = false; closed = false };
  }

let memory () =
  { mutex = Mutex.create (); output = To_memory { rev_lines = []; rev_spans = [] } }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let emit_line t line =
  with_lock t (fun () ->
      match t.output with
      | To_channel c ->
          if not c.closed then begin
            output_string c.oc line;
            output_char c.oc '\n'
          end
      | To_memory m -> m.rev_lines <- line :: m.rev_lines)

let emit_span t span =
  let line = span_to_json span in
  with_lock t (fun () ->
      match t.output with
      | To_channel c ->
          if not c.closed then begin
            output_string c.oc line;
            output_char c.oc '\n'
          end
      | To_memory m ->
          m.rev_lines <- line :: m.rev_lines;
          m.rev_spans <- span :: m.rev_spans)

let spans t =
  with_lock t (fun () ->
      match t.output with
      | To_channel _ -> []
      | To_memory m -> List.rev m.rev_spans)

let lines t =
  with_lock t (fun () ->
      match t.output with
      | To_channel _ -> []
      | To_memory m -> List.rev m.rev_lines)

let close t =
  with_lock t (fun () ->
      match t.output with
      | To_channel c ->
          if not c.closed then begin
            flush c.oc;
            if c.owns then close_out c.oc;
            c.closed <- true
          end
      | To_memory _ -> ())
