(** Process-wide metrics: counters, gauges and fixed log-scale histograms.

    Every mutation is a single [Atomic] operation (or a CAS retry loop for
    float accumulation), so instrumented code may run concurrently on any
    {!Repro_util.Pool} domain without locks, torn reads, or lost updates.
    Metric {e creation} goes through a mutex-guarded registry; the
    steady-state hot path only touches atomics.

    Naming convention (see docs/observability.md): dot-separated lowercase
    names ([estimate.downgrades.total]), dots become underscores in the
    Prometheus rendering. Labels are [(key, value)] pairs; a metric's
    identity is its name plus its canonically-sorted label set. *)

module Counter : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val incr : t -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val create : unit -> t

  val observe : t -> float -> unit
  (** Record one observation. NaN observations are dropped; everything
      else lands in a fixed power-of-two bucket (see {!bucket_index}) and
      accumulates into {!sum} and {!count}. *)

  val count : t -> int
  val sum : t -> float

  val bucket_count : int
  (** Number of buckets. Bucket [i] covers [[bucket_upper (i-1),
      bucket_upper i)]; bucket [0] additionally absorbs everything at or
      below its lower bound (zero, negatives, underflow) and the last
      bucket absorbs overflow and [+inf]. *)

  val bucket_index : float -> int
  (** The bucket an observation falls into: power-of-two (log-scale)
      boundaries from [2^-30] up to [2^35], clamped at both ends. *)

  val bucket_upper : int -> float
  (** Exclusive upper bound of bucket [i]: [2^(i - 30)]. *)

  val bucket_value : t -> int -> int
  (** Current count of bucket [i]. *)

  val nonzero_buckets : t -> (float * int) list
  (** [(upper_bound, count)] for every non-empty bucket, in bound order.
      Counts are per-bucket, not cumulative. *)

  val quantile : t -> float -> float
  (** [quantile t q] estimates the [q]-th quantile ([q] clamped to
      [[0, 1]]) from the log-scale buckets, interpolating linearly inside
      the bucket the rank [q * count] lands in — the same estimate
      Prometheus's [histogram_quantile] computes. Bucket 0's lower bound
      is taken as 0. Exact for values on bucket boundaries; otherwise off
      by at most the bucket width (a factor of 2). [nan] on an empty
      histogram; [quantile t 0.0] is the lower bound of the first
      non-empty bucket, [quantile t 1.0] the upper bound of the last. *)

  val quantile_of : bucket:(int -> int) -> total:int -> float -> float
  (** The quantile estimate of {!quantile} abstracted over the bucket
      counts: [bucket i] must return the count of bucket [i] under this
      module's {!bucket_index} scheme and [total] their sum. Lets
      sliding-window histograms ({!Rolling.Histogram}) reuse the exact
      same interpolation over merged slots. *)

  val observe_exemplar : t -> id:string -> float -> unit
  (** {!observe}, additionally recording [(id, v)] as the histogram's
      exemplar — the last request ID to contribute an observation.
      Exemplars are exposed only through {!exemplar}; they never appear
      in snapshots or the Prometheus rendering, so they cannot perturb
      golden outputs. *)

  val exemplar : t -> (string * float) option
  (** Last [(id, value)] recorded by {!observe_exemplar}, if any. *)
end

type point =
  | P_counter of int
  | P_gauge of float
  | P_histogram of { count : int; sum : float; buckets : (float * int) list }
      (** [buckets] as in {!Histogram.nonzero_buckets}. *)

module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> ?labels:(string * string) list -> string -> Counter.t
  (** Get-or-create; subsequent calls with the same name and label set
      return the same counter. Raises [Invalid_argument] if the name is
      already registered as a different metric kind. *)

  val gauge : t -> ?labels:(string * string) list -> string -> Gauge.t
  val histogram : t -> ?labels:(string * string) list -> string -> Histogram.t

  val snapshot : t -> (string * (string * string) list * point) list
  (** Point-in-time values of every registered metric, sorted by name then
      labels — the stable order both exporters render in. *)
end

val render_prometheus : Registry.t -> string
(** The registry as a Prometheus text-format snapshot: [# TYPE] comments,
    sanitised names (dots to underscores), histograms expanded into
    cumulative [_bucket{le="..."}] series plus [_sum]/[_count]. Output is
    deterministic for a given registry state. *)
