(* Structured JSONL access log.

   Producers (server worker domains) push records onto a Treiber stack —
   one CAS, no lock, no serialisation work on the request path. A
   dedicated writer domain drains the stack, restores arrival order, and
   appends one JSON object per line. The writer owns the channel
   exclusively, so no other domain ever blocks on file I/O.

   The idle backoff is injected ([~sleep]) rather than sleeping on the
   raw clock directly: lib-wide, raw clock access is confined to the
   two allowlisted sites in obs.ml (tools/lint_no_raw_clock.sh). *)

type record = {
  id : string;
  verb : string;
  outcome : string;
  key : string;
  budget_s : float;
  wall_s : float;
  cache : string;
  shards : int;
  rung : int;
  estimate : float;
}

type t = {
  queue : record list Atomic.t;
  stop : bool Atomic.t;
  writer : unit Domain.t;
  channel : out_channel;
}

let to_json r =
  Json.Obj
    [
      ("type", Json.Str "access");
      ("id", Json.Str r.id);
      ("verb", Json.Str r.verb);
      ("outcome", Json.Str r.outcome);
      ("key", Json.Str r.key);
      ("budget_s", Json.number r.budget_s);
      ("wall_s", Json.number r.wall_s);
      ("cache", Json.Str r.cache);
      ("shards", Json.Num (float_of_int r.shards));
      ("rung", Json.Num (float_of_int r.rung));
      ("estimate", Json.number r.estimate);
    ]

let of_json v =
  let str field =
    match Json.member field v with
    | Some j -> Json.to_str j
    | None -> None
  in
  let num field =
    match Json.member field v with
    | Some j -> Json.to_float j
    | None -> None
  in
  let int field =
    match Json.member field v with
    | Some j -> Json.to_int j
    | None -> None
  in
  match
    (str "id", str "verb", str "outcome", str "key", num "budget_s",
     num "wall_s", str "cache", int "shards", int "rung", num "estimate")
  with
  | ( Some id, Some verb, Some outcome, Some key, Some budget_s,
      Some wall_s, Some cache, Some shards, Some rung, Some estimate ) ->
      Ok { id; verb; outcome; key; budget_s; wall_s; cache; shards;
           rung; estimate }
  | _ -> Error "access record is missing a required field"

let idle_backoff_s = 0.002

let writer_loop queue stop oc sleep =
  let write_batch batch =
    List.iter
      (fun r ->
        output_string oc (Json.to_string (to_json r));
        output_char oc '\n')
      (List.rev batch);
    flush oc
  in
  let running = ref true in
  while !running do
    match Atomic.exchange queue [] with
    | [] ->
        if Atomic.get stop then begin
          (* records may have been pushed between our empty exchange and
             [close] setting the flag; they precede the flag write, so
             one more exchange after observing it drains every record
             pushed before [close] was reached *)
          (match Atomic.exchange queue [] with
          | [] -> ()
          | batch -> write_batch batch);
          running := false
        end
        else sleep idle_backoff_s
    | batch -> write_batch batch
  done;
  flush oc

let create ~path ~sleep =
  let oc = open_out path in
  let queue = Atomic.make [] in
  let stop = Atomic.make false in
  let writer = Domain.spawn (fun () -> writer_loop queue stop oc sleep) in
  { queue; stop; writer; channel = oc }

let rec write t r =
  let old = Atomic.get t.queue in
  if not (Atomic.compare_and_set t.queue old (r :: old)) then write t r

let close t =
  Atomic.set t.stop true;
  Domain.join t.writer;
  close_out t.channel

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop acc n =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line -> (
            match Json.parse line with
            | Error e -> Error (Printf.sprintf "line %d: %s" n e)
            | Ok v -> (
                match of_json v with
                | Error e -> Error (Printf.sprintf "line %d: %s" n e)
                | Ok r -> loop (r :: acc) (n + 1)))
      in
      loop [] 1)
