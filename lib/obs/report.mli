(** Trace analytics: turn a JSONL trace file (written by {!Trace} via
    [--trace]) back into something a human can ask questions of — where
    did the wall-clock go, which spans dominate, what is the critical
    path — without external tooling.

    The reader is {e lenient}, mirroring [Csv_io.read_lenient]: malformed
    lines are skipped and reported as located diagnostics instead of
    sinking the whole file, so a trace truncated by a crash (typically a
    partial final line) still yields every complete span. Non-span lines
    the exporter interleaves (the metrics dump appended at [Obs.close])
    are counted, not errors; unknown line types and unknown span fields
    are ignored for forward compatibility. *)

type diagnostic = {
  line : int;  (** 1-based physical line number *)
  reason : string;  (** self-locating parse failure description *)
}

type reading = {
  spans : Trace.span list;  (** every well-formed span, in file order *)
  metric_lines : int;
      (** [counter]/[gauge]/[histogram] lines from the metrics dump *)
  other_lines : int;  (** well-formed JSON of an unknown line type *)
  skipped : diagnostic list;  (** malformed lines, in file order *)
}

val of_lines : string list -> reading
(** Classify one line per list element. Blank lines are ignored. *)

val read_file : string -> reading
(** {!of_lines} over a file. Raises [Sys_error] on IO failure only;
    nothing in the file's content can make it raise. *)

(** {1 Span trees} *)

type node = { span : Trace.span; children : node list }
(** One span with its children (spans whose [parent] is this span's id),
    ordered by start time. *)

val forest : Trace.span list -> node list
(** Reconstruct the span forest. Roots are spans with no parent — or
    whose parent never appeared in the trace (an orphan from a truncated
    file), so no span is ever dropped. Roots are ordered by start time. *)

(** {1 Aggregation} *)

type agg = {
  name : string;
  count : int;
  total_s : float;  (** summed duration of every span with this name *)
  self_s : float;
      (** summed duration minus time spent in child spans (clamped at 0
          per span, so clock jitter cannot go negative) *)
  p50_s : float;  (** median duration, linear interpolation *)
  p95_s : float;
  max_s : float;
}

val aggregate : Trace.span list -> agg list
(** Per-span-name aggregates, sorted by total time descending (ties by
    name). Empty input yields []. *)

val critical_path : node list -> Trace.span list
(** The heaviest chain through the forest: start at the longest root and
    repeatedly descend into the longest child. [[]] on an empty forest. *)

val folded : node list -> (string * int) list
(** Folded-stack lines for flamegraph.pl / speedscope: each entry is
    [("root;child;...;leaf", self_time_microseconds)], identical stacks
    merged, entries whose self time rounds to 0 µs dropped, sorted by
    stack string. Render as [Printf.printf "%s %d\n"]. *)

(** {1 Rendering} *)

val pp : Format.formatter -> reading -> unit
(** The full textual report: reading summary (span/metric/skipped line
    counts, domains), the aggregate table, and the critical path. Output
    is deterministic for a given reading. *)
