(** Observability context: the handle instrumented code threads through
    the estimation pipeline.

    A context is either {!null} — every operation is a no-op costing one
    branch, the default everywhere — or live, carrying a
    {!Metrics.Registry} plus an optional {!Trace} sink for spans. The
    instrumented hot paths ([Csdl.Sample], [Csdl.Estimator],
    [Repro_lp.Simplex], [Repro_util.Pool], the bench harness) accept
    [?obs:Obs.ctx] and never change their results based on it: a live
    context only adds atomic metric updates and trace records, so bench
    output stays bit-identical with tracing on or off.

    Typical wiring (see docs/observability.md):
    {[
      let sink = Repro_obs.Trace.file "t.jsonl" in
      let obs = Repro_obs.Obs.create ~sink () in
      ... run the pipeline with ~obs ...
      prerr_string
        (Option.value ~default:"" (Repro_obs.Obs.prometheus obs));
      Repro_obs.Obs.close obs   (* appends the metrics dump, closes t.jsonl *)
    ]} *)

type ctx

val null : ctx
(** The no-op context: no registry, no sink, negligible overhead. *)

val create : ?sink:Trace.sink -> unit -> ctx
(** A live context with a fresh registry. With [sink], finished spans are
    exported as JSONL as they close, and {!close} appends a metrics dump. *)

val is_live : ctx -> bool

val registry : ctx -> Metrics.Registry.t option
(** [None] for {!null}. *)

val count : ctx -> ?labels:(string * string) list -> string -> int -> unit
(** Add to a counter (get-or-create). No-op on {!null}; [count ctx name 0]
    still registers the counter, which pre-declares it in snapshots. *)

val set_gauge : ctx -> ?labels:(string * string) list -> string -> float -> unit
val observe : ctx -> ?labels:(string * string) list -> string -> float -> unit
(** Record a histogram observation (get-or-create). No-op on {!null}. *)

val observe_exemplar :
  ctx -> ?labels:(string * string) list -> string -> id:string -> float -> unit
(** {!observe}, additionally stamping the histogram's exemplar with the
    request ID that produced the observation (see
    {!Metrics.Histogram.observe_exemplar}). IDs belong in exemplars and
    logs, never in labels — tools/lint_label_cardinality.sh enforces the
    label side. *)

val record_runtime : ?domains:int -> ctx -> unit
(** Refresh the OCaml runtime gauges from [Gc.quick_stat]:
    [runtime.gc.heap_words], [runtime.gc.minor_collections],
    [runtime.gc.major_collections], plus [runtime.domains] when the
    caller knows its domain count. Cheap (no collection is forced); the
    server calls it on every [metrics] scrape. No-op on {!null}. *)

val set_build_info : ctx -> store_version:int -> git:string -> unit
(** Register the [repro.build.info] gauge (value 1) whose labels carry
    the synopsis-store format version, the OCaml version, and a git
    describe string ("unknown" when unavailable) — the standard
    build-info pattern, joined against other series at query time. *)

module Span : sig
  val with_ :
    ctx -> name:string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
  (** [with_ ctx ~name f] times [f ()]. On a live context the duration is
      observed into the [span_seconds{name}] histogram, and when the
      context has a sink a span record is emitted with the enclosing
      [with_] on the same domain as its parent. An exception inside [f]
      still emits the span (attr [error]) and is re-raised. On {!null}
      this is exactly [f ()]. *)
end

val prometheus : ctx -> string option
(** {!Metrics.render_prometheus} of the live registry; [None] on {!null}. *)

val dump_metrics : ctx -> unit
(** Append one JSONL line per registered metric to the sink (no-op
    without one). {!close} calls this; call it directly only for
    mid-run snapshots. *)

val close : ctx -> unit
(** Dump metrics and close the sink. Idempotent — a second close neither
    re-dumps the metrics nor touches the sink again, on file and memory
    sinks alike. No-op on {!null} or a sink-less context. *)
