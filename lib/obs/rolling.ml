(* Sliding-window metrics over a fixed ring of slots.

   The window [window_s] is cut into [slots] equal slot-widths; each slot
   aggregates the observations whose timestamp fell in its epoch
   (epoch = floor (now / slot_width)). Writers take the instance mutex,
   lazily reset the one stale slot they land in, and bump preallocated
   arrays — no per-observe heap structure, so memory is fixed at creation
   no matter how long the window runs. Readers merge the slots whose
   epoch is still inside the window, so expired observations drop out in
   slot-width granularity without any background sweeper.

   The clock is injected ([~now]) — the raw wall-clock allowlist lives
   in obs.ml and must not grow — which also makes window expiry
   directly testable under a fake clock. *)

let bucket_count = Metrics.Histogram.bucket_count
let default_slots = 12

let check_window ~slots ~window_s =
  if not (window_s > 0.0) then
    invalid_arg "Rolling: window_s must be positive";
  if slots < 1 then invalid_arg "Rolling: slots must be >= 1"

let epoch ~slot_w time = int_of_float (Float.floor (time /. slot_w))

(* e mod n, mapped into [0, n) even for negative epochs (fake clocks may
   start below zero) *)
let slot_of ~n_slots e =
  let i = e mod n_slots in
  if i < 0 then i + n_slots else i

module Histogram = struct
  type t = {
    mutex : Mutex.t;
    now : unit -> float;
    window_s : float;
    slot_w : float;
    n_slots : int;
    epochs : int array;
    counts : int array;
    sums : float array;
    buckets : int array;  (* n_slots * bucket_count, flattened *)
  }

  let create ?(slots = default_slots) ~now ~window_s () =
    check_window ~slots ~window_s;
    {
      mutex = Mutex.create ();
      now;
      window_s;
      slot_w = window_s /. float_of_int slots;
      n_slots = slots;
      epochs = Array.make slots min_int;
      counts = Array.make slots 0;
      sums = Array.make slots 0.0;
      buckets = Array.make (slots * bucket_count) 0;
    }

  let observe t v =
    if not (Float.is_nan v) then begin
      Mutex.lock t.mutex;
      let e = epoch ~slot_w:t.slot_w (t.now ()) in
      let i = slot_of ~n_slots:t.n_slots e in
      if t.epochs.(i) <> e then begin
        t.epochs.(i) <- e;
        t.counts.(i) <- 0;
        t.sums.(i) <- 0.0;
        Array.fill t.buckets (i * bucket_count) bucket_count 0
      end;
      t.counts.(i) <- t.counts.(i) + 1;
      t.sums.(i) <- t.sums.(i) +. v;
      let b = (i * bucket_count) + Metrics.Histogram.bucket_index v in
      t.buckets.(b) <- t.buckets.(b) + 1;
      Mutex.unlock t.mutex
    end

  (* Readers run at scrape rate, not request rate, so the merge may
     allocate its scratch array. *)
  let merged t =
    Mutex.lock t.mutex;
    let e = epoch ~slot_w:t.slot_w (t.now ()) in
    let oldest = e - t.n_slots + 1 in
    let total = ref 0 and sum = ref 0.0 in
    let buckets = Array.make bucket_count 0 in
    for i = 0 to t.n_slots - 1 do
      if t.epochs.(i) >= oldest && t.epochs.(i) <= e then begin
        total := !total + t.counts.(i);
        sum := !sum +. t.sums.(i);
        for b = 0 to bucket_count - 1 do
          buckets.(b) <- buckets.(b) + t.buckets.((i * bucket_count) + b)
        done
      end
    done;
    Mutex.unlock t.mutex;
    (!total, !sum, buckets)

  let count t =
    let c, _, _ = merged t in
    c

  let sum t =
    let _, s, _ = merged t in
    s

  let quantile t q =
    let total, _, buckets = merged t in
    Metrics.Histogram.quantile_of ~bucket:(Array.get buckets) ~total q

  let window_s t = t.window_s
end

module Counter = struct
  type t = {
    mutex : Mutex.t;
    now : unit -> float;
    window_s : float;
    slot_w : float;
    n_slots : int;
    epochs : int array;
    counts : int array;
  }

  let create ?(slots = default_slots) ~now ~window_s () =
    check_window ~slots ~window_s;
    {
      mutex = Mutex.create ();
      now;
      window_s;
      slot_w = window_s /. float_of_int slots;
      n_slots = slots;
      epochs = Array.make slots min_int;
      counts = Array.make slots 0;
    }

  let add t n =
    Mutex.lock t.mutex;
    let e = epoch ~slot_w:t.slot_w (t.now ()) in
    let i = slot_of ~n_slots:t.n_slots e in
    if t.epochs.(i) <> e then begin
      t.epochs.(i) <- e;
      t.counts.(i) <- 0
    end;
    t.counts.(i) <- t.counts.(i) + n;
    Mutex.unlock t.mutex

  let incr t = add t 1

  let value t =
    Mutex.lock t.mutex;
    let e = epoch ~slot_w:t.slot_w (t.now ()) in
    let oldest = e - t.n_slots + 1 in
    let total = ref 0 in
    for i = 0 to t.n_slots - 1 do
      if t.epochs.(i) >= oldest && t.epochs.(i) <= e then
        total := !total + t.counts.(i)
    done;
    Mutex.unlock t.mutex;
    !total

  let window_s t = t.window_s
end
