(** Fixed-memory sliding-window metrics.

    The cumulative cells in {!Metrics} answer "how many since the process
    started"; these answer "how many in the last [window_s] seconds" —
    the live p50/p95/p99, error rate, and shed rate an operator actually
    pages on. The window is a ring of [slots] equal-width slots (default
    {!default_slots}); observations expire in slot-width granularity as
    the clock crosses slot boundaries, with no background thread and no
    growth in memory over time.

    The clock is injected at creation ([~now]); pass
    [Repro_util.Clock.wall] in production and a fake shared clock in
    tests. All operations are safe from any domain (one mutex per
    instance); the merged read is a pure function of the multiset of
    (timestamp, value) observations, so results are deterministic at any
    [--jobs]. *)

val default_slots : int
(** 12 — e.g. 5-second slots for the default 60 s SLO window. *)

module Histogram : sig
  type t

  val create : ?slots:int -> now:(unit -> float) -> window_s:float -> unit -> t
  (** Raises [Invalid_argument] unless [window_s > 0] and [slots >= 1]. *)

  val observe : t -> float -> unit
  (** Record one observation at the current [now ()]. NaN is dropped.
      Steady state touches only preallocated arrays. *)

  val count : t -> int
  (** Observations still inside the window. *)

  val sum : t -> float
  (** Sum of the observations still inside the window. *)

  val quantile : t -> float -> float
  (** Same log-scale bucket estimate as {!Metrics.Histogram.quantile},
      over the live window only. [nan] when the window is empty. *)

  val window_s : t -> float
end

module Counter : sig
  type t

  val create : ?slots:int -> now:(unit -> float) -> window_s:float -> unit -> t
  val add : t -> int -> unit
  val incr : t -> unit

  val value : t -> int
  (** Increments still inside the window. *)

  val window_s : t -> float
end
