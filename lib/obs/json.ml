type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number v =
  if Float.is_nan v then Str "nan"
  else if v = Float.infinity then Str "inf"
  else if v = Float.neg_infinity then Str "-inf"
  else Num v

(* %.17g round-trips every finite float exactly. *)
let float_literal v =
  if Float.is_integer v && Float.abs v < 1e16 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec render ~indent ~level buf v =
  let pad n =
    match indent with
    | None -> ()
    | Some step -> Buffer.add_string buf (String.make (step * n) ' ')
  in
  let newline () = if indent <> None then Buffer.add_char buf '\n' in
  let sequence ~open_c ~close_c items render_item =
    match items with
    | [] ->
        Buffer.add_char buf open_c;
        Buffer.add_char buf close_c
    | items ->
        Buffer.add_char buf open_c;
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (level + 1);
            render_item item)
          items;
        newline ();
        pad level;
        Buffer.add_char buf close_c
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (float_literal v)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | Arr items ->
      sequence ~open_c:'[' ~close_c:']' items (fun item ->
          render ~indent ~level:(level + 1) buf item)
  | Obj fields ->
      sequence ~open_c:'{' ~close_c:'}' fields (fun (k, item) ->
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\":";
          if indent <> None then Buffer.add_char buf ' ';
          render ~indent ~level:(level + 1) buf item)

let to_string v =
  let buf = Buffer.create 256 in
  render ~indent:None ~level:0 buf v;
  Buffer.contents buf

let to_string_multiline v =
  let buf = Buffer.create 1024 in
  render ~indent:(Some 2) ~level:0 buf v;
  Buffer.contents buf

exception Parse of string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub input !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char buf '\r';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some '"' ->
              Buffer.add_char buf '"';
              advance ();
              go ()
          | Some '\\' ->
              Buffer.add_char buf '\\';
              advance ();
              go ()
          | Some '/' ->
              Buffer.add_char buf '/';
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub input !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> fail "non-ASCII \\u escape unsupported"
              | None -> fail "bad \\u escape");
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match input.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub input start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_object ()
    | Some '[' -> parse_array ()
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | _ -> fail "expected value"
  and parse_array () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Arr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value () in
        items := v :: !items;
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elements ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      elements ();
      Arr (List.rev !items)
    end
  and parse_object () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let value = parse_value () in
        fields := (key, value) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Parse "trailing garbage");
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function
  | Num v -> Some v
  | Str "inf" -> Some Float.infinity
  | Str "-inf" -> Some Float.neg_infinity
  | Str "nan" -> Some Float.nan
  | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None
