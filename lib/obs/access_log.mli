(** Structured JSONL access log for the serving daemon.

    One record per served request: the request ID, wire verb, outcome
    class, deadline budget and wall time actually used, synopsis-cache
    hit/miss, shard count, degradation rung, and the estimate returned.
    Records are pushed lock-free from the worker domains and written by a
    dedicated writer domain, so logging never serialises the request
    path.

    Lifecycle contract: {!write} may be called from any domain between
    {!create} and {!close}; {!close} drains everything already pushed,
    joins the writer, and closes the file — call it only after all
    producers have stopped. *)

type record = {
  id : string;  (** request ID, as echoed in the reply *)
  verb : string;  (** wire verb: [estimate], [health], [slo], ... *)
  outcome : string;
      (** reply class: [answered], [degraded], [deadline_exceeded],
          [shed], [err] *)
  key : string;  (** synopsis key for estimates; [""] otherwise *)
  budget_s : float;  (** deadline budget granted; [nan] when none *)
  wall_s : float;  (** wall-clock seconds spent serving *)
  cache : string;  (** [ "hit" ], ["miss"], or [""] when not applicable *)
  shards : int;  (** shard count of the synopsis consulted; 0 otherwise *)
  rung : int;  (** degradation rung — retries recorded in the trace *)
  estimate : float;  (** the value returned; [nan] when none *)
}

type t

val create : path:string -> sleep:(float -> unit) -> t
(** Open (truncate) [path] and spawn the writer domain. [sleep] is the
    writer's idle backoff — pass [Repro_util.Clock.sleepf] in production;
    tests may pass [ignore]. *)

val write : t -> record -> unit
(** Queue one record (a single CAS; never blocks on I/O). *)

val close : t -> unit
(** Drain every queued record to disk, stop and join the writer domain,
    and close the file. *)

val read_file : string -> (record list, string) result
(** Parse a complete access log back, in write order. Strict: any
    malformed line is an [Error] naming the line number — reconciliation
    tests must not silently skip records. *)

val to_json : record -> Json.t
val of_json : Json.t -> (record, string) result
