(* Quick end-to-end sanity driver used during development; the real
   experiment harness lives in bench/. *)

open Repro_relation
module Prng = Repro_util.Prng

let () =
  let data = Repro_datagen.Imdb.generate ~scale:0.1 ~seed:42 () in
  let queries = Repro_datagen.Job_workload.two_table_queries data in
  let prng = Prng.create 7 in
  List.iter
    (fun (q : Repro_datagen.Job_workload.query) ->
      let jvd = Repro_datagen.Job_workload.query_jvd q in
      let truth = Repro_datagen.Job_workload.true_size q in
      let profile =
        Csdl.Profile.of_tables q.a.Join.table q.a.Join.column q.b.Join.table
          q.b.Join.column
      in
      let run spec =
        let est = Csdl.Estimator.prepare spec ~theta:0.01 profile in
        let estimate =
          Csdl.Estimator.estimate_once ~pred_a:q.a.Join.predicate
            ~pred_b:q.b.Join.predicate est prng
        in
        Repro_stats.Qerror.compute ~truth:(float_of_int truth) ~estimate
      in
      let q1 = run (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta) in
      let q2 = run (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff) in
      let q3 = run (Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_diff) in
      let q4 = run Csdl.Spec.cs2l in
      Printf.printf
        "%-6s jvd=%.5f truth=%-8d q(1,t)=%-10s q(1,diff)=%-10s q(t,diff)=%-10s CS2L=%-10s\n%!"
        q.Repro_datagen.Job_workload.name jvd truth
        (Repro_stats.Qerror.to_string q1)
        (Repro_stats.Qerror.to_string q2)
        (Repro_stats.Qerror.to_string q3)
        (Repro_stats.Qerror.to_string q4))
    queries
