(* The e-commerce scenario from the paper's Section III footnote: a
   sellers |><| products join on seller_id in a marketplace where each
   seller lists thousands of products. The join value density
   (#sellers / #products) is tiny, which is exactly the regime where the
   state-of-the-art CS2L degrades and CSDL(1,diff) — hence CSDL-Opt —
   shines.

   The example builds the marketplace, compares CSDL-Opt against CS2L
   over repeated runs at two budgets, and shows the failure counts.

   Run with:  dune exec examples/ecommerce.exe *)

open Repro_relation
module Prng = Repro_util.Prng

let n_sellers = 60
let n_products = 120_000

let build_marketplace seed =
  let prng = Prng.create seed in
  let sellers_schema =
    Schema.make
      [
        ("seller_id", Schema.T_int);
        ("rating", Schema.T_float);
        ("country", Schema.T_string);
      ]
  in
  let products_schema =
    Schema.make
      [
        ("product_id", Schema.T_int);
        ("seller_id", Schema.T_int);
        ("price", Schema.T_float);
      ]
  in
  let countries = [| "SG"; "US"; "DE"; "JP"; "BR" |] in
  let sellers =
    Table.create sellers_schema
      (Array.init n_sellers (fun i ->
           [|
             Value.Int (i + 1);
             Value.Float (1.0 +. (Prng.float prng *. 4.0));
             Value.Str countries.(Prng.int prng 5);
           |]))
  in
  (* Catalogue sizes are very uneven: a few mega-sellers, a long tail. *)
  let products =
    Table.create products_schema
      (Array.init n_products (fun i ->
           let seller =
             (* quadratic skew toward low seller ids *)
             let u = Prng.float prng in
             1 + int_of_float (u *. u *. float_of_int n_sellers)
           in
           [|
             Value.Int (i + 1);
             Value.Int (min n_sellers seller);
             Value.Float (Prng.float prng *. 1000.0);
           |]))
  in
  (sellers, products)

let () =
  let sellers, products = build_marketplace 11 in
  let profile =
    Csdl.Profile.of_tables products "seller_id" sellers "seller_id"
  in
  Printf.printf
    "marketplace: %d sellers, %d products, jvd = %.6f (low: each seller has \
     ~%d products)\n\n"
    n_sellers n_products profile.Csdl.Profile.jvd (n_products / n_sellers);
  (* The query: how many products of highly-rated sellers are expensive? *)
  let pred_products =
    Predicate.Compare (Predicate.Gt, "price", Value.Float 800.0)
  in
  let pred_sellers =
    Predicate.Compare (Predicate.Gt, "rating", Value.Float 4.0)
  in
  let truth =
    float_of_int
      (Join.pair_count
         (Join.filtered products "seller_id" pred_products)
         (Join.filtered sellers "seller_id" pred_sellers))
  in
  Printf.printf "true join size (price > 800 and rating > 4): %.0f\n\n" truth;
  let runs = 20 in
  List.iter
    (fun theta ->
      Printf.printf "theta = %g (budget ~%.0f sample tuples)\n" theta
        (theta *. float_of_int profile.Csdl.Profile.total_rows);
      List.iter
        (fun (label, estimator) ->
          let prng = Prng.create 99 in
          let qerrors =
            Array.init runs (fun _ ->
                let estimate =
                  Csdl.Estimator.estimate_once ~pred_a:pred_products
                    ~pred_b:pred_sellers estimator prng
                in
                Repro_stats.Qerror.compute ~truth ~estimate)
          in
          let failures =
            Array.fold_left
              (fun acc q -> if Repro_stats.Qerror.is_failure q then acc + 1 else acc)
              0 qerrors
          in
          Printf.printf "  %-10s median q-error %-8s failures %d/%d\n" label
            (Repro_stats.Qerror.to_string (Repro_util.Summary.median qerrors))
            failures runs)
        [
          ("CSDL-Opt", Csdl.Opt.prepare ~theta profile);
          ("CS2L", Csdl.Estimator.prepare Csdl.Spec.cs2l ~theta profile);
        ];
      print_newline ())
    [ 0.01; 0.003 ];
  Printf.printf
    "note: below theta ~= %g the budget cannot even hold one sentry tuple\n\
     per (seller, side) pair (2 x %d sellers), so every sampling scheme\n\
     degenerates; the paper's Section III small-sample discussion is about\n\
     budgets just *above* that sentry floor.\n"
    (2.0 *. float_of_int n_sellers
    /. float_of_int (n_products + n_sellers))
    n_sellers
