(* Quickstart: estimate the size of a filtered two-table join from a tiny
   correlated sample, and compare against the exact answer.

   Run with:  dune exec examples/quickstart.exe *)

open Repro_relation
module Prng = Repro_util.Prng

let () =
  (* 1. Some data: an orders table and a returns table joined on order_id.
        (Any Table.t works — build your own or load one with Csv_io.) *)
  let orders_schema =
    Schema.make
      [ ("order_id", Schema.T_int); ("amount", Schema.T_float) ]
  in
  let returns_schema =
    Schema.make
      [ ("order_id", Schema.T_int); ("reason", Schema.T_string) ]
  in
  let prng = Prng.create 2020 in
  let orders =
    Table.create orders_schema
      (Array.init 50_000 (fun i ->
           [| Value.Int (i + 1); Value.Float (Prng.float prng *. 500.0) |]))
  in
  let reasons = [| "damaged"; "wrong item"; "late"; "changed mind" |] in
  let returns =
    Table.create returns_schema
      (Array.init 8_000 (fun _ ->
           [|
             Value.Int (1 + Prng.int prng 50_000);
             Value.Str reasons.(Prng.int prng 4);
           |]))
  in

  (* 2. Offline phase: profile the join once, pick CSDL-Opt (the paper's
        hybrid — it dispatches on the measured join value density), and
        draw a synopsis worth 1% of the data. *)
  let profile = Csdl.Profile.of_tables orders "order_id" returns "order_id" in
  Printf.printf "join value density: %.4f -> CSDL-Opt picks %s\n"
    profile.Csdl.Profile.jvd
    (Csdl.Spec.to_string
       (Csdl.Opt.spec_for ~jvd:profile.Csdl.Profile.jvd ()));
  let estimator = Csdl.Opt.prepare ~theta:0.01 profile in
  let synopsis = Csdl.Estimator.draw estimator (Prng.create 7) in
  Printf.printf "synopsis holds %d sample tuples (budget %.0f)\n"
    (Csdl.Synopsis.size_tuples synopsis)
    (Csdl.Estimator.resolved estimator).Csdl.Budget.budget;

  (* 3. Online phase: answer estimation queries against the synopsis.
        Selection predicates are applied to the *samples*; the base tables
        are not touched. *)
  let queries =
    [
      ("all returns", Predicate.True, Predicate.True);
      ( "expensive orders",
        Predicate.Compare (Predicate.Gt, "amount", Value.Float 400.0),
        Predicate.True );
      ( "expensive and damaged",
        Predicate.Compare (Predicate.Gt, "amount", Value.Float 400.0),
        Predicate.Compare (Predicate.Eq, "reason", Value.Str "damaged") );
    ]
  in
  List.iter
    (fun (label, pred_a, pred_b) ->
      let estimate =
        Csdl.Estimator.estimate ~pred_a ~pred_b estimator synopsis
      in
      let truth =
        Join.pair_count
          (Join.filtered orders "order_id" pred_a)
          (Join.filtered returns "order_id" pred_b)
      in
      let qerror =
        Repro_stats.Qerror.compute ~truth:(float_of_int truth) ~estimate
      in
      Printf.printf "%-22s estimate %8.0f   true %6d   q-error %s\n" label
        estimate truth
        (Repro_stats.Qerror.to_string qerror))
    queries
