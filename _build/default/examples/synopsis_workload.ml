(* Operating correlated sampling as a workload service: build one synopsis
   per frequently-queried join graph, persist the store to disk, reload it
   in a "fresh process", and answer a batch of estimation queries without
   re-sampling — the deployment story of the paper's Section III storage
   discussion. Finishes with a grouped accuracy report built with the
   relational engine's aggregation operators.

   Run with:  dune exec examples/synopsis_workload.exe *)

open Repro_relation
module Prng = Repro_util.Prng

let theta = 0.02

let () =
  let data = Repro_datagen.Imdb.generate ~scale:0.2 ~seed:42 () in
  let tables =
    [
      ("title", data.Repro_datagen.Imdb.title);
      ("movie_companies", data.Repro_datagen.Imdb.movie_companies);
      ("movie_info_idx", data.Repro_datagen.Imdb.movie_info_idx);
      ("movie_keyword", data.Repro_datagen.Imdb.movie_keyword);
      ("cast_info", data.Repro_datagen.Imdb.cast_info);
    ]
  in
  let table name = List.assoc name tables in
  let resolve_table name =
    match List.assoc_opt name tables with
    | Some t -> t
    | None -> failwith ("unknown table: " ^ name)
  in
  (* one join graph per frequently queried join *)
  let join_graphs =
    [
      ("title-mc", "title", "id", "movie_companies", "movie_id");
      ("title-mii", "title", "id", "movie_info_idx", "movie_id");
      ("title-mk", "title", "id", "movie_keyword", "movie_id");
      ("title-ci", "title", "id", "cast_info", "movie_id");
    ]
  in
  (* offline phase: sample every graph once, persist *)
  let store = Csdl.Store.create () in
  let prng = Prng.create 7 in
  List.iter
    (fun (key, ta, ca, tb, cb) ->
      let profile = Csdl.Profile.of_tables (table ta) ca (table tb) cb in
      let estimator = Csdl.Opt.prepare ~theta profile in
      let synopsis = Csdl.Estimator.draw estimator prng in
      Csdl.Store.add store ~key ~table_a:ta ~table_b:tb estimator synopsis)
    join_graphs;
  let path = Filename.temp_file "repro" ".synopses" in
  Csdl.Store.save store path;
  Printf.printf
    "offline: %d synopses built and saved to %s (%d sample tuples total)\n\n"
    (List.length (Csdl.Store.keys store))
    path
    (Csdl.Store.total_tuples store);
  (* "new process": reload and serve estimation queries *)
  let served = Csdl.Store.load ~resolve_table path in
  Sys.remove path;
  let year y = Predicate.Compare (Predicate.Gt, "production_year", Value.Int y) in
  let queries =
    [
      ("title-mc", year 2000, Predicate.True);
      ("title-mc", year 1960, Predicate.Compare (Predicate.Eq, "company_type_id", Value.Int 1));
      ("title-mii", year 1990, Predicate.Compare (Predicate.Le, "info_type_id", Value.Int 5));
      ("title-mk", year 2010, Predicate.True);
      ("title-ci", Predicate.True, Predicate.Compare (Predicate.Le, "role_id", Value.Int 3));
      ("title-ci", year 1995, Predicate.True);
    ]
  in
  (* answer the batch and collect a result table for the report *)
  let report_schema =
    Schema.make
      [ ("graph", Schema.T_string); ("qerror", Schema.T_float) ]
  in
  let report_rows =
    List.map
      (fun (key, pred_a, pred_b) ->
        let estimate = Csdl.Store.estimate served ~key ~pred_a ~pred_b in
        let ta, ca, tb, cb =
          let _, ta, ca, tb, cb =
            List.find (fun (k, _, _, _, _) -> k = key) join_graphs
          in
          (ta, ca, tb, cb)
        in
        let truth =
          Join.pair_count
            (Join.filtered (table ta) ca pred_a)
            (Join.filtered (table tb) cb pred_b)
        in
        let qerror =
          Repro_stats.Qerror.compute ~truth:(float_of_int truth) ~estimate
        in
        Printf.printf "%-10s %-28s estimate %10.0f  true %8d  q-error %s\n" key
          (Predicate.to_string pred_a) estimate truth
          (Repro_stats.Qerror.to_string qerror);
        [| Value.Str key; Value.Float qerror |])
      queries
  in
  (* accuracy report per join graph via the aggregation operators *)
  let report =
    Aggregate.group_by ~keys:[ "graph" ]
      ~aggregations:
        [ ("queries", Aggregate.Count); ("mean_qerror", Aggregate.Avg "qerror") ]
      (Table.of_rows report_schema report_rows)
  in
  Printf.printf "\naccuracy by join graph:\n%!";
  Format.printf "%a@." (Table.pp_head ~limit:10) report
