(* Cardinality estimation in the service of join ordering — the reason the
   paper exists. For the 3-table query

     title |><| movie_companies |><| movie_info_idx   (joined on movie_id)

   a cost-based optimizer must decide which two tables to join first. The
   example keeps one CSDL-Opt synopsis per candidate two-table join,
   estimates every intermediate size under the query's predicates, ranks
   the plans, and checks the ranking against the exact sizes.

   Run with:  dune exec examples/query_optimizer.exe *)

open Repro_relation
module Prng = Repro_util.Prng

let theta = 0.05

type base_table = { label : string; table : Table.t; predicate : Predicate.t }

let () =
  let data = Repro_datagen.Imdb.generate ~scale:0.2 ~seed:42 () in
  (* The query: recent movies, their production companies, their rating
     entries. All three tables join pairwise on movie_id/id. *)
  let title =
    {
      label = "title";
      table = data.Repro_datagen.Imdb.title;
      predicate = Predicate.Compare (Predicate.Gt, "production_year", Value.Int 2000);
    }
  in
  let movie_companies =
    {
      label = "movie_companies";
      table = data.Repro_datagen.Imdb.movie_companies;
      predicate = Predicate.Compare (Predicate.Eq, "company_type_id", Value.Int 1);
    }
  in
  let movie_info_idx =
    {
      label = "movie_info_idx";
      table = data.Repro_datagen.Imdb.movie_info_idx;
      predicate = Predicate.Compare (Predicate.Le, "info_type_id", Value.Int 10);
    }
  in
  let join_column t = if t.label = "title" then "id" else "movie_id" in
  let candidate_pairs =
    [ (title, movie_companies); (title, movie_info_idx);
      (movie_companies, movie_info_idx) ]
  in
  let prng = Prng.create 5 in
  Printf.printf "building one CSDL-Opt synopsis per candidate join (theta = %g)\n\n"
    theta;
  let plans =
    List.map
      (fun (a, b) ->
        let profile =
          Csdl.Profile.of_tables a.table (join_column a) b.table (join_column b)
        in
        let estimator = Csdl.Opt.prepare ~theta profile in
        let synopsis = Csdl.Estimator.draw estimator prng in
        let estimate =
          Csdl.Estimator.estimate ~pred_a:a.predicate ~pred_b:b.predicate
            estimator synopsis
        in
        let truth =
          Join.pair_count
            (Join.filtered a.table (join_column a) a.predicate)
            (Join.filtered b.table (join_column b) b.predicate)
        in
        (Printf.sprintf "%s |><| %s" a.label b.label, estimate, truth))
      candidate_pairs
  in
  Printf.printf "%-40s %12s %12s %8s\n" "candidate first join" "estimated"
    "true" "q-error";
  List.iter
    (fun (label, estimate, truth) ->
      Printf.printf "%-40s %12.0f %12d %8s\n" label estimate truth
        (Repro_stats.Qerror.to_string
           (Repro_stats.Qerror.compute ~truth:(float_of_int truth) ~estimate)))
    plans;
  let best_by metric =
    List.fold_left
      (fun best plan ->
        match best with
        | None -> Some plan
        | Some current -> if metric plan < metric current then Some plan else best)
      None plans
  in
  let estimated_best = best_by (fun (_, e, _) -> e) in
  let true_best = best_by (fun (_, _, t) -> float_of_int t) in
  match (estimated_best, true_best) with
  | Some (est_label, _, _), Some (true_label, _, _) ->
      Printf.printf
        "\noptimizer picks:   start with %s\noracle would pick: start with %s\n%s\n"
        est_label true_label
        (if est_label = true_label then
           "=> the estimate-driven plan matches the oracle plan"
         else "=> plans diverge (estimation error changed the ordering)")
  | _ -> ()
