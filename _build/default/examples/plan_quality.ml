(* Does better join-size estimation buy better query plans? This is the
   question the paper's introduction opens with, closed end-to-end here:
   the DP join-order optimizer plans three multi-join IMDB queries under
   different cardinality models, and each plan is re-costed under the
   exact model. "Regret" = true cost of the chosen plan / true cost of the
   optimal plan (1.00 = the estimator's errors were harmless).

   Run with:  dune exec examples/plan_quality.exe *)

open Repro_relation
open Repro_planner

let theta = 0.02

let queries (d : Repro_datagen.Imdb.t) =
  let rel ?(predicate = Predicate.True) name table =
    { Query.name; table; predicate }
  in
  let movie_edge left right =
    {
      Query.left;
      left_column = (if left = "title" then "id" else "movie_id");
      right;
      right_column = (if right = "title" then "id" else "movie_id");
    }
  in
  [
    ( "recent movies x companies x ratings",
      Query.make
        [
          rel "title" d.Repro_datagen.Imdb.title
            ~predicate:(Predicate.Compare (Predicate.Gt, "production_year", Value.Int 2000));
          rel "mc" d.Repro_datagen.Imdb.movie_companies
            ~predicate:(Predicate.Compare (Predicate.Eq, "company_type_id", Value.Int 1));
          rel "mii" d.Repro_datagen.Imdb.movie_info_idx;
        ]
        [ movie_edge "title" "mc"; movie_edge "title" "mii" ] );
    ( "keyworded movies x cast",
      Query.make
        [
          rel "title" d.Repro_datagen.Imdb.title;
          rel "mk" d.Repro_datagen.Imdb.movie_keyword
            ~predicate:(Predicate.Compare (Predicate.Le, "keyword_id", Value.Int 500));
          rel "ci" d.Repro_datagen.Imdb.cast_info
            ~predicate:(Predicate.Compare (Predicate.Le, "role_id", Value.Int 2));
        ]
        [ movie_edge "title" "mk"; movie_edge "title" "ci" ] );
    ( "4-way: title x mc x mii x mk",
      Query.make
        [
          rel "title" d.Repro_datagen.Imdb.title
            ~predicate:(Predicate.Compare (Predicate.Gt, "production_year", Value.Int 1990));
          rel "mc" d.Repro_datagen.Imdb.movie_companies;
          rel "mii" d.Repro_datagen.Imdb.movie_info_idx
            ~predicate:(Predicate.Compare (Predicate.Le, "info_type_id", Value.Int 10));
          rel "mk" d.Repro_datagen.Imdb.movie_keyword;
        ]
        [ movie_edge "title" "mc"; movie_edge "title" "mii"; movie_edge "title" "mk" ] );
  ]

let () =
  let data = Repro_datagen.Imdb.generate ~scale:0.2 ~seed:42 () in
  Printf.printf
    "join-order optimisation under different cardinality models (theta = %g)\n\n"
    theta;
  List.iter
    (fun (label, q) ->
      let exact = Cardinality.of_exact q in
      let optimal_plan, optimal_cost = Optimizer.optimize q exact in
      Printf.printf "%s\n  optimal plan: %s (true cost %.3e)\n" label
        (Optimizer.to_string q optimal_plan)
        optimal_cost;
      List.iter
        (fun (model_label, model) ->
          let plan, _believed_cost = Optimizer.optimize q model in
          let true_cost = Optimizer.cost_under exact plan in
          Printf.printf "  %-12s plan: %-38s regret %.2f\n" model_label
            (Optimizer.to_string q plan)
            (true_cost /. optimal_cost))
        [
          ("CSDL-Opt", Cardinality.of_csdl_opt ~theta ~seed:11 q);
          ("CS2L", Cardinality.of_spec Csdl.Spec.cs2l ~theta ~seed:11 q);
          ("CSDL(1,t)", Cardinality.of_spec
             (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta) ~theta ~seed:11 q);
        ];
      print_newline ())
    (queries data)
