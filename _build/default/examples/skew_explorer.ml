(* How does estimation quality degrade as data skew grows?

   This example sweeps the Zipf exponent of the TPC-H-like generator and
   tracks the median q-error of CSDL-Opt, CSDL(1,diff) and CS2L on the
   customer |><| supplier nationkey join — a continuous version of the
   paper's Table VIII. It also reports the sentry occupancy of the
   synopsis, which explains *why* the discrete-learning variants stay
   alive when the budget gets tight.

   Run with:  dune exec examples/skew_explorer.exe *)

module Prng = Repro_util.Prng
module Tpch = Repro_datagen.Tpch

let theta = 0.01
let runs = 11

let median_qerror estimator ~truth ~seed =
  let prng = Prng.create seed in
  let qerrors =
    Array.init runs (fun _ ->
        let estimate = Csdl.Estimator.estimate_once estimator prng in
        Repro_stats.Qerror.compute ~truth ~estimate)
  in
  Repro_util.Summary.median qerrors

let () =
  Printf.printf
    "customer |><| supplier on nationkey, scale 0.1, theta = %g, %d runs\n\n"
    theta runs;
  Printf.printf "%5s %12s %10s %12s %12s %12s\n" "z" "J" "jvd" "CSDL-Opt"
    "CSDL(1,diff)" "CS2L";
  List.iter
    (fun z ->
      let data = Tpch.generate ~scale:0.1 ~z ~seed:20200427 in
      let profile =
        Csdl.Profile.of_tables data.Tpch.customer "c_nationkey"
          data.Tpch.supplier "s_nationkey"
      in
      let truth = float_of_int (Csdl.Profile.true_join_size profile) in
      let q estimator = median_qerror estimator ~truth ~seed:3 in
      Printf.printf "%5.1f %12.0f %10.5f %12s %12s %12s\n" z truth
        profile.Csdl.Profile.jvd
        (Repro_stats.Qerror.to_string (q (Csdl.Opt.prepare ~theta profile)))
        (Repro_stats.Qerror.to_string
           (q
              (Csdl.Estimator.prepare
                 (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff)
                 ~theta profile)))
        (Repro_stats.Qerror.to_string
           (q (Csdl.Estimator.prepare Csdl.Spec.cs2l ~theta profile))))
    [ 0.0; 0.5; 1.0; 1.5; 2.0; 3.0; 4.0 ];
  Printf.printf
    "\nreading the table: CSDL(1,diff) is robust across the whole skew\n\
     range. CSDL-Opt only equals it at z = 4 because for z < 4 the\n\
     measured jvd (0.00167) sits just above the paper's 0.001 dispatch\n\
     threshold, so the hybrid picks CSDL(t,diff), whose first level\n\
     samples ~0.25 of the 25 nation values and usually returns an empty\n\
     synopsis. Csdl.Opt.prepare ~dispatch:`Budget_aware avoids the cliff.\n";
  (* Peek inside one synopsis to see where the budget goes. *)
  let data = Tpch.generate ~scale:0.1 ~z:4.0 ~seed:20200427 in
  let profile =
    Csdl.Profile.of_tables data.Tpch.customer "c_nationkey" data.Tpch.supplier
      "s_nationkey"
  in
  let estimator = Csdl.Opt.prepare ~theta profile in
  let synopsis = Csdl.Estimator.draw estimator (Prng.create 1) in
  let resolved = Csdl.Estimator.resolved estimator in
  Printf.printf
    "\nsynopsis anatomy at z=4: %d tuples stored (budget %.0f), %d distinct \
     join values covered; variant %s, base q = %.5f\n"
    (Csdl.Synopsis.size_tuples synopsis)
    resolved.Csdl.Budget.budget
    (Repro_relation.Value.Tbl.length
       synopsis.Csdl.Synopsis.sample_a.Csdl.Sample.entries)
    (Csdl.Spec.to_string (Csdl.Estimator.spec estimator))
    resolved.Csdl.Budget.base_q
