(** Star-join bench (beyond the paper: star joins are relegated to its
    technical report). The fact table lineitem joins two dimensions —
    orders on l_orderkey and part on l_partkey — with selections on both
    dimensions, over the four skewed TPC-H datasets at theta = 0.001;
    CSDL-Opt vs. CS2L through {!Csdl.Star}. *)

type row = {
  dataset : string;
  truth : int;
  opt_qerror : float;
  cs2l_qerror : float;
}

val run : Config.t -> row list
val print : row list -> unit
