(** Related-work comparison beyond the paper's evaluation: CSDL-Opt and
    CS2L against the wider estimator landscape this library also
    implements — independent Bernoulli sampling, end-biased sampling,
    AGMS sketches, join synopses and wander join — on the two-table JOB
    workload under one space/work budget.

    Caveats surfaced as "n/a" cells: AGMS sketches cannot apply runtime
    selection predicates (they answer the unfiltered size only, reported
    for predicate-free queries); join synopses only exist for PK-FK joins;
    wander join needs the base tables at estimation time (its cost budget
    is walks, not stored tuples). *)

type row = {
  query : string;
  truth : int;
  cells : (string * float option) list;
      (** (approach, median q-error); [None] = method not applicable *)
}

val approach_names : string list

val run : Config.t -> Repro_datagen.Imdb.t -> row list
(** theta = 0.01 (the workload's larger budget), [config.runs] runs. *)

val print : row list -> unit
