(** Experiment 2 (paper Table VII): effect of selection-predicate
    selectivity. Two joins over the mini-IMDB — a PK-FK join
    (aka_title |><| title on movie_id) and a many-to-many self-join of
    aka_title on the title string — swept over the top-N most frequent
    title prefixes with a [LIKE 'prefix%'] predicate, at
    theta = 0.001. CSDL-Opt vs. CS2L, median q-error of [runs]
    estimations per prefix, plus the failure (infinite q-error) counts
    the paper headlines. *)

type sweep_point = {
  rank : int;  (** 1-based prefix frequency rank *)
  prefix : string;
  truth : int;
  opt_qerror : float;
  cs2l_qerror : float;  (** exact-variance CS2L *)
  cs2l_hh_qerror : float;  (** heavy-hitter-approximated CS2L (the original
                               implementation's behaviour) *)
}

type result = {
  kind : [ `Pkfk | `M2m ];
  points : sweep_point list;  (** one per prefix, rank order *)
  shown_ranks : int list;  (** the every-5th ranks the paper prints *)
}

val run : Config.t -> Repro_datagen.Imdb.t -> result list
(** [PK-FK; M2M], using [config.prefix_count] prefixes. *)

val failures :
  result -> on:[ `Opt | `Cs2l | `Cs2l_hh ] -> ranks:int list option -> int
(** Number of infinite-q-error prefixes, over the given ranks (or all). *)

val print : result -> unit
