(** Experiment 7 (paper Section VI-A, "Estimation time"): online
    estimation cost of CSDL-Opt (which solves an LP per estimate) vs. CS2L
    (plain scaling) at theta = 1e-4, over the two-table workload. Derived
    from the per-cell timings collected by {!Exp_two_table}; runs whose
    estimate was 0 are excluded, as in the paper. *)

type summary = {
  approach : string;
  mean_seconds : float;
  fraction_under : float;  (** share of queries under [threshold_seconds] *)
  threshold_seconds : float;
  queries_measured : int;
}

val run : Config.t -> Exp_two_table.query_result list -> summary list
(** [CSDL-Opt; CS2L]. CSDL-Opt's time per query is that of the variant
    its jvd dispatch selects. *)

val print : summary list -> unit
