(** Experiment 1 (and the data feeding Experiments 3's variance view):
    the 14 JOB-derived two-table queries, every CSDL variant plus CS2L,
    both space budgets, [runs] estimations per cell — the raw material of
    Tables IV, V and VI. *)

type approach = { label : string; spec : Csdl.Spec.t }

val approaches : approach list
(** The paper's column order: the 10 CSDL variants of Table III, then
    CS2L (exact variance optimisation) and CS2L-hh (the original
    implementation's heavy-hitter approximation). *)

type cell = {
  approach : string;
  estimates : float array;  (** one per run *)
  median_qerror : float;
  rel_variance : float;  (** empirical Var / J^2 (Table VI's metric) *)
  avg_seconds : float;
      (** mean online-estimation wall time over the non-zero-estimate runs
          (the paper's timing protocol); [nan] when every run failed *)
}

type query_result = {
  name : string;
  jvd : float;
  truth : int;
  theta : float;
  cells : cell list;
}

val run : Config.t -> Repro_datagen.Imdb.t -> query_result list
(** All (query, theta) combinations, in workload order. *)

val is_small_jvd : Config.t -> query_result -> bool

val print_table4 : Config.t -> query_result list -> unit
(** Small-jvd queries: q-error per variant (paper Table IV). *)

val print_table5 : Config.t -> query_result list -> unit
(** Large-jvd queries (paper Table V). *)

val print_table6 : Config.t -> query_result list -> unit
(** Estimation variance of CSDL(1,t), CSDL(1,diff) and CS2L on the
    small-jvd queries (paper Table VI). *)
