(** Experiment 4 (paper Table IX): multi-table chain join
    [customer |><| orders |><| lineitem] (both joins PK-FK) with the
    selection [c_acctbal > 8000] on customer, over the four skewed TPC-H
    datasets at theta = 0.001; CSDL-Opt vs. CS2L median q-error. *)

type row = {
  dataset : string;
  truth : int;
  opt_qerror : float;
  cs2l_qerror : float;
}

val run : Config.t -> row list
val print : row list -> unit
