(** Experiment 3 (paper Table VIII): robustness to data skew. The
    many-to-many join [customer |><| supplier] on nationkey (a small-jvd
    join) over four skewed TPC-H datasets (scale in {1, 0.1}, Zipf z in
    {4, 2}), both budgets, CSDL-Opt vs. CS2L; median q-error and
    relative estimation variance. *)

type row = {
  dataset : string;  (** e.g. "s1-z4" *)
  theta : float;
  truth : int;
  jvd : float;  (** measured nationkey-join jvd — near the 0.001 dispatch
                    boundary for the s = 0.1 datasets, see EXPERIMENTS.md *)
  opt_qerror : float;
  opt_variance : float;
  one_diff_qerror : float;  (** CSDL(1,diff) — the variant the paper's
                                dispatch effectively uses on this join *)
  one_diff_variance : float;
  cs2l_qerror : float;
  cs2l_variance : float;
}

val datasets : (float * float) list
(** (scale, z) pairs in the paper's order. *)

val run : Config.t -> row list
val print : row list -> unit
