module Prng = Repro_util.Prng
module Tpch = Repro_datagen.Tpch
open Repro_relation

type row = {
  dataset : string;
  truth : int;
  opt_qerror : float;
  cs2l_qerror : float;
}

let theta = 0.001

let run (config : Config.t) =
  List.map
    (fun (scale, z) ->
      let data = Tpch.generate ~scale ~z ~seed:config.Config.seed in
      let tables =
        {
          Csdl.Chain_n.links =
            [
              { Csdl.Chain_n.table = data.Tpch.nation; pk = "n_nationkey"; fk = None };
              {
                Csdl.Chain_n.table = data.Tpch.customer;
                pk = "c_custkey";
                fk = Some "c_nationkey";
              };
              {
                Csdl.Chain_n.table = data.Tpch.orders;
                pk = "o_orderkey";
                fk = Some "o_custkey";
              };
            ];
          last = data.Tpch.lineitem;
          last_fk = "l_orderkey";
        }
      in
      let predicates =
        [
          Predicate.Compare (Predicate.Lt, "n_regionkey", Value.Int 3);
          Predicate.Compare (Predicate.Gt, "c_acctbal", Value.Float 8000.0);
          Predicate.True;
          Predicate.True;
        ]
      in
      let truth = float_of_int (Csdl.Chain_n.true_size ~predicates tables) in
      let median prepared tag =
        let prng =
          Prng.create (Hashtbl.hash (config.Config.seed, "chain4", scale, z, tag))
        in
        let qerrors =
          Array.init config.Config.runs (fun _ ->
              let synopsis = Csdl.Chain_n.draw prepared prng in
              Repro_stats.Qerror.compute ~truth
                ~estimate:(Csdl.Chain_n.estimate ~predicates prepared synopsis))
        in
        Repro_util.Summary.median qerrors
      in
      {
        dataset = Tpch.dataset_name data;
        truth = int_of_float truth;
        opt_qerror = median (Csdl.Chain_n.prepare_opt ~theta tables) "opt";
        cs2l_qerror =
          median (Csdl.Chain_n.prepare Csdl.Spec.cs2l ~theta tables) "cs2l";
      })
    Table8.datasets

let print rows =
  Render.print_table
    ~title:
      "4-table chain (beyond the paper): nation |><| customer |><| orders \
       |><| lineitem (region < 3, acctbal > 8000, theta = 0.001)"
    ~header:[ "Dataset"; "J"; "CSDL-Opt"; "CS2L" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.dataset;
             string_of_int r.truth;
             Render.qerror_cell r.opt_qerror;
             Render.qerror_cell r.cs2l_qerror;
           ])
         rows)
