(** 4-table chain bench (beyond the paper, exercising {!Csdl.Chain_n}'s
    "straightforward extension" to longer chains):

    [nation |><| customer |><| orders |><| lineitem]

    with the Table IX selection [c_acctbal > 8000] on customer plus a
    region restriction on nation, at theta = 0.001 over the four skewed
    TPC-H datasets; CSDL-Opt vs. CS2L. *)

type row = {
  dataset : string;
  truth : int;
  opt_qerror : float;
  cs2l_qerror : float;
}

val run : Config.t -> row list
val print : row list -> unit
