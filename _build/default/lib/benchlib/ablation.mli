(** Ablation benches for the design choices DESIGN.md calls out — not in
    the paper's evaluation, but answering "which ingredient buys what":

    - {b virtual sample} (Eq. 6 / Lemma 1): CSDL(1,diff) with and without
      the virtual-sample correction, on large-jvd JOB queries where
      per-value [q_v] differ most;
    - {b sentry} (Section II-A): CSDL(1,theta) with and without sentries on
      small-jvd queries — the all-or-nothing failure the sentry prevents;
    - {b hybrid dispatch}: the paper's jvd-threshold rule vs. this
      repository's budget-aware rule, on the skewed TPC-H nationkey join
      whose jvd straddles the 0.001 threshold;
    - {b DL grid resolution}: estimation quality as the probability grid of
      Algorithm 1 is coarsened (supporting the geometric-grid
      substitution). *)

type comparison_row = {
  label : string;
  baseline : float;  (** median q-error with the ingredient *)
  ablated : float;  (** median q-error without it *)
}

val virtual_sample : Config.t -> Repro_datagen.Imdb.t -> comparison_row list
val sentry : Config.t -> Repro_datagen.Imdb.t -> comparison_row list
val dispatch : Config.t -> comparison_row list
val grid_resolution : Config.t -> Repro_datagen.Imdb.t -> comparison_row list

val print : title:string -> with_label:string -> without_label:string ->
  comparison_row list -> unit

val run_all : Config.t -> Repro_datagen.Imdb.t -> unit
(** Run and print every ablation. *)
