open Repro_relation
module Prng = Repro_util.Prng
module Job = Repro_datagen.Job_workload

type approach = { label : string; spec : Csdl.Spec.t }

let approaches =
  let v p q = Csdl.Spec.csdl p q in
  let open Csdl.Spec in
  [
    { label = "1,t"; spec = v L_one L_theta };
    { label = "t,1"; spec = v L_theta L_one };
    { label = "rt,rt"; spec = v L_sqrt_theta L_sqrt_theta };
    { label = "diff,1"; spec = v L_diff L_one };
    { label = "diff,t"; spec = v L_diff L_theta };
    { label = "diff,rt"; spec = v L_diff L_sqrt_theta };
    { label = "1,diff"; spec = v L_one L_diff };
    { label = "t,diff"; spec = v L_theta L_diff };
    { label = "rt,diff"; spec = v L_sqrt_theta L_diff };
    { label = "diff,diff"; spec = v L_diff L_diff };
    { label = "CS2L"; spec = Csdl.Spec.cs2l };
    { label = "CS2L-hh"; spec = Csdl.Spec.cs2l_approx () };
  ]

type cell = {
  approach : string;
  estimates : float array;
  median_qerror : float;
  rel_variance : float;
  avg_seconds : float;
}

type query_result = {
  name : string;
  jvd : float;
  truth : int;
  theta : float;
  cells : cell list;
}

let run_cell ~runs ~prng ~truth ~pred_a ~pred_b estimator =
  let estimates = Array.make runs 0.0 in
  let time_total = ref 0.0 and time_count = ref 0 in
  for r = 0 to runs - 1 do
    let synopsis = Csdl.Estimator.draw estimator prng in
    let started = Sys.time () in
    let estimate = Csdl.Estimator.estimate ~pred_a ~pred_b estimator synopsis in
    let elapsed = Sys.time () -. started in
    estimates.(r) <- estimate;
    if estimate > 0.0 then begin
      time_total := !time_total +. elapsed;
      incr time_count
    end
  done;
  let qerrors =
    Array.map
      (fun estimate -> Repro_stats.Qerror.compute ~truth ~estimate)
      estimates
  in
  let avg_seconds =
    if !time_count = 0 then Float.nan
    else !time_total /. float_of_int !time_count
  in
  ( estimates,
    Repro_util.Summary.median qerrors,
    Repro_util.Summary.relative_variance ~truth estimates,
    avg_seconds )

let run (config : Config.t) data =
  let queries = Job.two_table_queries data in
  List.concat_map
    (fun (q : Job.query) ->
      let profile =
        Csdl.Profile.of_tables q.Job.a.Join.table q.Job.a.Join.column
          q.Job.b.Join.table q.Job.b.Join.column
      in
      let truth = float_of_int (Job.true_size q) in
      List.map
        (fun theta ->
          let cells =
            List.map
              (fun { label; spec } ->
                let estimator = Csdl.Estimator.prepare spec ~theta profile in
                (* one deterministic stream per (query, theta, approach) *)
                let prng =
                  Prng.create
                    (Hashtbl.hash (config.Config.seed, q.Job.name, theta, label))
                in
                let estimates, median_qerror, rel_variance, avg_seconds =
                  run_cell ~runs:config.Config.runs ~prng ~truth
                    ~pred_a:q.Job.a.Join.predicate ~pred_b:q.Job.b.Join.predicate
                    estimator
                in
                { approach = label; estimates; median_qerror; rel_variance; avg_seconds })
              approaches
          in
          {
            name = q.Job.name;
            jvd = profile.Csdl.Profile.jvd;
            truth = int_of_float truth;
            theta;
            cells;
          })
        config.Config.thetas)
    queries

let is_small_jvd (config : Config.t) result =
  result.jvd < config.Config.jvd_threshold

let qerror_rows results =
  List.map
    (fun r ->
      Printf.sprintf "%s (J=%d)" r.name r.truth
      :: Printf.sprintf "%g" r.theta
      :: List.map (fun c -> Render.qerror_cell c.median_qerror) r.cells)
    results

let qerror_header =
  "Query" :: "theta" :: List.map (fun a -> a.label) approaches

let print_table4 config results =
  let small = List.filter (is_small_jvd config) results in
  Render.print_table
    ~title:
      (Printf.sprintf
         "Table IV: q-error, queries with small join value density (jvd < %g)"
         config.Config.jvd_threshold)
    ~header:qerror_header ~rows:(qerror_rows small)

let print_table5 config results =
  let large = List.filter (fun r -> not (is_small_jvd config r)) results in
  Render.print_table
    ~title:
      (Printf.sprintf
         "Table V: q-error, queries with large join value density (jvd >= %g)"
         config.Config.jvd_threshold)
    ~header:qerror_header ~rows:(qerror_rows large)

let print_table6 config results =
  let small = List.filter (is_small_jvd config) results in
  let pick label cells = List.find (fun c -> c.approach = label) cells in
  let variance_of cell =
    (* the paper reports inf variance for cells whose estimation failed *)
    if Repro_stats.Qerror.is_failure cell.median_qerror then Float.infinity
    else cell.rel_variance
  in
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          Printf.sprintf "%g" r.theta;
          Render.variance_cell (variance_of (pick "1,t" r.cells));
          Render.variance_cell (variance_of (pick "1,diff" r.cells));
          Render.variance_cell (variance_of (pick "CS2L" r.cells));
        ])
      small
  in
  Render.print_table
    ~title:
      "Table VI: estimation variance (Var/J^2) on small-jvd queries"
    ~header:[ "Query"; "theta"; "CSDL(1,t)"; "CSDL(1,diff)"; "CS2L" ]
    ~rows
