lib/benchlib/timing.ml: Config Exp_two_table Float List Printf Render
