lib/benchlib/chain4_bench.mli: Config
