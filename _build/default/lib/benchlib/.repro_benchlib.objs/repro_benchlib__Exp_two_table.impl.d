lib/benchlib/exp_two_table.ml: Array Config Csdl Float Hashtbl Join List Printf Render Repro_datagen Repro_relation Repro_stats Repro_util Sys
