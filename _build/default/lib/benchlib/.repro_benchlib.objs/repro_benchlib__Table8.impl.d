lib/benchlib/table8.ml: Array Config Csdl Float Hashtbl List Printf Render Repro_datagen Repro_stats Repro_util
