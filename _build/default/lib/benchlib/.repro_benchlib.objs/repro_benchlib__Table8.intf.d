lib/benchlib/table8.mli: Config
