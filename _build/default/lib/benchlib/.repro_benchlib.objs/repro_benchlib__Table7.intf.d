lib/benchlib/table7.mli: Config Repro_datagen
