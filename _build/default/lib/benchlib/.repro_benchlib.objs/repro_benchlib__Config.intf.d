lib/benchlib/config.mli: Format
