lib/benchlib/exp_two_table.mli: Config Csdl Repro_datagen
