lib/benchlib/timing.mli: Config Exp_two_table
