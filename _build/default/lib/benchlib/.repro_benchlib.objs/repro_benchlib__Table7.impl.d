lib/benchlib/table7.ml: Array Config Csdl Hashtbl Join List Render Repro_datagen Repro_relation Repro_stats Repro_util
