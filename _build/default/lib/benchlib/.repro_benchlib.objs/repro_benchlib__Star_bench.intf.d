lib/benchlib/star_bench.mli: Config
