lib/benchlib/ablation.mli: Config Repro_datagen
