lib/benchlib/render.ml: Array Buffer Char Filename Float Format Fun List Option Printf Repro_stats String
