lib/benchlib/table9.mli: Config
