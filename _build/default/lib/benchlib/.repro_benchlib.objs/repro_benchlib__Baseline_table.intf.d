lib/benchlib/baseline_table.mli: Config Repro_datagen
