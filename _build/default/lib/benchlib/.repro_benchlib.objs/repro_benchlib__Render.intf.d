lib/benchlib/render.mli: Format
