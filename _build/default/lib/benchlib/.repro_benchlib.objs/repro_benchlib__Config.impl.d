lib/benchlib/config.ml: Format List Printf String Sys
