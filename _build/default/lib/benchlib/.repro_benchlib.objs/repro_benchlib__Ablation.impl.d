lib/benchlib/ablation.ml: Array Config Csdl Join List Printf Render Repro_datagen Repro_relation Repro_stats Repro_util Table8
