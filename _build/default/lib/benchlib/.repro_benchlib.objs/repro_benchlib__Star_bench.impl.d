lib/benchlib/star_bench.ml: Array Config Csdl Hashtbl List Predicate Render Repro_datagen Repro_relation Repro_stats Repro_util Table8 Value
