type summary = {
  approach : string;
  mean_seconds : float;
  fraction_under : float;
  threshold_seconds : float;
  queries_measured : int;
}

let run (config : Config.t) results =
  (* the paper times the smallest budget; use the smallest configured one *)
  let timing_theta = List.fold_left Float.min Float.infinity config.Config.thetas in
  let at_theta =
    List.filter (fun r -> r.Exp_two_table.theta = timing_theta) results
  in
  let cell_time label (r : Exp_two_table.query_result) =
    let cell =
      List.find (fun c -> c.Exp_two_table.approach = label) r.Exp_two_table.cells
    in
    cell.Exp_two_table.avg_seconds
  in
  let opt_time (r : Exp_two_table.query_result) =
    let label =
      if r.Exp_two_table.jvd < config.Config.jvd_threshold then "1,diff"
      else "t,diff"
    in
    cell_time label r
  in
  let summarise approach threshold_seconds times =
    let measured = List.filter (fun t -> not (Float.is_nan t)) times in
    let n = List.length measured in
    if n = 0 then
      {
        approach;
        mean_seconds = Float.nan;
        fraction_under = Float.nan;
        threshold_seconds;
        queries_measured = 0;
      }
    else
      let mean = List.fold_left ( +. ) 0.0 measured /. float_of_int n in
      let under = List.length (List.filter (fun t -> t < threshold_seconds) measured) in
      {
        approach;
        mean_seconds = mean;
        fraction_under = float_of_int under /. float_of_int n;
        threshold_seconds;
        queries_measured = n;
      }
  in
  [
    summarise "CSDL-Opt" 0.5 (List.map opt_time at_theta);
    summarise "CS2L" 0.15 (List.map (cell_time "CS2L") at_theta);
  ]

let print summaries =
  Render.print_table
    ~title:"Estimation time (theta = 1e-4, zero-estimate runs excluded)"
    ~header:[ "Approach"; "mean (s)"; "under"; "fraction"; "#queries" ]
    ~rows:
      (List.map
         (fun s ->
           [
             s.approach;
             (if Float.is_nan s.mean_seconds then "n/a"
              else Printf.sprintf "%.4f" s.mean_seconds);
             Printf.sprintf "< %.2fs" s.threshold_seconds;
             (if Float.is_nan s.fraction_under then "n/a"
              else Printf.sprintf "%.0f%%" (100.0 *. s.fraction_under));
             string_of_int s.queries_measured;
           ])
         summaries)
