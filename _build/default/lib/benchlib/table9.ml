module Prng = Repro_util.Prng
module Tpch = Repro_datagen.Tpch
open Repro_relation

type row = {
  dataset : string;
  truth : int;
  opt_qerror : float;
  cs2l_qerror : float;
}

let theta = 0.001

let run (config : Config.t) =
  List.map
    (fun (scale, z) ->
      let data = Tpch.generate ~scale ~z ~seed:config.Config.seed in
      let tables =
        {
          Csdl.Chain.a = data.Tpch.customer;
          a_pk = "c_custkey";
          b = data.Tpch.orders;
          b_pk = "o_orderkey";
          b_fk = "o_custkey";
          c = data.Tpch.lineitem;
          c_fk = "l_orderkey";
        }
      in
      let pred_a =
        Predicate.Compare (Predicate.Gt, "c_acctbal", Value.Float 8000.0)
      in
      let truth = float_of_int (Csdl.Chain.true_size ~pred_a tables) in
      let median prepared tag =
        let prng =
          Prng.create (Hashtbl.hash (config.Config.seed, "table9", scale, z, tag))
        in
        let qerrors =
          Array.init config.Config.runs (fun _ ->
              let synopsis = Csdl.Chain.draw prepared prng in
              let estimate = Csdl.Chain.estimate ~pred_a prepared synopsis in
              Repro_stats.Qerror.compute ~truth ~estimate)
        in
        Repro_util.Summary.median qerrors
      in
      {
        dataset = Tpch.dataset_name data;
        truth = int_of_float truth;
        opt_qerror = median (Csdl.Chain.prepare_opt ~theta tables) "opt";
        cs2l_qerror = median (Csdl.Chain.prepare Csdl.Spec.cs2l ~theta tables) "cs2l";
      })
    Table8.datasets

let print rows =
  Render.print_table
    ~title:
      "Table IX: chain join customer |><| orders |><| lineitem (c_acctbal > 8000, theta = 0.001)"
    ~header:[ "Dataset"; "J"; "CSDL-Opt"; "CS2L" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.dataset;
             string_of_int r.truth;
             Render.qerror_cell r.opt_qerror;
             Render.qerror_cell r.cs2l_qerror;
           ])
         rows)
