lib/util/prng.mli:
