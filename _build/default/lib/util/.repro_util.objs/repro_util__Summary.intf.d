lib/util/summary.mli:
