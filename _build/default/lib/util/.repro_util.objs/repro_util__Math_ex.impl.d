lib/util/math_ex.ml: Array Float Lazy
