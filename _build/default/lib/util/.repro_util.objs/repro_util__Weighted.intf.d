lib/util/weighted.mli:
