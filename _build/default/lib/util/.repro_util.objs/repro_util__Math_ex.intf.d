lib/util/math_ex.mli:
