lib/util/summary.ml: Array Float
