lib/util/weighted.ml: Array Float List
