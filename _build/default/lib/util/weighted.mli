(** Weighted multisets of reals. The discrete-learning estimator represents
    the learned histogram as a weighted multiset of probability values and
    repeatedly takes Poisson-weighted medians of it (Algorithm 1, lines
    7–10); this module provides that operation without materialising the
    [r_x] copies. *)

type t
(** An immutable weighted multiset of floats. Weights are non-negative;
    zero-weight entries are dropped. *)

val of_pairs : (float * float) list -> t
(** [of_pairs [(value, weight); ...]]. Negative weights raise
    [Invalid_argument]. *)

val of_arrays : values:float array -> weights:float array -> t
(** Same from parallel arrays; lengths must agree. *)

val is_empty : t -> bool

val total_weight : t -> float

val size : t -> int
(** Number of distinct entries retained (positive weight). *)

val reweight : (float -> float -> float) -> t -> t
(** [reweight f t] maps each entry's weight [w] at value [x] to [f x w].
    Entries whose new weight is zero (or below) are dropped. *)

val median : t -> float
(** Weighted median: the smallest value [m] such that the weight of entries
    [<= m] is at least half the total. Raises [Invalid_argument] on an empty
    multiset. *)

val fold : (float -> float -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f t init] folds [f value weight] over entries in increasing value
    order. *)

val mean : t -> float
(** Weighted mean; raises [Invalid_argument] on empty. *)
