(* Entries are kept sorted by value with strictly positive weights, which
   makes the weighted median a single prefix-sum scan. *)

type t = { values : float array; weights : float array; total : float }

let of_entries entries =
  let entries = List.filter (fun (_, w) -> w > 0.0) entries in
  let arr = Array.of_list entries in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  let values = Array.map fst arr in
  let weights = Array.map snd arr in
  let total = Array.fold_left ( +. ) 0.0 weights in
  { values; weights; total }

let of_pairs pairs =
  List.iter
    (fun (_, w) ->
      if w < 0.0 || Float.is_nan w then invalid_arg "Weighted.of_pairs: negative weight")
    pairs;
  of_entries pairs

let of_arrays ~values ~weights =
  let n = Array.length values in
  if Array.length weights <> n then invalid_arg "Weighted.of_arrays: length mismatch";
  let pairs = ref [] in
  for i = n - 1 downto 0 do
    if weights.(i) < 0.0 || Float.is_nan weights.(i) then
      invalid_arg "Weighted.of_arrays: negative weight";
    pairs := (values.(i), weights.(i)) :: !pairs
  done;
  of_entries !pairs

let is_empty t = Array.length t.values = 0
let total_weight t = t.total
let size t = Array.length t.values

let reweight f t =
  let pairs = ref [] in
  for i = Array.length t.values - 1 downto 0 do
    let w = f t.values.(i) t.weights.(i) in
    if w > 0.0 then pairs := (t.values.(i), w) :: !pairs
  done;
  of_entries !pairs

let median t =
  if is_empty t then invalid_arg "Weighted.median: empty multiset";
  let half = t.total /. 2.0 in
  let n = Array.length t.values in
  let rec scan i acc =
    let acc = acc +. t.weights.(i) in
    if acc >= half || i = n - 1 then t.values.(i) else scan (i + 1) acc
  in
  scan 0 0.0

let fold f t init =
  let acc = ref init in
  for i = 0 to Array.length t.values - 1 do
    acc := f t.values.(i) t.weights.(i) !acc
  done;
  !acc

let mean t =
  if is_empty t then invalid_arg "Weighted.mean: empty multiset";
  fold (fun v w acc -> acc +. (v *. w)) t 0.0 /. t.total
