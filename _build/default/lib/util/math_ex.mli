(** Special functions used by the discrete-learning estimator and the data
    generators: log-gamma, Poisson probabilities, and Zipf normalisation. *)

val log_gamma : float -> float
(** Natural log of the Gamma function for positive arguments (Lanczos
    approximation, ~15 significant digits). *)

val log_factorial : int -> float
(** [log_factorial n] = ln(n!). Memoised for small [n], falls back to
    [log_gamma] above the cache. Requires [n >= 0]. *)

val poisson_pmf : float -> int -> float
(** [poisson_pmf lambda k] is P[Poi(lambda) = k], computed in log space so it
    neither overflows nor underflows for large [lambda] or [k].
    [poisson_pmf 0. 0 = 1.]. *)

val poisson_log_pmf : float -> int -> float
(** Log of the above; [neg_infinity] when the probability is zero. *)

val binomial_pmf : int -> float -> int -> float
(** [binomial_pmf n p k] is P[Bin(n,p) = k]. *)

val generalized_harmonic : int -> float -> float
(** [generalized_harmonic n z] = sum_{k=1}^{n} 1/k^z — the normalising
    constant of a Zipf(z) distribution over [n] ranks. *)

val log_sum_exp : float array -> float
(** Numerically stable ln(sum exp x_i); [neg_infinity] for the empty array. *)

val feq : ?eps:float -> float -> float -> bool
(** Approximate float equality: absolute or relative difference below [eps]
    (default [1e-9]). *)
