open Repro_relation

type query = {
  name : string;
  a : Join.side;
  b : Join.side;
}

let query name a b = { name; a; b }

let two_table_queries (d : Imdb.t) =
  let open Predicate in
  let n_title = Table.cardinality d.Imdb.title in
  let company_domain = max 1 (n_title / 20) in
  [
    (* --- small jvd: joins on tiny categorical domains ------------------ *)
    query "Q1a1"
      (Join.filtered d.Imdb.movie_companies "company_type_id"
         (Compare (Le, "company_id", Value.Int (max 1 (company_domain / 33)))))
      (Join.filtered d.Imdb.company_type "id"
         (Compare (Eq, "kind", Value.Str "production companies")));
    query "Q1a4"
      (Join.filtered d.Imdb.movie_companies "company_type_id"
         (Compare (Le, "company_id", Value.Int (max 1 (company_domain / 50)))))
      (Join.filtered d.Imdb.company_type "id"
         (Compare (Eq, "kind", Value.Str "special effects companies")));
    query "Q1b1"
      (Join.unfiltered d.Imdb.movie_info_idx "info_type_id")
      (Join.unfiltered d.Imdb.info_type "id");
    query "Q1b4"
      (Join.unfiltered d.Imdb.movie_info_idx "info_type_id")
      (Join.filtered d.Imdb.info_type "id" (Compare (Eq, "id", Value.Int 100)));
    (* --- large jvd: joins on movie_id / keyword_id --------------------- *)
    query "Q1a2"
      (Join.filtered d.Imdb.title "id"
         (Compare (Gt, "production_year", Value.Int 2010)))
      (Join.filtered d.Imdb.movie_companies "movie_id"
         (Compare (Eq, "company_type_id", Value.Int 2)));
    query "Q1a3"
      (Join.filtered d.Imdb.title "id"
         (Compare (Gt, "production_year", Value.Int 2000)))
      (Join.filtered d.Imdb.movie_info_idx "movie_id"
         (Compare (Le, "info_type_id", Value.Int 3)));
    query "Q1b2"
      (Join.filtered d.Imdb.title "id"
         (Compare (Gt, "production_year", Value.Int 1950)))
      (Join.unfiltered d.Imdb.movie_info_idx "movie_id");
    query "Q1b3"
      (Join.unfiltered d.Imdb.title "id")
      (Join.unfiltered d.Imdb.movie_companies "movie_id");
    query "Q1b5"
      (Join.filtered d.Imdb.title "id" (Compare (Le, "kind_id", Value.Int 3)))
      (Join.unfiltered d.Imdb.movie_companies "movie_id");
    query "Q2a1"
      (Join.filtered d.Imdb.title "id"
         (Compare (Gt, "production_year", Value.Int 1990)))
      (Join.unfiltered d.Imdb.movie_keyword "movie_id");
    query "Q2a2"
      (Join.unfiltered d.Imdb.movie_keyword "keyword_id")
      (Join.filtered d.Imdb.keyword "id" (Like_prefix ("keyword", "The")));
    query "Q2b1"
      (Join.filtered d.Imdb.aka_title "movie_id" (Like_prefix ("title", "The")))
      (Join.filtered d.Imdb.movie_keyword "movie_id"
         (Compare (Le, "keyword_id", Value.Int 1000)));
    query "Q2c1"
      (Join.filtered d.Imdb.aka_title "movie_id"
         (Like_prefix ("title", "Word400")))
      (Join.filtered d.Imdb.movie_keyword "movie_id"
         (Compare (Le, "keyword_id", Value.Int 100)));
    query "Q2d1"
      (Join.filtered d.Imdb.cast_info "movie_id"
         (Compare (Le, "role_id", Value.Int 2)))
      (Join.unfiltered d.Imdb.title "id");
  ]

let query_jvd q =
  Join.jvd q.a.Join.table q.a.Join.column q.b.Join.table q.b.Join.column

let true_size q = Join.pair_count q.a q.b

let pkfk_prefix_query (d : Imdb.t) ~prefix =
  query
    (Printf.sprintf "pkfk[%s]" prefix)
    (Join.unfiltered d.Imdb.aka_title "movie_id")
    (Join.filtered d.Imdb.title "id" (Predicate.Like_prefix ("title", prefix)))

let m2m_prefix_query (d : Imdb.t) ~prefix =
  query
    (Printf.sprintf "m2m[%s]" prefix)
    (Join.filtered d.Imdb.aka_title "title"
       (Predicate.Like_prefix ("title", prefix)))
    (Join.unfiltered d.Imdb.aka_title "title")

let top_prefixes (d : Imdb.t) n =
  let counts = Hashtbl.create 512 in
  Table.iter
    (fun row ->
      match row.(Table.column_index d.Imdb.title "title") with
      | Value.Str s ->
          let first_word =
            match String.index_opt s ' ' with
            | Some i -> String.sub s 0 i
            | None -> s
          in
          Hashtbl.replace counts first_word
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts first_word))
      | _ -> ())
    d.Imdb.title;
  Hashtbl.fold (fun word count acc -> (word, count) :: acc) counts []
  |> List.sort (fun (wa, ca) (wb, cb) ->
         match compare cb ca with 0 -> compare wa wb | c -> c)
  |> List.filteri (fun i _ -> i < n)
  |> List.map fst
