(** Zipf-distributed integers: rank [k] of [n] has probability proportional
    to [1/k^z]. [z = 0] degenerates to uniform. This is the skew model of
    the Microsoft skewed-TPC-H generator the paper uses (Tables VIII/IX
    with z in {2, 4}) and of the synthetic IMDB tables. *)

type t

val make : n:int -> z:float -> t
(** Precomputes the CDF; [n >= 1], [z >= 0]. O(n) space. *)

val size : t -> int
val exponent : t -> float

val draw : t -> Repro_util.Prng.t -> int
(** A random rank in [1, n], by binary search on the CDF. *)

val pmf : t -> int -> float
(** Probability of rank [k]; 0 outside [1, n]. *)

val expected_count : t -> total:int -> int -> float
(** [expected_count t ~total k] — expected multiplicity of rank [k] among
    [total] independent draws. *)
