open Repro_relation
module Prng = Repro_util.Prng

type t = {
  nation : Table.t;
  customer : Table.t;
  supplier : Table.t;
  orders : Table.t;
  lineitem : Table.t;
  part : Table.t;
  scale : float;
  z : float;
}

let nations = 25

(* TPC-H row counts at SF 1. Customer and supplier are always full-size
   (the Table VIII join's jvd classification depends on |customer|).
   Orders is full-size up to a 300k cap — so the paper's s = 0.1 datasets
   are reproduced at their true size and only the s = 1 chain is downsized
   (DESIGN.md); the cap only scales the chain's absolute sample budget. *)
let customer_base = 150_000
let supplier_base = 10_000
let orders_base = 1_500_000
let orders_cap = 300_000
let part_base = 200_000
let part_cap = 40_000
let lineitem_per_order = 4.0

let market_segments =
  [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "HOUSEHOLD"; "MACHINERY" |]

let customer_schema =
  Schema.make
    [
      ("c_custkey", Schema.T_int);
      ("c_nationkey", Schema.T_int);
      ("c_acctbal", Schema.T_float);
      ("c_mktsegment", Schema.T_string);
    ]

let supplier_schema =
  Schema.make
    [
      ("s_suppkey", Schema.T_int);
      ("s_nationkey", Schema.T_int);
      ("s_acctbal", Schema.T_float);
    ]

let orders_schema =
  Schema.make
    [
      ("o_orderkey", Schema.T_int);
      ("o_custkey", Schema.T_int);
      ("o_totalprice", Schema.T_float);
    ]

let lineitem_schema =
  Schema.make
    [
      ("l_orderkey", Schema.T_int);
      ("l_partkey", Schema.T_int);
      ("l_linenumber", Schema.T_int);
      ("l_quantity", Schema.T_int);
      ("l_extendedprice", Schema.T_float);
    ]

let nation_schema =
  Schema.make
    [
      ("n_nationkey", Schema.T_int);
      ("n_name", Schema.T_string);
      ("n_regionkey", Schema.T_int);
    ]

let part_schema =
  Schema.make
    [
      ("p_partkey", Schema.T_int);
      ("p_brand", Schema.T_int);
      ("p_retailprice", Schema.T_float);
    ]

let rows n f = Array.init n f

let acctbal prng =
  (* TPC-H account balances are uniform in [-999.99, 9999.99]. *)
  -999.99 +. (Prng.float prng *. (9999.99 +. 999.99))

let generate ~scale ~z ~seed =
  if scale <= 0.0 then invalid_arg "Tpch.generate: scale must be positive";
  (* Salt the stream with (scale, z) so the four experiment datasets are
     statistically independent rather than sharing a prefix of draws. *)
  let prng = Prng.create (Hashtbl.hash (seed, scale, z)) in
  let count base = max 1 (int_of_float (Float.round (float_of_int base *. scale))) in
  let n_customer = count customer_base in
  let n_supplier = count supplier_base in
  let n_orders = min orders_cap (count orders_base) in
  let n_part = min part_cap (count part_base) in
  let n_lineitem =
    max 1 (int_of_float (Float.round (float_of_int n_orders *. lineitem_per_order)))
  in
  (* Skew is applied to join-value distributions (nationkey, the per-
     customer order counts via o_custkey); l_orderkey stays uniform — the
     lineitem-per-order structure is what keeps the Table IX chain's jvd
     large, as the paper states — and c_acctbal stays uniform so the
     selection predicate has a stable selectivity. See DESIGN.md. *)
  let nation_zipf = Zipf.make ~n:nations ~z in
  let cust_zipf = Zipf.make ~n:n_customer ~z in
  let nation =
    Table.create nation_schema
      (rows nations (fun i ->
           [|
             Value.Int i;
             Value.Str (Printf.sprintf "NATION-%02d" i);
             Value.Int (i mod 5);
           |]))
  in
  let customer_prng = Prng.split prng in
  let customer =
    Table.create customer_schema
      (rows n_customer (fun i ->
           [|
             Value.Int (i + 1);
             Value.Int (Zipf.draw nation_zipf customer_prng - 1);
             Value.Float (acctbal customer_prng);
             Value.Str
               market_segments.(Prng.int customer_prng
                                  (Array.length market_segments));
           |]))
  in
  let supplier_prng = Prng.split prng in
  let supplier =
    Table.create supplier_schema
      (rows n_supplier (fun i ->
           [|
             Value.Int (i + 1);
             Value.Int (Zipf.draw nation_zipf supplier_prng - 1);
             Value.Float (acctbal supplier_prng);
           |]))
  in
  let orders_prng = Prng.split prng in
  let orders =
    Table.create orders_schema
      (rows n_orders (fun i ->
           [|
             Value.Int (i + 1);
             Value.Int (Zipf.draw cust_zipf orders_prng);
             Value.Float (Prng.float orders_prng *. 500_000.0);
           |]))
  in
  let part_prng = Prng.split prng in
  let brand_zipf = Zipf.make ~n:25 ~z in
  let part =
    Table.create part_schema
      (rows n_part (fun i ->
           [|
             Value.Int (i + 1);
             Value.Int (Zipf.draw brand_zipf part_prng);
             Value.Float (Prng.float part_prng *. 2_000.0);
           |]))
  in
  let lineitem_prng = Prng.split prng in
  (* l_partkey is Zipf(z)-skewed: part popularity is a value distribution,
     not join structure, so it carries the dataset's skew like nationkey *)
  let partkey_zipf = Zipf.make ~n:n_part ~z in
  let lineitem =
    Table.create lineitem_schema
      (rows n_lineitem (fun i ->
           [|
             Value.Int (1 + Prng.int lineitem_prng n_orders);
             Value.Int (Zipf.draw partkey_zipf lineitem_prng);
             Value.Int ((i mod 7) + 1);
             Value.Int (1 + Prng.int lineitem_prng 50);
             Value.Float (Prng.float lineitem_prng *. 100_000.0);
           |]))
  in
  { nation; customer; supplier; orders; lineitem; part; scale; z }

let dataset_name t =
  let scale =
    if Float.is_integer t.scale then string_of_int (int_of_float t.scale)
    else Printf.sprintf "%g" t.scale
  in
  let z =
    if Float.is_integer t.z then string_of_int (int_of_float t.z)
    else Printf.sprintf "%g" t.z
  in
  Printf.sprintf "s%s-z%s" scale z
