(** Synthetic IMDB ("mini-JOB") dataset.

    The paper's Experiments 1 and 2 run on the Join Order Benchmark over
    the real IMDB dump (3.7 GB), which is not redistributable. This module
    generates tables with the same *statistical* shape — the only thing
    the estimators can see: Zipf-like FK multiplicities, tiny categorical
    domains (company_type has 4 values, info_type 113) giving small-jvd
    joins, wide movie_id domains giving large-jvd joins, and movie titles
    whose first word follows a Zipf law so that [LIKE 'prefix%']
    predicates have the frequency profile Table VII sweeps. See DESIGN.md
    substitutions.

    Schemas (keys abridged):
    - title(id PK, title, kind_id, production_year)
    - aka_title(id PK, movie_id FK, title)
    - movie_companies(id PK, movie_id FK, company_id, company_type_id)
    - movie_info_idx(id PK, movie_id FK, info_type_id, info)
    - movie_keyword(id PK, movie_id FK, keyword_id FK)
    - keyword(id PK, keyword)
    - cast_info(id PK, person_id, movie_id FK, role_id)
    - company_type(id PK, kind) — 4 rows
    - info_type(id PK, info) — 113 rows *)

open Repro_relation

type t = {
  title : Table.t;
  aka_title : Table.t;
  movie_companies : Table.t;
  movie_info_idx : Table.t;
  movie_keyword : Table.t;
  keyword : Table.t;
  cast_info : Table.t;
  company_type : Table.t;
  info_type : Table.t;
}

val generate : ?scale:float -> seed:int -> unit -> t
(** [scale] multiplies every table's row count ([1.0] gives a 100k-row
    title table and ~1M rows overall; benchmarks default to a smaller
    scale). Deterministic per seed. *)

val title_prefixes : string array
(** The vocabulary of title first words, most frequent first. The top-100
    drive the Table VII selectivity sweep. *)
