lib/datagen/imdb.mli: Repro_relation Table
