lib/datagen/zipf.mli: Repro_util
