lib/datagen/job_workload.mli: Imdb Join Repro_relation
