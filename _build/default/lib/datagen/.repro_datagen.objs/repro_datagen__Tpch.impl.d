lib/datagen/tpch.ml: Array Float Hashtbl Printf Repro_relation Repro_util Schema Table Value Zipf
