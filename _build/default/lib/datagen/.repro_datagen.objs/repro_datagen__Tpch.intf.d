lib/datagen/tpch.mli: Repro_relation Table
