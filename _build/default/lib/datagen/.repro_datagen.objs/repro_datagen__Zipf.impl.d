lib/datagen/zipf.ml: Array Float Repro_util
