lib/datagen/job_workload.ml: Array Hashtbl Imdb Join List Option Predicate Printf Repro_relation String Table Value
