lib/datagen/imdb.ml: Array Float Printf Repro_relation Repro_util Schema Table Value Zipf
