(** The JOB-derived query workload of the paper's Experiments 1–3.

    Experiment 1 derives 14 two-table join queries from JOB's Q1/Q2 join
    graphs: 4 with small join value density (joins on the tiny
    company_type / info_type domains) and 10 with large jvd (joins on
    movie_id / keyword_id). We reconstruct queries with the same names,
    the same jvd classes, and true sizes spanning the same orders of
    magnitude; the exact sizes differ from the paper because the substrate
    is the synthetic mini-IMDB (DESIGN.md substitutions).

    Experiment 2 sweeps [LIKE 'prefix%'] selectivities over two joins on
    aka_title: a PK-FK join with title and a many-to-many self-join. *)

open Repro_relation

type query = {
  name : string;
  a : Join.side;
  b : Join.side;
}

val two_table_queries : Imdb.t -> query list
(** The 14 queries: Q1a1, Q1a4, Q1b1, Q1b4 (small jvd) and Q1a2, Q1a3,
    Q1b2, Q1b3, Q1b5, Q2a1, Q2a2, Q2b1, Q2c1, Q2d1 (large jvd). *)

val query_jvd : query -> float
(** jvd of the unfiltered join — what CSDL-Opt dispatches on. *)

val true_size : query -> int
(** Exact filtered join size (the experiment ground truth). *)

val pkfk_prefix_query : Imdb.t -> prefix:string -> query
(** Table VII(a): [aka_title |><| title] on movie_id (a PK-FK join), with
    [title.title LIKE 'prefix%'] on the PK side. *)

val m2m_prefix_query : Imdb.t -> prefix:string -> query
(** Table VII(b): the many-to-many self-join of aka_title on the title
    string, with the prefix predicate on the left side. *)

val top_prefixes : Imdb.t -> int -> string list
(** The n most frequent title first-words of the generated title table,
    most frequent first — the paper's "top-100 prefixes". *)
