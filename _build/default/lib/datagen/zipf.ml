module Prng = Repro_util.Prng

type t = { n : int; z : float; cdf : float array }

let make ~n ~z =
  if n < 1 then invalid_arg "Zipf.make: n must be >= 1";
  if z < 0.0 then invalid_arg "Zipf.make: z must be >= 0";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int k) z);
    cdf.(k - 1) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  cdf.(n - 1) <- 1.0;
  { n; z; cdf }

let size t = t.n
let exponent t = t.z

let draw t prng =
  let u = Prng.float prng in
  (* smallest index with cdf >= u *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let pmf t k =
  if k < 1 || k > t.n then 0.0
  else if k = 1 then t.cdf.(0)
  else t.cdf.(k - 1) -. t.cdf.(k - 2)

let expected_count t ~total k = float_of_int total *. pmf t k
