open Repro_relation
module Prng = Repro_util.Prng

type t = {
  title : Table.t;
  aka_title : Table.t;
  movie_companies : Table.t;
  movie_info_idx : Table.t;
  movie_keyword : Table.t;
  keyword : Table.t;
  cast_info : Table.t;
  company_type : Table.t;
  info_type : Table.t;
}

(* First words of movie titles: a hand-picked frequent head followed by a
   synthetic tail, drawn Zipf(1.1) so prefix selectivities span several
   orders of magnitude like real IMDB first words do. *)
let title_prefixes =
  let common =
    [|
      "The"; "A"; "La"; "El"; "Le"; "Der"; "Die"; "Les"; "Il"; "Los";
      "An"; "Love"; "My"; "Das"; "De"; "Un"; "Una"; "Night"; "Man"; "Der2";
      "Last"; "Black"; "Dead"; "Big"; "Little"; "One"; "Two"; "Dark";
      "Blood"; "House"; "Girl"; "Boy"; "King"; "Queen"; "Red"; "Blue";
      "Great"; "American"; "Saint"; "Lost";
    |]
  in
  let tail = Array.init 460 (fun i -> Printf.sprintf "Word%03d" (i + 1)) in
  Array.append common tail

let title_schema =
  Schema.make
    [
      ("id", Schema.T_int);
      ("title", Schema.T_string);
      ("kind_id", Schema.T_int);
      ("production_year", Schema.T_int);
    ]

let aka_title_schema =
  Schema.make
    [ ("id", Schema.T_int); ("movie_id", Schema.T_int); ("title", Schema.T_string) ]

let movie_companies_schema =
  Schema.make
    [
      ("id", Schema.T_int);
      ("movie_id", Schema.T_int);
      ("company_id", Schema.T_int);
      ("company_type_id", Schema.T_int);
    ]

let movie_info_idx_schema =
  Schema.make
    [
      ("id", Schema.T_int);
      ("movie_id", Schema.T_int);
      ("info_type_id", Schema.T_int);
      ("info", Schema.T_string);
    ]

let movie_keyword_schema =
  Schema.make
    [ ("id", Schema.T_int); ("movie_id", Schema.T_int); ("keyword_id", Schema.T_int) ]

let keyword_schema =
  Schema.make [ ("id", Schema.T_int); ("keyword", Schema.T_string) ]

let cast_info_schema =
  Schema.make
    [
      ("id", Schema.T_int);
      ("person_id", Schema.T_int);
      ("movie_id", Schema.T_int);
      ("role_id", Schema.T_int);
    ]

let company_type_schema =
  Schema.make [ ("id", Schema.T_int); ("kind", Schema.T_string) ]

let info_type_schema =
  Schema.make [ ("id", Schema.T_int); ("info", Schema.T_string) ]

let company_kinds =
  [|
    "production companies"; "distributors"; "special effects companies";
    "miscellaneous companies";
  |]

let rows n f = Array.init n f

let random_title prng prefix_zipf =
  let prefix = title_prefixes.(Zipf.draw prefix_zipf prng - 1) in
  Printf.sprintf "%s %s %d" prefix
    (match Prng.int prng 5 with
    | 0 -> "Story"
    | 1 -> "Returns"
    | 2 -> "of Fire"
    | 3 -> "Chronicle"
    | _ -> "Affair")
    (Prng.int prng 100_000)

let generate ?(scale = 1.0) ~seed () =
  if scale <= 0.0 then invalid_arg "Imdb.generate: scale must be positive";
  let prng = Prng.create seed in
  let count base = max 4 (int_of_float (Float.round (float_of_int base *. scale))) in
  let n_title = count 100_000 in
  let n_aka = count 35_000 in
  let n_mc = count 200_000 in
  let n_mii = count 130_000 in
  let n_keyword = count 30_000 in
  let n_mk = count 300_000 in
  let n_cast = count 400_000 in
  let prefix_zipf = Zipf.make ~n:(Array.length title_prefixes) ~z:1.1 in
  (* Movie popularity: a movie's chance of appearing in a satellite table
     follows Zipf(1.0), like real IMDB link tables. *)
  let movie_zipf = Zipf.make ~n:n_title ~z:1.0 in
  let heavy_movie_zipf = Zipf.make ~n:n_title ~z:1.3 in
  let keyword_zipf = Zipf.make ~n:n_keyword ~z:1.05 in
  let info_type_zipf = Zipf.make ~n:113 ~z:1.2 in
  let role_zipf = Zipf.make ~n:11 ~z:0.8 in
  let company_type_of prng =
    (* 1 and 2 dominate, as in IMDB where most rows are production or
       distribution companies. *)
    let r = Prng.float prng in
    if r < 0.55 then 1 else if r < 0.95 then 2 else if r < 0.98 then 3 else 4
  in
  let title_prng = Prng.split prng in
  let title =
    Table.create title_schema
      (rows n_title (fun i ->
           [|
             Value.Int (i + 1);
             Value.Str (random_title title_prng prefix_zipf);
             Value.Int (1 + Prng.int title_prng 7);
             Value.Int (1880 + Prng.int title_prng 140);
           |]))
  in
  let aka_prng = Prng.split prng in
  (* aka_title multiplicities are nearly flat in real IMDB (~1.3 aliases
     per aliased movie), which is what makes the Table VII prefix sweep
     meaningful: the join mass of a prefix is spread over many movie ids
     rather than concentrated on a few blockbusters. *)
  let aka_title =
    Table.create aka_title_schema
      (rows n_aka (fun i ->
           [|
             Value.Int (i + 1);
             Value.Int (1 + Prng.int aka_prng n_title);
             Value.Str (random_title aka_prng prefix_zipf);
           |]))
  in
  let mc_prng = Prng.split prng in
  let movie_companies =
    Table.create movie_companies_schema
      (rows n_mc (fun i ->
           [|
             Value.Int (i + 1);
             Value.Int (Zipf.draw movie_zipf mc_prng);
             Value.Int (1 + Prng.int mc_prng (max 1 (n_title / 20)));
             Value.Int (company_type_of mc_prng);
           |]))
  in
  let mii_prng = Prng.split prng in
  let movie_info_idx =
    Table.create movie_info_idx_schema
      (rows n_mii (fun i ->
           [|
             Value.Int (i + 1);
             Value.Int (Zipf.draw movie_zipf mii_prng);
             Value.Int (Zipf.draw info_type_zipf mii_prng);
             Value.Str (Printf.sprintf "info-%d" (Prng.int mii_prng 1000));
           |]))
  in
  let keyword_prng = Prng.split prng in
  let keyword =
    Table.create keyword_schema
      (rows n_keyword (fun i ->
           [|
             Value.Int (i + 1);
             Value.Str
               (Printf.sprintf "%s-keyword-%d"
                  title_prefixes.(Zipf.draw prefix_zipf keyword_prng - 1)
                  i);
           |]))
  in
  let mk_prng = Prng.split prng in
  let movie_keyword =
    Table.create movie_keyword_schema
      (rows n_mk (fun i ->
           [|
             Value.Int (i + 1);
             Value.Int (Zipf.draw movie_zipf mk_prng);
             Value.Int (Zipf.draw keyword_zipf mk_prng);
           |]))
  in
  let cast_prng = Prng.split prng in
  let cast_info =
    Table.create cast_info_schema
      (rows n_cast (fun i ->
           [|
             Value.Int (i + 1);
             Value.Int (1 + Prng.int cast_prng (max 1 (n_title * 2)));
             Value.Int (Zipf.draw heavy_movie_zipf cast_prng);
             Value.Int (Zipf.draw role_zipf cast_prng);
           |]))
  in
  let company_type =
    Table.create company_type_schema
      (rows 4 (fun i -> [| Value.Int (i + 1); Value.Str company_kinds.(i) |]))
  in
  let info_type =
    Table.create info_type_schema
      (rows 113 (fun i ->
           [| Value.Int (i + 1); Value.Str (Printf.sprintf "info-type-%d" (i + 1)) |]))
  in
  {
    title;
    aka_title;
    movie_companies;
    movie_info_idx;
    movie_keyword;
    keyword;
    cast_info;
    company_type;
    info_type;
  }
