(** Skewed TPC-H-shaped data.

    The paper's Tables VIII and IX use the Microsoft skewed TPC-H generator
    (closed source) with scale factor [s] in {0.1, 1} and Zipf skew
    [z] in {2, 4}. This module generates the four tables those experiments
    touch — customer, supplier, orders, lineitem — with the same shape:
    key columns drawn Zipf(z) over their domains. Row counts are the TPC-H
    scale downsized by 10 (so [s = 1] gives 15 000 customers instead of
    150 000) to keep the full benchmark suite running in minutes; this
    changes absolute join sizes but not the skew behaviour the experiments
    measure (see DESIGN.md substitutions).

    Schemas:
    - customer(c_custkey PK, c_nationkey, c_acctbal, c_mktsegment)
    - supplier(s_suppkey PK, s_nationkey, s_acctbal)
    - orders(o_orderkey PK, o_custkey FK, o_totalprice)
    - lineitem(l_orderkey FK, l_partkey FK, l_linenumber, l_quantity,
      l_extendedprice)
    - part(p_partkey PK, p_brand, p_retailprice) — added beyond the paper
      for the star-join bench: lineitem as fact, orders and part as
      dimensions
    - nation(n_nationkey PK, n_name, n_regionkey) — added for the 4-table
      chain bench nation |><| customer |><| orders |><| lineitem. *)

open Repro_relation

type t = {
  nation : Table.t;
  customer : Table.t;
  supplier : Table.t;
  orders : Table.t;
  lineitem : Table.t;
  part : Table.t;
  scale : float;
  z : float;
}

val generate : scale:float -> z:float -> seed:int -> t
(** [scale > 0]; [z >= 0] ([z = 0] is unskewed). Deterministic per seed. *)

val nations : int
(** Number of nation keys (25, as in TPC-H). [c_nationkey] and
    [s_nationkey] are Zipf(z) over this domain — the small-jvd
    many-to-many join of Table VIII. *)

val dataset_name : t -> string
(** e.g. ["s1-z4"], matching the paper's dataset labels. *)
