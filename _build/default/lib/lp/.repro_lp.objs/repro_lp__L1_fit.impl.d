lib/lp/l1_fit.ml: Array Fun List Simplex
