lib/lp/simplex.ml: Array Float
