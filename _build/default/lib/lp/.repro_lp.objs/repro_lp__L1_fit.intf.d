lib/lp/l1_fit.mli: Stdlib
