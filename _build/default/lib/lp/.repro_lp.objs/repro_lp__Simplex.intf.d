lib/lp/simplex.mli:
