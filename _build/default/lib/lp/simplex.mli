(** Dense two-phase primal simplex.

    Solves [minimize c.x subject to A x (<=|=|>=) b, x >= 0]. Sized for the
    discrete-learning LP of this repository: a handful of rows and up to a
    few thousand columns, for which a dense tableau is both simple and fast.
    Pivoting uses Dantzig's rule with an automatic switch to Bland's rule
    when progress stalls, which guarantees termination. *)

type relation = Le | Ge | Eq

type constraint_row = {
  coefficients : float array;  (** one per structural variable *)
  relation : relation;
  rhs : float;
}

type problem = {
  objective : float array;  (** minimised; one per structural variable *)
  constraints : constraint_row list;
}

type result =
  | Optimal of { objective_value : float; solution : float array }
      (** [solution] holds the structural variables only. *)
  | Infeasible
  | Unbounded

val solve : ?epsilon:float -> problem -> result
(** [solve p] runs two-phase simplex. [epsilon] (default [1e-9]) is the
    feasibility/optimality tolerance. Raises [Invalid_argument] when
    constraint rows disagree with the objective on the variable count. *)
