type level_choice = L_one | L_theta | L_sqrt_theta | L_diff

type estimation_method = Scaling | Discrete_learning

type t = {
  name : string;
  p_choice : level_choice;
  q_choice : level_choice;
  u_choice : level_choice option;
  sentry : bool;
  method_ : estimation_method;
  optimize_variance : bool;
      (** CS2L only: pick the constant [q] by scanning budget splits and
          minimising the closed-form estimation variance (Section II-B /
          DESIGN.md substitution notes). *)
  heavy_hitter_k : int option;
      (** [Some k]: resolve the diff first-level rates from exact
          frequencies for only the [k] heaviest join values; every other
          value gets the tail-average rate — modelling the heavy-hitter
          approximation of the original CS2L implementation [4], whose
          misallocations on tail values drive the failures the paper
          reports. [None] (all CSDL variants and the default CS2L) uses
          exact frequencies throughout. *)
}

let level_to_string = function
  | L_one -> "1"
  | L_theta -> "t"
  | L_sqrt_theta -> "rt"
  | L_diff -> "diff"

let csdl p_choice q_choice =
  {
    name =
      Printf.sprintf "CSDL(%s,%s)" (level_to_string p_choice)
        (level_to_string q_choice);
    p_choice;
    q_choice;
    u_choice = None;
    sentry = true;
    method_ = Discrete_learning;
    optimize_variance = false;
    heavy_hitter_k = None;
  }

let csdl_variants =
  [
    csdl L_one L_theta;
    csdl L_theta L_one;
    csdl L_sqrt_theta L_sqrt_theta;
    csdl L_diff L_one;
    csdl L_diff L_theta;
    csdl L_diff L_sqrt_theta;
    csdl L_one L_diff;
    csdl L_theta L_diff;
    csdl L_sqrt_theta L_diff;
    csdl L_diff L_diff;
  ]

let cs2 =
  {
    name = "CS2";
    p_choice = L_one;
    q_choice = L_theta;
    u_choice = Some L_one;
    sentry = false;
    method_ = Scaling;
    optimize_variance = false;
    heavy_hitter_k = None;
  }

let cso =
  {
    name = "CSO";
    p_choice = L_theta;
    q_choice = L_one;
    u_choice = None;
    sentry = false;
    method_ = Scaling;
    optimize_variance = false;
    heavy_hitter_k = None;
  }

let cs2l =
  {
    name = "CS2L";
    p_choice = L_diff;
    q_choice = L_theta;
    u_choice = None;
    sentry = true;
    method_ = Scaling;
    optimize_variance = true;
    heavy_hitter_k = None;
  }

let cs2l_approx ?(k = 100) () = { cs2l with name = "CS2L-hh"; heavy_hitter_k = Some k }

let to_string t = t.name
