open Repro_relation

type sample_stats = {
  distinct_values : int;
  sentry_tuples : int;
  sampled_tuples : int;
  min_q : float;
  max_q : float;
}

type t = {
  spec : string;
  theta : float;
  budget : float;
  expected_size : float;
  actual_size : int;
  base_q : float;
  side_a : sample_stats;
  side_b : sample_stats;
  shared_coverage : float;
}

let stats_of_sample (sample : Sample.t) =
  let sentry_tuples = ref 0 and sampled_tuples = ref 0 in
  let min_q = ref Float.nan and max_q = ref Float.nan in
  Value.Tbl.iter
    (fun _ (entry : Sample.entry) ->
      (match entry.Sample.sentry_row with
      | Some _ -> incr sentry_tuples
      | None -> ());
      sampled_tuples := !sampled_tuples + Array.length entry.Sample.rows;
      if entry.Sample.q_v > 0.0 then begin
        if Float.is_nan !min_q || entry.Sample.q_v < !min_q then
          min_q := entry.Sample.q_v;
        if Float.is_nan !max_q || entry.Sample.q_v > !max_q then
          max_q := entry.Sample.q_v
      end)
    sample.Sample.entries;
  {
    distinct_values = Value.Tbl.length sample.Sample.entries;
    sentry_tuples = !sentry_tuples;
    sampled_tuples = !sampled_tuples;
    min_q = !min_q;
    max_q = !max_q;
  }

let of_synopsis (profile : Profile.t) (synopsis : Synopsis.t) =
  let resolved = synopsis.Synopsis.resolved in
  let covered =
    Array.fold_left
      (fun acc v ->
        if Value.Tbl.mem synopsis.Synopsis.sample_a.Sample.entries v then
          acc + 1
        else acc)
      0 profile.Profile.shared_values
  in
  let shared = Array.length profile.Profile.shared_values in
  {
    spec = Spec.to_string resolved.Budget.spec;
    theta = resolved.Budget.theta;
    budget = resolved.Budget.budget;
    expected_size = resolved.Budget.expected_size;
    actual_size = Synopsis.size_tuples synopsis;
    base_q = resolved.Budget.base_q;
    side_a = stats_of_sample synopsis.Synopsis.sample_a;
    side_b = stats_of_sample synopsis.Synopsis.sample_b;
    shared_coverage =
      (if shared = 0 then 0.0 else float_of_int covered /. float_of_int shared);
  }

let pp_rate fmt q =
  if Float.is_nan q then Format.pp_print_string fmt "-"
  else Format.fprintf fmt "%.5f" q

let pp_side fmt (label, s) =
  Format.fprintf fmt
    "  %s: %d values, %d sentries + %d sampled tuples, q in [%a, %a]@," label
    s.distinct_values s.sentry_tuples s.sampled_tuples pp_rate s.min_q pp_rate
    s.max_q

let pp fmt t =
  Format.fprintf fmt "@[<v>%s at theta=%g:@," t.spec t.theta;
  Format.fprintf fmt
    "  budget %.0f tuples, expected %.0f, drawn %d, base q %.5f@," t.budget
    t.expected_size t.actual_size t.base_q;
  pp_side fmt ("S_A", t.side_a);
  pp_side fmt ("S_B", t.side_b);
  Format.fprintf fmt "  shared-value coverage: %.1f%%@]"
    (100.0 *. t.shared_coverage)
