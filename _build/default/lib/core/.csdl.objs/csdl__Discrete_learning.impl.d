lib/core/discrete_learning.ml: Array Float Hashtbl List Repro_lp Repro_stats Repro_util
