lib/core/diagnostics.ml: Array Budget Float Format Profile Repro_relation Sample Spec Synopsis Value
