lib/core/profile.ml: Array Float Repro_relation Table Value
