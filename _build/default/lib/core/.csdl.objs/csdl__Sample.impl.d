lib/core/sample.ml: Array Budget Fun Profile Repro_relation Repro_util Spec Table Value
