lib/core/store.mli: Discrete_learning Estimator Predicate Repro_relation Synopsis Table
