lib/core/star.mli: Discrete_learning Predicate Repro_relation Repro_util Spec Table
