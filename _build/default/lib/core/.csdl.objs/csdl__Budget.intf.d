lib/core/budget.mli: Profile Repro_relation Spec
