lib/core/estimate.ml: Array Budget Discrete_learning Predicate Repro_relation Sample Spec Synopsis Table Value
