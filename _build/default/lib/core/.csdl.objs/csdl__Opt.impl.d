lib/core/opt.ml: Array Estimator Lazy Profile Spec
