lib/core/chain_n.ml: Array Budget Discrete_learning Join List Opt Option Predicate Profile Repro_relation Sample Spec Table Value
