lib/core/synopsis.ml: Budget Profile Repro_relation Sample
