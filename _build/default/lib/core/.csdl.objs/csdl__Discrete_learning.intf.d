lib/core/discrete_learning.mli: Repro_util
