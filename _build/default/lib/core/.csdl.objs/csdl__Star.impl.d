lib/core/star.ml: Array Budget Discrete_learning Join List Opt Predicate Profile Repro_relation Sample Spec Table Value
