lib/core/budget.ml: Array Float Fun List Profile Repro_relation Spec Value
