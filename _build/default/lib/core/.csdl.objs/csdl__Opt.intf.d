lib/core/opt.mli: Estimator Profile Spec
