lib/core/chain.ml: Array Budget Discrete_learning Join Opt Predicate Profile Repro_relation Repro_util Sample Spec Table Value
