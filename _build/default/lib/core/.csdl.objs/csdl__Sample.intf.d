lib/core/sample.mli: Budget Profile Repro_relation Repro_util Table Value
