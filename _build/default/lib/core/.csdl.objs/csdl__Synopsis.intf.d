lib/core/synopsis.mli: Budget Profile Repro_util Sample
