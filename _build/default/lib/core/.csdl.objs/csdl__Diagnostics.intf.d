lib/core/diagnostics.mli: Format Profile Synopsis
