lib/core/estimator.ml: Budget Estimate Predicate Profile Repro_relation Spec Synopsis
