lib/core/chain_n.mli: Discrete_learning Predicate Repro_relation Repro_util Spec Table
