lib/core/estimate.mli: Discrete_learning Predicate Repro_relation Synopsis
