lib/core/spec.mli:
