lib/core/profile.mli: Repro_relation Table Value
