lib/core/spec.ml: Printf
