lib/core/chain.mli: Discrete_learning Predicate Repro_relation Repro_util Spec Table
