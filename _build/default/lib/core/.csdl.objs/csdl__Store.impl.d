lib/core/store.ml: Budget Estimate Estimator Fun Hashtbl List Marshal Predicate Printf Repro_relation Sample Synopsis Value
