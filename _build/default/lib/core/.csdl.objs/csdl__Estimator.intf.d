lib/core/estimator.mli: Budget Discrete_learning Predicate Profile Repro_relation Repro_util Spec Synopsis
