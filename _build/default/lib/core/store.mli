(** A synopsis store: the workload-level object a system would actually
    deploy. Correlated sampling builds one synopsis per frequently-queried
    join graph (Section III's storage discussion); this module keeps them
    under string keys, answers estimation queries against them, and
    persists them to disk so the offline phase survives restarts.

    Persistence stores sampled row indices plus the originating table
    {e names} — not the tables — so a saved store is only meaningful
    against the same (deterministically regenerable) base data; [load]
    takes a resolver from table name to {!Repro_relation.Table.t}. The file
    format is versioned Marshal, valid for the OCaml version that wrote
    it. *)

open Repro_relation

type t

val create : unit -> t

val add :
  t ->
  key:string ->
  table_a:string ->
  table_b:string ->
  Estimator.t ->
  Synopsis.t ->
  unit
(** Register a drawn synopsis under [key]. [table_a]/[table_b] name the
    estimator's original A and B tables (used to rehydrate after [load]).
    Replaces any previous synopsis under the same key. *)

val keys : t -> string list
val mem : t -> string -> bool
val remove : t -> string -> unit

val estimate :
  ?dl_config:Discrete_learning.config ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  t ->
  key:string ->
  float
(** Online estimation against a stored synopsis; predicates are in the
    original (A, B) orientation, as with {!Estimator.estimate}. Raises
    [Not_found] for an unknown key. *)

val total_tuples : t -> int
(** Stored sample tuples across all synopses — the store's footprint. *)

val save : t -> string -> unit
(** Write the store to a file. *)

val load : resolve_table:(string -> Table.t) -> string -> t
(** Read a store back; [resolve_table] maps each recorded table name to
    the (identical) base table. Raises [Failure] on a bad or
    version-mismatched file. *)
