(** Offline profile of a two-table equijoin [A |><| B]: everything the
    sampling-phase needs to know about the data — per-value frequencies,
    row groups, and the join value density. Built once per join graph and
    shared by every sampling run and variant. *)

open Repro_relation

type side = {
  table : Table.t;
  column : string;
  groups : int array Value.Tbl.t;  (** join value -> row indices *)
  frequencies : int Value.Tbl.t;  (** join value -> occurrence count *)
  cardinality : int;  (** number of rows, including null-join-value rows *)
  distinct : int;  (** |V| — distinct non-null join values *)
}

type t = {
  a : side;
  b : side;
  shared_values : Value.t array;  (** V_{A,B} = V_A intersect V_B *)
  jvd : float;  (** min(|V_A|/|A|, |V_B|/|B|) *)
  total_rows : int;  (** |A| + |B| — the budget base *)
}

val of_tables : Table.t -> string -> Table.t -> string -> t
(** [of_tables a col_a b col_b] scans both tables once. *)

val frequency : side -> Value.t -> int
(** Occurrence count of a value on one side (0 when absent). *)

val true_join_size : t -> int
(** [sum over shared v of a_v * b_v] — exact, for experiment ground truth. *)

val swap : t -> t
(** The same profile with the roles of A and B exchanged — used when the
    sampler decides to sample the other table first (e.g. the FK side of a
    PK-FK join). *)

val is_key_side : side -> bool
(** Whether the join column is unique (a candidate key) on that side —
    detects the PK side of PK-FK joins. *)
