(** Synopsis introspection: where a budget actually went and what the
    discrete learner saw — the first thing to look at when an estimate is
    off (is the synopsis sentry-starved? did the first level cover the
    joinable values? how big was the DL input?). Used by the
    skew-explorer example and the CLI. *)

type sample_stats = {
  distinct_values : int;  (** first-level coverage *)
  sentry_tuples : int;
  sampled_tuples : int;  (** non-sentry *)
  min_q : float;  (** smallest positive second-level rate; [nan] if none *)
  max_q : float;
}

type t = {
  spec : string;
  theta : float;
  budget : float;
  expected_size : float;
  actual_size : int;
  base_q : float;
  side_a : sample_stats;
  side_b : sample_stats;
  shared_coverage : float;
      (** fraction of the profile's shared join values present in S_A —
          the quantity first-level sampling gambles with *)
}

val of_synopsis : Profile.t -> Synopsis.t -> t
(** The profile must be the one the synopsis was drawn from (in the
    sampler's orientation — use {!Estimator.profile}). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)
