open Repro_relation

type sample_first = [ `A | `B | `Fk_side ]

type t = {
  spec : Spec.t;
  profile : Profile.t;  (* in sampler orientation *)
  resolved : Budget.t;
  swapped : bool;
}

let prepare ?(sample_first = `Fk_side) spec ~theta (profile : Profile.t) =
  let swapped =
    match sample_first with
    | `A -> false
    | `B -> true
    | `Fk_side ->
        (* Sample the FK side (the non-key side) first. When neither or
           both sides are keys, keep the caller's orientation. *)
        Profile.is_key_side profile.Profile.a
        && not (Profile.is_key_side profile.Profile.b)
  in
  let profile = if swapped then Profile.swap profile else profile in
  let resolved = Budget.resolve spec ~theta profile in
  { spec; profile; resolved; swapped }

let draw t prng = Synopsis.draw prng ~profile:t.profile ~resolved:t.resolved

let estimate ?dl_config ?virtual_sample ?(pred_a = Predicate.True)
    ?(pred_b = Predicate.True) t synopsis =
  let pred_a, pred_b = if t.swapped then (pred_b, pred_a) else (pred_a, pred_b) in
  Estimate.run ?dl_config ?virtual_sample ~pred_a ~pred_b synopsis

let estimate_once ?dl_config ?virtual_sample ?pred_a ?pred_b t prng =
  let synopsis = draw t prng in
  estimate ?dl_config ?virtual_sample ?pred_a ?pred_b t synopsis

let swapped t = t.swapped
let spec t = t.spec
let resolved t = t.resolved
let profile t = t.profile
