(** The five-parameter design space of correlated sampling (Section II-A):
    first-level value-sampling probability [p_v], second-level tuple
    probabilities [q_v] (sampled side) and [u_v] (semijoined side), the
    sentry flag, and the estimation method. A [Spec.t] names a point in
    that space; {!Budget} later resolves it into concrete per-value rates
    for a given join profile and space budget. *)

type level_choice =
  | L_one  (** probability 1 for every value *)
  | L_theta  (** the space-budget ratio theta *)
  | L_sqrt_theta  (** sqrt theta *)
  | L_diff  (** proportional to sqrt(a_v * b_v), capped at 1 *)

type estimation_method =
  | Scaling  (** unbiased scale-up, Eqs. 1–3 *)
  | Discrete_learning  (** the biased DL estimator of Section IV *)

type t = {
  name : string;
  p_choice : level_choice;
  q_choice : level_choice;
  u_choice : level_choice option;
      (** [None] means [u_v = q_v] (every approach except CS2). *)
  sentry : bool;
  method_ : estimation_method;
  optimize_variance : bool;
      (** CS2L only: pick the constant [q] by scanning budget splits and
          minimising the closed-form estimation variance (Section II-B /
          DESIGN.md substitution notes). *)
  heavy_hitter_k : int option;
      (** [Some k]: resolve diff first-level rates from exact frequencies
          for only the [k] heaviest join values, tail-average for the rest
          — the original CS2L implementation's approximation [4]. [None]
          everywhere else. *)
}

val csdl : level_choice -> level_choice -> t
(** [csdl p q] is the CSDL variant CSDL(p,q) of Table III: sentry on,
    discrete-learning estimation, [u_v = q_v]. *)

val csdl_variants : t list
(** All 10 variants of Table III, in the paper's column order:
    (1,theta) (theta,1) (rt,rt) (diff,1) (diff,theta) (diff,rt)
    (1,diff) (theta,diff) (rt,diff) (diff,diff). *)

val cs2 : t
(** Yu et al.: p=1, q=theta, u=1, no sentry, scaling. *)

val cso : t
(** Vengerov et al.: p=theta, q=u=1, no sentry, scaling. *)

val cs2l : t
(** Chen & Yi: p_v ∝ sqrt(a_v b_v), constant q=u, sentry, scaling —
    with the variance optimisation evaluated on exact frequencies (a
    *stronger* CS2L than the original; see DESIGN.md). *)

val cs2l_approx : ?k:int -> unit -> t
(** CS2L with the original implementation's heavy-hitter approximation:
    only the [k] (default 100) heaviest values get exact-frequency rates;
    the tail shares an average rate. Reproduces the failure modes the
    paper reports for CS2L. *)

val level_to_string : level_choice -> string
val to_string : t -> string
