(** Chain joins of arbitrary length (Section V: "extending to chain join
    queries with more than three tables is straightforward"):

    [T_1 (pk = fk) |><| T_2 (pk = fk) |><| ... |><| T_k]

    where every join is PK-FK with the FK table on the right. As in
    {!Chain} (the fixed 3-table version kept for the paper's Table IX),
    the rightmost table [T_k] is sampled two-level with sentries and every
    other table contributes at most one witness tuple per sampled path.
    Estimation generalises Eq. 8: for each sampled join value [v] of
    [T_k], the [(x_v N'' + I''_k(v))] factor is multiplied by the number
    of complete witness paths [T_{k-1} -> ... -> T_1] passing their
    predicates, and scaled by [1/p_v]. *)

open Repro_relation

type link_table = {
  table : Table.t;
  pk : string;  (** key joined from the right neighbour's [fk] *)
  fk : string option;  (** FK to the left neighbour; [None] for T_1 *)
}

type tables = {
  links : link_table list;  (** T_1 ... T_{k-1}, left to right *)
  last : Table.t;  (** T_k, the sampled FK table *)
  last_fk : string;  (** T_k's FK referencing the last link's [pk] *)
}

val validate : tables -> unit
(** Raises [Invalid_argument] when the shape is wrong: no link tables, a
    non-head link missing its [fk], or named columns absent. *)

type t
type synopsis

val length : tables -> int
(** Number of tables in the chain (k >= 2). *)

val jvd : tables -> float
(** Join value density of the rightmost join, the dispatch input. *)

val prepare : Spec.t -> theta:float -> tables -> t
val prepare_opt : ?threshold:float -> theta:float -> tables -> t

val draw : t -> Repro_util.Prng.t -> synopsis

val estimate :
  ?dl_config:Discrete_learning.config ->
  ?predicates:Predicate.t list ->
  t ->
  synopsis ->
  float
(** [predicates] lines up with [T_1 ... T_k]; missing entries default to
    [True]. *)

val true_size : ?predicates:Predicate.t list -> tables -> int
val spec : t -> Spec.t
