(** CSDL-Opt — the paper's headline hybrid (Section VI-A, Table II): use
    CSDL(1,diff) when the join value density is low (below 0.001) and
    CSDL(theta,diff) when it is high. The dispatch happens at preparation
    time from the profile's measured jvd.

    Beyond the paper, a [`Budget_aware] dispatch rule is provided: the jvd
    threshold is a proxy for "can we afford a sentry for every join value?",
    and on small tables the fixed 0.001 cut-off answers that question
    wrongly (see examples/skew_explorer.ml). [`Budget_aware] asks it
    directly — pick CSDL(1,diff) exactly when the p = 1 sentry floor
    (two tuples per shared join value) fits in half the space budget. The
    ablation bench compares the two rules. *)

type dispatch =
  [ `Jvd_threshold  (** the paper's rule; default *)
  | `Budget_aware  (** sentry-floor rule, this repository's extension *) ]

val default_threshold : float
(** 0.001, the paper's cut-off. *)

val spec_for : ?threshold:float -> jvd:float -> unit -> Spec.t
(** The winning variant for a given join value density (paper rule). *)

val spec_for_profile :
  ?dispatch:dispatch -> ?threshold:float -> theta:float -> Profile.t -> Spec.t
(** Variant selection with access to the full profile (needed by
    [`Budget_aware]). *)

val prepare :
  ?dispatch:dispatch ->
  ?threshold:float ->
  ?sample_first:Estimator.sample_first ->
  theta:float ->
  Profile.t ->
  Estimator.t
(** Prepare a CSDL-Opt estimator: pick the variant per [dispatch], then
    defer to {!Estimator.prepare}. *)

val name : string
(** ["CSDL-Opt"] *)
