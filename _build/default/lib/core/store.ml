open Repro_relation

type entry = {
  table_a : string;
  table_b : string;
  swapped : bool;
  synopsis : Synopsis.t;
}

type t = (string, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

let add store ~key ~table_a ~table_b estimator synopsis =
  Hashtbl.replace store key
    { table_a; table_b; swapped = Estimator.swapped estimator; synopsis }

let keys store = Hashtbl.fold (fun k _ acc -> k :: acc) store [] |> List.sort compare
let mem store key = Hashtbl.mem store key
let remove store key = Hashtbl.remove store key

let estimate ?dl_config ?(pred_a = Predicate.True) ?(pred_b = Predicate.True)
    store ~key =
  let entry = Hashtbl.find store key in
  let pred_a, pred_b =
    if entry.swapped then (pred_b, pred_a) else (pred_a, pred_b)
  in
  Estimate.run ?dl_config ~pred_a ~pred_b entry.synopsis

let total_tuples store =
  Hashtbl.fold
    (fun _ entry acc -> acc + Synopsis.size_tuples entry.synopsis)
    store 0

(* ---------------- persistence ---------------- *)

let magic = "repro-csdl-store"
let version = 1

type stored_entry = {
  s_value : Value.t;
  s_sentry_row : int option;
  s_rows : int array;
  s_p_v : float;
  s_q_v : float;
}

type stored_sample = {
  s_table : string;
  s_column : string;
  s_entries : stored_entry list;
  s_tuple_count : int;
}

type stored_synopsis = {
  s_resolved : Budget.t;  (* pure data: spec + rates *)
  s_a : stored_sample;
  s_b : stored_sample;
  s_n_prime : float;
  s_swapped : bool;
  s_table_a : string;
  s_table_b : string;
}

type file = {
  f_magic : string;
  f_version : int;
  f_entries : (string * stored_synopsis) list;
}

let freeze_sample ~table_name (sample : Sample.t) =
  {
    s_table = table_name;
    s_column = sample.Sample.column;
    s_entries =
      Value.Tbl.fold
        (fun v (e : Sample.entry) acc ->
          {
            s_value = v;
            s_sentry_row = e.Sample.sentry_row;
            s_rows = e.Sample.rows;
            s_p_v = e.Sample.p_v;
            s_q_v = e.Sample.q_v;
          }
          :: acc)
        sample.Sample.entries [];
    s_tuple_count = sample.Sample.tuple_count;
  }

let thaw_sample ~resolve_table stored : Sample.t =
  let entries = Value.Tbl.create (List.length stored.s_entries) in
  List.iter
    (fun e ->
      Value.Tbl.add entries e.s_value
        {
          Sample.sentry_row = e.s_sentry_row;
          rows = e.s_rows;
          p_v = e.s_p_v;
          q_v = e.s_q_v;
        })
    stored.s_entries;
  {
    Sample.table = resolve_table stored.s_table;
    column = stored.s_column;
    entries;
    tuple_count = stored.s_tuple_count;
  }

let save store path =
  let entries =
    Hashtbl.fold
      (fun key entry acc ->
        let { Synopsis.resolved; sample_a; sample_b; n_prime } =
          entry.synopsis
        in
        (* in the sampler's orientation the "A" sample sits on table_a
           unless the estimator swapped *)
        let first_table, second_table =
          if entry.swapped then (entry.table_b, entry.table_a)
          else (entry.table_a, entry.table_b)
        in
        ( key,
          {
            s_resolved = resolved;
            s_a = freeze_sample ~table_name:first_table sample_a;
            s_b = freeze_sample ~table_name:second_table sample_b;
            s_n_prime = n_prime;
            s_swapped = entry.swapped;
            s_table_a = entry.table_a;
            s_table_b = entry.table_b;
          } )
        :: acc)
      store []
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Marshal.to_channel oc
        { f_magic = magic; f_version = version; f_entries = entries }
        [])

let load ~resolve_table path =
  let ic = open_in_bin path in
  let file : file =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match (Marshal.from_channel ic : file) with
        | file -> file
        | exception _ -> failwith (path ^ ": not a synopsis store file"))
  in
  if file.f_magic <> magic then failwith (path ^ ": not a synopsis store file");
  if file.f_version <> version then
    failwith
      (Printf.sprintf "%s: store version %d, this library reads %d" path
         file.f_version version);
  let store = create () in
  List.iter
    (fun (key, s) ->
      let synopsis =
        {
          Synopsis.resolved = s.s_resolved;
          sample_a = thaw_sample ~resolve_table s.s_a;
          sample_b = thaw_sample ~resolve_table s.s_b;
          n_prime = s.s_n_prime;
        }
      in
      Hashtbl.replace store key
        {
          table_a = s.s_table_a;
          table_b = s.s_table_b;
          swapped = s.s_swapped;
          synopsis;
        })
    file.f_entries;
  store
