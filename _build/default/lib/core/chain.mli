(** Chain join estimation (Section V): 3-table chains
    [A (A.pk = B.fk) |><| B (B.pk = C.fk) |><| C] where every join is PK-FK
    with the FK table on the right.

    Following the paper, the rightmost table C is the one sampled (two-level,
    with sentries); B and A contribute only their joinable tuples — at most
    one per join value when the key columns really are keys. Estimation is
    Eq. 8: [sum over (u,v) of (1/p_v) I''_A(u) I''_B(u,v) (x_v N''_0 + I''_C(v))],
    with [x_v] from discrete learning over the filtered sample of C, or the
    scaling analogue [S''_C(v)/q_v] in place of [x_v N''_0] for
    scaling-method specs (the CS2L baseline). *)

open Repro_relation

type tables = {
  a : Table.t;
  a_pk : string;
  b : Table.t;
  b_pk : string;
  b_fk : string;  (** B's foreign key referencing [a_pk] *)
  c : Table.t;
  c_fk : string;  (** C's foreign key referencing [b_pk] *)
}

type t
type synopsis

val jvd : tables -> float
(** The chain's join value density [min(|V_B|/|B|, |V_C|/|C|)] over the
    B-C join (Section V). *)

val prepare : Spec.t -> theta:float -> tables -> t
(** Resolve sampling rates for table C under budget
    [theta * (|A| + |B| + |C|)]. *)

val prepare_opt : ?threshold:float -> theta:float -> tables -> t
(** CSDL-Opt for chains: dispatch the variant on {!jvd}. *)

val draw : t -> Repro_util.Prng.t -> synopsis

val estimate :
  ?dl_config:Discrete_learning.config ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  ?pred_c:Predicate.t ->
  t ->
  synopsis ->
  float

val true_size :
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  ?pred_c:Predicate.t ->
  tables ->
  int
(** Exact chain join size (ground truth). *)

val synopsis_tuples : synopsis -> int
(** Stored tuples across all three tables. *)

val spec : t -> Spec.t
