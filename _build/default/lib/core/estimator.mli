(** Top-level API: prepare a correlated-sampling estimator for a join
    graph, draw offline synopses, and answer online estimation queries.

    Orientation: the caller describes the join as [(A, col_a)] joined with
    [(B, col_b)] and always passes predicates in that orientation. The
    estimator may internally sample the other table first — mandatory for
    PK-FK joins, where the FK table must be sampled first and the discrete
    learning applied to it (Section IV-F) — and maps predicates
    accordingly. *)

open Repro_relation

type sample_first =
  [ `A  (** always sample the A side first *)
  | `B  (** always sample the B side first *)
  | `Fk_side
    (** sample the foreign-key side first when the join is PK-FK (exactly
        one side's join column is unique); otherwise sample A first. This
        is the paper's rule and the default. *) ]

type t

val prepare :
  ?sample_first:sample_first -> Spec.t -> theta:float -> Profile.t -> t
(** Resolve the spec's sampling rates for this join under budget
    [theta * (|A| + |B|)]. This is deterministic; all randomness is in
    {!draw}. *)

val draw : t -> Repro_util.Prng.t -> Synopsis.t
(** One offline sampling run. *)

val estimate :
  ?dl_config:Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  t ->
  Synopsis.t ->
  float
(** Online phase: estimated size of [sigma_a(A) |><| sigma_b(B)]. *)

val estimate_once :
  ?dl_config:Discrete_learning.config ->
  ?virtual_sample:bool ->
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  t ->
  Repro_util.Prng.t ->
  float
(** Convenience: {!draw} then {!estimate} in one call. *)

val swapped : t -> bool
(** Whether the sampler operates on the (B, A) orientation. *)

val spec : t -> Spec.t
val resolved : t -> Budget.t
val profile : t -> Profile.t
(** The profile in the {e sampler's} orientation. *)
