(** Resolution of a {!Spec.t} into concrete per-value sampling rates under a
    space budget.

    The space budget for a join graph is [theta * (|A| + |B|)] sample tuples
    (Section II-B; we count tuples rather than bytes, see DESIGN.md). Given
    the data profile, this module derives the constant [q] (same-q variants)
    or the proportionality constant in [q_v = min(1, c * sqrt(a_v b_v))]
    (diff variants) so that the *charged* sample size meets the budget.
    Charged = the first-level side's full expected cost (its sentries
    included, which is why the paper writes "q_v is not exactly theta due
    to the sentry technique") plus the semijoin side's non-sentry tuples;
    the semijoin-side sentries ride on top of the nominal budget. This
    split accounting is the only one consistent with the paper's reported
    numbers in both budget regimes (see the module comment in budget.ml
    and EXPERIMENTS.md). When even the first-level sentries exceed the
    budget — the p = 1 variants on large-jvd data — [q] clamps to 0 and
    the synopsis degrades to a sentry floor, reproducing the paper's
    Table V collapse of those variants. [expected_size] reports the full
    cost including all sentries. Closed form when the expected size is
    linear in the unknown, monotone bisection when the [min(1, .)] cap
    binds.

    Values [v] with [a_v * b_v = 0] cannot contribute to any equijoin
    result; the diff variants assign them [p_v = 0] (they are skipped
    entirely), which keeps the discrete-learning input distribution
    consistent with the stored [N'] (see DESIGN.md substitutions).

    For CS2L ([optimize_variance]), the constant [q] is chosen by scanning
    a grid of candidate rates, solving the first-level constant for each,
    and minimising the exact closed-form variance of the unbiased estimator
    evaluated on the known frequencies. *)

type rate =
  | Const of float  (** the same probability for every value *)
  | Scaled of float  (** [min(1, c * sqrt(a_v b_v))] with this [c] *)
  | Blended of { c : float; heavy : float Repro_relation.Value.Tbl.t; light : float }
      (** the heavy-hitter approximation ([Spec.cs2l_approx]): heavy values
          carry their exact [sqrt(a_v b_v)] weight, the tail shares the
          average [light] weight *)

type t = {
  spec : Spec.t;
  theta : float;
  p_rate : rate;
  q_rate : rate;
  u_rate : rate;  (** equals [q_rate] unless the spec overrides [u]. *)
  base_q : float;
      (** the same-q rate under the identical first level and budget — the
          [q] of Eq. 6's virtual sample. For same-q variants this equals the
          resolved constant [q]. *)
  expected_size : float;  (** expected synopsis tuples under the resolution *)
  budget : float;  (** the target [theta * (|A| + |B|)] *)
}

val resolve : Spec.t -> theta:float -> Profile.t -> t
(** Requires [0 < theta <= 1]. *)

val p_of : t -> Profile.t -> Repro_relation.Value.t -> float
(** The resolved first-level probability for one join value. *)

val q_of : t -> Profile.t -> Repro_relation.Value.t -> float
val u_of : t -> Profile.t -> Repro_relation.Value.t -> float

val scaling_variance : Profile.t -> p:(Repro_relation.Value.t -> float) ->
  q:float -> u:float -> float
(** Closed-form variance of the sentry-based unbiased scaling estimator
    (used to tune CS2L and exposed for tests and ablation benches):
    [sum over shared v of (1/p_v)(a_v^2 + (a_v-1)(1-q)/q)(b_v^2 + (b_v-1)(1-u)/u)
    - (a_v b_v)^2]. *)
