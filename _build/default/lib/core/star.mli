(** Star join estimation: a fact table whose FK columns each reference the
    primary key of a dimension table,
    [F |><| D_1 |><| ... |><| D_k].

    The paper supports star joins via its technical report (unavailable);
    this module follows the published chain-join design (Section V): the
    fact table — the only FK table — is sampled two-level with sentries,
    anchored on the first dimension's FK column, and the dimensions
    contribute only their joinable tuples. Estimation extends Eq. 8 with a
    per-value survivor fraction for the non-anchor dimensions:

    [J = sum over anchor values v of (1/p_v) (x_v N'' + I''_F(v))
         * I''_{D1}(v) * rho''_v]

    where [rho''_v] is the fraction of sampled fact tuples with anchor
    value [v] that pass the fact predicate and whose non-anchor dimension
    partners all exist and pass their predicates. See DESIGN.md
    substitutions. *)

open Repro_relation

type dimension = { table : Table.t; pk : string; fk : string }
(** One dimension: its table, its key column, and the fact-table FK column
    referencing it. *)

type tables = { fact : Table.t; dimensions : dimension list }
(** [dimensions] must be non-empty; the first one is the sampling anchor. *)

type t
type synopsis

val prepare : Spec.t -> theta:float -> tables -> t
(** Budget base is the fact table plus all dimensions. *)

val prepare_opt : ?threshold:float -> theta:float -> tables -> t
(** CSDL-Opt dispatch on the anchor join's jvd. *)

val draw : t -> Repro_util.Prng.t -> synopsis

val estimate :
  ?dl_config:Discrete_learning.config ->
  ?pred_fact:Predicate.t ->
  ?pred_dims:Predicate.t list ->
  t ->
  synopsis ->
  float
(** [pred_dims] lines up with [tables.dimensions] (missing tail entries
    default to [True]). *)

val true_size :
  ?pred_fact:Predicate.t -> ?pred_dims:Predicate.t list -> tables -> int

val spec : t -> Spec.t
val synopsis_tuples : synopsis -> int
