module Prng = Repro_util.Prng
module Summary = Repro_util.Summary

type interval = {
  lower : float;
  point : float;
  upper : float;
}

let confidence_interval ?(replicates = 1000) ?(level = 0.95) ~statistic prng
    runs =
  let n = Array.length runs in
  if n = 0 then invalid_arg "Bootstrap.confidence_interval: empty input";
  if level <= 0.0 || level >= 1.0 then
    invalid_arg "Bootstrap.confidence_interval: level must be in (0, 1)";
  if replicates < 1 then
    invalid_arg "Bootstrap.confidence_interval: replicates must be >= 1";
  let resample = Array.make n 0.0 in
  let statistics =
    Array.init replicates (fun _ ->
        for i = 0 to n - 1 do
          resample.(i) <- runs.(Prng.int prng n)
        done;
        statistic resample)
  in
  let alpha = (1.0 -. level) /. 2.0 in
  {
    lower = Summary.quantile alpha statistics;
    point = statistic runs;
    upper = Summary.quantile (1.0 -. alpha) statistics;
  }

let median_interval ?replicates ?level prng runs =
  confidence_interval ?replicates ?level ~statistic:Summary.median prng runs
