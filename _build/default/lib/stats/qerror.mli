(** The q-error metric of Moerkotte et al. used throughout the paper's
    evaluation: [qerror = max(J, J_hat) / min(J, J_hat)].

    Conventions (matching how the paper reports results): a zero estimate
    for a non-zero truth — the "filtered sample is empty" failure mode — is
    infinity; estimating zero when the truth is zero is a perfect 1. *)

val compute : truth:float -> estimate:float -> float
(** Requires [truth >= 0] and treats a negative estimate as 0 (estimators
    never produce one, but clamping keeps the metric total). *)

val is_failure : float -> bool
(** [is_failure q] — whether a q-error value represents the paper's
    "infinity" failure case. *)

val to_string : float -> string
(** Renders like the paper's tables: two decimals, or the infinity sign. *)
