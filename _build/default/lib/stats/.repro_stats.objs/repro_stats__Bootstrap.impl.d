lib/stats/bootstrap.ml: Array Repro_util
