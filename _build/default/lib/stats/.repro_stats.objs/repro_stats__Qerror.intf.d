lib/stats/qerror.mli:
