lib/stats/qerror.ml: Float Printf
