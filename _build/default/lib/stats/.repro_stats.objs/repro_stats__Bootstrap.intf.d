lib/stats/bootstrap.mli: Repro_util
