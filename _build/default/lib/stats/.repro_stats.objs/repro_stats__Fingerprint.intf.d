lib/stats/fingerprint.mli: Seq
