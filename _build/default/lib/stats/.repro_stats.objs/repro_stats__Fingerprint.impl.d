lib/stats/fingerprint.ml: Float Int Map Seq
