module Int_map = Map.Make (Int)

type t = float Int_map.t

let empty = Int_map.empty

let add_mass index mass t =
  if index < 1 || mass <= 0.0 then t
  else
    Int_map.update index
      (function None -> Some mass | Some m -> Some (m +. mass))
      t

let of_int_counts counts =
  Seq.fold_left (fun t c -> add_mass c 1.0 t) empty counts

let of_float_counts counts =
  Seq.fold_left
    (fun t c ->
      if c <= 0.0 then t
      else
        let lo = Float.floor c in
        let frac = c -. lo in
        if frac = 0.0 then add_mass (int_of_float lo) 1.0 t
        else
          t
          |> add_mass (int_of_float lo) (1.0 -. frac)
          |> add_mass (int_of_float lo + 1) frac)
    empty counts

let get t i = match Int_map.find_opt i t with Some m -> m | None -> 0.0

let max_index t =
  match Int_map.max_binding_opt t with Some (i, _) -> i | None -> 0

let sample_size t =
  Int_map.fold (fun i m acc -> acc +. (float_of_int i *. m)) t 0.0

let distinct_values t = Int_map.fold (fun _ m acc -> acc +. m) t 0.0

let iter f t = Int_map.iter f t
let fold f t init = Int_map.fold f t init
let to_alist t = Int_map.bindings t
