(** Sample fingerprints.

    The fingerprint of a sample is the map [i -> F_i] where [F_i] is the
    number of distinct domain values appearing exactly [i] times (Algorithm
    1, line 1). [F_i] is real-valued here because the virtual samples of
    CSDL Cases 3/4 carry fractional per-value counts [S_A(v) * q / q_v]
    (Eq. 6): a fractional count [c] contributes [1 - frac c] to
    [F_(floor c)] and [frac c] to [F_(ceil c)], which preserves expected
    fingerprints — the property Lemma 1 needs. *)

type t

val empty : t

val of_int_counts : int Seq.t -> t
(** Fingerprint of a sample given its per-value multiplicities. Zero and
    negative counts are ignored. *)

val of_float_counts : float Seq.t -> t
(** Fractional variant (see above). Counts [<= 0] are ignored; a count that
    is an exact integer lands wholly in its own bin. *)

val get : t -> int -> float
(** [get t i] is [F_i] (0 when absent). [i >= 1]. *)

val max_index : t -> int
(** Largest [i] with [F_i > 0]; 0 for the empty fingerprint. *)

val sample_size : t -> float
(** [sum_i i * F_i] — the (possibly fractional) number of sampled tuples. *)

val distinct_values : t -> float
(** [sum_i F_i] — the number of distinct sampled values (fractional counts
    contribute their split mass). *)

val iter : (int -> float -> unit) -> t -> unit
(** Iterate over non-zero entries in increasing [i]. *)

val fold : (int -> float -> 'a -> 'a) -> t -> 'a -> 'a

val to_alist : t -> (int * float) list
(** Non-zero entries in increasing [i]. *)
