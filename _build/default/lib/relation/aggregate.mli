(** Grouping and aggregation over tables — rounding out the relational
    engine so example applications can answer realistic reporting queries
    over plan results (group counts, per-key sums/averages, top-k). *)

type aggregation =
  | Count  (** number of rows in the group *)
  | Sum of string  (** sum of a numeric column ([Null]s skipped) *)
  | Avg of string  (** mean of a numeric column; [Null] result when empty *)
  | Min of string
  | Max of string
  | Count_distinct of string  (** distinct non-null values of a column *)

val group_by :
  keys:string list ->
  aggregations:(string * aggregation) list ->
  Table.t ->
  Table.t
(** [group_by ~keys ~aggregations table] — one output row per distinct key
    combination (SQL GROUP BY; key [Null]s form their own group as in
    SQL). Output columns are the keys followed by the named aggregates;
    [Sum]/[Avg] yield float columns, [Count]/[Count_distinct] ints,
    [Min]/[Max] keep the source type. Output rows are sorted by key.
    Raises [Invalid_argument] on unknown columns, an empty key list, or
    duplicate output names. *)

val top_k : by:string -> ?descending:bool -> int -> Table.t -> Table.t
(** The k rows with the largest (default) or smallest values in [by].
    Ties broken arbitrarily but deterministically. *)

val order_by : by:string -> ?descending:bool -> Table.t -> Table.t
(** Stable sort of the whole table on one column. *)
