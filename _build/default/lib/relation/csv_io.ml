let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let encode_field v =
  match v with
  | Value.Null -> ""
  | _ ->
      let s = Value.to_string v in
      if needs_quoting s then
        let buffer = Buffer.create (String.length s + 2) in
        Buffer.add_char buffer '"';
        String.iter
          (fun c ->
            if c = '"' then Buffer.add_string buffer "\"\""
            else Buffer.add_char buffer c)
          s;
        Buffer.add_char buffer '"';
        Buffer.contents buffer
      else s

let write path table =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let schema = Table.schema table in
      let names = List.map fst (Schema.columns schema) in
      output_string oc (String.concat "," names);
      output_char oc '\n';
      Table.iter
        (fun row ->
          let fields = Array.to_list (Array.map encode_field row) in
          output_string oc (String.concat "," fields);
          output_char oc '\n')
        table)

(* Split one CSV record into fields, handling quoted fields. Assumes the
   record contains no embedded newlines (we never write any: generated data
   has no newlines in strings). *)
let split_record line =
  let fields = ref [] in
  let buffer = Buffer.create 32 in
  let n = String.length line in
  let rec field i =
    if i >= n then finish i
    else if line.[i] = '"' then quoted (i + 1)
    else plain i
  and plain i =
    if i >= n || line.[i] = ',' then finish i
    else begin
      Buffer.add_char buffer line.[i];
      plain (i + 1)
    end
  and quoted i =
    if i >= n then failwith "unterminated quote"
    else if line.[i] = '"' then
      if i + 1 < n && line.[i + 1] = '"' then begin
        Buffer.add_char buffer '"';
        quoted (i + 2)
      end
      else finish (i + 1)
    else begin
      Buffer.add_char buffer line.[i];
      quoted (i + 1)
    end
  and finish i =
    fields := Buffer.contents buffer :: !fields;
    Buffer.clear buffer;
    if i < n && line.[i] = ',' then field (i + 1)
  in
  field 0;
  List.rev !fields

let parse_field ty raw =
  if String.equal raw "" then Value.Null
  else
    match ty with
    | Schema.T_int -> Value.Int (int_of_string raw)
    | Schema.T_float -> Value.Float (float_of_string raw)
    | Schema.T_string -> Value.Str raw

let read schema path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let arity = Schema.arity schema in
      let types = Array.init arity (Schema.type_of schema) in
      (match input_line ic with
      | (_ : string) -> () (* header discarded; schema is authoritative *)
      | exception End_of_file -> failwith "empty CSV file");
      let rows = ref [] in
      let line_number = ref 1 in
      (try
         while true do
           let line = input_line ic in
           incr line_number;
           if not (String.equal line "") then begin
             let fields = split_record line in
             if List.length fields <> arity then
               failwith
                 (Printf.sprintf "line %d: expected %d fields, got %d"
                    !line_number arity (List.length fields));
             let row = Array.make arity Value.Null in
             List.iteri
               (fun j raw ->
                 row.(j) <-
                   (try parse_field types.(j) raw
                    with _ ->
                      failwith
                        (Printf.sprintf "line %d: bad %s field %S" !line_number
                           (match types.(j) with
                           | Schema.T_int -> "int"
                           | Schema.T_float -> "float"
                           | Schema.T_string -> "string")
                           raw)))
               fields;
             rows := row :: !rows
           end
         done
       with End_of_file -> ());
      Table.create schema (Array.of_list (List.rev !rows)))

let read_auto path =
  (* Two passes: sniff column types, then parse with the inferred schema. *)
  let ic = open_in path in
  let header, records =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let header =
          match input_line ic with
          | line -> split_record line
          | exception End_of_file -> failwith "empty CSV file"
        in
        let records = ref [] in
        (try
           while true do
             let line = input_line ic in
             if not (String.equal line "") then
               records := split_record line :: !records
           done
         with End_of_file -> ());
        (header, List.rev !records))
  in
  let arity = List.length header in
  let rank = function Schema.T_int -> 0 | Schema.T_float -> 1 | Schema.T_string -> 2 in
  let widen current field =
    if String.equal field "" then current
    else
      let fits ty =
        match ty with
        | Schema.T_int -> int_of_string_opt field <> None
        | Schema.T_float -> float_of_string_opt field <> None
        | Schema.T_string -> true
      in
      let candidates = [ Schema.T_int; Schema.T_float; Schema.T_string ] in
      List.find
        (fun ty -> rank ty >= rank current && fits ty)
        candidates
  in
  let types = Array.make arity Schema.T_int in
  List.iteri
    (fun line_index fields ->
      if List.length fields <> arity then
        failwith
          (Printf.sprintf "line %d: expected %d fields, got %d" (line_index + 2)
             arity (List.length fields));
      List.iteri (fun j field -> types.(j) <- widen types.(j) field) fields)
    records;
  let schema = Schema.make (List.mapi (fun j name -> (name, types.(j))) header) in
  let rows =
    List.map
      (fun fields ->
        let row = Array.make arity Value.Null in
        List.iteri (fun j field -> row.(j) <- parse_field types.(j) field) fields;
        row)
      records
  in
  Table.create schema (Array.of_list rows)
