type aggregation =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string
  | Count_distinct of string

(* group keys are value lists; wrap them for hashtable use *)
module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal a b = List.compare Value.compare a b = 0
  let hash key = Hashtbl.hash (List.map Value.hash key)
end)

let numeric_of column row index =
  match Value.as_float row.(index) with
  | Some f -> Some f
  | None -> (
      match row.(index) with
      | Value.Null -> None
      | v ->
          invalid_arg
            (Printf.sprintf "Aggregate: non-numeric %s value in column %S"
               (Value.type_name v) column))

let output_type source_schema = function
  | Count | Count_distinct _ -> Schema.T_int
  | Sum _ | Avg _ -> Schema.T_float
  | Min column | Max column ->
      Schema.type_of source_schema (Schema.index_of source_schema column)

let group_by ~keys ~aggregations table =
  if keys = [] then invalid_arg "Aggregate.group_by: empty key list";
  let schema = Table.schema table in
  let key_indices = List.map (Table.column_index table) keys in
  let column_of = function
    | Count -> None
    | Sum c | Avg c | Min c | Max c | Count_distinct c -> Some c
  in
  List.iter
    (fun (_, agg) ->
      Option.iter
        (fun c -> ignore (Table.column_index table c : int))
        (column_of agg))
    aggregations;
  let out_schema =
    Schema.make
      (List.map
         (fun (k, i) -> (k, Schema.type_of schema i))
         (List.combine keys key_indices)
      @ List.map (fun (name, agg) -> (name, output_type schema agg)) aggregations)
  in
  (* per-group state: row indices *)
  let groups = Key_tbl.create 256 in
  let order = ref [] in
  Table.iteri
    (fun row_index row ->
      let key = List.map (fun i -> row.(i)) key_indices in
      match Key_tbl.find_opt groups key with
      | Some acc -> acc := row_index :: !acc
      | None ->
          Key_tbl.add groups key (ref [ row_index ]);
          order := key :: !order)
    table;
  let compute key rows agg =
    let rows = List.rev_map (Table.row table) rows in
    ignore key;
    match agg with
    | Count -> Value.Int (List.length rows)
    | Count_distinct column ->
        let i = Table.column_index table column in
        let seen = Value.Tbl.create 16 in
        List.iter
          (fun row ->
            match row.(i) with
            | Value.Null -> ()
            | v -> Value.Tbl.replace seen v ())
          rows;
        Value.Int (Value.Tbl.length seen)
    | Sum column ->
        let i = Table.column_index table column in
        Value.Float
          (List.fold_left
             (fun acc row ->
               match numeric_of column row i with
               | Some f -> acc +. f
               | None -> acc)
             0.0 rows)
    | Avg column ->
        let i = Table.column_index table column in
        let total = ref 0.0 and n = ref 0 in
        List.iter
          (fun row ->
            match numeric_of column row i with
            | Some f ->
                total := !total +. f;
                incr n
            | None -> ())
          rows;
        if !n = 0 then Value.Null else Value.Float (!total /. float_of_int !n)
    | Min column | Max column ->
        let i = Table.column_index table column in
        let keep_smaller = match agg with Min _ -> true | _ -> false in
        List.fold_left
          (fun best row ->
            match (best, row.(i)) with
            | best, Value.Null -> best
            | Value.Null, v -> v
            | best, v ->
                if
                  (keep_smaller && Value.compare v best < 0)
                  || ((not keep_smaller) && Value.compare v best > 0)
                then v
                else best)
          Value.Null rows
  in
  let keys_sorted =
    List.sort (List.compare Value.compare) (List.rev !order)
  in
  let rows =
    List.map
      (fun key ->
        let group_rows = !(Key_tbl.find groups key) in
        Array.of_list
          (key @ List.map (fun (_, agg) -> compute key group_rows agg) aggregations))
      keys_sorted
  in
  Table.of_rows out_schema rows

let order_by ~by ?(descending = false) table =
  let i = Table.column_index table by in
  let rows = Array.init (Table.cardinality table) (Table.row table) in
  let cmp a b =
    let c = Value.compare a.(i) b.(i) in
    if descending then -c else c
  in
  let sorted = Array.copy rows in
  Array.stable_sort cmp sorted;
  Table.create (Table.schema table) sorted

let top_k ~by ?(descending = true) k table =
  let sorted = order_by ~by ~descending table in
  let n = min k (Table.cardinality sorted) in
  Table.select_rows sorted (Array.init n Fun.id)
