(** Named, ordered columns of a table. *)

type column_type = T_int | T_float | T_string

type t

val make : (string * column_type) list -> t
(** Raises [Invalid_argument] on duplicate column names or an empty list. *)

val arity : t -> int
val columns : t -> (string * column_type) list

val index_of : t -> string -> int
(** Position of a column by name; raises [Not_found]. *)

val mem : t -> string -> bool
val name_of : t -> int -> string
val type_of : t -> int -> column_type

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val accepts : column_type -> Value.t -> bool
(** [accepts ty v] — whether value [v] may live in a column of type [ty];
    [Null] is accepted everywhere. *)
