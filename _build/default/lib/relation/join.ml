type side = { table : Table.t; column : string; predicate : Predicate.t }

let unfiltered table column = { table; column; predicate = Predicate.True }
let filtered table column predicate = { table; column; predicate }

let filtered_table { table; predicate; _ } =
  match predicate with
  | Predicate.True -> table
  | p -> Predicate.apply p table

let pair_count a b =
  let ta = filtered_table a and tb = filtered_table b in
  let fa = Table.frequency_map ta a.column in
  let fb = Table.frequency_map tb b.column in
  (* iterate over the smaller map *)
  let small, large =
    if Value.Tbl.length fa <= Value.Tbl.length fb then (fa, fb) else (fb, fa)
  in
  Value.Tbl.fold
    (fun v count acc ->
      match Value.Tbl.find_opt large v with
      | Some other -> acc + (count * other)
      | None -> acc)
    small 0

let pair_rows a b =
  let ta = filtered_table a and tb = filtered_table b in
  let groups = Table.group_by tb b.column in
  let ia = Table.column_index ta a.column in
  let out = ref [] in
  Table.iter
    (fun row_a ->
      match row_a.(ia) with
      | Value.Null -> ()
      | v -> (
          match Value.Tbl.find_opt groups v with
          | None -> ()
          | Some indices ->
              Array.iter
                (fun j -> out := (row_a, Table.row tb j) :: !out)
                indices))
    ta;
  List.rev !out

let semijoin table column ~member =
  let i = Table.column_index table column in
  Table.filter
    (fun row ->
      match row.(i) with Value.Null -> false | v -> member v)
    table

let chain3_count ~a ~b ~b_fk ~c =
  (* Right-to-left: count C rows per FK value, propagate through B, then
     through A. PK columns may in fact have duplicates (we do not enforce
     key constraints here), so we propagate full counts. *)
  let tc = filtered_table c in
  let c_counts = Table.frequency_map tc c.column in
  let tb = filtered_table b in
  let ib_pk = Table.column_index tb b.column in
  let ib_fk = Table.column_index tb b_fk in
  (* per A-key value: number of (B, C+) partial join rows *)
  let partial = Value.Tbl.create 1024 in
  Table.iter
    (fun row_b ->
      match (row_b.(ib_fk), row_b.(ib_pk)) with
      | Value.Null, _ | _, Value.Null -> ()
      | fk, pk -> (
          match Value.Tbl.find_opt c_counts pk with
          | None -> ()
          | Some c_count -> (
              match Value.Tbl.find_opt partial fk with
              | Some acc -> Value.Tbl.replace partial fk (acc + c_count)
              | None -> Value.Tbl.add partial fk c_count)))
    tb;
  let ta = filtered_table a in
  let ia = Table.column_index ta a.column in
  Table.fold
    (fun acc row_a ->
      match row_a.(ia) with
      | Value.Null -> acc
      | v -> (
          match Value.Tbl.find_opt partial v with
          | Some count -> acc + count
          | None -> acc))
    0 ta

let star_count ~fact ~fact_predicate ~dimensions =
  let tf =
    match fact_predicate with
    | Predicate.True -> fact
    | p -> Predicate.apply p fact
  in
  let prepared =
    List.map
      (fun (fk_column, dim) ->
        let td = filtered_table dim in
        (Table.column_index tf fk_column, Table.frequency_map td dim.column))
      dimensions
  in
  Table.fold
    (fun acc row ->
      let product =
        List.fold_left
          (fun p (i, counts) ->
            if p = 0 then 0
            else
              match row.(i) with
              | Value.Null -> 0
              | v -> (
                  match Value.Tbl.find_opt counts v with
                  | Some c -> p * c
                  | None -> 0))
          1 prepared
      in
      acc + product)
    0 tf

let jvd ta col_a tb col_b =
  let na = Table.cardinality ta and nb = Table.cardinality tb in
  if na = 0 || nb = 0 then 0.0
  else
    let da = float_of_int (Table.distinct_count ta col_a) /. float_of_int na in
    let db = float_of_int (Table.distinct_count tb col_b) /. float_of_int nb in
    Float.min da db
