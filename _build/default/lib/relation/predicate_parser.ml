(* Recursive-descent parser over a hand-rolled token stream. *)

type token =
  | T_ident of string
  | T_int of int
  | T_float of float
  | T_string of string
  | T_op of Predicate.comparison
  | T_like
  | T_and
  | T_or
  | T_not
  | T_true
  | T_false
  | T_lparen
  | T_rparen

exception Parse_error of string

let fail position message =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" position message))

let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true
  | _ -> false

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '(' then (emit T_lparen; incr i)
    else if c = ')' then (emit T_rparen; incr i)
    else if c = '\'' then begin
      (* string literal; '' escapes a quote *)
      let buffer = Buffer.create 16 in
      let start = !i in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buffer '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buffer input.[!i];
          incr i
        end
      done;
      if not !closed then fail start "unterminated string literal";
      emit (T_string (Buffer.contents buffer))
    end
    else if c = '=' then (emit (T_op Predicate.Eq); incr i)
    else if c = '<' then
      if !i + 1 < n && input.[!i + 1] = '=' then (emit (T_op Predicate.Le); i := !i + 2)
      else if !i + 1 < n && input.[!i + 1] = '>' then (emit (T_op Predicate.Ne); i := !i + 2)
      else (emit (T_op Predicate.Lt); incr i)
    else if c = '>' then
      if !i + 1 < n && input.[!i + 1] = '=' then (emit (T_op Predicate.Ge); i := !i + 2)
      else (emit (T_op Predicate.Gt); incr i)
    else if c = '!' then
      if !i + 1 < n && input.[!i + 1] = '=' then (emit (T_op Predicate.Ne); i := !i + 2)
      else fail !i "expected != "
    else if c = '-' || ('0' <= c && c <= '9') then begin
      let start = !i in
      incr i;
      while
        !i < n
        && (match input.[!i] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
      do
        incr i
      done;
      let raw = String.sub input start (!i - start) in
      match int_of_string_opt raw with
      | Some v -> emit (T_int v)
      | None -> (
          match float_of_string_opt raw with
          | Some v -> emit (T_float v)
          | None -> fail start (Printf.sprintf "bad number %S" raw))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      match String.uppercase_ascii word with
      | "AND" -> emit T_and
      | "OR" -> emit T_or
      | "NOT" -> emit T_not
      | "LIKE" -> emit T_like
      | "TRUE" -> emit T_true
      | "FALSE" -> emit T_false
      | _ -> emit (T_ident word)
    end
    else fail !i (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

(* LIKE patterns: 'p%' (prefix), '%s%' (contains); '%' alone matches all *)
let like_of_pattern column pattern =
  let n = String.length pattern in
  let has_inner_percent s =
    String.exists (fun c -> c = '%') s
  in
  if n = 0 then Predicate.Like_prefix (column, "")
  else if pattern = "%" then Predicate.Like_contains (column, "")
  else if n >= 2 && pattern.[0] = '%' && pattern.[n - 1] = '%' then begin
    let inner = String.sub pattern 1 (n - 2) in
    if has_inner_percent inner then
      raise (Parse_error "LIKE supports only 'prefix%' and '%substring%' patterns");
    Predicate.Like_contains (column, inner)
  end
  else if pattern.[n - 1] = '%' then begin
    let prefix = String.sub pattern 0 (n - 1) in
    if has_inner_percent prefix then
      raise (Parse_error "LIKE supports only 'prefix%' and '%substring%' patterns");
    Predicate.Like_prefix (column, prefix)
  end
  else if has_inner_percent pattern then
    raise (Parse_error "LIKE supports only 'prefix%' and '%substring%' patterns")
  else
    (* no wildcard: plain equality *)
    Predicate.Compare (Predicate.Eq, column, Value.Str pattern)

(* parser over a mutable token list *)
let parse_tokens tokens =
  let stream = ref tokens in
  let peek () = match !stream with [] -> None | t :: _ -> Some t in
  let advance () =
    match !stream with
    | [] -> raise (Parse_error "unexpected end of input")
    | t :: rest ->
        stream := rest;
        t
  in
  let expect_rparen () =
    match advance () with
    | T_rparen -> ()
    | _ -> raise (Parse_error "expected )")
  in
  let rec expr () = parse_or ()
  and parse_or () =
    let left = parse_and () in
    match peek () with
    | Some T_or ->
        ignore (advance ());
        Predicate.Or (left, parse_or ())
    | _ -> left
  and parse_and () =
    let left = unary () in
    match peek () with
    | Some T_and ->
        ignore (advance ());
        Predicate.And (left, parse_and ())
    | _ -> left
  and unary () =
    match advance () with
    | T_not -> Predicate.Not (unary ())
    | T_lparen ->
        let inner = expr () in
        expect_rparen ();
        inner
    | T_true -> Predicate.True
    | T_false -> Predicate.False
    | T_ident column -> atom column
    | _ -> raise (Parse_error "expected a condition")
  and atom column =
    match advance () with
    | T_like -> (
        match advance () with
        | T_string pattern -> like_of_pattern column pattern
        | _ -> raise (Parse_error "LIKE expects a string pattern"))
    | T_op op -> (
        match advance () with
        | T_int v -> Predicate.Compare (op, column, Value.Int v)
        | T_float v -> Predicate.Compare (op, column, Value.Float v)
        | T_string v -> Predicate.Compare (op, column, Value.Str v)
        | _ -> raise (Parse_error "expected a literal after the operator"))
    | _ -> raise (Parse_error "expected an operator or LIKE")
  in
  let result = expr () in
  (match !stream with
  | [] -> ()
  | _ -> raise (Parse_error "trailing input after the predicate"));
  result

let parse input =
  match parse_tokens (tokenize input) with
  | predicate -> Ok predicate
  | exception Parse_error message -> Error message

let parse_exn input =
  match parse input with
  | Ok predicate -> predicate
  | Error message -> invalid_arg ("Predicate_parser: " ^ message)
