(** Minimal CSV import/export so example programs can persist and reload
    generated datasets. Quoting follows RFC 4180 (double quotes, doubled
    quote escapes); values are parsed back using the schema's column
    types, with empty fields read as [Null]. *)

val write : string -> Table.t -> unit
(** [write path table] writes a header row (column names) plus one line per
    row. Raises [Sys_error] on IO failure. *)

val read : Schema.t -> string -> Table.t
(** [read schema path] parses a file written by {!write} (or any simple
    CSV with a matching header). Raises [Failure] with the offending line
    number on malformed input or arity mismatch. *)

val read_auto : string -> Table.t
(** [read_auto path] reads a CSV without a known schema: column names come
    from the header and each column's type is inferred from the data
    (int if every non-empty field parses as an int, else float if every
    non-empty field parses as a number, else string). Raises [Failure] on
    malformed input or an empty file. *)
