type comparison = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Compare of comparison * string * Value.t
  | Like_prefix of string * string
  | Like_contains of string * string
  | And of t * t
  | Or of t * t
  | Not of t

let string_has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let string_contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else if nl > hl then false
  else
    let rec scan i =
      if i > hl - nl then false
      else if String.equal (String.sub haystack i nl) needle then true
      else scan (i + 1)
    in
    scan 0

let compare_op op =
  match op with
  | Eq -> fun c -> c = 0
  | Ne -> fun c -> c <> 0
  | Lt -> fun c -> c < 0
  | Le -> fun c -> c <= 0
  | Gt -> fun c -> c > 0
  | Ge -> fun c -> c >= 0

let rec compile p schema =
  let index name =
    match Schema.index_of schema name with
    | i -> i
    | exception Not_found ->
        invalid_arg (Printf.sprintf "Predicate: no column named %S" name)
  in
  match p with
  | True -> fun _ -> true
  | False -> fun _ -> false
  | Compare (op, column, constant) ->
      let i = index column in
      let test = compare_op op in
      fun row ->
        (match row.(i) with
        | Value.Null -> false
        | v -> test (Value.compare v constant))
  | Like_prefix (column, prefix) ->
      let i = index column in
      fun row ->
        (match row.(i) with
        | Value.Str s -> string_has_prefix ~prefix s
        | Value.Null | Value.Int _ | Value.Float _ -> false)
  | Like_contains (column, needle) ->
      let i = index column in
      fun row ->
        (match row.(i) with
        | Value.Str s -> string_contains ~needle s
        | Value.Null | Value.Int _ | Value.Float _ -> false)
  | And (a, b) ->
      let fa = compile a schema and fb = compile b schema in
      fun row -> fa row && fb row
  | Or (a, b) ->
      let fa = compile a schema and fb = compile b schema in
      fun row -> fa row || fb row
  | Not a ->
      let fa = compile a schema in
      fun row -> not (fa row)

let apply p table = Table.filter (compile p (Table.schema table)) table

let selectivity p table =
  let n = Table.cardinality table in
  if n = 0 then 0.0
  else
    let hits = Table.cardinality (apply p table) in
    float_of_int hits /. float_of_int n

let comparison_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec to_string = function
  | True -> "TRUE"
  | False -> "FALSE"
  | Compare (op, column, constant) ->
      Printf.sprintf "%s %s %s" column (comparison_to_string op)
        (match constant with
        | Value.Str s -> Printf.sprintf "'%s'" s
        | v -> Value.to_string v)
  | Like_prefix (column, prefix) -> Printf.sprintf "%s LIKE '%s%%'" column prefix
  | Like_contains (column, needle) -> Printf.sprintf "%s LIKE '%%%s%%'" column needle
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "NOT %s" (to_string a)

let conj = function
  | [] -> True
  | p :: rest -> List.fold_left (fun acc q -> And (acc, q)) p rest
