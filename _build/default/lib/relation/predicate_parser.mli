(** A small SQL-flavoured parser for {!Predicate.t}, so tools (the CLI,
    config files) can accept predicates as text:

    {v
      production_year > 2000 AND kind_id <= 3
      title LIKE 'The %'
      NOT (kind = 'distributors' OR company_id = 42)
      price >= 99.5
    v}

    Grammar (case-insensitive keywords):

    {v
      expr     ::= or
      or       ::= and { OR and }
      and      ::= unary { AND unary }
      unary    ::= NOT unary | '(' expr ')' | atom | TRUE | FALSE
      atom     ::= ident op literal | ident LIKE string
      op       ::= = | != | <> | < | <= | > | >=
      literal  ::= int | float | 'string'
    v}

    [LIKE] patterns support a trailing [%] (prefix match) and a leading and
    trailing [%] (substring match) — the forms the estimators support;
    anything else is rejected. *)

val parse : string -> (Predicate.t, string) result
(** [Error] carries a human-readable message with the offending position. *)

val parse_exn : string -> Predicate.t
(** Raises [Invalid_argument] with the same message. *)
