lib/relation/value.ml: Float Format Hashtbl Int Map Printf Set String
