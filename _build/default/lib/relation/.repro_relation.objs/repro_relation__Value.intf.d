lib/relation/value.mli: Format Hashtbl Map Set
