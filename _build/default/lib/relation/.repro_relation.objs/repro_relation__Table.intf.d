lib/relation/table.mli: Format Schema Value
