lib/relation/csv_io.ml: Array Buffer Fun List Printf Schema String Table Value
