lib/relation/table.ml: Array Format Printf Schema Seq String Value
