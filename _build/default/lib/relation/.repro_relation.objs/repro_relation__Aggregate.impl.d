lib/relation/aggregate.ml: Array Fun Hashtbl List Option Printf Schema Table Value
