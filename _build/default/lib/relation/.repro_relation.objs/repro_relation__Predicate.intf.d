lib/relation/predicate.mli: Schema Table Value
