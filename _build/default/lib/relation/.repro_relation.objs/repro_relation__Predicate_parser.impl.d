lib/relation/predicate_parser.ml: Buffer List Predicate Printf String Value
