lib/relation/predicate_parser.mli: Predicate
