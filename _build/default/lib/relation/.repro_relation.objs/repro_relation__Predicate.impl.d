lib/relation/predicate.ml: Array List Printf Schema String Table Value
