lib/relation/csv_io.mli: Schema Table
