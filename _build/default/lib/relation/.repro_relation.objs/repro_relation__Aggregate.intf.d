lib/relation/aggregate.mli: Table
