lib/relation/join.mli: Predicate Table Value
