lib/relation/join.ml: Array Float List Predicate Table Value
