type column_type = T_int | T_float | T_string

type t = {
  names : string array;
  types : column_type array;
  positions : (string, int) Hashtbl.t;
}

let make columns =
  if columns = [] then invalid_arg "Schema.make: empty column list";
  let names = Array.of_list (List.map fst columns) in
  let types = Array.of_list (List.map snd columns) in
  let positions = Hashtbl.create (Array.length names) in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem positions name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %S" name);
      Hashtbl.add positions name i)
    names;
  { names; types; positions }

let arity t = Array.length t.names

let columns t =
  Array.to_list (Array.mapi (fun i name -> (name, t.types.(i))) t.names)

let index_of t name = Hashtbl.find t.positions name
let mem t name = Hashtbl.mem t.positions name
let name_of t i = t.names.(i)
let type_of t i = t.types.(i)

let equal a b = a.names = b.names && a.types = b.types

let type_to_string = function
  | T_int -> "int"
  | T_float -> "float"
  | T_string -> "string"

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (List.map
          (fun (name, ty) -> Printf.sprintf "%s:%s" name (type_to_string ty))
          (columns t)))

let accepts ty v =
  match (ty, v) with
  | _, Value.Null -> true
  | T_int, Value.Int _ -> true
  | T_float, (Value.Float _ | Value.Int _) -> true
  | T_string, Value.Str _ -> true
  | (T_int | T_float | T_string), _ -> false
