(** Exact join computation — the ground truth the estimators are judged
    against, plus the semijoin primitive correlated sampling is built on. *)

type side = { table : Table.t; column : string; predicate : Predicate.t }
(** One side of an equijoin: which table, its join column, and the query's
    selection predicate on it ([Predicate.True] when unfiltered). *)

val unfiltered : Table.t -> string -> side
(** A side with [Predicate.True]. *)

val filtered : Table.t -> string -> Predicate.t -> side

val pair_count : side -> side -> int
(** Exact size of [sigma_cA(A) |><| sigma_cB(B)] by frequency-map product:
    sum over shared values v of a_v * b_v. Nulls never join. *)

val pair_rows : side -> side -> (Value.t array * Value.t array) list
(** Materialised join result (for the examples; beware of output size). *)

val semijoin : Table.t -> string -> member:(Value.t -> bool) -> Table.t
(** [semijoin b col ~member] keeps the rows of [b] whose non-null join value
    satisfies [member] — computes [B |>< S_A] when [member] tests presence
    in the sampled value set. *)

val chain3_count :
  a:side -> b:side -> b_fk:string -> c:side -> int
(** Exact size of the paper's 3-table chain join
    [A (A.pk = B.fk) |><| B (B.pk = C.fk) |><| C] with per-table selections.
    [a.column] is A's PK joined against [b_fk] in B; [b.column] is B's PK
    joined against [c.column] (the FK) in C. *)

val star_count : fact:Table.t -> fact_predicate:Predicate.t ->
  dimensions:(string * side) list -> int
(** Exact size of a star join: for each fact row passing [fact_predicate],
    multiply the match counts of each [(fk_column, dimension)] pair. *)

val jvd : Table.t -> string -> Table.t -> string -> float
(** Join value density [min(|V_A|/|A|, |V_B|/|B|)] (Section III). 0 when
    either table is empty. *)
