(** The strawman the paper's introduction dismisses: independent Bernoulli
    samples of each base table, joined and scaled up by [1/(q_a q_b)].
    Unbiased, supports arbitrary predicates, but its variance explodes on
    joins because matching tuples rarely co-occur in both samples — the
    motivation for correlated sampling. Included as the reference point the
    whole literature measures against. *)

open Repro_relation

type t

val prepare : theta:float -> Csdl.Profile.t -> t
(** Each table is sampled with rate [theta] (budget
    [theta * (|A| + |B|)] tuples in expectation, like the correlated
    estimators). *)

type synopsis

val draw : t -> Repro_util.Prng.t -> synopsis

val estimate :
  ?pred_a:Predicate.t -> ?pred_b:Predicate.t -> t -> synopsis -> float

val estimate_once :
  ?pred_a:Predicate.t -> ?pred_b:Predicate.t -> t -> Repro_util.Prng.t -> float

val synopsis_tuples : synopsis -> int
val name : string
