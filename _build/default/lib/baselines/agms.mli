(** Fast-AGMS ("sketch") join-size estimation — the sketching branch of the
    related work (Alon et al.; Cormode & Garofalakis). Each table is
    summarised by a [depth x width] array of counters: every tuple adds a
    4-wise-style random sign to the bucket its join value hashes to, and
    the join size estimate is the median over rows of the bucket-wise dot
    product of the two sketches.

    Strengths and weaknesses relative to correlated sampling, both visible
    in the baseline bench: the estimate is unbiased with variance bounded
    by [||a||^2 ||b||^2 / width] regardless of jvd, but a sketch cannot
    apply *runtime selection predicates* — it summarises the unfiltered
    columns — so it only answers the predicate-free join size.

    Hashing is simple tabulation (3-wise independent, empirically
    indistinguishable from ideal for AGMS workloads). *)

open Repro_relation

type plan
(** Shared hash functions — both tables of a join must be sketched under
    the same plan. *)

val plan : ?depth:int -> theta:float -> Csdl.Profile.t -> seed:int -> plan
(** Counter budget matches the sampling estimators' tuple budget:
    [depth * width = theta * (|A| + |B|)], [depth] defaulting to 5. *)

type sketch

val sketch_side : plan -> Table.t -> string -> sketch
(** One pass over the table. Null join values are skipped. *)

val estimate : sketch -> sketch -> float
(** Median-of-rows dot product. Raises [Invalid_argument] if the sketches
    come from different plans. *)

val estimate_profile : plan -> Csdl.Profile.t -> float
(** Convenience: sketch both sides of a profile and estimate. *)

val width : plan -> int
val depth : plan -> int
val name : string
