(** Join synopses (Acharya, Gibbons, Poosala & Ramaswamy, SIGMOD 1999):
    keep a uniform sample of the {e join result} itself by sampling the
    FK table and attaching each sampled tuple's (unique) PK partner. The
    estimate is a straight scale-up of the sample rows whose both halves
    pass the query's predicates — unbiased and very accurate, but only
    defined for PK-FK joins (the paper's related work points out exactly
    this restriction; correlated sampling exists to lift it). *)

open Repro_relation

type t

val prepare : theta:float -> Csdl.Profile.t -> (t, string) result
(** [Error] when neither side's join column is a key — the method does not
    apply to many-to-many joins. The FK side is detected automatically;
    the budget [theta * (|A| + |B|)] pays for two stored tuples per
    sampled FK row. *)

type synopsis

val draw : t -> Repro_util.Prng.t -> synopsis

val estimate :
  ?pred_fk:Predicate.t -> ?pred_pk:Predicate.t -> t -> synopsis -> float
(** Predicates are given for the FK-side and PK-side tables respectively
    (use {!fk_is_left} to map from a query's left/right orientation). *)

val estimate_once :
  ?pred_fk:Predicate.t -> ?pred_pk:Predicate.t -> t -> Repro_util.Prng.t -> float

val fk_is_left : t -> bool
(** Whether the profile's A side was detected as the FK side. *)

val synopsis_tuples : synopsis -> int
val name : string
