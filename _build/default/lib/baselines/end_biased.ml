open Repro_relation
module Prng = Repro_util.Prng

type t = {
  profile : Csdl.Profile.t;
  threshold_a : float;
  threshold_b : float;
}

type synopsis = {
  (* values kept on both sides, with their sampled row sets *)
  kept : (Value.t * int array * int array) list;
  tuples : int;
  prepared : t;
}

let name = "end-biased"

(* Solve T so that sum_v f_v * min(1, f_v / T) = target. Monotone
   decreasing in T; bisect. *)
let solve_threshold (side : Csdl.Profile.side) ~target =
  let frequencies =
    Value.Tbl.fold
      (fun _ f acc -> float_of_int f :: acc)
      side.Csdl.Profile.frequencies []
  in
  let expected t =
    List.fold_left
      (fun acc f -> acc +. (f *. Float.min 1.0 (f /. t)))
      0.0 frequencies
  in
  let max_f = List.fold_left Float.max 1.0 frequencies in
  if expected 1.0 <= target then 1.0 (* everything fits *)
  else begin
    (* upper bound: T where even the heaviest value contributes little *)
    let hi = ref (max_f *. max_f *. float_of_int (List.length frequencies)) in
    let lo = ref 1.0 in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if expected mid > target then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let prepare ~theta (profile : Csdl.Profile.t) =
  if theta <= 0.0 || theta > 1.0 then
    invalid_arg "End_biased.prepare: theta must be in (0, 1]";
  let target side =
    theta *. float_of_int side.Csdl.Profile.cardinality
  in
  {
    profile;
    threshold_a = solve_threshold profile.Csdl.Profile.a
        ~target:(target profile.Csdl.Profile.a);
    threshold_b = solve_threshold profile.Csdl.Profile.b
        ~target:(target profile.Csdl.Profile.b);
  }

let keep_probability frequency threshold =
  Float.min 1.0 (float_of_int frequency /. threshold)

let draw t prng =
  (* the shared hash: one uniform draw per distinct join value *)
  let a = t.profile.Csdl.Profile.a and b = t.profile.Csdl.Profile.b in
  let kept = ref [] in
  let tuples = ref 0 in
  Array.iter
    (fun v ->
      let fa = Csdl.Profile.frequency a v in
      let fb = Csdl.Profile.frequency b v in
      let pa = keep_probability fa t.threshold_a in
      let pb = keep_probability fb t.threshold_b in
      let h = Prng.float prng in
      (* coordinated: v kept on a side iff h < that side's p_v; it
         contributes only when kept on both, probability min(pa, pb) *)
      if h < pa && h < pb then begin
        let rows_a = Value.Tbl.find a.Csdl.Profile.groups v in
        let rows_b = Value.Tbl.find b.Csdl.Profile.groups v in
        kept := (v, rows_a, rows_b) :: !kept;
        tuples := !tuples + Array.length rows_a + Array.length rows_b
      end)
    t.profile.Csdl.Profile.shared_values;
  (* Non-shared values are also stored by the original scheme (they cost
     space but never contribute to an equijoin); we count their expected
     cost in the thresholds but do not materialise them. *)
  { kept = !kept; tuples = !tuples; prepared = t }

let estimate ?(pred_a = Predicate.True) ?(pred_b = Predicate.True) t synopsis =
  let a = t.profile.Csdl.Profile.a and b = t.profile.Csdl.Profile.b in
  let table_a = a.Csdl.Profile.table and table_b = b.Csdl.Profile.table in
  let pass_a = Predicate.compile pred_a (Table.schema table_a) in
  let pass_b = Predicate.compile pred_b (Table.schema table_b) in
  List.fold_left
    (fun acc (_v, rows_a, rows_b) ->
      let count table pass rows =
        Array.fold_left
          (fun n r -> if pass (Table.row table r) then n + 1 else n)
          0 rows
      in
      let fa'' = count table_a pass_a rows_a in
      let fb'' = count table_b pass_b rows_b in
      if fa'' = 0 || fb'' = 0 then acc
      else begin
        let pa = keep_probability (Array.length rows_a) t.threshold_a in
        let pb = keep_probability (Array.length rows_b) t.threshold_b in
        acc +. (float_of_int (fa'' * fb'') /. Float.min pa pb)
      end)
    0.0 synopsis.kept

let estimate_once ?pred_a ?pred_b t prng =
  estimate ?pred_a ?pred_b t (draw t prng)

let synopsis_tuples synopsis = synopsis.tuples
