(** Equi-depth histogram join estimation — the classic histogram branch of
    the related work (Section VII cites the multi-dimensional and
    compressed variants; this is the standard one-dimensional building
    block every system shipped for decades).

    Each join column is summarised by [buckets] equi-depth buckets
    (bucket = value range + row count + distinct count). The join size of
    two histograms is estimated bucket-pair-wise under the uniform
    spread assumption: overlapping fraction of each bucket's rows joined
    through [min] of the distinct densities.

    The two limitations the paper leans on are visible in the API: the
    histogram answers {e equality/range}-predicate queries only via
    coarse bucket pruning (no [LIKE]), and its accuracy degrades with
    skew inside buckets. *)

open Repro_relation

type t

val build : ?buckets:int -> Table.t -> string -> t
(** [build table column] — one pass plus a sort; [buckets] defaults to
    scale with a theta-comparable footprint via {!plan_buckets}. Null
    values are excluded. *)

val plan_buckets : theta:float -> Csdl.Profile.t -> int
(** The bucket count whose storage (3 numbers per bucket per side) matches
    the sampling estimators' tuple budget [theta * (|A| + |B|)]. *)

val estimate_join : t -> t -> float
(** Bucket-pairwise join size estimate (no predicates — histograms
    summarise unfiltered columns). *)

val estimate_join_range :
  ?low_a:Value.t -> ?high_a:Value.t -> t -> t -> float
(** The one predicate class histograms support: a range restriction on
    side A's join column, applied by bucket pruning with linear
    interpolation on boundary buckets. *)

val bucket_count : t -> int
val row_count : t -> int
val name : string
