lib/baselines/join_synopsis.ml: Array Csdl Float Predicate Repro_relation Repro_util Table Value
