lib/baselines/histogram.ml: Array Csdl Float List Option Repro_relation Table Value
