lib/baselines/independent.mli: Csdl Predicate Repro_relation Repro_util
