lib/baselines/agms.mli: Csdl Repro_relation Table
