lib/baselines/wander.ml: Array Csdl Predicate Repro_relation Repro_util Table Value
