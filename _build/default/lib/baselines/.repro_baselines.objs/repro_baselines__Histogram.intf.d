lib/baselines/histogram.mli: Csdl Repro_relation Table Value
