lib/baselines/join_synopsis.mli: Csdl Predicate Repro_relation Repro_util
