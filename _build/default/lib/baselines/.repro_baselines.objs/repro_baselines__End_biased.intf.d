lib/baselines/end_biased.mli: Csdl Predicate Repro_relation Repro_util
