lib/baselines/agms.ml: Array Csdl Int64 Repro_relation Repro_util Table Value
