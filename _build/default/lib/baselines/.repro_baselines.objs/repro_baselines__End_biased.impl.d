lib/baselines/end_biased.ml: Array Csdl Float List Predicate Repro_relation Repro_util Table Value
