lib/baselines/independent.ml: Array Csdl Option Predicate Repro_relation Repro_util Table Value
