lib/baselines/wander.mli: Csdl Predicate Repro_relation Repro_util
