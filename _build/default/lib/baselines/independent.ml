open Repro_relation
module Prng = Repro_util.Prng

type t = {
  profile : Csdl.Profile.t;
  rate : float;
}

type synopsis = {
  rows_a : int array;
  rows_b : int array;
  prepared : t;
}

let name = "independent"

let prepare ~theta profile =
  if theta <= 0.0 || theta > 1.0 then
    invalid_arg "Independent.prepare: theta must be in (0, 1]";
  { profile; rate = theta }

let bernoulli_rows prng rate n =
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if Prng.bernoulli prng rate then kept := i :: !kept
  done;
  Array.of_list !kept

let draw t prng =
  let a = t.profile.Csdl.Profile.a and b = t.profile.Csdl.Profile.b in
  {
    rows_a = bernoulli_rows prng t.rate a.Csdl.Profile.cardinality;
    rows_b = bernoulli_rows prng t.rate b.Csdl.Profile.cardinality;
    prepared = t;
  }

let estimate ?(pred_a = Predicate.True) ?(pred_b = Predicate.True) t synopsis =
  let a = t.profile.Csdl.Profile.a and b = t.profile.Csdl.Profile.b in
  let table_a = a.Csdl.Profile.table and table_b = b.Csdl.Profile.table in
  let pass_a = Predicate.compile pred_a (Table.schema table_a) in
  let pass_b = Predicate.compile pred_b (Table.schema table_b) in
  let ia = Table.column_index table_a a.Csdl.Profile.column in
  let ib = Table.column_index table_b b.Csdl.Profile.column in
  (* hash the (smaller) B sample's join values, then probe with A's *)
  let b_counts = Value.Tbl.create 256 in
  Array.iter
    (fun r ->
      let row = Table.row table_b r in
      if pass_b row then
        match row.(ib) with
        | Value.Null -> ()
        | v ->
            Value.Tbl.replace b_counts v
              (1 + Option.value ~default:0 (Value.Tbl.find_opt b_counts v)))
    synopsis.rows_b;
  let joined = ref 0 in
  Array.iter
    (fun r ->
      let row = Table.row table_a r in
      if pass_a row then
        match row.(ia) with
        | Value.Null -> ()
        | v -> (
            match Value.Tbl.find_opt b_counts v with
            | Some c -> joined := !joined + c
            | None -> ()))
    synopsis.rows_a;
  float_of_int !joined /. (t.rate *. t.rate)

let estimate_once ?pred_a ?pred_b t prng =
  estimate ?pred_a ?pred_b t (draw t prng)

let synopsis_tuples synopsis =
  Array.length synopsis.rows_a + Array.length synopsis.rows_b
