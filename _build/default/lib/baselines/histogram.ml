open Repro_relation

type bucket = {
  lo : Value.t;
  hi : Value.t;
  rows : float;
  distinct : float;
}

type t = { buckets : bucket array; total_rows : int }

let name = "equi-depth histogram"

let plan_buckets ~theta (profile : Csdl.Profile.t) =
  (* 3 stored numbers per bucket, two histograms per join: match the
     sampling budget in stored scalars *)
  let budget = theta *. float_of_int profile.Csdl.Profile.total_rows in
  max 1 (int_of_float (budget /. 6.0))

let build ?(buckets = 64) table column =
  if buckets < 1 then invalid_arg "Histogram.build: buckets must be >= 1";
  let column_index = Table.column_index table column in
  let values =
    Table.fold
      (fun acc row ->
        match row.(column_index) with Value.Null -> acc | v -> v :: acc)
      [] table
  in
  let sorted = Array.of_list values in
  Array.sort Value.compare sorted;
  let n = Array.length sorted in
  if n = 0 then { buckets = [||]; total_rows = 0 }
  else begin
    let target = max 1 (n / buckets) in
    let out = ref [] in
    let start = ref 0 in
    while !start < n do
      (* provisional end, then extend so a value never straddles buckets *)
      let stop = ref (min (n - 1) (!start + target - 1)) in
      while !stop + 1 < n && Value.compare sorted.(!stop + 1) sorted.(!stop) = 0 do
        incr stop
      done;
      let rows = !stop - !start + 1 in
      let distinct = ref 1 in
      for i = !start + 1 to !stop do
        if Value.compare sorted.(i) sorted.(i - 1) <> 0 then incr distinct
      done;
      out :=
        {
          lo = sorted.(!start);
          hi = sorted.(!stop);
          rows = float_of_int rows;
          distinct = float_of_int !distinct;
        }
        :: !out;
      start := !stop + 1
    done;
    { buckets = Array.of_list (List.rev !out); total_rows = n }
  end

let bucket_count t = Array.length t.buckets
let row_count t = t.total_rows

(* fraction of bucket [b] lying inside [lo, hi] (inclusive); numeric
   interpolation when possible, all-or-nothing otherwise *)
let overlap_fraction b ~lo ~hi =
  if Value.compare b.hi lo < 0 || Value.compare b.lo hi > 0 then 0.0
  else if Value.compare b.lo lo >= 0 && Value.compare b.hi hi <= 0 then 1.0
  else
    match (Value.as_float b.lo, Value.as_float b.hi) with
    | Some blo, Some bhi when bhi > blo ->
        let clip_lo =
          match Value.as_float lo with
          | Some x -> Float.max blo x
          | None -> blo
        in
        let clip_hi =
          match Value.as_float hi with
          | Some x -> Float.min bhi x
          | None -> bhi
        in
        Float.max 0.0 ((clip_hi -. clip_lo) /. (bhi -. blo))
    | _ -> 1.0 (* non-numeric boundary bucket: keep it whole *)

let pair_contribution a b =
  (* overlapping value range of the two buckets *)
  let lo = if Value.compare a.lo b.lo >= 0 then a.lo else b.lo in
  let hi = if Value.compare a.hi b.hi <= 0 then a.hi else b.hi in
  if Value.compare lo hi > 0 then 0.0
  else begin
    let frac_a = overlap_fraction a ~lo ~hi in
    let frac_b = overlap_fraction b ~lo ~hi in
    let da = a.distinct *. frac_a and db = b.distinct *. frac_b in
    if da <= 0.0 || db <= 0.0 then 0.0
    else
      (* containment assumption: min of the overlapping distinct counts
         join, each carrying its bucket's average frequency *)
      let common = Float.min da db in
      common *. (a.rows /. a.distinct) *. (b.rows /. b.distinct)
  end

let estimate_join ta tb =
  let total = ref 0.0 in
  Array.iter
    (fun a ->
      Array.iter (fun b -> total := !total +. pair_contribution a b) tb.buckets)
    ta.buckets;
  !total

let estimate_join_range ?low_a ?high_a ta tb =
  let restrict bucket =
    let frac =
      match (low_a, high_a) with
      | None, None -> 1.0
      | _ ->
          let lo = Option.value ~default:bucket.lo low_a in
          let hi = Option.value ~default:bucket.hi high_a in
          overlap_fraction bucket ~lo ~hi
    in
    { bucket with rows = bucket.rows *. frac; distinct = bucket.distinct *. frac }
  in
  let restricted = { ta with buckets = Array.map restrict ta.buckets } in
  estimate_join restricted tb
