(** End-biased sampling (Estan & Naughton, ICDE 2006) — the correlated
    sampling family's direct ancestor. Each table keeps *all* tuples of a
    join value [v] with probability [min(1, f_v / T)] ([f_v] the value's
    frequency, [T] a threshold solved from the space budget); a hash
    function shared by both tables decides which values are kept, so the
    same values survive on both sides whenever possible. The join estimate
    sums [a_v b_v / min(p^A_v, p^B_v)] over values present in both samples
    — frequencies are exact for sampled values because their tuple sets
    are complete, which also makes runtime predicates fully supported. *)

open Repro_relation

type t

val prepare : theta:float -> Csdl.Profile.t -> t
(** Solves each table's threshold [T] by bisection so that the expected
    sample sizes are [theta * |A|] and [theta * |B|]. *)

type synopsis

val draw : t -> Repro_util.Prng.t -> synopsis
(** Draws the shared value-hash (the only randomness in the scheme). *)

val estimate :
  ?pred_a:Predicate.t -> ?pred_b:Predicate.t -> t -> synopsis -> float

val estimate_once :
  ?pred_a:Predicate.t -> ?pred_b:Predicate.t -> t -> Repro_util.Prng.t -> float

val synopsis_tuples : synopsis -> int
val name : string
