open Repro_relation
module Prng = Repro_util.Prng

type t = {
  profile : Csdl.Profile.t;
  walks : int;
}

let name = "wander join"

let prepare ~walks profile =
  if walks < 1 then invalid_arg "Wander.prepare: walks must be >= 1";
  { profile; walks }

let walks t = t.walks

let estimate ?(pred_a = Predicate.True) ?(pred_b = Predicate.True) t prng =
  let a = t.profile.Csdl.Profile.a and b = t.profile.Csdl.Profile.b in
  let table_a = a.Csdl.Profile.table and table_b = b.Csdl.Profile.table in
  let n_a = a.Csdl.Profile.cardinality in
  if n_a = 0 then 0.0
  else begin
    let pass_a = Predicate.compile pred_a (Table.schema table_a) in
    let pass_b = Predicate.compile pred_b (Table.schema table_b) in
    let ia = Table.column_index table_a a.Csdl.Profile.column in
    let total = ref 0.0 in
    for _ = 1 to t.walks do
      let row_a = Table.row table_a (Prng.int prng n_a) in
      if pass_a row_a then
        match row_a.(ia) with
        | Value.Null -> ()
        | v -> (
            (* follow the join index uniformly into B *)
            match Value.Tbl.find_opt b.Csdl.Profile.groups v with
            | None -> ()
            | Some rows_b ->
                let b_v = Array.length rows_b in
                let row_b = Table.row table_b rows_b.(Prng.int prng b_v) in
                if pass_b row_b then
                  total :=
                    !total +. (float_of_int n_a *. float_of_int b_v))
    done;
    !total /. float_of_int t.walks
  end


type chain_t = {
  tables : Csdl.Chain.tables;
  chain_walks : int;
  b_groups : int array Value.Tbl.t;
  a_groups : int array Value.Tbl.t;
  b_fk_index : int;
  c_fk_index : int;
}

let prepare_chain ~walks (tables : Csdl.Chain.tables) =
  if walks < 1 then invalid_arg "Wander.prepare_chain: walks must be >= 1";
  {
    tables;
    chain_walks = walks;
    b_groups = Table.group_by tables.Csdl.Chain.b tables.Csdl.Chain.b_pk;
    a_groups = Table.group_by tables.Csdl.Chain.a tables.Csdl.Chain.a_pk;
    b_fk_index = Table.column_index tables.Csdl.Chain.b tables.Csdl.Chain.b_fk;
    c_fk_index = Table.column_index tables.Csdl.Chain.c tables.Csdl.Chain.c_fk;
  }

let estimate_chain ?(pred_a = Predicate.True) ?(pred_b = Predicate.True)
    ?(pred_c = Predicate.True) t prng =
  let { Csdl.Chain.a; b; c; _ } = t.tables in
  let n_c = Table.cardinality c in
  if n_c = 0 then 0.0
  else begin
    let pass_a = Predicate.compile pred_a (Table.schema a) in
    let pass_b = Predicate.compile pred_b (Table.schema b) in
    let pass_c = Predicate.compile pred_c (Table.schema c) in
    let total = ref 0.0 in
    for _ = 1 to t.chain_walks do
      let row_c = Table.row c (Prng.int prng n_c) in
      if pass_c row_c then
        match row_c.(t.c_fk_index) with
        | Value.Null -> ()
        | v -> (
            match Value.Tbl.find_opt t.b_groups v with
            | None -> ()
            | Some rows_b ->
                (* Horvitz-Thompson: each uniform pick scales by its pool
                   size (1 for true key columns) *)
                let b_count = Array.length rows_b in
                let row_b = Table.row b rows_b.(Prng.int prng b_count) in
                if pass_b row_b then
                  match row_b.(t.b_fk_index) with
                  | Value.Null -> ()
                  | u -> (
                      match Value.Tbl.find_opt t.a_groups u with
                      | None -> ()
                      | Some rows_a ->
                          let a_count = Array.length rows_a in
                          let row_a =
                            Table.row a rows_a.(Prng.int prng a_count)
                          in
                          if pass_a row_a then
                            total :=
                              !total
                              +. float_of_int (b_count * a_count)))
    done;
    !total *. float_of_int n_c /. float_of_int t.chain_walks
  end
