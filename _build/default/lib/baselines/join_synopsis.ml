open Repro_relation
module Prng = Repro_util.Prng

type t = {
  fk : Csdl.Profile.side;
  pk : Csdl.Profile.side;
  fk_is_left : bool;
  rate : float;
}

type synopsis = {
  (* sampled FK rows with their PK partner (if any) *)
  pairs : (int * int option) array;
  prepared : t;
}

let name = "join synopsis"

let prepare ~theta (profile : Csdl.Profile.t) =
  if theta <= 0.0 || theta > 1.0 then
    invalid_arg "Join_synopsis.prepare: theta must be in (0, 1]";
  let a = profile.Csdl.Profile.a and b = profile.Csdl.Profile.b in
  let key_a = Csdl.Profile.is_key_side a and key_b = Csdl.Profile.is_key_side b in
  match (key_a, key_b) with
  | false, false -> Error "join synopses require a PK-FK join"
  | _ ->
      (* when both sides are keys either orientation works; prefer B as PK *)
      let fk, pk, fk_is_left = if key_b then (a, b, true) else (b, a, false) in
      let budget = theta *. float_of_int profile.Csdl.Profile.total_rows in
      let rate =
        Float.min 1.0
          (budget /. (2.0 *. float_of_int fk.Csdl.Profile.cardinality))
      in
      Ok { fk; pk; fk_is_left; rate }

let fk_is_left t = t.fk_is_left

let draw t prng =
  let fk_table = t.fk.Csdl.Profile.table in
  let column_index = Table.column_index fk_table t.fk.Csdl.Profile.column in
  let pairs = ref [] in
  for r = Table.cardinality fk_table - 1 downto 0 do
    if Prng.bernoulli prng t.rate then begin
      let partner =
        match (Table.row fk_table r).(column_index) with
        | Value.Null -> None
        | v -> (
            match Value.Tbl.find_opt t.pk.Csdl.Profile.groups v with
            | Some rows when Array.length rows > 0 -> Some rows.(0)
            | _ -> None)
      in
      pairs := (r, partner) :: !pairs
    end
  done;
  { pairs = Array.of_list !pairs; prepared = t }

let estimate ?(pred_fk = Predicate.True) ?(pred_pk = Predicate.True) t synopsis =
  let fk_table = t.fk.Csdl.Profile.table and pk_table = t.pk.Csdl.Profile.table in
  let pass_fk = Predicate.compile pred_fk (Table.schema fk_table) in
  let pass_pk = Predicate.compile pred_pk (Table.schema pk_table) in
  let hits =
    Array.fold_left
      (fun acc (fk_row, partner) ->
        match partner with
        | Some pk_row
          when pass_fk (Table.row fk_table fk_row)
               && pass_pk (Table.row pk_table pk_row) ->
            acc + 1
        | _ -> acc)
      0 synopsis.pairs
  in
  float_of_int hits /. t.rate

let estimate_once ?pred_fk ?pred_pk t prng =
  estimate ?pred_fk ?pred_pk t (draw t prng)

let synopsis_tuples synopsis =
  Array.fold_left
    (fun acc (_, partner) -> acc + 1 + match partner with Some _ -> 1 | None -> 0)
    0 synopsis.pairs
