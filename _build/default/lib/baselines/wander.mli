(** Wander join (Li, Wu, Yi & Zhao, SIGMOD 2016), the online-aggregation
    random-walk estimator the paper's technical report compares correlated
    sampling against. Unlike every other approach here it keeps {e no
    offline synopsis}: each walk picks a uniform tuple of A, follows the
    join index into B uniformly, and Horvitz–Thompson-weights the path:

    [J_walk = |A| * 1[c_A(t)] * b_{v(t)} * 1[c_B(s)]],   [s ~ U(B(v(t)))]

    whose average over walks is unbiased for the filtered join size. The
    trade-off surfaced in the baseline bench: excellent accuracy per unit
    of work, but the {e base tables and a join index must be available at
    estimation time} — precisely what a sampling synopsis avoids. *)

open Repro_relation

type t

val prepare : walks:int -> Csdl.Profile.t -> t
(** [walks >= 1]: the per-estimate walk budget. The benches use
    [theta * (|A| + |B|)] walks so the online work is comparable to the
    other estimators' synopsis sizes. *)

val estimate :
  ?pred_a:Predicate.t -> ?pred_b:Predicate.t -> t -> Repro_util.Prng.t -> float

val walks : t -> int
val name : string

(** {2 Chain queries}

    Multi-way joins are wander join's home turf: a walk starts at a
    uniform tuple of the FK table and follows the PK pointers leftward,
    each step deterministic (keys are unique), giving the unbiased
    per-walk estimator [|C| * prod of predicate indicators]. *)

type chain_t

val prepare_chain : walks:int -> Csdl.Chain.tables -> chain_t

val estimate_chain :
  ?pred_a:Predicate.t ->
  ?pred_b:Predicate.t ->
  ?pred_c:Predicate.t ->
  chain_t ->
  Repro_util.Prng.t ->
  float
