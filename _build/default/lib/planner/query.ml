open Repro_relation

type relation = {
  name : string;
  table : Table.t;
  predicate : Predicate.t;
}

type edge = {
  left : string;
  left_column : string;
  right : string;
  right_column : string;
}

type t = {
  relations : relation array;
  edges : edge list;
  index_of : (string, int) Hashtbl.t;
  filtered : int option array;  (* memoised filtered cardinalities *)
}

let make relations edges =
  if List.length relations < 2 then
    invalid_arg "Query.make: need at least two relations";
  let relations = Array.of_list relations in
  let index_of = Hashtbl.create (Array.length relations) in
  Array.iteri
    (fun i r ->
      if Hashtbl.mem index_of r.name then
        invalid_arg (Printf.sprintf "Query.make: duplicate relation %S" r.name);
      Hashtbl.add index_of r.name i)
    relations;
  let check_endpoint name column =
    match Hashtbl.find_opt index_of name with
    | None -> invalid_arg (Printf.sprintf "Query.make: unknown relation %S" name)
    | Some i ->
        let schema = Table.schema relations.(i).table in
        if not (Schema.mem schema column) then
          invalid_arg
            (Printf.sprintf "Query.make: relation %S has no column %S" name column)
  in
  List.iter
    (fun e ->
      check_endpoint e.left e.left_column;
      check_endpoint e.right e.right_column;
      if String.equal e.left e.right then
        invalid_arg "Query.make: self-loop edges are not supported")
    edges;
  (* connectivity check: BFS over the join graph *)
  let n = Array.length relations in
  let visited = Array.make n false in
  let rec visit i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter
        (fun e ->
          let l = Hashtbl.find index_of e.left
          and r = Hashtbl.find index_of e.right in
          if l = i then visit r;
          if r = i then visit l)
        edges
    end
  in
  visit 0;
  if not (Array.for_all Fun.id visited) then
    invalid_arg "Query.make: join graph is not connected";
  { relations; edges; index_of; filtered = Array.make n None }

let relation_count t = Array.length t.relations
let relation t i = t.relations.(i)

let relation_index t name =
  match Hashtbl.find_opt t.index_of name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Query: unknown relation %S" name)

let edges_within t indices =
  List.filter
    (fun e ->
      List.mem (relation_index t e.left) indices
      && List.mem (relation_index t e.right) indices)
    t.edges

let filtered_cardinality t i =
  match t.filtered.(i) with
  | Some c -> c
  | None ->
      let r = t.relations.(i) in
      let c =
        match r.predicate with
        | Predicate.True -> Table.cardinality r.table
        | p -> Table.cardinality (Predicate.apply p r.table)
      in
      t.filtered.(i) <- Some c;
      c
