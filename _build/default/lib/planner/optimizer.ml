type plan = Scan of int | Join of plan * plan

let rec relations_of = function
  | Scan i -> [ i ]
  | Join (l, r) -> relations_of l @ relations_of r

let rec to_string query = function
  | Scan i -> (Query.relation query i).Query.name
  | Join (l, r) ->
      Printf.sprintf "(%s ⋈ %s)" (to_string query l) (to_string query r)

(* subsets are bitmasks over relation indices *)
let bits_of_mask mask =
  let rec collect i mask acc =
    if mask = 0 then List.rev acc
    else if mask land 1 = 1 then collect (i + 1) (mask lsr 1) (i :: acc)
    else collect (i + 1) (mask lsr 1) acc
  in
  collect 0 mask []

let connected query mask =
  match bits_of_mask mask with
  | [] -> false
  | first :: _ as members ->
      let edges = Query.edges_within query members in
      let reached = Hashtbl.create 8 in
      Hashtbl.replace reached first ();
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun e ->
            let l = Query.relation_index query e.Query.left in
            let r = Query.relation_index query e.Query.right in
            let has x = Hashtbl.mem reached x in
            if has l && not (has r) then begin
              Hashtbl.replace reached r ();
              changed := true
            end;
            if has r && not (has l) then begin
              Hashtbl.replace reached l ();
              changed := true
            end)
          edges
      done;
      List.for_all (Hashtbl.mem reached) members

(* C_out: sum of intermediate result sizes over all internal nodes. *)
let rec cost_under model = function
  | Scan _ -> 0.0
  | Join (l, r) as node ->
      let members = relations_of node in
      Cardinality.subset_cardinality model members
      +. cost_under model l +. cost_under model r

let optimize query model =
  let n = Query.relation_count query in
  if n > 20 then invalid_arg "Optimizer.optimize: too many relations";
  let best : (plan * float) option array = Array.make (1 lsl n) None in
  for i = 0 to n - 1 do
    best.(1 lsl i) <- Some (Scan i, 0.0)
  done;
  (* iterate masks in increasing popcount order implicitly: numeric order
     suffices because every strict submask is numerically smaller *)
  for mask = 1 to (1 lsl n) - 1 do
    if best.(mask) = None && connected query mask then begin
      let members = bits_of_mask mask in
      let result_size = Cardinality.subset_cardinality model members in
      (* enumerate proper submask splits; consider each unordered pair once *)
      let sub = ref ((mask - 1) land mask) in
      while !sub > 0 do
        let other = mask land lnot !sub in
        if !sub < other then ()
        else begin
          match (best.(!sub), best.(other)) with
          | Some (pl, cl), Some (pr, cr) ->
              let cost = result_size +. cl +. cr in
              (match best.(mask) with
              | Some (_, existing) when existing <= cost -> ()
              | _ -> best.(mask) <- Some (Join (pl, pr), cost))
          | _ -> ()
        end;
        sub := (!sub - 1) land mask
      done
    end
  done;
  match best.((1 lsl n) - 1) with
  | Some result -> result
  | None -> invalid_arg "Optimizer.optimize: query graph is not connected"
