(** Plan execution: materialise an {!Optimizer.plan} over its query's base
    tables. Used to ground the optimizer's cost model in reality — the
    independence assumption behind {!Cardinality.subset_cardinality} can
    be checked against the sizes this module actually produces — and to
    verify that every plan for a query returns the same result size.

    Output schemas qualify columns as ["relation.column"], so the joined
    tuples of different relations never collide. *)

open Repro_relation

val execute : Query.t -> Optimizer.plan -> Table.t
(** Materialise the plan: scans apply the relations' predicates, joins are
    hash joins over {e all} query edges connecting the two sides. A join
    node whose sides share no edge is a Cartesian product — supported but
    O(|L| * |R|). *)

val true_cost : Query.t -> Optimizer.plan -> float
(** The plan's actual C_out: the summed cardinalities of every
    materialised intermediate (join-node) result. *)

val result_size : Query.t -> Optimizer.plan -> int
(** Cardinality of the plan's final result (identical across plans of the
    same query — a handy invariant for tests). *)
