(** Cardinality models for the optimizer.

    A model assigns every connected relation subset an estimated result
    size. Join estimators in this repository are pairwise, so multi-way
    sizes are composed the way classic optimizers do: the product of the
    filtered base cardinalities times the product of the per-edge join
    selectivities inside the subset,

    [card(S) = prod_{R in S} |sigma(R)| * prod_{e in S} sel(e)],
    [sel(e) = J_hat(e) / (|sigma(A)| * |sigma(B)|)]

    — exact for two relations, an independence approximation beyond (the
    same approximation every selectivity-based optimizer makes). *)

type t

val of_exact : Query.t -> t
(** Edge selectivities from exact join counts — the oracle model. *)

val of_csdl_opt : theta:float -> seed:int -> Query.t -> t
(** One CSDL-Opt synopsis per join edge (predicates applied online). *)

val of_spec : Csdl.Spec.t -> theta:float -> seed:int -> Query.t -> t
(** Same with any correlated-sampling spec (e.g. [Csdl.Spec.cs2l]). *)

val of_edge_estimator : Query.t -> (Query.edge -> float) -> t
(** Custom: supply the estimated filtered join size per edge. *)

val subset_cardinality : t -> int list -> float
(** Estimated result size of a relation-index subset (singletons give the
    filtered base cardinality). *)

val edge_selectivity : t -> Query.edge -> float
