(** Multi-way join queries for the optimizer: a set of named base
    relations (each with its selection predicate) connected by equijoin
    edges. This is the substrate on which cardinality estimation earns its
    keep — the paper's introduction motivates join-size estimation by
    cost-based join ordering, and {!Optimizer} closes that loop. *)

open Repro_relation

type relation = {
  name : string;
  table : Table.t;
  predicate : Predicate.t;
}

type edge = {
  left : string;  (** relation name *)
  left_column : string;
  right : string;
  right_column : string;
}

type t = private {
  relations : relation array;
  edges : edge list;
  index_of : (string, int) Hashtbl.t;
  filtered : int option array;  (** memoised filtered cardinalities *)
}

val make : relation list -> edge list -> t
(** Validates: at least two relations, unique names, every edge endpoint
    names a declared relation with an existing column, and the join graph
    is connected. Raises [Invalid_argument] otherwise. *)

val relation_count : t -> int
val relation : t -> int -> relation
val relation_index : t -> string -> int

val edges_within : t -> int list -> edge list
(** The edges whose two endpoints both lie in the given relation-index
    set. *)

val filtered_cardinality : t -> int -> int
(** Rows of one relation passing its predicate (memoised). *)
