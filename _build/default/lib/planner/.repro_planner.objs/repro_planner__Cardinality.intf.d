lib/planner/cardinality.mli: Csdl Query
