lib/planner/optimizer.ml: Array Cardinality Hashtbl List Printf Query
