lib/planner/cardinality.ml: Csdl Float Hashtbl Join List Query Repro_relation Repro_util
