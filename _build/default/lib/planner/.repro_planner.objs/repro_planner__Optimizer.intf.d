lib/planner/optimizer.mli: Cardinality Query
