lib/planner/query.ml: Array Fun Hashtbl List Predicate Printf Repro_relation Schema String Table
