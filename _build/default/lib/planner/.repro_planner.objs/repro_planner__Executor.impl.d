lib/planner/executor.ml: Array List Optimizer Predicate Query Repro_relation Schema Table Value
