lib/planner/executor.mli: Optimizer Query Repro_relation Table
