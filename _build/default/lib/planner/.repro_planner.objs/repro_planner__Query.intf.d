lib/planner/query.mli: Hashtbl Predicate Repro_relation Table
