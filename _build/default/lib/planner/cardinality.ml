open Repro_relation
module Prng = Repro_util.Prng

type t = {
  query : Query.t;
  selectivities : (Query.edge * float) list;
}

let selectivity_of_estimate query edge estimate =
  let a = Query.relation_index query edge.Query.left in
  let b = Query.relation_index query edge.Query.right in
  let ca = float_of_int (Query.filtered_cardinality query a) in
  let cb = float_of_int (Query.filtered_cardinality query b) in
  if ca <= 0.0 || cb <= 0.0 then 0.0 else Float.max 0.0 estimate /. (ca *. cb)

let of_edge_estimator query estimator =
  {
    query;
    selectivities =
      List.map
        (fun e -> (e, selectivity_of_estimate query e (estimator e)))
        query.Query.edges;
  }

let exact_edge_size query (e : Query.edge) =
  let rel name = Query.relation query (Query.relation_index query name) in
  let a = rel e.Query.left and b = rel e.Query.right in
  float_of_int
    (Join.pair_count
       (Join.filtered a.Query.table e.Query.left_column a.Query.predicate)
       (Join.filtered b.Query.table e.Query.right_column b.Query.predicate))

let of_exact query = of_edge_estimator query (exact_edge_size query)

let sampled_edge_size ~prepare ~theta ~seed query (e : Query.edge) =
  let rel name = Query.relation query (Query.relation_index query name) in
  let a = rel e.Query.left and b = rel e.Query.right in
  let profile =
    Csdl.Profile.of_tables a.Query.table e.Query.left_column b.Query.table
      e.Query.right_column
  in
  let estimator = prepare ~theta profile in
  let prng = Prng.create (Hashtbl.hash (seed, e.Query.left, e.Query.right)) in
  Csdl.Estimator.estimate_once ~pred_a:a.Query.predicate
    ~pred_b:b.Query.predicate estimator prng

let of_csdl_opt ~theta ~seed query =
  of_edge_estimator query
    (sampled_edge_size ~prepare:(fun ~theta p -> Csdl.Opt.prepare ~theta p)
       ~theta ~seed query)

let of_spec spec ~theta ~seed query =
  of_edge_estimator query
    (sampled_edge_size
       ~prepare:(fun ~theta p -> Csdl.Estimator.prepare spec ~theta p)
       ~theta ~seed query)

let edge_selectivity t edge =
  match
    List.find_opt
      (fun (e, _) ->
        e.Query.left = edge.Query.left && e.Query.right = edge.Query.right
        && e.Query.left_column = edge.Query.left_column
        && e.Query.right_column = edge.Query.right_column)
      t.selectivities
  with
  | Some (_, s) -> s
  | None -> invalid_arg "Cardinality.edge_selectivity: edge not in query"

let subset_cardinality t indices =
  let base =
    List.fold_left
      (fun acc i ->
        acc *. float_of_int (Query.filtered_cardinality t.query i))
      1.0 indices
  in
  let joined =
    List.fold_left
      (fun acc e -> acc *. edge_selectivity t e)
      base
      (Query.edges_within t.query indices)
  in
  joined
