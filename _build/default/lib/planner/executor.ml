open Repro_relation

let qualified_schema query i =
  let r = Query.relation query i in
  Schema.make
    (List.map
       (fun (name, ty) -> (r.Query.name ^ "." ^ name, ty))
       (Schema.columns (Table.schema r.Query.table)))

let scan query i =
  let r = Query.relation query i in
  let filtered =
    match r.Query.predicate with
    | Predicate.True -> r.Query.table
    | p -> Predicate.apply p r.Query.table
  in
  (* re-wrap rows under the qualified schema (rows are shared, not copied) *)
  let rows = Array.init (Table.cardinality filtered) (Table.row filtered) in
  Table.create (qualified_schema query i) rows

(* join conditions between two relation sets: (left column, right column)
   in qualified form, already oriented left-side-first *)
let conditions query left_members right_members =
  List.filter_map
    (fun e ->
      let l = Query.relation_index query e.Query.left in
      let r = Query.relation_index query e.Query.right in
      let qualify name column = name ^ "." ^ column in
      if List.mem l left_members && List.mem r right_members then
        Some
          ( qualify e.Query.left e.Query.left_column,
            qualify e.Query.right e.Query.right_column )
      else if List.mem r left_members && List.mem l right_members then
        Some
          ( qualify e.Query.right e.Query.right_column,
            qualify e.Query.left e.Query.left_column )
      else None)
    query.Query.edges

let hash_join left right conds =
  let left_schema = Table.schema left and right_schema = Table.schema right in
  let joined_schema =
    Schema.make (Schema.columns left_schema @ Schema.columns right_schema)
  in
  let rows = ref [] in
  (match conds with
  | [] ->
      (* Cartesian product *)
      Table.iter
        (fun lrow ->
          Table.iter
            (fun rrow -> rows := Array.append lrow rrow :: !rows)
            right)
        left
  | (lc, rc) :: rest ->
      let li = Table.column_index left lc in
      let groups = Table.group_by right rc in
      let residual =
        List.map
          (fun (lc, rc) ->
            (Table.column_index left lc, Table.column_index right rc))
          rest
      in
      Table.iter
        (fun lrow ->
          match lrow.(li) with
          | Value.Null -> ()
          | v -> (
              match Value.Tbl.find_opt groups v with
              | None -> ()
              | Some indices ->
                  Array.iter
                    (fun r ->
                      let rrow = Table.row right r in
                      let ok =
                        List.for_all
                          (fun (i, j) -> Value.equal lrow.(i) rrow.(j))
                          residual
                      in
                      if ok then rows := Array.append lrow rrow :: !rows)
                    indices))
        left);
  Table.create joined_schema (Array.of_list !rows)

let rec run query = function
  | Optimizer.Scan i -> (scan query i, 0.0)
  | Optimizer.Join (l, r) ->
      let left, cost_l = run query l in
      let right, cost_r = run query r in
      let conds =
        conditions query (Optimizer.relations_of l) (Optimizer.relations_of r)
      in
      let joined = hash_join left right conds in
      (joined, cost_l +. cost_r +. float_of_int (Table.cardinality joined))

let execute query plan = fst (run query plan)
let true_cost query plan = snd (run query plan)
let result_size query plan = Table.cardinality (execute query plan)
