(** Dynamic-programming join-order optimisation (DPsub over connected
    subgraphs, bushy plans) under the C_out cost model — the standard
    setting of the "how good are query optimizers" line of work the paper
    draws its q-error methodology from. The cost of a plan is the sum of
    the (estimated) sizes of all intermediate join results; the model
    supplying those sizes is pluggable, so plans built from CSDL-Opt
    estimates can be compared against plans built from exact
    cardinalities or from any baseline estimator. *)

type plan =
  | Scan of int  (** relation index *)
  | Join of plan * plan

val optimize : Query.t -> Cardinality.t -> plan * float
(** The C_out-optimal bushy plan under the model, with its estimated cost.
    Only connected sub-plans are enumerated (no Cartesian products);
    queries must therefore have connected join graphs (enforced by
    {!Query.make}). Exponential in the number of relations — fine for the
    <= 15-relation queries of this repository. *)

val cost_under : Cardinality.t -> plan -> float
(** Re-cost an existing plan under a (different) model: the tool for plan
    *regret* — [cost_under exact plan_estimated / cost_under exact
    plan_optimal] measures how much an estimator's errors hurt. *)

val relations_of : plan -> int list
val to_string : Query.t -> plan -> string
(** e.g. ["((title ⋈ mc) ⋈ mii)"]. *)
