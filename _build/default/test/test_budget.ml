(* Tests for Profile and Budget: the offline resolution of sampling rates. *)

open Repro_relation

let check_float = Alcotest.(check (float 1e-9))

let schema = Schema.make [ ("k", Schema.T_int); ("payload", Schema.T_string) ]

let table_of_counts counts =
  (* counts = [(value, multiplicity); ...] *)
  let rows =
    List.concat_map
      (fun (v, m) ->
        List.init m (fun i -> [| Value.Int v; Value.Str (Printf.sprintf "%d-%d" v i) |]))
      counts
  in
  Table.of_rows schema rows

let profile_of counts_a counts_b =
  Csdl.Profile.of_tables (table_of_counts counts_a) "k" (table_of_counts counts_b) "k"

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

let test_profile_frequencies () =
  let p = profile_of [ (1, 3); (2, 1) ] [ (1, 2); (3, 5) ] in
  Alcotest.(check int) "a_1" 3 (Csdl.Profile.frequency p.Csdl.Profile.a (Value.Int 1));
  Alcotest.(check int) "b_1" 2 (Csdl.Profile.frequency p.Csdl.Profile.b (Value.Int 1));
  Alcotest.(check int) "absent" 0 (Csdl.Profile.frequency p.Csdl.Profile.a (Value.Int 9))

let test_profile_shared_and_jvd () =
  let p = profile_of [ (1, 3); (2, 1) ] [ (1, 2); (3, 5) ] in
  Alcotest.(check int) "one shared value" 1 (Array.length p.Csdl.Profile.shared_values);
  (* jvd = min(2/4, 2/7) = 2/7 *)
  check_float "jvd" (2.0 /. 7.0) p.Csdl.Profile.jvd;
  Alcotest.(check int) "total rows" 11 p.Csdl.Profile.total_rows

let test_profile_true_join_size () =
  let p = profile_of [ (1, 3); (2, 2) ] [ (1, 4); (2, 5) ] in
  Alcotest.(check int) "3*4 + 2*5" 22 (Csdl.Profile.true_join_size p)

let test_profile_swap () =
  let p = profile_of [ (1, 3) ] [ (1, 2); (2, 2) ] in
  let s = Csdl.Profile.swap p in
  Alcotest.(check int) "swapped a-card" 4 s.Csdl.Profile.a.Csdl.Profile.cardinality;
  Alcotest.(check int) "swap preserves join size"
    (Csdl.Profile.true_join_size p)
    (Csdl.Profile.true_join_size s)

let test_profile_key_side () =
  let p = profile_of [ (1, 1); (2, 1); (3, 1) ] [ (1, 4); (1, 0) ] in
  Alcotest.(check bool) "a is key" true (Csdl.Profile.is_key_side p.Csdl.Profile.a);
  Alcotest.(check bool) "b is not" false (Csdl.Profile.is_key_side p.Csdl.Profile.b)

(* ------------------------------------------------------------------ *)
(* Budget: same-q resolution                                           *)
(* ------------------------------------------------------------------ *)

(* A profile big enough that theta * total is comfortably above the sentry
   floor: 20 values, 50 tuples each, both sides. *)
let big_profile =
  lazy
    (let counts = List.init 20 (fun i -> (i, 50)) in
     profile_of counts counts)

let test_budget_same_q_meets_budget () =
  let profile = Lazy.force big_profile in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta in
  let r = Csdl.Budget.resolve spec ~theta:0.1 profile in
  (* charged = A-side sentries (20) + non-sentry tuples; the B-side
     sentries (20) ride on top *)
  Alcotest.(check (float 1.0)) "expected size = budget + B sentries"
    (r.Csdl.Budget.budget +. 20.0)
    r.Csdl.Budget.expected_size;
  (match r.Csdl.Budget.q_rate with
  | Csdl.Budget.Const q ->
      Alcotest.(check bool) "q near theta" true (q > 0.08 && q < 0.13)
  | Csdl.Budget.Scaled _ | Csdl.Budget.Blended _ ->
      Alcotest.fail "expected constant q")

let test_budget_first_level_sentries_can_exhaust () =
  (* 100 distinct values, 2 tuples each; theta tiny: the 100 first-level
     sentries alone exceed the 4-tuple budget, so q clamps to 0 and the
     synopsis degrades to the sentry floor — the paper's Table V collapse
     of the p = 1 variants on large-jvd data. *)
  let counts = List.init 100 (fun i -> (i, 2)) in
  let profile = profile_of counts counts in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta in
  let r = Csdl.Budget.resolve spec ~theta:0.01 profile in
  (match r.Csdl.Budget.q_rate with
  | Csdl.Budget.Const q -> check_float "q clamps to 0" 0.0 q
  | Csdl.Budget.Scaled _ | Csdl.Budget.Blended _ ->
      Alcotest.fail "expected constant q");
  Alcotest.(check bool) "sentries overshoot budget" true
    (r.Csdl.Budget.expected_size > r.Csdl.Budget.budget)

let test_budget_semijoin_sentries_ride_on_top () =
  (* Few values, many tuples: the A-side sentry cost (5) is well within
     the budget; q stays positive even though adding the B-side sentries
     would not change that here, the accounting is visible through
     expected_size = budget + |B sentries|. *)
  let counts = List.init 5 (fun i -> (i, 200)) in
  let profile = profile_of counts counts in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta in
  let r = Csdl.Budget.resolve spec ~theta:0.05 profile in
  Alcotest.(check (float 0.5)) "expected = budget + B sentries"
    (r.Csdl.Budget.budget +. 5.0)
    r.Csdl.Budget.expected_size

let test_budget_q_one_pinned () =
  let profile = Lazy.force big_profile in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_one in
  let r = Csdl.Budget.resolve spec ~theta:0.1 profile in
  match r.Csdl.Budget.q_rate with
  | Csdl.Budget.Const q -> check_float "q pinned at 1" 1.0 q
  | Csdl.Budget.Scaled _ | Csdl.Budget.Blended _ ->
      Alcotest.fail "expected constant q"

let test_budget_theta_validation () =
  let profile = Lazy.force big_profile in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta in
  Alcotest.check_raises "theta > 1"
    (Invalid_argument "Budget.resolve: theta must be in (0, 1]") (fun () ->
      ignore (Csdl.Budget.resolve spec ~theta:1.5 profile));
  Alcotest.check_raises "theta = 0"
    (Invalid_argument "Budget.resolve: theta must be in (0, 1]") (fun () ->
      ignore (Csdl.Budget.resolve spec ~theta:0.0 profile))

(* ------------------------------------------------------------------ *)
(* Budget: diff resolutions                                            *)
(* ------------------------------------------------------------------ *)

(* Skewed profile: frequencies spanning two orders of magnitude. *)
let skewed_profile =
  lazy
    (let counts = List.init 30 (fun i -> (i, 5 + (i * i))) in
     profile_of counts counts)

let test_budget_diff_q_meets_budget () =
  let profile = Lazy.force skewed_profile in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff in
  let r = Csdl.Budget.resolve spec ~theta:0.1 profile in
  (* expected size = budget (charged) + one semijoin sentry per value *)
  let target = r.Csdl.Budget.budget +. 30.0 in
  let tolerance = 0.02 *. target in
  Alcotest.(check bool) "expected size within 2% of budget + sentries" true
    (Float.abs (r.Csdl.Budget.expected_size -. target) < tolerance)

let test_budget_diff_q_monotone_in_frequency () =
  let profile = Lazy.force skewed_profile in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff in
  let r = Csdl.Budget.resolve spec ~theta:0.1 profile in
  let q v = Csdl.Budget.q_of r profile (Value.Int v) in
  (* value 29 has frequency 846, value 1 has 6: q_29 >= q_1 *)
  Alcotest.(check bool) "heavier value gets higher q" true (q 29 >= q 1);
  Alcotest.(check bool) "q capped at 1" true (q 29 <= 1.0)

let test_budget_diff_p_skips_non_joining () =
  (* value 99 exists only in A; diff variants must assign it p = 0. *)
  let profile = profile_of [ (1, 10); (99, 10) ] [ (1, 10) ] in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_diff Csdl.Spec.L_theta in
  let r = Csdl.Budget.resolve spec ~theta:0.3 profile in
  check_float "non-joining skipped" 0.0
    (Csdl.Budget.p_of r profile (Value.Int 99));
  Alcotest.(check bool) "joining kept" true
    (Csdl.Budget.p_of r profile (Value.Int 1) > 0.0)

let test_budget_same_q_keeps_non_joining () =
  let profile = profile_of [ (1, 10); (99, 10) ] [ (1, 10) ] in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta in
  let r = Csdl.Budget.resolve spec ~theta:0.3 profile in
  check_float "p stays 1 for all values" 1.0
    (Csdl.Budget.p_of r profile (Value.Int 99))

let test_budget_base_q_matches_same_q_variant () =
  (* For the same p level, the diff variant's base_q must equal the q the
     same-q variant resolves to — that is Eq. 6's premise. *)
  let profile = Lazy.force skewed_profile in
  let diff = Csdl.Budget.resolve (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff)
      ~theta:0.1 profile in
  let same = Csdl.Budget.resolve (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta)
      ~theta:0.1 profile in
  (match same.Csdl.Budget.q_rate with
  | Csdl.Budget.Const q ->
      Alcotest.(check (float 1e-6)) "base_q = same-q rate" q diff.Csdl.Budget.base_q
  | Csdl.Budget.Scaled _ | Csdl.Budget.Blended _ -> Alcotest.fail "expected constant");
  (* and for a same-q variant, base_q is just its own q *)
  match same.Csdl.Budget.q_rate with
  | Csdl.Budget.Const q -> check_float "own base_q" q same.Csdl.Budget.base_q
  | Csdl.Budget.Scaled _ | Csdl.Budget.Blended _ -> Alcotest.fail "expected constant"

let test_budget_diff_both_shared_constant () =
  let profile = Lazy.force skewed_profile in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_diff Csdl.Spec.L_diff in
  let r = Csdl.Budget.resolve spec ~theta:0.1 profile in
  match (r.Csdl.Budget.p_rate, r.Csdl.Budget.q_rate) with
  | Csdl.Budget.Scaled c1, Csdl.Budget.Scaled c2 ->
      check_float "shared constant" c1 c2
  | _ -> Alcotest.fail "expected scaled rates on both levels"

let test_budget_u_defaults_to_q () =
  let profile = Lazy.force big_profile in
  let r =
    Csdl.Budget.resolve (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta)
      ~theta:0.1 profile
  in
  check_float "u = q"
    (Csdl.Budget.q_of r profile (Value.Int 3))
    (Csdl.Budget.u_of r profile (Value.Int 3))

let test_budget_cs2_u_is_one () =
  let profile = Lazy.force big_profile in
  let r = Csdl.Budget.resolve Csdl.Spec.cs2 ~theta:0.1 profile in
  check_float "CS2 u = 1" 1.0 (Csdl.Budget.u_of r profile (Value.Int 3));
  check_float "CS2 q = theta" 0.1 (Csdl.Budget.q_of r profile (Value.Int 3));
  check_float "CS2 p = 1" 1.0 (Csdl.Budget.p_of r profile (Value.Int 3))

(* ------------------------------------------------------------------ *)
(* Variance formula and CS2L optimisation                              *)
(* ------------------------------------------------------------------ *)

let test_scaling_variance_hand_computed () =
  (* One shared value with a=2, b=2, p=1, q=u=1/2.
     E[A^2] = 4 + 1*(1/2)/(1/2) = 5; same for B. Var = 5*5 - 16 = 9. *)
  let profile = profile_of [ (1, 2) ] [ (1, 2) ] in
  check_float "variance" 9.0
    (Csdl.Budget.scaling_variance profile ~p:(fun _ -> 1.0) ~q:0.5 ~u:0.5)

let test_scaling_variance_zero_when_full () =
  let profile = profile_of [ (1, 3); (2, 4) ] [ (1, 2); (2, 1) ] in
  check_float "full sampling has zero variance" 0.0
    (Csdl.Budget.scaling_variance profile ~p:(fun _ -> 1.0) ~q:1.0 ~u:1.0)

let test_scaling_variance_infinite_cases () =
  let profile = profile_of [ (1, 2) ] [ (1, 2) ] in
  check_float "q = 0" Float.infinity
    (Csdl.Budget.scaling_variance profile ~p:(fun _ -> 1.0) ~q:0.0 ~u:0.5);
  check_float "p = 0" Float.infinity
    (Csdl.Budget.scaling_variance profile ~p:(fun _ -> 0.0) ~q:0.5 ~u:0.5)

let test_cs2l_resolution_within_budget () =
  let profile = Lazy.force skewed_profile in
  let r = Csdl.Budget.resolve Csdl.Spec.cs2l ~theta:0.1 profile in
  Alcotest.(check bool) "within 10% of budget" true
    (r.Csdl.Budget.expected_size < 1.1 *. r.Csdl.Budget.budget);
  match r.Csdl.Budget.p_rate with
  | Csdl.Budget.Scaled d -> Alcotest.(check bool) "positive p constant" true (d > 0.0)
  | Csdl.Budget.Const _ | Csdl.Budget.Blended _ ->
      Alcotest.fail "CS2L p must be scaled"

let test_cs2l_picks_full_sampling_at_theta_one () =
  (* With theta = 1 the whole data fits; variance-minimising CS2L should
     resolve to (effectively) full sampling with zero variance. *)
  let profile = profile_of [ (1, 5); (2, 3) ] [ (1, 4); (2, 6) ] in
  let r = Csdl.Budget.resolve Csdl.Spec.cs2l ~theta:1.0 profile in
  (match r.Csdl.Budget.q_rate with
  | Csdl.Budget.Const q -> check_float "q = 1" 1.0 q
  | Csdl.Budget.Scaled _ | Csdl.Budget.Blended _ ->
      Alcotest.fail "expected constant q");
  check_float "p saturates" 1.0 (Csdl.Budget.p_of r profile (Value.Int 1))

(* ------------------------------------------------------------------ *)
(* Heavy-hitter approximated CS2L                                      *)
(* ------------------------------------------------------------------ *)

let hh_profile =
  lazy
    ((* two mega-values plus a flat tail *)
     let counts = (100, 400) :: (101, 300) :: List.init 40 (fun i -> (i, 5)) in
     profile_of counts counts)

let test_cs2l_approx_blended_rates () =
  let profile = Lazy.force hh_profile in
  let r = Csdl.Budget.resolve (Csdl.Spec.cs2l_approx ~k:2 ()) ~theta:0.05 profile in
  (match r.Csdl.Budget.p_rate with
  | Csdl.Budget.Blended { heavy; _ } ->
      Alcotest.(check int) "two heavy values" 2
        (Value.Tbl.length heavy);
      Alcotest.(check bool) "mega-value is heavy" true
        (Value.Tbl.mem heavy (Value.Int 100))
  | _ -> Alcotest.fail "expected blended p rate");
  (* every tail value shares the same first-level rate *)
  let p v = Csdl.Budget.p_of r profile (Value.Int v) in
  check_float "tail rates uniform" (p 1) (p 37);
  Alcotest.(check bool) "heavy rate >= tail rate" true (p 100 >= p 1)

let test_cs2l_approx_matches_exact_when_k_large () =
  (* with k covering every value the approximation is the identity *)
  let profile = Lazy.force hh_profile in
  let exact = Csdl.Budget.resolve Csdl.Spec.cs2l ~theta:0.05 profile in
  let approx =
    Csdl.Budget.resolve (Csdl.Spec.cs2l_approx ~k:1000 ()) ~theta:0.05 profile
  in
  List.iter
    (fun v ->
      check_float
        (Printf.sprintf "p_%d equal" v)
        (Csdl.Budget.p_of exact profile (Value.Int v))
        (Csdl.Budget.p_of approx profile (Value.Int v)))
    [ 0; 5; 100; 101 ]

let test_cs2l_approx_estimates_run () =
  let profile = Lazy.force hh_profile in
  let est =
    Csdl.Estimator.prepare ~sample_first:`A (Csdl.Spec.cs2l_approx ~k:2 ())
      ~theta:0.3 profile
  in
  let prng = Repro_util.Prng.create 3 in
  let qs =
    Array.init 15 (fun _ ->
        let truth = float_of_int (Csdl.Profile.true_join_size profile) in
        Repro_stats.Qerror.compute ~truth
          ~estimate:(Csdl.Estimator.estimate_once est prng))
  in
  let median = Repro_util.Summary.median qs in
  Alcotest.(check bool)
    (Printf.sprintf "median q-error %.2f finite" median)
    true
    (Float.is_finite median)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let random_profile_gen =
  QCheck.Gen.(
    let counts =
      list_size (int_range 1 15)
        (pair (int_range 0 9) (int_range 1 20))
    in
    pair counts counts)

let all_specs =
  Csdl.Spec.csdl_variants @ [ Csdl.Spec.cs2; Csdl.Spec.cso; Csdl.Spec.cs2l ]

let prop_rates_are_probabilities =
  QCheck.Test.make ~count:60 ~name:"resolved rates lie in [0,1]"
    (QCheck.make random_profile_gen)
    (fun (ca, cb) ->
      let dedup l = List.sort_uniq (fun (a, _) (b, _) -> compare a b) l in
      let profile = profile_of (dedup ca) (dedup cb) in
      List.for_all
        (fun spec ->
          let r = Csdl.Budget.resolve spec ~theta:0.2 profile in
          List.for_all
            (fun v ->
              let v = Value.Int v in
              let p = Csdl.Budget.p_of r profile v in
              let q = Csdl.Budget.q_of r profile v in
              let u = Csdl.Budget.u_of r profile v in
              p >= 0.0 && p <= 1.0 && q >= 0.0 && q <= 1.0 && u >= 0.0 && u <= 1.0)
            (List.init 10 Fun.id))
        all_specs)

let prop_expected_size_scales_with_theta =
  QCheck.Test.make ~count:40 ~name:"bigger theta never shrinks the synopsis"
    (QCheck.make random_profile_gen)
    (fun (ca, cb) ->
      let dedup l = List.sort_uniq (fun (a, _) (b, _) -> compare a b) l in
      let profile = profile_of (dedup ca) (dedup cb) in
      let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff in
      let small = Csdl.Budget.resolve spec ~theta:0.05 profile in
      let large = Csdl.Budget.resolve spec ~theta:0.5 profile in
      large.Csdl.Budget.expected_size >= small.Csdl.Budget.expected_size -. 1e-9)

let () =
  Alcotest.run "csdl_budget"
    [
      ( "profile",
        [
          Alcotest.test_case "frequencies" `Quick test_profile_frequencies;
          Alcotest.test_case "shared/jvd" `Quick test_profile_shared_and_jvd;
          Alcotest.test_case "true join size" `Quick test_profile_true_join_size;
          Alcotest.test_case "swap" `Quick test_profile_swap;
          Alcotest.test_case "key side" `Quick test_profile_key_side;
        ] );
      ( "same_q",
        [
          Alcotest.test_case "meets budget" `Quick test_budget_same_q_meets_budget;
          Alcotest.test_case "first-level sentry exhaustion" `Quick
            test_budget_first_level_sentries_can_exhaust;
          Alcotest.test_case "semijoin sentries ride on top" `Quick
            test_budget_semijoin_sentries_ride_on_top;
          Alcotest.test_case "q=1 pinned" `Quick test_budget_q_one_pinned;
          Alcotest.test_case "theta validation" `Quick test_budget_theta_validation;
        ] );
      ( "diff",
        [
          Alcotest.test_case "diff-q meets budget" `Quick test_budget_diff_q_meets_budget;
          Alcotest.test_case "diff-q monotone" `Quick test_budget_diff_q_monotone_in_frequency;
          Alcotest.test_case "diff-p skips non-joining" `Quick
            test_budget_diff_p_skips_non_joining;
          Alcotest.test_case "same-q keeps non-joining" `Quick
            test_budget_same_q_keeps_non_joining;
          Alcotest.test_case "base_q = same-q rate" `Quick
            test_budget_base_q_matches_same_q_variant;
          Alcotest.test_case "diff-diff shared constant" `Quick
            test_budget_diff_both_shared_constant;
          Alcotest.test_case "u defaults to q" `Quick test_budget_u_defaults_to_q;
          Alcotest.test_case "CS2 u=1" `Quick test_budget_cs2_u_is_one;
        ] );
      ( "variance",
        [
          Alcotest.test_case "hand computed" `Quick test_scaling_variance_hand_computed;
          Alcotest.test_case "zero when full" `Quick test_scaling_variance_zero_when_full;
          Alcotest.test_case "infinite cases" `Quick test_scaling_variance_infinite_cases;
          Alcotest.test_case "CS2L within budget" `Quick test_cs2l_resolution_within_budget;
          Alcotest.test_case "CS2L full at theta=1" `Quick
            test_cs2l_picks_full_sampling_at_theta_one;
        ] );
      ( "cs2l_approx",
        [
          Alcotest.test_case "blended rates" `Quick test_cs2l_approx_blended_rates;
          Alcotest.test_case "k large = exact" `Quick
            test_cs2l_approx_matches_exact_when_k_large;
          Alcotest.test_case "estimates run" `Quick test_cs2l_approx_estimates_run;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rates_are_probabilities; prop_expected_size_scales_with_theta ] );
    ]
