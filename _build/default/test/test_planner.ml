(* Tests for the join-order optimizer substrate. *)

open Repro_relation
open Repro_planner
module Prng = Repro_util.Prng

let schema name =
  Schema.make [ (name ^ "_k", Schema.T_int); (name ^ "_x", Schema.T_int) ]

let table name rows_spec =
  Table.of_rows (schema name)
    (List.concat_map
       (fun (v, m) ->
         List.init m (fun i -> [| Value.Int v; Value.Int i |]))
       rows_spec)

let rel name rows_spec =
  { Query.name; table = table name rows_spec; predicate = Predicate.True }

let edge l r = { Query.left = l; left_column = l ^ "_k"; right = r; right_column = r ^ "_k" }

(* A 3-relation chain: a -- b -- c, all joining on the same key domain. *)
let chain_query () =
  Query.make
    [
      rel "a" [ (1, 4); (2, 2) ];
      rel "b" [ (1, 3); (2, 5); (3, 1) ];
      rel "c" [ (1, 2); (3, 7) ];
    ]
    [ edge "a" "b"; edge "b" "c" ]

(* ------------------------------------------------------------------ *)
(* Query                                                               *)
(* ------------------------------------------------------------------ *)

let test_query_validation () =
  Alcotest.check_raises "single relation"
    (Invalid_argument "Query.make: need at least two relations") (fun () ->
      ignore (Query.make [ rel "a" [ (1, 1) ] ] []));
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Query.make: duplicate relation \"a\"") (fun () ->
      ignore (Query.make [ rel "a" [ (1, 1) ]; rel "a" [ (1, 1) ] ] []));
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Query.make: join graph is not connected") (fun () ->
      ignore (Query.make [ rel "a" [ (1, 1) ]; rel "b" [ (1, 1) ] ] []));
  Alcotest.check_raises "unknown column"
    (Invalid_argument "Query.make: relation \"b\" has no column \"b_zzz\"")
    (fun () ->
      ignore
        (Query.make
           [ rel "a" [ (1, 1) ]; rel "b" [ (1, 1) ] ]
           [ { Query.left = "a"; left_column = "a_k"; right = "b"; right_column = "b_zzz" } ]))

let test_query_filtered_cardinality () =
  let q =
    Query.make
      [
        {
          Query.name = "a";
          table = table "a" [ (1, 10) ];
          predicate = Predicate.Compare (Predicate.Lt, "a_x", Value.Int 4);
        };
        rel "b" [ (1, 2) ];
      ]
      [ edge "a" "b" ]
  in
  Alcotest.(check int) "filtered" 4 (Query.filtered_cardinality q 0);
  Alcotest.(check int) "unfiltered" 2 (Query.filtered_cardinality q 1)

let test_query_edges_within () =
  let q = chain_query () in
  Alcotest.(check int) "full set has both edges" 2
    (List.length (Query.edges_within q [ 0; 1; 2 ]));
  Alcotest.(check int) "a-c alone share no edge" 0
    (List.length (Query.edges_within q [ 0; 2 ]))

(* ------------------------------------------------------------------ *)
(* Cardinality                                                         *)
(* ------------------------------------------------------------------ *)

let test_exact_pairwise_cardinality () =
  let q = chain_query () in
  let model = Cardinality.of_exact q in
  (* a |><| b = 4*3 + 2*5 = 22 *)
  Alcotest.(check (float 1e-6)) "pair a-b exact" 22.0
    (Cardinality.subset_cardinality model [ 0; 1 ]);
  (* b |><| c = 3*2 + 1*7 = 13 *)
  Alcotest.(check (float 1e-6)) "pair b-c exact" 13.0
    (Cardinality.subset_cardinality model [ 1; 2 ])

let test_singleton_cardinality () =
  let q = chain_query () in
  let model = Cardinality.of_exact q in
  Alcotest.(check (float 1e-6)) "singleton = base size" 6.0
    (Cardinality.subset_cardinality model [ 0 ])

let test_three_way_independence_combination () =
  let q = chain_query () in
  let model = Cardinality.of_exact q in
  (* card(abc) = |a||b||c| * sel(ab) * sel(bc)
     = 6*9*9 * (22/54) * (13/81) *)
  let expected = 6.0 *. 9.0 *. 9.0 *. (22.0 /. 54.0) *. (13.0 /. 81.0) in
  Alcotest.(check (float 1e-6)) "triple" expected
    (Cardinality.subset_cardinality model [ 0; 1; 2 ])

let test_custom_estimator_model () =
  let q = chain_query () in
  let model = Cardinality.of_edge_estimator q (fun _ -> 10.0) in
  (* sel = 10 / (|a| |b|) etc. *)
  Alcotest.(check (float 1e-6)) "custom pair" 10.0
    (Cardinality.subset_cardinality model [ 0; 1 ])

let test_csdl_model_reasonable () =
  let q = chain_query () in
  let exact = Cardinality.of_exact q in
  let sampled = Cardinality.of_csdl_opt ~theta:1.0 ~seed:7 q in
  (* at theta=1 the diff variants still sample; allow a loose band *)
  let e = Cardinality.subset_cardinality exact [ 0; 1 ] in
  let s = Cardinality.subset_cardinality sampled [ 0; 1 ] in
  Alcotest.(check bool)
    (Printf.sprintf "sampled %.1f within 4x of exact %.1f" s e)
    true
    (s > e /. 4.0 && s < e *. 4.0)

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_optimizer_picks_cheaper_side () =
  (* chain a-b-c where (b |><| c) is much smaller than (a |><| b): the
     C_out-optimal left-deep plan starts with the b-c join. *)
  let q =
    Query.make
      [
        rel "a" [ (1, 50) ];
        rel "b" [ (1, 40); (9, 1) ];
        rel "c" [ (9, 2) ];
      ]
      [ edge "a" "b"; edge "b" "c" ]
  in
  let model = Cardinality.of_exact q in
  let plan, cost = Optimizer.optimize q model in
  (* join sizes: ab = 2000, bc = 2; abc via independence. The inner join
     must be {b, c} (operand order is arbitrary). *)
  (match plan with
  | Optimizer.Join (inner, Optimizer.Scan 0)
  | Optimizer.Join (Optimizer.Scan 0, inner) ->
      Alcotest.(check (list int)) "inner join is b-c" [ 1; 2 ]
        (List.sort compare (Optimizer.relations_of inner))
  | _ -> Alcotest.failf "unexpected plan %s" (Optimizer.to_string q plan));
  Alcotest.(check bool) "cost positive" true (cost > 0.0)

let test_optimizer_covers_all_relations () =
  let q = chain_query () in
  let model = Cardinality.of_exact q in
  let plan, _ = Optimizer.optimize q model in
  Alcotest.(check (list int)) "all relations once" [ 0; 1; 2 ]
    (List.sort compare (Optimizer.relations_of plan))

let test_optimizer_no_cartesian_products () =
  (* in a chain a-b-c the pair (a,c) is disconnected; the optimal plan
     must never join them directly *)
  let q = chain_query () in
  let model = Cardinality.of_exact q in
  let plan, _ = Optimizer.optimize q model in
  let rec check = function
    | Optimizer.Scan _ -> ()
    | Optimizer.Join (l, r) as node ->
        let members = List.sort compare (Optimizer.relations_of node) in
        if members = [ 0; 2 ] then Alcotest.fail "cartesian product used";
        check l;
        check r
  in
  check plan

let test_optimizer_cost_matches_cost_under () =
  let q = chain_query () in
  let model = Cardinality.of_exact q in
  let plan, cost = Optimizer.optimize q model in
  Alcotest.(check (float 1e-6)) "self-consistent" cost
    (Optimizer.cost_under model plan)

let test_optimizer_optimal_among_alternatives () =
  (* brute-force check on 3 relations: the two left-deep alternatives *)
  let q = chain_query () in
  let model = Cardinality.of_exact q in
  let _, cost = Optimizer.optimize q model in
  let alt1 = Optimizer.Join (Optimizer.Join (Scan 0, Scan 1), Scan 2) in
  let alt2 = Optimizer.Join (Optimizer.Join (Scan 1, Scan 2), Scan 0) in
  Alcotest.(check bool) "beats alt1" true
    (cost <= Optimizer.cost_under model alt1 +. 1e-9);
  Alcotest.(check bool) "beats alt2" true
    (cost <= Optimizer.cost_under model alt2 +. 1e-9)

let test_plan_regret_of_bad_model () =
  (* a model that inverts the edge sizes leads the optimizer to a plan
     whose true cost is at least the optimal true cost *)
  let q =
    Query.make
      [
        rel "a" [ (1, 50) ];
        rel "b" [ (1, 40); (9, 1) ];
        rel "c" [ (9, 2) ];
      ]
      [ edge "a" "b"; edge "b" "c" ]
  in
  let exact = Cardinality.of_exact q in
  let inverted =
    Cardinality.of_edge_estimator q (fun e ->
        if e.Query.left = "a" then 1.0 else 100000.0)
  in
  let optimal_plan, _ = Optimizer.optimize q exact in
  let misled_plan, _ = Optimizer.optimize q inverted in
  let regret =
    Optimizer.cost_under exact misled_plan
    /. Optimizer.cost_under exact optimal_plan
  in
  Alcotest.(check bool)
    (Printf.sprintf "regret %.1f >= 1" regret)
    true (regret >= 1.0);
  Alcotest.(check bool) "bad model changed the plan" true
    (Optimizer.to_string q misled_plan <> Optimizer.to_string q optimal_plan)

(* five relations in a star: fact joins four dims; make sure DP scales and
   stays connected *)
let test_optimizer_five_relation_star () =
  let fact_schema =
    Schema.make
      [ ("f1", Schema.T_int); ("f2", Schema.T_int); ("f3", Schema.T_int);
        ("f4", Schema.T_int) ]
  in
  let prng = Prng.create 3 in
  let fact =
    Table.create fact_schema
      (Array.init 100 (fun _ ->
           Array.init 4 (fun _ -> Value.Int (1 + Prng.int prng 10))))
  in
  let dim name =
    {
      Query.name;
      table = table name (List.init 10 (fun i -> (i + 1, 1)));
      predicate = Predicate.True;
    }
  in
  let q =
    Query.make
      ({ Query.name = "f"; table = fact; predicate = Predicate.True }
      :: List.map dim [ "d1"; "d2"; "d3"; "d4" ])
      (List.mapi
         (fun i d ->
           {
             Query.left = "f";
             left_column = Printf.sprintf "f%d" (i + 1);
             right = d;
             right_column = d ^ "_k";
           })
         [ "d1"; "d2"; "d3"; "d4" ])
  in
  let model = Cardinality.of_exact q in
  let plan, cost = Optimizer.optimize q model in
  Alcotest.(check int) "covers 5 relations" 5
    (List.length (Optimizer.relations_of plan));
  Alcotest.(check bool) "finite cost" true (Float.is_finite cost)

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

let test_executor_pair_matches_join_count () =
  let q = chain_query () in
  let plan = Optimizer.Join (Optimizer.Scan 0, Optimizer.Scan 1) in
  let result = Executor.execute q plan in
  Alcotest.(check int) "a |><| b" 22 (Table.cardinality result);
  (* qualified columns exist *)
  let schema = Table.schema result in
  Alcotest.(check bool) "a.a_k present" true (Schema.mem schema "a.a_k");
  Alcotest.(check bool) "b.b_k present" true (Schema.mem schema "b.b_k")

let test_executor_result_size_plan_invariant () =
  let q = chain_query () in
  let p1 = Optimizer.Join (Optimizer.Join (Scan 0, Scan 1), Scan 2) in
  let p2 = Optimizer.Join (Scan 0, Optimizer.Join (Scan 1, Scan 2)) in
  Alcotest.(check int) "same result size"
    (Executor.result_size q p1) (Executor.result_size q p2)

let test_executor_join_values_actually_match () =
  let q = chain_query () in
  let plan = Optimizer.Join (Optimizer.Scan 0, Optimizer.Scan 1) in
  let result = Executor.execute q plan in
  let ia = Table.column_index result "a.a_k" in
  let ib = Table.column_index result "b.b_k" in
  Table.iter
    (fun row ->
      if not (Value.equal row.(ia) row.(ib)) then
        Alcotest.fail "join condition violated")
    result

let test_executor_applies_predicates () =
  let q =
    Query.make
      [
        {
          Query.name = "a";
          table = table "a" [ (1, 10) ];
          predicate = Predicate.Compare (Predicate.Lt, "a_x", Value.Int 4);
        };
        rel "b" [ (1, 2) ];
      ]
      [ edge "a" "b" ]
  in
  let plan = Optimizer.Join (Optimizer.Scan 0, Optimizer.Scan 1) in
  Alcotest.(check int) "filtered join" 8 (Executor.result_size q plan)

let test_executor_cartesian_product () =
  (* force a join between the disconnected pair (a, c) of the chain *)
  let q = chain_query () in
  let plan = Optimizer.Join (Optimizer.Scan 0, Optimizer.Scan 2) in
  Alcotest.(check int) "cartesian size" (6 * 9) (Executor.result_size q plan)

let test_executor_true_cost () =
  let q = chain_query () in
  let plan = Optimizer.Join (Optimizer.Join (Scan 1, Scan 2), Scan 0) in
  (* C_out = |b >< c| + |(b >< c) >< a| *)
  let bc = 13 in
  let abc = Executor.result_size q plan in
  Alcotest.(check (float 1e-9)) "true C_out"
    (float_of_int (bc + abc))
    (Executor.true_cost q plan)

let test_executor_vs_independence_model () =
  (* the independence-combined model and the executor agree exactly on
     pairs *)
  let q = chain_query () in
  let model = Cardinality.of_exact q in
  let plan = Optimizer.Join (Optimizer.Scan 1, Optimizer.Scan 2) in
  Alcotest.(check (float 1e-6)) "pair agreement"
    (Cardinality.subset_cardinality model [ 1; 2 ])
    (float_of_int (Executor.result_size q plan))

let () =
  Alcotest.run "repro_planner"
    [
      ( "query",
        [
          Alcotest.test_case "validation" `Quick test_query_validation;
          Alcotest.test_case "filtered cardinality" `Quick test_query_filtered_cardinality;
          Alcotest.test_case "edges within" `Quick test_query_edges_within;
        ] );
      ( "cardinality",
        [
          Alcotest.test_case "exact pairwise" `Quick test_exact_pairwise_cardinality;
          Alcotest.test_case "singleton" `Quick test_singleton_cardinality;
          Alcotest.test_case "three-way combination" `Quick
            test_three_way_independence_combination;
          Alcotest.test_case "custom estimator" `Quick test_custom_estimator_model;
          Alcotest.test_case "csdl model" `Quick test_csdl_model_reasonable;
        ] );
      ( "executor",
        [
          Alcotest.test_case "pair matches join count" `Quick
            test_executor_pair_matches_join_count;
          Alcotest.test_case "result size plan-invariant" `Quick
            test_executor_result_size_plan_invariant;
          Alcotest.test_case "join values match" `Quick
            test_executor_join_values_actually_match;
          Alcotest.test_case "applies predicates" `Quick test_executor_applies_predicates;
          Alcotest.test_case "cartesian product" `Quick test_executor_cartesian_product;
          Alcotest.test_case "true cost" `Quick test_executor_true_cost;
          Alcotest.test_case "agrees with model on pairs" `Quick
            test_executor_vs_independence_model;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "picks cheaper side" `Quick test_optimizer_picks_cheaper_side;
          Alcotest.test_case "covers relations" `Quick test_optimizer_covers_all_relations;
          Alcotest.test_case "no cartesian products" `Quick
            test_optimizer_no_cartesian_products;
          Alcotest.test_case "cost self-consistent" `Quick
            test_optimizer_cost_matches_cost_under;
          Alcotest.test_case "optimal among alternatives" `Quick
            test_optimizer_optimal_among_alternatives;
          Alcotest.test_case "plan regret" `Quick test_plan_regret_of_bad_model;
          Alcotest.test_case "five-relation star" `Quick test_optimizer_five_relation_star;
        ] );
    ]
