(* Tests for the two-level sampler with sentries and the synopsis. *)

open Repro_relation
module Prng = Repro_util.Prng

let schema = Schema.make [ ("k", Schema.T_int); ("payload", Schema.T_string) ]

let table_of_counts counts =
  let rows =
    List.concat_map
      (fun (v, m) ->
        List.init m (fun i -> [| Value.Int v; Value.Str (Printf.sprintf "%d-%d" v i) |]))
      counts
  in
  Table.of_rows schema rows

let profile_of counts_a counts_b =
  Csdl.Profile.of_tables (table_of_counts counts_a) "k" (table_of_counts counts_b) "k"

let counts_mid = List.init 10 (fun i -> (i, 10 + i))
let profile_mid = lazy (profile_of counts_mid counts_mid)

let resolve spec theta profile = Csdl.Budget.resolve spec ~theta profile

let draw_synopsis ?(seed = 1) ?(theta = 0.3) ?(spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta)
    profile =
  let resolved = resolve spec theta profile in
  Csdl.Synopsis.draw (Prng.create seed) ~profile ~resolved

(* ------------------------------------------------------------------ *)
(* draw_entry                                                          *)
(* ------------------------------------------------------------------ *)

let test_draw_entry_sentry_always_present () =
  let prng = Prng.create 3 in
  for _ = 1 to 100 do
    let e = Csdl.Sample.draw_entry prng ~sentry:true ~rows:[| 5; 6; 7 |] ~p_v:1.0 ~q_v:0.0 in
    (match e.Csdl.Sample.sentry_row with
    | Some r when r >= 5 && r <= 7 -> ()
    | Some r -> Alcotest.failf "sentry out of group: %d" r
    | None -> Alcotest.fail "sentry missing");
    Alcotest.(check int) "q=0 draws nothing else" 0 (Array.length e.Csdl.Sample.rows)
  done

let test_draw_entry_sentry_excluded_from_rows () =
  let prng = Prng.create 4 in
  for _ = 1 to 200 do
    let e =
      Csdl.Sample.draw_entry prng ~sentry:true ~rows:[| 1; 2; 3; 4 |] ~p_v:1.0 ~q_v:1.0
    in
    let sentry = Option.get e.Csdl.Sample.sentry_row in
    Alcotest.(check int) "q=1 draws all others" 3 (Array.length e.Csdl.Sample.rows);
    if Array.exists (fun r -> r = sentry) e.Csdl.Sample.rows then
      Alcotest.fail "sentry duplicated in rows";
    let all = List.sort compare (sentry :: Array.to_list e.Csdl.Sample.rows) in
    Alcotest.(check (list int)) "covers the group" [ 1; 2; 3; 4 ] all
  done

let test_draw_entry_no_sentry () =
  let prng = Prng.create 5 in
  let e = Csdl.Sample.draw_entry prng ~sentry:false ~rows:[| 8; 9 |] ~p_v:0.5 ~q_v:1.0 in
  Alcotest.(check (option int)) "no sentry" None e.Csdl.Sample.sentry_row;
  Alcotest.(check int) "all rows" 2 (Array.length e.Csdl.Sample.rows)

let test_draw_entry_singleton_group () =
  let prng = Prng.create 6 in
  let e = Csdl.Sample.draw_entry prng ~sentry:true ~rows:[| 42 |] ~p_v:1.0 ~q_v:0.7 in
  Alcotest.(check (option int)) "sentry is the only row" (Some 42) e.Csdl.Sample.sentry_row;
  Alcotest.(check int) "no non-sentry rows" 0 (Array.length e.Csdl.Sample.rows)

let test_draw_entry_empty_group_rejected () =
  let prng = Prng.create 7 in
  Alcotest.check_raises "empty group"
    (Invalid_argument "Sample.draw_entry: empty row group") (fun () ->
      ignore (Csdl.Sample.draw_entry prng ~sentry:true ~rows:[||] ~p_v:1.0 ~q_v:0.5))

let test_draw_entry_binomial_mean () =
  (* With q = 0.4 over 101-row groups, the non-sentry draw count should
     average ~40. *)
  let prng = Prng.create 8 in
  let rows = Array.init 101 Fun.id in
  let total = ref 0 in
  let runs = 2000 in
  for _ = 1 to runs do
    let e = Csdl.Sample.draw_entry prng ~sentry:true ~rows ~p_v:1.0 ~q_v:0.4 in
    total := !total + Array.length e.Csdl.Sample.rows
  done;
  let mean = float_of_int !total /. float_of_int runs in
  Alcotest.(check bool) "mean near 40" true (Float.abs (mean -. 40.0) < 1.5)

(* ------------------------------------------------------------------ *)
(* first_side / second_side                                            *)
(* ------------------------------------------------------------------ *)

let test_first_side_p_one_covers_all_values () =
  let profile = Lazy.force profile_mid in
  let s = draw_synopsis profile in
  Alcotest.(check int) "every value sampled" 10
    (Value.Tbl.length s.Csdl.Synopsis.sample_a.Csdl.Sample.entries)

let test_sample_values_match_rows () =
  let profile = Lazy.force profile_mid in
  let s = draw_synopsis profile in
  let sample = s.Csdl.Synopsis.sample_a in
  let key_index = Table.column_index sample.Csdl.Sample.table "k" in
  Value.Tbl.iter
    (fun v entry ->
      let check_row r =
        let actual = (Table.row sample.Csdl.Sample.table r).(key_index) in
        if not (Value.equal actual v) then
          Alcotest.failf "row %d has value %s, expected %s" r
            (Value.to_string actual) (Value.to_string v)
      in
      Option.iter check_row entry.Csdl.Sample.sentry_row;
      Array.iter check_row entry.Csdl.Sample.rows)
    sample.Csdl.Sample.entries

let test_second_side_subset_of_first () =
  let profile = profile_of counts_mid (List.init 14 (fun i -> (i, 7))) in
  let s = draw_synopsis ~theta:0.4 profile in
  Value.Tbl.iter
    (fun v (_ : Csdl.Sample.entry) ->
      if not (Value.Tbl.mem s.Csdl.Synopsis.sample_a.Csdl.Sample.entries v) then
        Alcotest.failf "S_B value %s not in S_A" (Value.to_string v))
    s.Csdl.Synopsis.sample_b.Csdl.Sample.entries

let test_second_side_only_joinable_values () =
  (* value 99 exists only in A: S_B must have no entry for it even though
     S_A does. *)
  let profile = profile_of [ (1, 5); (99, 5) ] [ (1, 5) ] in
  let s = draw_synopsis ~theta:0.5 profile in
  Alcotest.(check bool) "99 in S_A" true
    (Value.Tbl.mem s.Csdl.Synopsis.sample_a.Csdl.Sample.entries (Value.Int 99));
  Alcotest.(check bool) "99 not in S_B" false
    (Value.Tbl.mem s.Csdl.Synopsis.sample_b.Csdl.Sample.entries (Value.Int 99))

let test_no_sentry_spec_has_no_sentries () =
  let profile = Lazy.force profile_mid in
  let s = draw_synopsis ~spec:Csdl.Spec.cso ~theta:0.5 profile in
  Value.Tbl.iter
    (fun _ entry ->
      Alcotest.(check (option int)) "no sentry" None entry.Csdl.Sample.sentry_row)
    s.Csdl.Synopsis.sample_a.Csdl.Sample.entries

let test_cso_all_or_nothing () =
  (* CSO keeps every tuple of each sampled value (q = u = 1). *)
  let profile = Lazy.force profile_mid in
  let s = draw_synopsis ~spec:Csdl.Spec.cso ~theta:0.5 ~seed:2 profile in
  Value.Tbl.iter
    (fun v entry ->
      let a_v = Csdl.Profile.frequency (Lazy.force profile_mid).Csdl.Profile.a v in
      Alcotest.(check int) "all tuples present" a_v (Array.length entry.Csdl.Sample.rows))
    s.Csdl.Synopsis.sample_a.Csdl.Sample.entries

let test_cs2_second_side_complete () =
  (* CS2: u = 1, so S_B = B |>< S_A exactly. *)
  let profile = profile_of [ (1, 20); (2, 20) ] [ (1, 6); (2, 8) ] in
  let s = draw_synopsis ~spec:Csdl.Spec.cs2 ~theta:0.6 ~seed:3 profile in
  Value.Tbl.iter
    (fun v entry ->
      let b_v = Csdl.Profile.frequency profile.Csdl.Profile.b v in
      Alcotest.(check int) "every joinable tuple kept" b_v
        (Array.length entry.Csdl.Sample.rows))
    s.Csdl.Synopsis.sample_b.Csdl.Sample.entries

let test_n_prime_full_when_p_one () =
  let profile = Lazy.force profile_mid in
  let s = draw_synopsis profile in
  let expected =
    List.fold_left (fun acc (_, m) -> acc +. float_of_int m) 0.0 counts_mid
  in
  Alcotest.(check (float 1e-9)) "N' = |A|" expected s.Csdl.Synopsis.n_prime

let test_n_prime_partial_when_p_small () =
  let profile = Lazy.force profile_mid in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_one in
  let resolved = resolve spec 0.3 profile in
  let s = Csdl.Synopsis.draw (Prng.create 5) ~profile ~resolved in
  (* N' counts only sampled values' frequencies *)
  let expected = ref 0.0 in
  Value.Tbl.iter
    (fun v (_ : Csdl.Sample.entry) ->
      expected :=
        !expected +. float_of_int (Csdl.Profile.frequency profile.Csdl.Profile.a v))
    s.Csdl.Synopsis.sample_a.Csdl.Sample.entries;
  Alcotest.(check (float 1e-9)) "N' matches sampled values" !expected
    s.Csdl.Synopsis.n_prime

let test_synopsis_size_close_to_expectation () =
  (* Average of many draws should match Budget.expected_size within a few
     percent. *)
  let profile = Lazy.force profile_mid in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta in
  let resolved = resolve spec 0.3 profile in
  let prng = Prng.create 11 in
  let runs = 300 in
  let total = ref 0 in
  for _ = 1 to runs do
    let s = Csdl.Synopsis.draw prng ~profile ~resolved in
    total := !total + Csdl.Synopsis.size_tuples s
  done;
  let mean = float_of_int !total /. float_of_int runs in
  let expected = resolved.Csdl.Budget.expected_size in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f near expected %.1f" mean expected)
    true
    (Float.abs (mean -. expected) < 0.05 *. expected)

let test_sampling_deterministic_per_seed () =
  let profile = Lazy.force profile_mid in
  let a = draw_synopsis ~seed:9 profile in
  let b = draw_synopsis ~seed:9 profile in
  Alcotest.(check int) "same size" (Csdl.Synopsis.size_tuples a)
    (Csdl.Synopsis.size_tuples b);
  Alcotest.(check (float 1e-12)) "same n_prime" a.Csdl.Synopsis.n_prime
    b.Csdl.Synopsis.n_prime

let test_filtered_count_and_sentry () =
  let profile = profile_of [ (1, 6) ] [ (1, 3) ] in
  let s = draw_synopsis ~theta:0.9 profile in
  let sample = s.Csdl.Synopsis.sample_a in
  let entry = Value.Tbl.find sample.Csdl.Sample.entries (Value.Int 1) in
  let all _ = true and none _ = false in
  Alcotest.(check int) "filter true counts rows"
    (Array.length entry.Csdl.Sample.rows)
    (Csdl.Sample.filtered_count sample all entry);
  Alcotest.(check int) "filter false counts none" 0
    (Csdl.Sample.filtered_count sample none entry);
  Alcotest.(check bool) "sentry passes true" true
    (Csdl.Sample.sentry_passes sample all entry);
  Alcotest.(check bool) "sentry fails false" false
    (Csdl.Sample.sentry_passes sample none entry)

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let test_diagnostics_accounting () =
  let profile = Lazy.force profile_mid in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta in
  let resolved = resolve spec 0.3 profile in
  let s = Csdl.Synopsis.draw (Prng.create 21) ~profile ~resolved in
  let d = Csdl.Diagnostics.of_synopsis profile s in
  Alcotest.(check int) "actual size matches synopsis"
    (Csdl.Synopsis.size_tuples s)
    d.Csdl.Diagnostics.actual_size;
  Alcotest.(check int) "side A tuple split"
    (Csdl.Sample.total_tuples s.Csdl.Synopsis.sample_a)
    (d.Csdl.Diagnostics.side_a.Csdl.Diagnostics.sentry_tuples
    + d.Csdl.Diagnostics.side_a.Csdl.Diagnostics.sampled_tuples);
  (* p = 1 covers every shared value *)
  Alcotest.(check (float 1e-9)) "full coverage at p=1" 1.0
    d.Csdl.Diagnostics.shared_coverage;
  (* pretty-printer stays total *)
  let rendered = Format.asprintf "%a" Csdl.Diagnostics.pp d in
  Alcotest.(check bool) "report non-empty" true (String.length rendered > 40)

(* ------------------------------------------------------------------ *)
(* Statistical: first-level inclusion ~ Bernoulli(p_v)                 *)
(* ------------------------------------------------------------------ *)

let test_first_level_rate () =
  let profile = Lazy.force profile_mid in
  let spec = Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_one in
  let resolved = resolve spec 0.3 profile in
  let p = Csdl.Budget.p_of resolved profile (Value.Int 0) in
  let prng = Prng.create 13 in
  let runs = 2000 in
  let hits = ref 0 in
  for _ = 1 to runs do
    let s = Csdl.Synopsis.draw prng ~profile ~resolved in
    if Value.Tbl.mem s.Csdl.Synopsis.sample_a.Csdl.Sample.entries (Value.Int 0)
    then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int runs in
  Alcotest.(check bool)
    (Printf.sprintf "inclusion rate %.3f near p=%.3f" rate p)
    true
    (Float.abs (rate -. p) < 0.04)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_synopsis_entries_within_groups =
  QCheck.Test.make ~count:50 ~name:"sampled rows always carry the entry's value"
    QCheck.(pair (int_range 1 1000) (int_range 1 8))
    (fun (seed, values) ->
      let counts = List.init values (fun i -> (i, 3 + (i mod 4))) in
      let profile = profile_of counts counts in
      let s =
        draw_synopsis ~seed ~theta:0.4
          ~spec:(Csdl.Spec.csdl Csdl.Spec.L_sqrt_theta Csdl.Spec.L_sqrt_theta)
          profile
      in
      let ok sample =
        let key_index = Table.column_index sample.Csdl.Sample.table "k" in
        Value.Tbl.fold
          (fun v entry acc ->
            acc
            && Array.for_all
                 (fun r ->
                   Value.equal (Table.row sample.Csdl.Sample.table r).(key_index) v)
                 entry.Csdl.Sample.rows)
          sample.Csdl.Sample.entries true
      in
      ok s.Csdl.Synopsis.sample_a && ok s.Csdl.Synopsis.sample_b)

let prop_tuple_count_consistent =
  QCheck.Test.make ~count:50 ~name:"tuple_count equals entry contents"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let profile = Lazy.force profile_mid in
      let s = draw_synopsis ~seed profile in
      let recount sample =
        Value.Tbl.fold
          (fun _ entry acc ->
            acc
            + Array.length entry.Csdl.Sample.rows
            + match entry.Csdl.Sample.sentry_row with Some _ -> 1 | None -> 0)
          sample.Csdl.Sample.entries 0
      in
      recount s.Csdl.Synopsis.sample_a
      = Csdl.Sample.total_tuples s.Csdl.Synopsis.sample_a
      && recount s.Csdl.Synopsis.sample_b
         = Csdl.Sample.total_tuples s.Csdl.Synopsis.sample_b)

let () =
  Alcotest.run "csdl_sampling"
    [
      ( "draw_entry",
        [
          Alcotest.test_case "sentry always present" `Quick
            test_draw_entry_sentry_always_present;
          Alcotest.test_case "sentry excluded from rows" `Quick
            test_draw_entry_sentry_excluded_from_rows;
          Alcotest.test_case "no sentry" `Quick test_draw_entry_no_sentry;
          Alcotest.test_case "singleton group" `Quick test_draw_entry_singleton_group;
          Alcotest.test_case "empty group rejected" `Quick
            test_draw_entry_empty_group_rejected;
          Alcotest.test_case "binomial mean" `Slow test_draw_entry_binomial_mean;
        ] );
      ( "sides",
        [
          Alcotest.test_case "p=1 covers all values" `Quick
            test_first_side_p_one_covers_all_values;
          Alcotest.test_case "values match rows" `Quick test_sample_values_match_rows;
          Alcotest.test_case "S_B subset of S_A" `Quick test_second_side_subset_of_first;
          Alcotest.test_case "S_B only joinable" `Quick
            test_second_side_only_joinable_values;
          Alcotest.test_case "no-sentry specs" `Quick test_no_sentry_spec_has_no_sentries;
          Alcotest.test_case "CSO all-or-nothing" `Quick test_cso_all_or_nothing;
          Alcotest.test_case "CS2 full semijoin" `Quick test_cs2_second_side_complete;
        ] );
      ( "synopsis",
        [
          Alcotest.test_case "N' full at p=1" `Quick test_n_prime_full_when_p_one;
          Alcotest.test_case "N' partial at small p" `Quick test_n_prime_partial_when_p_small;
          Alcotest.test_case "size matches expectation" `Slow
            test_synopsis_size_close_to_expectation;
          Alcotest.test_case "deterministic per seed" `Quick
            test_sampling_deterministic_per_seed;
          Alcotest.test_case "filtered counts" `Quick test_filtered_count_and_sentry;
          Alcotest.test_case "first-level rate" `Slow test_first_level_rate;
          Alcotest.test_case "diagnostics" `Quick test_diagnostics_accounting;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_synopsis_entries_within_groups; prop_tuple_count_consistent ] );
    ]
