(* Tests for the synopsis store: registry behaviour and persistence. *)

open Repro_relation
module Prng = Repro_util.Prng

let schema = Schema.make [ ("k", Schema.T_int); ("attr", Schema.T_int) ]

let table_of_counts counts =
  Table.of_rows schema
    (List.concat_map
       (fun (v, m) -> List.init m (fun i -> [| Value.Int v; Value.Int i |]))
       counts)

let tables =
  lazy
    (let a = table_of_counts [ (1, 12); (2, 7); (3, 20) ] in
     let b = table_of_counts [ (1, 5); (2, 16); (3, 4) ] in
     let fk = table_of_counts [ (1, 3); (2, 2); (3, 4) ] in
     let pk = table_of_counts (List.init 10 (fun i -> (i, 1))) in
     [ ("a", a); ("b", b); ("fk", fk); ("pk", pk) ])

let table name = List.assoc name (Lazy.force tables)

let resolve_table name =
  match List.assoc_opt name (Lazy.force tables) with
  | Some t -> t
  | None -> failwith ("unknown table " ^ name)

let build_store () =
  let store = Csdl.Store.create () in
  let register key ta tb spec =
    let profile = Csdl.Profile.of_tables (table ta) "k" (table tb) "k" in
    let estimator = Csdl.Estimator.prepare spec ~theta:0.5 profile in
    let synopsis = Csdl.Estimator.draw estimator (Prng.create 7) in
    Csdl.Store.add store ~key ~table_a:ta ~table_b:tb estimator synopsis
  in
  register "a-b" "a" "b" (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta);
  register "pk-fk" "pk" "fk" Csdl.Spec.cs2l;
  store

let test_store_registry () =
  let store = build_store () in
  Alcotest.(check (list string)) "keys" [ "a-b"; "pk-fk" ] (Csdl.Store.keys store);
  Alcotest.(check bool) "mem" true (Csdl.Store.mem store "a-b");
  Alcotest.(check bool) "footprint positive" true (Csdl.Store.total_tuples store > 0);
  Csdl.Store.remove store "a-b";
  Alcotest.(check bool) "removed" false (Csdl.Store.mem store "a-b")

let test_store_estimate () =
  let store = build_store () in
  let estimate = Csdl.Store.estimate store ~key:"a-b" in
  Alcotest.(check bool) "positive estimate" true (estimate > 0.0);
  Alcotest.check_raises "unknown key" Not_found (fun () ->
      ignore (Csdl.Store.estimate store ~key:"nope"))

let test_store_estimate_orientation () =
  (* the pk-fk entry was registered with the PK table as side A; the
     estimator swaps internally, and the store must keep mapping pred_a to
     the PK table. A predicate selecting no PK rows must zero the
     estimate. *)
  let store = build_store () in
  let unfiltered = Csdl.Store.estimate store ~key:"pk-fk" in
  Alcotest.(check bool) "unfiltered positive" true (unfiltered > 0.0);
  let none = Csdl.Store.estimate store ~key:"pk-fk" ~pred_a:Predicate.False in
  Alcotest.(check (float 0.0)) "impossible pred on A zeroes" 0.0 none

let test_store_roundtrip () =
  let store = build_store () in
  let path = Filename.temp_file "repro" ".synopses" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csdl.Store.save store path;
      let back = Csdl.Store.load ~resolve_table path in
      Alcotest.(check (list string)) "keys preserved" (Csdl.Store.keys store)
        (Csdl.Store.keys back);
      Alcotest.(check int) "footprint preserved"
        (Csdl.Store.total_tuples store)
        (Csdl.Store.total_tuples back);
      (* same samples, same math — equal up to float summation order,
         which the hashtable rebuild may permute *)
      List.iter
        (fun key ->
          let pred = Predicate.Compare (Predicate.Lt, "attr", Value.Int 3) in
          let before = Csdl.Store.estimate store ~key ~pred_a:pred in
          let after = Csdl.Store.estimate back ~key ~pred_a:pred in
          if not (Repro_util.Math_ex.feq ~eps:1e-9 before after) then
            Alcotest.failf "%s estimate drifted: %.12g vs %.12g" key before
              after)
        (Csdl.Store.keys store))

let test_store_load_rejects_garbage () =
  let path = Filename.temp_file "repro" ".synopses" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a store";
      close_out oc;
      match Csdl.Store.load ~resolve_table path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure")

let test_store_replace_same_key () =
  let store = build_store () in
  let profile = Csdl.Profile.of_tables (table "a") "k" (table "b") "k" in
  let estimator =
    Csdl.Estimator.prepare (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff)
      ~theta:0.5 profile
  in
  let synopsis = Csdl.Estimator.draw estimator (Prng.create 9) in
  Csdl.Store.add store ~key:"a-b" ~table_a:"a" ~table_b:"b" estimator synopsis;
  Alcotest.(check int) "still two keys" 2 (List.length (Csdl.Store.keys store))

let () =
  Alcotest.run "csdl_store"
    [
      ( "store",
        [
          Alcotest.test_case "registry" `Quick test_store_registry;
          Alcotest.test_case "estimate" `Quick test_store_estimate;
          Alcotest.test_case "orientation" `Quick test_store_estimate_orientation;
          Alcotest.test_case "save/load roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_store_load_rejects_garbage;
          Alcotest.test_case "replace key" `Quick test_store_replace_same_key;
        ] );
    ]
