(* Tests for arbitrary-length chain joins (Chain_n). *)

open Repro_relation
module Prng = Repro_util.Prng

let key_schema name extra =
  Schema.make ((name, Schema.T_int) :: extra)

(* Build a k-table chain with uniform fan-outs. Table T_i has [sizes.(i)]
   rows; link tables have pk = row index + 1 and fk uniformly random into
   the left neighbour; the last table has only an fk column. *)
let mk_chain ~sizes ~seed =
  let prng = Prng.create seed in
  let k = Array.length sizes in
  assert (k >= 2);
  let links =
    List.init (k - 1) (fun i ->
        let columns =
          if i = 0 then [ ("attr", Schema.T_int) ]
          else [ ("fk", Schema.T_int); ("attr", Schema.T_int) ]
        in
        let schema = key_schema "pk" columns in
        let table =
          Table.create schema
            (Array.init sizes.(i) (fun r ->
                 if i = 0 then [| Value.Int (r + 1); Value.Int (r mod 10) |]
                 else
                   [|
                     Value.Int (r + 1);
                     Value.Int (1 + Prng.int prng sizes.(i - 1));
                     Value.Int (r mod 10);
                   |]))
        in
        {
          Csdl.Chain_n.table;
          pk = "pk";
          fk = (if i = 0 then None else Some "fk");
        })
  in
  let last_schema =
    Schema.make [ ("fk", Schema.T_int); ("attr", Schema.T_int) ]
  in
  let last =
    Table.create last_schema
      (Array.init sizes.(k - 1) (fun r ->
           [| Value.Int (1 + Prng.int prng sizes.(k - 2)); Value.Int (r mod 10) |]))
  in
  { Csdl.Chain_n.links; last; last_fk = "fk" }

let chain4 = lazy (mk_chain ~sizes:[| 20; 60; 150; 600 |] ~seed:5)

(* Oracle: brute-force nested-loop chain count. *)
let brute_force ?(predicates = []) (tables : Csdl.Chain_n.tables) =
  let k = List.length tables.Csdl.Chain_n.links + 1 in
  let pred i =
    match List.nth_opt predicates i with
    | Some p -> p
    | None -> Predicate.True
  in
  let link_tables = Array.of_list tables.Csdl.Chain_n.links in
  let passes table p row = Predicate.compile p (Table.schema table) row in
  (* count paths reaching each row of the last table *)
  let rec reach level v =
    (* number of passing paths from the leftmost table to a row of
       link level [level] with pk = v *)
    if level < 0 then 1
    else
      let link = link_tables.(level) in
      let groups = Table.group_by link.Csdl.Chain_n.table "pk" in
      match Value.Tbl.find_opt groups v with
      | None -> 0
      | Some rows ->
          Array.fold_left
            (fun acc r ->
              let row = Table.row link.Csdl.Chain_n.table r in
              if not (passes link.Csdl.Chain_n.table (pred level) row) then acc
              else
                match link.Csdl.Chain_n.fk with
                | None -> acc + 1
                | Some fk ->
                    let u =
                      row.(Table.column_index link.Csdl.Chain_n.table fk)
                    in
                    acc + reach (level - 1) u)
            0 rows
  in
  let last = tables.Csdl.Chain_n.last in
  let fk_index = Table.column_index last tables.Csdl.Chain_n.last_fk in
  Table.fold
    (fun acc row ->
      if passes last (pred (k - 1)) row then acc + reach (k - 2) row.(fk_index)
      else acc)
    0 last

let test_length_and_jvd () =
  let t = Lazy.force chain4 in
  Alcotest.(check int) "length" 4 (Csdl.Chain_n.length t);
  let jvd = Csdl.Chain_n.jvd t in
  Alcotest.(check bool) "jvd in (0,1]" true (jvd > 0.0 && jvd <= 1.0)

let test_true_size_matches_brute_force () =
  let t = Lazy.force chain4 in
  Alcotest.(check int) "unfiltered" (brute_force t) (Csdl.Chain_n.true_size t)

let test_true_size_with_predicates () =
  let t = Lazy.force chain4 in
  let predicates =
    [
      Predicate.Compare (Predicate.Lt, "attr", Value.Int 6);
      Predicate.Compare (Predicate.Lt, "attr", Value.Int 8);
      Predicate.True;
      Predicate.Compare (Predicate.Lt, "attr", Value.Int 5);
    ]
  in
  Alcotest.(check int) "filtered"
    (brute_force ~predicates t)
    (Csdl.Chain_n.true_size ~predicates t)

let test_true_size_matches_chain3 () =
  (* a 3-table Chain_n must agree with the dedicated Chain module *)
  let t3 = mk_chain ~sizes:[| 30; 90; 400 |] ~seed:9 in
  let links = Array.of_list t3.Csdl.Chain_n.links in
  let as_chain3 =
    {
      Csdl.Chain.a = links.(0).Csdl.Chain_n.table;
      a_pk = "pk";
      b = links.(1).Csdl.Chain_n.table;
      b_pk = "pk";
      b_fk = "fk";
      c = t3.Csdl.Chain_n.last;
      c_fk = "fk";
    }
  in
  Alcotest.(check int) "agree" (Csdl.Chain.true_size as_chain3)
    (Csdl.Chain_n.true_size t3)

let test_scaling_exact_at_theta_one () =
  let t = Lazy.force chain4 in
  let prepared = Csdl.Chain_n.prepare Csdl.Spec.cs2l ~theta:1.0 t in
  let synopsis = Csdl.Chain_n.draw prepared (Prng.create 2) in
  Alcotest.(check (float 1e-6)) "exact"
    (float_of_int (Csdl.Chain_n.true_size t))
    (Csdl.Chain_n.estimate prepared synopsis)

let test_scaling_exact_filtered_at_theta_one () =
  let t = Lazy.force chain4 in
  let predicates =
    [
      Predicate.Compare (Predicate.Lt, "attr", Value.Int 7);
      Predicate.True;
      Predicate.Compare (Predicate.Lt, "attr", Value.Int 9);
      Predicate.Compare (Predicate.Lt, "attr", Value.Int 6);
    ]
  in
  let prepared = Csdl.Chain_n.prepare Csdl.Spec.cs2l ~theta:1.0 t in
  let synopsis = Csdl.Chain_n.draw prepared (Prng.create 3) in
  Alcotest.(check (float 1e-6)) "filtered exact"
    (float_of_int (Csdl.Chain_n.true_size ~predicates t))
    (Csdl.Chain_n.estimate ~predicates prepared synopsis)

let test_dl_reasonable () =
  let t = Lazy.force chain4 in
  let truth = float_of_int (Csdl.Chain_n.true_size t) in
  let prepared = Csdl.Chain_n.prepare_opt ~theta:0.3 t in
  let prng = Prng.create 4 in
  let qs =
    Array.init 15 (fun _ ->
        let synopsis = Csdl.Chain_n.draw prepared prng in
        Repro_stats.Qerror.compute ~truth
          ~estimate:(Csdl.Chain_n.estimate prepared synopsis))
  in
  let median = Repro_util.Summary.median qs in
  Alcotest.(check bool)
    (Printf.sprintf "median q-error %.2f < 3" median)
    true (median < 3.0)

let test_validation () =
  let t = Lazy.force chain4 in
  Alcotest.check_raises "no links"
    (Invalid_argument "Chain_n: at least one link table required") (fun () ->
      Csdl.Chain_n.validate { t with Csdl.Chain_n.links = [] });
  (* head with fk *)
  let bad_head =
    match t.Csdl.Chain_n.links with
    | head :: rest -> { head with Csdl.Chain_n.fk = Some "attr" } :: rest
    | [] -> assert false
  in
  Alcotest.check_raises "head has fk"
    (Invalid_argument "Chain_n: the leftmost table must have no fk") (fun () ->
      Csdl.Chain_n.validate { t with Csdl.Chain_n.links = bad_head })

let test_five_table_chain () =
  let t = mk_chain ~sizes:[| 10; 25; 60; 150; 500 |] ~seed:11 in
  Alcotest.(check int) "length" 5 (Csdl.Chain_n.length t);
  Alcotest.(check int) "oracle agreement" (brute_force t)
    (Csdl.Chain_n.true_size t);
  let prepared = Csdl.Chain_n.prepare Csdl.Spec.cs2l ~theta:1.0 t in
  let synopsis = Csdl.Chain_n.draw prepared (Prng.create 12) in
  Alcotest.(check (float 1e-6)) "exact at theta=1"
    (float_of_int (Csdl.Chain_n.true_size t))
    (Csdl.Chain_n.estimate prepared synopsis)

let () =
  Alcotest.run "csdl_chain_n"
    [
      ( "chain_n",
        [
          Alcotest.test_case "length/jvd" `Quick test_length_and_jvd;
          Alcotest.test_case "true size vs brute force" `Quick
            test_true_size_matches_brute_force;
          Alcotest.test_case "filtered true size" `Quick test_true_size_with_predicates;
          Alcotest.test_case "agrees with Chain" `Quick test_true_size_matches_chain3;
          Alcotest.test_case "scaling exact" `Quick test_scaling_exact_at_theta_one;
          Alcotest.test_case "scaling exact filtered" `Quick
            test_scaling_exact_filtered_at_theta_one;
          Alcotest.test_case "DL reasonable" `Slow test_dl_reasonable;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "five tables" `Quick test_five_table_chain;
        ] );
    ]
