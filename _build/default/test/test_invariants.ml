(* Cross-module property tests: invariants that must hold across the whole
   offline-sample -> online-estimate pipeline, for every spec in the design
   space, on randomly generated data. *)

open Repro_relation
module Prng = Repro_util.Prng

let schema = Schema.make [ ("k", Schema.T_int); ("attr", Schema.T_int) ]

let table_of_counts counts =
  Table.of_rows schema
    (List.concat_map
       (fun (v, m) -> List.init m (fun i -> [| Value.Int v; Value.Int i |]))
       counts)

let dedup counts = List.sort_uniq (fun (a, _) (b, _) -> compare a b) counts

let profile_gen =
  QCheck.Gen.(
    let counts =
      list_size (int_range 2 12) (pair (int_range 0 9) (int_range 1 25))
    in
    map2
      (fun ca cb ->
        Csdl.Profile.of_tables
          (table_of_counts (dedup ca))
          "k"
          (table_of_counts (dedup cb))
          "k")
      counts counts)

let all_specs =
  Csdl.Spec.csdl_variants @ [ Csdl.Spec.cs2; Csdl.Spec.cso; Csdl.Spec.cs2l ]

let spec_gen =
  QCheck.Gen.map (List.nth all_specs)
    (QCheck.Gen.int_range 0 (List.length all_specs - 1))

let pipeline_gen =
  QCheck.Gen.(triple profile_gen spec_gen (int_range 1 100_000))

(* Every sampled value in S_A exists in A; every S_B value exists in S_A
   and in B (the correlated-sampling contract S_B ⊆ B ⋉ S_A). *)
let prop_sample_containment =
  QCheck.Test.make ~count:120 ~name:"S_B values ⊆ S_A values ∩ V_B"
    (QCheck.make pipeline_gen)
    (fun (profile, spec, seed) ->
      let estimator = Csdl.Estimator.prepare ~sample_first:`A spec ~theta:0.3 profile in
      let synopsis = Csdl.Estimator.draw estimator (Prng.create seed) in
      let a_entries = synopsis.Csdl.Synopsis.sample_a.Csdl.Sample.entries in
      let ok = ref true in
      Value.Tbl.iter
        (fun v (_ : Csdl.Sample.entry) ->
          if not (Value.Tbl.mem a_entries v) then ok := false;
          if Csdl.Profile.frequency profile.Csdl.Profile.b v = 0 then ok := false)
        synopsis.Csdl.Synopsis.sample_b.Csdl.Sample.entries;
      Value.Tbl.iter
        (fun v (_ : Csdl.Sample.entry) ->
          if Csdl.Profile.frequency profile.Csdl.Profile.a v = 0 then ok := false)
        a_entries;
      !ok)

(* N' is exactly the A-frequency mass of the sampled values. *)
let prop_n_prime_consistent =
  QCheck.Test.make ~count:120 ~name:"N' = sum of sampled values' a_v"
    (QCheck.make pipeline_gen)
    (fun (profile, spec, seed) ->
      let estimator = Csdl.Estimator.prepare ~sample_first:`A spec ~theta:0.3 profile in
      let synopsis = Csdl.Estimator.draw estimator (Prng.create seed) in
      let expected = ref 0.0 in
      Value.Tbl.iter
        (fun v (_ : Csdl.Sample.entry) ->
          expected :=
            !expected
            +. float_of_int (Csdl.Profile.frequency profile.Csdl.Profile.a v))
        synopsis.Csdl.Synopsis.sample_a.Csdl.Sample.entries;
      Float.abs (!expected -. synopsis.Csdl.Synopsis.n_prime) < 1e-9)

(* Estimates are finite and non-negative for every spec, and an impossible
   predicate always yields exactly 0. *)
let prop_estimates_sane =
  QCheck.Test.make ~count:120 ~name:"estimates finite, >= 0, False-pred = 0"
    (QCheck.make pipeline_gen)
    (fun (profile, spec, seed) ->
      let estimator = Csdl.Estimator.prepare ~sample_first:`A spec ~theta:0.3 profile in
      let synopsis = Csdl.Estimator.draw estimator (Prng.create seed) in
      let unfiltered = Csdl.Estimator.estimate estimator synopsis in
      let impossible =
        Csdl.Estimator.estimate ~pred_a:Predicate.False estimator synopsis
      in
      Float.is_finite unfiltered && unfiltered >= 0.0 && impossible = 0.0)

(* Synopsis tuple accounting matches Budget.expected_size in expectation:
   check a generous 4x band on a single draw (binomial noise). *)
let prop_synopsis_size_banded =
  QCheck.Test.make ~count:80 ~name:"synopsis size within 4x of expectation"
    (QCheck.make (QCheck.Gen.pair profile_gen (QCheck.Gen.int_range 1 100_000)))
    (fun (profile, seed) ->
      let spec = Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta in
      let estimator = Csdl.Estimator.prepare ~sample_first:`A spec ~theta:0.5 profile in
      let synopsis = Csdl.Estimator.draw estimator (Prng.create seed) in
      let expected = (Csdl.Estimator.resolved estimator).Csdl.Budget.expected_size in
      let actual = float_of_int (Csdl.Synopsis.size_tuples synopsis) in
      expected = 0.0 || (actual <= 4.0 *. expected +. 4.0 && actual *. 4.0 +. 4.0 >= expected))

(* The store's save/load roundtrip yields bit-identical estimates. *)
let prop_store_roundtrip =
  QCheck.Test.make ~count:40 ~name:"store roundtrip preserves estimates"
    (QCheck.make pipeline_gen)
    (fun (profile, spec, seed) ->
      let table_a = profile.Csdl.Profile.a.Csdl.Profile.table in
      let table_b = profile.Csdl.Profile.b.Csdl.Profile.table in
      let estimator = Csdl.Estimator.prepare ~sample_first:`A spec ~theta:0.4 profile in
      let synopsis = Csdl.Estimator.draw estimator (Prng.create seed) in
      let store = Csdl.Store.create () in
      Csdl.Store.add store ~key:"q" ~table_a:"a" ~table_b:"b" estimator synopsis;
      let path = Filename.temp_file "repro" ".inv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Csdl.Store.save store path;
          let back =
            Csdl.Store.load
              ~resolve_table:(function
                | "a" -> table_a
                | "b" -> table_b
                | _ -> assert false)
              path
          in
          let pred = Predicate.Compare (Predicate.Lt, "attr", Value.Int 7) in
          (* hashtable rebuild changes float summation order: compare up
             to relative rounding, not bit-for-bit *)
          Repro_util.Math_ex.feq ~eps:1e-9
            (Csdl.Store.estimate store ~key:"q" ~pred_a:pred)
            (Csdl.Store.estimate back ~key:"q" ~pred_a:pred)))

(* A 2-table Chain_n on PK data agrees with Join.pair_count. *)
let prop_chain_n_pair_agreement =
  QCheck.Test.make ~count:60 ~name:"2-table chain = pair count on PK data"
    QCheck.(pair (int_range 2 30) (int_range 1 10_000))
    (fun (n_pk, seed) ->
      let prng = Prng.create seed in
      let pk_table =
        table_of_counts (List.init n_pk (fun i -> (i, 1)))
      in
      let fk_rows = 3 * n_pk in
      let fk_table =
        Table.of_rows schema
          (List.init fk_rows (fun i ->
               [| Value.Int (Prng.int prng (2 * n_pk)); Value.Int i |]))
      in
      let tables =
        {
          Csdl.Chain_n.links =
            [ { Csdl.Chain_n.table = pk_table; pk = "k"; fk = None } ];
          last = fk_table;
          last_fk = "k";
        }
      in
      Csdl.Chain_n.true_size tables
      = Join.pair_count (Join.unfiltered pk_table "k") (Join.unfiltered fk_table "k"))

(* The optimizer's plan never costs more (under its own model) than any
   hand-rolled left-deep alternative. *)
let prop_optimizer_dominates_left_deep =
  QCheck.Test.make ~count:40 ~name:"DP plan <= every left-deep plan"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let open Repro_planner in
      let prng = Prng.create seed in
      let rel name n =
        {
          Query.name;
          table =
            Table.of_rows
              (Schema.make [ (name ^ "_k", Schema.T_int) ])
              (List.init n (fun _ -> [| Value.Int (Prng.int prng 6) |]));
          predicate = Predicate.True;
        }
      in
      let q =
        Query.make
          [ rel "a" 12; rel "b" 15; rel "c" 9 ]
          [
            { Query.left = "a"; left_column = "a_k"; right = "b"; right_column = "b_k" };
            { Query.left = "b"; left_column = "b_k"; right = "c"; right_column = "c_k" };
          ]
      in
      let model = Cardinality.of_exact q in
      let _, best = Optimizer.optimize q model in
      let left_deep order =
        match order with
        | [ x; y; z ] ->
            Optimizer.Join (Optimizer.Join (Optimizer.Scan x, Optimizer.Scan y), Optimizer.Scan z)
        | _ -> assert false
      in
      List.for_all
        (fun order -> best <= Optimizer.cost_under model (left_deep order) +. 1e-6)
        [ [ 0; 1; 2 ]; [ 1; 2; 0 ]; [ 1; 0; 2 ]; [ 2; 1; 0 ] ])

let () =
  Alcotest.run "repro_invariants"
    [
      ( "pipeline",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sample_containment;
            prop_n_prime_consistent;
            prop_estimates_sane;
            prop_synopsis_size_banded;
            prop_store_roundtrip;
          ] );
      ( "multi_module",
        List.map QCheck_alcotest.to_alcotest
          [ prop_chain_n_pair_agreement; prop_optimizer_dominates_left_deep ] );
    ]
