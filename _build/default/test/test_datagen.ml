(* Tests for the data generators: Zipf, skewed TPC-H, synthetic IMDB and
   the JOB workload queries. *)

open Repro_datagen
open Repro_relation
module Prng = Repro_util.Prng

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.make ~n:50 ~z:1.5 in
  let total = ref 0.0 in
  for k = 1 to 50 do
    total := !total +. Zipf.pmf z k
  done;
  Alcotest.(check (float 1e-9)) "mass" 1.0 !total

let test_zipf_pmf_monotone () =
  let z = Zipf.make ~n:100 ~z:2.0 in
  for k = 1 to 99 do
    if Zipf.pmf z k < Zipf.pmf z (k + 1) then
      Alcotest.failf "pmf not decreasing at %d" k
  done

let test_zipf_uniform_when_z_zero () =
  let z = Zipf.make ~n:10 ~z:0.0 in
  for k = 1 to 10 do
    check_float "uniform pmf" 0.1 (Zipf.pmf z k)
  done

let test_zipf_draw_range () =
  let z = Zipf.make ~n:7 ~z:1.0 in
  let prng = Prng.create 5 in
  for _ = 1 to 5_000 do
    let k = Zipf.draw z prng in
    if k < 1 || k > 7 then Alcotest.failf "draw out of range: %d" k
  done

let test_zipf_empirical_matches_pmf () =
  let z = Zipf.make ~n:5 ~z:2.0 in
  let prng = Prng.create 11 in
  let counts = Array.make 5 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let k = Zipf.draw z prng in
    counts.(k - 1) <- counts.(k - 1) + 1
  done;
  for k = 1 to 5 do
    let expected = Zipf.pmf z k in
    let actual = float_of_int counts.(k - 1) /. float_of_int n in
    if Float.abs (expected -. actual) > 0.01 then
      Alcotest.failf "rank %d: pmf %f vs empirical %f" k expected actual
  done

let test_zipf_expected_count () =
  let z = Zipf.make ~n:4 ~z:0.0 in
  check_float "expected count" 25.0 (Zipf.expected_count z ~total:100 1)

let test_zipf_single_rank () =
  let z = Zipf.make ~n:1 ~z:3.0 in
  check_float "only rank" 1.0 (Zipf.pmf z 1);
  let prng = Prng.create 1 in
  Alcotest.(check int) "always 1" 1 (Zipf.draw z prng)

let test_zipf_rejects_bad_args () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.make: n must be >= 1")
    (fun () -> ignore (Zipf.make ~n:0 ~z:1.0));
  Alcotest.check_raises "z<0" (Invalid_argument "Zipf.make: z must be >= 0")
    (fun () -> ignore (Zipf.make ~n:3 ~z:(-1.0)))

(* ------------------------------------------------------------------ *)
(* Tpch                                                                *)
(* ------------------------------------------------------------------ *)

let tiny_tpch = lazy (Tpch.generate ~scale:0.02 ~z:2.0 ~seed:3)

let test_tpch_row_counts_scale () =
  let d = Lazy.force tiny_tpch in
  Alcotest.(check int) "customers" 3000 (Table.cardinality d.Tpch.customer);
  Alcotest.(check int) "suppliers" 200 (Table.cardinality d.Tpch.supplier);
  Alcotest.(check int) "orders" 30000 (Table.cardinality d.Tpch.orders);
  Alcotest.(check int) "lineitem" 120000 (Table.cardinality d.Tpch.lineitem)

let test_tpch_keys_unique () =
  let d = Lazy.force tiny_tpch in
  Alcotest.(check int) "custkey unique" 3000
    (Table.distinct_count d.Tpch.customer "c_custkey");
  Alcotest.(check int) "orderkey unique" 30000
    (Table.distinct_count d.Tpch.orders "o_orderkey")

let test_tpch_nationkey_domain () =
  let d = Lazy.force tiny_tpch in
  Table.iter
    (fun row ->
      match row.(Table.column_index d.Tpch.customer "c_nationkey") with
      | Value.Int k when k >= 0 && k < Tpch.nations -> ()
      | v -> Alcotest.failf "bad nationkey %s" (Value.to_string v))
    d.Tpch.customer

let test_tpch_skew_increases_with_z () =
  (* With z=4 the top nation should dominate far more than with z=0. *)
  let skewed = Tpch.generate ~scale:0.05 ~z:4.0 ~seed:7 in
  let flat = Tpch.generate ~scale:0.05 ~z:0.0 ~seed:7 in
  let top_share d =
    let freq = Table.frequency_map d.Tpch.customer "c_nationkey" in
    let top = Value.Tbl.fold (fun _ c acc -> max c acc) freq 0 in
    float_of_int top /. float_of_int (Table.cardinality d.Tpch.customer)
  in
  Alcotest.(check bool) "skewed top dominates" true (top_share skewed > 0.8);
  Alcotest.(check bool) "flat top small" true (top_share flat < 0.15)

let test_tpch_deterministic () =
  let a = Tpch.generate ~scale:0.02 ~z:2.0 ~seed:3 in
  let b = Tpch.generate ~scale:0.02 ~z:2.0 ~seed:3 in
  let key t i = (Table.row t i).(1) in
  for i = 0 to 99 do
    Alcotest.(check bool) "same nationkey stream" true
      (Value.compare (key a.Tpch.customer i) (key b.Tpch.customer i) = 0)
  done

let test_tpch_fk_integrity () =
  let d = Lazy.force tiny_tpch in
  let n_orders = Table.cardinality d.Tpch.orders in
  Table.iter
    (fun row ->
      match row.(Table.column_index d.Tpch.lineitem "l_orderkey") with
      | Value.Int k when k >= 1 && k <= n_orders -> ()
      | v -> Alcotest.failf "dangling l_orderkey %s" (Value.to_string v))
    d.Tpch.lineitem

let test_tpch_orders_cap () =
  let d = Tpch.generate ~scale:1.0 ~z:0.0 ~seed:5 in
  Alcotest.(check int) "orders capped" 300_000 (Table.cardinality d.Tpch.orders);
  Alcotest.(check int) "customer full size" 150_000 (Table.cardinality d.Tpch.customer)

let test_tpch_dataset_name () =
  let d = Tpch.generate ~scale:1.0 ~z:4.0 ~seed:1 in
  Alcotest.(check string) "name" "s1-z4" (Tpch.dataset_name d);
  let d = Tpch.generate ~scale:0.1 ~z:2.0 ~seed:1 in
  Alcotest.(check string) "fractional scale" "s0.1-z2" (Tpch.dataset_name d)

(* ------------------------------------------------------------------ *)
(* Imdb + Job_workload                                                 *)
(* ------------------------------------------------------------------ *)

let tiny_imdb = lazy (Imdb.generate ~scale:0.02 ~seed:42 ())

let test_imdb_table_sizes () =
  let d = Lazy.force tiny_imdb in
  Alcotest.(check int) "title" 2000 (Table.cardinality d.Imdb.title);
  Alcotest.(check int) "company_type" 4 (Table.cardinality d.Imdb.company_type);
  Alcotest.(check int) "info_type" 113 (Table.cardinality d.Imdb.info_type)

let test_imdb_title_pk () =
  let d = Lazy.force tiny_imdb in
  Alcotest.(check int) "title.id unique"
    (Table.cardinality d.Imdb.title)
    (Table.distinct_count d.Imdb.title "id")

let test_imdb_fk_integrity () =
  let d = Lazy.force tiny_imdb in
  let n = Table.cardinality d.Imdb.title in
  List.iter
    (fun (t, col) ->
      Table.iter
        (fun row ->
          match row.(Table.column_index t col) with
          | Value.Int k when k >= 1 && k <= n -> ()
          | v -> Alcotest.failf "dangling %s: %s" col (Value.to_string v))
        t)
    [
      (d.Imdb.aka_title, "movie_id");
      (d.Imdb.movie_companies, "movie_id");
      (d.Imdb.movie_info_idx, "movie_id");
      (d.Imdb.movie_keyword, "movie_id");
      (d.Imdb.cast_info, "movie_id");
    ]

let test_imdb_company_types_in_domain () =
  let d = Lazy.force tiny_imdb in
  Table.iter
    (fun row ->
      match row.(Table.column_index d.Imdb.movie_companies "company_type_id") with
      | Value.Int k when k >= 1 && k <= 4 -> ()
      | v -> Alcotest.failf "bad company_type_id %s" (Value.to_string v))
    d.Imdb.movie_companies

let test_workload_query_count_and_names () =
  let d = Lazy.force tiny_imdb in
  let queries = Job_workload.two_table_queries d in
  Alcotest.(check int) "14 queries" 14 (List.length queries);
  let names = List.map (fun q -> q.Job_workload.name) queries in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then
        Alcotest.failf "missing query %s" expected)
    [ "Q1a1"; "Q1a4"; "Q1b1"; "Q1b4"; "Q1a2"; "Q2d1"; "Q2c1" ]

let test_workload_jvd_classes () =
  let d = Lazy.force tiny_imdb in
  let queries = Job_workload.two_table_queries d in
  let jvd_of name =
    Job_workload.query_jvd
      (List.find (fun q -> q.Job_workload.name = name) queries)
  in
  (* Categorical joins have tiny jvd; movie_id joins have large jvd.
     (The absolute threshold depends on scale; the *ordering* must hold.) *)
  Alcotest.(check bool) "Q1a1 far below Q1a2" true
    (jvd_of "Q1a1" <= 0.001 && jvd_of "Q1a2" > 0.01
    && jvd_of "Q1a1" < jvd_of "Q1a2" /. 100.0);
  Alcotest.(check bool) "Q1b1 small" true (jvd_of "Q1b1" < jvd_of "Q1b2")

let test_workload_true_sizes_positive () =
  let d = Lazy.force tiny_imdb in
  List.iter
    (fun q ->
      let size = Job_workload.true_size q in
      if size < 0 then Alcotest.failf "%s negative size" q.Job_workload.name)
    (Job_workload.two_table_queries d)

let test_workload_prefix_queries () =
  let d = Lazy.force tiny_imdb in
  let prefixes = Job_workload.top_prefixes d 10 in
  Alcotest.(check int) "10 prefixes" 10 (List.length prefixes);
  (* "The" has Zipf rank 1 in the generator vocabulary. *)
  Alcotest.(check string) "most frequent" "The" (List.hd prefixes);
  let q = Job_workload.pkfk_prefix_query d ~prefix:"The" in
  Alcotest.(check bool) "pkfk truth positive" true (Job_workload.true_size q > 0);
  let q = Job_workload.m2m_prefix_query d ~prefix:"The" in
  Alcotest.(check bool) "m2m truth positive" true (Job_workload.true_size q > 0)

let test_workload_prefixes_ordered_by_frequency () =
  let d = Lazy.force tiny_imdb in
  let prefixes = Job_workload.top_prefixes d 20 in
  let count p =
    Table.cardinality
      (Predicate.apply (Predicate.Like_prefix ("title", p ^ " ")) d.Imdb.title)
  in
  let counts = List.map count prefixes in
  let rec non_increasing = function
    | a :: b :: rest -> a >= b && non_increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "non-increasing frequency" true (non_increasing counts)

let () =
  Alcotest.run "repro_datagen"
    [
      ( "zipf",
        [
          Alcotest.test_case "pmf mass" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "pmf monotone" `Quick test_zipf_pmf_monotone;
          Alcotest.test_case "uniform z=0" `Quick test_zipf_uniform_when_z_zero;
          Alcotest.test_case "draw range" `Quick test_zipf_draw_range;
          Alcotest.test_case "empirical vs pmf" `Slow test_zipf_empirical_matches_pmf;
          Alcotest.test_case "expected count" `Quick test_zipf_expected_count;
          Alcotest.test_case "single rank" `Quick test_zipf_single_rank;
          Alcotest.test_case "bad args" `Quick test_zipf_rejects_bad_args;
        ] );
      ( "tpch",
        [
          Alcotest.test_case "row counts" `Quick test_tpch_row_counts_scale;
          Alcotest.test_case "keys unique" `Quick test_tpch_keys_unique;
          Alcotest.test_case "nationkey domain" `Quick test_tpch_nationkey_domain;
          Alcotest.test_case "skew grows with z" `Quick test_tpch_skew_increases_with_z;
          Alcotest.test_case "deterministic" `Quick test_tpch_deterministic;
          Alcotest.test_case "fk integrity" `Quick test_tpch_fk_integrity;
          Alcotest.test_case "orders cap" `Slow test_tpch_orders_cap;
          Alcotest.test_case "dataset name" `Quick test_tpch_dataset_name;
        ] );
      ( "imdb",
        [
          Alcotest.test_case "table sizes" `Quick test_imdb_table_sizes;
          Alcotest.test_case "title pk" `Quick test_imdb_title_pk;
          Alcotest.test_case "fk integrity" `Quick test_imdb_fk_integrity;
          Alcotest.test_case "company type domain" `Quick test_imdb_company_types_in_domain;
        ] );
      ( "job_workload",
        [
          Alcotest.test_case "query names" `Quick test_workload_query_count_and_names;
          Alcotest.test_case "jvd classes" `Quick test_workload_jvd_classes;
          Alcotest.test_case "true sizes" `Quick test_workload_true_sizes_positive;
          Alcotest.test_case "prefix queries" `Quick test_workload_prefix_queries;
          Alcotest.test_case "prefix ordering" `Quick
            test_workload_prefixes_ordered_by_frequency;
        ] );
    ]
