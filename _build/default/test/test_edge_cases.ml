(* Robustness suite: degenerate inputs that a deployed estimator meets in
   the wild — empty tables, all-null join columns, single rows, extreme
   budgets — must degrade to well-defined answers, never crash. *)

open Repro_relation
module Prng = Repro_util.Prng

let schema = Schema.make [ ("k", Schema.T_int); ("attr", Schema.T_int) ]

let table_of_rows rows = Table.of_rows schema rows

let table_of_counts counts =
  table_of_rows
    (List.concat_map
       (fun (v, m) -> List.init m (fun i -> [| Value.Int v; Value.Int i |]))
       counts)

let empty = lazy (table_of_rows [])
let nulls_only =
  lazy (table_of_rows (List.init 8 (fun i -> [| Value.Null; Value.Int i |])))
let single_row = lazy (table_of_rows [ [| Value.Int 1; Value.Int 0 |] ])
let normal = lazy (table_of_counts [ (1, 6); (2, 3) ])

let all_specs =
  Csdl.Spec.csdl_variants
  @ [ Csdl.Spec.cs2; Csdl.Spec.cso; Csdl.Spec.cs2l; Csdl.Spec.cs2l_approx () ]

let estimate_all_specs profile =
  List.map
    (fun spec ->
      let est = Csdl.Estimator.prepare ~sample_first:`A spec ~theta:0.5 profile in
      Csdl.Estimator.estimate_once est (Prng.create 3))
    all_specs

let test_empty_a_side () =
  let profile = Csdl.Profile.of_tables (Lazy.force empty) "k" (Lazy.force normal) "k" in
  List.iter
    (fun e -> Alcotest.(check (float 0.0)) "estimate 0" 0.0 e)
    (estimate_all_specs profile)

let test_empty_b_side () =
  let profile = Csdl.Profile.of_tables (Lazy.force normal) "k" (Lazy.force empty) "k" in
  List.iter
    (fun e -> Alcotest.(check (float 0.0)) "estimate 0" 0.0 e)
    (estimate_all_specs profile)

let test_both_empty () =
  let profile = Csdl.Profile.of_tables (Lazy.force empty) "k" (Lazy.force empty) "k" in
  Alcotest.(check (float 0.0)) "jvd 0" 0.0 profile.Csdl.Profile.jvd;
  List.iter
    (fun e -> Alcotest.(check (float 0.0)) "estimate 0" 0.0 e)
    (estimate_all_specs profile)

let test_all_null_join_column () =
  (* nulls never join: truth is 0 and every estimator must say so *)
  let profile =
    Csdl.Profile.of_tables (Lazy.force nulls_only) "k" (Lazy.force normal) "k"
  in
  Alcotest.(check int) "truth 0" 0 (Csdl.Profile.true_join_size profile);
  List.iter
    (fun e -> Alcotest.(check (float 0.0)) "estimate 0" 0.0 e)
    (estimate_all_specs profile)

let test_single_row_tables () =
  let profile =
    Csdl.Profile.of_tables (Lazy.force single_row) "k" (Lazy.force single_row) "k"
  in
  Alcotest.(check int) "truth 1" 1 (Csdl.Profile.true_join_size profile);
  List.iter
    (fun e ->
      Alcotest.(check bool) "estimate finite and non-negative" true
        (Float.is_finite e && e >= 0.0))
    (estimate_all_specs profile)

let test_theta_one_and_tiny () =
  let profile = Csdl.Profile.of_tables (Lazy.force normal) "k" (Lazy.force normal) "k" in
  List.iter
    (fun theta ->
      List.iter
        (fun spec ->
          let est = Csdl.Estimator.prepare ~sample_first:`A spec ~theta profile in
          let e = Csdl.Estimator.estimate_once est (Prng.create 7) in
          if not (Float.is_finite e) || e < 0.0 then
            Alcotest.failf "%s at theta=%g: bad estimate %f"
              (Csdl.Spec.to_string spec) theta e)
        all_specs)
    [ 1.0; 1e-6 ]

let test_self_join_same_table () =
  (* joining a table with itself must work (Table VII's m2m case) *)
  let t = Lazy.force normal in
  let profile = Csdl.Profile.of_tables t "k" t "k" in
  let truth = float_of_int (Csdl.Profile.true_join_size profile) in
  Alcotest.(check (float 1e-9)) "truth = 6^2 + 3^2" 45.0 truth;
  let est = Csdl.Estimator.prepare ~sample_first:`A Csdl.Spec.cso ~theta:1.0 profile in
  Alcotest.(check (float 1e-9)) "CSO exact on self join" truth
    (Csdl.Estimator.estimate_once est (Prng.create 9))

let test_opt_on_empty_profile () =
  let profile = Csdl.Profile.of_tables (Lazy.force empty) "k" (Lazy.force empty) "k" in
  let est = Csdl.Opt.prepare ~theta:0.5 profile in
  Alcotest.(check (float 0.0)) "opt estimate 0" 0.0
    (Csdl.Estimator.estimate_once est (Prng.create 11))

let test_discrete_learning_extreme_counts () =
  (* enormous counts must not overflow the Poisson machinery *)
  let t = Csdl.Discrete_learning.learn [| 1e6; 1.0; 2.0 |] in
  let p = Csdl.Discrete_learning.probability_of_count t 1e6 in
  Alcotest.(check bool) "heavy probability sane" true (p > 0.9 && p <= 1.0);
  let p1 = Csdl.Discrete_learning.probability_of_count t 1.0 in
  Alcotest.(check bool) "light probability sane" true (p1 >= 0.0 && p1 <= 1.0)

let test_chain_with_empty_middle () =
  let a = table_of_counts [ (1, 2) ] in
  let tables =
    {
      Csdl.Chain.a;
      a_pk = "k";
      b = Lazy.force empty;
      b_pk = "k";
      b_fk = "attr";
      c = Lazy.force normal;
      c_fk = "k";
    }
  in
  Alcotest.(check int) "truth 0" 0 (Csdl.Chain.true_size tables);
  let prepared = Csdl.Chain.prepare Csdl.Spec.cs2l ~theta:0.5 tables in
  let synopsis = Csdl.Chain.draw prepared (Prng.create 13) in
  Alcotest.(check (float 0.0)) "estimate 0" 0.0
    (Csdl.Chain.estimate prepared synopsis)

let test_star_with_unmatched_dimension () =
  (* fact rows whose fk never matches the dimension: truth and estimate 0 *)
  let fact = table_of_counts [ (99, 5) ] in
  let dim = table_of_counts [ (1, 1) ] in
  let tables =
    { Csdl.Star.fact; dimensions = [ { Csdl.Star.table = dim; pk = "k"; fk = "k" } ] }
  in
  Alcotest.(check int) "truth 0" 0 (Csdl.Star.true_size tables);
  let prepared = Csdl.Star.prepare Csdl.Spec.cs2l ~theta:1.0 tables in
  let synopsis = Csdl.Star.draw prepared (Prng.create 15) in
  Alcotest.(check (float 0.0)) "estimate 0" 0.0
    (Csdl.Star.estimate prepared synopsis)

let test_baselines_on_empty_tables () =
  let profile = Csdl.Profile.of_tables (Lazy.force empty) "k" (Lazy.force normal) "k" in
  let open Repro_baselines in
  Alcotest.(check (float 0.0)) "independent" 0.0
    (Independent.estimate_once (Independent.prepare ~theta:0.5 profile)
       (Prng.create 17));
  Alcotest.(check (float 0.0)) "end-biased" 0.0
    (End_biased.estimate_once (End_biased.prepare ~theta:0.5 profile)
       (Prng.create 17));
  Alcotest.(check (float 0.0)) "wander" 0.0
    (Wander.estimate (Wander.prepare ~walks:5 profile) (Prng.create 17))

let test_histogram_on_empty_table () =
  let open Repro_baselines in
  let h = Histogram.build ~buckets:4 (Lazy.force empty) "k" in
  Alcotest.(check int) "no buckets" 0 (Histogram.bucket_count h);
  let normal_h = Histogram.build ~buckets:4 (Lazy.force normal) "k" in
  Alcotest.(check (float 0.0)) "join with empty" 0.0
    (Histogram.estimate_join h normal_h)

let test_store_empty_roundtrip () =
  let store = Csdl.Store.create () in
  let path = Filename.temp_file "repro" ".edge" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csdl.Store.save store path;
      let back = Csdl.Store.load ~resolve_table:(fun _ -> Lazy.force normal) path in
      Alcotest.(check (list string)) "no keys" [] (Csdl.Store.keys back))

let () =
  Alcotest.run "repro_edge_cases"
    [
      ( "pair",
        [
          Alcotest.test_case "empty A" `Quick test_empty_a_side;
          Alcotest.test_case "empty B" `Quick test_empty_b_side;
          Alcotest.test_case "both empty" `Quick test_both_empty;
          Alcotest.test_case "all-null join column" `Quick test_all_null_join_column;
          Alcotest.test_case "single rows" `Quick test_single_row_tables;
          Alcotest.test_case "extreme thetas" `Quick test_theta_one_and_tiny;
          Alcotest.test_case "self join" `Quick test_self_join_same_table;
          Alcotest.test_case "opt on empty" `Quick test_opt_on_empty_profile;
          Alcotest.test_case "DL extreme counts" `Quick
            test_discrete_learning_extreme_counts;
        ] );
      ( "multi_table",
        [
          Alcotest.test_case "chain empty middle" `Quick test_chain_with_empty_middle;
          Alcotest.test_case "star unmatched dim" `Quick
            test_star_with_unmatched_dimension;
        ] );
      ( "ecosystem",
        [
          Alcotest.test_case "baselines on empty" `Quick test_baselines_on_empty_tables;
          Alcotest.test_case "histogram on empty" `Quick test_histogram_on_empty_table;
          Alcotest.test_case "empty store roundtrip" `Quick test_store_empty_roundtrip;
        ] );
    ]
