(* Integration tests for chain and star join estimation (Section V). *)

open Repro_relation
module Prng = Repro_util.Prng

(* Hand-built PK-FK chain: A(pk) <- B(fk, pk) <- C(fk). *)

let schema_a = Schema.make [ ("pk", Schema.T_int); ("x", Schema.T_int) ]
let schema_b =
  Schema.make [ ("pk", Schema.T_int); ("fk", Schema.T_int); ("y", Schema.T_int) ]
let schema_c =
  Schema.make [ ("fk", Schema.T_int); ("z", Schema.T_int) ]

let mk_chain ~n_a ~n_b ~c_per_b ~seed =
  let prng = Prng.create seed in
  let a =
    Table.create schema_a
      (Array.init n_a (fun i -> [| Value.Int (i + 1); Value.Int (i mod 10) |]))
  in
  let b =
    Table.create schema_b
      (Array.init n_b (fun i ->
           [|
             Value.Int (i + 1);
             Value.Int (1 + Prng.int prng n_a);
             Value.Int (i mod 7);
           |]))
  in
  let rows_c =
    Array.init (n_b * c_per_b) (fun i ->
        [| Value.Int (1 + Prng.int prng n_b); Value.Int (i mod 5) |])
  in
  let c = Table.create schema_c rows_c in
  {
    Csdl.Chain.a;
    a_pk = "pk";
    b;
    b_pk = "pk";
    b_fk = "fk";
    c;
    c_fk = "fk";
  }

let chain_mid = lazy (mk_chain ~n_a:50 ~n_b:200 ~c_per_b:4 ~seed:3)

let test_chain_true_size_matches_join_module () =
  let t = Lazy.force chain_mid in
  let expected =
    Join.chain3_count
      ~a:(Join.unfiltered t.Csdl.Chain.a "pk")
      ~b:(Join.unfiltered t.Csdl.Chain.b "pk")
      ~b_fk:"fk"
      ~c:(Join.unfiltered t.Csdl.Chain.c "fk")
  in
  Alcotest.(check int) "true_size consistent" expected (Csdl.Chain.true_size t)

let test_chain_scaling_exact_at_theta_one () =
  let t = Lazy.force chain_mid in
  let prepared = Csdl.Chain.prepare Csdl.Spec.cs2l ~theta:1.0 t in
  let synopsis = Csdl.Chain.draw prepared (Prng.create 1) in
  let estimate = Csdl.Chain.estimate prepared synopsis in
  Alcotest.(check (float 1e-6)) "exact"
    (float_of_int (Csdl.Chain.true_size t))
    estimate

let test_chain_scaling_exact_with_predicates () =
  let t = Lazy.force chain_mid in
  let pred_a = Predicate.Compare (Predicate.Lt, "x", Value.Int 5) in
  let pred_b = Predicate.Compare (Predicate.Lt, "y", Value.Int 4) in
  let pred_c = Predicate.Compare (Predicate.Lt, "z", Value.Int 3) in
  let truth = Csdl.Chain.true_size ~pred_a ~pred_b ~pred_c t in
  let prepared = Csdl.Chain.prepare Csdl.Spec.cs2l ~theta:1.0 t in
  let synopsis = Csdl.Chain.draw prepared (Prng.create 2) in
  let estimate = Csdl.Chain.estimate ~pred_a ~pred_b ~pred_c prepared synopsis in
  Alcotest.(check (float 1e-6)) "filtered exact" (float_of_int truth) estimate

let test_chain_dl_reasonable () =
  let t = Lazy.force chain_mid in
  let truth = float_of_int (Csdl.Chain.true_size t) in
  let prepared = Csdl.Chain.prepare_opt ~theta:0.3 t in
  let prng = Prng.create 4 in
  let qs =
    Array.init 15 (fun _ ->
        let synopsis = Csdl.Chain.draw prepared prng in
        let estimate = Csdl.Chain.estimate prepared synopsis in
        Repro_stats.Qerror.compute ~truth ~estimate)
  in
  let median = Repro_util.Summary.median qs in
  Alcotest.(check bool)
    (Printf.sprintf "median q-error %.2f < 3" median)
    true (median < 3.0)

let test_chain_opt_dispatch () =
  let t = Lazy.force chain_mid in
  let jvd = Csdl.Chain.jvd t in
  let prepared = Csdl.Chain.prepare_opt ~theta:0.3 t in
  let expected = if jvd < 0.001 then "CSDL(1,diff)" else "CSDL(t,diff)" in
  Alcotest.(check string) "variant follows jvd" expected
    (Csdl.Spec.to_string (Csdl.Chain.spec prepared))

let test_chain_jvd_value () =
  let t = Lazy.force chain_mid in
  let expected = Join.jvd t.Csdl.Chain.b "pk" t.Csdl.Chain.c "fk" in
  Alcotest.(check (float 1e-12)) "jvd = B-C join density" expected
    (Csdl.Chain.jvd t)

let test_chain_dangling_fk_contributes_zero () =
  (* C rows pointing at nonexistent B keys must not contribute. *)
  let a = Table.create schema_a [| [| Value.Int 1; Value.Int 0 |] |] in
  let b =
    Table.create schema_b [| [| Value.Int 10; Value.Int 1; Value.Int 0 |] |]
  in
  let c =
    Table.create schema_c
      [|
        [| Value.Int 10; Value.Int 0 |];
        [| Value.Int 999; Value.Int 0 |] (* dangling *);
      |]
  in
  let t =
    { Csdl.Chain.a; a_pk = "pk"; b; b_pk = "pk"; b_fk = "fk"; c; c_fk = "fk" }
  in
  Alcotest.(check int) "truth" 1 (Csdl.Chain.true_size t);
  let prepared = Csdl.Chain.prepare Csdl.Spec.cs2l ~theta:1.0 t in
  let synopsis = Csdl.Chain.draw prepared (Prng.create 5) in
  Alcotest.(check (float 1e-6)) "estimate" 1.0
    (Csdl.Chain.estimate prepared synopsis)

let test_chain_synopsis_bounded () =
  let t = Lazy.force chain_mid in
  let prepared = Csdl.Chain.prepare_opt ~theta:0.1 t in
  let prng = Prng.create 6 in
  let total = ref 0 in
  let runs = 50 in
  for _ = 1 to runs do
    total := !total + Csdl.Chain.synopsis_tuples (Csdl.Chain.draw prepared prng)
  done;
  let mean = float_of_int !total /. float_of_int runs in
  let data_size =
    Table.cardinality t.Csdl.Chain.a + Table.cardinality t.Csdl.Chain.b
    + Table.cardinality t.Csdl.Chain.c
  in
  (* Sentries and PK witnesses add a per-value floor, so allow 3x. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f within 3x of budget %.1f" mean
       (0.1 *. float_of_int data_size))
    true
    (mean < 3.0 *. 0.1 *. float_of_int data_size)

(* ------------------------------------------------------------------ *)
(* Star joins                                                          *)
(* ------------------------------------------------------------------ *)

let star_schema_fact =
  Schema.make
    [ ("fk1", Schema.T_int); ("fk2", Schema.T_int); ("measure", Schema.T_int) ]

let star_schema_dim =
  Schema.make [ ("pk", Schema.T_int); ("attr", Schema.T_int) ]

let mk_star ~n_fact ~n_d1 ~n_d2 ~seed =
  let prng = Prng.create seed in
  let fact =
    Table.create star_schema_fact
      (Array.init n_fact (fun i ->
           [|
             Value.Int (1 + Prng.int prng n_d1);
             Value.Int (1 + Prng.int prng n_d2);
             Value.Int (i mod 100);
           |]))
  in
  let dim n =
    Table.create star_schema_dim
      (Array.init n (fun i -> [| Value.Int (i + 1); Value.Int (i mod 10) |]))
  in
  {
    Csdl.Star.fact;
    dimensions =
      [
        { Csdl.Star.table = dim n_d1; pk = "pk"; fk = "fk1" };
        { Csdl.Star.table = dim n_d2; pk = "pk"; fk = "fk2" };
      ];
  }

let star_mid = lazy (mk_star ~n_fact:400 ~n_d1:30 ~n_d2:20 ~seed:8)

let test_star_true_size_unfiltered () =
  (* Every fact row matches exactly one row in each dimension. *)
  let t = Lazy.force star_mid in
  Alcotest.(check int) "truth = |fact|" 400 (Csdl.Star.true_size t)

let test_star_scaling_exact_at_theta_one () =
  let t = Lazy.force star_mid in
  let pred_dims =
    [
      Predicate.Compare (Predicate.Lt, "attr", Value.Int 5);
      Predicate.Compare (Predicate.Lt, "attr", Value.Int 7);
    ]
  in
  let truth = Csdl.Star.true_size ~pred_dims t in
  let prepared = Csdl.Star.prepare Csdl.Spec.cs2l ~theta:1.0 t in
  let synopsis = Csdl.Star.draw prepared (Prng.create 9) in
  let estimate = Csdl.Star.estimate ~pred_dims prepared synopsis in
  Alcotest.(check (float 1e-6)) "exact" (float_of_int truth) estimate

let test_star_dl_reasonable () =
  let t = Lazy.force star_mid in
  let pred_dims = [ Predicate.Compare (Predicate.Lt, "attr", Value.Int 5) ] in
  let truth = float_of_int (Csdl.Star.true_size ~pred_dims t) in
  let prepared = Csdl.Star.prepare_opt ~theta:0.3 t in
  let prng = Prng.create 10 in
  let qs =
    Array.init 15 (fun _ ->
        let synopsis = Csdl.Star.draw prepared prng in
        let estimate = Csdl.Star.estimate ~pred_dims prepared synopsis in
        Repro_stats.Qerror.compute ~truth ~estimate)
  in
  let median = Repro_util.Summary.median qs in
  Alcotest.(check bool)
    (Printf.sprintf "median q-error %.2f < 3" median)
    true (median < 3.0)

let test_star_fact_predicate () =
  let t = Lazy.force star_mid in
  let pred_fact = Predicate.Compare (Predicate.Lt, "measure", Value.Int 50) in
  let truth = Csdl.Star.true_size ~pred_fact t in
  Alcotest.(check int) "half the fact rows" 200 truth;
  let prepared = Csdl.Star.prepare Csdl.Spec.cs2l ~theta:1.0 t in
  let synopsis = Csdl.Star.draw prepared (Prng.create 11) in
  Alcotest.(check (float 1e-6)) "exact" (float_of_int truth)
    (Csdl.Star.estimate ~pred_fact prepared synopsis)

let test_star_requires_dimension () =
  let t = Lazy.force star_mid in
  Alcotest.check_raises "no dims"
    (Invalid_argument "Star: at least one dimension required") (fun () ->
      ignore
        (Csdl.Star.prepare Csdl.Spec.cs2l ~theta:0.5
           { t with Csdl.Star.dimensions = [] }))

let test_star_missing_dim_pred_defaults_true () =
  let t = Lazy.force star_mid in
  let prepared = Csdl.Star.prepare Csdl.Spec.cs2l ~theta:1.0 t in
  let synopsis = Csdl.Star.draw prepared (Prng.create 12) in
  Alcotest.(check (float 1e-6)) "padded predicates"
    (Csdl.Star.estimate prepared synopsis)
    (Csdl.Star.estimate ~pred_dims:[ Predicate.True ] prepared synopsis)

(* ------------------------------------------------------------------ *)
(* TPC-H chain (the Table IX shape)                                    *)
(* ------------------------------------------------------------------ *)

let test_tpch_chain_runs () =
  let d = Repro_datagen.Tpch.generate ~scale:0.01 ~z:1.0 ~seed:13 in
  let t =
    {
      Csdl.Chain.a = d.Repro_datagen.Tpch.customer;
      a_pk = "c_custkey";
      b = d.Repro_datagen.Tpch.orders;
      b_pk = "o_orderkey";
      b_fk = "o_custkey";
      c = d.Repro_datagen.Tpch.lineitem;
      c_fk = "l_orderkey";
    }
  in
  let pred_a =
    Predicate.Compare (Predicate.Gt, "c_acctbal", Value.Float 8000.0)
  in
  let truth = Csdl.Chain.true_size ~pred_a t in
  Alcotest.(check bool) "truth positive" true (truth > 0);
  let prepared = Csdl.Chain.prepare_opt ~theta:0.2 t in
  let prng = Prng.create 14 in
  let estimates =
    Array.init 11 (fun _ ->
        let s = Csdl.Chain.draw prepared prng in
        Csdl.Chain.estimate ~pred_a prepared s)
  in
  let qs =
    Array.map
      (fun e -> Repro_stats.Qerror.compute ~truth:(float_of_int truth) ~estimate:e)
      estimates
  in
  let median = Repro_util.Summary.median qs in
  Alcotest.(check bool)
    (Printf.sprintf "median q-error %.2f finite and < 5" median)
    true
    (median < 5.0)

let () =
  Alcotest.run "csdl_multi_table"
    [
      ( "chain",
        [
          Alcotest.test_case "true size consistent" `Quick
            test_chain_true_size_matches_join_module;
          Alcotest.test_case "scaling exact theta=1" `Quick
            test_chain_scaling_exact_at_theta_one;
          Alcotest.test_case "filtered exact theta=1" `Quick
            test_chain_scaling_exact_with_predicates;
          Alcotest.test_case "DL reasonable" `Slow test_chain_dl_reasonable;
          Alcotest.test_case "opt dispatch" `Quick test_chain_opt_dispatch;
          Alcotest.test_case "jvd" `Quick test_chain_jvd_value;
          Alcotest.test_case "dangling fk" `Quick test_chain_dangling_fk_contributes_zero;
          Alcotest.test_case "synopsis bounded" `Slow test_chain_synopsis_bounded;
        ] );
      ( "star",
        [
          Alcotest.test_case "true size" `Quick test_star_true_size_unfiltered;
          Alcotest.test_case "scaling exact theta=1" `Quick
            test_star_scaling_exact_at_theta_one;
          Alcotest.test_case "DL reasonable" `Slow test_star_dl_reasonable;
          Alcotest.test_case "fact predicate" `Quick test_star_fact_predicate;
          Alcotest.test_case "requires dimension" `Quick test_star_requires_dimension;
          Alcotest.test_case "predicate padding" `Quick
            test_star_missing_dim_pred_defaults_true;
        ] );
      ( "tpch",
        [ Alcotest.test_case "chain on TPC-H" `Slow test_tpch_chain_runs ] );
    ]
