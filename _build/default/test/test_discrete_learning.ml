(* Tests for the discrete-learning estimator (Algorithm 1). *)

module DL = Csdl.Discrete_learning
module Prng = Repro_util.Prng

(* Simulate a sample of size ~n from a distribution given as
   (probability, multiplicity-of-values) pairs: each domain value's count
   is Binomial(n, p). Returns per-value counts. *)
let simulate prng ~n distribution =
  List.concat_map
    (fun (p, values) ->
      List.init values (fun _ -> float_of_int (Prng.binomial prng n p)))
    distribution
  |> Array.of_list

let test_learn_empty () =
  let t = DL.learn [||] in
  Alcotest.(check (float 0.0)) "n = 0" 0.0 (DL.sample_size t);
  Alcotest.(check (float 0.0)) "probability 0" 0.0 (DL.probability_of_count t 3.0)

let test_learn_all_zero_counts () =
  let t = DL.learn [| 0.0; 0.0 |] in
  Alcotest.(check (float 0.0)) "n = 0" 0.0 (DL.sample_size t)

let test_sample_size () =
  let t = DL.learn [| 2.0; 3.0; 1.0 |] in
  Alcotest.(check (float 1e-9)) "n = sum" 6.0 (DL.sample_size t)

let test_probability_of_nonpositive_count () =
  let t = DL.learn [| 2.0; 3.0 |] in
  Alcotest.(check (float 0.0)) "count 0" 0.0 (DL.probability_of_count t 0.0);
  Alcotest.(check (float 0.0)) "negative" 0.0 (DL.probability_of_count t (-1.0))

let test_config_validation () =
  Alcotest.check_raises "bad D/E"
    (Invalid_argument "Discrete_learning.learn: need 0 < D/2 < E < D < 0.1")
    (fun () ->
      ignore
        (DL.learn
           ~config:{ DL.default_config with d = 0.05; e = 0.08 }
           [| 1.0 |]))

let test_heavy_counts_use_empirical () =
  (* A value appearing more often than ln^2 n gets probability j/n. *)
  let counts = Array.append [| 500.0 |] (Array.make 500 1.0) in
  let t = DL.learn counts in
  (* n = 1000; ln^2 1000 ~ 47.7; 500 >> that *)
  Alcotest.(check (float 1e-9)) "empirical for heavy" 0.5
    (DL.probability_of_count t 500.0)

let test_uniform_heavyish_recovery () =
  (* 100 values with probability 0.01 each: counts ~ Bin(1000, 0.01).
     The median estimated probability over the count classes should be
     near 0.01. *)
  let prng = Prng.create 17 in
  let counts = simulate prng ~n:1000 [ (0.01, 100) ] in
  let t = DL.learn counts in
  let estimates =
    Array.to_list counts
    |> List.filter (fun c -> c > 0.0)
    |> List.map (fun c -> DL.probability_of_count t c)
  in
  let median = Repro_util.Summary.median (Array.of_list estimates) in
  Alcotest.(check bool)
    (Printf.sprintf "median estimate %.5f near 0.01" median)
    true
    (median > 0.004 && median < 0.025)

let test_rare_values_lp_path () =
  (* 10 000 values with probability 1e-4: counts are mostly 0/1. The LP
     must place the F_1 mass near x = 1e-4 rather than at the empirical
     1/n = 1e-3. *)
  let prng = Prng.create 23 in
  let counts = simulate prng ~n:1000 [ (0.0001, 10_000) ] in
  let t = DL.learn counts in
  let estimate = DL.probability_of_count t 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "singleton estimate %.6f well below empirical 1e-3" estimate)
    true
    (estimate < 6e-4);
  Alcotest.(check bool) "but positive" true (estimate > 1e-6)

let test_rare_values_support_estimate () =
  (* Same setting: the learned histogram should know there are far more
     domain values than the ~950 observed. *)
  let prng = Prng.create 29 in
  let counts = simulate prng ~n:1000 [ (0.0001, 10_000) ] in
  let t = DL.learn counts in
  let support = DL.estimated_distinct t in
  Alcotest.(check bool)
    (Printf.sprintf "support %.0f far above observed" support)
    true
    (support > 2_000.0)

let test_two_scale_mixture () =
  (* A mixture: 5 heavy values at 0.1 and many light ones sharing the rest.
     Heavy counts (~100 over n=1000) must estimate near 0.1. *)
  let prng = Prng.create 31 in
  let counts =
    simulate prng ~n:1000 [ (0.1, 5); (0.0005, 1000) ]
  in
  let t = DL.learn counts in
  let heavy_estimate = DL.probability_of_count t 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "heavy %.4f near 0.1" heavy_estimate)
    true
    (Float.abs (heavy_estimate -. 0.1) < 0.03)

let test_fractional_counts_accepted () =
  let t = DL.learn [| 1.5; 2.25; 0.75 |] in
  Alcotest.(check bool) "positive estimate" true (DL.probability_of_count t 2.0 > 0.0);
  Alcotest.(check (float 1e-9)) "n" 4.5 (DL.sample_size t)

let test_probability_memoised_consistent () =
  let prng = Prng.create 37 in
  let counts = simulate prng ~n:500 [ (0.01, 80) ] in
  let t = DL.learn counts in
  let first = DL.probability_of_count t 5.0 in
  let second = DL.probability_of_count t 5.0 in
  Alcotest.(check (float 0.0)) "memoised identical" first second;
  (* count classes round: 5.4 ~ 5 *)
  Alcotest.(check (float 0.0)) "rounding to class" first
    (DL.probability_of_count t 5.4)

let test_histogram_mass_reasonable () =
  let prng = Prng.create 41 in
  let counts = simulate prng ~n:1000 [ (0.01, 100) ] in
  let t = DL.learn counts in
  let hist = DL.histogram t in
  let mass =
    Repro_util.Weighted.fold (fun x w acc -> acc +. (x *. w)) hist 0.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "total probability mass %.3f near 1" mass)
    true
    (mass > 0.7 && mass <= 1.3)

let test_single_value_sample () =
  (* One value seen n times: must estimate probability ~1. *)
  let t = DL.learn [| 200.0 |] in
  Alcotest.(check (float 1e-9)) "probability 1" 1.0 (DL.probability_of_count t 200.0)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_probabilities_in_unit_interval =
  QCheck.Test.make ~count:50 ~name:"estimated probabilities in [0,1]"
    QCheck.(pair (int_range 1 500) (int_range 1 50))
    (fun (seed, distinct) ->
      let prng = Prng.create seed in
      let counts =
        Array.init distinct (fun _ -> float_of_int (1 + Prng.int prng 20))
      in
      let t = DL.learn counts in
      Array.for_all
        (fun c ->
          let p = DL.probability_of_count t c in
          p >= 0.0 && p <= 1.0 +. 1e-9)
        counts)

let prop_larger_count_not_smaller_probability =
  (* Count classes are served by Poisson-weighted medians of one shared
     histogram, which is monotone in the count. *)
  QCheck.Test.make ~count:30 ~name:"probability monotone in count class"
    QCheck.(int_range 1 500)
    (fun seed ->
      let prng = Prng.create seed in
      let counts =
        Array.init 60 (fun _ -> float_of_int (1 + Prng.int prng 30))
      in
      let t = DL.learn counts in
      let probe = [ 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 ] in
      let rec check = function
        | a :: b :: rest ->
            DL.probability_of_count t a <= DL.probability_of_count t b +. 1e-9
            && check (b :: rest)
        | _ -> true
      in
      check probe)

let () =
  Alcotest.run "csdl_discrete_learning"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_learn_empty;
          Alcotest.test_case "all-zero counts" `Quick test_learn_all_zero_counts;
          Alcotest.test_case "sample size" `Quick test_sample_size;
          Alcotest.test_case "nonpositive count" `Quick test_probability_of_nonpositive_count;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "fractional counts" `Quick test_fractional_counts_accepted;
          Alcotest.test_case "memoisation" `Quick test_probability_memoised_consistent;
          Alcotest.test_case "single value" `Quick test_single_value_sample;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "heavy empirical" `Quick test_heavy_counts_use_empirical;
          Alcotest.test_case "uniform 0.01" `Quick test_uniform_heavyish_recovery;
          Alcotest.test_case "rare values (LP path)" `Quick test_rare_values_lp_path;
          Alcotest.test_case "support estimate" `Quick test_rare_values_support_estimate;
          Alcotest.test_case "two-scale mixture" `Quick test_two_scale_mixture;
          Alcotest.test_case "histogram mass" `Quick test_histogram_mass_reasonable;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_probabilities_in_unit_interval;
            prop_larger_count_not_smaller_probability;
          ] );
    ]
