(* Tests for the related-work baseline estimators. *)

open Repro_relation
module Prng = Repro_util.Prng
open Repro_baselines

let schema =
  Schema.make [ ("k", Schema.T_int); ("attr", Schema.T_int) ]

let table_of_counts counts =
  let rows =
    List.concat_map
      (fun (v, m) -> List.init m (fun i -> [| Value.Int v; Value.Int i |]))
      counts
  in
  Table.of_rows schema rows

let profile_of ca cb =
  Csdl.Profile.of_tables (table_of_counts ca) "k" (table_of_counts cb) "k"

let counts_a = [ (1, 12); (2, 7); (3, 20); (4, 3); (7, 9) ]
let counts_b = [ (1, 5); (2, 16); (3, 4); (5, 8); (7, 2) ]
let profile_m2m = lazy (profile_of counts_a counts_b)
let truth_m2m = float_of_int ((12 * 5) + (7 * 16) + (20 * 4) + (9 * 2))

let pk_counts = List.init 40 (fun i -> (i, 1))
(* small multiplicities so that theta = 1 affords the 2-tuples-per-row
   join synopsis exactly (see the pk predicate test) *)
let fk_counts = List.init 25 (fun i -> (i, 1 + (i mod 2)))
let profile_pkfk = lazy (profile_of fk_counts pk_counts)
let truth_pkfk =
  float_of_int (List.fold_left (fun acc (v, m) -> if v < 40 then acc + m else acc) 0 fk_counts)

let mean_of f runs seed =
  let prng = Prng.create seed in
  let total = ref 0.0 in
  for _ = 1 to runs do
    total := !total +. f prng
  done;
  !total /. float_of_int runs

let check_unbiased ~label ~truth mean tolerance =
  Alcotest.(check bool)
    (Printf.sprintf "%s mean %.1f within %.0f%% of %.1f" label mean
       (100.0 *. tolerance) truth)
    true
    (Float.abs (mean -. truth) < tolerance *. truth)

(* ------------------------------------------------------------------ *)
(* Independent sampling                                                *)
(* ------------------------------------------------------------------ *)

let test_independent_unbiased () =
  let t = Independent.prepare ~theta:0.4 (Lazy.force profile_m2m) in
  let mean = mean_of (fun prng -> Independent.estimate_once t prng) 4000 3 in
  check_unbiased ~label:"independent" ~truth:truth_m2m mean 0.08

let test_independent_exact_at_theta_one () =
  let t = Independent.prepare ~theta:1.0 (Lazy.force profile_m2m) in
  Alcotest.(check (float 1e-9)) "exact" truth_m2m
    (Independent.estimate_once t (Prng.create 4))

let test_independent_with_predicate () =
  let pred = Predicate.Compare (Predicate.Lt, "attr", Value.Int 2) in
  let profile = Lazy.force profile_m2m in
  let truth =
    float_of_int
      (Join.pair_count
         (Join.filtered profile.Csdl.Profile.a.Csdl.Profile.table "k" pred)
         (Join.unfiltered profile.Csdl.Profile.b.Csdl.Profile.table "k"))
  in
  let t = Independent.prepare ~theta:1.0 profile in
  Alcotest.(check (float 1e-9)) "filtered exact" truth
    (Independent.estimate ~pred_a:pred t (Independent.draw t (Prng.create 5)))

let test_independent_high_variance_on_sparse_join () =
  (* The motivating failure: a PK-FK-ish join at a small rate usually
     produces an empty joined sample. *)
  let t = Independent.prepare ~theta:0.05 (Lazy.force profile_pkfk) in
  let prng = Prng.create 6 in
  let zeroes = ref 0 in
  for _ = 1 to 100 do
    if Independent.estimate_once t prng = 0.0 then incr zeroes
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/100 runs estimate zero" !zeroes)
    true (!zeroes > 50)

(* ------------------------------------------------------------------ *)
(* End-biased sampling                                                 *)
(* ------------------------------------------------------------------ *)

let test_end_biased_unbiased () =
  let t = End_biased.prepare ~theta:0.3 (Lazy.force profile_m2m) in
  let mean = mean_of (fun prng -> End_biased.estimate_once t prng) 4000 7 in
  check_unbiased ~label:"end-biased" ~truth:truth_m2m mean 0.08

let test_end_biased_exact_at_theta_one () =
  let t = End_biased.prepare ~theta:1.0 (Lazy.force profile_m2m) in
  Alcotest.(check (float 1e-6)) "exact" truth_m2m
    (End_biased.estimate_once t (Prng.create 8))

let test_end_biased_predicates_exact_per_value () =
  (* For kept values the tuple sets are complete, so a predicate's effect
     is measured exactly: at theta=1 the filtered estimate is exact. *)
  let pred = Predicate.Compare (Predicate.Lt, "attr", Value.Int 3) in
  let profile = Lazy.force profile_m2m in
  let truth =
    float_of_int
      (Join.pair_count
         (Join.filtered profile.Csdl.Profile.a.Csdl.Profile.table "k" pred)
         (Join.unfiltered profile.Csdl.Profile.b.Csdl.Profile.table "k"))
  in
  let t = End_biased.prepare ~theta:1.0 profile in
  Alcotest.(check (float 1e-6)) "filtered exact" truth
    (End_biased.estimate ~pred_a:pred t (End_biased.draw t (Prng.create 9)))

let test_end_biased_sample_size_near_budget () =
  let profile = Lazy.force profile_m2m in
  let theta = 0.4 in
  let t = End_biased.prepare ~theta profile in
  let prng = Prng.create 10 in
  let runs = 400 in
  let total = ref 0 in
  for _ = 1 to runs do
    total := !total + End_biased.synopsis_tuples (End_biased.draw t prng)
  done;
  let mean = float_of_int !total /. float_of_int runs in
  let budget = theta *. float_of_int profile.Csdl.Profile.total_rows in
  (* only shared values are materialised, so the mean sits below budget
     but within it up to the non-shared mass *)
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f <= ~1.2x budget %.1f" mean budget)
    true
    (mean < 1.2 *. budget)

(* ------------------------------------------------------------------ *)
(* Wander join                                                         *)
(* ------------------------------------------------------------------ *)

let test_wander_unbiased () =
  let t = Wander.prepare ~walks:50 (Lazy.force profile_m2m) in
  let mean = mean_of (fun prng -> Wander.estimate t prng) 3000 11 in
  check_unbiased ~label:"wander" ~truth:truth_m2m mean 0.08

let test_wander_with_predicates () =
  let pred_a = Predicate.Compare (Predicate.Lt, "attr", Value.Int 5) in
  let pred_b = Predicate.Compare (Predicate.Lt, "attr", Value.Int 4) in
  let profile = Lazy.force profile_m2m in
  let truth =
    float_of_int
      (Join.pair_count
         (Join.filtered profile.Csdl.Profile.a.Csdl.Profile.table "k" pred_a)
         (Join.filtered profile.Csdl.Profile.b.Csdl.Profile.table "k" pred_b))
  in
  let t = Wander.prepare ~walks:80 profile in
  let mean = mean_of (fun prng -> Wander.estimate t ~pred_a ~pred_b prng) 3000 12 in
  check_unbiased ~label:"wander filtered" ~truth mean 0.1

let test_wander_empty_table () =
  let empty = Table.of_rows schema [] in
  let profile = Csdl.Profile.of_tables empty "k" (table_of_counts counts_b) "k" in
  let t = Wander.prepare ~walks:10 profile in
  Alcotest.(check (float 0.0)) "empty A" 0.0 (Wander.estimate t (Prng.create 13))

let test_wander_chain_unbiased () =
  let prng_data = Prng.create 31 in
  let schema_pk = Schema.make [ ("pk", Schema.T_int); ("x", Schema.T_int) ] in
  let schema_mid =
    Schema.make [ ("pk", Schema.T_int); ("fk", Schema.T_int); ("x", Schema.T_int) ]
  in
  let schema_fk = Schema.make [ ("fk", Schema.T_int); ("x", Schema.T_int) ] in
  let a =
    Table.create schema_pk
      (Array.init 20 (fun i -> [| Value.Int (i + 1); Value.Int (i mod 4) |]))
  in
  let b =
    Table.create schema_mid
      (Array.init 50 (fun i ->
           [|
             Value.Int (i + 1);
             Value.Int (1 + Prng.int prng_data 20);
             Value.Int (i mod 5);
           |]))
  in
  let c =
    Table.create schema_fk
      (Array.init 300 (fun i ->
           [| Value.Int (1 + Prng.int prng_data 60); Value.Int (i mod 3) |]))
  in
  let tables =
    { Csdl.Chain.a; a_pk = "pk"; b; b_pk = "pk"; b_fk = "fk"; c; c_fk = "fk" }
  in
  let pred_a = Predicate.Compare (Predicate.Lt, "x", Value.Int 3) in
  let truth = float_of_int (Csdl.Chain.true_size ~pred_a tables) in
  let w = Wander.prepare_chain ~walks:60 tables in
  let mean =
    mean_of (fun prng -> Wander.estimate_chain ~pred_a w prng) 3000 33
  in
  check_unbiased ~label:"wander chain" ~truth mean 0.08

let test_wander_rejects_zero_walks () =
  Alcotest.check_raises "walks >= 1"
    (Invalid_argument "Wander.prepare: walks must be >= 1") (fun () ->
      ignore (Wander.prepare ~walks:0 (Lazy.force profile_m2m)))

(* ------------------------------------------------------------------ *)
(* Join synopses                                                       *)
(* ------------------------------------------------------------------ *)

let test_join_synopsis_rejects_m2m () =
  match Join_synopsis.prepare ~theta:0.2 (Lazy.force profile_m2m) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "m2m join must be rejected"

let test_join_synopsis_unbiased () =
  match Join_synopsis.prepare ~theta:0.5 (Lazy.force profile_pkfk) with
  | Error e -> Alcotest.fail e
  | Ok t ->
      Alcotest.(check bool) "fk side detected as left" true
        (Join_synopsis.fk_is_left t);
      let mean =
        mean_of (fun prng -> Join_synopsis.estimate_once t prng) 3000 14
      in
      check_unbiased ~label:"join synopsis" ~truth:truth_pkfk mean 0.06

let test_join_synopsis_pk_predicate () =
  match Join_synopsis.prepare ~theta:1.0 (Lazy.force profile_pkfk) with
  | Error e -> Alcotest.fail e
  | Ok t ->
      let pred_pk = Predicate.Compare (Predicate.Lt, "k", Value.Int 10) in
      let profile = Lazy.force profile_pkfk in
      let truth =
        float_of_int
          (Join.pair_count
             (Join.unfiltered profile.Csdl.Profile.a.Csdl.Profile.table "k")
             (Join.filtered profile.Csdl.Profile.b.Csdl.Profile.table "k" pred_pk))
      in
      Alcotest.(check (float 1e-6)) "filtered exact at theta=1" truth
        (Join_synopsis.estimate ~pred_pk t
           (Join_synopsis.draw t (Prng.create 15)))

(* ------------------------------------------------------------------ *)
(* AGMS sketches                                                       *)
(* ------------------------------------------------------------------ *)

let test_agms_unbiased_across_plans () =
  (* Each plan is one random draw; averaging estimates across independent
     plans must approach the truth. *)
  let profile = Lazy.force profile_m2m in
  let total = ref 0.0 in
  let plans = 600 in
  for seed = 1 to plans do
    let plan = Agms.plan ~depth:1 ~theta:0.5 profile ~seed in
    total := !total +. Agms.estimate_profile plan profile
  done;
  let mean = !total /. float_of_int plans in
  check_unbiased ~label:"AGMS" ~truth:truth_m2m mean 0.1

let test_agms_median_accuracy () =
  let profile = Lazy.force profile_m2m in
  let qerrors =
    Array.init 40 (fun seed ->
        let plan = Agms.plan ~depth:5 ~theta:0.8 profile ~seed in
        Repro_stats.Qerror.compute ~truth:truth_m2m
          ~estimate:(Agms.estimate_profile plan profile))
  in
  let median = Repro_util.Summary.median qerrors in
  Alcotest.(check bool)
    (Printf.sprintf "median q-error %.2f < 2" median)
    true (median < 2.0)

let test_agms_plan_mismatch_rejected () =
  let profile = Lazy.force profile_m2m in
  let plan1 = Agms.plan ~theta:0.5 profile ~seed:1 in
  let plan2 = Agms.plan ~theta:0.5 profile ~seed:2 in
  let a = profile.Csdl.Profile.a in
  let sk1 = Agms.sketch_side plan1 a.Csdl.Profile.table "k" in
  let sk2 = Agms.sketch_side plan2 a.Csdl.Profile.table "k" in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Agms.estimate: sketches from different plans")
    (fun () -> ignore (Agms.estimate sk1 sk2))

let test_agms_self_join_positive () =
  (* sketch dotted with itself estimates the self-join size: always > 0 *)
  let profile = Lazy.force profile_m2m in
  let plan = Agms.plan ~theta:0.5 profile ~seed:3 in
  let a = profile.Csdl.Profile.a in
  let sk = Agms.sketch_side plan a.Csdl.Profile.table "k" in
  Alcotest.(check bool) "self join positive" true (Agms.estimate sk sk > 0.0)

let test_agms_budget_sizing () =
  let profile = Lazy.force profile_m2m in
  let plan = Agms.plan ~depth:5 ~theta:0.5 profile ~seed:4 in
  Alcotest.(check int) "depth" 5 (Agms.depth plan);
  let budget = 0.5 *. float_of_int profile.Csdl.Profile.total_rows in
  Alcotest.(check bool) "width*depth <= budget" true
    (float_of_int (Agms.width plan * Agms.depth plan) <= budget +. 5.0)

(* ------------------------------------------------------------------ *)
(* Equi-depth histograms                                               *)
(* ------------------------------------------------------------------ *)

let test_histogram_build_counts () =
  let t = table_of_counts counts_a in
  let h = Histogram.build ~buckets:3 t "k" in
  Alcotest.(check int) "rows covered" (Table.cardinality t) (Histogram.row_count h);
  Alcotest.(check bool) "buckets bounded" true (Histogram.bucket_count h <= 5)

let test_histogram_single_bucket_estimate () =
  (* one bucket per side: the containment formula in closed form *)
  let ta = table_of_counts [ (1, 10) ] and tb = table_of_counts [ (1, 4) ] in
  let ha = Histogram.build ~buckets:1 ta "k" in
  let hb = Histogram.build ~buckets:1 tb "k" in
  Alcotest.(check (float 1e-6)) "exact on single value" 40.0
    (Histogram.estimate_join ha hb)

let test_histogram_uniform_accuracy () =
  (* uniform data is the histogram's best case: estimate close to truth *)
  let counts = List.init 50 (fun i -> (i, 10)) in
  let ta = table_of_counts counts and tb = table_of_counts counts in
  let truth = float_of_int (Join.pair_count (Join.unfiltered ta "k") (Join.unfiltered tb "k")) in
  let ha = Histogram.build ~buckets:8 ta "k" in
  let hb = Histogram.build ~buckets:8 tb "k" in
  let estimate = Histogram.estimate_join ha hb in
  let q = Repro_stats.Qerror.compute ~truth ~estimate in
  Alcotest.(check bool) (Printf.sprintf "q-error %.2f < 1.5" q) true (q < 1.5)

let test_histogram_skew_degrades () =
  (* skew *inside* a bucket breaks the uniform-frequency assumption; with
     enough buckets equi-depth isolates the heavy value and recovers *)
  let skewed = (0, 100) :: List.init 49 (fun i -> (i + 1, 2)) in
  let ta = table_of_counts skewed and tb = table_of_counts skewed in
  let truth = float_of_int (Join.pair_count (Join.unfiltered ta "k") (Join.unfiltered tb "k")) in
  let q buckets =
    let ha = Histogram.build ~buckets ta "k" in
    let hb = Histogram.build ~buckets tb "k" in
    Repro_stats.Qerror.compute ~truth ~estimate:(Histogram.estimate_join ha hb)
  in
  let coarse = q 1 and fine = q 16 in
  Alcotest.(check bool)
    (Printf.sprintf "coarse %.2f > 1.5 under in-bucket skew" coarse)
    true (coarse > 1.5);
  Alcotest.(check bool)
    (Printf.sprintf "fine %.2f < coarse %.2f" fine coarse)
    true (fine < coarse)

let test_histogram_range_restriction () =
  let counts = List.init 20 (fun i -> (i, 5)) in
  let ta = table_of_counts counts and tb = table_of_counts counts in
  let ha = Histogram.build ~buckets:20 ta "k" in
  let hb = Histogram.build ~buckets:20 tb "k" in
  let full = Histogram.estimate_join ha hb in
  let half =
    Histogram.estimate_join_range ~high_a:(Value.Int 9) ha hb
  in
  Alcotest.(check bool)
    (Printf.sprintf "restricted %.0f ~ half of %.0f" half full)
    true
    (half > 0.3 *. full && half < 0.7 *. full)

let test_histogram_plan_buckets () =
  let profile = Lazy.force profile_m2m in
  let buckets = Histogram.plan_buckets ~theta:0.5 profile in
  Alcotest.(check bool) "positive" true (buckets >= 1)

(* ------------------------------------------------------------------ *)
(* Estimator_intf adapters                                             *)
(* ------------------------------------------------------------------ *)

(* The unified interface the bake-off drives. Exactness at theta = 1 and
   correct handling of the degenerate grids (empty join, all-filtered
   predicates) must hold for every adapter, robustly across seeds. *)

let pred_none = Predicate.True
let pred_reject_all = Predicate.Compare (Predicate.Lt, "attr", Value.Int (-1))

let counts_disjoint_a = [ (1, 3); (2, 2) ]
let counts_disjoint_b = [ (5, 4); (6, 1) ]
let profile_empty_join = lazy (profile_of counts_disjoint_a counts_disjoint_b)

let seeds = [ 1; 2; 3; 4; 5 ]

let check_exact_each_seed ~label ~truth (est : Estimator_intf.t) =
  List.iter
    (fun seed ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "%s exact (seed %d)" label seed)
        truth
        (est.Estimator_intf.estimate (Prng.create seed)))
    seeds

let test_intf_exact_at_theta_one () =
  let profile = Lazy.force profile_m2m in
  (* the CS2L spec degenerates to enumeration at theta = 1; the Opt
     default picks a discrete-learning variant whose level allocation
     keeps some per-value rates below 1 even then, so it is only
     unbiased, not exact (see the seed-robust means test) *)
  let adapters =
    [
      Estimator_intf.csdl ~spec:Csdl.Spec.cs2l ~theta:1.0 ~pred_a:pred_none
        ~pred_b:pred_none profile;
      Estimator_intf.independent ~theta:1.0 ~pred_a:pred_none ~pred_b:pred_none
        profile;
      Estimator_intf.end_biased ~theta:1.0 ~pred_a:pred_none ~pred_b:pred_none
        profile;
    ]
  in
  List.iter
    (fun est ->
      check_exact_each_seed ~label:est.Estimator_intf.name ~truth:truth_m2m est)
    adapters

let test_intf_empty_join () =
  let profile = Lazy.force profile_empty_join in
  let adapters =
    [
      Estimator_intf.csdl ~theta:1.0 ~pred_a:pred_none ~pred_b:pred_none profile;
      Estimator_intf.independent ~theta:1.0 ~pred_a:pred_none ~pred_b:pred_none
        profile;
      Estimator_intf.end_biased ~theta:1.0 ~pred_a:pred_none ~pred_b:pred_none
        profile;
      Estimator_intf.wander ~theta:1.0 ~pred_a:pred_none ~pred_b:pred_none
        profile;
    ]
  in
  List.iter
    (fun est ->
      check_exact_each_seed ~label:est.Estimator_intf.name ~truth:0.0 est)
    adapters;
  (* the independence prior is sampling-free and cannot see disjointness:
     it reports the closed-form |A||B|/max(d_A, d_B), not zero *)
  let prior = Estimator_intf.independence_prior profile in
  Alcotest.(check (float 1e-9)) "prior formula" (5.0 *. 5.0 /. 2.0)
    (prior.Estimator_intf.estimate (Prng.create 1))

let test_intf_all_filtered () =
  let profile = Lazy.force profile_m2m in
  let adapters =
    [
      Estimator_intf.csdl ~theta:1.0 ~pred_a:pred_reject_all
        ~pred_b:pred_none profile;
      Estimator_intf.independent ~theta:1.0 ~pred_a:pred_reject_all
        ~pred_b:pred_none profile;
      Estimator_intf.end_biased ~theta:1.0 ~pred_a:pred_reject_all
        ~pred_b:pred_none profile;
      Estimator_intf.wander ~theta:1.0 ~pred_a:pred_reject_all
        ~pred_b:pred_none profile;
    ]
  in
  List.iter
    (fun est ->
      check_exact_each_seed ~label:est.Estimator_intf.name ~truth:0.0 est)
    adapters

let test_intf_seed_robust_means () =
  (* sampled adapters at theta < 1: per-seed estimates vary but the mean
     over many seeded repetitions must sit near the truth *)
  let profile = Lazy.force profile_m2m in
  let mean_over est runs seed0 =
    mean_of (fun prng -> est.Estimator_intf.estimate prng) runs seed0
  in
  let csdl =
    Estimator_intf.csdl ~theta:0.5 ~pred_a:pred_none ~pred_b:pred_none profile
  in
  check_unbiased ~label:"intf csdl" ~truth:truth_m2m (mean_over csdl 3000 21)
    0.1;
  let ind =
    Estimator_intf.independent ~theta:0.5 ~pred_a:pred_none ~pred_b:pred_none
      profile
  in
  check_unbiased ~label:"intf independent" ~truth:truth_m2m
    (mean_over ind 3000 22) 0.1;
  let eb =
    Estimator_intf.end_biased ~theta:0.4 ~pred_a:pred_none ~pred_b:pred_none
      profile
  in
  check_unbiased ~label:"intf end-biased" ~truth:truth_m2m
    (mean_over eb 3000 23) 0.1;
  let w =
    Estimator_intf.wander ~theta:1.0 ~pred_a:pred_none ~pred_b:pred_none
      profile
  in
  check_unbiased ~label:"intf wander" ~truth:truth_m2m (mean_over w 3000 24)
    0.1

let test_intf_agms_applicability () =
  let profile = Lazy.force profile_m2m in
  (match
     Estimator_intf.agms ~theta:0.5 ~pred_a:pred_reject_all ~pred_b:pred_none
       profile
   with
  | Some _ -> Alcotest.fail "AGMS must refuse predicates"
  | None -> ());
  match
    Estimator_intf.agms ~theta:0.8 ~pred_a:pred_none ~pred_b:pred_none profile
  with
  | None -> Alcotest.fail "AGMS must accept the unfiltered join"
  | Some est ->
      Alcotest.(check bool) "no shared offline phase" true
        (Float.is_nan est.Estimator_intf.offline_wall_seconds);
      check_unbiased ~label:"intf AGMS" ~truth:truth_m2m
        (mean_of (fun prng -> est.Estimator_intf.estimate prng) 600 25)
        0.15

let test_intf_join_synopsis_applicability () =
  (match
     Estimator_intf.join_synopsis ~theta:0.5 ~pred_a:pred_none
       ~pred_b:pred_none (Lazy.force profile_m2m)
   with
  | Some _ -> Alcotest.fail "join synopsis must refuse m2m joins"
  | None -> ());
  match
    Estimator_intf.join_synopsis ~theta:1.0 ~pred_a:pred_none ~pred_b:pred_none
      (Lazy.force profile_pkfk)
  with
  | None -> Alcotest.fail "join synopsis must accept PK-FK"
  | Some est ->
      check_exact_each_seed ~label:"intf join synopsis" ~truth:truth_pkfk est

let test_intf_csdl_variance () =
  let profile = Lazy.force profile_m2m in
  (* CS2L at theta = 1: the synopsis is the population, so the plug-in
     analytic variance must vanish and the paired estimate must stay
     exact *)
  let full =
    Estimator_intf.csdl ~spec:Csdl.Spec.cs2l ~theta:1.0 ~pred_a:pred_none
      ~pred_b:pred_none profile
  in
  (match full.Estimator_intf.estimate_with_variance with
  | None -> Alcotest.fail "csdl must report analytic variance"
  | Some f ->
      let e, v = f (Prng.create 31) in
      Alcotest.(check (float 1e-6)) "estimate exact" truth_m2m e;
      Alcotest.(check (float 1e-6)) "variance zero at theta=1" 0.0 v);
  (* under real sampling: variance nonnegative, paired estimate equals the
     plain estimate on the same stream *)
  let sampled =
    Estimator_intf.csdl ~theta:0.5 ~pred_a:pred_none ~pred_b:pred_none profile
  in
  match sampled.Estimator_intf.estimate_with_variance with
  | None -> Alcotest.fail "csdl must report analytic variance"
  | Some f ->
      List.iter
        (fun seed ->
          let e, v = f (Prng.create seed) in
          let plain = sampled.Estimator_intf.estimate (Prng.create seed) in
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "paired = plain (seed %d)" seed)
            plain e;
          Alcotest.(check bool)
            (Printf.sprintf "variance >= 0 (seed %d)" seed)
            true (v >= 0.0))
        seeds

let () =
  Alcotest.run "repro_baselines"
    [
      ( "independent",
        [
          Alcotest.test_case "unbiased" `Slow test_independent_unbiased;
          Alcotest.test_case "exact at theta=1" `Quick test_independent_exact_at_theta_one;
          Alcotest.test_case "predicates" `Quick test_independent_with_predicate;
          Alcotest.test_case "sparse join failure" `Quick
            test_independent_high_variance_on_sparse_join;
        ] );
      ( "end_biased",
        [
          Alcotest.test_case "unbiased" `Slow test_end_biased_unbiased;
          Alcotest.test_case "exact at theta=1" `Quick test_end_biased_exact_at_theta_one;
          Alcotest.test_case "predicates exact" `Quick
            test_end_biased_predicates_exact_per_value;
          Alcotest.test_case "budget" `Slow test_end_biased_sample_size_near_budget;
        ] );
      ( "wander",
        [
          Alcotest.test_case "unbiased" `Slow test_wander_unbiased;
          Alcotest.test_case "predicates" `Slow test_wander_with_predicates;
          Alcotest.test_case "empty table" `Quick test_wander_empty_table;
          Alcotest.test_case "chain unbiased" `Slow test_wander_chain_unbiased;
          Alcotest.test_case "zero walks" `Quick test_wander_rejects_zero_walks;
        ] );
      ( "join_synopsis",
        [
          Alcotest.test_case "rejects m2m" `Quick test_join_synopsis_rejects_m2m;
          Alcotest.test_case "unbiased" `Slow test_join_synopsis_unbiased;
          Alcotest.test_case "pk predicate" `Quick test_join_synopsis_pk_predicate;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "build counts" `Quick test_histogram_build_counts;
          Alcotest.test_case "single bucket" `Quick test_histogram_single_bucket_estimate;
          Alcotest.test_case "uniform accuracy" `Quick test_histogram_uniform_accuracy;
          Alcotest.test_case "skew degrades" `Quick test_histogram_skew_degrades;
          Alcotest.test_case "range restriction" `Quick test_histogram_range_restriction;
          Alcotest.test_case "plan buckets" `Quick test_histogram_plan_buckets;
        ] );
      ( "agms",
        [
          Alcotest.test_case "unbiased across plans" `Slow test_agms_unbiased_across_plans;
          Alcotest.test_case "median accuracy" `Quick test_agms_median_accuracy;
          Alcotest.test_case "plan mismatch" `Quick test_agms_plan_mismatch_rejected;
          Alcotest.test_case "self join" `Quick test_agms_self_join_positive;
          Alcotest.test_case "budget sizing" `Quick test_agms_budget_sizing;
        ] );
      ( "estimator_intf",
        [
          Alcotest.test_case "exact at theta=1" `Quick test_intf_exact_at_theta_one;
          Alcotest.test_case "empty join" `Quick test_intf_empty_join;
          Alcotest.test_case "all filtered" `Quick test_intf_all_filtered;
          Alcotest.test_case "seed-robust means" `Slow test_intf_seed_robust_means;
          Alcotest.test_case "agms applicability" `Slow test_intf_agms_applicability;
          Alcotest.test_case "join synopsis applicability" `Quick
            test_intf_join_synopsis_applicability;
          Alcotest.test_case "csdl analytic variance" `Quick test_intf_csdl_variance;
        ] );
    ]
