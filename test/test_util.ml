(* Unit and property tests for the repro_util substrate. *)

open Repro_util

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_prng_split_independent () =
  let parent = Prng.create 7 in
  let child = Prng.split parent in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 parent) (Prng.bits64 child)) then
      differs := true
  done;
  Alcotest.(check bool) "split stream diverges from parent" true !differs

(* Keyed derivation: the splitmix fold over seed + cell-key string that
   replaced Hashtbl.hash-based seeding. Golden values pin the derivation
   across refactors — a silent change here would silently reshuffle every
   benchmark cell's stream. *)
let test_prng_derive_golden () =
  Alcotest.(check int64) "empty key" (-5575780348996920605L)
    (Prng.derive ~seed:42 "");
  Alcotest.(check int64) "bench cell key" 6455720955555524684L
    (Prng.derive ~seed:42 "two-table/Q1a1/theta=0.01/1,t");
  Alcotest.(check int64) "tpch cell key" (-9104234409078918703L)
    (Prng.derive ~seed:20200427 "table8/scale=1/z=4/theta=0.001/opt")

let test_prng_derive_deterministic () =
  let key = "two-table/Q1a1/theta=0.001/CS2L" in
  Alcotest.(check int64) "same seed+key, same state"
    (Prng.derive ~seed:7 key) (Prng.derive ~seed:7 key)

let test_prng_derive_sensitivity () =
  let key = "chain4/scale=0.1/z=2/opt" in
  Alcotest.(check bool) "seed matters" false
    (Int64.equal (Prng.derive ~seed:1 key) (Prng.derive ~seed:2 key));
  Alcotest.(check bool) "key matters" false
    (Int64.equal (Prng.derive ~seed:1 key) (Prng.derive ~seed:1 (key ^ "x")));
  (* same bytes, different split: the length fold keeps these apart *)
  Alcotest.(check bool) "delimiter placement matters" false
    (Int64.equal (Prng.derive ~seed:1 "ab/c") (Prng.derive ~seed:1 "a/bc"))

let test_prng_create_keyed_stream () =
  let a = Prng.create_keyed ~seed:11 "cell"
  and b = Prng.create_keyed ~seed:11 "cell" in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same keyed stream" (Prng.bits64 a) (Prng.bits64 b)
  done;
  let c = Prng.create_keyed ~seed:11 "other-cell" in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 c)) then differs := true
  done;
  Alcotest.(check bool) "different keys diverge" true !differs

let test_prng_int_range () =
  let t = Prng.create 3 in
  for _ = 1 to 10_000 do
    let v = Prng.int t 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Prng.int out of range"
  done

let test_prng_int_uniformity () =
  let t = Prng.create 11 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int t 10 in
    counts.(v) <- counts.(v) + 1
  done;
  (* Each bucket should be within 5 sigma of n/10. *)
  let expected = float_of_int n /. 10.0 in
  let sigma = sqrt (expected *. 0.9) in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) in
      if dev > 5.0 *. sigma then
        Alcotest.failf "bucket %d count %d deviates too much" i c)
    counts

let test_prng_float_range () =
  let t = Prng.create 5 in
  for _ = 1 to 10_000 do
    let v = Prng.float t in
    if v < 0.0 || v >= 1.0 then Alcotest.fail "Prng.float out of [0,1)"
  done

let test_prng_bernoulli_extremes () =
  let t = Prng.create 9 in
  Alcotest.(check bool) "p=1 always true" true (Prng.bernoulli t 1.0);
  Alcotest.(check bool) "p=0 always false" false (Prng.bernoulli t 0.0)

let test_prng_bernoulli_mean () =
  let t = Prng.create 13 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bernoulli t 0.3 then incr hits
  done;
  let p_hat = float_of_int !hits /. float_of_int n in
  if Float.abs (p_hat -. 0.3) > 0.01 then
    Alcotest.failf "bernoulli(0.3) mean drifted: %f" p_hat

let test_prng_binomial_bounds () =
  let t = Prng.create 21 in
  for _ = 1 to 1000 do
    let v = Prng.binomial t 50 0.25 in
    if v < 0 || v > 50 then Alcotest.fail "binomial out of range"
  done

let test_prng_binomial_mean_variance () =
  let t = Prng.create 23 in
  let n_draws = 50_000 and n = 40 and p = 0.3 in
  let draws = Array.init n_draws (fun _ -> float_of_int (Prng.binomial t n p)) in
  let mean = Summary.mean draws in
  let var = Summary.variance draws in
  let expected_mean = float_of_int n *. p in
  let expected_var = float_of_int n *. p *. (1.0 -. p) in
  if Float.abs (mean -. expected_mean) > 0.1 then
    Alcotest.failf "binomial mean %f vs %f" mean expected_mean;
  if Float.abs (var -. expected_var) > 0.5 then
    Alcotest.failf "binomial variance %f vs %f" var expected_var

let test_prng_binomial_extreme_p () =
  let t = Prng.create 29 in
  Alcotest.(check int) "p=0" 0 (Prng.binomial t 100 0.0);
  Alcotest.(check int) "p=1" 100 (Prng.binomial t 100 1.0);
  Alcotest.(check int) "n=0" 0 (Prng.binomial t 0 0.5)

let test_prng_binomial_high_p_mean () =
  let t = Prng.create 31 in
  let n_draws = 50_000 in
  let draws =
    Array.init n_draws (fun _ -> float_of_int (Prng.binomial t 30 0.9))
  in
  let mean = Summary.mean draws in
  if Float.abs (mean -. 27.0) > 0.1 then
    Alcotest.failf "binomial(30,0.9) mean %f vs 27" mean

let test_prng_geometric_mean () =
  let t = Prng.create 37 in
  let n = 100_000 and p = 0.2 in
  let draws = Array.init n (fun _ -> float_of_int (Prng.geometric t p)) in
  let mean = Summary.mean draws in
  (* E[failures before success] = (1-p)/p = 4 *)
  if Float.abs (mean -. 4.0) > 0.1 then
    Alcotest.failf "geometric(0.2) mean %f vs 4" mean

let test_prng_shuffle_permutation () =
  let t = Prng.create 41 in
  let arr = Array.init 100 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 100 Fun.id) sorted

let test_prng_sample_without_replacement () =
  let t = Prng.create 43 in
  let s = Prng.sample_without_replacement t 10 100 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let distinct = Array.to_list s |> List.sort_uniq compare |> List.length in
  Alcotest.(check int) "distinct" 10 distinct;
  Array.iter (fun v -> if v < 0 || v >= 100 then Alcotest.fail "range") s;
  (* sorted *)
  for i = 1 to 9 do
    if s.(i - 1) >= s.(i) then Alcotest.fail "not sorted"
  done

let test_prng_sample_full () =
  let t = Prng.create 47 in
  let s = Prng.sample_without_replacement t 5 5 in
  Alcotest.(check (array int)) "k = n returns all" [| 0; 1; 2; 3; 4 |] s

(* ------------------------------------------------------------------ *)
(* Math_ex                                                             *)
(* ------------------------------------------------------------------ *)

let test_log_gamma_factorials () =
  (* Gamma(n) = (n-1)! *)
  check_float_loose "Gamma(1)=1" 0.0 (Math_ex.log_gamma 1.0);
  check_float_loose "Gamma(2)=1" 0.0 (Math_ex.log_gamma 2.0);
  check_float_loose "Gamma(5)=24" (log 24.0) (Math_ex.log_gamma 5.0);
  check_float_loose "Gamma(11)=10!" (log 3628800.0) (Math_ex.log_gamma 11.0)

let test_log_gamma_half () =
  (* Gamma(1/2) = sqrt(pi) *)
  check_float_loose "Gamma(0.5)" (0.5 *. log Float.pi) (Math_ex.log_gamma 0.5)

let test_log_factorial_matches () =
  for n = 0 to 20 do
    let direct = ref 0.0 in
    for k = 2 to n do
      direct := !direct +. log (float_of_int k)
    done;
    check_float_loose (Printf.sprintf "log %d!" n) !direct (Math_ex.log_factorial n)
  done

let test_log_factorial_large () =
  (* Above the cache boundary it must agree with log_gamma. *)
  let n = 5000 in
  check_float_loose "log 5000!"
    (Math_ex.log_gamma (float_of_int n +. 1.0))
    (Math_ex.log_factorial n)

let test_poisson_pmf_sums_to_one () =
  let lambda = 3.7 in
  let total = ref 0.0 in
  for k = 0 to 100 do
    total := !total +. Math_ex.poisson_pmf lambda k
  done;
  check_float_loose "poisson mass" 1.0 !total

let test_poisson_pmf_known_values () =
  check_float "poi(0,0)" 1.0 (Math_ex.poisson_pmf 0.0 0);
  check_float "poi(0,3)" 0.0 (Math_ex.poisson_pmf 0.0 3);
  check_float_loose "poi(2,0)" (exp (-2.0)) (Math_ex.poisson_pmf 2.0 0);
  check_float_loose "poi(2,1)" (2.0 *. exp (-2.0)) (Math_ex.poisson_pmf 2.0 1);
  check_float_loose "poi(2,2)" (2.0 *. exp (-2.0)) (Math_ex.poisson_pmf 2.0 2)

let test_poisson_pmf_no_overflow () =
  let v = Math_ex.poisson_pmf 1e6 1_000_000 in
  Alcotest.(check bool) "finite" true (Float.is_finite v);
  Alcotest.(check bool) "positive" true (v > 0.0)

let test_binomial_pmf_sums_to_one () =
  let n = 30 and p = 0.42 in
  let total = ref 0.0 in
  for k = 0 to n do
    total := !total +. Math_ex.binomial_pmf n p k
  done;
  check_float_loose "binomial mass" 1.0 !total

let test_binomial_pmf_degenerate () =
  check_float "p=0 k=0" 1.0 (Math_ex.binomial_pmf 10 0.0 0);
  check_float "p=1 k=n" 1.0 (Math_ex.binomial_pmf 10 1.0 10);
  check_float "k out of range" 0.0 (Math_ex.binomial_pmf 10 0.5 11)

let test_generalized_harmonic () =
  check_float "H_1,1" 1.0 (Math_ex.generalized_harmonic 1 1.0);
  check_float_loose "H_3,1" (1.0 +. 0.5 +. (1.0 /. 3.0))
    (Math_ex.generalized_harmonic 3 1.0);
  check_float_loose "H_3,2"
    (1.0 +. 0.25 +. (1.0 /. 9.0))
    (Math_ex.generalized_harmonic 3 2.0)

let test_log_sum_exp () =
  check_float_loose "lse of equal" (log 3.0) (Math_ex.log_sum_exp [| 0.0; 0.0; 0.0 |]);
  check_float "lse empty" Float.neg_infinity (Math_ex.log_sum_exp [||]);
  (* Stability: huge values must not overflow. *)
  let v = Math_ex.log_sum_exp [| 1000.0; 1000.0 |] in
  check_float_loose "lse huge" (1000.0 +. log 2.0) v

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let test_summary_mean_variance () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Summary.mean xs);
  check_float_loose "variance" (5.0 /. 3.0) (Summary.variance xs)

let test_summary_median () =
  check_float "odd" 2.0 (Summary.median [| 3.0; 1.0; 2.0 |]);
  check_float "even" 2.5 (Summary.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Summary.median [||]))

let test_summary_median_with_infinities () =
  (* Median over runs where a minority fail stays finite; majority fails -> inf. *)
  let minority = [| 1.0; 2.0; 3.0; 4.0; Float.infinity |] in
  check_float "minority failures" 3.0 (Summary.median minority);
  let majority = [| 1.0; 2.0; Float.infinity; Float.infinity; Float.infinity |] in
  check_float "majority failures" Float.infinity (Summary.median majority)

let test_summary_median_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  let _ = Summary.median xs in
  Alcotest.(check (array (float 0.0))) "unchanged" [| 3.0; 1.0; 2.0 |] xs

let test_summary_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "q0" 1.0 (Summary.quantile 0.0 xs);
  check_float "q1" 5.0 (Summary.quantile 1.0 xs);
  check_float "q0.5" 3.0 (Summary.quantile 0.5 xs);
  check_float "q0.25" 2.0 (Summary.quantile 0.25 xs)

let test_summary_nan_poisons_quantiles () =
  (* Regression: polymorphic sort used to total-order NaN below every
     float, so a NaN in the input silently shifted the median/quantiles
     to a finite-but-wrong value. NaN input must yield NaN out. *)
  let with_nan = [| 3.0; Float.nan; 1.0; 2.0 |] in
  Alcotest.(check bool) "median is nan" true
    (Float.is_nan (Summary.median with_nan));
  Alcotest.(check bool) "p95 is nan" true
    (Float.is_nan (Summary.quantile 0.95 with_nan));
  Alcotest.(check bool) "q0 is nan" true
    (Float.is_nan (Summary.quantile 0.0 with_nan));
  (* the guard must not disturb NaN-free inputs, infinities included *)
  check_float "inf-only input unaffected" 3.0
    (Summary.median [| 1.0; Float.infinity; 3.0 |])

let test_summary_variance_infinite () =
  check_float "inf propagates" Float.infinity
    (Summary.variance [| 1.0; Float.infinity |])

let test_summary_relative_variance () =
  let xs = [| 10.0; 10.0; 10.0 |] in
  check_float "zero dispersion" 0.0 (Summary.relative_variance ~truth:10.0 xs);
  check_float "zero truth" Float.infinity
    (Summary.relative_variance ~truth:0.0 xs)

let test_summary_min_max () =
  let lo, hi = Summary.min_max [| 3.0; -1.0; 7.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi

(* ------------------------------------------------------------------ *)
(* Weighted                                                            *)
(* ------------------------------------------------------------------ *)

let test_weighted_median_simple () =
  let t = Weighted.of_pairs [ (1.0, 1.0); (2.0, 1.0); (3.0, 1.0) ] in
  check_float "uniform median" 2.0 (Weighted.median t)

let test_weighted_median_skewed () =
  let t = Weighted.of_pairs [ (1.0, 10.0); (2.0, 1.0); (3.0, 1.0) ] in
  check_float "heavy low value wins" 1.0 (Weighted.median t)

let test_weighted_median_order_independent () =
  let a = Weighted.of_pairs [ (3.0, 1.0); (1.0, 5.0); (2.0, 2.0) ] in
  let b = Weighted.of_pairs [ (1.0, 5.0); (2.0, 2.0); (3.0, 1.0) ] in
  check_float "same median" (Weighted.median a) (Weighted.median b)

let test_weighted_drops_zero_weights () =
  let t = Weighted.of_pairs [ (1.0, 0.0); (2.0, 1.0) ] in
  Alcotest.(check int) "only positive kept" 1 (Weighted.size t);
  check_float "median skips zero-weight" 2.0 (Weighted.median t)

let test_weighted_reweight () =
  let t = Weighted.of_pairs [ (1.0, 1.0); (2.0, 1.0); (3.0, 1.0) ] in
  (* Kill everything except the value 3. *)
  let t' = Weighted.reweight (fun v w -> if v < 2.5 then 0.0 else w) t in
  Alcotest.(check int) "size after reweight" 1 (Weighted.size t');
  check_float "median" 3.0 (Weighted.median t')

let test_weighted_mean () =
  let t = Weighted.of_pairs [ (0.0, 1.0); (10.0, 3.0) ] in
  check_float "weighted mean" 7.5 (Weighted.mean t)

let test_weighted_total () =
  let t = Weighted.of_pairs [ (0.0, 1.5); (10.0, 2.5) ] in
  check_float "total weight" 4.0 (Weighted.total_weight t);
  Alcotest.(check bool) "not empty" false (Weighted.is_empty t);
  Alcotest.(check bool) "empty is empty" true (Weighted.is_empty (Weighted.of_pairs []))

let test_weighted_rejects_negative () =
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Weighted.of_pairs: negative weight") (fun () ->
      ignore (Weighted.of_pairs [ (1.0, -1.0) ]))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_median_bounded =
  QCheck.Test.make ~count:200 ~name:"median lies within min/max"
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Summary.median xs in
      let lo, hi = Summary.min_max xs in
      m >= lo && m <= hi)

let prop_weighted_median_bounded =
  QCheck.Test.make ~count:200 ~name:"weighted median lies within support"
    QCheck.(
      list_of_size
        Gen.(int_range 1 30)
        (pair (float_range (-100.) 100.) (float_range 0.1 10.)))
    (fun pairs ->
      let t = Weighted.of_pairs pairs in
      let m = Weighted.median t in
      List.exists (fun (v, _) -> v = m) pairs)

let prop_poisson_pmf_nonnegative =
  QCheck.Test.make ~count:500 ~name:"poisson pmf in [0,1]"
    QCheck.(pair (float_range 0.0 50.0) (int_range 0 200))
    (fun (lambda, k) ->
      let p = Math_ex.poisson_pmf lambda k in
      p >= 0.0 && p <= 1.0 +. 1e-12)

let prop_binomial_within_bounds =
  QCheck.Test.make ~count:300 ~name:"binomial draw within [0,n]"
    QCheck.(pair (int_range 0 200) (float_range 0.0 1.0))
    (fun (n, p) ->
      let t = Prng.create (n + int_of_float (p *. 1000.0)) in
      let v = Prng.binomial t n p in
      v >= 0 && v <= n)

let prop_quantile_monotone =
  QCheck.Test.make ~count:200 ~name:"quantile is monotone in p"
    QCheck.(array_of_size Gen.(int_range 2 40) (float_range (-50.) 50.))
    (fun xs ->
      Summary.quantile 0.25 xs <= Summary.quantile 0.75 xs)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_counter_steps () =
  let c = Clock.counter () in
  check_float "first call is start" 0.0 (c ());
  check_float "advances by default step" 1.0 (c ());
  check_float "again" 2.0 (c ());
  let c = Clock.counter ~start:5.0 ~step:0.5 () in
  check_float "custom start" 5.0 (c ());
  check_float "custom step" 5.5 (c ())

let test_clock_time_span () =
  let wall_clock = Clock.counter ~step:2.0 () in
  let cpu_clock = Clock.counter ~step:0.25 () in
  let result, span = Clock.time ~wall_clock ~cpu_clock (fun () -> "done") in
  Alcotest.(check string) "result passed through" "done" result;
  check_float "wall elapsed = one step" 2.0 span.Clock.wall_seconds;
  check_float "cpu elapsed = one step" 0.25 span.Clock.cpu_seconds

let test_clock_time_clamps_negative () =
  (* a stepping system clock must never yield a negative duration *)
  let backwards = Clock.counter ~start:100.0 ~step:(-3.0) () in
  let _, span =
    Clock.time ~wall_clock:backwards ~cpu_clock:backwards (fun () -> ())
  in
  check_float "wall clamped to zero" 0.0 span.Clock.wall_seconds;
  check_float "cpu clamped to zero" 0.0 span.Clock.cpu_seconds

let test_clock_wall_monotone_enough () =
  let t0 = Clock.wall () in
  let t1 = Clock.wall () in
  Alcotest.(check bool) "wall clock does not go backwards here" true
    (t1 >= t0)

let () =
  Alcotest.run "repro_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "derive golden values" `Quick test_prng_derive_golden;
          Alcotest.test_case "derive deterministic" `Quick
            test_prng_derive_deterministic;
          Alcotest.test_case "derive sensitivity" `Quick
            test_prng_derive_sensitivity;
          Alcotest.test_case "keyed stream" `Quick test_prng_create_keyed_stream;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int uniformity" `Slow test_prng_int_uniformity;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_prng_bernoulli_extremes;
          Alcotest.test_case "bernoulli mean" `Slow test_prng_bernoulli_mean;
          Alcotest.test_case "binomial bounds" `Quick test_prng_binomial_bounds;
          Alcotest.test_case "binomial moments" `Slow test_prng_binomial_mean_variance;
          Alcotest.test_case "binomial extremes" `Quick test_prng_binomial_extreme_p;
          Alcotest.test_case "binomial high p" `Slow test_prng_binomial_high_p_mean;
          Alcotest.test_case "geometric mean" `Slow test_prng_geometric_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick
            test_prng_sample_without_replacement;
          Alcotest.test_case "sample k=n" `Quick test_prng_sample_full;
        ] );
      ( "math_ex",
        [
          Alcotest.test_case "log_gamma factorials" `Quick test_log_gamma_factorials;
          Alcotest.test_case "log_gamma half" `Quick test_log_gamma_half;
          Alcotest.test_case "log_factorial small" `Quick test_log_factorial_matches;
          Alcotest.test_case "log_factorial large" `Quick test_log_factorial_large;
          Alcotest.test_case "poisson mass" `Quick test_poisson_pmf_sums_to_one;
          Alcotest.test_case "poisson known values" `Quick test_poisson_pmf_known_values;
          Alcotest.test_case "poisson no overflow" `Quick test_poisson_pmf_no_overflow;
          Alcotest.test_case "binomial mass" `Quick test_binomial_pmf_sums_to_one;
          Alcotest.test_case "binomial degenerate" `Quick test_binomial_pmf_degenerate;
          Alcotest.test_case "generalized harmonic" `Quick test_generalized_harmonic;
          Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
        ] );
      ( "summary",
        [
          Alcotest.test_case "mean/variance" `Quick test_summary_mean_variance;
          Alcotest.test_case "median" `Quick test_summary_median;
          Alcotest.test_case "median with infinities" `Quick
            test_summary_median_with_infinities;
          Alcotest.test_case "median does not mutate" `Quick
            test_summary_median_does_not_mutate;
          Alcotest.test_case "quantile" `Quick test_summary_quantile;
          Alcotest.test_case "nan poisons quantiles" `Quick
            test_summary_nan_poisons_quantiles;
          Alcotest.test_case "variance infinity" `Quick test_summary_variance_infinite;
          Alcotest.test_case "relative variance" `Quick test_summary_relative_variance;
          Alcotest.test_case "min_max" `Quick test_summary_min_max;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "median simple" `Quick test_weighted_median_simple;
          Alcotest.test_case "median skewed" `Quick test_weighted_median_skewed;
          Alcotest.test_case "median order independent" `Quick
            test_weighted_median_order_independent;
          Alcotest.test_case "drops zero weights" `Quick test_weighted_drops_zero_weights;
          Alcotest.test_case "reweight" `Quick test_weighted_reweight;
          Alcotest.test_case "mean" `Quick test_weighted_mean;
          Alcotest.test_case "total" `Quick test_weighted_total;
          Alcotest.test_case "rejects negative" `Quick test_weighted_rejects_negative;
        ] );
      ( "clock",
        [
          Alcotest.test_case "counter steps" `Quick test_clock_counter_steps;
          Alcotest.test_case "time span" `Quick test_clock_time_span;
          Alcotest.test_case "negative durations clamped" `Quick
            test_clock_time_clamps_negative;
          Alcotest.test_case "wall clock monotone" `Quick
            test_clock_wall_monotone_enough;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_median_bounded;
            prop_weighted_median_bounded;
            prop_poisson_pmf_nonnegative;
            prop_binomial_within_bounds;
            prop_quantile_monotone;
          ] );
    ]
