(* Tests for the cross-estimator bake-off: version-2 provenance fields,
   the CI-coverage regression gate, and the Bakeoff driver's determinism
   across domain counts. *)

module Provenance = Repro_benchlib.Provenance
module Bakeoff = Repro_benchlib.Bakeoff
module Config = Repro_benchlib.Config
module Bootstrap = Repro_stats.Bootstrap

let mk ?(experiment = "bakeoff") ?(query = "Q1a1") ?(variant = "CSDL-Opt")
    ?(qerror = 2.0) ?(ci_lower = Float.nan) ?(ci_upper = Float.nan)
    ?(ci_covered = Float.nan) ?(variance = Float.nan) () =
  {
    Provenance.empty with
    Provenance.experiment;
    query;
    variant;
    theta = 0.01;
    truth = 100.0;
    estimate = 90.0;
    qerror;
    runs = 5;
    ci_lower;
    ci_upper;
    ci_covered;
    variance;
  }

(* ---------------- version-2 fields ---------------- *)

let test_v2_round_trip () =
  let records =
    [
      mk ~ci_lower:80.0 ~ci_upper:120.0 ~ci_covered:1.0 ~variance:42.5 ();
      mk ~variant:"wander join" ();
      (* non-finite endpoints must survive the JSON round-trip *)
      mk ~variant:"independent" ~ci_lower:0.0 ~ci_upper:Float.infinity
        ~ci_covered:0.0 ();
    ]
  in
  let artifact = Provenance.artifact ~name:"v2" records in
  let path = Filename.temp_file "bench_v2" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Provenance.write ~path artifact;
      match Provenance.read path with
      | Error e -> Alcotest.fail e
      | Ok parsed ->
          Alcotest.(check bool)
            "records identical" true
            (compare records parsed.Provenance.a_records = 0))

let test_v2_fields_default_nan () =
  (* a version-1 record (no ci fields in the JSON) reads back with NaN in
     every new field — the artifact round-trip already proves presence;
     here the in-memory default must agree *)
  let r = Provenance.empty in
  Alcotest.(check bool) "ci_lower nan" true (Float.is_nan r.Provenance.ci_lower);
  Alcotest.(check bool) "ci_upper nan" true (Float.is_nan r.Provenance.ci_upper);
  Alcotest.(check bool) "ci_covered nan" true
    (Float.is_nan r.Provenance.ci_covered);
  Alcotest.(check bool) "variance nan" true (Float.is_nan r.Provenance.variance)

let test_summary_ci_coverage () =
  let records =
    [
      mk ~ci_covered:1.0 ();
      mk ~ci_covered:0.0 ();
      mk ~ci_covered:1.0 ();
      mk ~ci_covered:Float.nan ();
      (* no interval: excluded from the mean *)
    ]
  in
  match Provenance.summarise records with
  | [ s ] ->
      Alcotest.(check (float 1e-9)) "2/3 covered" (2.0 /. 3.0)
        s.Provenance.ci_coverage
  | l -> Alcotest.fail (Printf.sprintf "expected 1 summary, got %d" (List.length l))

let test_summary_ci_coverage_absent () =
  match Provenance.summarise [ mk (); mk () ] with
  | [ s ] ->
      Alcotest.(check bool) "no intervals -> nan" true
        (Float.is_nan s.Provenance.ci_coverage)
  | _ -> Alcotest.fail "expected 1 summary"

(* ---------------- the coverage gate ---------------- *)

let diff ?min_ci_coverage ~baseline ~current () =
  Provenance.diff ?min_ci_coverage ~max_wall_ratio:2.0 ~max_qerr_ratio:1.5
    ~baseline ~current ()

let covered_artifact name flags =
  Provenance.artifact ~name
    (List.map (fun c -> mk ~ci_covered:c ()) flags)

let test_min_ci_coverage_gates () =
  let base = covered_artifact "base" [ 1.0; 1.0 ] in
  let half = covered_artifact "half" [ 1.0; 0.0 ] in
  (* coverage 0.5 against floor 0.8: regression *)
  let bad =
    Provenance.regressions
      (diff ~min_ci_coverage:0.8 ~baseline:base ~current:half ())
  in
  Alcotest.(check bool) "below floor flagged" true
    (List.exists
       (fun c -> c.Provenance.metric = "ci coverage (min)" && not c.Provenance.ok)
       bad);
  (* same artifact against floor 0.5: clean *)
  Alcotest.(check int) "at floor passes" 0
    (List.length
       (Provenance.regressions
          (diff ~min_ci_coverage:0.5 ~baseline:base ~current:half ())))

let test_min_ci_coverage_skips_nan_groups () =
  (* groups without interval reporting must not be gated at any floor *)
  let a = Provenance.artifact ~name:"no-ci" [ mk (); mk () ] in
  Alcotest.(check int) "nan coverage not gated" 0
    (List.length
       (Provenance.regressions (diff ~min_ci_coverage:0.99 ~baseline:a ~current:a ())))

let test_no_floor_no_check () =
  let a = covered_artifact "a" [ 0.0; 0.0 ] in
  let checks = diff ~baseline:a ~current:a () in
  Alcotest.(check bool) "no floor, no coverage check" false
    (List.exists (fun c -> c.Provenance.metric = "ci coverage (min)") checks)

(* ---------------- the driver ---------------- *)

let tiny_config ~jobs prov =
  {
    Config.default with
    Config.imdb_scale = 0.02;
    runs = 3;
    seed = 42;
    thetas = [ 0.05 ];
    jobs;
    prov;
  }

let run_tiny ~jobs =
  let config = tiny_config ~jobs Provenance.null in
  let data =
    Repro_datagen.Imdb.generate ~scale:config.Config.imdb_scale
      ~seed:config.Config.seed ()
  in
  Bakeoff.run ~thetas:config.Config.thetas config data

let strip_walls (t : Bakeoff.t) =
  (* wall and cpu measurements are the only nondeterministic cell fields *)
  {
    t with
    Bakeoff.rows =
      List.map
        (fun r ->
          {
            r with
            Bakeoff.r_cells =
              List.map
                (fun (label, c) ->
                  ( label,
                    Option.map
                      (fun c ->
                        {
                          c with
                          Bakeoff.mean_wall_seconds = 0.0;
                          mean_cpu_seconds = 0.0;
                          offline_wall_seconds = 0.0;
                        })
                      c ))
                r.Bakeoff.r_cells;
          })
        t.Bakeoff.rows;
  }

let test_bakeoff_jobs_deterministic () =
  let one = run_tiny ~jobs:1 and two = run_tiny ~jobs:2 in
  Alcotest.(check bool) "jobs 1 = jobs 2" true
    (compare (strip_walls one) (strip_walls two) = 0)

let test_bakeoff_cells_coherent () =
  let t = run_tiny ~jobs:2 in
  Alcotest.(check bool) "has rows" true (t.Bakeoff.rows <> []);
  List.iter
    (fun r ->
      Alcotest.(check int) "full roster" (List.length Bakeoff.roster)
        (List.length r.Bakeoff.r_cells);
      List.iter
        (fun (label, c) ->
          match c with
          | None -> ()
          | Some c ->
              Alcotest.(check string) "label matches" label c.Bakeoff.estimator;
              Alcotest.(check int) "all runs answered" t.Bakeoff.runs
                c.Bakeoff.runs;
              let b = c.Bakeoff.boot in
              Alcotest.(check bool) "boot ordered" true
                (b.Bootstrap.lower <= b.Bootstrap.upper);
              Alcotest.(check bool) "boot covers flag consistent" true
                (c.Bakeoff.boot_covered
                = (b.Bootstrap.lower <= c.Bakeoff.truth
                  && c.Bakeoff.truth <= b.Bootstrap.upper));
              (match c.Bakeoff.analytic with
              | None -> ()
              | Some a ->
                  Alcotest.(check bool) "analytic variance >= 0" true
                    (a.Bakeoff.an_variance >= 0.0);
                  Alcotest.(check bool) "analytic interval ordered" true
                    (a.Bakeoff.an_interval.Bootstrap.lower
                    <= a.Bakeoff.an_interval.Bootstrap.upper)))
        r.Bakeoff.r_cells)
    t.Bakeoff.rows

let test_bakeoff_records_both_experiments () =
  let prov = Provenance.create () in
  let config = tiny_config ~jobs:2 prov in
  let data =
    Repro_datagen.Imdb.generate ~scale:config.Config.imdb_scale
      ~seed:config.Config.seed ()
  in
  let t = Bakeoff.run ~thetas:config.Config.thetas config data in
  Bakeoff.record_cells prov t;
  let records = Provenance.records prov in
  let by_exp e = List.filter (fun r -> r.Provenance.experiment = e) records in
  Alcotest.(check bool) "bakeoff records" true (by_exp "bakeoff" <> []);
  Alcotest.(check bool) "analytic records" true (by_exp "bakeoff-analytic" <> []);
  (* every bakeoff record carries a bootstrap interval *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "ci_lower present" false
        (Float.is_nan r.Provenance.ci_lower))
    (by_exp "bakeoff")

let () =
  Alcotest.run "repro_bakeoff"
    [
      ( "provenance-v2",
        [
          Alcotest.test_case "round trip" `Quick test_v2_round_trip;
          Alcotest.test_case "defaults nan" `Quick test_v2_fields_default_nan;
          Alcotest.test_case "ci coverage" `Quick test_summary_ci_coverage;
          Alcotest.test_case "ci coverage absent" `Quick
            test_summary_ci_coverage_absent;
        ] );
      ( "coverage-gate",
        [
          Alcotest.test_case "gates" `Quick test_min_ci_coverage_gates;
          Alcotest.test_case "skips nan groups" `Quick
            test_min_ci_coverage_skips_nan_groups;
          Alcotest.test_case "no floor no check" `Quick test_no_floor_no_check;
        ] );
      ( "driver",
        [
          Alcotest.test_case "jobs deterministic" `Slow
            test_bakeoff_jobs_deterministic;
          Alcotest.test_case "cells coherent" `Slow test_bakeoff_cells_coherent;
          Alcotest.test_case "records both experiments" `Slow
            test_bakeoff_records_both_experiments;
        ] );
    ]
