(* Trace analytics and estimate provenance: the lenient JSONL reader
   (truncation, interleaved metric lines, unknown fields), span-tree
   reconstruction, aggregation and folded stacks; then the BENCH artifact
   round-trip and the regression-gate semantics `repro_cli bench diff`
   builds on. *)

module Trace = Repro_obs.Trace
module Report = Repro_obs.Report
module Obs = Repro_obs.Obs
module Pool = Repro_util.Pool
module Provenance = Repro_benchlib.Provenance

let span ?parent ?(attrs = []) ?(domain = 0) ~id ~name ~start ~dur () =
  {
    Trace.id;
    parent;
    name;
    attrs;
    domain;
    start_s = start;
    duration_s = dur;
  }

(* The three-span shape most tests share: a 10s root with two "work"
   children of 4s and 3s, so root self-time is 3s and work has no
   children at all. *)
let root = span ~id:0 ~name:"root" ~start:0.0 ~dur:10.0 ()
let work_a = span ~id:1 ~parent:0 ~name:"work" ~start:1.0 ~dur:4.0 ()
let work_b = span ~id:2 ~parent:0 ~name:"work" ~start:6.0 ~dur:3.0 ()
let shape = [ root; work_a; work_b ]

(* ---------------- lenient reading ---------------- *)

let test_lenient_classification () =
  let truncated =
    let full = Trace.span_to_json work_a in
    String.sub full 0 (String.length full - 5)
  in
  let reading =
    Report.of_lines
      [
        Trace.span_to_json root;
        "";
        "{\"type\":\"counter\",\"name\":\"pool.tasks\",\"labels\":{},\"value\":4}";
        "{\"type\":\"wibble\",\"payload\":[]}";
        "{\"no_type_at_all\":1}";
        "definitely not json";
        truncated;
      ]
  in
  Alcotest.(check int) "one well-formed span" 1 (List.length reading.Report.spans);
  Alcotest.(check string)
    "it is the root span" "root"
    (List.hd reading.Report.spans).Trace.name;
  Alcotest.(check int) "one metric line" 1 reading.Report.metric_lines;
  Alcotest.(check int)
    "unknown types are counted, not errors" 2 reading.Report.other_lines;
  match reading.Report.skipped with
  | [ garbage; partial ] ->
      Alcotest.(check int) "garbage line located" 6 garbage.Report.line;
      Alcotest.(check int)
        "truncated final line located" 7 partial.Report.line;
      Alcotest.(check bool)
        "diagnostics are self-locating" true
        (String.starts_with ~prefix:"line 6:" garbage.Report.reason
        && String.starts_with ~prefix:"line 7:" partial.Report.reason)
  | skipped ->
      Alcotest.failf "expected 2 skipped lines, got %d" (List.length skipped)

let test_unknown_span_fields_ignored () =
  let json = Trace.span_to_json work_a in
  let augmented =
    "{\"future_field\":{\"nested\":[1,2]},"
    ^ String.sub json 1 (String.length json - 1)
  in
  (match Trace.span_of_json augmented with
  | Ok s ->
      Alcotest.(check string) "span survives unknown keys" "work" s.Trace.name;
      Alcotest.(check int) "id intact" 1 s.Trace.id
  | Error e -> Alcotest.failf "unknown field rejected: %s" e);
  match Trace.span_of_json "{\"type\":\"span\",\"id\":1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "span missing required fields must not parse"

(* ---------------- trees, aggregation, folded stacks ---------------- *)

let test_forest_and_orphans () =
  let orphan = span ~id:5 ~parent:99 ~name:"orphan" ~start:2.0 ~dur:1.0 () in
  match Report.forest (orphan :: shape) with
  | [ r; o ] ->
      Alcotest.(check string) "earliest root first" "root" r.Report.span.Trace.name;
      Alcotest.(check string)
        "orphan promoted to root, not dropped" "orphan" o.Report.span.Trace.name;
      Alcotest.(check (list string))
        "children ordered by start" [ "work"; "work" ]
        (List.map (fun c -> c.Report.span.Trace.name) r.Report.children)
  | f -> Alcotest.failf "expected 2 roots, got %d" (List.length f)

let test_aggregate () =
  match Report.aggregate shape with
  | [ r; w ] ->
      Alcotest.(check string) "largest total first" "root" r.Report.name;
      Alcotest.(check (float 1e-9)) "root total" 10.0 r.Report.total_s;
      Alcotest.(check (float 1e-9))
        "root self excludes direct children" 3.0 r.Report.self_s;
      Alcotest.(check int) "work count" 2 w.Report.count;
      Alcotest.(check (float 1e-9)) "work total" 7.0 w.Report.total_s;
      Alcotest.(check (float 1e-9)) "leaf self = total" 7.0 w.Report.self_s;
      Alcotest.(check (float 1e-9)) "work p50 interpolates" 3.5 w.Report.p50_s;
      Alcotest.(check (float 1e-9)) "work p95 interpolates" 3.95 w.Report.p95_s;
      Alcotest.(check (float 1e-9)) "work max" 4.0 w.Report.max_s
  | aggs -> Alcotest.failf "expected 2 aggregates, got %d" (List.length aggs)

let test_critical_path () =
  match Report.critical_path (Report.forest shape) with
  | [ a; b ] ->
      Alcotest.(check string) "starts at the longest root" "root" a.Trace.name;
      Alcotest.(check int)
        "descends into the longest child" work_a.Trace.id b.Trace.id
  | path -> Alcotest.failf "expected path of 2, got %d" (List.length path)

let test_folded () =
  Alcotest.(check (list (pair string int)))
    "self-time folded stacks, merged and sorted"
    [ ("root", 3_000_000); ("root;work", 7_000_000) ]
    (Report.folded (Report.forest shape))

(* ---------------- round-trip through a real 2-domain run ------------ *)

let test_pool_round_trip () =
  let sink = Trace.memory () in
  let obs = Obs.create ~sink () in
  let results =
    Pool.map ~obs ~jobs:2
      (fun i -> Obs.Span.with_ obs ~name:"task" (fun () -> i * i))
      [ 1; 2; 3; 4 ]
  in
  Obs.close obs;
  Alcotest.(check (list int)) "pool results" [ 1; 4; 9; 16 ] results;
  let reading = Report.of_lines (Trace.lines sink) in
  Alcotest.(check int) "nothing skipped" 0 (List.length reading.Report.skipped);
  Alcotest.(check bool)
    "all four task spans came back" true
    (List.length
       (List.filter (fun s -> s.Trace.name = "task") reading.Report.spans)
    = 4);
  Alcotest.(check bool)
    "the metrics dump interleaves as metric lines" true
    (reading.Report.metric_lines > 0);
  Alcotest.(check bool)
    "forest reconstructs" true
    (Report.forest reading.Report.spans <> [])

(* ---------------- provenance artifacts ---------------- *)

let mk ?(experiment = "two-table") ?(query = "Q1a1") ?(variant = "1,diff")
    ?(qerror = 2.0) ?(wall = 0.5) () =
  {
    Provenance.empty with
    Provenance.experiment;
    query;
    variant;
    theta = 0.01;
    jvd = Float.nan;
    sample_tuples = 414.5;
    truth = 644.0;
    estimate = 700.25;
    qerror;
    rung = "";
    downgrades = 0;
    runs = 6;
    zero_runs = 0;
    wall_seconds = wall;
    cpu_seconds = wall *. 2.0;
    offline_wall_seconds = wall *. 10.0;
  }

let test_artifact_round_trip () =
  let records =
    [
      mk ();
      mk ~qerror:Float.infinity ();
      mk ~variant:"CS2L" ~qerror:1.25 ();
    ]
  in
  let artifact = Provenance.artifact ~name:"golden" records in
  let path = Filename.temp_file "bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Provenance.write ~path artifact;
      match Provenance.read path with
      | Error e -> Alcotest.failf "read back failed: %s" e
      | Ok parsed ->
          Alcotest.(check string) "name" "golden" parsed.Provenance.a_name;
          (* structural compare: nan = nan, inf = inf *)
          Alcotest.(check bool)
            "records round-trip exactly (inf and nan included)" true
            (compare records parsed.Provenance.a_records = 0);
          Alcotest.(check bool)
            "summaries recomputed on read" true
            (compare artifact.Provenance.a_summaries
               parsed.Provenance.a_summaries
            = 0))

let test_summarise () =
  let records =
    [ mk ~qerror:1.0 (); mk ~qerror:2.0 (); mk ~qerror:3.0 ~wall:1.0 () ]
  in
  match Provenance.summarise records with
  | [ s ] ->
      Alcotest.(check string) "experiment" "two-table" s.Provenance.s_experiment;
      Alcotest.(check int) "count" 3 s.Provenance.s_records;
      Alcotest.(check (float 1e-9)) "median q-error" 2.0
        s.Provenance.median_qerror;
      Alcotest.(check (float 1e-9))
        "mean wall" ((0.5 +. 0.5 +. 1.0) /. 3.0)
        s.Provenance.mean_wall_seconds
  | ss -> Alcotest.failf "expected 1 summary, got %d" (List.length ss)

let diff ?max_online_wall_ratio ~baseline ~current () =
  Provenance.diff ?max_online_wall_ratio ~max_wall_ratio:2.0
    ~max_qerr_ratio:1.1 ~baseline ~current ()

let test_diff_self_is_clean () =
  let a = Provenance.artifact ~name:"a" [ mk (); mk ~variant:"CS2L" () ] in
  let checks = diff ~baseline:a ~current:a () in
  Alcotest.(check int) "3 checks per variant" 6 (List.length checks);
  Alcotest.(check int)
    "self-diff has no regressions" 0
    (List.length (Provenance.regressions checks))

let test_diff_catches_regression_and_coverage () =
  let baseline =
    Provenance.artifact ~name:"base" [ mk (); mk ~variant:"CS2L" () ]
  in
  let current =
    (* q-error doubled, and the CS2L group vanished entirely *)
    Provenance.artifact ~name:"cur" [ mk ~qerror:4.0 () ]
  in
  let bad = Provenance.regressions (diff ~baseline ~current ()) in
  Alcotest.(check bool)
    "doctored q-error flagged" true
    (List.exists
       (fun c ->
         c.Provenance.metric = "median q-error" && not c.Provenance.ok)
       bad);
  Alcotest.(check bool)
    "lost group fails coverage" true
    (List.exists (fun c -> c.Provenance.metric = "coverage") bad);
  (* a NEW group in current is extra coverage, not a regression *)
  let grown =
    Provenance.artifact ~name:"grown" [ mk (); mk ~experiment:"table8" () ]
  in
  let baseline_one = Provenance.artifact ~name:"b1" [ mk () ] in
  Alcotest.(check int)
    "new coverage passes" 0
    (List.length (Provenance.regressions (diff ~baseline:baseline_one ~current:grown ())))

let test_diff_gating_edges () =
  (* sub-10ms wall times are clock noise: a 5000x blowup under the floor
     must not flag *)
  let fast = Provenance.artifact ~name:"fast" [ mk ~wall:1e-6 () ] in
  let slow_but_tiny = Provenance.artifact ~name:"tiny" [ mk ~wall:5e-3 () ] in
  Alcotest.(check int)
    "wall floor suppresses noise" 0
    (List.length
       (Provenance.regressions (diff ~baseline:fast ~current:slow_but_tiny ())));
  (* inf against inf is the same failure mode, not a regression; finite
     baseline going to inf is *)
  let inf_art name = Provenance.artifact ~name [ mk ~qerror:Float.infinity () ] in
  Alcotest.(check int)
    "inf vs inf passes" 0
    (List.length
       (Provenance.regressions
          (diff ~baseline:(inf_art "a") ~current:(inf_art "b") ())));
  let finite = Provenance.artifact ~name:"f" [ mk ~qerror:3.0 () ] in
  Alcotest.(check bool)
    "finite -> inf fails" true
    (Provenance.regressions (diff ~baseline:finite ~current:(inf_art "c") ())
    <> [])

let test_version_rejected () =
  let path = Filename.temp_file "bench_v99" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"version\": 99, \"name\": \"x\", \"records\": []}";
      close_out oc;
      match Provenance.read path with
      | Error e ->
          Alcotest.(check bool)
            "error names the version" true
            (String.length e > 0)
      | Ok _ -> Alcotest.fail "a newer artifact version must be rejected")

let () =
  Alcotest.run "report"
    [
      ( "lenient reader",
        [
          Alcotest.test_case "classification and located skips" `Quick
            test_lenient_classification;
          Alcotest.test_case "unknown span fields ignored" `Quick
            test_unknown_span_fields_ignored;
        ] );
      ( "analytics",
        [
          Alcotest.test_case "forest and orphans" `Quick test_forest_and_orphans;
          Alcotest.test_case "aggregation" `Quick test_aggregate;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "folded stacks" `Quick test_folded;
          Alcotest.test_case "2-domain pool round-trip" `Quick
            test_pool_round_trip;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "artifact round-trip" `Quick
            test_artifact_round_trip;
          Alcotest.test_case "summarise" `Quick test_summarise;
          Alcotest.test_case "self-diff is clean" `Quick test_diff_self_is_clean;
          Alcotest.test_case "regression and coverage" `Quick
            test_diff_catches_regression_and_coverage;
          Alcotest.test_case "gating edge cases" `Quick test_diff_gating_edges;
          Alcotest.test_case "newer version rejected" `Quick
            test_version_rejected;
        ] );
    ]
